//===- axi4mlir-serve.cpp - Multi-tenant accelerator service CLI ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the serve layer: reads a configuration file
/// (accelerators + optional `serve` and `faults` sections), generates a
/// deterministic mixed stream of matmul/conv jobs, runs it through the
/// resilient server pool, and prints a per-status summary with modeled
/// throughput and latency percentiles.
///
/// Usage:
///   axi4mlir-serve --config configs/serve_pool.json [--jobs N]
///                  [--threads N] [--deadline MS] [--seed N]
///
/// Exits non-zero when any admitted job ends in the Failed status (shed
/// jobs — Overloaded / DeadlineExceeded / Rejected — are structured
/// outcomes, not tool failures).
///
//===----------------------------------------------------------------------===//

#include "parser/ConfigParser.h"
#include "serve/Server.h"
#include "support/EditDistance.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace axi4mlir;

namespace {

struct CliOptions {
  bool Help = false;
  std::string ConfigPath;
  unsigned Jobs = 32;
  /// Overrides (negative = use the config file's serve section).
  int64_t Threads = -1;
  double DeadlineMs = -1;
  uint32_t Seed = 7;
};

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: axi4mlir-serve --config FILE [--jobs N] [--threads N]\n"
      "                      [--deadline MS] [--seed N]\n"
      "  Runs a deterministic mixed matmul/conv job stream through the\n"
      "  resilient accelerator pool described by FILE's 'serve' section\n"
      "  (instances, queue depth, deadlines, circuit breakers; see\n"
      "  docs/SERVING.md). --threads and --deadline override the file.\n");
}

const std::vector<std::string> &knownFlags() {
  static const std::vector<std::string> Flags = {
      "--config", "--jobs", "--threads", "--deadline", "--seed", "--help"};
  return Flags;
}

bool parseInteger(const char *Text, int64_t &Out) {
  auto [End, Errc] =
      std::from_chars(Text, Text + std::strlen(Text), Out, 10);
  return Errc == std::errc() && End == Text + std::strlen(Text);
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string Inline;
    bool HasInline = false;
    if (Arg.rfind("--", 0) == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Inline = Arg.substr(Eq + 1);
        Arg = Arg.substr(0, Eq);
        HasInline = true;
        if (Inline.empty()) {
          std::fprintf(stderr, "missing value in '%s='\n", Arg.c_str());
          return false;
        }
      }
    }
    auto next = [&]() -> const char * {
      if (HasInline)
        return Inline.c_str();
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    auto nextInt = [&](const char *Flag, int64_t Min, int64_t &Out) {
      const char *V = next();
      if (!V || !parseInteger(V, Out) || Out < Min) {
        std::fprintf(stderr, "error: %s needs an integer >= %lld (got '%s')\n",
                     Flag, static_cast<long long>(Min), V ? V : "");
        return false;
      }
      return true;
    };
    if (Arg == "--config") {
      const char *V = next();
      if (!V)
        return false;
      Options.ConfigPath = V;
    } else if (Arg == "--jobs") {
      int64_t Value = 0;
      if (!nextInt("--jobs", 1, Value))
        return false;
      Options.Jobs = static_cast<unsigned>(Value);
    } else if (Arg == "--threads") {
      int64_t Value = 0;
      if (!nextInt("--threads", 0, Value))
        return false;
      Options.Threads = Value;
    } else if (Arg == "--deadline") {
      int64_t Value = 0;
      if (!nextInt("--deadline", 0, Value))
        return false;
      Options.DeadlineMs = static_cast<double>(Value);
    } else if (Arg == "--seed") {
      int64_t Value = 0;
      if (!nextInt("--seed", 0, Value))
        return false;
      Options.Seed = static_cast<uint32_t>(Value);
    } else if (Arg == "--help" || Arg == "-h") {
      Options.Help = true;
      return true;
    } else {
      std::string Suggestion = closestSpelling(Arg, knownFlags());
      if (Suggestion.empty())
        std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      else
        std::fprintf(stderr, "unknown argument '%s'; did you mean '%s'?\n",
                     Arg.c_str(), Suggestion.c_str());
      return false;
    }
  }
  return !Options.ConfigPath.empty();
}

/// Deterministic mixed traffic: cycles matmul shapes (and conv layers when
/// the pool hosts a conv accelerator) with varying seeds. xorshift keeps
/// the stream reproducible for a given --seed.
std::vector<serve::JobRequest> makeWorkload(unsigned Jobs, uint32_t Seed,
                                            bool HasMatMul, bool HasConv,
                                            sim::ElemKind Elem) {
  std::vector<serve::JobRequest> Requests;
  Requests.reserve(Jobs);
  uint32_t State = Seed * 2654435761u + 1u;
  auto nextRand = [&State]() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  };
  static const int64_t MatMulSizes[] = {32, 48, 64};
  for (unsigned I = 0; I < Jobs; ++I) {
    serve::JobRequest Request;
    Request.Elem = Elem;
    Request.Seed = Seed + I;
    bool UseConv = HasConv && (!HasMatMul || I % 3 == 2);
    if (UseConv) {
      Request.Kind = serve::JobKind::Conv2D;
      Request.InChannels = 8;
      Request.InHW = 10 + int64_t(nextRand() % 3) * 4; // 10 / 14 / 18
      Request.OutChannels = 8;
      Request.FilterHW = 3;
      Request.Stride = 1;
    } else {
      Request.Kind = serve::JobKind::MatMul;
      Request.M = MatMulSizes[nextRand() % 3];
      Request.N = MatMulSizes[nextRand() % 3];
      Request.K = MatMulSizes[nextRand() % 3];
    }
    Requests.push_back(Request);
  }
  return Requests;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

int runTool(const CliOptions &Options) {
  std::string Error;
  auto Config = parser::parseSystemConfigFile(Options.ConfigPath, &Error);
  if (failed(Config)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  serve::ServerOptions ServerOptions = serve::makeServerOptions(*Config);
  if (Options.Threads >= 0)
    ServerOptions.Threads = static_cast<unsigned>(Options.Threads);
  if (Options.DeadlineMs >= 0)
    ServerOptions.DefaultDeadlineMs = Options.DeadlineMs;

  bool HasMatMul = false, HasConv = false;
  for (const parser::AcceleratorDesc &Accel : Config->Accelerators) {
    HasMatMul |= Accel.Kernel == "linalg.matmul";
    HasConv |= Accel.Kernel == "linalg.conv_2d_nchw_fchw";
  }
  if (!HasMatMul && !HasConv && !ServerOptions.CpuFallback) {
    std::fprintf(stderr,
                 "error: '%s' configures no matmul or conv accelerator and "
                 "disables the CPU fallback\n",
                 Options.ConfigPath.c_str());
    return 1;
  }
  sim::ElemKind Elem = !Config->Accelerators.empty() &&
                               Config->Accelerators.front().DataType == "f32"
                           ? sim::ElemKind::F32
                           : sim::ElemKind::I32;

  serve::Server Server(Config->Accelerators, ServerOptions);
  // The config's fault schedule becomes the designated instance's local
  // brown-out (serve.faulty_instance); without the designation it stays a
  // global schedule, which the serve pool does not replay.
  if (Config->HasFaults && Config->Serve.FaultyInstance >= 0 &&
      static_cast<unsigned>(Config->Serve.FaultyInstance) <
          Server.numInstances()) {
    serve::InstanceFaults Faults;
    Faults.Plan = Config->Faults;
    Faults.JobsAffected = Config->Serve.FaultyJobs;
    Faults.Spares = Config->SpareAccelerators;
    Server.setInstanceFaults(
        static_cast<unsigned>(Config->Serve.FaultyInstance), Faults);
  }

  std::vector<serve::JobRequest> Workload = makeWorkload(
      Options.Jobs, Options.Seed, HasMatMul || ServerOptions.CpuFallback,
      HasConv, Elem);
  for (const serve::JobRequest &Request : Workload)
    Server.submit(Request);
  Server.drain();
  Server.shutdown();

  std::vector<serve::JobOutcome> Outcomes = Server.takeOutcomes();
  serve::ServerStats Stats = Server.stats();

  double TotalModeledMs = 0;
  std::vector<double> Latencies;
  for (const serve::JobOutcome &Out : Outcomes) {
    TotalModeledMs += Out.ModeledMs;
    if (Out.Status == serve::JobStatus::Completed)
      Latencies.push_back(Out.LatencyMs);
  }
  std::sort(Latencies.begin(), Latencies.end());
  double JobsPerSec = TotalModeledMs > 0
                          ? double(Stats.Completed) * 1e3 / TotalModeledMs
                          : 0;

  std::printf("axi4mlir-serve: %llu jobs over %u instance(s), %u thread(s)\n",
              static_cast<unsigned long long>(Stats.Submitted),
              Server.numInstances(), ServerOptions.Threads);
  std::printf(
      "  completed %llu | overloaded %llu | deadline-exceeded %llu | "
      "rejected %llu | failed %llu\n",
      static_cast<unsigned long long>(Stats.Completed),
      static_cast<unsigned long long>(Stats.Overloaded),
      static_cast<unsigned long long>(Stats.DeadlineExceeded),
      static_cast<unsigned long long>(Stats.Rejected),
      static_cast<unsigned long long>(Stats.Failed));
  std::printf(
      "  retries %llu | failovers %llu | cpu-fallbacks %llu | "
      "breaker-trips %llu\n",
      static_cast<unsigned long long>(Stats.Retries),
      static_cast<unsigned long long>(Stats.Failovers),
      static_cast<unsigned long long>(Stats.CpuFallbacks),
      static_cast<unsigned long long>(Stats.BreakerTrips));
  std::printf("  plan cache: %llu/%llu hits (evictions %llu)\n",
              static_cast<unsigned long long>(Stats.Plans.Hits),
              static_cast<unsigned long long>(Stats.Plans.Hits +
                                              Stats.Plans.Misses),
              static_cast<unsigned long long>(Stats.Plans.Evictions));
  std::printf("  modeled throughput %.2f jobs/s | latency p50 %.3f ms | "
              "p99 %.3f ms\n",
              JobsPerSec, percentile(Latencies, 0.50),
              percentile(Latencies, 0.99));

  if (Stats.Failed > 0) {
    for (const serve::JobOutcome &Out : Outcomes)
      if (Out.Status == serve::JobStatus::Failed)
        std::fprintf(stderr, "job %llu failed: %s\n",
                     static_cast<unsigned long long>(Out.Id),
                     Out.Error.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage(stderr);
    return 2;
  }
  if (Options.Help) {
    printUsage(stdout);
    return 0;
  }
  return runTool(Options);
}
