//===- axi4mlir-opt.cpp - Command-line pipeline driver --------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the reproduction, in the spirit of mlir-opt:
/// reads an accelerator/CPU configuration file (paper Fig. 5), builds the
/// requested linalg workload, runs the AXI4MLIR pipeline, and prints the
/// host driver as IR and/or C. Optionally executes the driver on the
/// simulated SoC and reports the perf counters.
///
/// Usage:
///   axi4mlir-opt --config configs/matmul_v3_16.json --matmul 128x128x128
///                [--flow As] [--emit ir|c|both] [--no-cpu-tiling]
///                [--no-specialize] [--remainder pad|peel|reject] [--run]
///   axi4mlir-opt --config configs/conv2d.json --conv 58x64x3x128x2 --run
///   axi4mlir-opt --config configs/matmul_v1_4.json
///                --input examples/matmul_v1.mlir --run
///
/// With --input the workload comes from a textual-IR file (one func.func
/// holding a linalg.matmul, linalg.conv_2d_nchw_fchw, or an equivalent
/// already-lowered linalg.generic) instead of the built-in workload
/// builders; the problem shape and element type are read off the kernel's
/// memref types.
///
/// Problem extents need not divide the accelerator tile: partial tiles
/// are padded (default) or peeled per --remainder. When the config file
/// defines several accelerators for the kernel, the planning layer
/// dispatches to the cheapest one under the cost model.
///
//===----------------------------------------------------------------------===//

#include "analysis/PlanVerifier.h"
#include "analysis/ProtocolModel.h"
#include "codegen/CEmitter.h"
#include "dialects/InitAllDialects.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "ir/Parser.h"
#include "parser/ConfigParser.h"
#include "support/EditDistance.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace axi4mlir;

namespace {

struct CliOptions {
  /// --help / -h: print usage and exit 0.
  bool Help = false;
  std::string ConfigPath;
  std::string InputPath;
  std::string Emit = "both";
  bool CpuTiling = true;
  bool Specialize = true;
  bool Run = false;
  /// --verify-plan[=strict]: statically verify the compiled ExecPlan
  /// (and every optimizer stage) before anything executes.
  bool VerifyPlan = false;
  bool VerifyStrict = false;
  /// --verify-each: run the verifier between optimizer passes under
  /// --run too (the Debug default, forced on in Release).
  bool VerifyEach = false;
  std::string Flow; // override selected_flow
  /// ExecPlan optimizer passes for --run ("none", "all" or a comma list
  /// of fold/dce/licm/coalesce).
  exec::opt::PlanOptOptions PlanOpt;
  /// Execution engine for --run: walker, plan or threaded (default).
  exec::ExecMode Exec = exec::ExecMode::Threaded;
  transforms::RemainderMode Remainder = transforms::RemainderMode::Pad;
  /// --faults spec merged over the config file's `faults` section.
  std::string FaultSpec;
  /// --spares override (config `faults.spares` when unset).
  int64_t Spares = -1;
  // MatMul problem.
  bool IsMatMul = false;
  int64_t M = 0, N = 0, K = 0;
  // Conv problem: iHW x iC x fHW x oC x stride.
  bool IsConv = false;
  int64_t InHW = 0, InC = 0, FilterHW = 0, OutC = 0, Stride = 1;
};

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: axi4mlir-opt --config FILE (--matmul MxNxK | --conv "
      "iHWxiCxfHWxoCxS | --input FILE.mlir)\n"
      "                    [--flow NAME] [--emit ir|c|both] [--run]\n"
      "                    [--no-cpu-tiling] [--no-specialize]\n"
      "                    [--remainder pad|peel|reject]\n"
      "                    [--plan-opt none|all|fold,dce,licm,coalesce]\n"
      "                    [--exec walker|plan|threaded]\n"
      "                    [--verify-plan[=strict]] [--verify-each]\n"
      "                    [--faults SPEC] [--spares N]\n"
      "  --verify-plan: statically verify the compiled plan (slot\n"
      "    def-before-use, loop structure, DMA bounds, protocol FSM\n"
      "    conformance) plus every optimizer stage; exits 1 on errors\n"
      "    (with =strict also on unproven warnings)\n"
      "  --verify-each: with --run, verify the plan between optimizer\n"
      "    passes (on by default in Debug builds)\n"
      "  --faults SPEC: comma-separated fault schedule / recovery policy,\n"
      "    e.g. 'transient@2,corrupt@5:word=3,retries=2' or\n"
      "    'rand=7:n=4,norecover' (see docs/CONFIG.md)\n");
}

/// Parses `MxNxK`-style shape lists strictly: every piece must be a fully
/// consumed positive decimal integer, so `8xx8`, `abc` or `8a` are rejected
/// with a diagnostic naming the bad token instead of silently becoming 0.
bool parseDims(const std::string &Text, std::vector<int64_t> &Out) {
  size_t Pos = 0;
  while (true) {
    size_t Next = Text.find('x', Pos);
    std::string Piece = Text.substr(
        Pos, Next == std::string::npos ? std::string::npos : Next - Pos);
    int64_t Value = 0;
    auto [End, Errc] =
        std::from_chars(Piece.data(), Piece.data() + Piece.size(), Value, 10);
    if (Errc != std::errc() || End != Piece.data() + Piece.size() ||
        Value <= 0) {
      std::fprintf(stderr,
                   "error: invalid dimension '%s' in '%s' (expected "
                   "positive integers separated by 'x')\n",
                   Piece.c_str(), Text.c_str());
      return false;
    }
    Out.push_back(Value);
    if (Next == std::string::npos)
      break;
    Pos = Next + 1;
  }
  return true;
}

/// Every flag parseArgs understands, for did-you-mean suggestions.
const std::vector<std::string> &knownFlags() {
  static const std::vector<std::string> Flags = {
      "--config",    "--input",         "--matmul",        "--conv",
      "--flow",      "--emit",          "--remainder",     "--plan-opt",
      "--exec",      "--faults",        "--spares",        "--run",
      "--verify-plan", "--verify-each",
      "--no-cpu-tiling", "--no-specialize", "--help"};
  return Flags;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Accept both `--flag value` and `--flag=value`.
    std::string Inline;
    bool HasInline = false;
    if (Arg.rfind("--", 0) == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Inline = Arg.substr(Eq + 1);
        Arg = Arg.substr(0, Eq);
        HasInline = true;
        if (Inline.empty()) {
          std::fprintf(stderr, "missing value in '%s='\n", Arg.c_str());
          return false;
        }
      }
    }
    auto next = [&]() -> const char * {
      if (HasInline)
        return Inline.c_str();
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--config") {
      const char *V = next();
      if (!V)
        return false;
      Options.ConfigPath = V;
    } else if (Arg == "--input") {
      const char *V = next();
      if (!V)
        return false;
      Options.InputPath = V;
    } else if (Arg == "--matmul") {
      const char *V = next();
      std::vector<int64_t> Dims;
      if (!V || !parseDims(V, Dims) || Dims.size() != 3)
        return false;
      Options.IsMatMul = true;
      Options.M = Dims[0];
      Options.N = Dims[1];
      Options.K = Dims[2];
    } else if (Arg == "--conv") {
      const char *V = next();
      std::vector<int64_t> Dims;
      if (!V || !parseDims(V, Dims) || Dims.size() != 5)
        return false;
      Options.IsConv = true;
      Options.InHW = Dims[0];
      Options.InC = Dims[1];
      Options.FilterHW = Dims[2];
      Options.OutC = Dims[3];
      Options.Stride = Dims[4];
    } else if (Arg == "--flow") {
      const char *V = next();
      if (!V)
        return false;
      Options.Flow = V;
    } else if (Arg == "--emit") {
      const char *V = next();
      if (!V)
        return false;
      Options.Emit = V;
      if (Options.Emit != "ir" && Options.Emit != "c" &&
          Options.Emit != "both" && Options.Emit != "none") {
        std::fprintf(stderr, "unknown emit mode '%s' (ir|c|both|none)\n",
                     V);
        return false;
      }
    } else if (Arg == "--remainder") {
      const char *V = next();
      if (!V)
        return false;
      auto Mode = transforms::parseRemainderMode(V);
      if (failed(Mode)) {
        std::fprintf(stderr,
                     "unknown remainder strategy '%s' (pad|peel|reject)\n",
                     V);
        return false;
      }
      Options.Remainder = *Mode;
    } else if (Arg == "--plan-opt") {
      const char *V = next();
      if (!V)
        return false;
      std::string SpecError;
      if (failed(exec::opt::parsePlanOptSpec(V, Options.PlanOpt,
                                             SpecError))) {
        std::fprintf(stderr, "error: %s\n", SpecError.c_str());
        return false;
      }
    } else if (Arg == "--exec") {
      const char *V = next();
      if (!V)
        return false;
      std::string ModeError;
      if (failed(exec::parseExecMode(V, Options.Exec, ModeError))) {
        std::fprintf(stderr, "error: %s\n", ModeError.c_str());
        return false;
      }
    } else if (Arg == "--faults") {
      const char *V = next();
      if (!V)
        return false;
      Options.FaultSpec = V;
    } else if (Arg == "--spares") {
      const char *V = next();
      int64_t Value = 0;
      if (!V)
        return false;
      auto [End, Errc] = std::from_chars(V, V + std::strlen(V), Value, 10);
      if (Errc != std::errc() || End != V + std::strlen(V) || Value < 0) {
        std::fprintf(stderr,
                     "error: --spares needs a non-negative integer "
                     "(got '%s')\n",
                     V);
        return false;
      }
      Options.Spares = Value;
    } else if (Arg == "--verify-plan") {
      Options.VerifyPlan = true;
      if (HasInline) {
        if (Inline != "strict") {
          std::fprintf(stderr,
                       "unknown verify-plan mode '%s' (expected 'strict')\n",
                       Inline.c_str());
          return false;
        }
        Options.VerifyStrict = true;
      }
    } else if (Arg == "--verify-each") {
      Options.VerifyEach = true;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--no-cpu-tiling") {
      Options.CpuTiling = false;
    } else if (Arg == "--no-specialize") {
      Options.Specialize = false;
    } else if (Arg == "--help" || Arg == "-h") {
      Options.Help = true;
      return true;
    } else {
      std::string Suggestion = closestSpelling(Arg, knownFlags());
      if (Suggestion.empty())
        std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      else
        std::fprintf(stderr, "unknown argument '%s'; did you mean '%s'?\n",
                     Arg.c_str(), Suggestion.c_str());
      return false;
    }
  }
  // Exactly one workload source: --matmul, --conv, or --input.
  int Sources = (Options.IsMatMul ? 1 : 0) + (Options.IsConv ? 1 : 0) +
                (Options.InputPath.empty() ? 0 : 1);
  return !Options.ConfigPath.empty() && Sources == 1;
}

/// Derives the workload description (kind, shape, element type) from a
/// parsed `--input` function by locating its single named linalg kernel.
/// Fills the same CliOptions fields the --matmul/--conv flags set.
bool describeInputWorkload(func::FuncOp Func, CliOptions &Options,
                           sim::ElemKind &Kind) {
  Operation *Kernel = nullptr;
  int KernelCount = 0;
  bool KernelIsMatMul = false;
  int64_t GenericStrideH = 1, GenericStrideW = 1;
  bool KernelIsGeneric = false;
  Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == linalg::MatmulOp::OpName ||
        Op->getName() == linalg::Conv2DNchwFchwOp::OpName) {
      Kernel = Op;
      KernelIsMatMul = Op->getName() == linalg::MatmulOp::OpName;
      KernelIsGeneric = false;
      ++KernelCount;
      return;
    }
    // Already-lowered linalg.generic kernels are accepted when they
    // structurally match one of the canonical kernels (the same matcher
    // the annotation pass uses).
    int64_t StrideH = 1, StrideW = 1;
    switch (transforms::classifyGenericKernel(Op, StrideH, StrideW)) {
    case transforms::GenericKernelKind::MatMul:
      Kernel = Op;
      KernelIsMatMul = true;
      KernelIsGeneric = true;
      ++KernelCount;
      break;
    case transforms::GenericKernelKind::Conv2D:
      Kernel = Op;
      KernelIsMatMul = false;
      KernelIsGeneric = true;
      GenericStrideH = StrideH;
      GenericStrideW = StrideW;
      ++KernelCount;
      break;
    case transforms::GenericKernelKind::None:
      break;
    }
  });
  if (KernelCount != 1) {
    std::fprintf(stderr,
                 "error: --input file must contain exactly one "
                 "linalg.matmul, linalg.conv_2d_nchw_fchw, or equivalent "
                 "linalg.generic kernel (found %d)\n",
                 KernelCount);
    return false;
  }
  auto memrefOf = [&](unsigned Index) {
    return Kernel->getOperand(Index).getType().dyn_cast<MemRefType>();
  };
  MemRefType A = memrefOf(0), B = memrefOf(1), C = memrefOf(2);
  if (!A || !B || !C) {
    std::fprintf(stderr, "error: kernel operands must be memrefs\n");
    return false;
  }
  // Match the CLI path's strictness: every extent must be a positive
  // static size (this also rejects dynamic '?' dimensions).
  for (const MemRefType &T : {A, B, C}) {
    for (int64_t Dim : T.getShape()) {
      if (isDynamic(Dim) || Dim < 1) {
        std::fprintf(stderr,
                     "error: kernel memref %s must have positive static "
                     "extents\n",
                     T.str().c_str());
        return false;
      }
    }
  }
  Type Elem = A.getElementType();
  if (Elem != B.getElementType() || Elem != C.getElementType()) {
    std::fprintf(stderr,
                 "error: kernel operands disagree on the element type\n");
    return false;
  }
  switch (Elem.getKind()) {
  case Type::Kind::I32:
    Kind = sim::ElemKind::I32;
    break;
  case Type::Kind::F32:
    Kind = sim::ElemKind::F32;
    break;
  default:
    std::fprintf(stderr,
                 "error: unsupported kernel element type %s (expected "
                 "i32 or f32)\n",
                 Elem.str().c_str());
    return false;
  }

  if (KernelIsMatMul) {
    if (A.getRank() != 2 || B.getRank() != 2 || C.getRank() != 2 ||
        A.getDimSize(1) != B.getDimSize(0) ||
        A.getDimSize(0) != C.getDimSize(0) ||
        B.getDimSize(1) != C.getDimSize(1)) {
      std::fprintf(stderr,
                   "error: linalg.matmul operand shapes are inconsistent "
                   "(%s, %s, %s)\n",
                   A.str().c_str(), B.str().c_str(), C.str().c_str());
      return false;
    }
    Options.IsMatMul = true;
    Options.M = A.getDimSize(0);
    Options.K = A.getDimSize(1);
    Options.N = B.getDimSize(1);
    return true;
  }

  // Conv: I = {1, iC, iHW, iHW}, W = {oC, iC, fHW, fHW}. Named kernels
  // carry the strides as an attribute (validated before the typed
  // accessors dereference it); generic kernels encode them in the
  // indexing maps, already extracted by the classifier.
  int64_t StrideH = GenericStrideH, StrideW = GenericStrideW;
  if (!KernelIsGeneric) {
    Attribute StridesAttr = Kernel->getAttr("strides");
    if (!StridesAttr || !StridesAttr.isArray() ||
        StridesAttr.getArrayValue().size() != 2 ||
        !StridesAttr.getArrayValue()[0].isInteger() ||
        !StridesAttr.getArrayValue()[1].isInteger()) {
      std::fprintf(stderr,
                   "error: linalg.conv_2d_nchw_fchw requires a "
                   "'strides = [sH, sW]' integer-array attribute\n");
      return false;
    }
    StrideH = StridesAttr.getArrayValue()[0].getIntValue();
    StrideW = StridesAttr.getArrayValue()[1].getIntValue();
  }
  if (A.getRank() != 4 || B.getRank() != 4 || C.getRank() != 4 ||
      A.getDimSize(2) != A.getDimSize(3) ||
      B.getDimSize(2) != B.getDimSize(3) ||
      A.getDimSize(1) != B.getDimSize(1)) {
    std::fprintf(stderr,
                 "error: linalg.conv_2d_nchw_fchw operand shapes are "
                 "inconsistent (%s, %s)\n",
                 A.str().c_str(), B.str().c_str());
    return false;
  }
  if (A.getDimSize(0) != 1) {
    std::fprintf(stderr,
                 "error: --input convolutions must have batch 1 (got %lld)\n",
                 static_cast<long long>(A.getDimSize(0)));
    return false;
  }
  if (StrideH != StrideW || StrideH < 1) {
    std::fprintf(stderr,
                 "error: --input convolutions must have equal positive "
                 "H/W strides (got [%lld, %lld])\n",
                 static_cast<long long>(StrideH),
                 static_cast<long long>(StrideW));
    return false;
  }
  // The output shape must agree with what I, W and the strides imply —
  // the interpreter drives loop bounds from C's type, so an oversized C
  // in the file would write past the --run-allocated buffer.
  int64_t OutHW = (A.getDimSize(2) - B.getDimSize(2)) / StrideH + 1;
  if (OutHW < 1 || C.getDimSize(0) != 1 ||
      C.getDimSize(1) != B.getDimSize(0) || C.getDimSize(2) != OutHW ||
      C.getDimSize(3) != OutHW) {
    std::fprintf(stderr,
                 "error: linalg.conv_2d_nchw_fchw output shape %s is "
                 "inconsistent with input %s, filter %s and stride %lld "
                 "(expected memref<1x%lldx%lldx%lld...>)\n",
                 C.str().c_str(), A.str().c_str(), B.str().c_str(),
                 static_cast<long long>(StrideH),
                 static_cast<long long>(B.getDimSize(0)),
                 static_cast<long long>(OutHW),
                 static_cast<long long>(OutHW));
    return false;
  }
  Options.IsConv = true;
  Options.InC = A.getDimSize(1);
  Options.InHW = A.getDimSize(2);
  Options.OutC = B.getDimSize(0);
  Options.FilterHW = B.getDimSize(2);
  Options.Stride = StrideH;
  return true;
}

int runTool(CliOptions Options) {
  std::string Error;
  MLIRContext Context;
  registerAllDialects(Context);

  // With --input the workload (kind, shape, element type) comes from the
  // parsed file rather than the built-in builders.
  OwningOpRef ParsedModule;
  sim::ElemKind InputKind = sim::ElemKind::I32;
  if (!Options.InputPath.empty()) {
    auto Parsed = parseSourceFile(Options.InputPath, &Context, &Error);
    if (failed(Parsed)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
    ParsedModule = std::move(*Parsed);
    if (ParsedModule->getName() != func::FuncOp::OpName) {
      std::fprintf(stderr,
                   "error: expected a top-level func.func in '%s', got "
                   "'%s'\n",
                   Options.InputPath.c_str(),
                   ParsedModule->getName().c_str());
      return 1;
    }
    if (!describeInputWorkload(func::FuncOp(ParsedModule.get()), Options,
                               InputKind))
      return 1;
  }

  auto Config = parser::parseSystemConfigFile(Options.ConfigPath, &Error);
  if (failed(Config)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  // Fault schedule: the config file's `faults` section, with --faults
  // entries appended and --spares overriding the spare count.
  sim::FaultPlan FaultPlan = Config->Faults;
  bool FaultsArmed = Config->HasFaults;
  unsigned Spares = Config->SpareAccelerators;
  if (!Options.FaultSpec.empty()) {
    if (failed(sim::parseFaultSpec(Options.FaultSpec, FaultPlan, Error))) {
      std::fprintf(stderr, "error: in --faults: %s\n", Error.c_str());
      return 1;
    }
    FaultsArmed = true;
  }
  if (Options.Spares >= 0)
    Spares = static_cast<unsigned>(Options.Spares);

  // Every accelerator implementing the requested kernel is a dispatch
  // candidate; the planning layer selects the cheapest per problem shape.
  const char *Kernel =
      Options.IsMatMul ? "linalg.matmul" : "linalg.conv_2d_nchw_fchw";
  std::vector<parser::AcceleratorDesc> Candidates;
  for (const parser::AcceleratorDesc &Desc : Config->Accelerators)
    if (Desc.Kernel == Kernel)
      Candidates.push_back(Desc);
  if (Candidates.empty()) {
    std::fprintf(stderr, "error: no accelerator for kernel '%s' in '%s'\n",
                 Kernel, Options.ConfigPath.c_str());
    return 1;
  }
  if (!Options.Flow.empty()) {
    for (parser::AcceleratorDesc &Candidate : Candidates) {
      if (!Candidate.lookupFlow(Options.Flow)) {
        std::fprintf(stderr, "error: accelerator '%s' has no flow '%s'\n",
                     Candidate.Name.c_str(), Options.Flow.c_str());
        return 1;
      }
      Candidate.SelectedFlow = Options.Flow;
    }
  }

  // The workload's element type must be fixed before planning, so all
  // dispatch candidates must agree on it.
  for (const parser::AcceleratorDesc &Candidate : Candidates) {
    if (Candidate.DataType != Candidates.front().DataType) {
      std::fprintf(stderr,
                   "error: candidate accelerators disagree on data_type "
                   "('%s' is %s, '%s' is %s)\n",
                   Candidates.front().Name.c_str(),
                   Candidates.front().DataType.c_str(),
                   Candidate.Name.c_str(), Candidate.DataType.c_str());
      return 1;
    }
  }

  sim::ElemKind Kind = Candidates.front().DataType == "f32"
                           ? sim::ElemKind::F32
                           : sim::ElemKind::I32;
  OwningOpRef Owner;
  func::FuncOp Func;
  if (ParsedModule) {
    if (InputKind != Kind) {
      std::fprintf(stderr,
                   "error: '%s' uses element type %s but config '%s' "
                   "declares data_type '%s'\n",
                   Options.InputPath.c_str(),
                   InputKind == sim::ElemKind::F32 ? "f32" : "i32",
                   Options.ConfigPath.c_str(),
                   Candidates.front().DataType.c_str());
      return 1;
    }
    Owner = std::move(ParsedModule);
    Func = func::FuncOp(Owner.get());
  } else {
    OpBuilder Builder(&Context);
    Func = Options.IsMatMul
               ? exec::buildMatMulFunc(Builder, Options.M, Options.N,
                                       Options.K, Kind)
               : exec::buildConvFunc(Builder, 1, Options.InC, Options.InHW,
                                     Options.OutC, Options.FilterHW,
                                     Options.Stride, Kind);
    Owner = OwningOpRef(Func.getOperation());
  }

  transforms::LoweringOptions Lowering;
  Lowering.EnableCpuTiling = Options.CpuTiling;
  Lowering.CacheBytes = Config->Cpu.lastLevelCacheBytes();
  Lowering.Remainder = Options.Remainder;
  auto Plans = std::make_shared<std::vector<transforms::TilingPlan>>();
  transforms::PassManager Pipeline =
      transforms::buildPipeline(Candidates, Lowering, Plans);
  if (failed(Pipeline.run(Func, Error))) {
    std::fprintf(stderr, "pipeline error: %s\n", Error.c_str());
    return 1;
  }
  if (Plans->empty()) {
    std::fprintf(stderr, "error: no kernel was matched and annotated\n");
    return 1;
  }
  const parser::AcceleratorDesc &Accel =
      Candidates[Plans->front().AcceleratorIndex];
  if (Candidates.size() > 1)
    std::fprintf(stderr,
                 "// plan: dispatching to '%s' (estimated %.3f ms)\n",
                 Accel.Name.c_str(), Plans->front().EstimatedCostMs);

  if (Options.Emit == "ir" || Options.Emit == "both") {
    std::cout << "// ---- lowered host driver IR ----\n"
              << *Func.getOperation() << "\n";
  }
  if (Options.Emit == "c" || Options.Emit == "both") {
    auto CSource = codegen::emitC(Func, &Error);
    if (failed(CSource)) {
      std::fprintf(stderr, "C emission error: %s\n", Error.c_str());
      return 1;
    }
    std::cout << "// ---- generated C driver ----\n" << *CSource << "\n";
  }

  if (Options.VerifyPlan) {
    // Static verification: compile the lowered driver to an ExecPlan,
    // prove it safe, then re-prove every optimizer stage (verify-each)
    // and the optimized result. Nothing executes.
    auto Plan = exec::ExecPlan::compile(Func, Error);
    if (!Plan) {
      std::fprintf(stderr, "verify-plan error: %s\n", Error.c_str());
      return 1;
    }
    std::string ModelError;
    FailureOr<analysis::ProtocolModel> Model =
        analysis::ProtocolModel::forAccelerator(Accel, ModelError);
    analysis::VerifyOptions VerifierOptions;
    VerifierOptions.Strict = Options.VerifyStrict;
    if (succeeded(Model))
      VerifierOptions.Model = &*Model;
    else
      std::fprintf(stderr, "// verify-plan: %s; protocol checks skipped\n",
                   ModelError.c_str());
    unsigned NumErrors = 0, NumWarnings = 0;
    auto report = [&](const char *Stage,
                      const analysis::VerifyResult &R) {
      NumErrors += R.Errors.size();
      NumWarnings += R.Warnings.size();
      for (const analysis::PlanDiag &D : R.Errors)
        std::fprintf(stderr, "verify-plan (%s) error: %s\n", Stage,
                     D.Message.c_str());
      for (const analysis::PlanDiag &D : R.Warnings)
        std::fprintf(stderr, "verify-plan (%s) warning: %s\n", Stage,
                     D.Message.c_str());
    };
    report("compiled", analysis::verifyPlan(*Plan, VerifierOptions));
    if (Options.PlanOpt.any()) {
      exec::opt::PlanOptOptions StagedOptions = Options.PlanOpt;
      StagedOptions.VerifyEach = true;
      exec::opt::PlanOptStats Stats =
          exec::opt::optimizePlan(*Plan, StagedOptions);
      if (!Stats.VerifyError.empty()) {
        ++NumErrors;
        std::fprintf(stderr, "verify-plan (after %s) error: %s\n",
                     Stats.VerifyFailedPass.c_str(),
                     Stats.VerifyError.c_str());
      } else {
        report("optimized", analysis::verifyPlan(*Plan, VerifierOptions));
      }
    }
    std::fprintf(stderr, "// verify-plan: %u error(s), %u warning(s)\n",
                 NumErrors, NumWarnings);
    if (NumErrors || (Options.VerifyStrict && NumWarnings))
      return 1;
  }

  if (!Options.Run)
    return 0;

  if (Options.VerifyEach)
    Options.PlanOpt.VerifyEach = true;

  // Build the matching simulated board from the accelerator name.
  std::unique_ptr<sim::SoC> Soc;
  if (Options.IsMatMul) {
    FailureOr<sim::MatMulAccelerator::Version> Version =
        sim::MatMulAccelerator::versionFromName(Accel.Name, Error);
    if (failed(Version)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    // Size the simulated engine from the selected accelerator's largest
    // tile (a floor of 8 here used to break --run for 4-tile configs).
    int64_t Size = 0;
    for (int64_t Tile : Accel.AccelSize)
      Size = std::max(Size, Tile);
    if (Size <= 0)
      Size = 8;
    Soc = sim::makeMatMulSoC(*Version, Size, Kind);
  } else {
    Soc = sim::makeConvSoC(Kind);
  }
  // Arm the fault injector and register spare failover units (protocol-
  // identical clones, scored like the dispatched plan). The injector must
  // outlive the run: the engine keeps a raw pointer to it.
  std::optional<sim::FaultInjector> Injector;
  if (FaultsArmed || Spares > 0) {
    for (unsigned I = 0; I < Spares; ++I) {
      auto Spare = Soc->accelerator()->cloneFresh();
      if (!Spare) {
        std::fprintf(stderr,
                     "error: accelerator '%s' cannot provide spare units\n",
                     Accel.Name.c_str());
        return 1;
      }
      Soc->addSpareAccelerator(std::move(Spare),
                               Plans->front().EstimatedCostMs);
    }
    Injector.emplace(FaultPlan);
    Soc->attachFaultInjector(&*Injector);
  }

  runtime::DmaRuntime Runtime(*Soc, Options.Specialize);

  std::vector<runtime::MemRefDesc> Args;
  if (Options.IsMatMul) {
    Args.push_back(runtime::MemRefDesc::alloc({Options.M, Options.K}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc({Options.K, Options.N}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc({Options.M, Options.N}, Kind));
  } else {
    int64_t OutHW =
        (Options.InHW - Options.FilterHW) / Options.Stride + 1;
    Args.push_back(runtime::MemRefDesc::alloc(
        {1, Options.InC, Options.InHW, Options.InHW}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc(
        {Options.OutC, Options.InC, Options.FilterHW, Options.FilterHW},
        Kind));
    Args.push_back(
        runtime::MemRefDesc::alloc({1, Options.OutC, OutHW, OutHW}, Kind));
  }
  for (size_t I = 0; I < Args.size(); ++I)
    exec::fillRandom(Args[I], static_cast<uint32_t>(13 + I));

  // Reference result for validation.
  runtime::MemRefDesc Expected = exec::cloneMemRef(Args.back());
  if (Options.IsMatMul)
    exec::referenceMatMul(Args[0], Args[1], Expected);
  else
    exec::referenceConv2D(Args[0], Args[1], Expected, Options.Stride,
                          Options.Stride);

  exec::Interpreter Interp(*Soc, &Runtime, Options.Exec);
  Interp.setPlanOptions(Options.PlanOpt);
  if (failed(Interp.run(Func, Args, Error))) {
    std::fprintf(stderr, "execution error: %s\n", Error.c_str());
    return 1;
  }
  bool Match = exec::memrefEquals(Expected, Args.back());
  std::cout << "// ---- execution on the simulated SoC ----\n"
            << "numerics match reference: " << (Match ? "yes" : "NO")
            << "\n"
            << Soc->report().summary() << "\n";
  return Match ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage(stderr);
    return 2;
  }
  if (Options.Help) {
    printUsage(stdout);
    return 0;
  }
  return runTool(Options);
}
