//===- axi4mlir-opt.cpp - Command-line pipeline driver --------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the reproduction, in the spirit of mlir-opt:
/// reads an accelerator/CPU configuration file (paper Fig. 5), builds the
/// requested linalg workload, runs the AXI4MLIR pipeline, and prints the
/// host driver as IR and/or C. Optionally executes the driver on the
/// simulated SoC and reports the perf counters.
///
/// Usage:
///   axi4mlir-opt --config configs/matmul_v3_16.json --matmul 128x128x128
///                [--flow As] [--emit ir|c|both] [--no-cpu-tiling]
///                [--no-specialize] [--run]
///   axi4mlir-opt --config configs/conv2d.json --conv 58x64x3x128x2 --run
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "dialects/InitAllDialects.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "parser/ConfigParser.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace axi4mlir;

namespace {

struct CliOptions {
  std::string ConfigPath;
  std::string Emit = "both";
  bool CpuTiling = true;
  bool Specialize = true;
  bool Run = false;
  std::string Flow; // override selected_flow
  // MatMul problem.
  bool IsMatMul = false;
  int64_t M = 0, N = 0, K = 0;
  // Conv problem: iHW x iC x fHW x oC x stride.
  bool IsConv = false;
  int64_t InHW = 0, InC = 0, FilterHW = 0, OutC = 0, Stride = 1;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: axi4mlir-opt --config FILE (--matmul MxNxK | --conv "
      "iHWxiCxfHWxoCxS)\n"
      "                    [--flow NAME] [--emit ir|c|both] [--run]\n"
      "                    [--no-cpu-tiling] [--no-specialize]\n");
}

bool parseDims(const std::string &Text, std::vector<int64_t> &Out) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Next = Text.find('x', Pos);
    std::string Piece = Text.substr(
        Pos, Next == std::string::npos ? std::string::npos : Next - Pos);
    if (Piece.empty())
      return false;
    Out.push_back(std::strtoll(Piece.c_str(), nullptr, 10));
    if (Next == std::string::npos)
      break;
    Pos = Next + 1;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--config") {
      const char *V = next();
      if (!V)
        return false;
      Options.ConfigPath = V;
    } else if (Arg == "--matmul") {
      const char *V = next();
      std::vector<int64_t> Dims;
      if (!V || !parseDims(V, Dims) || Dims.size() != 3)
        return false;
      Options.IsMatMul = true;
      Options.M = Dims[0];
      Options.N = Dims[1];
      Options.K = Dims[2];
    } else if (Arg == "--conv") {
      const char *V = next();
      std::vector<int64_t> Dims;
      if (!V || !parseDims(V, Dims) || Dims.size() != 5)
        return false;
      Options.IsConv = true;
      Options.InHW = Dims[0];
      Options.InC = Dims[1];
      Options.FilterHW = Dims[2];
      Options.OutC = Dims[3];
      Options.Stride = Dims[4];
    } else if (Arg == "--flow") {
      const char *V = next();
      if (!V)
        return false;
      Options.Flow = V;
    } else if (Arg == "--emit") {
      const char *V = next();
      if (!V)
        return false;
      Options.Emit = V;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--no-cpu-tiling") {
      Options.CpuTiling = false;
    } else if (Arg == "--no-specialize") {
      Options.Specialize = false;
    } else if (Arg == "--help" || Arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Options.ConfigPath.empty() &&
         (Options.IsMatMul != Options.IsConv);
}

int runTool(const CliOptions &Options) {
  std::string Error;
  auto Config = parser::parseSystemConfigFile(Options.ConfigPath, &Error);
  if (failed(Config)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  const char *Kernel =
      Options.IsMatMul ? "linalg.matmul" : "linalg.conv_2d_nchw_fchw";
  const parser::AcceleratorDesc *Found = Config->findByKernel(Kernel);
  if (!Found) {
    std::fprintf(stderr, "error: no accelerator for kernel '%s' in '%s'\n",
                 Kernel, Options.ConfigPath.c_str());
    return 1;
  }
  parser::AcceleratorDesc Accel = *Found;
  if (!Options.Flow.empty()) {
    if (!Accel.lookupFlow(Options.Flow)) {
      std::fprintf(stderr, "error: accelerator '%s' has no flow '%s'\n",
                   Accel.Name.c_str(), Options.Flow.c_str());
      return 1;
    }
    Accel.SelectedFlow = Options.Flow;
  }

  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  sim::ElemKind Kind =
      Accel.DataType == "f32" ? sim::ElemKind::F32 : sim::ElemKind::I32;
  func::FuncOp Func =
      Options.IsMatMul
          ? exec::buildMatMulFunc(Builder, Options.M, Options.N, Options.K,
                                  Kind)
          : exec::buildConvFunc(Builder, 1, Options.InC, Options.InHW,
                                Options.OutC, Options.FilterHW,
                                Options.Stride, Kind);
  OwningOpRef Owner(Func.getOperation());

  transforms::LoweringOptions Lowering;
  Lowering.EnableCpuTiling = Options.CpuTiling;
  Lowering.CacheBytes = Config->Cpu.lastLevelCacheBytes();
  transforms::PassManager Pipeline =
      transforms::buildPipeline(Accel, Lowering);
  if (failed(Pipeline.run(Func, Error))) {
    std::fprintf(stderr, "pipeline error: %s\n", Error.c_str());
    return 1;
  }

  if (Options.Emit == "ir" || Options.Emit == "both") {
    std::cout << "// ---- lowered host driver IR ----\n"
              << *Func.getOperation() << "\n";
  }
  if (Options.Emit == "c" || Options.Emit == "both") {
    auto CSource = codegen::emitC(Func, &Error);
    if (failed(CSource)) {
      std::fprintf(stderr, "C emission error: %s\n", Error.c_str());
      return 1;
    }
    std::cout << "// ---- generated C driver ----\n" << *CSource << "\n";
  }

  if (!Options.Run)
    return 0;

  // Build the matching simulated board from the accelerator name.
  std::unique_ptr<sim::SoC> Soc;
  if (Options.IsMatMul) {
    using V = sim::MatMulAccelerator::Version;
    V Version = Accel.Name.find("v1") != std::string::npos   ? V::V1
                : Accel.Name.find("v2") != std::string::npos ? V::V2
                : Accel.Name.find("v4") != std::string::npos ? V::V4
                                                             : V::V3;
    int64_t Size = 8;
    for (int64_t Tile : Accel.AccelSize)
      Size = std::max(Size, Tile);
    Soc = sim::makeMatMulSoC(Version, Size, Kind);
  } else {
    Soc = sim::makeConvSoC(Kind);
  }
  runtime::DmaRuntime Runtime(*Soc, Options.Specialize);

  std::vector<runtime::MemRefDesc> Args;
  if (Options.IsMatMul) {
    Args.push_back(runtime::MemRefDesc::alloc({Options.M, Options.K}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc({Options.K, Options.N}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc({Options.M, Options.N}, Kind));
  } else {
    int64_t OutHW =
        (Options.InHW - Options.FilterHW) / Options.Stride + 1;
    Args.push_back(runtime::MemRefDesc::alloc(
        {1, Options.InC, Options.InHW, Options.InHW}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc(
        {Options.OutC, Options.InC, Options.FilterHW, Options.FilterHW},
        Kind));
    Args.push_back(
        runtime::MemRefDesc::alloc({1, Options.OutC, OutHW, OutHW}, Kind));
  }
  for (size_t I = 0; I < Args.size(); ++I)
    exec::fillRandom(Args[I], static_cast<uint32_t>(13 + I));

  // Reference result for validation.
  runtime::MemRefDesc Expected = exec::cloneMemRef(Args.back());
  if (Options.IsMatMul)
    exec::referenceMatMul(Args[0], Args[1], Expected);
  else
    exec::referenceConv2D(Args[0], Args[1], Expected, Options.Stride,
                          Options.Stride);

  exec::Interpreter Interp(*Soc, &Runtime);
  if (failed(Interp.run(Func, Args, Error))) {
    std::fprintf(stderr, "execution error: %s\n", Error.c_str());
    return 1;
  }
  bool Match = exec::memrefEquals(Expected, Args.back());
  std::cout << "// ---- execution on the simulated SoC ----\n"
            << "numerics match reference: " << (Match ? "yes" : "NO")
            << "\n"
            << Soc->report().summary() << "\n";
  return Match ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }
  return runTool(Options);
}
