//===- axi4mlir-opt.cpp - Command-line pipeline driver --------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the reproduction, in the spirit of mlir-opt:
/// reads an accelerator/CPU configuration file (paper Fig. 5), builds the
/// requested linalg workload, runs the AXI4MLIR pipeline, and prints the
/// host driver as IR and/or C. Optionally executes the driver on the
/// simulated SoC and reports the perf counters.
///
/// Usage:
///   axi4mlir-opt --config configs/matmul_v3_16.json --matmul 128x128x128
///                [--flow As] [--emit ir|c|both] [--no-cpu-tiling]
///                [--no-specialize] [--remainder pad|peel|reject] [--run]
///   axi4mlir-opt --config configs/conv2d.json --conv 58x64x3x128x2 --run
///
/// Problem extents need not divide the accelerator tile: partial tiles
/// are padded (default) or peeled per --remainder. When the config file
/// defines several accelerators for the kernel, the planning layer
/// dispatches to the cheapest one under the cost model.
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "dialects/InitAllDialects.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "parser/ConfigParser.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace axi4mlir;

namespace {

struct CliOptions {
  std::string ConfigPath;
  std::string Emit = "both";
  bool CpuTiling = true;
  bool Specialize = true;
  bool Run = false;
  std::string Flow; // override selected_flow
  transforms::RemainderMode Remainder = transforms::RemainderMode::Pad;
  // MatMul problem.
  bool IsMatMul = false;
  int64_t M = 0, N = 0, K = 0;
  // Conv problem: iHW x iC x fHW x oC x stride.
  bool IsConv = false;
  int64_t InHW = 0, InC = 0, FilterHW = 0, OutC = 0, Stride = 1;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: axi4mlir-opt --config FILE (--matmul MxNxK | --conv "
      "iHWxiCxfHWxoCxS)\n"
      "                    [--flow NAME] [--emit ir|c|both] [--run]\n"
      "                    [--no-cpu-tiling] [--no-specialize]\n"
      "                    [--remainder pad|peel|reject]\n");
}

bool parseDims(const std::string &Text, std::vector<int64_t> &Out) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Next = Text.find('x', Pos);
    std::string Piece = Text.substr(
        Pos, Next == std::string::npos ? std::string::npos : Next - Pos);
    if (Piece.empty())
      return false;
    Out.push_back(std::strtoll(Piece.c_str(), nullptr, 10));
    if (Next == std::string::npos)
      break;
    Pos = Next + 1;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Accept both `--flag value` and `--flag=value`.
    std::string Inline;
    bool HasInline = false;
    if (Arg.rfind("--", 0) == 0) {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Inline = Arg.substr(Eq + 1);
        Arg = Arg.substr(0, Eq);
        HasInline = true;
        if (Inline.empty()) {
          std::fprintf(stderr, "missing value in '%s='\n", Arg.c_str());
          return false;
        }
      }
    }
    auto next = [&]() -> const char * {
      if (HasInline)
        return Inline.c_str();
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--config") {
      const char *V = next();
      if (!V)
        return false;
      Options.ConfigPath = V;
    } else if (Arg == "--matmul") {
      const char *V = next();
      std::vector<int64_t> Dims;
      if (!V || !parseDims(V, Dims) || Dims.size() != 3)
        return false;
      Options.IsMatMul = true;
      Options.M = Dims[0];
      Options.N = Dims[1];
      Options.K = Dims[2];
    } else if (Arg == "--conv") {
      const char *V = next();
      std::vector<int64_t> Dims;
      if (!V || !parseDims(V, Dims) || Dims.size() != 5)
        return false;
      Options.IsConv = true;
      Options.InHW = Dims[0];
      Options.InC = Dims[1];
      Options.FilterHW = Dims[2];
      Options.OutC = Dims[3];
      Options.Stride = Dims[4];
    } else if (Arg == "--flow") {
      const char *V = next();
      if (!V)
        return false;
      Options.Flow = V;
    } else if (Arg == "--emit") {
      const char *V = next();
      if (!V)
        return false;
      Options.Emit = V;
      if (Options.Emit != "ir" && Options.Emit != "c" &&
          Options.Emit != "both" && Options.Emit != "none") {
        std::fprintf(stderr, "unknown emit mode '%s' (ir|c|both|none)\n",
                     V);
        return false;
      }
    } else if (Arg == "--remainder") {
      const char *V = next();
      if (!V)
        return false;
      auto Mode = transforms::parseRemainderMode(V);
      if (failed(Mode)) {
        std::fprintf(stderr,
                     "unknown remainder strategy '%s' (pad|peel|reject)\n",
                     V);
        return false;
      }
      Options.Remainder = *Mode;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--no-cpu-tiling") {
      Options.CpuTiling = false;
    } else if (Arg == "--no-specialize") {
      Options.Specialize = false;
    } else if (Arg == "--help" || Arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Options.ConfigPath.empty() &&
         (Options.IsMatMul != Options.IsConv);
}

int runTool(const CliOptions &Options) {
  std::string Error;
  auto Config = parser::parseSystemConfigFile(Options.ConfigPath, &Error);
  if (failed(Config)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  // Every accelerator implementing the requested kernel is a dispatch
  // candidate; the planning layer selects the cheapest per problem shape.
  const char *Kernel =
      Options.IsMatMul ? "linalg.matmul" : "linalg.conv_2d_nchw_fchw";
  std::vector<parser::AcceleratorDesc> Candidates;
  for (const parser::AcceleratorDesc &Desc : Config->Accelerators)
    if (Desc.Kernel == Kernel)
      Candidates.push_back(Desc);
  if (Candidates.empty()) {
    std::fprintf(stderr, "error: no accelerator for kernel '%s' in '%s'\n",
                 Kernel, Options.ConfigPath.c_str());
    return 1;
  }
  if (!Options.Flow.empty()) {
    for (parser::AcceleratorDesc &Candidate : Candidates) {
      if (!Candidate.lookupFlow(Options.Flow)) {
        std::fprintf(stderr, "error: accelerator '%s' has no flow '%s'\n",
                     Candidate.Name.c_str(), Options.Flow.c_str());
        return 1;
      }
      Candidate.SelectedFlow = Options.Flow;
    }
  }

  // The workload's element type must be fixed before planning, so all
  // dispatch candidates must agree on it.
  for (const parser::AcceleratorDesc &Candidate : Candidates) {
    if (Candidate.DataType != Candidates.front().DataType) {
      std::fprintf(stderr,
                   "error: candidate accelerators disagree on data_type "
                   "('%s' is %s, '%s' is %s)\n",
                   Candidates.front().Name.c_str(),
                   Candidates.front().DataType.c_str(),
                   Candidate.Name.c_str(), Candidate.DataType.c_str());
      return 1;
    }
  }

  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  sim::ElemKind Kind = Candidates.front().DataType == "f32"
                           ? sim::ElemKind::F32
                           : sim::ElemKind::I32;
  func::FuncOp Func =
      Options.IsMatMul
          ? exec::buildMatMulFunc(Builder, Options.M, Options.N, Options.K,
                                  Kind)
          : exec::buildConvFunc(Builder, 1, Options.InC, Options.InHW,
                                Options.OutC, Options.FilterHW,
                                Options.Stride, Kind);
  OwningOpRef Owner(Func.getOperation());

  transforms::LoweringOptions Lowering;
  Lowering.EnableCpuTiling = Options.CpuTiling;
  Lowering.CacheBytes = Config->Cpu.lastLevelCacheBytes();
  Lowering.Remainder = Options.Remainder;
  auto Plans = std::make_shared<std::vector<transforms::TilingPlan>>();
  transforms::PassManager Pipeline =
      transforms::buildPipeline(Candidates, Lowering, Plans);
  if (failed(Pipeline.run(Func, Error))) {
    std::fprintf(stderr, "pipeline error: %s\n", Error.c_str());
    return 1;
  }
  if (Plans->empty()) {
    std::fprintf(stderr, "error: no kernel was matched and annotated\n");
    return 1;
  }
  const parser::AcceleratorDesc &Accel =
      Candidates[Plans->front().AcceleratorIndex];
  if (Candidates.size() > 1)
    std::fprintf(stderr,
                 "// plan: dispatching to '%s' (estimated %.3f ms)\n",
                 Accel.Name.c_str(), Plans->front().EstimatedCostMs);

  if (Options.Emit == "ir" || Options.Emit == "both") {
    std::cout << "// ---- lowered host driver IR ----\n"
              << *Func.getOperation() << "\n";
  }
  if (Options.Emit == "c" || Options.Emit == "both") {
    auto CSource = codegen::emitC(Func, &Error);
    if (failed(CSource)) {
      std::fprintf(stderr, "C emission error: %s\n", Error.c_str());
      return 1;
    }
    std::cout << "// ---- generated C driver ----\n" << *CSource << "\n";
  }

  if (!Options.Run)
    return 0;

  // Build the matching simulated board from the accelerator name.
  std::unique_ptr<sim::SoC> Soc;
  if (Options.IsMatMul) {
    using V = sim::MatMulAccelerator::Version;
    V Version = Accel.Name.find("v1") != std::string::npos   ? V::V1
                : Accel.Name.find("v2") != std::string::npos ? V::V2
                : Accel.Name.find("v4") != std::string::npos ? V::V4
                                                             : V::V3;
    // Size the simulated engine from the selected accelerator's largest
    // tile (a floor of 8 here used to break --run for 4-tile configs).
    int64_t Size = 0;
    for (int64_t Tile : Accel.AccelSize)
      Size = std::max(Size, Tile);
    if (Size <= 0)
      Size = 8;
    Soc = sim::makeMatMulSoC(Version, Size, Kind);
  } else {
    Soc = sim::makeConvSoC(Kind);
  }
  runtime::DmaRuntime Runtime(*Soc, Options.Specialize);

  std::vector<runtime::MemRefDesc> Args;
  if (Options.IsMatMul) {
    Args.push_back(runtime::MemRefDesc::alloc({Options.M, Options.K}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc({Options.K, Options.N}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc({Options.M, Options.N}, Kind));
  } else {
    int64_t OutHW =
        (Options.InHW - Options.FilterHW) / Options.Stride + 1;
    Args.push_back(runtime::MemRefDesc::alloc(
        {1, Options.InC, Options.InHW, Options.InHW}, Kind));
    Args.push_back(runtime::MemRefDesc::alloc(
        {Options.OutC, Options.InC, Options.FilterHW, Options.FilterHW},
        Kind));
    Args.push_back(
        runtime::MemRefDesc::alloc({1, Options.OutC, OutHW, OutHW}, Kind));
  }
  for (size_t I = 0; I < Args.size(); ++I)
    exec::fillRandom(Args[I], static_cast<uint32_t>(13 + I));

  // Reference result for validation.
  runtime::MemRefDesc Expected = exec::cloneMemRef(Args.back());
  if (Options.IsMatMul)
    exec::referenceMatMul(Args[0], Args[1], Expected);
  else
    exec::referenceConv2D(Args[0], Args[1], Expected, Options.Stride,
                          Options.Stride);

  exec::Interpreter Interp(*Soc, &Runtime);
  if (failed(Interp.run(Func, Args, Error))) {
    std::fprintf(stderr, "execution error: %s\n", Error.c_str());
    return 1;
  }
  bool Match = exec::memrefEquals(Expected, Args.back());
  std::cout << "// ---- execution on the simulated SoC ----\n"
            << "numerics match reference: " << (Match ? "yes" : "NO")
            << "\n"
            << Soc->report().summary() << "\n";
  return Match ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }
  return runTool(Options);
}
