//===- axi4mlir-lint.cpp - Static config & IR lint driver -----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone lint front-end over the static analysis framework
/// (src/analysis): proves user-facing inputs safe without executing
/// anything.
///
///   *.json  — parsed as a system configuration; every accelerator's
///             init opcodes and selected opcode_flow are streamed through
///             the abstract FSM model (ProtocolChecker), diagnosing
///             protocol violations (data before CFG, burst overruns,
///             unreachable recvs, non-repeatable flow scopes) at config
///             load time.
///   *.mlir  — parsed and run through the IR verifier; when the function
///             is already in lowered (accel/runtime) form it is also
///             compiled to an ExecPlan and statically verified
///             (def-before-use, loop structure, DMA bounds).
///
/// Directories are scanned recursively for files with those extensions.
/// Exit status: 0 clean, 1 findings, 2 usage error. With --strict,
/// warnings (unprovable properties) also fail the run.
///
/// Usage:
///   axi4mlir-lint configs/ examples/
///   axi4mlir-lint --strict configs/matmul_v3_16.json
///
//===----------------------------------------------------------------------===//

#include "analysis/PlanVerifier.h"
#include "analysis/ProtocolChecker.h"
#include "dialects/InitAllDialects.h"
#include "exec/ExecPlan.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "parser/ConfigParser.h"
#include "support/EditDistance.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace axi4mlir;

namespace {

struct LintOptions {
  bool Help = false;
  bool Strict = false;
  std::vector<std::string> Paths;
};

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: axi4mlir-lint [--strict] PATH...\n"
      "  PATH: a .json config, a .mlir file, or a directory scanned\n"
      "        recursively for both\n"
      "  --strict: treat warnings (unprovable properties) as failures\n"
      "  checks: config opcode_flow/opcode_map protocol conformance\n"
      "          against the abstract accelerator FSM models, IR\n"
      "          verification, and static ExecPlan safety for lowered\n"
      "          functions\n");
}

const std::vector<std::string> &knownFlags() {
  static const std::vector<std::string> Flags = {"--strict", "--help"};
  return Flags;
}

bool parseArgs(int Argc, char **Argv, LintOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Options.Help = true;
      return true;
    }
    if (Arg == "--strict") {
      Options.Strict = true;
      continue;
    }
    if (Arg.rfind("-", 0) == 0) {
      std::string Suggestion = closestSpelling(Arg, knownFlags());
      if (Suggestion.empty())
        std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      else
        std::fprintf(stderr, "unknown argument '%s'; did you mean '%s'?\n",
                     Arg.c_str(), Suggestion.c_str());
      return false;
    }
    Options.Paths.push_back(Arg);
  }
  return !Options.Paths.empty();
}

struct LintCounters {
  unsigned Files = 0;
  unsigned Errors = 0;
  unsigned Warnings = 0;
};

void lintConfig(const std::string &Path, LintCounters &Counters) {
  ++Counters.Files;
  std::string Error;
  auto Config = parser::parseSystemConfigFile(Path, &Error);
  if (failed(Config)) {
    ++Counters.Errors;
    std::fprintf(stderr, "%s: error: %s\n", Path.c_str(), Error.c_str());
    return;
  }
  for (const parser::AcceleratorDesc &Accel : Config->Accelerators) {
    analysis::ProtocolFindings Findings =
        analysis::checkConfigProtocol(Accel);
    for (const std::string &Message : Findings.Errors) {
      ++Counters.Errors;
      std::fprintf(stderr, "%s: error: %s\n", Path.c_str(),
                   Message.c_str());
    }
    for (const std::string &Message : Findings.Warnings) {
      ++Counters.Warnings;
      std::fprintf(stderr, "%s: warning: %s\n", Path.c_str(),
                   Message.c_str());
    }
  }
}

void lintIr(const std::string &Path, LintCounters &Counters) {
  ++Counters.Files;
  std::string Error;
  MLIRContext Context;
  registerAllDialects(Context);
  auto Parsed = parseSourceFile(Path, &Context, &Error);
  if (failed(Parsed)) {
    ++Counters.Errors;
    std::fprintf(stderr, "%s: error: %s\n", Path.c_str(), Error.c_str());
    return;
  }
  if (failed(verify(Parsed->get(), Error))) {
    ++Counters.Errors;
    std::fprintf(stderr, "%s: error: %s\n", Path.c_str(), Error.c_str());
    return;
  }
  if ((*Parsed)->getName() != func::FuncOp::OpName)
    return;
  // Linalg-level examples are not plan-compilable until the pipeline has
  // lowered them against a config; a compile failure is therefore not a
  // lint finding. A function that does compile must verify.
  auto Plan = exec::ExecPlan::compile(func::FuncOp(Parsed->get()), Error);
  if (!Plan)
    return;
  analysis::VerifyResult Result = analysis::verifyPlan(*Plan);
  for (const analysis::PlanDiag &D : Result.Errors) {
    ++Counters.Errors;
    std::fprintf(stderr, "%s: error: %s\n", Path.c_str(),
                 D.Message.c_str());
  }
  for (const analysis::PlanDiag &D : Result.Warnings) {
    ++Counters.Warnings;
    std::fprintf(stderr, "%s: warning: %s\n", Path.c_str(),
                 D.Message.c_str());
  }
}

bool collect(const std::string &Root, std::vector<std::string> &Json,
             std::vector<std::string> &Mlir) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::file_status Status = fs::status(Root, Ec);
  if (Ec || !fs::exists(Status)) {
    std::fprintf(stderr, "error: no such file or directory: '%s'\n",
                 Root.c_str());
    return false;
  }
  auto classify = [&](const fs::path &P) {
    if (P.extension() == ".json")
      Json.push_back(P.string());
    else if (P.extension() == ".mlir")
      Mlir.push_back(P.string());
  };
  if (fs::is_directory(Status)) {
    for (const fs::directory_entry &Entry :
         fs::recursive_directory_iterator(Root, Ec))
      if (Entry.is_regular_file())
        classify(Entry.path());
    return true;
  }
  fs::path P(Root);
  if (P.extension() != ".json" && P.extension() != ".mlir") {
    std::fprintf(stderr,
                 "error: '%s' is neither a .json config nor a .mlir "
                 "file\n",
                 Root.c_str());
    return false;
  }
  classify(P);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  LintOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage(stderr);
    return 2;
  }
  if (Options.Help) {
    printUsage(stdout);
    return 0;
  }

  std::vector<std::string> Json, Mlir;
  for (const std::string &Path : Options.Paths)
    if (!collect(Path, Json, Mlir))
      return 2;
  std::sort(Json.begin(), Json.end());
  std::sort(Mlir.begin(), Mlir.end());

  LintCounters Counters;
  for (const std::string &Path : Json)
    lintConfig(Path, Counters);
  for (const std::string &Path : Mlir)
    lintIr(Path, Counters);

  std::printf("axi4mlir-lint: %u file(s), %u error(s), %u warning(s)\n",
              Counters.Files, Counters.Errors, Counters.Warnings);
  return Counters.Errors || (Options.Strict && Counters.Warnings) ? 1 : 0;
}
