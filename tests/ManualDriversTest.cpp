//===- ManualDriversTest.cpp - Hand-written baseline driver tests ---------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/ManualDrivers.h"
#include "exec/Reference.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;
using V = sim::MatMulAccelerator::Version;

namespace {

struct Problem {
  MemRefDesc A, B, C, Expected;

  Problem(int64_t M, int64_t N, int64_t K, uint32_t Seed) {
    A = MemRefDesc::alloc({M, K});
    B = MemRefDesc::alloc({K, N});
    C = MemRefDesc::alloc({M, N});
    fillRandom(A, Seed);
    fillRandom(B, Seed + 1);
    fillRandom(C, Seed + 2);
    Expected = cloneMemRef(C);
    referenceMatMul(A, B, Expected);
  }
};

void expectManualMatches(V Version, int64_t Size, const std::string &Flow,
                         int64_t M, int64_t N, int64_t K) {
  Problem P(M, N, K, 17);
  auto Soc = sim::makeMatMulSoC(Version, Size);
  runtime::DmaRuntime Runtime(*Soc);
  ManualMatMulConfig Config;
  Config.Version = Version;
  Config.TileM = Config.TileN = Config.TileK = Size;
  Config.Flow = Flow;
  ASSERT_TRUE(runManualMatMul(Runtime, P.A, P.B, P.C, Config))
      << Runtime.errorMessage();
  EXPECT_TRUE(memrefEquals(P.Expected, P.C))
      << "v" << static_cast<int>(Version) << " " << Flow;
}

TEST(ManualMatMul, V1Ns) { expectManualMatches(V::V1, 4, "Ns", 16, 16, 16); }
TEST(ManualMatMul, V2Ns) { expectManualMatches(V::V2, 8, "Ns", 24, 16, 32); }
TEST(ManualMatMul, V2As) { expectManualMatches(V::V2, 8, "As", 24, 16, 32); }
TEST(ManualMatMul, V2Bs) { expectManualMatches(V::V2, 8, "Bs", 24, 16, 32); }
TEST(ManualMatMul, V3Ns) { expectManualMatches(V::V3, 8, "Ns", 16, 24, 32); }
TEST(ManualMatMul, V3As) { expectManualMatches(V::V3, 8, "As", 16, 24, 32); }
TEST(ManualMatMul, V3Bs) { expectManualMatches(V::V3, 8, "Bs", 16, 24, 32); }
TEST(ManualMatMul, V3Cs) { expectManualMatches(V::V3, 8, "Cs", 16, 24, 32); }

TEST(ManualMatMul, V4RectangularTiles) {
  Problem P(32, 16, 64, 23);
  auto Soc = sim::makeMatMulSoC(V::V4, 16);
  runtime::DmaRuntime Runtime(*Soc);
  ManualMatMulConfig Config;
  Config.Version = V::V4;
  Config.TileM = 16;
  Config.TileN = 8;
  Config.TileK = 32;
  Config.Flow = "Cs";
  ASSERT_TRUE(runManualMatMul(Runtime, P.A, P.B, P.C, Config))
      << Runtime.errorMessage();
  EXPECT_TRUE(memrefEquals(P.Expected, P.C));
}

TEST(ManualMatMul, StationaryFlowsMoveLessData) {
  auto run = [&](const std::string &Flow) {
    Problem P(32, 32, 32, 5);
    auto Soc = sim::makeMatMulSoC(V::V3, 8);
    runtime::DmaRuntime Runtime(*Soc);
    ManualMatMulConfig Config;
    Config.Version = V::V3;
    Config.TileM = Config.TileN = Config.TileK = 8;
    Config.Flow = Flow;
    EXPECT_TRUE(runManualMatMul(Runtime, P.A, P.B, P.C, Config));
    return Soc->report().DmaBytesMoved;
  };
  uint64_t Ns = run("Ns"), As = run("As"), Cs = run("Cs");
  EXPECT_LT(As, Ns);
  EXPECT_LT(Cs, Ns);
}

TEST(ManualConv, MatchesReferenceStride1And2) {
  for (int64_t Stride : {1, 2}) {
    MemRefDesc I = MemRefDesc::alloc({1, 4, 11, 11});
    MemRefDesc W = MemRefDesc::alloc({3, 4, 3, 3});
    int64_t OutHW = (11 - 3) / Stride + 1;
    MemRefDesc O = MemRefDesc::alloc({1, 3, OutHW, OutHW});
    fillRandom(I, 31);
    fillRandom(W, 32);
    fillRandom(O, 33);
    MemRefDesc Expected = cloneMemRef(O);
    referenceConv2D(I, W, Expected, Stride, Stride);

    auto Soc = sim::makeConvSoC();
    runtime::DmaRuntime Runtime(*Soc);
    ASSERT_TRUE(runManualConv2D(Runtime, I, W, O, Stride, Stride))
        << Runtime.errorMessage();
    EXPECT_TRUE(memrefEquals(Expected, O)) << "stride " << Stride;
  }
}

TEST(ManualConv, UnitFilter) {
  // fHW == 1 (the pointwise layers of Fig. 16).
  MemRefDesc I = MemRefDesc::alloc({1, 6, 5, 5});
  MemRefDesc W = MemRefDesc::alloc({4, 6, 1, 1});
  MemRefDesc O = MemRefDesc::alloc({1, 4, 3, 3});
  fillRandom(I, 41);
  fillRandom(W, 42);
  MemRefDesc Expected = cloneMemRef(O);
  referenceConv2D(I, W, Expected, 2, 2);

  auto Soc = sim::makeConvSoC();
  runtime::DmaRuntime Runtime(*Soc);
  ASSERT_TRUE(runManualConv2D(Runtime, I, W, O, 2, 2))
      << Runtime.errorMessage();
  EXPECT_TRUE(memrefEquals(Expected, O));
}

} // namespace
