//===- StreamEquivalenceTest.cpp - word vs. burst ingest equivalence ------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accelerator models' burst contract: consuming one opcode+data
/// stream word-at-a-time, as one giant burst, or split into arbitrary
/// randomized bursts must be observationally identical — same output FIFO
/// contents, same modeled compute cycles (bit-equal doubles), same error
/// behaviour. This is what licenses the DMA engine driving the memcpy
/// fast path instead of the word-level reference FSM.
///
//===----------------------------------------------------------------------===//

#include "sim/SoC.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

namespace {

using ModelFactory = std::function<std::unique_ptr<AcceleratorModel>()>;

/// Observable state after a stream has been consumed.
struct Observation {
  std::vector<uint32_t> Output;
  double ComputeCycles;
  bool HadError;
  std::string ErrorText;
};

Observation observe(AcceleratorModel &Model) {
  Observation Obs;
  Obs.Output = Model.drainOutput(Model.outputAvailable());
  Obs.ComputeCycles = Model.takeComputeCycles();
  Obs.HadError = Model.hadError();
  Obs.ErrorText = Model.errorMessage();
  return Obs;
}

void expectSameObservation(const Observation &Ref, const Observation &Got,
                           const std::string &What) {
  EXPECT_EQ(Ref.Output, Got.Output) << What;
  EXPECT_EQ(Ref.ComputeCycles, Got.ComputeCycles) << What; // bit-equal
  EXPECT_EQ(Ref.HadError, Got.HadError) << What;
  EXPECT_EQ(Ref.ErrorText, Got.ErrorText) << What;
}

/// Runs \p Stream through fresh models word-at-a-time (the semantic
/// reference), as one burst, and in randomized burst splits, and asserts
/// identical observable behaviour.
void checkStreamEquivalence(const ModelFactory &Make,
                            const std::vector<uint32_t> &Stream) {
  auto WordModel = Make();
  for (uint32_t Word : Stream)
    WordModel->consumeWord(Word);
  Observation Ref = observe(*WordModel);

  auto OneBurst = Make();
  OneBurst->consumeBurst(Stream.data(), Stream.size());
  expectSameObservation(Ref, observe(*OneBurst), "single burst");

  // Randomized splits, biased toward small bursts so opcode/data
  // boundaries land everywhere (deterministic seeds).
  for (uint32_t Seed = 0; Seed < 8; ++Seed) {
    std::mt19937 Rng(Seed);
    std::uniform_int_distribution<size_t> Len(1, 1 + Stream.size() / 3);
    auto Split = Make();
    size_t Pos = 0;
    while (Pos < Stream.size()) {
      size_t Take = std::min(Len(Rng), Stream.size() - Pos);
      Split->consumeBurst(Stream.data() + Pos, Take);
      Pos += Take;
    }
    expectSameObservation(Ref, observe(*Split),
                          "split seed " + std::to_string(Seed));
  }
}

/// Deterministic data words (interpreted as i32 or f32 by the model).
uint32_t dataWord(std::mt19937 &Rng, ElemKind Kind) {
  std::uniform_int_distribution<int32_t> Dist(-4, 4);
  int32_t V = Dist(Rng);
  return Kind == ElemKind::F32 ? floatToWord(static_cast<float>(V))
                               : static_cast<uint32_t>(V);
}

void appendData(std::vector<uint32_t> &Stream, size_t Count,
                std::mt19937 &Rng, ElemKind Kind) {
  for (size_t I = 0; I < Count; ++I)
    Stream.push_back(dataWord(Rng, Kind));
}

ModelFactory matmulFactory(MatMulAccelerator::Version Ver, int64_t Size,
                           ElemKind Kind) {
  return [=] {
    SoCParams Params;
    return std::make_unique<MatMulAccelerator>(Ver, Size, Kind, Params);
  };
}

//===----------------------------------------------------------------------===//
// MatMul v1..v4
//===----------------------------------------------------------------------===//

TEST(StreamEquivalence, MatMulV1) {
  std::mt19937 Rng(100);
  std::vector<uint32_t> Stream;
  for (int Tile = 0; Tile < 3; ++Tile) {
    Stream.push_back(MM_SASBCCRC);
    appendData(Stream, 2 * 8 * 8, Rng, ElemKind::I32);
  }
  Stream.push_back(MM_RESET);
  Stream.push_back(MM_SASBCCRC);
  appendData(Stream, 2 * 8 * 8, Rng, ElemKind::I32);
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V1, 8, ElemKind::I32),
      Stream);
}

TEST(StreamEquivalence, MatMulV2) {
  std::mt19937 Rng(101);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SA);
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  for (int Round = 0; Round < 2; ++Round) {
    Stream.push_back(MM_SB);
    appendData(Stream, 4 * 4, Rng, ElemKind::I32);
    Stream.push_back(MM_CC_RC);
  }
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V2, 4, ElemKind::I32),
      Stream);
}

TEST(StreamEquivalence, MatMulV3AllOpcodes) {
  std::mt19937 Rng(102);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SA);
  appendData(Stream, 8 * 8, Rng, ElemKind::I32);
  Stream.push_back(MM_SB);
  appendData(Stream, 8 * 8, Rng, ElemKind::I32);
  Stream.push_back(MM_CC);
  Stream.push_back(MM_CC); // output stationary: accumulate twice
  Stream.push_back(MM_RC);
  Stream.push_back(MM_SB_CC_RC);
  appendData(Stream, 8 * 8, Rng, ElemKind::I32);
  Stream.push_back(MM_SA_CC_RC);
  appendData(Stream, 8 * 8, Rng, ElemKind::I32);
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V3, 8, ElemKind::I32),
      Stream);
}

TEST(StreamEquivalence, MatMulV3F32) {
  std::mt19937 Rng(103);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SA);
  appendData(Stream, 8 * 8, Rng, ElemKind::F32);
  Stream.push_back(MM_SB);
  appendData(Stream, 8 * 8, Rng, ElemKind::F32);
  Stream.push_back(MM_CC_RC);
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V3, 8, ElemKind::F32),
      Stream);
}

/// v4 with a mid-stream MM_CFG resize: burst lengths change with the
/// configured tile, so split boundaries must track the new geometry.
TEST(StreamEquivalence, MatMulV4CfgResize) {
  std::mt19937 Rng(104);
  std::vector<uint32_t> Stream;
  auto tile = [&](int64_t M, int64_t Kk, int64_t N) {
    Stream.push_back(MM_CFG);
    Stream.push_back(static_cast<uint32_t>(M));
    Stream.push_back(static_cast<uint32_t>(Kk));
    Stream.push_back(static_cast<uint32_t>(N));
    Stream.push_back(MM_SA);
    appendData(Stream, static_cast<size_t>(M * Kk), Rng, ElemKind::I32);
    Stream.push_back(MM_SB);
    appendData(Stream, static_cast<size_t>(Kk * N), Rng, ElemKind::I32);
    Stream.push_back(MM_CC);
    Stream.push_back(MM_RC);
  };
  tile(8, 32, 4);
  tile(16, 16, 16);
  tile(4, 4, 64);
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V4, 16, ElemKind::I32),
      Stream);
}

/// Errors mid-stream: every path must stop at the same word and drop the
/// rest, reporting the same message.
TEST(StreamEquivalence, MatMulErrorBehaviour) {
  std::mt19937 Rng(105);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SA);
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  Stream.push_back(MM_CFG); // unsupported on v3 -> error
  Stream.push_back(MM_SB);  // dropped
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V3, 4, ElemKind::I32),
      Stream);

  // v4 cfg that does not fit the buffers errors inside a burst.
  std::vector<uint32_t> CfgStream = {MM_CFG, 10000, 10000, 10000, MM_SA, 1};
  checkStreamEquivalence(
      matmulFactory(MatMulAccelerator::Version::V4, 16, ElemKind::I32),
      CfgStream);
}

//===----------------------------------------------------------------------===//
// Conv2D
//===----------------------------------------------------------------------===//

ModelFactory convFactory(ElemKind Kind, int64_t MaxWindowWords = 256 * 7 * 7) {
  return [=] {
    SoCParams Params;
    return std::make_unique<ConvAccelerator>(Kind, Params, MaxWindowWords);
  };
}

TEST(StreamEquivalence, ConvSlices) {
  std::mt19937 Rng(200);
  std::vector<uint32_t> Stream;
  Stream.push_back(CONV_SET_FS);
  Stream.push_back(3);
  Stream.push_back(CONV_SET_IC);
  Stream.push_back(4);
  const size_t WindowWords = 4 * 3 * 3;
  for (int Slice = 0; Slice < 2; ++Slice) {
    Stream.push_back(CONV_SF);
    appendData(Stream, WindowWords, Rng, ElemKind::I32);
    for (int W = 0; W < 3; ++W) {
      Stream.push_back(CONV_SICO);
      appendData(Stream, WindowWords, Rng, ElemKind::I32);
    }
    Stream.push_back(CONV_RO);
  }
  checkStreamEquivalence(convFactory(ElemKind::I32), Stream);
}

TEST(StreamEquivalence, ConvF32Reconfigure) {
  std::mt19937 Rng(201);
  std::vector<uint32_t> Stream;
  auto slice = [&](uint32_t FS, uint32_t IC, int Windows) {
    Stream.push_back(CONV_SET_FS);
    Stream.push_back(FS);
    Stream.push_back(CONV_SET_IC);
    Stream.push_back(IC);
    size_t WindowWords = static_cast<size_t>(IC) * FS * FS;
    Stream.push_back(CONV_SF);
    appendData(Stream, WindowWords, Rng, ElemKind::F32);
    for (int W = 0; W < Windows; ++W) {
      Stream.push_back(CONV_SICO);
      appendData(Stream, WindowWords, Rng, ElemKind::F32);
    }
    Stream.push_back(CONV_RO);
  };
  slice(2, 3, 2);
  slice(1, 8, 4); // fHW == 1 layers (paper Sec. IV-D)
  checkStreamEquivalence(convFactory(ElemKind::F32), Stream);
}

TEST(StreamEquivalence, ConvErrorBehaviour) {
  std::mt19937 Rng(202);
  // Unknown opcode mid-stream.
  std::vector<uint32_t> Stream;
  Stream.push_back(CONV_SET_FS);
  Stream.push_back(2);
  Stream.push_back(CONV_SET_IC);
  Stream.push_back(2);
  Stream.push_back(CONV_SF);
  appendData(Stream, 8, Rng, ElemKind::I32);
  Stream.push_back(0xDEAD); // error; the rest is dropped
  Stream.push_back(CONV_SICO);
  appendData(Stream, 8, Rng, ElemKind::I32);
  checkStreamEquivalence(convFactory(ElemKind::I32), Stream);

  // Window burst that no longer matches the loaded filter (cfg changed
  // between SF and SICO).
  std::vector<uint32_t> Mismatch;
  Mismatch.push_back(CONV_SET_FS);
  Mismatch.push_back(2);
  Mismatch.push_back(CONV_SET_IC);
  Mismatch.push_back(2);
  Mismatch.push_back(CONV_SF);
  appendData(Mismatch, 8, Rng, ElemKind::I32);
  Mismatch.push_back(CONV_SET_IC);
  Mismatch.push_back(3);
  Mismatch.push_back(CONV_SICO);
  appendData(Mismatch, 12, Rng, ElemKind::I32);
  Mismatch.push_back(CONV_RO); // dropped after the mismatch error
  checkStreamEquivalence(convFactory(ElemKind::I32), Mismatch);
}

//===----------------------------------------------------------------------===//
// drainOutputInto
//===----------------------------------------------------------------------===//

TEST(StreamEquivalence, DrainOutputIntoMatchesDrainOutput) {
  SoCParams Params;
  MatMulAccelerator A(MatMulAccelerator::Version::V1, 4, ElemKind::I32,
                      Params);
  MatMulAccelerator B(MatMulAccelerator::Version::V1, 4, ElemKind::I32,
                      Params);
  std::mt19937 Rng(300);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SASBCCRC);
  appendData(Stream, 2 * 4 * 4, Rng, ElemKind::I32);
  A.consumeBurst(Stream.data(), Stream.size());
  B.consumeBurst(Stream.data(), Stream.size());

  // Partial drains interleaved with refills recycle the flat FIFO.
  std::vector<uint32_t> Ref = A.drainOutput(10);
  std::vector<uint32_t> Got(16, 0xAAAAAAAA);
  ASSERT_EQ(B.drainOutputInto(Got.data(), 10), 10u);
  EXPECT_TRUE(std::equal(Ref.begin(), Ref.end(), Got.begin()));
  EXPECT_EQ(A.outputAvailable(), B.outputAvailable());

  Ref = A.drainOutput(100); // over-asking caps at what is available
  ASSERT_EQ(B.drainOutputInto(Got.data(), 100), Ref.size());
  EXPECT_TRUE(std::equal(Ref.begin(), Ref.end(), Got.begin()));
  EXPECT_EQ(B.outputAvailable(), 0u);
}

//===----------------------------------------------------------------------===//
// Injected faults: a mid-stream fault must be observed identically under
// word-at-a-time, single-burst and split-burst delivery — same AccelStatus,
// same message, same dropped-suffix count. This is what lets the DMA
// engine's recovery loop reason about the retry suffix without knowing how
// the stream was chunked.
//===----------------------------------------------------------------------===//

struct FaultObservation {
  AccelStatus Status = AccelStatus::Ok;
  std::string Message;
  size_t Dropped = 0;
  uint64_t StallSteps = 0;
  std::vector<uint32_t> Output;
  double ComputeCycles = 0;
};

FaultObservation observeFault(AcceleratorModel &Model) {
  FaultObservation Obs;
  Obs.Status = Model.status();
  Obs.Message = Model.transientMessage();
  Obs.StallSteps = Model.takeStallSteps();
  Obs.Dropped = Model.takeTransientDropped();
  Obs.Output = Model.drainOutput(Model.outputAvailable());
  Obs.ComputeCycles = Model.takeComputeCycles();
  return Obs;
}

void expectSameFaultObservation(const FaultObservation &Ref,
                                const FaultObservation &Got,
                                const std::string &What) {
  EXPECT_EQ(Ref.Status, Got.Status) << What;
  EXPECT_EQ(Ref.Message, Got.Message) << What;
  EXPECT_EQ(Ref.Dropped, Got.Dropped) << What;
  EXPECT_EQ(Ref.StallSteps, Got.StallSteps) << What;
  EXPECT_EQ(Ref.Output, Got.Output) << What;
  EXPECT_EQ(Ref.ComputeCycles, Got.ComputeCycles) << What; // bit-equal
}

/// Streams \p Stream into fresh models carrying a fresh injector built
/// from \p Plan, under every delivery shape, asserting identical
/// fault observations.
void checkFaultEquivalence(const ModelFactory &Make,
                           const std::vector<uint32_t> &Stream,
                           const FaultPlan &Plan) {
  auto WordModel = Make();
  FaultInjector WordInjector(Plan);
  WordModel->attachFaultInjector(&WordInjector);
  for (uint32_t Word : Stream)
    WordModel->consumeWord(Word);
  FaultObservation Ref = observeFault(*WordModel);

  auto OneBurst = Make();
  FaultInjector BurstInjector(Plan);
  OneBurst->attachFaultInjector(&BurstInjector);
  OneBurst->consumeBurst(Stream.data(), Stream.size());
  expectSameFaultObservation(Ref, observeFault(*OneBurst), "single burst");
  EXPECT_EQ(WordInjector.faultsFired(), BurstInjector.faultsFired());

  for (uint32_t Seed = 0; Seed < 8; ++Seed) {
    std::mt19937 Rng(Seed);
    std::uniform_int_distribution<size_t> Len(1, 1 + Stream.size() / 3);
    auto Split = Make();
    FaultInjector SplitInjector(Plan);
    Split->attachFaultInjector(&SplitInjector);
    size_t Pos = 0;
    while (Pos < Stream.size()) {
      size_t Take = std::min(Len(Rng), Stream.size() - Pos);
      Split->consumeBurst(Stream.data() + Pos, Take);
      Pos += Take;
    }
    expectSameFaultObservation(Ref, observeFault(*Split),
                               "split seed " + std::to_string(Seed));
    EXPECT_EQ(WordInjector.faultsFired(), SplitInjector.faultsFired());
  }
}

TEST(StreamEquivalence, TransientFaultSameUnderAnyDelivery) {
  std::mt19937 Rng(400);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SA);
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  Stream.push_back(MM_SB); // opcode index 1: refused
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  Stream.push_back(MM_CC_RC); // dropped with the rest of the stream

  FaultPlan Plan;
  FaultEvent Event;
  Event.Kind = FaultKind::TransientError;
  Event.At = 1;
  Plan.Events.push_back(Event);

  checkFaultEquivalence(
      matmulFactory(MatMulAccelerator::Version::V3, 4, ElemKind::I32),
      Stream, Plan);

  // The reference observation itself: Transient status, dropped suffix =
  // refused opcode + 16 data words + trailing opcode.
  SoCParams Params;
  MatMulAccelerator Model(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                          Params);
  FaultInjector Injector(Plan);
  Model.attachFaultInjector(&Injector);
  Model.consumeBurst(Stream.data(), Stream.size());
  EXPECT_EQ(Model.status(), AccelStatus::Transient);
  EXPECT_NE(Model.transientMessage().find("injected transient-error fault"),
            std::string::npos)
      << Model.transientMessage();
  EXPECT_FALSE(Model.hadError()); // transient, not fatal
  EXPECT_EQ(Model.takeTransientDropped(), size_t(1 + 16 + 1));
  EXPECT_EQ(Model.status(), AccelStatus::Ok); // harvest clears it
}

TEST(StreamEquivalence, StallFaultSameUnderAnyDelivery) {
  std::mt19937 Rng(401);
  std::vector<uint32_t> Stream;
  Stream.push_back(MM_SA);
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  Stream.push_back(MM_SB); // opcode index 1: stalls, then proceeds
  appendData(Stream, 4 * 4, Rng, ElemKind::I32);
  Stream.push_back(MM_CC_RC);

  FaultPlan Plan;
  FaultEvent Event;
  Event.Kind = FaultKind::Stall;
  Event.At = 1;
  Event.Steps = 48;
  Plan.Events.push_back(Event);

  checkFaultEquivalence(
      matmulFactory(MatMulAccelerator::Version::V3, 4, ElemKind::I32),
      Stream, Plan);
}

TEST(StreamEquivalence, ConvTransientFaultSameUnderAnyDelivery) {
  std::mt19937 Rng(402);
  std::vector<uint32_t> Stream;
  Stream.push_back(CONV_SET_FS);
  Stream.push_back(2);
  Stream.push_back(CONV_SET_IC);
  Stream.push_back(1);
  Stream.push_back(CONV_SF); // opcode index 2: refused
  appendData(Stream, 2 * 2, Rng, ElemKind::I32);
  Stream.push_back(CONV_SICO);
  appendData(Stream, 2 * 2, Rng, ElemKind::I32);

  FaultPlan Plan;
  FaultEvent Event;
  Event.Kind = FaultKind::TransientError;
  Event.At = 2;
  Plan.Events.push_back(Event);

  checkFaultEquivalence(convFactory(ElemKind::I32), Stream, Plan);
}

} // namespace
