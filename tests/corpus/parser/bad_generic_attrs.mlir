func.func() ({
^bb:
  "linalg.generic"() ({
^bb0(%a: i32):
  linalg.yield(%a) : (i32) -> ()
}) {indexing_maps = [], iterator_types = [3.5], operand_segment_sizes = "no"} : () -> ()
  func.return() : () -> ()
}) {sym_name = "f", function_type = () -> ()} : () -> ()
