func.func() ({
^bb:
  "axirt.copy_to_dma"(%99) : (memref<4xi32>) -> ()
  func.return() : () -> ()
}) {sym_name = "f", function_type = () -> ()} : () -> ()
