func.func() ({
^bb(%arg0: memref<4x4xi32>):
  linalg.matmul(%arg0