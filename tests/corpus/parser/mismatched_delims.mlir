func.func() ({
^bb:
  func.return() : () -> ()
]) {sym_name = "f"} : () -> ()
