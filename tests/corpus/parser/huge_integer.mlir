func.func() ({
^bb:
  func.return() : () -> ()
}) {sym_name = "f", function_type = () -> (), x = 99999999999999999999999999999999999} : () -> ()
