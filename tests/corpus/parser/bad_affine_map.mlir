func.func() ({
^bb:
  func.return() : () -> ()
}) {sym_name = "f", function_type = () -> (), m = affine_map<(d0, d1) -> (d0 + )>} : () -> ()
