func.func() ({
^bb:
  %0 = arith.constant() {value = 1 : index} : () -> index
  %0 = arith.constant() {value = 2 : index} : () -> index
  func.return() : () -> ()
}) {sym_name = "f", function_type = () -> ()} : () -> ()
