func.func() ({
^bb:
  func.return() : () -> ()
}) {sym_name = "f", function_type = () -> (), accel_opcode_map = opcode_map<sA = [op_send(0), op_recv(>} : () -> ()
