func.func() ({
^bb(%arg0: memref<-4x0xi32>):
  func.return() : () -> ()
}) {sym_name = "f", function_type = (memref<-4x0xi32>) -> ()} : () -> ()
