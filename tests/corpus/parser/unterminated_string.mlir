func.func() ({}) {sym_name = "f, function_type = () -> ()} : () -> ()
