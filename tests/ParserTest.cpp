//===- ParserTest.cpp - opcode_map / opcode_flow grammar tests ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Fig. 7 / Fig. 8 grammars against the exact strings the paper
/// shows (matmul Fig. 6a, conv Fig. 15a) plus malformed-input diagnostics.
///
//===----------------------------------------------------------------------===//

#include "parser/OpcodeParser.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::parser;
using accel::OpcodeAction;

namespace {

TEST(OpcodeMapParser, PaperFig6aMatmul) {
  // Verbatim structure of paper Fig. 6a L14-L20.
  auto Map = parseOpcodeMap(
      "opcode_map < "
      "sA = [send_literal(0x22), send(0)], "
      "sB = [send_literal(0x23), send(1)], "
      "cC = [send_literal(0xF0)], "
      "rC = [send_literal(0x24), recv(2)], "
      "sBcCrC = [send_literal(0x25), send(1), recv(2)], "
      "reset = [send_literal(0xFF)] >");
  ASSERT_TRUE(succeeded(Map));
  EXPECT_EQ(Map->Entries.size(), 6u);

  const accel::OpcodeEntry *SA = Map->lookup("sA");
  ASSERT_NE(SA, nullptr);
  ASSERT_EQ(SA->Actions.size(), 2u);
  EXPECT_EQ(SA->Actions[0].ActionKind, OpcodeAction::Kind::SendLiteral);
  EXPECT_EQ(SA->Actions[0].Literal, 0x22);
  EXPECT_EQ(SA->Actions[1].ActionKind, OpcodeAction::Kind::Send);
  EXPECT_EQ(SA->Actions[1].ArgIndex, 0);

  const accel::OpcodeEntry *Combined = Map->lookup("sBcCrC");
  ASSERT_NE(Combined, nullptr);
  ASSERT_EQ(Combined->Actions.size(), 3u);
  EXPECT_EQ(Combined->Actions[2].ActionKind, OpcodeAction::Kind::Recv);
  EXPECT_EQ(Combined->Actions[2].ArgIndex, 2);
}

TEST(OpcodeMapParser, PaperFig15aConv) {
  auto Map = parseOpcodeMap(
      "opcode_map< "
      "sIcO = [send_literal(70), send(0)], "
      "sF = [send_literal(1), send(1)], "
      "rO = [send_literal(8), recv(2)], "
      "rst = [send_literal(32), send_dim(1, 3), send_literal(16), "
      "send_dim(0, 1)] >");
  ASSERT_TRUE(succeeded(Map));
  const accel::OpcodeEntry *Rst = Map->lookup("rst");
  ASSERT_NE(Rst, nullptr);
  ASSERT_EQ(Rst->Actions.size(), 4u);
  EXPECT_EQ(Rst->Actions[1].ActionKind, OpcodeAction::Kind::SendDim);
  EXPECT_EQ(Rst->Actions[1].ArgIndex, 1);
  EXPECT_EQ(Rst->Actions[1].DimIndex, 3);
  EXPECT_EQ(Rst->Actions[3].ArgIndex, 0);
  EXPECT_EQ(Rst->Actions[3].DimIndex, 1);
}

TEST(OpcodeMapParser, OptionalWrapperAndSendIdx) {
  auto Map = parseOpcodeMap("tok = [send_idx(2), send_dim(7)]");
  ASSERT_TRUE(succeeded(Map));
  EXPECT_EQ(Map->Entries[0].Actions[0].ActionKind,
            OpcodeAction::Kind::SendIdx);
  EXPECT_EQ(Map->Entries[0].Actions[0].DimIndex, 2);
  // Single-arg send_dim: dimension of the iteration space.
  EXPECT_EQ(Map->Entries[0].Actions[1].ArgIndex, -1);
  EXPECT_EQ(Map->Entries[0].Actions[1].DimIndex, 7);
}

TEST(OpcodeMapParser, DimensionNames) {
  std::vector<std::string> Dims = {"m", "n", "k"};
  auto Map = parseOpcodeMap("t = [send_idx(k)]", nullptr, &Dims);
  ASSERT_TRUE(succeeded(Map));
  EXPECT_EQ(Map->Entries[0].Actions[0].DimIndex, 2);
}

TEST(OpcodeMapParser, Errors) {
  std::string Error;
  EXPECT_TRUE(failed(parseOpcodeMap("sA = [send()]", &Error)));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("sA = [explode(1)]", &Error)));
  EXPECT_NE(Error.find("explode"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("sA = send(1)", &Error)));
  Error.clear();
  EXPECT_TRUE(
      failed(parseOpcodeMap("sA = [send(1)], sA = [send(2)]", &Error)));
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("", &Error)));
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("sA = [send_idx(q)]", &Error)));
}

TEST(OpcodeFlowParser, FlatAndNested) {
  auto Ns = parseOpcodeFlow("opcode_flow < (sA sB cC rC) >");
  ASSERT_TRUE(succeeded(Ns));
  EXPECT_EQ(Ns->Root.depth(), 1u);
  EXPECT_EQ(Ns->allTokens(),
            (std::vector<std::string>{"sA", "sB", "cC", "rC"}));

  // A-stationary (paper Fig. 6a L23).
  auto As = parseOpcodeFlow("(sA (sBcCrC))");
  ASSERT_TRUE(succeeded(As));
  EXPECT_EQ(As->Root.depth(), 2u);
  ASSERT_EQ(As->Root.Items.size(), 2u);
  EXPECT_TRUE(As->Root.Items[0].isToken());
  EXPECT_TRUE(As->Root.Items[1].isScope());
  EXPECT_EQ(As->Root.Items[1].Scope->Items[0].Token, "sBcCrC");

  // Output-stationary conv (paper Fig. 15a L10).
  auto Os = parseOpcodeFlow("(sF (sIcO) rO)");
  ASSERT_TRUE(succeeded(Os));
  ASSERT_EQ(Os->Root.Items.size(), 3u);
  EXPECT_TRUE(Os->Root.Items[1].isScope());
  EXPECT_EQ(Os->Root.Items[2].Token, "rO");
}

TEST(OpcodeFlowParser, DeeplyNested) {
  auto Flow = parseOpcodeFlow("(a (b (c d)) e)");
  ASSERT_TRUE(succeeded(Flow));
  EXPECT_EQ(Flow->Root.depth(), 3u);
  EXPECT_EQ(Flow->allTokens(),
            (std::vector<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(OpcodeFlowParser, Errors) {
  std::string Error;
  EXPECT_TRUE(failed(parseOpcodeFlow("(sA", &Error)));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeFlow("()", &Error)));
  EXPECT_NE(Error.find("at least one"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeFlow("(sA) extra", &Error)));
}

TEST(FlowValidation, AgainstMap) {
  auto Map = parseOpcodeMap("sA = [send(0)], sB = [send(1)]");
  ASSERT_TRUE(succeeded(Map));
  auto Good = parseOpcodeFlow("(sA (sB))");
  ASSERT_TRUE(succeeded(Good));
  EXPECT_TRUE(succeeded(validateFlowAgainstMap(*Good, *Map)));
  auto Bad = parseOpcodeFlow("(sA sX)");
  ASSERT_TRUE(succeeded(Bad));
  std::string Error;
  EXPECT_TRUE(failed(validateFlowAgainstMap(*Bad, *Map, &Error)));
  EXPECT_NE(Error.find("sX"), std::string::npos);
}

} // namespace
