//===- ParserTest.cpp - textual parser tests ------------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the textual parsers: the opcode_map / opcode_flow grammars
/// (Fig. 7 / Fig. 8, against the exact strings the paper shows) and the
/// generic-form IR parser (ir/Parser.h) — accepted syntax for every type
/// and attribute kind, and line/column diagnostics for malformed input
/// (unbalanced regions, unknown types, dangling SSA uses, overflowed
/// literals, ...).
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/Pipeline.h"
#include "ir/Parser.h"
#include "parser/OpcodeParser.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace axi4mlir;
using namespace axi4mlir::parser;
using accel::OpcodeAction;

namespace {

TEST(OpcodeMapParser, PaperFig6aMatmul) {
  // Verbatim structure of paper Fig. 6a L14-L20.
  auto Map = parseOpcodeMap(
      "opcode_map < "
      "sA = [send_literal(0x22), send(0)], "
      "sB = [send_literal(0x23), send(1)], "
      "cC = [send_literal(0xF0)], "
      "rC = [send_literal(0x24), recv(2)], "
      "sBcCrC = [send_literal(0x25), send(1), recv(2)], "
      "reset = [send_literal(0xFF)] >");
  ASSERT_TRUE(succeeded(Map));
  EXPECT_EQ(Map->Entries.size(), 6u);

  const accel::OpcodeEntry *SA = Map->lookup("sA");
  ASSERT_NE(SA, nullptr);
  ASSERT_EQ(SA->Actions.size(), 2u);
  EXPECT_EQ(SA->Actions[0].ActionKind, OpcodeAction::Kind::SendLiteral);
  EXPECT_EQ(SA->Actions[0].Literal, 0x22);
  EXPECT_EQ(SA->Actions[1].ActionKind, OpcodeAction::Kind::Send);
  EXPECT_EQ(SA->Actions[1].ArgIndex, 0);

  const accel::OpcodeEntry *Combined = Map->lookup("sBcCrC");
  ASSERT_NE(Combined, nullptr);
  ASSERT_EQ(Combined->Actions.size(), 3u);
  EXPECT_EQ(Combined->Actions[2].ActionKind, OpcodeAction::Kind::Recv);
  EXPECT_EQ(Combined->Actions[2].ArgIndex, 2);
}

TEST(OpcodeMapParser, PaperFig15aConv) {
  auto Map = parseOpcodeMap(
      "opcode_map< "
      "sIcO = [send_literal(70), send(0)], "
      "sF = [send_literal(1), send(1)], "
      "rO = [send_literal(8), recv(2)], "
      "rst = [send_literal(32), send_dim(1, 3), send_literal(16), "
      "send_dim(0, 1)] >");
  ASSERT_TRUE(succeeded(Map));
  const accel::OpcodeEntry *Rst = Map->lookup("rst");
  ASSERT_NE(Rst, nullptr);
  ASSERT_EQ(Rst->Actions.size(), 4u);
  EXPECT_EQ(Rst->Actions[1].ActionKind, OpcodeAction::Kind::SendDim);
  EXPECT_EQ(Rst->Actions[1].ArgIndex, 1);
  EXPECT_EQ(Rst->Actions[1].DimIndex, 3);
  EXPECT_EQ(Rst->Actions[3].ArgIndex, 0);
  EXPECT_EQ(Rst->Actions[3].DimIndex, 1);
}

TEST(OpcodeMapParser, OptionalWrapperAndSendIdx) {
  auto Map = parseOpcodeMap("tok = [send_idx(2), send_dim(7)]");
  ASSERT_TRUE(succeeded(Map));
  EXPECT_EQ(Map->Entries[0].Actions[0].ActionKind,
            OpcodeAction::Kind::SendIdx);
  EXPECT_EQ(Map->Entries[0].Actions[0].DimIndex, 2);
  // Single-arg send_dim: dimension of the iteration space.
  EXPECT_EQ(Map->Entries[0].Actions[1].ArgIndex, -1);
  EXPECT_EQ(Map->Entries[0].Actions[1].DimIndex, 7);
}

TEST(OpcodeMapParser, DimensionNames) {
  std::vector<std::string> Dims = {"m", "n", "k"};
  auto Map = parseOpcodeMap("t = [send_idx(k)]", nullptr, &Dims);
  ASSERT_TRUE(succeeded(Map));
  EXPECT_EQ(Map->Entries[0].Actions[0].DimIndex, 2);
}

TEST(OpcodeMapParser, Errors) {
  std::string Error;
  EXPECT_TRUE(failed(parseOpcodeMap("sA = [send()]", &Error)));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("sA = [explode(1)]", &Error)));
  EXPECT_NE(Error.find("explode"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("sA = send(1)", &Error)));
  Error.clear();
  EXPECT_TRUE(
      failed(parseOpcodeMap("sA = [send(1)], sA = [send(2)]", &Error)));
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("", &Error)));
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeMap("sA = [send_idx(q)]", &Error)));
}

TEST(OpcodeFlowParser, FlatAndNested) {
  auto Ns = parseOpcodeFlow("opcode_flow < (sA sB cC rC) >");
  ASSERT_TRUE(succeeded(Ns));
  EXPECT_EQ(Ns->Root.depth(), 1u);
  EXPECT_EQ(Ns->allTokens(),
            (std::vector<std::string>{"sA", "sB", "cC", "rC"}));

  // A-stationary (paper Fig. 6a L23).
  auto As = parseOpcodeFlow("(sA (sBcCrC))");
  ASSERT_TRUE(succeeded(As));
  EXPECT_EQ(As->Root.depth(), 2u);
  ASSERT_EQ(As->Root.Items.size(), 2u);
  EXPECT_TRUE(As->Root.Items[0].isToken());
  EXPECT_TRUE(As->Root.Items[1].isScope());
  EXPECT_EQ(As->Root.Items[1].Scope->Items[0].Token, "sBcCrC");

  // Output-stationary conv (paper Fig. 15a L10).
  auto Os = parseOpcodeFlow("(sF (sIcO) rO)");
  ASSERT_TRUE(succeeded(Os));
  ASSERT_EQ(Os->Root.Items.size(), 3u);
  EXPECT_TRUE(Os->Root.Items[1].isScope());
  EXPECT_EQ(Os->Root.Items[2].Token, "rO");
}

TEST(OpcodeFlowParser, DeeplyNested) {
  auto Flow = parseOpcodeFlow("(a (b (c d)) e)");
  ASSERT_TRUE(succeeded(Flow));
  EXPECT_EQ(Flow->Root.depth(), 3u);
  EXPECT_EQ(Flow->allTokens(),
            (std::vector<std::string>{"a", "b", "c", "d", "e"}));
}

TEST(OpcodeFlowParser, Errors) {
  std::string Error;
  EXPECT_TRUE(failed(parseOpcodeFlow("(sA", &Error)));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeFlow("()", &Error)));
  EXPECT_NE(Error.find("at least one"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(parseOpcodeFlow("(sA) extra", &Error)));
}

//===----------------------------------------------------------------------===//
// Generic-form IR parser
//===----------------------------------------------------------------------===//

/// Parses \p Source without verification (so syntax can be tested with
/// unregistered op names) and asserts success.
OwningOpRef parseOk(MLIRContext &Context, const std::string &Source) {
  ParserOptions Options;
  Options.Verify = false;
  std::string Error;
  auto Result = parseSourceString(Source, &Context, &Error, Options);
  EXPECT_TRUE(succeeded(Result)) << Error;
  return succeeded(Result) ? std::move(*Result) : OwningOpRef();
}

/// Parses \p Source expecting failure; returns the diagnostic.
std::string parseErr(MLIRContext &Context, const std::string &Source,
                     bool Verify = false) {
  ParserOptions Options;
  Options.Verify = Verify;
  std::string Error;
  auto Result = parseSourceString(Source, &Context, &Error, Options);
  EXPECT_TRUE(failed(Result)) << "unexpected parse success for: " << Source;
  return Error;
}

TEST(IRParser, MinimalOperation) {
  MLIRContext Context;
  auto Op = parseOk(Context, "test.op() : () -> ()");
  ASSERT_TRUE(Op);
  EXPECT_EQ(Op->getName(), "test.op");
  EXPECT_EQ(Op->getNumOperands(), 0u);
  EXPECT_EQ(Op->getNumResults(), 0u);
  EXPECT_EQ(Op->getNumRegions(), 0u);
}

TEST(IRParser, ResultsOperandsAndUses) {
  MLIRContext Context;
  auto Op = parseOk(Context, "test.wrap() ({\n"
                             "^bb():\n"
                             "  %0 = test.a() : () -> (i32)\n"
                             "  %1, %2 = test.b(%0) : (i32) -> (i32, f64)\n"
                             "  test.c(%2, %1, %0) : (f64, i32, i32) -> ()\n"
                             "}) : () -> ()");
  ASSERT_TRUE(Op);
  Block &Body = Op->getRegion(0).front();
  ASSERT_EQ(Body.getOperations().size(), 3u);
  Operation *C = Body.back();
  EXPECT_EQ(C->getNumOperands(), 3u);
  // %2 is test.b's second result, %0 test.a's first.
  Operation *B = *std::next(Body.getOperations().begin());
  EXPECT_EQ(C->getOperand(0), B->getResult(1));
  EXPECT_EQ(C->getOperand(2), Body.front()->getResult(0));
  EXPECT_TRUE(C->getOperand(0).getType().isFloat());
}

TEST(IRParser, FuncRoundTripAccessors) {
  MLIRContext Context;
  registerAllDialects(Context);
  std::string Error;
  auto Op = parseSourceString(
      "func.func() ({\n"
      "^bb(%arg0: memref<4x4xi32>):\n"
      "  func.return() : () -> ()\n"
      "}) {function_type = (memref<4x4xi32>) -> (), sym_name = \"f\"} "
      ": () -> ()",
      &Context, &Error);
  ASSERT_TRUE(succeeded(Op)) << Error;
  func::FuncOp Func((*Op).get());
  EXPECT_EQ(Func.getFuncName(), "f");
  ASSERT_EQ(Func.getNumArguments(), 1u);
  EXPECT_TRUE(Func.getArgument(0).getType().isa<MemRefType>());
  EXPECT_EQ(Func.getFunctionType().getInputs().size(), 1u);
}

TEST(IRParser, AllScalarTypesAndTypeAttrs) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "test.op() {a = i1, b = i8, c = i16, d = i32, e = i64, "
                    "f = f32, g = f64, h = index, i = none} : () -> ()");
  ASSERT_TRUE(Op);
  EXPECT_EQ(Op->getAttr("a").getTypeValue().getKind(), Type::Kind::I1);
  EXPECT_EQ(Op->getAttr("e").getTypeValue().getKind(), Type::Kind::I64);
  EXPECT_EQ(Op->getAttr("g").getTypeValue().getKind(), Type::Kind::F64);
  EXPECT_EQ(Op->getAttr("h").getTypeValue().getKind(), Type::Kind::Index);
  EXPECT_EQ(Op->getAttr("i").getTypeValue().getKind(), Type::Kind::None);
}

TEST(IRParser, MemRefTypes) {
  MLIRContext Context;
  auto Op = parseOk(
      Context,
      "test.op() {plain = memref<4x8xi32>, scalar = memref<f32>, "
      "dyn = memref<?x4xf64>, "
      "strided = memref<4x4xi32, strided<[8, 1], offset: ?>>, "
      "offs = memref<2x3xf32, strided<[3, 1], offset: 6>>} : () -> ()");
  ASSERT_TRUE(Op);
  auto Plain = Op->getAttr("plain").getTypeValue().cast<MemRefType>();
  EXPECT_EQ(Plain.getShape(), (std::vector<int64_t>{4, 8}));
  EXPECT_FALSE(Plain.hasExplicitStrides());
  auto Scalar = Op->getAttr("scalar").getTypeValue().cast<MemRefType>();
  EXPECT_EQ(Scalar.getRank(), 0u);
  auto Dyn = Op->getAttr("dyn").getTypeValue().cast<MemRefType>();
  EXPECT_TRUE(isDynamic(Dyn.getDimSize(0)));
  auto Strided = Op->getAttr("strided").getTypeValue().cast<MemRefType>();
  EXPECT_EQ(Strided.getStrides(), (std::vector<int64_t>{8, 1}));
  EXPECT_TRUE(isDynamic(Strided.getOffset()));
  auto Offs = Op->getAttr("offs").getTypeValue().cast<MemRefType>();
  EXPECT_EQ(Offs.getOffset(), 6);
}

TEST(IRParser, IntegerAttributes) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "test.op() {plain = 42, neg = -7, typed = 60 : index, "
                    "wide = 9223372036854775807, "
                    "min = -9223372036854775808} : () -> ()");
  ASSERT_TRUE(Op);
  EXPECT_EQ(Op->getIntAttr("plain"), 42);
  EXPECT_EQ(Op->getIntAttr("neg"), -7);
  EXPECT_EQ(Op->getIntAttr("typed"), 60);
  EXPECT_TRUE(Op->getAttr("typed").getTypeValue().isIndex());
  EXPECT_EQ(Op->getIntAttr("wide"), INT64_MAX);
  // INT64_MIN's magnitude exceeds INT64_MAX; must parse without UB.
  EXPECT_EQ(Op->getIntAttr("min"), INT64_MIN);
}

TEST(IRParser, FloatAttributes) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "test.op() {a = 1.5, b = -2.25, c = 2.0, "
                    "d = 1e+20, e = 0.10000000000000001, f = inf, "
                    "g = -inf, h = nan} : () -> ()");
  ASSERT_TRUE(Op);
  EXPECT_EQ(Op->getAttr("a").getFloatValue(), 1.5);
  EXPECT_EQ(Op->getAttr("b").getFloatValue(), -2.25);
  // `2.0` must stay a float attribute, not collapse to integer 2.
  EXPECT_EQ(Op->getAttr("c").getKind(), Attribute::Kind::Float);
  EXPECT_EQ(Op->getAttr("d").getFloatValue(), 1e+20);
  EXPECT_EQ(Op->getAttr("e").getFloatValue(), 0.1);
  EXPECT_TRUE(std::isinf(Op->getAttr("f").getFloatValue()));
  EXPECT_LT(Op->getAttr("g").getFloatValue(), 0);
  EXPECT_TRUE(std::isnan(Op->getAttr("h").getFloatValue()));
}

TEST(IRParser, StringEscapes) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "test.op() {s = \"a\\nb\\tc\\\"d\\\\e\\09f\"} "
                    ": () -> ()");
  ASSERT_TRUE(Op);
  EXPECT_EQ(Op->getStringAttr("s"), "a\nb\tc\"d\\e\tf");
}

TEST(IRParser, ArrayAndDictionaryAttributes) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "test.op() {arr = [1, \"two\", [3.5], unit], "
                    "dict = {inner = {x = 1}, y = [i32]}} : () -> ()");
  ASSERT_TRUE(Op);
  const auto &Arr = Op->getAttr("arr").getArrayValue();
  ASSERT_EQ(Arr.size(), 4u);
  EXPECT_EQ(Arr[1].getStringValue(), "two");
  EXPECT_EQ(Arr[2].getArrayValue()[0].getFloatValue(), 3.5);
  EXPECT_TRUE(Arr[3].isUnit());
  Attribute Inner = Op->getAttr("dict").getDictionaryEntry("inner");
  EXPECT_EQ(Inner.getDictionaryEntry("x").getIntValue(), 1);
}

TEST(IRParser, AffineMapAttributes) {
  MLIRContext Context;
  auto Op = parseOk(
      Context,
      "test.op() {mm = affine_map<(d0, d1, d2) -> (d0, d2)>, "
      "conv = affine_map<(d0, d1) -> (((d0 * 2) + d1))>, "
      "modfd = affine_map<(d0) -> ((d0 mod 4), (d0 floordiv 4))>, "
      "sym = affine_map<(d0)[s0] -> ((d0 + s0))>, "
      "cst = affine_map<(d0) -> (7)>} : () -> ()");
  ASSERT_TRUE(Op);
  AffineMap MM = Op->getAffineMapAttr("mm");
  EXPECT_EQ(MM.getNumDims(), 3u);
  EXPECT_EQ(MM.getNumResults(), 2u);
  EXPECT_EQ(MM.getResult(1).getPosition(), 2u);
  AffineMap Conv = Op->getAffineMapAttr("conv");
  EXPECT_EQ(Conv.eval({5, 1}), (std::vector<int64_t>{11}));
  AffineMap ModFd = Op->getAffineMapAttr("modfd");
  EXPECT_EQ(ModFd.eval({13}), (std::vector<int64_t>{1, 3}));
  AffineMap Sym = Op->getAffineMapAttr("sym");
  EXPECT_EQ(Sym.getNumSymbols(), 1u);
  EXPECT_EQ(Sym.eval({2}, {40}), (std::vector<int64_t>{42}));
  EXPECT_EQ(Op->getAffineMapAttr("cst").eval({0}),
            (std::vector<int64_t>{7}));
}

TEST(IRParser, AccelAttributes) {
  MLIRContext Context;
  auto Op = parseOk(
      Context,
      "test.op() {map = opcode_map<sA = [send_literal(34), send(0)]>, "
      "flow = opcode_flow<(sA (sB))>, "
      "dma = dma_config<id = 1, in = 0x1000/4096, out = 0x2000/512>} "
      ": () -> ()");
  ASSERT_TRUE(Op);
  const auto &Map = Op->getAttr("map").getOpcodeMapValue();
  ASSERT_EQ(Map.Entries.size(), 1u);
  EXPECT_EQ(Map.Entries[0].Actions[0].Literal, 34);
  const auto &Flow = Op->getAttr("flow").getOpcodeFlowValue();
  EXPECT_EQ(Flow.allTokens(), (std::vector<std::string>{"sA", "sB"}));
  const auto &Dma = Op->getAttr("dma").getDmaConfigValue();
  EXPECT_EQ(Dma.DmaId, 1);
  EXPECT_EQ(Dma.InputAddress, 0x1000);
  EXPECT_EQ(Dma.InputBufferSize, 4096);
  EXPECT_EQ(Dma.OutputAddress, 0x2000);
  EXPECT_EQ(Dma.OutputBufferSize, 512);
}

TEST(IRParser, RegionsBlocksAndComments) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "// leading comment\n"
                    "test.two() ({\n"
                    "^bb(%a: index):  // trailing comment\n"
                    "  test.x(%a) : (index) -> ()\n"
                    "}, {\n"
                    "^bb():\n"
                    "}) : () -> ()\n"
                    "// trailing file comment\n");
  ASSERT_TRUE(Op);
  ASSERT_EQ(Op->getNumRegions(), 2u);
  EXPECT_EQ(Op->getRegion(0).front().getNumArguments(), 1u);
  EXPECT_TRUE(Op->getRegion(1).front().empty());
  // The block argument feeds the nested op.
  Block &First = Op->getRegion(0).front();
  EXPECT_EQ(First.front()->getOperand(0), First.getArgument(0));
}

TEST(IRParser, FunctionTypeAttr) {
  MLIRContext Context;
  auto Op = parseOk(Context,
                    "test.op() {ft = (i32, f32) -> (index)} : () -> ()");
  ASSERT_TRUE(Op);
  auto Ft = Op->getAttr("ft").getTypeValue().cast<FunctionType>();
  ASSERT_EQ(Ft.getInputs().size(), 2u);
  EXPECT_TRUE(Ft.getInputs()[1].isFloat());
  ASSERT_EQ(Ft.getResults().size(), 1u);
  EXPECT_TRUE(Ft.getResults()[0].isIndex());
}

//===----------------------------------------------------------------------===//
// IR parser diagnostics
//===----------------------------------------------------------------------===//

TEST(IRParserDiag, UnbalancedRegion) {
  MLIRContext Context;
  std::string Error =
      parseErr(Context, "test.op() ({\n^bb():\n  test.x() : () -> ()\n");
  EXPECT_NE(Error.find("unbalanced"), std::string::npos) << Error;
  EXPECT_EQ(Error.rfind("<string>:4:", 0), 0u) << Error;
}

TEST(IRParserDiag, UnknownType) {
  MLIRContext Context;
  std::string Error =
      parseErr(Context, "%0 = test.op() : () -> (wat)");
  EXPECT_NE(Error.find("unknown type 'wat'"), std::string::npos) << Error;
  EXPECT_EQ(Error.rfind("<string>:1:25", 0), 0u) << Error;
}

TEST(IRParserDiag, DanglingUse) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() ({\n^bb():\n  test.x(%ghost) : (i32) -> ()\n}) "
               ": () -> ()");
  EXPECT_NE(Error.find("use of undefined value '%ghost'"),
            std::string::npos)
      << Error;
  EXPECT_EQ(Error.rfind("<string>:3:10", 0), 0u) << Error;
}

TEST(IRParserDiag, Redefinition) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() ({\n^bb():\n  %0 = test.a() : () -> (i32)\n"
               "  %0 = test.b() : () -> (i32)\n}) : () -> ()");
  EXPECT_NE(Error.find("redefinition of value '%0'"), std::string::npos)
      << Error;
}

TEST(IRParserDiag, SignatureCountMismatches) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() ({\n^bb(%a: i32):\n  test.x(%a) : () -> ()\n}) "
               ": () -> ()");
  EXPECT_NE(Error.find("1 operands but the signature lists 0"),
            std::string::npos)
      << Error;
  Error = parseErr(Context, "%0 = test.op() : () -> ()");
  EXPECT_NE(Error.find("defines 1 results but the signature lists 0"),
            std::string::npos)
      << Error;
}

TEST(IRParserDiag, OperandTypeMismatch) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() ({\n^bb(%a: i32):\n  test.x(%a) : (f32) -> ()\n"
               "}) : () -> ()");
  EXPECT_NE(Error.find("has type i32 but the signature says f32"),
            std::string::npos)
      << Error;
}

TEST(IRParserDiag, TrailingInput) {
  MLIRContext Context;
  std::string Error =
      parseErr(Context, "test.op() : () -> ()\ntest.other() : () -> ()");
  EXPECT_NE(Error.find("single top-level operation"), std::string::npos)
      << Error;
}

TEST(IRParserDiag, UnterminatedString) {
  MLIRContext Context;
  std::string Error =
      parseErr(Context, "test.op() {s = \"oops} : () -> ()");
  EXPECT_NE(Error.find("unterminated string"), std::string::npos) << Error;
}

TEST(IRParserDiag, IntegerOverflow) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() {v = 99999999999999999999} : () -> ()");
  EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
  EXPECT_NE(Error.find("99999999999999999999"), std::string::npos) << Error;
}

TEST(IRParserDiag, DuplicateAttribute) {
  MLIRContext Context;
  std::string Error =
      parseErr(Context, "test.op() {a = 1, a = 2} : () -> ()");
  EXPECT_NE(Error.find("duplicate attribute 'a'"), std::string::npos)
      << Error;
}

TEST(IRParserDiag, UnknownAffineDimension) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() {m = affine_map<(d0) -> (d7)>} : () -> ()");
  EXPECT_NE(Error.find("unknown affine dimension or symbol 'd7'"),
            std::string::npos)
      << Error;
}

TEST(IRParserDiag, StridedRankMismatch) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context,
      "test.op() {t = memref<4x4xi32, strided<[1], offset: 0>>} : () -> ()");
  EXPECT_NE(Error.find("1 strides but the memref has rank 2"),
            std::string::npos)
      << Error;
}

TEST(IRParserDiag, MissingArrow) {
  MLIRContext Context;
  std::string Error = parseErr(Context, "test.op() : () ()");
  EXPECT_NE(Error.find("expected '->'"), std::string::npos) << Error;
}

TEST(IRParserDiag, VerifierRejectsUnregisteredOps) {
  MLIRContext Context;
  registerAllDialects(Context);
  std::string Error =
      parseErr(Context, "test.unknown() : () -> ()", /*Verify=*/true);
  EXPECT_NE(Error.find("unregistered operation 'test.unknown'"),
            std::string::npos)
      << Error;
}

TEST(IRParserDiag, BadEscape) {
  MLIRContext Context;
  std::string Error =
      parseErr(Context, "test.op() {s = \"a\\qb\"} : () -> ()");
  EXPECT_NE(Error.find("invalid escape"), std::string::npos) << Error;
}

TEST(IRParserDiag, OpcodeMapErrorsPropagate) {
  MLIRContext Context;
  std::string Error = parseErr(
      Context, "test.op() {m = opcode_map<sA = [explode(1)]>} : () -> ()");
  EXPECT_NE(Error.find("opcode_map"), std::string::npos) << Error;
  EXPECT_NE(Error.find("explode"), std::string::npos) << Error;
}

TEST(IRParserDiag, EmptyInput) {
  MLIRContext Context;
  std::string Error = parseErr(Context, "  // nothing here\n");
  EXPECT_NE(Error.find("expected an operation name"), std::string::npos)
      << Error;
}

TEST(IRParserDiag, NestingDepthIsBounded) {
  MLIRContext Context;
  // 100k nested array attributes must exhaust the limit, not the stack.
  std::string Source = "test.op() {a = ";
  Source.append(100000, '[');
  Source += "1";
  Source.append(100000, ']');
  Source += "} : () -> ()";
  std::string Error = parseErr(Context, Source);
  EXPECT_NE(Error.find("maximum nesting depth"), std::string::npos) << Error;
  // Same for nested regions.
  std::string Regions;
  for (int I = 0; I < 100000; ++I)
    Regions += "test.op() ({\n^bb():\n";
  Error = parseErr(Context, Regions);
  EXPECT_NE(Error.find("maximum nesting depth"), std::string::npos) << Error;
}

TEST(IRParserDiag, ColumnsStayAccurateAfterNumberBacktrack) {
  MLIRContext Context;
  // Lexing `2e` tentatively consumes the 'e' and backtracks; the follow-on
  // diagnostic must still point at the 'e' (column 17), which only holds
  // if the backtrack restores line/column alongside the position.
  std::string Error = parseErr(Context, "test.op() {a = 2e} : () -> ()");
  EXPECT_EQ(Error.rfind("<string>:1:17", 0), 0u) << Error;
}

TEST(IRParserDiag, MissingFile) {
  MLIRContext Context;
  std::string Error;
  auto Result = parseSourceFile("/nonexistent/nope.mlir", &Context, &Error);
  EXPECT_TRUE(failed(Result));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

TEST(OpcodeMapParser, OverflowedLiteralIsDiagnosed) {
  std::string Error;
  auto Map =
      parseOpcodeMap("sA = [send_literal(99999999999999999999)]", &Error);
  EXPECT_TRUE(failed(Map));
  EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
  EXPECT_NE(Error.find("99999999999999999999"), std::string::npos) << Error;
}

TEST(FlowValidation, AgainstMap) {
  auto Map = parseOpcodeMap("sA = [send(0)], sB = [send(1)]");
  ASSERT_TRUE(succeeded(Map));
  auto Good = parseOpcodeFlow("(sA (sB))");
  ASSERT_TRUE(succeeded(Good));
  EXPECT_TRUE(succeeded(validateFlowAgainstMap(*Good, *Map)));
  auto Bad = parseOpcodeFlow("(sA sX)");
  ASSERT_TRUE(succeeded(Bad));
  std::string Error;
  EXPECT_TRUE(failed(validateFlowAgainstMap(*Bad, *Map, &Error)));
  EXPECT_NE(Error.find("sX"), std::string::npos);
}

/// axi4mlir-opt --input accepts kernels already in linalg.generic form:
/// print a converted generic kernel, parse it back, and classify the
/// parsed op (the tool's workload-detection path).
TEST(GenericKernelDetection, ParsedGenericMatmulAndConv) {
  struct Case {
    bool Conv;
    transforms::GenericKernelKind Kind;
    int64_t StrideH, StrideW;
  } Cases[] = {
      {false, transforms::GenericKernelKind::MatMul, 0, 0},
      {true, transforms::GenericKernelKind::Conv2D, 2, 2},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Conv ? "conv" : "matmul");
    MLIRContext Context;
    registerAllDialects(Context);
    OpBuilder Builder(&Context);
    func::FuncOp Func =
        C.Conv ? exec::buildConvFunc(Builder, 1, 3, 9, 2, 3, C.StrideH,
                                     sim::ElemKind::I32)
               : exec::buildMatMulFunc(Builder, 8, 8, 8, sim::ElemKind::I32);
    OwningOpRef Owner(Func.getOperation());
    std::string Error;
    ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
        << Error;

    // Through the text round-trip, as --input receives it.
    MLIRContext FreshContext;
    registerAllDialects(FreshContext);
    auto Parsed = parseSourceString(Owner->str(), &FreshContext, &Error);
    ASSERT_TRUE(succeeded(Parsed)) << Error;

    int Generics = 0;
    Parsed->get()->walk([&](Operation *Op) {
      int64_t StrideH = 0, StrideW = 0;
      transforms::GenericKernelKind Kind =
          transforms::classifyGenericKernel(Op, StrideH, StrideW);
      if (Kind == transforms::GenericKernelKind::None)
        return;
      ++Generics;
      EXPECT_EQ(Kind, C.Kind);
      if (Kind == transforms::GenericKernelKind::Conv2D) {
        EXPECT_EQ(StrideH, C.StrideH);
        EXPECT_EQ(StrideW, C.StrideW);
      }
    });
    EXPECT_EQ(Generics, 1);
  }
}

/// Non-kernel generics (wrong arity, wrong body) classify as None rather
/// than being misdetected.
TEST(GenericKernelDetection, RejectsNonKernels) {
  MLIRContext Context;
  registerAllDialects(Context);
  int64_t StrideH = 0, StrideW = 0;
  EXPECT_EQ(transforms::classifyGenericKernel(nullptr, StrideH, StrideW),
            transforms::GenericKernelKind::None);
  OpBuilder Builder(&Context);
  Operation *NotGeneric = Builder.create("arith.constant");
  OwningOpRef Owner(NotGeneric);
  EXPECT_EQ(
      transforms::classifyGenericKernel(NotGeneric, StrideH, StrideW),
      transforms::GenericKernelKind::None);
}

} // namespace
