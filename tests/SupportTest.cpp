//===- SupportTest.cpp - support library unit tests -----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/JSON.h"
#include "support/LogicalResult.h"
#include "support/STLExtras.h"

#include <gtest/gtest.h>

using namespace axi4mlir;

namespace {

TEST(LogicalResult, Basics) {
  EXPECT_TRUE(succeeded(success()));
  EXPECT_FALSE(failed(success()));
  EXPECT_TRUE(failed(failure()));
  EXPECT_TRUE(succeeded(failure(false)));
  EXPECT_TRUE(failed(success(false)));
}

TEST(FailureOr, CarriesValue) {
  FailureOr<int> Ok(42);
  ASSERT_TRUE(succeeded(Ok));
  EXPECT_EQ(*Ok, 42);
  FailureOr<int> Bad = failure();
  EXPECT_TRUE(failed(Bad));
  EXPECT_TRUE(failed(LogicalResult(Bad)));
}

struct Base {
  enum class Kind { A, B } TheKind;
  explicit Base(Kind K) : TheKind(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->TheKind == Base::Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->TheKind == Base::Kind::B; }
};

TEST(Casting, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_TRUE((isa<DerivedB, DerivedA>(B)));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(Null), nullptr);
  EXPECT_FALSE(isa_and_present<DerivedA>(Null));
}

TEST(STLExtras, JoinAndMath) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
  EXPECT_EQ(ceilDiv(7, 4), 2);
  EXPECT_EQ(ceilDiv(8, 4), 2);
  EXPECT_EQ(roundDownToMultiple(37, 8), 32);
  EXPECT_EQ(roundDownToMultiple(5, 8), 8);
  EXPECT_EQ(product({2, 3, 4}), 24);
  EXPECT_EQ(product({}), 1);
}

TEST(Json, ParsesBasicObject) {
  auto V = json::parse(R"({"a": 1, "b": "two", "c": [3, 4], "d": true})");
  ASSERT_TRUE(succeeded(V));
  EXPECT_EQ(V->getInt("a"), 1);
  EXPECT_EQ(V->getString("b"), "two");
  ASSERT_TRUE(V->get("c")->isArray());
  EXPECT_EQ(V->get("c")->array()[1].asInt(), 4);
  EXPECT_TRUE(V->get("d")->asBool());
  EXPECT_EQ(V->get("missing"), nullptr);
}

TEST(Json, RelaxedSyntax) {
  // '=' separators, bare identifiers, size suffixes, hex, comments,
  // trailing commas — everything the paper's Fig. 5 sample needs.
  auto V = json::parse(R"({
    // host description
    "cpu" = { "cache-levels": [32K, 512K], "cache-types": [data, shared], },
    "addr" = 0xFF00,
  })");
  ASSERT_TRUE(succeeded(V));
  const json::Value *Cpu = V->get("cpu");
  ASSERT_NE(Cpu, nullptr);
  EXPECT_EQ(Cpu->get("cache-levels")->array()[0].asInt(), 32 * 1024);
  EXPECT_EQ(Cpu->get("cache-levels")->array()[1].asInt(), 512 * 1024);
  EXPECT_EQ(Cpu->get("cache-types")->array()[0].asString(), "data");
  EXPECT_EQ(V->getInt("addr"), 0xFF00);
}

TEST(Json, NumbersAndDoubles) {
  auto V = json::parse(R"({"i": -12, "f": 1.5, "e": 2e3, "g": 1G})");
  ASSERT_TRUE(succeeded(V));
  EXPECT_EQ(V->getInt("i"), -12);
  EXPECT_DOUBLE_EQ(V->get("f")->asDouble(), 1.5);
  EXPECT_DOUBLE_EQ(V->get("e")->asDouble(), 2000.0);
  EXPECT_EQ(V->getInt("g"), 1024LL * 1024 * 1024);
}

TEST(Json, ReportsErrors) {
  std::string Error;
  EXPECT_TRUE(failed(json::parse(R"({"a" 1})", &Error)));
  EXPECT_NE(Error.find("':'"), std::string::npos);
  Error.clear();
  EXPECT_TRUE(failed(json::parse(R"({"a": [1, )", &Error)));
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(failed(json::parse(R"("unterminated)", &Error)));
}

TEST(Json, ObjectOrderPreservedAndSetOverwrites) {
  auto V = json::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(succeeded(V));
  ASSERT_EQ(V->members().size(), 3u);
  EXPECT_EQ(V->members()[0].first, "z");
  EXPECT_EQ(V->members()[2].first, "m");
  json::Value Obj = json::Value::makeObject();
  Obj.set("k", json::Value(int64_t{1}));
  Obj.set("k", json::Value(int64_t{2}));
  EXPECT_EQ(Obj.getInt("k"), 2);
  EXPECT_EQ(Obj.members().size(), 1u);
}

} // namespace
