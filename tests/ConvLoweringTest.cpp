//===- ConvLoweringTest.cpp - Conv2D lowering structure tests -------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks that the convolution lowering reproduces paper
/// Fig. 15b: the `rst` configuration opcodes run once before the loops,
/// the filter send (sF) is hoisted to the output-channel loop, the input
/// windows (sIcO) stream in the innermost spatial loop, and the output
/// slice receive (rO) lands after the spatial loops (output stationary).
/// Also validates the checked-in configuration files under configs/.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Pipeline.h"
#include "ir/Verifier.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::transforms;

#ifndef AXI4MLIR_SOURCE_DIR
#define AXI4MLIR_SOURCE_DIR "."
#endif

namespace {

unsigned loopDepth(Operation *Op) {
  unsigned Depth = 0;
  for (Operation *Parent = Op->getParentOp(); Parent;
       Parent = Parent->getParentOp())
    if (Parent->getName() == "scf.for")
      ++Depth;
  return Depth;
}

struct ConvLowered {
  MLIRContext Context;
  OpBuilder Builder{&Context};
  func::FuncOp Func;
  OwningOpRef Owner;

  ConvLowered(int64_t InHW = 12, int64_t InC = 8, int64_t FilterHW = 3,
              int64_t OutC = 4, int64_t Stride = 1) {
    registerAllDialects(Context);
    Func = exec::buildConvFunc(Builder, 1, InC, InHW, OutC, FilterHW,
                               Stride, sim::ElemKind::I32);
    Owner = OwningOpRef(Func.getOperation());
    parser::AcceleratorDesc Accel =
        exec::parseSingleAccelerator(exec::makeConvConfigJson());
    std::string Error;
    LoweringOptions Options;
    Options.EnableCpuTiling = false;
    EXPECT_TRUE(succeeded(convertNamedToGeneric(Func, Error))) << Error;
    EXPECT_TRUE(succeeded(matchAndAnnotate(Func, Accel, Error))) << Error;
    EXPECT_TRUE(succeeded(lowerToAccel(Func, Options, Error))) << Error;
    EXPECT_TRUE(succeeded(verify(Func.getOperation(), Error))) << Error;
  }

  /// Finds the accel.send whose memref traces back to function argument
  /// \p ArgIndex (walking through the subview).
  Operation *findSendOfArgument(unsigned ArgIndex) {
    Operation *Found = nullptr;
    Value Arg = Func.getArgument(ArgIndex);
    Func.getOperation()->walk([&](Operation *Op) {
      if (Op->getName() != "accel.send" || Found)
        return;
      Operation *SubView = Op->getOperand(0).getDefiningOp();
      if (SubView && SubView->getNumOperands() > 0 &&
          SubView->getOperand(0) == Arg)
        Found = Op;
    });
    return Found;
  }
};

TEST(ConvLowering, ReproducesFig15bStructure) {
  ConvLowered F;

  // Three loops: oc, oh, ow (b has extent 1; ic/fh/fw live inside the
  // accelerator).
  unsigned Loops = 0;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "scf.for")
      ++Loops;
  });
  EXPECT_EQ(Loops, 3u);

  // sF (filter = operand 1) inside exactly the oc loop.
  Operation *SendFilter = F.findSendOfArgument(1);
  ASSERT_NE(SendFilter, nullptr);
  EXPECT_EQ(loopDepth(SendFilter), 1u);

  // sIcO (input = operand 0) innermost.
  Operation *SendWindow = F.findSendOfArgument(0);
  ASSERT_NE(SendWindow, nullptr);
  EXPECT_EQ(loopDepth(SendWindow), 3u);

  // rO hoisted to the oc level, placed after the spatial loops.
  Operation *Recv = nullptr;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "accel.recv")
      Recv = Op;
  });
  ASSERT_NE(Recv, nullptr);
  EXPECT_EQ(loopDepth(Recv), 1u);
  bool SawSpatialLoop = false;
  for (Operation *Op : Recv->getBlock()->getOperations()) {
    if (Op->getName() == "scf.for")
      SawSpatialLoop = true;
    if (Op == Recv)
      break;
  }
  EXPECT_TRUE(SawSpatialLoop);

  // The receive's subview covers the whole output slice [1, 1, oH, oW].
  MemRefType RecvTy = Recv->getOperand(0).getType().cast<MemRefType>();
  EXPECT_EQ(RecvTy.getShape(), (std::vector<int64_t>{1, 1, 10, 10}));
}

TEST(ConvLowering, RstSendsFilterSizeAndChannels) {
  ConvLowered F(/*InHW=*/12, /*InC=*/8, /*FilterHW=*/3);
  // Two send_dims at function level: fH (3) then iC (8).
  std::vector<Operation *> SendDims;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "accel.send_dim")
      SendDims.push_back(Op);
  });
  ASSERT_EQ(SendDims.size(), 2u);
  EXPECT_EQ(loopDepth(SendDims[0]), 0u);
  EXPECT_EQ(SendDims[0]->getIntAttr("static_size"), 3); // fW footprint
  EXPECT_EQ(SendDims[1]->getIntAttr("static_size"), 8); // iC footprint
}

TEST(ConvLowering, StridedWindowSubviewShape) {
  ConvLowered F(/*InHW=*/11, /*InC=*/4, /*FilterHW=*/3, /*OutC=*/2,
                /*Stride=*/2);
  Operation *SendWindow = F.findSendOfArgument(0);
  ASSERT_NE(SendWindow, nullptr);
  // Window = [1, iC, fH, fW] regardless of stride.
  MemRefType Ty = SendWindow->getOperand(0).getType().cast<MemRefType>();
  EXPECT_EQ(Ty.getShape(), (std::vector<int64_t>{1, 4, 3, 3}));
}

TEST(ConvLowering, CheckedInConfigsParse) {
  for (const char *Name :
       {"matmul_v3_16.json", "matmul_v4_16_flex.json", "conv2d.json"}) {
    std::string Path =
        std::string(AXI4MLIR_SOURCE_DIR) + "/configs/" + Name;
    std::string Error;
    auto Config = parser::parseSystemConfigFile(Path, &Error);
    ASSERT_TRUE(succeeded(Config)) << Path << ": " << Error;
    EXPECT_FALSE(Config->Accelerators.empty());
    EXPECT_NE(Config->Accelerators[0].selectedFlow(), nullptr);
  }
}

TEST(ConvLowering, PipelineFromCheckedInConfig) {
  std::string Path =
      std::string(AXI4MLIR_SOURCE_DIR) + "/configs/matmul_v3_16.json";
  std::string Error;
  auto Config = parser::parseSystemConfigFile(Path, &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;

  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, 32, 32, 32, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  PassManager Pipeline =
      buildPipeline(Config->Accelerators[0], LoweringOptions());
  ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;
}

} // namespace
