//===- InterpreterTest.cpp - IR interpreter unit tests --------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;

namespace {

struct InterpFixture {
  MLIRContext Context;
  OpBuilder Builder{&Context};
  std::unique_ptr<sim::SoC> Soc = sim::makeCpuOnlySoC();

  InterpFixture() { registerAllDialects(Context); }

  LogicalResult run(func::FuncOp Func,
                    const std::vector<MemRefDesc> &Args,
                    std::string &Error) {
    Interpreter Interp(*Soc, nullptr);
    return Interp.run(Func, Args, Error);
  }
};

TEST(Interpreter, LoopWritesEveryElement) {
  InterpFixture F;
  MemRefType Ty =
      MemRefType::get(&F.Context, {10}, Type::getI32(&F.Context));
  func::FuncOp Func = func::FuncOp::create(F.Builder, "fill", {Ty});
  OwningOpRef Owner(Func.getOperation());
  F.Builder.setInsertionPointToEnd(&Func.getBody());
  Value C0 = arith::ConstantOp::createIndex(F.Builder, 0).getResult();
  Value C10 = arith::ConstantOp::createIndex(F.Builder, 10).getResult();
  Value C1 = arith::ConstantOp::createIndex(F.Builder, 1).getResult();
  Value C7 =
      arith::ConstantOp::createInt(F.Builder, 7, F.Builder.getI32Type())
          .getResult();
  scf::ForOp Loop = scf::ForOp::create(F.Builder, C0, C10, C1);
  {
    OpBuilder::InsertPoint Saved = F.Builder.saveInsertionPoint();
    F.Builder.setInsertionPoint(Loop.getBodyTerminator());
    memref::StoreOp::create(F.Builder, C7, Func.getArgument(0),
                            {Loop.getInductionVar()});
    F.Builder.restoreInsertionPoint(Saved);
  }
  func::ReturnOp::create(F.Builder);

  MemRefDesc Buffer = MemRefDesc::alloc({10});
  std::string Error;
  ASSERT_TRUE(succeeded(F.run(Func, {Buffer}, Error))) << Error;
  for (int64_t I = 0; I < 10; ++I)
    EXPECT_EQ(Buffer.read({I}), 7);
  // 10 iterations charged as loop overhead + stores.
  EXPECT_EQ(F.Soc->report().Stores, 10u);
  EXPECT_GE(F.Soc->report().BranchInstructions, 10u);
}

TEST(Interpreter, SubviewLoadStore) {
  InterpFixture F;
  MemRefType Ty =
      MemRefType::get(&F.Context, {4, 4}, Type::getI32(&F.Context));
  func::FuncOp Func = func::FuncOp::create(F.Builder, "sv", {Ty});
  OwningOpRef Owner(Func.getOperation());
  F.Builder.setInsertionPointToEnd(&Func.getBody());
  Value C1 = arith::ConstantOp::createIndex(F.Builder, 1).getResult();
  Value C0 = arith::ConstantOp::createIndex(F.Builder, 0).getResult();
  Value Tile = memref::SubViewOp::create(F.Builder, Func.getArgument(0),
                                         {C1, C1}, {2, 2})
                   .getResult();
  Value Loaded =
      memref::LoadOp::create(F.Builder, Tile, {C0, C0}).getResult();
  Value Doubled =
      arith::BinaryOp::create(F.Builder, "arith.addi", Loaded, Loaded)
          .getResult();
  memref::StoreOp::create(F.Builder, Doubled, Tile, {C1, C1});
  func::ReturnOp::create(F.Builder);

  MemRefDesc Buffer = MemRefDesc::alloc({4, 4});
  Buffer.write({1, 1}, 21); // tile(0,0)
  std::string Error;
  ASSERT_TRUE(succeeded(F.run(Func, {Buffer}, Error))) << Error;
  EXPECT_EQ(Buffer.read({2, 2}), 42); // tile(1,1)
}

TEST(Interpreter, FloatArithmetic) {
  InterpFixture F;
  MemRefType Ty =
      MemRefType::get(&F.Context, {1}, Type::getF32(&F.Context));
  func::FuncOp Func = func::FuncOp::create(F.Builder, "fma", {Ty});
  OwningOpRef Owner(Func.getOperation());
  F.Builder.setInsertionPointToEnd(&Func.getBody());
  Value C0 = arith::ConstantOp::createIndex(F.Builder, 0).getResult();
  Value A = arith::ConstantOp::createFloat(F.Builder, 1.5,
                                           F.Builder.getF32Type())
                .getResult();
  Value B = arith::ConstantOp::createFloat(F.Builder, 2.0,
                                           F.Builder.getF32Type())
                .getResult();
  Value Product =
      arith::BinaryOp::create(F.Builder, "arith.mulf", A, B).getResult();
  memref::StoreOp::create(F.Builder, Product, Func.getArgument(0), {C0});
  func::ReturnOp::create(F.Builder);

  MemRefDesc Buffer = MemRefDesc::alloc({1}, sim::ElemKind::F32);
  std::string Error;
  ASSERT_TRUE(succeeded(F.run(Func, {Buffer}, Error))) << Error;
  EXPECT_DOUBLE_EQ(Buffer.read({0}), 3.0);
}

TEST(Interpreter, GenericMatMulMatchesReference) {
  InterpFixture F;
  func::FuncOp Func =
      buildMatMulFunc(F.Builder, 12, 20, 16, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)));

  MemRefDesc A = MemRefDesc::alloc({12, 16});
  MemRefDesc B = MemRefDesc::alloc({16, 20});
  MemRefDesc C = MemRefDesc::alloc({12, 20});
  fillRandom(A, 1);
  fillRandom(B, 2);
  fillRandom(C, 3);
  MemRefDesc Expected = cloneMemRef(C);
  referenceMatMul(A, B, Expected);

  ASSERT_TRUE(succeeded(F.run(Func, {A, B, C}, Error))) << Error;
  EXPECT_TRUE(memrefEquals(Expected, C));
  // The CPU run touched every MAC: loads > M*N*K.
  EXPECT_GT(F.Soc->report().Loads, 12u * 20 * 16);
}

TEST(Interpreter, GenericConvMatchesReference) {
  InterpFixture F;
  func::FuncOp Func = buildConvFunc(F.Builder, 1, 3, 8, 2, 3, 1,
                                    sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)));

  MemRefDesc I = MemRefDesc::alloc({1, 3, 8, 8});
  MemRefDesc W = MemRefDesc::alloc({2, 3, 3, 3});
  MemRefDesc O = MemRefDesc::alloc({1, 2, 6, 6});
  fillRandom(I, 4);
  fillRandom(W, 5);
  fillRandom(O, 6);
  MemRefDesc Expected = cloneMemRef(O);
  referenceConv2D(I, W, Expected, 1, 1);

  ASSERT_TRUE(succeeded(F.run(Func, {I, W, O}, Error))) << Error;
  EXPECT_TRUE(memrefEquals(Expected, O));
}

TEST(Interpreter, ErrorsOnBadInput) {
  InterpFixture F;
  func::FuncOp Func =
      buildMatMulFunc(F.Builder, 8, 8, 8, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  // Wrong argument count.
  EXPECT_TRUE(failed(F.run(Func, {}, Error)));
  EXPECT_NE(Error.find("argument count"), std::string::npos);

  // accel op without a runtime.
  MLIRContext &Ctx = F.Context;
  OpBuilder Builder(&Ctx);
  func::FuncOp Func2 = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner2(Func2.getOperation());
  Builder.setInsertionPointToEnd(&Func2.getBody());
  accel::DmaInitOp::create(Builder, accel::DmaInitConfig());
  func::ReturnOp::create(Builder);
  Error.clear();
  EXPECT_TRUE(failed(F.run(Func2, {}, Error)));
  EXPECT_NE(Error.find("runtime"), std::string::npos);
}

/// Builds a trivial "store 7 into every element" function over a buffer
/// of \p Size elements, named \p Name. Distinct functions give the plan
/// cache distinct keys.
func::FuncOp makeFillFunc(InterpFixture &F, const char *Name, int64_t Size) {
  MemRefType Ty =
      MemRefType::get(&F.Context, {Size}, Type::getI32(&F.Context));
  func::FuncOp Func = func::FuncOp::create(F.Builder, Name, {Ty});
  F.Builder.setInsertionPointToEnd(&Func.getBody());
  Value C0 = arith::ConstantOp::createIndex(F.Builder, 0).getResult();
  Value End = arith::ConstantOp::createIndex(F.Builder, Size).getResult();
  Value C1 = arith::ConstantOp::createIndex(F.Builder, 1).getResult();
  Value C7 =
      arith::ConstantOp::createInt(F.Builder, 7, F.Builder.getI32Type())
          .getResult();
  scf::ForOp Loop = scf::ForOp::create(F.Builder, C0, End, C1);
  {
    OpBuilder::InsertPoint Saved = F.Builder.saveInsertionPoint();
    F.Builder.setInsertionPoint(Loop.getBodyTerminator());
    memref::StoreOp::create(F.Builder, C7, Func.getArgument(0),
                            {Loop.getInductionVar()});
    F.Builder.restoreInsertionPoint(Saved);
  }
  func::ReturnOp::create(F.Builder);
  return Func;
}

TEST(Interpreter, PlanCacheLruBoundsAndCounters) {
  InterpFixture F;
  func::FuncOp A = makeFillFunc(F, "a", 8);
  OwningOpRef OwnA(A.getOperation());
  func::FuncOp B = makeFillFunc(F, "b", 9);
  OwningOpRef OwnB(B.getOperation());
  func::FuncOp C = makeFillFunc(F, "c", 10);
  OwningOpRef OwnC(C.getOperation());

  Interpreter Interp(*F.Soc, nullptr);
  Interp.setPlanCacheCapacity(2);
  EXPECT_EQ(Interp.planCacheCapacity(), 2u);

  auto run = [&](func::FuncOp Func, int64_t Size) {
    MemRefDesc Buffer = MemRefDesc::alloc({Size});
    std::string Error;
    ASSERT_TRUE(succeeded(Interp.run(Func, {Buffer}, Error))) << Error;
    for (int64_t I = 0; I < Size; ++I)
      EXPECT_EQ(Buffer.Buffer->Data[size_t(I)], 7u);
  };
  run(A, 8); // miss (cold)
  run(A, 8); // hit
  run(B, 9); // miss
  run(C, 10); // miss, evicts LRU "a" (capacity 2)
  run(A, 8); // miss again: proves "a" was evicted; evicts "b"
  EXPECT_EQ(Interp.planCacheSize(), 2u);

  sim::PerfReport Report = F.Soc->report();
  EXPECT_EQ(Report.PlanCacheHits, 1u);
  EXPECT_EQ(Report.PlanCacheMisses, 4u);
  EXPECT_EQ(Report.PlanCacheEvictions, 2u);

  // Shrinking below the population evicts immediately.
  Interp.setPlanCacheCapacity(1);
  EXPECT_EQ(Interp.planCacheSize(), 1u);
  EXPECT_EQ(F.Soc->report().PlanCacheEvictions, 3u);
}

TEST(Interpreter, UnknownOpIsDiagnosed) {
  InterpFixture F;
  func::FuncOp Func = func::FuncOp::create(F.Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  F.Builder.setInsertionPointToEnd(&Func.getBody());
  F.Builder.create("mystery.op");
  func::ReturnOp::create(F.Builder);
  std::string Error;
  EXPECT_TRUE(failed(F.run(Func, {}, Error)));
  EXPECT_NE(Error.find("mystery.op"), std::string::npos);
}

} // namespace
