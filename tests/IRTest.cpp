//===- IRTest.cpp - Core IR unit tests ------------------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "ir/Builders.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace axi4mlir;

namespace {

TEST(Types, ScalarIdentityAndWidths) {
  MLIRContext Context;
  EXPECT_EQ(Type::getI32(&Context), Type::getI32(&Context));
  EXPECT_NE(Type::getI32(&Context), Type::getF32(&Context));
  EXPECT_EQ(Type::getF32(&Context).getByteWidth(), 4u);
  EXPECT_EQ(Type::getI64(&Context).getByteWidth(), 8u);
  EXPECT_EQ(Type::getIndex(&Context).getByteWidth(), 4u); // 32-bit host
  EXPECT_TRUE(Type::getIndex(&Context).isIntOrIndex());
  EXPECT_TRUE(Type::getF64(&Context).isFloat());
}

TEST(Types, MemRefStructuralEquality) {
  MLIRContext Context;
  Type F32 = Type::getF32(&Context);
  MemRefType A = MemRefType::get(&Context, {4, 8}, F32);
  MemRefType B = MemRefType::get(&Context, {4, 8}, F32);
  MemRefType C = MemRefType::get(&Context, {8, 4}, F32);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A.getRank(), 2u);
  EXPECT_EQ(A.getNumElements(), 32);
  EXPECT_EQ(A.getStrides(), (std::vector<int64_t>{8, 1}));
  EXPECT_TRUE(A.isContiguousRowMajor());
}

TEST(Types, StridedMemRef) {
  MLIRContext Context;
  Type I32 = Type::getI32(&Context);
  MemRefType Tile =
      MemRefType::getStrided(&Context, {4, 4}, I32, {80, 1}, DynamicSize);
  EXPECT_TRUE(Tile.hasExplicitStrides());
  EXPECT_TRUE(Tile.isInnermostContiguous());
  EXPECT_FALSE(Tile.isContiguousRowMajor());
  EXPECT_TRUE(isDynamic(Tile.getOffset()));
  MemRefType Col =
      MemRefType::getStrided(&Context, {4, 4}, I32, {1, 4}, 0);
  EXPECT_FALSE(Col.isInnermostContiguous());
  // Type casting interface.
  Type Generic = Tile;
  EXPECT_TRUE(Generic.isa<MemRefType>());
  EXPECT_EQ(Generic.cast<MemRefType>().getDimSize(1), 4);
  EXPECT_FALSE(I32.isa<MemRefType>());
  EXPECT_FALSE(I32.dyn_cast<MemRefType>());
}

TEST(Types, Printing) {
  MLIRContext Context;
  EXPECT_EQ(Type::getF32(&Context).str(), "f32");
  MemRefType M = MemRefType::get(&Context, {60, 80},
                                 Type::getF32(&Context));
  EXPECT_EQ(M.str(), "memref<60x80xf32>");
  MemRefType S = MemRefType::getStrided(&Context, {4, 4},
                                        Type::getI32(&Context), {80, 1},
                                        DynamicSize);
  EXPECT_EQ(S.str(), "memref<4x4xi32, strided<[80, 1], offset: ?>>");
}

TEST(Attributes, KindsAndEquality) {
  EXPECT_EQ(Attribute::getInteger(4), Attribute::getInteger(4));
  EXPECT_NE(Attribute::getInteger(4), Attribute::getInteger(5));
  EXPECT_EQ(Attribute::getString("x"), Attribute::getString("x"));
  EXPECT_NE(Attribute::getString("x"), Attribute::getInteger(4));
  Attribute Arr = Attribute::getArray(
      {Attribute::getInteger(1), Attribute::getString("two")});
  EXPECT_EQ(Arr.getArrayValue().size(), 2u);
  Attribute Dict = Attribute::getDictionary(
      {{"k", Attribute::getInteger(9)}});
  EXPECT_EQ(Dict.getDictionaryEntry("k").getIntValue(), 9);
  EXPECT_FALSE(Dict.getDictionaryEntry("missing"));
  EXPECT_TRUE(Attribute::getUnit().isUnit());
  EXPECT_EQ(Attribute::getBool(true).getIntValue(), 1);
}

TEST(Attributes, AccelKinds) {
  accel::DmaInitConfig Config;
  Config.InputAddress = 0x42;
  Attribute DmaAttr = Attribute::getDmaConfig(Config);
  EXPECT_EQ(DmaAttr.getDmaConfigValue().InputAddress, 0x42);

  accel::OpcodeMapData Map;
  Map.Entries.push_back(
      {"sA", {accel::OpcodeAction::sendLiteral(0x22),
              accel::OpcodeAction::send(0)}});
  Attribute MapAttr = Attribute::getOpcodeMap(Map);
  ASSERT_NE(MapAttr.getOpcodeMapValue().lookup("sA"), nullptr);
  EXPECT_EQ(MapAttr.getOpcodeMapValue().lookup("sA")->Actions[0].Literal,
            0x22);
  EXPECT_NE(MapAttr.str().find("send_literal(34)"), std::string::npos);
}

TEST(Operations, CreateAndAccessors) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(
      Builder, "f", {MemRefType::get(&Context, {4}, Builder.getF32Type())});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());

  Value C0 = arith::ConstantOp::createIndex(Builder, 0).getResult();
  Value C4 = arith::ConstantOp::createIndex(Builder, 4).getResult();
  Value C1 = arith::ConstantOp::createIndex(Builder, 1).getResult();
  scf::ForOp Loop = scf::ForOp::create(Builder, C0, C4, C1);
  func::ReturnOp::create(Builder);

  EXPECT_EQ(Loop.getLowerBound(), C0);
  EXPECT_EQ(Loop.getStep(), C1);
  EXPECT_TRUE(Loop.getInductionVar().isBlockArgument());
  EXPECT_EQ(Loop.getInductionVar().getType(), Builder.getIndexType());
  EXPECT_EQ(Loop.getOperation()->getParentOp(), Func.getOperation());

  unsigned Count = 0;
  Func.getOperation()->walk([&](Operation *) { ++Count; });
  // func + 3 constants + for + yield + return.
  EXPECT_EQ(Count, 7u);
}

TEST(Operations, AttributesAndUseReplacement) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Value A = arith::ConstantOp::createInt(Builder, 1, Builder.getI32Type())
                .getResult();
  Value B = arith::ConstantOp::createInt(Builder, 2, Builder.getI32Type())
                .getResult();
  Operation *Add =
      arith::BinaryOp::create(Builder, "arith.addi", A, A).getOperation();
  func::ReturnOp::create(Builder);

  Add->setAttr("tag", Attribute::getString("x"));
  EXPECT_TRUE(Add->hasAttr("tag"));
  Add->setAttr("tag", Attribute::getString("y"));
  EXPECT_EQ(Add->getStringAttr("tag"), "y");
  Add->removeAttr("tag");
  EXPECT_FALSE(Add->hasAttr("tag"));

  Func.getOperation()->replaceUsesOfWith(A, B);
  EXPECT_EQ(Add->getOperand(0), B);
  EXPECT_EQ(Add->getOperand(1), B);
}

TEST(Operations, MoveBeforeAndErase) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Operation *First =
      arith::ConstantOp::createIndex(Builder, 1).getOperation();
  Operation *Second =
      arith::ConstantOp::createIndex(Builder, 2).getOperation();
  func::ReturnOp::create(Builder);

  Second->moveBefore(First);
  auto It = Func.getBody().getOperations().begin();
  EXPECT_EQ(*It, Second);
  EXPECT_EQ(*std::next(It), First);

  First->erase();
  EXPECT_EQ(Func.getBody().getOperations().size(), 2u);
}

TEST(Builder, InsertionPoints) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Operation *Ret = func::ReturnOp::create(Builder).getOperation();

  Builder.setInsertionPoint(Ret);
  Operation *BeforeRet =
      arith::ConstantOp::createIndex(Builder, 7).getOperation();
  Builder.setInsertionPointToStart(&Func.getBody());
  Operation *AtStart =
      arith::ConstantOp::createIndex(Builder, 8).getOperation();
  Builder.setInsertionPointAfter(AtStart);
  Operation *AfterStart =
      arith::ConstantOp::createIndex(Builder, 9).getOperation();

  std::vector<Operation *> Order(Func.getBody().getOperations().begin(),
                                 Func.getBody().getOperations().end());
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], AtStart);
  EXPECT_EQ(Order[1], AfterStart);
  EXPECT_EQ(Order[2], BeforeRet);
  EXPECT_EQ(Order[3], Ret);
}

TEST(Printer, ProducesReadableIR) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(
      Builder, "matmul_call",
      {MemRefType::get(&Context, {8, 8}, Builder.getI32Type())});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Value C0 = arith::ConstantOp::createIndex(Builder, 0).getResult();
  scf::ForOp::create(Builder, C0, C0, C0);
  func::ReturnOp::create(Builder);

  std::string Text = Func.getOperation()->str();
  EXPECT_NE(Text.find("func.func"), std::string::npos);
  EXPECT_NE(Text.find("scf.for"), std::string::npos);
  EXPECT_NE(Text.find("arith.constant"), std::string::npos);
  EXPECT_NE(Text.find("memref<8x8xi32>"), std::string::npos);
  EXPECT_NE(Text.find("sym_name = \"matmul_call\""), std::string::npos);
}

TEST(Verifier, AcceptsWellFormedAndRejectsBroken) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  func::ReturnOp::create(Builder);
  std::string Error;
  EXPECT_TRUE(succeeded(verify(Func.getOperation(), Error))) << Error;

  // Unregistered op name.
  Builder.setInsertionPointToStart(&Func.getBody());
  Builder.create("bogus.op");
  EXPECT_TRUE(failed(verify(Func.getOperation(), Error)));
  EXPECT_NE(Error.find("bogus.op"), std::string::npos);
}

TEST(Verifier, ChecksOperandContracts) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Value C0 = arith::ConstantOp::createIndex(Builder, 0).getResult();
  // scf.for with only two operands.
  Builder.create("scf.for", {C0, C0}, {}, {}, /*NumRegions=*/1);
  func::ReturnOp::create(Builder);
  std::string Error;
  EXPECT_TRUE(failed(verify(Func.getOperation(), Error)));
  EXPECT_NE(Error.find("scf.for"), std::string::npos);
}

} // namespace
