//===- HeuristicsTest.cpp - Tiling/dataflow heuristic tests ---------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Heuristics.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;

namespace {

TEST(MovementEstimator, ClosedFormValues) {
  // M=N=K=64, T=16 square tiles, 4 steps per dimension.
  // Ns: A*4 + B*4 + C*4 = 4096*12.
  EXPECT_DOUBLE_EQ(estimateMovedElements("Ns", 64, 64, 64, 16, 16, 16),
                   4096.0 * 12);
  // As: A once + B per m-step + C per k-step = 4096 * (1 + 4 + 4).
  EXPECT_DOUBLE_EQ(estimateMovedElements("As", 64, 64, 64, 16, 16, 16),
                   4096.0 * 9);
  EXPECT_DOUBLE_EQ(estimateMovedElements("Bs", 64, 64, 64, 16, 16, 16),
                   4096.0 * 9);
  EXPECT_DOUBLE_EQ(estimateMovedElements("Cs", 64, 64, 64, 16, 16, 16),
                   4096.0 * 9);
}

TEST(MovementEstimator, StationaryAlwaysBeatsNs) {
  for (int64_t M : {32, 128}) {
    for (int64_t N : {64, 256}) {
      double Ns = estimateMovedElements("Ns", M, N, 64, 8, 8, 8);
      for (const char *Flow : {"As", "Bs", "Cs"})
        EXPECT_LT(estimateMovedElements(Flow, M, N, 64, 8, 8, 8), Ns)
            << Flow << " " << M << "x" << N;
    }
  }
}

TEST(SquareTile, PicksLargestFittingDivisor) {
  // Paper Sec. IV-C: T = 32 for the {32, 256, 512} permutations on v4_16.
  FlowTilingChoice Choice =
      chooseSquareTile(256, 32, 512, "Cs", /*CapacityWords=*/16 * 16 * 16);
  EXPECT_EQ(Choice.TileM, 32);
  EXPECT_EQ(Choice.TileN, 32);
  EXPECT_EQ(Choice.TileK, 32);
  // With a bigger buffer it grows to the largest square divisor.
  Choice = chooseSquareTile(128, 128, 128, "As", 1 << 20);
  EXPECT_EQ(Choice.TileM, 128);
}

TEST(BestFlexible, ReproducesPaperAnnotations) {
  const int64_t Capacity = 16 * 16 * 16;
  // Paper Fig. 14 annotates 256_32_512 -> "Cs 128 32 32".
  FlowTilingChoice Best = chooseBestFlexible(256, 32, 512, Capacity);
  EXPECT_EQ(Best.Flow, "Cs");
  EXPECT_EQ(Best.TileM, 128);
  EXPECT_EQ(Best.TileN, 32);
  EXPECT_EQ(Best.TileK, 32);
  // ... and 32_256_512 -> "Cs 32 128 32".
  Best = chooseBestFlexible(32, 256, 512, Capacity);
  EXPECT_EQ(Best.Flow, "Cs");
  EXPECT_EQ(Best.TileM, 32);
  EXPECT_EQ(Best.TileN, 128);
  EXPECT_EQ(Best.TileK, 32);
}

TEST(BestFlexible, NeverWorseThanSquare) {
  const int64_t Capacity = 16 * 16 * 16;
  const int64_t Sizes[3] = {32, 256, 512};
  const int Perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto &Perm : Perms) {
    int64_t M = Sizes[Perm[0]], N = Sizes[Perm[1]], K = Sizes[Perm[2]];
    FlowTilingChoice Best = chooseBestFlexible(M, N, K, Capacity);
    for (const char *Flow : {"As", "Bs", "Cs"}) {
      FlowTilingChoice Square = chooseSquareTile(M, N, K, Flow, Capacity);
      EXPECT_LE(Best.MovedElements, Square.MovedElements)
          << M << "_" << N << "_" << K << " vs " << Flow;
    }
  }
}

TEST(BestFlexible, RespectsCapacity) {
  FlowTilingChoice Best = chooseBestFlexible(512, 512, 512, 1024);
  EXPECT_LE(Best.TileM * Best.TileK, 1024);
  EXPECT_LE(Best.TileK * Best.TileN, 1024);
  EXPECT_LE(Best.TileM * Best.TileN, 1024);
}

TEST(BestFlexible, SmallProblemUsesFullExtent) {
  FlowTilingChoice Best = chooseBestFlexible(8, 8, 8, 1 << 20,
                                             /*TileQuantum=*/16);
  // Dimensions below the quantum fall back to the extent itself.
  EXPECT_EQ(Best.TileM, 8);
  EXPECT_EQ(Best.TileN, 8);
  EXPECT_EQ(Best.TileK, 8);
}

} // namespace
