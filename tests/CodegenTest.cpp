//===- CodegenTest.cpp - C emitter tests ----------------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Pipeline.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using V = sim::MatMulAccelerator::Version;

namespace {

std::string lowerAndEmit(const char *Flow, int64_t Dims) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, Flow));
  std::string Error;
  transforms::PassManager Pipeline =
      transforms::buildPipeline(Accel, transforms::LoweringOptions());
  EXPECT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;
  auto Source = codegen::emitC(Func, &Error);
  EXPECT_TRUE(succeeded(Source)) << Error;
  return Source ? *Source : "";
}

TEST(CEmitter, EmitsDriverSkeleton) {
  std::string Source = lowerAndEmit("Ns", 16);
  EXPECT_NE(Source.find("void matmul_call(MemRef"), std::string::npos);
  EXPECT_NE(Source.find("dma_init("), std::string::npos);
  EXPECT_NE(Source.find("for (int64_t"), std::string::npos);
  EXPECT_NE(Source.find("memref_subview("), std::string::npos);
  EXPECT_NE(Source.find("copy_to_dma_region("), std::string::npos);
  EXPECT_NE(Source.find("copy_literal_to_dma_region("), std::string::npos);
  EXPECT_NE(Source.find("dma_start_send("), std::string::npos);
  EXPECT_NE(Source.find("dma_wait_send_completion("), std::string::npos);
  EXPECT_NE(Source.find("dma_start_recv("), std::string::npos);
  EXPECT_NE(Source.find("copy_from_dma_region("), std::string::npos);
  EXPECT_NE(Source.find("/*accumulate=*/true"), std::string::npos);
}

TEST(CEmitter, LoopNestDepthMatchesFlow) {
  std::string Ns = lowerAndEmit("Ns", 32);
  std::string As = lowerAndEmit("As", 32);
  // Both have three loops...
  auto countFor = [](const std::string &Text) {
    size_t Count = 0, Pos = 0;
    while ((Pos = Text.find("for (int64_t", Pos)) != std::string::npos) {
      ++Count;
      Pos += 4;
    }
    return Count;
  };
  EXPECT_EQ(countFor(Ns), 3u);
  EXPECT_EQ(countFor(As), 3u);
  // ...but As copies the A tile before the innermost loop: its first
  // copy_to_dma_region appears before the third `for`.
  size_t FirstCopy = As.find("copy_to_dma_region");
  size_t ThirdFor = As.find("for (int64_t",
                            As.find("for (int64_t",
                                    As.find("for (int64_t") + 4) +
                                4);
  ASSERT_NE(FirstCopy, std::string::npos);
  ASSERT_NE(ThirdFor, std::string::npos);
  EXPECT_LT(FirstCopy, ThirdFor);
}

TEST(CEmitter, RejectsUnloweredIR) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, 8, 8, 8, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  EXPECT_TRUE(failed(codegen::emitC(Func, &Error)));
  EXPECT_NE(Error.find("linalg.matmul"), std::string::npos);
}

} // namespace
