//===- ConfigParserTest.cpp - Configuration file parsing tests ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/AccelConfigs.h"
#include "parser/ConfigParser.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::parser;
using V = sim::MatMulAccelerator::Version;

namespace {

/// A hand-written config in the exact spirit of paper Fig. 5.
const char *Fig5Config = R"json({
  "cpu" = { "cache-levels": [32K, 512K],
            "cache-types": [data, shared] },
  "accelerators" = [
    { "name": "MM_4x4x4", "version": 1.2, "description": "tile matmul",
      "dma_config": { "id": 0x0, "inputAddress": 0x42,
                      "inputBufferSize": 0xFF00, "outputAddress": 0xFF42,
                      "outputBufferSize": 0xFF00 },
      "kernel": "linalg.matmul",
      "accel_size": [4, 4, 4], "data_type": int32,
      "dims": ["m", "n", "k"],
      "data": { "A": [m, k], "B": [k, n], "C": [m, n] },
      "opcode_map": "opcode_map< sA = [send_literal(0x22), send(0)],
                                 sB = [send_literal(0x23), send(1)],
                                 sBcCrC = [send_literal(0x25), send(1), recv(2)],
                                 reset = [send_literal(0xFF)] >",
      "opcode_flow_map": { "flowID01": "(sA (sBcCrC))",
                           "flowNs": "(sA sBcCrC)" },
      "selected_flow": "flowID01",
      "init_opcodes": "(reset)" }]
})json";

TEST(ConfigParser, ParsesFig5StyleConfig) {
  std::string Error;
  auto Config = parseSystemConfig(Fig5Config, &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;

  EXPECT_EQ(Config->Cpu.CacheLevelBytes,
            (std::vector<int64_t>{32 * 1024, 512 * 1024}));
  EXPECT_EQ(Config->Cpu.lastLevelCacheBytes(), 512 * 1024);
  EXPECT_EQ(Config->Cpu.CacheTypes[1], "shared");

  ASSERT_EQ(Config->Accelerators.size(), 1u);
  const AcceleratorDesc &Accel = Config->Accelerators[0];
  EXPECT_EQ(Accel.Name, "MM_4x4x4");
  EXPECT_EQ(Accel.Kernel, "linalg.matmul");
  EXPECT_EQ(Accel.DataType, "int32");
  EXPECT_EQ(Accel.AccelSize, (std::vector<int64_t>{4, 4, 4}));
  EXPECT_EQ(Accel.Dims, (std::vector<std::string>{"m", "n", "k"}));
  EXPECT_EQ(Accel.DmaConfig.InputAddress, 0x42);
  EXPECT_EQ(Accel.DmaConfig.InputBufferSize, 0xFF00);
  EXPECT_EQ(Accel.Data.size(), 3u);
  EXPECT_EQ(Accel.Data[0].first, "A");
  EXPECT_EQ(Accel.Data[0].second, (std::vector<std::string>{"m", "k"}));

  EXPECT_NE(Accel.OpcodeMap.lookup("sBcCrC"), nullptr);
  EXPECT_EQ(Accel.FlowMap.size(), 2u);
  EXPECT_EQ(Accel.SelectedFlow, "flowID01");
  ASSERT_NE(Accel.selectedFlow(), nullptr);
  EXPECT_EQ(Accel.selectedFlow()->Root.depth(), 2u);
  ASSERT_TRUE(Accel.InitOpcodes.has_value());
  EXPECT_EQ(Accel.InitOpcodes->allTokens(),
            (std::vector<std::string>{"reset"}));
  EXPECT_EQ(Config->findByKernel("linalg.matmul"), &Accel);
  EXPECT_EQ(Config->findByKernel("linalg.conv_2d_nchw_fchw"), nullptr);
}

TEST(ConfigParser, ScalarAccelSizeBroadcasts) {
  auto Config = parseSystemConfig(R"json({
    "accelerators": [{ "name": "a", "kernel": "linalg.matmul",
      "accel_size": 8,
      "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
      "opcode_flow_map": { "Ns": "(t)" } }]
  })json");
  ASSERT_TRUE(succeeded(Config));
  EXPECT_EQ(Config->Accelerators[0].AccelSize,
            (std::vector<int64_t>{8, 8, 8}));
  // selected_flow defaults to the first entry.
  EXPECT_EQ(Config->Accelerators[0].SelectedFlow, "Ns");
}

TEST(ConfigParser, ExplicitPermutationByName) {
  auto Config = parseSystemConfig(R"json({
    "accelerators": [{ "name": "a", "kernel": "linalg.matmul",
      "accel_size": [4, 4, 4], "dims": [m, n, k],
      "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
      "opcode_flow_map": { "Ns": "(t)" },
      "permutation": [m, k, n] }]
  })json");
  ASSERT_TRUE(succeeded(Config));
  ASSERT_TRUE(Config->Accelerators[0].Permutation.has_value());
  EXPECT_EQ(*Config->Accelerators[0].Permutation,
            (std::vector<unsigned>{0, 2, 1}));
}

TEST(ConfigParser, Diagnostics) {
  std::string Error;
  // Missing kernel.
  EXPECT_TRUE(failed(parseSystemConfig(
      R"json({"accelerators": [{"name": "x", "accel_size": 4,
           "opcode_map": "t = [send(0)]",
           "opcode_flow_map": {"Ns": "(t)"}}]})json",
      &Error)));
  EXPECT_NE(Error.find("kernel"), std::string::npos);

  // Flow referencing an unknown opcode.
  Error.clear();
  EXPECT_TRUE(failed(parseSystemConfig(
      R"json({"accelerators": [{"name": "x", "kernel": "linalg.matmul",
           "accel_size": 4, "opcode_map": "t = [send(0)]",
           "opcode_flow_map": {"Ns": "(bogus)"}}]})json",
      &Error)));
  EXPECT_NE(Error.find("bogus"), std::string::npos);

  // selected_flow that does not exist.
  Error.clear();
  EXPECT_TRUE(failed(parseSystemConfig(
      R"json({"accelerators": [{"name": "x", "kernel": "linalg.matmul",
           "accel_size": 4, "opcode_map": "t = [send(0)]",
           "opcode_flow_map": {"Ns": "(t)"}, "selected_flow": "Xs"}]})json",
      &Error)));
  EXPECT_NE(Error.find("Xs"), std::string::npos);

  // No accelerators at all.
  Error.clear();
  EXPECT_TRUE(failed(parseSystemConfig(R"json({"accelerators": []})json", &Error)));

  // Not JSON.
  Error.clear();
  EXPECT_TRUE(failed(parseSystemConfig("12, 13", &Error)));
}

TEST(ConfigParser, TwoAcceleratorEntriesBothValidated) {
  // Both entries parse and survive into the dispatch candidate list.
  auto Config = parseSystemConfig(R"json({
    "accelerators": [
      { "name": "small", "kernel": "linalg.matmul", "accel_size": [4, 4, 4],
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(t)" } },
      { "name": "large", "kernel": "linalg.matmul", "accel_size": [16, 16, 16],
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(t)" } }]
  })json");
  ASSERT_TRUE(succeeded(Config));
  ASSERT_EQ(Config->Accelerators.size(), 2u);
  EXPECT_EQ(Config->Accelerators[0].Name, "small");
  EXPECT_EQ(Config->Accelerators[1].Name, "large");
}

TEST(ConfigParser, MalformedSecondEntryIsAHardError) {
  // Entries past the first used to go unexercised by the pipeline; the
  // parser must still reject them eagerly (here: a flow referencing an
  // opcode the second accelerator does not define).
  std::string Error;
  EXPECT_TRUE(failed(parseSystemConfig(R"json({
    "accelerators": [
      { "name": "good", "kernel": "linalg.matmul", "accel_size": [4, 4, 4],
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(t)" } },
      { "name": "bad", "kernel": "linalg.matmul", "accel_size": [8, 8, 8],
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(missing_opcode)" } }]
  })json", &Error)));
  // The error pinpoints the offending entry.
  EXPECT_NE(Error.find("accelerators[1]"), std::string::npos) << Error;
  EXPECT_NE(Error.find("missing_opcode"), std::string::npos) << Error;
}

TEST(ConfigParser, RejectsDuplicateAcceleratorNames) {
  std::string Error;
  EXPECT_TRUE(failed(parseSystemConfig(R"json({
    "accelerators": [
      { "name": "twin", "kernel": "linalg.matmul", "accel_size": [4, 4, 4],
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(t)" } },
      { "name": "twin", "kernel": "linalg.matmul", "accel_size": [8, 8, 8],
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(t)" } }]
  })json", &Error)));
  EXPECT_NE(Error.find("duplicate"), std::string::npos) << Error;
  EXPECT_NE(Error.find("twin"), std::string::npos) << Error;
}

TEST(ConfigParser, RejectsNonsenseAccelSize) {
  std::string Error;
  EXPECT_TRUE(failed(parseSystemConfig(R"json({
    "accelerators": [{ "name": "x", "kernel": "linalg.matmul",
      "accel_size": [4, -5, 4],
      "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
      "opcode_flow_map": { "Ns": "(t)" } }]
  })json", &Error)));
  EXPECT_NE(Error.find("accel_size"), std::string::npos) << Error;
}

TEST(ConfigParser, LibraryMatMulConfigsParse) {
  for (V Version : {V::V1, V::V2, V::V3, V::V4}) {
    for (int64_t Size : {4, 8, 16}) {
      std::string Json =
          exec::makeMatMulConfigJson(Version, Size, "Ns");
      std::string Error;
      auto Config = parseSystemConfig(Json, &Error);
      ASSERT_TRUE(succeeded(Config)) << Error << "\n" << Json;
      EXPECT_EQ(Config->Accelerators[0].Kernel, "linalg.matmul");
    }
  }
}

TEST(ConfigParser, LibraryConvConfigParses) {
  std::string Error;
  auto Config = parseSystemConfig(exec::makeConvConfigJson(), &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  const AcceleratorDesc &Accel = Config->Accelerators[0];
  EXPECT_EQ(Accel.Kernel, "linalg.conv_2d_nchw_fchw");
  EXPECT_EQ(Accel.AccelSize,
            (std::vector<int64_t>{0, 1, 0, 0, -1, -1, -1}));
  ASSERT_TRUE(Accel.InitOpcodes.has_value());
  EXPECT_EQ(Accel.InitOpcodes->allTokens(),
            (std::vector<std::string>{"rst"}));
}

/// Minimal valid accelerator body reused by the faults-section tests.
std::string withFaults(const std::string &FaultsSection) {
  return "{ " + FaultsSection + R"json(
    "accelerators": [
      { "name": "mm", "kernel": "linalg.matmul", "accel_size": 4,
        "opcode_map": "opcode_map< s = [send_literal(0x21), send(0), send(1), recv(2)] >",
        "opcode_flow_map": { "Ns": "(s)" } } ] })json";
}

TEST(ConfigParser, FaultsSectionParses) {
  std::string Error;
  auto Config = parseSystemConfig(withFaults(R"json(
    "faults": {
      "events": [
        { "kind": "transient", "at": 2 },
        { "kind": "corrupt", "at": 5, "word": 3, "xor": 0xFF },
        { "kind": "stall", "at": 4, "steps": 32 },
        { "kind": "drop", "at": 7, "attempts": 9 }
      ],
      "retries": 2, "watchdog": 48, "backoff": 100, "poll": 5,
      "recover": true, "spares": 1
    },)json"),
                                  &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_TRUE(Config->HasFaults);
  ASSERT_EQ(Config->Faults.Events.size(), 4u);
  EXPECT_EQ(Config->Faults.Events[0].Kind, sim::FaultKind::TransientError);
  EXPECT_EQ(Config->Faults.Events[0].At, 2u);
  EXPECT_EQ(Config->Faults.Events[1].Kind, sim::FaultKind::CorruptWord);
  EXPECT_EQ(Config->Faults.Events[1].WordIndex, 3u);
  EXPECT_EQ(Config->Faults.Events[1].XorMask, 0xFFu);
  EXPECT_EQ(Config->Faults.Events[2].Kind, sim::FaultKind::Stall);
  EXPECT_EQ(Config->Faults.Events[2].Steps, 32u);
  EXPECT_EQ(Config->Faults.Events[3].Attempts, 9u);
  EXPECT_EQ(Config->Faults.Recovery.MaxRetries, 2u);
  EXPECT_EQ(Config->Faults.Recovery.WatchdogPolls, 48u);
  EXPECT_EQ(Config->Faults.Recovery.BackoffCycles, 100u);
  EXPECT_EQ(Config->Faults.Recovery.PollCycles, 5u);
  EXPECT_TRUE(Config->Faults.Recovery.Enabled);
  EXPECT_EQ(Config->SpareAccelerators, 1u);
}

TEST(ConfigParser, FaultsRandomScheduleAppends) {
  std::string Error;
  auto Config = parseSystemConfig(withFaults(R"json(
    "faults": {
      "events": [ { "kind": "drop", "at": 1 } ],
      "random": { "seed": 7, "count": 3, "max": 16 },
      "recover": false
    },)json"),
                                  &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_EQ(Config->Faults.Events.size(), 4u); // 1 explicit + 3 random
  EXPECT_FALSE(Config->Faults.Recovery.Enabled);
  // The random tail is reproducible: same seed, same events.
  sim::FaultPlan Again = sim::makeRandomFaultPlan(7, 3, 16);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Config->Faults.Events[1 + I].Kind, Again.Events[I].Kind);
    EXPECT_EQ(Config->Faults.Events[1 + I].At, Again.Events[I].At);
  }
}

TEST(ConfigParser, AbsentFaultsSectionStaysCold) {
  std::string Error;
  auto Config = parseSystemConfig(withFaults(""), &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_FALSE(Config->HasFaults);
  EXPECT_TRUE(Config->Faults.empty());
  EXPECT_EQ(Config->SpareAccelerators, 0u);
}

TEST(ConfigParser, FaultsDiagnostics) {
  auto expectError = [](const std::string &Section,
                        const std::string &Needle) {
    std::string Error;
    EXPECT_TRUE(failed(parseSystemConfig(withFaults(Section), &Error)))
        << Section;
    EXPECT_NE(Error.find(Needle), std::string::npos) << Error;
  };
  expectError(R"("faults": { "events": [ { "kind": "bogus", "at": 1 } ] },)",
              "unknown fault kind 'bogus'");
  expectError(R"("faults": { "events": [ { "kind": "drop" } ] },)",
              "needs a non-negative integer 'at'");
  expectError(R"("faults": { "events": [ { "kind": "drop", "at": 1,
                                           "attempts": 0 } ] },)",
              "'attempts' must be >= 1");
  expectError(R"("faults": { "retries": -1 },)", "out of range");
  expectError(R"("faults": { "recover": 1 },)", "must be a boolean");
  expectError(R"("faults": { "spares": -2 },)", "'faults.spares'");
  expectError(R"("faults": [],)", "'faults' must be an object");
  // The failing event is named by index.
  std::string Error;
  EXPECT_TRUE(failed(parseSystemConfig(
      withFaults(R"("faults": { "events": [ { "kind": "drop", "at": 1 },
                                            { "kind": "nope", "at": 2 } ] },)"),
      &Error)));
  EXPECT_NE(Error.find("faults.events[1]"), std::string::npos) << Error;
}

TEST(ConfigParser, DuplicateFaultEventIndicesDiagnosed) {
  auto expectError = [](const std::string &Section,
                        const std::string &Needle) {
    std::string Error;
    EXPECT_TRUE(failed(parseSystemConfig(withFaults(Section), &Error)))
        << Section;
    EXPECT_NE(Error.find(Needle), std::string::npos) << Error;
  };
  // Two DMA-domain events racing for send index 1.
  expectError(R"("faults": { "events": [ { "kind": "drop", "at": 1 },
                                          { "kind": "corrupt", "at": 1 } ] },)",
              "both target send index 1");
  // Two accelerator-domain events racing for opcode index 2.
  expectError(R"("faults": { "events": [ { "kind": "transient", "at": 2 },
                                          { "kind": "stall", "at": 2 } ] },)",
              "both target opcode index 2");
  // Same index across *different* domains is two distinct slots: fine.
  std::string Error;
  auto Config = parseSystemConfig(
      withFaults(R"("faults": { "events": [ { "kind": "drop", "at": 1 },
                                            { "kind": "transient", "at": 1 } ] },)"),
      &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_EQ(Config->Faults.Events.size(), 2u);
}

TEST(ConfigParser, RandomScheduleExemptFromDuplicateCheck) {
  // The generated tail models environmental noise and may legitimately
  // collide with explicit events (or itself); only author-written events
  // are cross-checked.
  std::string Error;
  auto Config = parseSystemConfig(withFaults(R"json(
    "faults": {
      "events": [ { "kind": "drop", "at": 1 } ],
      "random": { "seed": 3, "count": 8, "max": 2 }
    },)json"),
                                  &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_EQ(Config->Faults.Events.size(), 9u);
}

TEST(ConfigParser, SparesBeyondPoolDiagnosed) {
  // withFaults() configures exactly one accelerator; 2 spares can't be
  // honoured as per-primary clones.
  std::string Error;
  EXPECT_TRUE(failed(
      parseSystemConfig(withFaults(R"("faults": { "spares": 2 },)"), &Error)));
  EXPECT_NE(Error.find("'faults.spares' (2) exceeds"), std::string::npos)
      << Error;
  // One spare for one accelerator is fine.
  auto Config =
      parseSystemConfig(withFaults(R"("faults": { "spares": 1 },)"), &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_EQ(Config->SpareAccelerators, 1u);
}

/// Valid serve section reused by the serve tests (faults supply the
/// schedule that `faulty_instance` assigns).
std::string withServe(const std::string &ServeSection) {
  return "{ " + ServeSection + R"json(
    "faults": { "events": [ { "kind": "transient", "at": 1 } ],
                "recover": false },
    "accelerators": [
      { "name": "mm", "kernel": "linalg.matmul", "accel_size": 4,
        "opcode_map": "opcode_map< s = [send_literal(0x21), send(0), send(1), recv(2)] >",
        "opcode_flow_map": { "Ns": "(s)" } } ] })json";
}

TEST(ConfigParser, ServeSectionParses) {
  std::string Error;
  auto Config = parseSystemConfig(withServe(R"json(
    "serve": {
      "instances": 4, "queue_depth": 32, "max_attempts": 2,
      "breaker_threshold": 5, "breaker_cooldown": 6, "plan_cache": 8,
      "threads": 3, "deadline_ms": 12.5, "cpu_fallback": false,
      "faulty_instance": 1, "faulty_jobs": 7
    },)json"),
                                  &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_TRUE(Config->HasServe);
  const ServeSection &S = Config->Serve;
  EXPECT_EQ(S.Instances, 4u);
  EXPECT_EQ(S.QueueDepth, 32u);
  EXPECT_EQ(S.MaxAttempts, 2u);
  EXPECT_EQ(S.BreakerThreshold, 5u);
  EXPECT_EQ(S.BreakerCooldown, 6u);
  EXPECT_EQ(S.PlanCacheCapacity, 8u);
  EXPECT_EQ(S.Threads, 3u);
  EXPECT_DOUBLE_EQ(S.DefaultDeadlineMs, 12.5);
  EXPECT_FALSE(S.CpuFallback);
  EXPECT_EQ(S.FaultyInstance, 1);
  EXPECT_EQ(S.FaultyJobs, 7u);
}

TEST(ConfigParser, AbsentServeSectionKeepsDefaults) {
  std::string Error;
  auto Config = parseSystemConfig(withServe(""), &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  EXPECT_FALSE(Config->HasServe);
  EXPECT_EQ(Config->Serve.Instances, 2u);
  EXPECT_EQ(Config->Serve.FaultyInstance, -1);
  EXPECT_TRUE(Config->Serve.CpuFallback);
}

TEST(ConfigParser, ServeDiagnostics) {
  auto expectError = [](const std::string &Section,
                        const std::string &Needle) {
    std::string Error;
    EXPECT_TRUE(failed(parseSystemConfig(withServe(Section), &Error)))
        << Section;
    EXPECT_NE(Error.find(Needle), std::string::npos) << Error;
  };
  expectError(R"("serve": [],)", "'serve' must be an object");
  expectError(R"("serve": { "instances": 0 },)", "must be >= 1");
  expectError(R"("serve": { "queue_depth": -4 },)", "must be >= 1");
  expectError(R"("serve": { "plan_cache": 0 },)", "plan_cache >= 1");
  expectError(R"("serve": { "deadline_ms": -1 },)",
              "'serve.deadline_ms' must be a non-negative number");
  expectError(R"("serve": { "cpu_fallback": "yes" },)",
              "'serve.cpu_fallback' must be a boolean");
  expectError(R"("serve": { "faulty_instance": 2 },)",
              "'serve.faulty_instance' must name a pool instance");
  expectError(R"("serve": { "faulty_jobs": -1 },)",
              "'serve.faulty_jobs' must be >= 0");
  // faulty_instance without a faults section has no schedule to assign.
  std::string Error;
  EXPECT_TRUE(failed(parseSystemConfig(R"json({
    "serve": { "faulty_instance": 0 },
    "accelerators": [
      { "name": "mm", "kernel": "linalg.matmul", "accel_size": 4,
        "opcode_map": "opcode_map< s = [send_literal(0x21), send(0), send(1), recv(2)] >",
        "opcode_flow_map": { "Ns": "(s)" } } ] })json",
                                       &Error)));
  EXPECT_NE(Error.find("requires a 'faults' section"), std::string::npos)
      << Error;
}

TEST(ConfigParser, OpcodeActionReferenceValidation) {
  // Each bad opcode_map/flow below is injected into an otherwise valid
  // config with 3 'data' operands (A:[m,k] rank 2) and 3 'dims' names, so
  // every out-of-range action index must be rejected at parse time with a
  // diagnostic naming the offending opcode.
  auto withOpcodes = [](const std::string &MapText,
                        const std::string &Flow) {
    return std::string(R"json({
      "accelerators": [
        { "name": "mm", "kernel": "linalg.matmul", "accel_size": [4, 4, 4],
          "dims": ["m", "n", "k"],
          "data": { "A": [m, k], "B": [k, n], "C": [m, n] },
          "opcode_map": ")json") +
           MapText + R"json(",
          "opcode_flow_map": { "Ns": ")json" + Flow + R"json(" } }]
    })json";
  };
  auto expectError = [&](const std::string &MapText, const std::string &Flow,
                         const std::string &Needle) {
    std::string Error;
    EXPECT_TRUE(failed(parseSystemConfig(withOpcodes(MapText, Flow), &Error)))
        << MapText;
    EXPECT_NE(Error.find(Needle), std::string::npos) << Error;
  };

  // send(9): only 3 operands declared.
  expectError("t = [send_literal(1), send(9), recv(2)]", "(t)",
              "send(9) references an operand but 'data' defines 3 "
              "operand(s)");
  // recv(-2): negative operand index.
  expectError("t = [send_literal(1), send(0), recv(-2)]", "(t)",
              "recv(-2) references an operand");
  // send_dim(0, 5): operand 'A' is rank 2.
  expectError("t = [send_dim(0, 5), send(0), recv(2)]", "(t)",
              "but operand 'A' has rank 2");
  // send_dim(7, 0): operand index out of range.
  expectError("t = [send_dim(7, 0), send(0), recv(2)]", "(t)",
              "send_dim(7, 0) references an operand");
  // send_idx(7): only 3 kernel dims declared. (The name-resolving parser
  // already rejects unknown names; a raw integer must be range-checked.)
  expectError("t = [send_idx(7), send(0), recv(2)]", "(t)",
              "references a kernel dimension but 'dims' defines 3 name(s)");
  // Empty nested scope in a flow.
  expectError("t = [send_literal(1), send(0), recv(2)]", "(t ())",
              "empty '()' scope");

  // A valid map with in-range references still parses.
  std::string Error;
  EXPECT_TRUE(succeeded(parseSystemConfig(
      withOpcodes("t = [send_literal(1), send_dim(0, 1), send(0), recv(2)]",
                  "(t)"),
      &Error)))
      << Error;
}

TEST(ConfigParser, EmptyInitOpcodesScopeRejected) {
  std::string Error;
  EXPECT_TRUE(failed(parseSystemConfig(R"json({
    "accelerators": [
      { "name": "mm", "kernel": "linalg.matmul", "accel_size": 4,
        "opcode_map": "t = [send_literal(1), send(0), recv(2)]",
        "opcode_flow_map": { "Ns": "(t)" },
        "init_opcodes": "(t ())" }]
  })json",
                                       &Error)));
  EXPECT_NE(Error.find("empty '()' scope"), std::string::npos) << Error;
  EXPECT_NE(Error.find("init_opcodes"), std::string::npos) << Error;
}

TEST(ConfigParser, MissingFileFails) {
  std::string Error;
  EXPECT_TRUE(failed(
      parseSystemConfigFile("/nonexistent/path/config.json", &Error)));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

} // namespace
