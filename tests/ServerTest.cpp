//===- ServerTest.cpp - Serve-layer robustness pins -----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the axi4mlir-serve robustness policies:
///  * admission control / backpressure (Overloaded, never blocking),
///  * deadline enforcement at admission and via the retry watchdog,
///  * circuit breaker state machine (Closed -> Open -> HalfOpen -> Closed),
///  * retry-with-failover and host-CPU fallback,
///  * the differential robustness pin: under a seeded fault schedule that
///    trips a breaker, every *admitted* job completes with buffers
///    bit-identical to its fault-free solo run, across 2/4/8-instance
///    pools, and shed jobs carry structured statuses,
///  * the shared plan cache's LRU bounds,
///  * a multi-threaded stress (the CI ThreadSanitizer target).
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "exec/AccelConfigs.h"
#include "serve/PlanCache.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace axi4mlir;
using namespace axi4mlir::serve;

namespace {

parser::AcceleratorDesc matmulAccel(int64_t Size) {
  return exec::parseSingleAccelerator(exec::makeMatMulConfigJson(
      sim::MatMulAccelerator::Version::V3, Size, "As"));
}

parser::AcceleratorDesc convAccel() {
  return exec::parseSingleAccelerator(exec::makeConvConfigJson());
}

JobRequest matmulJob(int64_t M, int64_t N, int64_t K, uint32_t Seed) {
  JobRequest Request;
  Request.Kind = JobKind::MatMul;
  Request.M = M;
  Request.N = N;
  Request.K = K;
  Request.Seed = Seed;
  return Request;
}

JobRequest convJob(int64_t InHW, uint32_t Seed) {
  JobRequest Request;
  Request.Kind = JobKind::Conv2D;
  Request.InChannels = 8;
  Request.InHW = InHW;
  Request.OutChannels = 8;
  Request.FilterHW = 3;
  Request.Stride = 1;
  Request.Seed = Seed;
  return Request;
}

/// A schedule whose faults are terminal: recovery is disabled, so every
/// affected attempt fails with a structured AccelStatus error.
sim::FaultPlan brownoutPlan() {
  sim::FaultPlan Plan;
  sim::FaultEvent Event;
  Event.Kind = sim::FaultKind::TransientError;
  Event.At = 1;
  Plan.Events.push_back(Event);
  Plan.Recovery.Enabled = false;
  return Plan;
}

ServerOptions deterministicOptions() {
  ServerOptions Options;
  Options.Threads = 0;
  return Options;
}

std::map<JobStatus, unsigned> countByStatus(
    const std::vector<JobOutcome> &Outcomes) {
  std::map<JobStatus, unsigned> Counts;
  for (const JobOutcome &Out : Outcomes)
    ++Counts[Out.Status];
  return Counts;
}

//===----------------------------------------------------------------------===//
// PlanCache
//===----------------------------------------------------------------------===//

TEST(PlanCacheTest, LruBoundsAndCounters) {
  PlanCache Cache(2);
  auto kernel = [] { return std::make_shared<const CompiledKernel>(); };
  EXPECT_EQ(Cache.lookup("a"), nullptr); // miss
  Cache.insert("a", kernel());
  Cache.insert("b", kernel());
  EXPECT_NE(Cache.lookup("a"), nullptr); // hit, refreshes "a"
  Cache.insert("c", kernel());           // evicts LRU "b"
  EXPECT_EQ(Cache.lookup("b"), nullptr);
  EXPECT_NE(Cache.lookup("a"), nullptr);
  EXPECT_NE(Cache.lookup("c"), nullptr);
  PlanCache::Stats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 3u);
  EXPECT_EQ(Stats.Misses, 2u);
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(PlanCacheTest, EvictionKeepsInFlightEntriesAlive) {
  PlanCache Cache(1);
  Cache.insert("a", std::make_shared<const CompiledKernel>());
  std::shared_ptr<const CompiledKernel> Held = Cache.lookup("a");
  Cache.insert("b", std::make_shared<const CompiledKernel>()); // evicts "a"
  EXPECT_EQ(Cache.lookup("a"), nullptr);
  EXPECT_NE(Held, nullptr); // the in-flight reference survives eviction
}

//===----------------------------------------------------------------------===//
// Admission control and shedding
//===----------------------------------------------------------------------===//

TEST(ServerTest, QueueOverflowShedsOverloaded) {
  ServerOptions Options = deterministicOptions();
  Options.Instances = 1;
  Options.QueueDepth = 2;
  Server S({matmulAccel(4)}, Options);
  for (unsigned I = 0; I < 4; ++I)
    S.submit(matmulJob(8, 8, 8, 7 + I));
  S.drain();
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 4u);
  auto Counts = countByStatus(Outcomes);
  EXPECT_EQ(Counts[JobStatus::Completed], 2u);
  EXPECT_EQ(Counts[JobStatus::Overloaded], 2u);
  // Shed jobs never executed and carry a structured diagnostic.
  for (const JobOutcome &Out : Outcomes)
    if (Out.Status == JobStatus::Overloaded) {
      EXPECT_EQ(Out.Attempts, 0u);
      EXPECT_NE(Out.Error.find("queue full"), std::string::npos);
    }
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.Submitted, 4u);
  EXPECT_EQ(Stats.Admitted, 2u);
  EXPECT_EQ(Stats.Overloaded, 2u);
}

TEST(ServerTest, DrainingServerRejectsNewJobs) {
  Server S({matmulAccel(4)}, deterministicOptions());
  S.shutdown();
  S.submit(matmulJob(8, 8, 8, 7));
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Rejected);
  EXPECT_NE(Outcomes[0].Error.find("draining"), std::string::npos);
}

TEST(ServerTest, InvalidShapeRejected) {
  Server S({matmulAccel(4)}, deterministicOptions());
  S.submit(matmulJob(0, 8, 8, 7));
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Rejected);
}

TEST(ServerTest, UnsupportedKernelWithoutFallbackRejected) {
  ServerOptions Options = deterministicOptions();
  Options.CpuFallback = false;
  Server S({matmulAccel(4)}, Options);
  S.submit(convJob(10, 7));
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Rejected);
  EXPECT_NE(Outcomes[0].Error.find("no configured instance"),
            std::string::npos);
}

TEST(ServerTest, InfeasibleDeadlineShedsAtAdmission) {
  Server S({matmulAccel(4)}, deterministicOptions());
  JobRequest Request = matmulJob(64, 64, 64, 7);
  Request.DeadlineMs = 1e-6; // far below any modeled cost
  S.submit(Request);
  S.drain();
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::DeadlineExceeded);
  EXPECT_EQ(Outcomes[0].Attempts, 0u);
  EXPECT_NE(Outcomes[0].Error.find("infeasible"), std::string::npos);
}

TEST(ServerTest, GenerousDeadlineCompletes) {
  Server S({matmulAccel(4)}, deterministicOptions());
  JobRequest Request = matmulJob(16, 16, 16, 7);
  Request.DeadlineMs = 1e9;
  S.submit(Request);
  S.drain();
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Completed);
  EXPECT_GT(Outcomes[0].ModeledMs, 0);
}

//===----------------------------------------------------------------------===//
// Circuit breaker state machine
//===----------------------------------------------------------------------===//

TEST(ServerTest, BreakerTripsFailsOverAndRecovers) {
  ServerOptions Options = deterministicOptions();
  Options.Instances = 2;
  Options.BreakerThreshold = 2;
  Options.BreakerCooldown = 2;
  Options.MaxAttempts = 2;
  // Two identical engines; routing prefers instance 0 (tie to earlier).
  Server S({matmulAccel(4), matmulAccel(4)}, Options);
  // Instance 0 browns out for its first 2 attempts, then heals.
  InstanceFaults Faults;
  Faults.Plan = brownoutPlan();
  Faults.JobsAffected = 2;
  S.setInstanceFaults(0, Faults);

  // Jobs 1 and 2: first attempt fails on instance 0, retry fails over to
  // instance 1 and completes. The second failure trips the breaker.
  for (unsigned I = 0; I < 2; ++I) {
    S.submit(matmulJob(8, 8, 8, 7 + I));
    S.drain();
  }
  EXPECT_EQ(S.breakerState(0), BreakerState::Open);
  EXPECT_EQ(S.breakerState(1), BreakerState::Closed);

  // Cooldown: the next 2 routing decisions skip instance 0 entirely.
  for (unsigned I = 0; I < 2; ++I) {
    S.submit(matmulJob(8, 8, 8, 20 + I));
    S.drain();
  }
  std::vector<JobOutcome> During = S.takeOutcomes();
  for (const JobOutcome &Out : During) {
    if (Out.Status == JobStatus::Completed && Out.Attempts == 1) {
      EXPECT_EQ(Out.Instance, 1);
    }
  }

  // Cooldown elapsed: the next job is the half-open probe on instance 0.
  // Its fault window (2 attempts) is spent, so the probe succeeds and the
  // breaker closes.
  S.submit(matmulJob(8, 8, 8, 40));
  S.drain();
  EXPECT_EQ(S.breakerState(0), BreakerState::Closed);
  std::vector<JobOutcome> Probe = S.takeOutcomes();
  ASSERT_EQ(Probe.size(), 1u);
  EXPECT_EQ(Probe[0].Status, JobStatus::Completed);
  EXPECT_EQ(Probe[0].Instance, 0);

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.BreakerTrips, 1u);
  EXPECT_GE(Stats.Failovers, 2u);
  EXPECT_EQ(Stats.Failed, 0u);
}

TEST(ServerTest, FailedProbeReopensBreaker) {
  ServerOptions Options = deterministicOptions();
  Options.Instances = 2;
  Options.BreakerThreshold = 1;
  Options.BreakerCooldown = 1;
  Options.MaxAttempts = 2;
  Server S({matmulAccel(4), matmulAccel(4)}, Options);
  InstanceFaults Faults;
  Faults.Plan = brownoutPlan();
  Faults.JobsAffected = 0; // permanently faulty
  S.setInstanceFaults(0, Faults);

  S.submit(matmulJob(8, 8, 8, 7)); // trips the breaker (threshold 1)
  S.drain();
  EXPECT_EQ(S.breakerState(0), BreakerState::Open);
  S.submit(matmulJob(8, 8, 8, 8)); // cooldown tick, runs on instance 1
  S.drain();
  S.submit(matmulJob(8, 8, 8, 9)); // half-open probe fails -> re-opens
  S.drain();
  EXPECT_EQ(S.breakerState(0), BreakerState::Open);
  // Every job still completed (failover or instance 1 directly).
  for (const JobOutcome &Out : S.takeOutcomes())
    EXPECT_EQ(Out.Status, JobStatus::Completed);
}

//===----------------------------------------------------------------------===//
// CPU fallback
//===----------------------------------------------------------------------===//

TEST(ServerTest, CpuFallbackCompletesBitIdentical) {
  ServerOptions Options = deterministicOptions();
  Options.Instances = 1;
  Options.BreakerThreshold = 1;
  Options.MaxAttempts = 2;
  std::vector<parser::AcceleratorDesc> Accels = {matmulAccel(8)};
  Server S(Accels, Options);
  InstanceFaults Faults;
  Faults.Plan = brownoutPlan();
  Faults.JobsAffected = 0;
  S.setInstanceFaults(0, Faults);

  JobRequest Request = matmulJob(16, 16, 16, 7);
  S.submit(Request);
  S.drain();
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  ASSERT_EQ(Outcomes[0].Status, JobStatus::Completed);
  EXPECT_TRUE(Outcomes[0].CpuFallback);
  EXPECT_EQ(Outcomes[0].Instance, -1);

  // The CPU result is bit-identical to the fault-free accelerator run:
  // fillRandom data is exact in both i32 and f32 arithmetic.
  JobOutcome Solo = runSoloJob(Request, Accels, Options);
  ASSERT_EQ(Solo.Status, JobStatus::Completed);
  EXPECT_FALSE(Solo.CpuFallback);
  EXPECT_EQ(Outcomes[0].Checksum, Solo.Checksum);
  EXPECT_EQ(S.stats().CpuFallbacks, 1u);
}

TEST(ServerTest, FallbackDisabledEndsInStructuredFailure) {
  ServerOptions Options = deterministicOptions();
  Options.Instances = 1;
  Options.BreakerThreshold = 10; // keep the breaker out of the picture
  Options.MaxAttempts = 2;
  Options.CpuFallback = false;
  Server S({matmulAccel(8)}, Options);
  InstanceFaults Faults;
  Faults.Plan = brownoutPlan();
  Faults.JobsAffected = 0;
  S.setInstanceFaults(0, Faults);
  S.submit(matmulJob(16, 16, 16, 7));
  S.drain();
  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Failed);
  EXPECT_EQ(Outcomes[0].Attempts, 2u);
  EXPECT_NE(Outcomes[0].Error.find("retries exhausted"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The differential robustness pin (the PR's acceptance criterion)
//===----------------------------------------------------------------------===//

/// Runs a mixed matmul+conv stream through a pool with one browned-out
/// instance (terminal faults, breaker trips) and checks that every
/// admitted job completes with buffers bit-identical to its fault-free
/// solo run, while shed jobs carry structured statuses. No job may hang:
/// drain() returning at all (with every outcome terminal) pins that.
void runDifferentialPin(unsigned PoolSize) {
  SCOPED_TRACE("pool size " + std::to_string(PoolSize));
  std::vector<parser::AcceleratorDesc> Accels;
  // Heterogeneous pool: alternate small/large matmul engines plus a conv
  // engine so routing has real cost differences and mixed traffic.
  Accels.push_back(matmulAccel(4));
  if (PoolSize >= 2)
    Accels.push_back(matmulAccel(16));
  if (PoolSize >= 3)
    Accels.push_back(convAccel());

  ServerOptions Options = deterministicOptions();
  Options.Instances = PoolSize;
  Options.QueueDepth = 64;
  Options.BreakerThreshold = 2;
  Options.BreakerCooldown = 2;
  Options.MaxAttempts = 3;
  // Calibrate: find the instance routing prefers for the recurring small
  // matmul shape, so the brown-out lands on an instance that actually
  // takes first-attempt traffic (cost-model routing picks the cheapest
  // engine, which depends on the pool's composition).
  unsigned FaultyIndex = 0;
  {
    Server Probe(Accels, Options);
    Probe.submit(matmulJob(8, 16, 8, 99));
    Probe.drain();
    std::vector<JobOutcome> ProbeOut = Probe.takeOutcomes();
    ASSERT_EQ(ProbeOut.size(), 1u);
    ASSERT_EQ(ProbeOut[0].Status, JobStatus::Completed);
    ASSERT_GE(ProbeOut[0].Instance, 0);
    FaultyIndex = static_cast<unsigned>(ProbeOut[0].Instance);
  }

  Server S(Accels, Options);

  // The preferred engine browns out for its first 3 attempts: enough
  // consecutive failures to trip the breaker, then heals so the half-open
  // probe can close it again.
  InstanceFaults Faults;
  Faults.Plan = brownoutPlan();
  Faults.JobsAffected = 3;
  S.setInstanceFaults(FaultyIndex, Faults);

  std::vector<JobRequest> Requests;
  for (unsigned I = 0; I < 12; ++I) {
    if (PoolSize >= 3 && I % 3 == 2)
      Requests.push_back(convJob(10 + 4 * (I % 2), 100 + I));
    else
      Requests.push_back(matmulJob(8 + 8 * (I % 3), 16, 8, 100 + I));
  }
  std::map<uint64_t, const JobRequest *> ById;
  for (const JobRequest &Request : Requests)
    ById[S.submit(Request)] = &Request;
  S.drain();

  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), Requests.size());
  unsigned Completed = 0;
  for (const JobOutcome &Out : Outcomes) {
    // Terminal, structured statuses only — nothing hangs or vanishes.
    switch (Out.Status) {
    case JobStatus::Completed: {
      ++Completed;
      const JobRequest *Request = ById[Out.Id];
      ASSERT_NE(Request, nullptr);
      JobOutcome Solo = runSoloJob(*Request, Accels, Options);
      ASSERT_EQ(Solo.Status, JobStatus::Completed);
      // Bit-identical output regardless of instance, failover path or
      // CPU fallback.
      EXPECT_EQ(Out.Checksum, Solo.Checksum)
          << "job " << Out.Id << " diverged (instance " << Out.Instance
          << ", cpu=" << Out.CpuFallback << ")";
      break;
    }
    case JobStatus::Overloaded:
    case JobStatus::DeadlineExceeded:
    case JobStatus::Rejected:
      EXPECT_FALSE(Out.Error.empty());
      break;
    case JobStatus::Failed:
      ADD_FAILURE() << "job " << Out.Id << " failed: " << Out.Error;
      break;
    }
  }
  // Everything was admitted (queue depth 64) and must have completed.
  EXPECT_EQ(Completed, Requests.size());
  EXPECT_GE(S.stats().BreakerTrips, 1u);
}

TEST(ServerTest, DifferentialPinPool2) { runDifferentialPin(2); }
TEST(ServerTest, DifferentialPinPool4) { runDifferentialPin(4); }
TEST(ServerTest, DifferentialPinPool8) { runDifferentialPin(8); }

//===----------------------------------------------------------------------===//
// Multi-threaded stress (runs under ThreadSanitizer in CI)
//===----------------------------------------------------------------------===//

TEST(ServerTest, ThreadedStressKeepsEveryJobAccounted) {
  std::vector<parser::AcceleratorDesc> Accels = {matmulAccel(4),
                                                 matmulAccel(16), convAccel()};
  ServerOptions Options;
  Options.Instances = 4;
  Options.Threads = 4;
  Options.QueueDepth = 64;
  Options.BreakerThreshold = 2;
  Options.BreakerCooldown = 2;
  Options.MaxAttempts = 3;
  Server S(Accels, Options);
  InstanceFaults Faults;
  Faults.Plan = brownoutPlan();
  Faults.JobsAffected = 3;
  S.setInstanceFaults(0, Faults);

  std::map<uint64_t, JobRequest> ById;
  const unsigned Jobs = 24;
  for (unsigned I = 0; I < Jobs; ++I) {
    JobRequest Request = I % 3 == 2 ? convJob(10, 200 + I)
                                    : matmulJob(8 + 8 * (I % 2), 8, 8,
                                                200 + I);
    ById[S.submit(Request)] = Request;
  }
  S.drain();
  S.shutdown();

  std::vector<JobOutcome> Outcomes = S.takeOutcomes();
  ASSERT_EQ(Outcomes.size(), size_t(Jobs));
  std::set<uint64_t> Ids;
  ServerOptions SoloOptions = Options;
  SoloOptions.Threads = 0;
  for (const JobOutcome &Out : Outcomes) {
    EXPECT_TRUE(Ids.insert(Out.Id).second);
    ASSERT_NE(Out.Status, JobStatus::Failed) << Out.Error;
    if (Out.Status != JobStatus::Completed)
      continue;
    JobOutcome Solo = runSoloJob(ById[Out.Id], Accels, SoloOptions);
    ASSERT_EQ(Solo.Status, JobStatus::Completed);
    EXPECT_EQ(Out.Checksum, Solo.Checksum) << "job " << Out.Id;
  }
  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.Submitted, uint64_t(Jobs));
  EXPECT_EQ(Stats.Completed + Stats.Overloaded + Stats.DeadlineExceeded +
                Stats.Rejected + Stats.Failed,
            uint64_t(Jobs));
}

} // namespace
