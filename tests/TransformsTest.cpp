//===- TransformsTest.cpp - Compiler pass unit tests ----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the individual AXI4MLIR passes: named-op conversion,
/// match-and-annotate (trait attachment + permutation derivation against
/// the paper's flows), the tiling/placement lowering (structural checks of
/// hoisted communication ops, paper Figs. 6b/15b) and the runtime
/// lowering's transfer batching.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Pipeline.h"
#include "ir/Verifier.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::transforms;
using V = sim::MatMulAccelerator::Version;

namespace {

struct PipelineFixture {
  MLIRContext Context;
  OpBuilder Builder{&Context};
  func::FuncOp Func;
  OwningOpRef Owner;

  PipelineFixture(int64_t M = 32, int64_t N = 32, int64_t K = 32) {
    registerAllDialects(Context);
    Func = exec::buildMatMulFunc(Builder, M, N, K, sim::ElemKind::I32);
    Owner = OwningOpRef(Func.getOperation());
  }

  /// Number of enclosing scf.for loops of \p Op.
  static unsigned loopDepth(Operation *Op) {
    unsigned Depth = 0;
    for (Operation *Parent = Op->getParentOp(); Parent;
         Parent = Parent->getParentOp())
      if (Parent->getName() == "scf.for")
        ++Depth;
    return Depth;
  }

  /// First op with the given name (walk order), or nullptr.
  Operation *findOp(const std::string &Name, unsigned Skip = 0) {
    Operation *Found = nullptr;
    Func.getOperation()->walk([&](Operation *Op) {
      if (Op->getName() == Name && !Found) {
        if (Skip == 0)
          Found = Op;
        else
          --Skip;
      }
    });
    return Found;
  }

  unsigned countOps(const std::string &Name) {
    unsigned Count = 0;
    Func.getOperation()->walk([&](Operation *Op) {
      if (Op->getName() == Name)
        ++Count;
    });
    return Count;
  }
};

//===----------------------------------------------------------------------===//
// convertNamedToGeneric
//===----------------------------------------------------------------------===//

TEST(ConvertNamedToGeneric, MatmulBecomesGeneric) {
  PipelineFixture F;
  std::string Error;
  ASSERT_TRUE(succeeded(convertNamedToGeneric(F.Func, Error))) << Error;
  EXPECT_EQ(F.countOps("linalg.matmul"), 0u);
  ASSERT_EQ(F.countOps("linalg.generic"), 1u);

  linalg::GenericOp Generic(F.findOp("linalg.generic"));
  EXPECT_EQ(Generic.getNumInputs(), 2u);
  EXPECT_EQ(Generic.getNumLoops(), 3u);
  EXPECT_EQ(Generic.getIteratorTypes(), linalg::getMatmulIteratorTypes());
  EXPECT_EQ(Generic.getIndexingMap(0), linalg::getMatmulIndexingMaps()[0]);
  EXPECT_EQ(Generic.getStaticLoopRanges(),
            (std::vector<int64_t>{32, 32, 32}));
  ASSERT_TRUE(succeeded(verify(F.Func.getOperation(), Error))) << Error;
}

TEST(ConvertNamedToGeneric, ConvBecomesGenericWithStrides) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = exec::buildConvFunc(Builder, 1, 4, 9, 2, 3, 2,
                                          sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(convertNamedToGeneric(Func, Error))) << Error;

  Operation *GenericOp = nullptr;
  Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "linalg.generic")
      GenericOp = Op;
  });
  ASSERT_NE(GenericOp, nullptr);
  linalg::GenericOp Generic(GenericOp);
  EXPECT_EQ(Generic.getNumLoops(), 7u);
  EXPECT_EQ(Generic.getIndexingMap(0), linalg::getConvIndexingMaps(2, 2)[0]);
  // Loop ranges: b=1, oc=2, oh=ow=(9-3)/2+1=4, ic=4, fh=fw=3.
  EXPECT_EQ(Generic.getStaticLoopRanges(),
            (std::vector<int64_t>{1, 2, 4, 4, 4, 3, 3}));
}

//===----------------------------------------------------------------------===//
// matchAndAnnotate + permutation derivation
//===----------------------------------------------------------------------===//

TEST(MatchAndAnnotate, AttachesTraitAttributes) {
  PipelineFixture F;
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "As"));
  std::string Error;
  ASSERT_TRUE(succeeded(convertNamedToGeneric(F.Func, Error)));
  unsigned NumAnnotated = 0;
  ASSERT_TRUE(
      succeeded(matchAndAnnotate(F.Func, Accel, Error, &NumAnnotated)))
      << Error;
  EXPECT_EQ(NumAnnotated, 1u);

  Operation *Generic = F.findOp("linalg.generic");
  ASSERT_NE(Generic, nullptr);
  EXPECT_TRUE(Generic->hasAttr(accel::OpcodeMapAttrName));
  EXPECT_TRUE(Generic->hasAttr(accel::OpcodeFlowAttrName));
  EXPECT_TRUE(Generic->hasAttr(accel::DmaInitConfigAttrName));
  EXPECT_TRUE(Generic->hasAttr(accel::InitOpcodesAttrName));

  // accel_dim = (8, 8, 8).
  AffineMap Tiles =
      Generic->getAffineMapAttr(accel::AccelDimAttrName);
  EXPECT_EQ(Tiles.eval({0, 0, 0}), (std::vector<int64_t>{8, 8, 8}));
  // As flow derives the (m, k, n) loop order of paper Fig. 6a L12.
  AffineMap Perm =
      Generic->getAffineMapAttr(accel::PermutationMapAttrName);
  EXPECT_EQ(Perm.eval({0, 1, 2}), (std::vector<int64_t>{0, 2, 1}));
}

TEST(MatchAndAnnotate, SkipsNonMatchingGenerics) {
  // An elementwise generic must not be annotated with matmul traits.
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  MemRefType Ty = MemRefType::get(&Context, {8}, Type::getI32(&Context));
  func::FuncOp Func = func::FuncOp::create(Builder, "ew", {Ty, Ty});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  linalg::GenericOp::create(
      Builder, {Func.getArgument(0)}, {Func.getArgument(1)},
      {AffineMap::getMultiDimIdentity(1), AffineMap::getMultiDimIdentity(1)},
      {linalg::IteratorParallel},
      [](OpBuilder &B, const std::vector<Value> &Args) {
        linalg::YieldOp::create(B, {Args[0]});
      });
  func::ReturnOp::create(Builder);

  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "Ns"));
  std::string Error;
  unsigned NumAnnotated = 0;
  ASSERT_TRUE(
      succeeded(matchAndAnnotate(Func, Accel, Error, &NumAnnotated)));
  EXPECT_EQ(NumAnnotated, 0u);
}

TEST(MatchAndAnnotate, RejectModeListsAllIndivisibleDims) {
  PipelineFixture F(/*M=*/30, /*N=*/32, /*K=*/29); // 30 % 8, 29 % 8
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "Ns"));
  std::string Error;
  ASSERT_TRUE(succeeded(convertNamedToGeneric(F.Func, Error)));
  PlanningOptions Options;
  Options.Mode = RemainderMode::Reject;
  EXPECT_TRUE(failed(matchAndAnnotate(F.Func, {Accel}, Options, Error)));
  // One error naming every offending dimension, not just the first.
  EXPECT_NE(Error.find("divisible"), std::string::npos) << Error;
  EXPECT_NE(Error.find("dim 0"), std::string::npos) << Error;
  EXPECT_NE(Error.find("dim 2"), std::string::npos) << Error;
  EXPECT_EQ(Error.find("dim 1"), std::string::npos) << Error;
}

TEST(MatchAndAnnotate, PadModeAcceptsIndivisibleProblems) {
  PipelineFixture F(/*M=*/30, /*N=*/32, /*K=*/32);
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "Ns"));
  std::string Error;
  ASSERT_TRUE(succeeded(convertNamedToGeneric(F.Func, Error)));
  unsigned NumAnnotated = 0;
  ASSERT_TRUE(
      succeeded(matchAndAnnotate(F.Func, Accel, Error, &NumAnnotated)))
      << Error;
  EXPECT_EQ(NumAnnotated, 1u);
  Operation *Generic = F.findOp("linalg.generic");
  ASSERT_NE(Generic, nullptr);
  // The attached plan records the remainder strategy and per-dim
  // remainders (30 % 8 = 6 in m, none elsewhere).
  EXPECT_EQ(Generic->getStringAttr(RemainderModeAttrName), "pad");
  AffineMap Remainders =
      Generic->getAffineMapAttr(PlanRemaindersAttrName);
  EXPECT_EQ(Remainders.eval({0, 0, 0}), (std::vector<int64_t>{6, 0, 0}));
}

TEST(DerivePermutation, PaperFlows) {
  parser::AcceleratorDesc V3Desc = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "Ns"));
  std::vector<AffineMap> Maps = linalg::getMatmulIndexingMaps();

  auto perm = [&](const char *Flow) {
    return derivePermutationFromFlow(*V3Desc.lookupFlow(Flow),
                                     V3Desc.OpcodeMap, Maps, 3);
  };
  // Dims: m=0, n=1, k=2.
  EXPECT_EQ(perm("Ns"), (std::vector<unsigned>{0, 1, 2})); // (m,n,k)
  EXPECT_EQ(perm("As"), (std::vector<unsigned>{0, 2, 1})); // (m,k,n)
  EXPECT_EQ(perm("Bs"), (std::vector<unsigned>{1, 2, 0})); // (n,k,m)
  EXPECT_EQ(perm("Cs"), (std::vector<unsigned>{0, 1, 2})); // (m,n,k)
}

//===----------------------------------------------------------------------===//
// lowerToAccel: structure of the generated host code
//===----------------------------------------------------------------------===//

struct LoweredFixture : PipelineFixture {
  LoweredFixture(const char *Flow, V Version = V::V3, int64_t Size = 8,
                 bool CpuTiling = false, int64_t Dims = 32)
      : PipelineFixture(Dims, Dims, Dims) {
    parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
        exec::makeMatMulConfigJson(Version, Size, Flow));
    std::string Error;
    LoweringOptions Options;
    Options.EnableCpuTiling = CpuTiling;
    EXPECT_TRUE(succeeded(convertNamedToGeneric(Func, Error))) << Error;
    EXPECT_TRUE(succeeded(matchAndAnnotate(Func, Accel, Error))) << Error;
    EXPECT_TRUE(succeeded(lowerToAccel(Func, Options, Error))) << Error;
    EXPECT_TRUE(succeeded(verify(Func.getOperation(), Error))) << Error;
  }
};

TEST(LowerToAccel, NsPlacesEverythingInnermost) {
  LoweredFixture F("Ns");
  EXPECT_EQ(F.countOps("linalg.generic"), 0u);
  EXPECT_EQ(F.countOps("scf.for"), 3u);
  EXPECT_EQ(F.countOps("accel.dma_init"), 1u);
  // All data movement at depth 3.
  Operation *Send = F.findOp("accel.send");
  Operation *Recv = F.findOp("accel.recv");
  ASSERT_NE(Send, nullptr);
  ASSERT_NE(Recv, nullptr);
  EXPECT_EQ(PipelineFixture::loopDepth(Send), 3u);
  EXPECT_EQ(PipelineFixture::loopDepth(Recv), 3u);
}

TEST(LowerToAccel, AsHoistsTheATile) {
  // Paper Fig. 6b: sA's send sits inside two loops, sB/rC innermost.
  LoweredFixture F("As");
  Operation *SendA = F.findOp("accel.send", /*Skip=*/0);
  Operation *SendB = F.findOp("accel.send", /*Skip=*/1);
  Operation *Recv = F.findOp("accel.recv");
  ASSERT_NE(SendA, nullptr);
  ASSERT_NE(SendB, nullptr);
  ASSERT_NE(Recv, nullptr);
  EXPECT_EQ(PipelineFixture::loopDepth(SendA), 2u);
  EXPECT_EQ(PipelineFixture::loopDepth(SendB), 3u);
  EXPECT_EQ(PipelineFixture::loopDepth(Recv), 3u);
}

TEST(LowerToAccel, CsHoistsTheReceive) {
  LoweredFixture F("Cs");
  Operation *Recv = F.findOp("accel.recv");
  ASSERT_NE(Recv, nullptr);
  // rC lives inside (m, n) after the k loop.
  EXPECT_EQ(PipelineFixture::loopDepth(Recv), 2u);
  // ... and the k-loop precedes it in the same block.
  Block *RecvBlock = Recv->getBlock();
  bool SawInnerLoop = false;
  for (Operation *Op : RecvBlock->getOperations()) {
    if (Op->getName() == "scf.for")
      SawInnerLoop = true;
    if (Op == Recv)
      break;
  }
  EXPECT_TRUE(SawInnerLoop);
}

TEST(LowerToAccel, InitOpcodesPrecedeLoops) {
  LoweredFixture F("Ns");
  // The reset literal (0xFF) executes outside any loop.
  Operation *Reset = nullptr;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "accel.send_literal" &&
        Op->getIntAttr("literal") == 0xFF)
      Reset = Op;
  });
  ASSERT_NE(Reset, nullptr);
  EXPECT_EQ(PipelineFixture::loopDepth(Reset), 0u);
}

TEST(LowerToAccel, CpuTilingAddsOuterLoops) {
  // 256^3 with 8x8x8 accel tiles: the heuristic picks a CPU tile level.
  LoweredFixture Flat("Ns", V::V3, 8, /*CpuTiling=*/false, /*Dims=*/256);
  LoweredFixture Tiled("Ns", V::V3, 8, /*CpuTiling=*/true, /*Dims=*/256);
  EXPECT_EQ(Flat.countOps("scf.for"), 3u);
  EXPECT_GT(Tiled.countOps("scf.for"), 3u);
}

TEST(LowerToAccel, SmallProblemNeedsNoLoops) {
  // dims == accel size: single tile, loop-free driver.
  LoweredFixture F("Ns", V::V3, 8, false, /*Dims=*/8);
  EXPECT_EQ(F.countOps("scf.for"), 0u);
  EXPECT_EQ(F.countOps("accel.send"), 2u);
  EXPECT_EQ(F.countOps("accel.recv"), 1u);
}

TEST(LowerToAccel, V4EmitsConfigInit) {
  LoweredFixture F("Cs", V::V4, 16, false, /*Dims=*/32);
  // cfg = literal 0x10 + three send_dims carrying the tile sizes.
  Operation *Cfg = nullptr;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "accel.send_literal" &&
        Op->getIntAttr("literal") == 0x10)
      Cfg = Op;
  });
  ASSERT_NE(Cfg, nullptr);
  EXPECT_EQ(F.countOps("accel.send_dim"), 3u);
  Operation *SendDim = F.findOp("accel.send_dim");
  EXPECT_EQ(SendDim->getIntAttr("static_size"), 16);
}

//===----------------------------------------------------------------------===//
// lowerToAccel: partial tiles (pad / peel)
//===----------------------------------------------------------------------===//

struct PartialLoweredFixture : PipelineFixture {
  PartialLoweredFixture(RemainderMode Mode, int64_t M, int64_t N, int64_t K,
                        const char *Flow = "Ns", int64_t Size = 8)
      : PipelineFixture(M, N, K) {
    parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
        exec::makeMatMulConfigJson(V::V3, Size, Flow));
    std::string Error;
    LoweringOptions Options;
    Options.EnableCpuTiling = false;
    PlanningOptions Planning;
    Planning.Mode = Mode;
    EXPECT_TRUE(succeeded(convertNamedToGeneric(Func, Error))) << Error;
    EXPECT_TRUE(succeeded(matchAndAnnotate(Func, {Accel}, Planning, Error)))
        << Error;
    EXPECT_TRUE(succeeded(lowerToAccel(Func, Options, Error))) << Error;
    EXPECT_TRUE(succeeded(verify(Func.getOperation(), Error))) << Error;
  }
};

TEST(LowerToAccel, PadStagesPartialTilesThroughZeroFilledBuffers) {
  // 20x12x28 on an 8-tile engine: a partial tile in every dimension. The
  // fringe boxes must stage sends through zero-filled full-tile buffers
  // (alloc + copy) and mask receives back (alloc + accumulate generic).
  PartialLoweredFixture F(RemainderMode::Pad, 20, 12, 28);
  EXPECT_GT(F.countOps("memref.alloc"), 0u);
  EXPECT_GT(F.countOps("memref.copy"), 0u);
  EXPECT_GT(F.countOps("memref.dealloc"), 0u);
  // Masked receives land as residual accumulate generics.
  EXPECT_GT(F.countOps("linalg.generic"), 0u);
  // Overwrite-mode receives into the staging tile.
  bool SawOverwriteRecv = false;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "accel.recv" &&
        accel::RecvOp(Op).getMode() == "overwrite")
      SawOverwriteRecv = true;
  });
  EXPECT_TRUE(SawOverwriteRecv);
}

TEST(LowerToAccel, PadDivisibleProblemNeedsNoStaging) {
  PartialLoweredFixture F(RemainderMode::Pad, 32, 32, 32);
  EXPECT_EQ(F.countOps("memref.alloc"), 0u);
  EXPECT_EQ(F.countOps("memref.copy"), 0u);
  EXPECT_EQ(F.countOps("linalg.generic"), 0u);
  EXPECT_EQ(F.countOps("scf.for"), 3u);
}

TEST(LowerToAccel, PeelEmitsOneHostEpiloguePerPartialDim) {
  // Three partial dims -> three residual host generics over the peeled
  // remainder boxes; no staging buffers at all.
  PartialLoweredFixture F(RemainderMode::Peel, 20, 12, 28);
  EXPECT_EQ(F.countOps("linalg.generic"), 3u);
  EXPECT_EQ(F.countOps("memref.alloc"), 0u);
  EXPECT_EQ(F.countOps("memref.copy"), 0u);
}

TEST(LowerToAccel, PeelSingleRemainderDim) {
  // Only K is partial: one epilogue, and the accel main loops cover the
  // full m/n extents.
  PartialLoweredFixture F(RemainderMode::Peel, 32, 32, 28);
  EXPECT_EQ(F.countOps("linalg.generic"), 1u);
  Operation *Epilogue = F.findOp("linalg.generic");
  ASSERT_NE(Epilogue, nullptr);
  // The epilogue runs outside the accel loop nest.
  EXPECT_EQ(PipelineFixture::loopDepth(Epilogue), 0u);
}

//===----------------------------------------------------------------------===//
// convertAccelToRuntime: batching
//===----------------------------------------------------------------------===//

TEST(AccelToRuntime, BatchesTokensIntoOneSend) {
  LoweredFixture F("Ns", V::V3, 8, false, /*Dims=*/16);
  std::string Error;
  ASSERT_TRUE(succeeded(convertAccelToRuntime(F.Func, Error))) << Error;
  ASSERT_TRUE(succeeded(verify(F.Func.getOperation(), Error))) << Error;

  // No accel ops remain.
  EXPECT_EQ(F.countOps("accel.send"), 0u);
  EXPECT_EQ(F.countOps("accel.recv"), 0u);
  EXPECT_EQ(F.countOps("accel.dma_init"), 0u);

  // In the innermost block: exactly one start_send (the whole
  // sA+sB+cC+rC-opcode batch) and one start_recv.
  unsigned StartSends = 0, StartRecvs = 0, WaitSends = 0;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() != "func.call")
      return;
    std::string Callee = func::CallOp(Op).getCallee();
    if (Callee == rtcall::StartSend)
      ++StartSends;
    if (Callee == rtcall::StartRecv)
      ++StartRecvs;
    if (Callee == rtcall::WaitSend)
      ++WaitSends;
  });
  // One batched send in the loop body plus one for the init opcodes.
  EXPECT_EQ(StartSends, 2u);
  EXPECT_EQ(StartRecvs, 1u);
  EXPECT_EQ(WaitSends, StartSends);
}

TEST(AccelToRuntime, RecvCarriesAccumulateFlag) {
  LoweredFixture F("Ns", V::V3, 8, false, /*Dims=*/16);
  std::string Error;
  ASSERT_TRUE(succeeded(convertAccelToRuntime(F.Func, Error))) << Error;
  Operation *CopyBack = nullptr;
  F.Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == "func.call" &&
        func::CallOp(Op).getCallee() == rtcall::CopyFromDma)
      CopyBack = Op;
  });
  ASSERT_NE(CopyBack, nullptr);
  EXPECT_EQ(CopyBack->getAttr("accumulate").getIntValue(), 1);
}

//===----------------------------------------------------------------------===//
// Full pass manager
//===----------------------------------------------------------------------===//

TEST(PassManager, ReportsFailingPass) {
  PipelineFixture F(/*M=*/30, 32, 32);
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "Ns"));
  LoweringOptions Options;
  Options.Remainder = RemainderMode::Reject; // 30 % 8 != 0 -> plan error
  PassManager PM = buildPipeline(Accel, Options);
  std::string Error;
  EXPECT_TRUE(failed(PM.run(F.Func, Error)));
  EXPECT_NE(Error.find("match-and-annotate"), std::string::npos);
}

} // namespace
