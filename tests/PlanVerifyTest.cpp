//===- PlanVerifyTest.cpp - Static plan verifier mutation tests -----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract that keeps the static verifier (src/analysis) honest:
/// every compiled plan in the repository verifies clean at every
/// optimizer stage, and a known-good plan corrupted along each mutation
/// class the verifier claims to catch — swapped jump targets, staging
/// copies escaping the DMA region, dropped transfer waits, protocol
/// (opcode-stream) violations, use-before-def, out-of-range slots,
/// non-positive loop steps — is rejected with an instruction-level
/// diagnostic. Mutations go through PlanView's explicit escape hatch;
/// nothing executes.
///
//===----------------------------------------------------------------------===//

#include "analysis/PlanVerifier.h"
#include "analysis/PlanView.h"
#include "analysis/ProtocolModel.h"
#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/ExecPlan.h"
#include "exec/Pipeline.h"
#include "exec/opt/PlanOpt.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using analysis::PlanView;
using V = sim::MatMulAccelerator::Version;
using POp = PlanView::Op;
using Inst = PlanView::Inst;

namespace {

/// Builds an 16x16x16 i32 matmul, lowers it to the axirt runtime-call
/// level against a v3 8-tile accelerator, and compiles the ExecPlan the
/// tests then corrupt. Returns nullptr (with ADD_FAILURE) on any error.
std::unique_ptr<ExecPlan> compilePlan(parser::AcceleratorDesc &AccelOut,
                                      bool FuseTransferPairs = true,
                                      const std::string &Flow = "Ns") {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      buildMatMulFunc(Builder, 16, 16, 16, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  AccelOut = parseSingleAccelerator(makeMatMulConfigJson(V::V3, 8, Flow));

  std::string Error;
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  if (failed(transforms::convertNamedToGeneric(Func, Error)) ||
      failed(transforms::matchAndAnnotate(Func, AccelOut, Error)) ||
      failed(transforms::lowerToAccel(Func, Options, Error)) ||
      failed(transforms::convertAccelToRuntime(Func, Error))) {
    ADD_FAILURE() << "lowering failed: " << Error;
    return nullptr;
  }
  auto Plan = ExecPlan::compile(Func, Error, FuseTransferPairs);
  if (!Plan)
    ADD_FAILURE() << "plan compilation failed: " << Error;
  return Plan;
}

/// Index of the first instruction matching \p Pred, or -1.
template <typename Pred> int64_t findInst(ExecPlan &Plan, Pred &&P) {
  std::vector<Inst> &Program = PlanView::mutableProgram(Plan);
  for (size_t I = 0; I < Program.size(); ++I)
    if (P(Program[I]))
      return static_cast<int64_t>(I);
  return -1;
}

/// True when some error diagnostic contains \p Needle; on failure prints
/// everything the verifier reported.
void expectError(const analysis::VerifyResult &Result,
                 const std::string &Needle) {
  for (const analysis::PlanDiag &D : Result.Errors) {
    if (D.Message.find(Needle) != std::string::npos) {
      // Instruction-level: the diagnostic names a pc (or is a whole-plan
      // end-state finding, which still carries the pc of the culprit).
      EXPECT_TRUE(D.Message.rfind("pc ", 0) == 0 || D.Pc < 0)
          << D.Message;
      return;
    }
  }
  ADD_FAILURE() << "no error diagnostic contains '" << Needle << "'; got:\n"
                << Result.toString();
}

//===----------------------------------------------------------------------===//
// Positive: everything in the repo verifies clean, at every stage
//===----------------------------------------------------------------------===//

TEST(PlanVerify, CleanPlanVerifiesAtEveryStage) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);

  std::string ModelError;
  auto Model = analysis::ProtocolModel::forAccelerator(Accel, ModelError);
  ASSERT_TRUE(succeeded(Model)) << ModelError;
  analysis::VerifyOptions Options;
  Options.Model = &*Model;

  analysis::VerifyResult Compiled = analysis::verifyPlan(*Plan, Options);
  EXPECT_TRUE(Compiled.Errors.empty()) << Compiled.toString();
  EXPECT_TRUE(Compiled.Warnings.empty()) << Compiled.toString();

  // Verify-each between fold -> licm -> coalesce -> dce must stay clean,
  // and the final optimized plan must re-verify including the protocol.
  opt::PlanOptOptions OptOptions = opt::PlanOptOptions::all();
  OptOptions.VerifyEach = true;
  opt::PlanOptStats Stats = opt::optimizePlan(*Plan, OptOptions);
  EXPECT_GT(Stats.total(), 0u);
  EXPECT_TRUE(Stats.VerifyError.empty())
      << "after " << Stats.VerifyFailedPass << ": " << Stats.VerifyError;
  analysis::VerifyResult Optimized = analysis::verifyPlan(*Plan, Options);
  EXPECT_TRUE(Optimized.Errors.empty()) << Optimized.toString();
}

TEST(PlanVerify, UnfusedPlanVerifiesClean) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel, /*FuseTransferPairs=*/false);
  ASSERT_TRUE(Plan);
  analysis::VerifyResult Result = analysis::verifyPlan(*Plan);
  EXPECT_TRUE(Result.Errors.empty()) << Result.toString();
}

//===----------------------------------------------------------------------===//
// Mutation classes (each must be rejected with a pc-level diagnostic)
//===----------------------------------------------------------------------===//

TEST(PlanVerify, SwappedJumpTargetRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  int64_t Loop =
      findInst(*Plan, [](const Inst &I) { return I.Code == POp::LoopBegin; });
  ASSERT_GE(Loop, 0) << "expected a loop in the lowered plan";
  // Retarget the zero-trip jump one instruction early: it no longer
  // points just past this loop's end.
  PlanView::mutableProgram(*Plan)[Loop].Aux -= 1;
  expectError(analysis::verifyPlan(*Plan), "jump target");
}

TEST(PlanVerify, StagingCopyOutsideDmaRegionRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  ASSERT_FALSE(PlanView::mutableDmaConfigs(*Plan).empty());
  // Shrink the DMA input window to two words: the 8x8 tile staging
  // copies now provably overflow the region.
  PlanView::mutableDmaConfigs(*Plan)[0].InputBufferSize = 8;
  expectError(analysis::verifyPlan(*Plan), "holds only");
}

TEST(PlanVerify, DroppedWaitRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  // Demote the first fused send (start+wait in one dispatch) to a bare
  // start: its completion is never awaited. Same fields, no pc shifts.
  int64_t Send = findInst(
      *Plan, [](const Inst &I) { return I.Code == POp::CallSendFused; });
  ASSERT_GE(Send, 0) << "expected a fused send in the lowered plan";
  PlanView::mutableProgram(*Plan)[Send].Code = POp::CallStartSend;
  analysis::VerifyResult Result = analysis::verifyPlan(*Plan);
  ASSERT_FALSE(Result.Errors.empty());
  bool Found = false;
  for (const analysis::PlanDiag &D : Result.Errors)
    Found = Found ||
            D.Message.find("still outstanding") != std::string::npos ||
            D.Message.find("never awaited") != std::string::npos;
  EXPECT_TRUE(Found) << Result.toString();
}

TEST(PlanVerify, CorruptedOpcodeStreamRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  std::string ModelError;
  auto Model = analysis::ProtocolModel::forAccelerator(Accel, ModelError);
  ASSERT_TRUE(succeeded(Model)) << ModelError;
  analysis::VerifyOptions Options;
  Options.Model = &*Model;

  // Rewrite the staged sA opcode literal (0x22) to a word the v3 FSM
  // does not accept: the modeled accelerator sees a bogus opcode.
  int64_t BadConst = findInst(*Plan, [](const Inst &I) {
    return I.Code == POp::ConstInt && I.Imm == 0x22;
  });
  ASSERT_GE(BadConst, 0) << "expected the sA opcode literal";
  PlanView::mutableProgram(*Plan)[BadConst].Imm = 0x77;
  expectError(analysis::verifyPlan(*Plan, Options), "not supported");
}

TEST(PlanVerify, UseBeforeDefRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  int64_t Copy = findInst(
      *Plan, [](const Inst &I) { return I.Code == POp::CallCopyToDma; });
  ASSERT_GE(Copy, 0) << "expected a staging copy in the lowered plan";
  // Slots are SSA: reading the instruction's own (not yet written)
  // end-offset result as the start offset is a definite use-before-def.
  Inst &I = PlanView::mutableProgram(*Plan)[Copy];
  I.B = I.Dst;
  expectError(analysis::verifyPlan(*Plan), "before any definition");
}

TEST(PlanVerify, SlotOutOfRangeRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  int64_t Const =
      findInst(*Plan, [](const Inst &I) { return I.Code == POp::ConstInt; });
  ASSERT_GE(Const, 0);
  PlanView::mutableProgram(*Plan)[Const].Dst =
      static_cast<int32_t>(analysis::PlanView(*Plan).numSlots()) + 7;
  expectError(analysis::verifyPlan(*Plan), "outside the plan's");
}

TEST(PlanVerify, NonPositiveLoopStepRejected) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  std::vector<Inst> &Program = PlanView::mutableProgram(*Plan);
  int64_t Loop =
      findInst(*Plan, [](const Inst &I) { return I.Code == POp::LoopBegin; });
  ASSERT_GE(Loop, 0);
  int32_t StepSlot = Program[Loop].C;
  int64_t StepConst = findInst(*Plan, [&](const Inst &I) {
    return I.Code == POp::ConstInt && I.Dst == StepSlot;
  });
  ASSERT_GE(StepConst, 0) << "expected a constant loop step";
  Program[StepConst].Imm = 0;
  expectError(analysis::verifyPlan(*Plan), "not positive");
}

//===----------------------------------------------------------------------===//
// Verify-each wiring: the optimizer refuses to hand back a corrupt plan
//===----------------------------------------------------------------------===//

TEST(PlanVerify, VerifyEachReportsCorruptInput) {
  parser::AcceleratorDesc Accel;
  auto Plan = compilePlan(Accel);
  ASSERT_TRUE(Plan);
  PlanView::mutableDmaConfigs(*Plan)[0].InputBufferSize = 8;
  opt::PlanOptOptions Options = opt::PlanOptOptions::all();
  Options.VerifyEach = true;
  opt::PlanOptStats Stats = opt::optimizePlan(*Plan, Options);
  ASSERT_FALSE(Stats.VerifyError.empty());
  EXPECT_FALSE(Stats.VerifyFailedPass.empty());
  EXPECT_NE(Stats.VerifyError.find("holds only"), std::string::npos)
      << Stats.VerifyError;
}

} // namespace
