//===- ParserFuzzTest.cpp - Hostile-input robustness for ir/Parser --------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a checked-in corpus of hostile .mlir inputs
/// (tests/corpus/parser: truncations, binary garbage, unterminated
/// tokens, oversized literals, deep region nesting, malformed AXI4MLIR
/// attributes) plus deterministic byte-level mutations of every
/// examples/*.mlir file through parseSourceString. The contract is
/// crash-freedom with clean reporting: every input either parses or
/// fails with a non-empty `<buffer>:<line>:<col>: error:` diagnostic —
/// no aborts, no reads past the buffer (CI runs this under ASan+UBSan).
///
/// AXI4MLIR_FUZZ_SEED / AXI4MLIR_FUZZ_CASES scale the mutation sweep.
///
//===----------------------------------------------------------------------===//

#include "analysis/PlanVerifier.h"
#include "dialects/InitAllDialects.h"
#include "exec/ExecPlan.h"
#include "ir/Operation.h"
#include "ir/Parser.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#ifndef AXI4MLIR_SOURCE_DIR
#define AXI4MLIR_SOURCE_DIR "."
#endif

using namespace axi4mlir;

namespace {

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

std::vector<std::filesystem::path> mlirFilesIn(const std::string &Dir) {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".mlir")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// The invariant under test: parseSourceString either succeeds or fails
/// with a located diagnostic. Anything else (crash, empty error) is a
/// parser bug.
void expectCleanOutcome(const std::string &Source, const std::string &Label,
                        bool Verify) {
  SCOPED_TRACE(Label);
  MLIRContext Context;
  registerAllDialects(Context);
  ParserOptions Options;
  Options.Verify = Verify;
  Options.BufferName = Label;
  std::string Error;
  FailureOr<OwningOpRef> Parsed =
      parseSourceString(Source, &Context, &Error, Options);
  if (failed(Parsed)) {
    EXPECT_FALSE(Error.empty()) << "failure without a diagnostic";
    EXPECT_NE(Error.find("error"), std::string::npos)
        << "diagnostic missing the error marker: " << Error;
    return;
  }
  // Accepted inputs must survive a print round (the printer walks the
  // whole tree, catching dangling references the parser let through).
  std::ostringstream OS;
  Parsed->get()->print(OS);
  EXPECT_FALSE(OS.str().empty());
  // And they must survive the static analysis front door: a verified
  // function that compiles to an ExecPlan must be accepted by the plan
  // verifier — the parser/verifier pair must never hand the executor a
  // plan the analysis layer would reject (and neither compile nor verify
  // may crash on fuzzed-but-accepted IR).
  if (Verify && Parsed->get()->getName() == func::FuncOp::OpName) {
    std::string CompileError;
    auto Plan =
        exec::ExecPlan::compile(func::FuncOp(Parsed->get()), CompileError);
    if (Plan) {
      analysis::VerifyResult Verified = analysis::verifyPlan(*Plan);
      EXPECT_TRUE(Verified.Errors.empty()) << Verified.toString();
    }
  }
}

TEST(ParserFuzz, CheckedInCorpus) {
  std::string Dir = std::string(AXI4MLIR_SOURCE_DIR) + "/tests/corpus/parser";
  std::vector<std::filesystem::path> Files = mlirFilesIn(Dir);
  ASSERT_FALSE(Files.empty()) << "corpus missing at " << Dir;
  for (const auto &Path : Files) {
    std::string Source = readFile(Path);
    expectCleanOutcome(Source, Path.filename().string() + "/verify", true);
    expectCleanOutcome(Source, Path.filename().string() + "/noverify",
                       false);
  }
}

/// Deterministic byte-level mutations of the real example files: single
/// byte substitutions, truncations, span deletions/duplications, and
/// token-boundary splices. Seeds derive from the base seed and the file
/// index, so a failure reproduces from the printed trace alone.
TEST(ParserFuzz, MutatedExamples) {
  uint32_t Seed = 7;
  int MutantsPerFile = 40;
  if (const char *Env = std::getenv("AXI4MLIR_FUZZ_SEED"))
    Seed = static_cast<uint32_t>(std::strtoul(Env, nullptr, 10));
  if (const char *Env = std::getenv("AXI4MLIR_FUZZ_CASES"))
    MutantsPerFile = static_cast<int>(std::strtol(Env, nullptr, 10));

  std::string Dir = std::string(AXI4MLIR_SOURCE_DIR) + "/examples";
  std::vector<std::filesystem::path> Files = mlirFilesIn(Dir);
  ASSERT_FALSE(Files.empty()) << "examples missing at " << Dir;

  const std::string Splices[] = {"%", "^", "\"", "({", "})", "memref<",
                                 "opcode_map<", ":", "->", "\x00\x01"};
  for (size_t FileIdx = 0; FileIdx < Files.size(); ++FileIdx) {
    std::string Original = readFile(Files[FileIdx]);
    ASSERT_FALSE(Original.empty());
    std::mt19937 Rng(Seed + static_cast<uint32_t>(FileIdx) * 7919);
    auto pick = [&](size_t Bound) {
      return std::uniform_int_distribution<size_t>(0, Bound - 1)(Rng);
    };
    for (int M = 0; M < MutantsPerFile; ++M) {
      std::string Mutant = Original;
      switch (pick(5)) {
      case 0: // substitute one byte
        Mutant[pick(Mutant.size())] =
            static_cast<char>(pick(256));
        break;
      case 1: // truncate
        Mutant.resize(pick(Mutant.size()));
        break;
      case 2: { // delete a span
        size_t Begin = pick(Mutant.size());
        size_t Len = 1 + pick(64);
        Mutant.erase(Begin, Len);
        break;
      }
      case 3: { // duplicate a span
        size_t Begin = pick(Mutant.size());
        size_t Len = std::min<size_t>(1 + pick(64), Mutant.size() - Begin);
        Mutant.insert(Begin, Mutant.substr(Begin, Len));
        break;
      }
      default: { // splice a token fragment
        const std::string &Token =
            Splices[pick(sizeof(Splices) / sizeof(Splices[0]))];
        Mutant.insert(pick(Mutant.size()), Token);
        break;
      }
      }
      expectCleanOutcome(Mutant,
                         Files[FileIdx].filename().string() + "/mutant" +
                             std::to_string(M),
                         /*Verify=*/true);
    }
  }
}

} // namespace
