//===- TilingPlanTest.cpp - Tiling-plan layer unit tests ------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the TilingPlan subsystem: per-dimension plan construction
/// (full tiles, pad/peel remainder math), the attribute round trip, and
/// the cost-driven accelerator selection of planTiling — including
/// deterministic tie-breaking across identical engines.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Pipeline.h"
#include "parser/ConfigParser.h"
#include "transforms/Passes.h"
#include "transforms/TilingPlan.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::transforms;
using V = sim::MatMulAccelerator::Version;

namespace {

parser::AcceleratorDesc makeMatMulAccel(int64_t Size,
                                        const std::string &Name = "") {
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, Size, "Ns"));
  if (!Name.empty())
    Accel.Name = Name;
  return Accel;
}

/// A matmul linalg.generic fixture the planner can consume.
struct GenericFixture {
  MLIRContext Context;
  OpBuilder Builder{&Context};
  func::FuncOp Func;
  OwningOpRef Owner;
  linalg::GenericOp Generic;

  GenericFixture(int64_t M, int64_t N, int64_t K) {
    registerAllDialects(Context);
    Func = exec::buildMatMulFunc(Builder, M, N, K, sim::ElemKind::I32);
    Owner = OwningOpRef(Func.getOperation());
    std::string Error;
    EXPECT_TRUE(succeeded(convertNamedToGeneric(Func, Error))) << Error;
    Func.getOperation()->walk([&](Operation *Op) {
      if (Op->getName() == linalg::GenericOp::OpName)
        Generic = linalg::GenericOp(Op);
    });
  }
};

//===----------------------------------------------------------------------===//
// Plan construction
//===----------------------------------------------------------------------===//

TEST(TilingPlan, ConstructionRemainderMath) {
  // The acceptance shape: 100x36x52 on a 16-tile engine.
  std::string Error;
  auto Plan = planForAccelerator({100, 36, 52}, makeMatMulAccel(16),
                                 RemainderMode::Pad, Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_TRUE(Plan->hasPartialTiles());
  EXPECT_EQ(Plan->tiles(), (std::vector<int64_t>{16, 16, 16}));
  EXPECT_EQ(Plan->remainders(), (std::vector<int64_t>{4, 4, 4}));
  ASSERT_EQ(Plan->Dims.size(), 3u);
  EXPECT_EQ(Plan->Dims[0].FullTiles, 6);
  EXPECT_EQ(Plan->Dims[1].FullTiles, 2);
  EXPECT_EQ(Plan->Dims[2].FullTiles, 3);
  // Peel main region vs pad rounded-up region.
  EXPECT_EQ(Plan->Dims[0].mainExtent(), 96);
  EXPECT_EQ(Plan->Dims[0].paddedExtent(), 112);
  EXPECT_EQ(Plan->Dims[1].mainExtent(), 32);
  EXPECT_EQ(Plan->Dims[1].paddedExtent(), 48);
  EXPECT_EQ(Plan->Dims[2].mainExtent(), 48);
  EXPECT_EQ(Plan->Dims[2].paddedExtent(), 64);
}

TEST(TilingPlan, DivisibleProblemHasNoPartialTiles) {
  std::string Error;
  auto Plan = planForAccelerator({64, 64, 64}, makeMatMulAccel(16),
                                 RemainderMode::Pad, Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_FALSE(Plan->hasPartialTiles());
  EXPECT_EQ(Plan->Dims[0].FullTiles, 4);
  EXPECT_EQ(Plan->Dims[0].mainExtent(), 64);
  EXPECT_EQ(Plan->Dims[0].paddedExtent(), 64);
}

TEST(TilingPlan, SmallProblemBecomesOnePaddedPartialTile) {
  // A fixed-size engine still expects full-size bursts, so an extent
  // below the tile pads the whole extent up (FullTiles = 0).
  std::string Error;
  auto Plan = planForAccelerator({4, 4, 4}, makeMatMulAccel(16),
                                 RemainderMode::Pad, Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_EQ(Plan->tiles(), (std::vector<int64_t>{16, 16, 16}));
  EXPECT_EQ(Plan->remainders(), (std::vector<int64_t>{4, 4, 4}));
  EXPECT_EQ(Plan->Dims[0].FullTiles, 0);
  EXPECT_TRUE(Plan->hasPartialTiles());
  // Reject mode keeps the legacy clamp (small problems stay legal).
  auto Legacy = planForAccelerator({4, 4, 4}, makeMatMulAccel(16),
                                   RemainderMode::Reject, Error);
  ASSERT_TRUE(succeeded(Legacy)) << Error;
  EXPECT_EQ(Legacy->tiles(), (std::vector<int64_t>{4, 4, 4}));
  EXPECT_FALSE(Legacy->hasPartialTiles());
}

TEST(TilingPlan, RejectModeListsEveryOffendingDim) {
  std::string Error;
  auto Plan = planForAccelerator({30, 32, 29}, makeMatMulAccel(8),
                                 RemainderMode::Reject, Error);
  EXPECT_TRUE(failed(Plan));
  EXPECT_NE(Error.find("divisible"), std::string::npos) << Error;
  EXPECT_NE(Error.find("dim 0"), std::string::npos) << Error;
  EXPECT_NE(Error.find("dim 2"), std::string::npos) << Error;
  EXPECT_EQ(Error.find("dim 1"), std::string::npos) << Error;
}

TEST(TilingPlan, RankMismatchIsIllegal) {
  std::string Error;
  auto Plan = planForAccelerator({8, 8}, makeMatMulAccel(8),
                                 RemainderMode::Pad, Error);
  EXPECT_TRUE(failed(Plan));
  EXPECT_NE(Error.find("rank"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Attribute round trip
//===----------------------------------------------------------------------===//

TEST(TilingPlan, AttributeRoundTrip) {
  GenericFixture F(100, 36, 52);
  std::string Error;
  auto Plan = planForAccelerator({100, 36, 52}, makeMatMulAccel(16),
                                 RemainderMode::Peel, Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  Plan->attachTo(F.Generic.getOperation());

  auto Restored = TilingPlan::fromOp(F.Generic.getOperation(), Error);
  ASSERT_TRUE(succeeded(Restored)) << Error;
  EXPECT_EQ(Restored->Mode, RemainderMode::Peel);
  EXPECT_EQ(Restored->tiles(), Plan->tiles());
  EXPECT_EQ(Restored->remainders(), Plan->remainders());
  for (unsigned D = 0; D < 3; ++D) {
    EXPECT_EQ(Restored->Dims[D].Extent, Plan->Dims[D].Extent);
    EXPECT_EQ(Restored->Dims[D].FullTiles, Plan->Dims[D].FullTiles);
  }
}

//===----------------------------------------------------------------------===//
// Cost-driven accelerator selection
//===----------------------------------------------------------------------===//

TEST(TilingPlan, SelectsSmallEngineForSmallProblems) {
  // A 4x4x4 problem fits the small engine exactly; the 16-tile engine
  // would pad 64x the compute and ship 16x the words.
  GenericFixture F(4, 4, 4);
  std::vector<parser::AcceleratorDesc> Accels = {makeMatMulAccel(4),
                                                 makeMatMulAccel(16)};
  std::string Error;
  auto Plan = planTiling(F.Generic, Accels, PlanningOptions(), Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_EQ(Plan->AcceleratorName, "matmul_v3_4");
  EXPECT_EQ(Plan->AcceleratorIndex, 0u);
}

TEST(TilingPlan, SelectsLargeEngineForLargeProblems) {
  // At 64^3 the per-tile DMA overhead of the 4-tile engine (4096 steps vs
  // 64) dominates; the large engine wins despite identical data volume.
  GenericFixture F(64, 64, 64);
  std::vector<parser::AcceleratorDesc> Accels = {makeMatMulAccel(4),
                                                 makeMatMulAccel(16)};
  std::string Error;
  auto Plan = planTiling(F.Generic, Accels, PlanningOptions(), Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_EQ(Plan->AcceleratorName, "matmul_v3_16");
  EXPECT_EQ(Plan->AcceleratorIndex, 1u);
}

TEST(TilingPlan, SelectionOrderIndependence) {
  // The same engine wins regardless of its position in the config array.
  GenericFixture F(100, 36, 52);
  std::vector<parser::AcceleratorDesc> Forward = {makeMatMulAccel(4),
                                                  makeMatMulAccel(16)};
  std::vector<parser::AcceleratorDesc> Backward = {makeMatMulAccel(16),
                                                   makeMatMulAccel(4)};
  std::string Error;
  auto PlanForward = planTiling(F.Generic, Forward, PlanningOptions(), Error);
  auto PlanBackward =
      planTiling(F.Generic, Backward, PlanningOptions(), Error);
  ASSERT_TRUE(succeeded(PlanForward)) << Error;
  ASSERT_TRUE(succeeded(PlanBackward)) << Error;
  EXPECT_EQ(PlanForward->AcceleratorName, PlanBackward->AcceleratorName);
  EXPECT_DOUBLE_EQ(PlanForward->EstimatedCostMs,
                   PlanBackward->EstimatedCostMs);
}

TEST(TilingPlan, TiesBreakTowardsTheEarlierEntry) {
  // Two identical engines: deterministic selection of the first.
  GenericFixture F(32, 32, 32);
  std::vector<parser::AcceleratorDesc> Accels = {
      makeMatMulAccel(8, "first_engine"), makeMatMulAccel(8, "twin_engine")};
  std::string Error;
  auto Plan = planTiling(F.Generic, Accels, PlanningOptions(), Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_EQ(Plan->AcceleratorName, "first_engine");
  EXPECT_EQ(Plan->AcceleratorIndex, 0u);
}

TEST(TilingPlan, RejectModeStillSelectsWhenOneEngineDivides) {
  // 24^3: divisible by 8, not by 16. In Reject mode only the 8-tile
  // engine is legal, so it must be selected even if scored worse.
  GenericFixture F(24, 24, 24);
  std::vector<parser::AcceleratorDesc> Accels = {makeMatMulAccel(16),
                                                 makeMatMulAccel(8)};
  PlanningOptions Options;
  Options.Mode = RemainderMode::Reject;
  std::string Error;
  auto Plan = planTiling(F.Generic, Accels, Options, Error);
  ASSERT_TRUE(succeeded(Plan)) << Error;
  EXPECT_EQ(Plan->AcceleratorName, "matmul_v3_8");
  EXPECT_EQ(Plan->AcceleratorIndex, 1u);
}

TEST(TilingPlan, NoLegalCandidateAggregatesReasons) {
  GenericFixture F(30, 30, 30);
  std::vector<parser::AcceleratorDesc> Accels = {
      makeMatMulAccel(8, "engine_a"), makeMatMulAccel(16, "engine_b")};
  PlanningOptions Options;
  Options.Mode = RemainderMode::Reject;
  std::string Error;
  auto Plan = planTiling(F.Generic, Accels, Options, Error);
  EXPECT_TRUE(failed(Plan));
  EXPECT_NE(Error.find("engine_a"), std::string::npos) << Error;
  EXPECT_NE(Error.find("engine_b"), std::string::npos) << Error;
}

TEST(TilingPlan, CostModelTradesPadAgainstPeel) {
  std::string Error;
  parser::AcceleratorDesc Accel = makeMatMulAccel(16);
  std::vector<AffineMap> Maps = linalg::getMatmulIndexingMaps();
  sim::SoCParams Params;
  auto costOf = [&](const std::vector<int64_t> &Ranges, RemainderMode Mode) {
    auto Plan = planForAccelerator(Ranges, Accel, Mode, Error);
    EXPECT_TRUE(succeeded(Plan)) << Error;
    return estimatePlanCostMs(*Plan, Accel, Maps, Params);
  };
  // Nearly-full partial tiles (31 % 16 = 15): peeling pushes a huge
  // remainder volume onto the host, padding barely adds fabric work.
  EXPECT_GT(costOf({31, 31, 31}, RemainderMode::Peel),
            costOf({31, 31, 31}, RemainderMode::Pad));
  // Thin fringe (17 % 16 = 1): the host epilogue is a sliver, while
  // padding doubles the tile steps in every dimension.
  EXPECT_LT(costOf({17, 17, 17}, RemainderMode::Peel),
            costOf({17, 17, 17}, RemainderMode::Pad));
}

//===----------------------------------------------------------------------===//
// End-to-end selection through the parsed multi-accelerator config
//===----------------------------------------------------------------------===//

TEST(TilingPlan, MultiAcceleratorConfigSelectsPerShape) {
  auto Config = parser::parseSystemConfigFile(
      std::string(AXI4MLIR_SOURCE_DIR) + "/configs/matmul_multi.json");
  ASSERT_TRUE(succeeded(Config));
  ASSERT_EQ(Config->Accelerators.size(), 2u);

  auto selectedFor = [&](int64_t M, int64_t N, int64_t K) {
    GenericFixture F(M, N, K);
    std::string Error;
    auto Plan =
        planTiling(F.Generic, Config->Accelerators, PlanningOptions(), Error);
    EXPECT_TRUE(succeeded(Plan)) << Error;
    return succeeded(Plan) ? Plan->AcceleratorName : std::string();
  };
  EXPECT_EQ(selectedFor(4, 4, 4), "matmul_v3_4");
  // 8^3 pads into a single 16-tile step: one DMA round trip beats the
  // eight steps the small engine would need.
  EXPECT_EQ(selectedFor(8, 8, 8), "matmul_v3_16");
  EXPECT_EQ(selectedFor(64, 64, 64), "matmul_v3_16");
  EXPECT_EQ(selectedFor(100, 36, 52), "matmul_v3_16");
}

} // namespace
