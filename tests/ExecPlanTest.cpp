//===- ExecPlanTest.cpp - Compiled plan vs. legacy walker equivalence -----===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves the compile-once/execute-many ExecPlan is indistinguishable from
/// the legacy tree-walking interpreter on all three abstraction levels
/// (linalg.generic, accel ops, axirt runtime calls): identical output
/// buffers AND bit-identical HostPerfModel counters. The plan is the
/// measurement engine for every figure bench, so this equivalence is what
/// licenses using it by default.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "exec/opt/PlanOpt.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;
using V = sim::MatMulAccelerator::Version;

namespace {

/// Every counter of the perf report, compared exactly. The doubles are
/// sums accumulated in the same order on both sides, so even they must
/// match bit for bit.
void expectIdenticalReports(const sim::PerfReport &Walker,
                            const sim::PerfReport &Plan) {
  EXPECT_EQ(Walker.Instructions, Plan.Instructions);
  EXPECT_EQ(Walker.BranchInstructions, Plan.BranchInstructions);
  EXPECT_EQ(Walker.Loads, Plan.Loads);
  EXPECT_EQ(Walker.Stores, Plan.Stores);
  EXPECT_EQ(Walker.L1DAccesses, Plan.L1DAccesses);
  EXPECT_EQ(Walker.CacheReferences, Plan.CacheReferences);
  EXPECT_EQ(Walker.CacheMisses, Plan.CacheMisses);
  EXPECT_EQ(Walker.HostCycles, Plan.HostCycles);
  EXPECT_EQ(Walker.FabricCycles, Plan.FabricCycles);
  EXPECT_EQ(Walker.DmaTransfers, Plan.DmaTransfers);
  EXPECT_EQ(Walker.DmaBytesMoved, Plan.DmaBytesMoved);
  EXPECT_EQ(Walker.TaskClockMs, Plan.TaskClockMs);
}

/// How far to lower the matmul before execution.
enum class Level { Generic, Accel, Axirt };

/// Lowers one matmul func to \p L. Returns false (with ADD_FAILURE) on a
/// pipeline error.
bool lowerMatMul(func::FuncOp Func, Level L,
                 const parser::AcceleratorDesc &Accel) {
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    ADD_FAILURE() << Error;
    return false;
  }
  if (L == Level::Generic)
    return true;
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  if (failed(transforms::matchAndAnnotate(Func, Accel, Error)) ||
      failed(transforms::lowerToAccel(Func, Options, Error))) {
    ADD_FAILURE() << Error;
    return false;
  }
  if (L == Level::Axirt &&
      failed(transforms::convertAccelToRuntime(Func, Error))) {
    ADD_FAILURE() << Error;
    return false;
  }
  return true;
}

/// The full equivalence check for one (level, shape) combination.
///
/// Both executors run against the SAME SoC and the SAME argument buffers
/// (refilled from fixed seeds, counters and cache reset between runs):
/// the cache simulator is keyed on real host addresses, so distinct
/// allocations would legitimately produce different line-straddle counts.
/// A warm-up run first brings the allocator to steady state so staging
/// buffers allocated mid-execution (pad remainders) recycle identical
/// addresses for both executors.
void checkMatMulEquivalence(Level L, int64_t M, int64_t N, int64_t K,
                            int64_t AccelSize,
                            sim::ElemKind Kind = sim::ElemKind::I32) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, M, N, K, Kind);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel = parseSingleAccelerator(
      makeMatMulConfigJson(V::V3, AccelSize, "Ns", 0, 0, 0,
                           Kind == sim::ElemKind::F32 ? "float32" : "int32"));
  if (!lowerMatMul(Func, L, Accel))
    return;

  auto Soc = L == Level::Generic
                 ? sim::makeCpuOnlySoC()
                 : sim::makeMatMulSoC(V::V3, AccelSize, Kind);
  std::unique_ptr<runtime::DmaRuntime> Runtime;
  if (L != Level::Generic)
    Runtime = std::make_unique<runtime::DmaRuntime>(*Soc);

  MemRefDesc A = MemRefDesc::alloc({M, K}, Kind);
  MemRefDesc B = MemRefDesc::alloc({K, N}, Kind);
  MemRefDesc C = MemRefDesc::alloc({M, N}, Kind);

  auto runOnce = [&](bool UseCompiledPlan) -> sim::PerfReport {
    fillRandom(A, 21);
    fillRandom(B, 22);
    fillRandom(C, 23);
    Soc->resetCounters();
    Interpreter Interp(*Soc, Runtime.get(), UseCompiledPlan);
    std::string Error;
    EXPECT_TRUE(succeeded(Interp.run(Func, {A, B, C}, Error))) << Error;
    return Soc->report();
  };

  runOnce(/*UseCompiledPlan=*/false); // allocator warm-up
  sim::PerfReport Walker = runOnce(/*UseCompiledPlan=*/false);
  MemRefDesc WalkerC = cloneMemRef(C);
  sim::PerfReport Plan = runOnce(/*UseCompiledPlan=*/true);
  EXPECT_TRUE(memrefEquals(WalkerC, C));
  expectIdenticalReports(Walker, Plan);
}

//===----------------------------------------------------------------------===//
// The three abstraction levels (acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(ExecPlan, GenericLevelEquivalence) {
  checkMatMulEquivalence(Level::Generic, 12, 20, 16, 8);
}

TEST(ExecPlan, GenericLevelEquivalenceF32) {
  checkMatMulEquivalence(Level::Generic, 8, 10, 12, 8, sim::ElemKind::F32);
}

TEST(ExecPlan, AccelLevelEquivalence) {
  checkMatMulEquivalence(Level::Accel, 16, 16, 16, 8);
}

TEST(ExecPlan, AxirtLevelEquivalence) {
  checkMatMulEquivalence(Level::Axirt, 32, 16, 24, 8);
}

/// Non-divisible extents force the pad remainder path: alloc + staged
/// memref.copy + masked accumulate through the shared strided-copy engine
/// in both executors.
TEST(ExecPlan, AxirtPartialTileEquivalence) {
  checkMatMulEquivalence(Level::Axirt, 10, 12, 9, 8);
}

/// Strided-convolution generics exercise the non-projected affine-map
/// fallback of the compiled plan (d2*s + d5 indexing).
TEST(ExecPlan, GenericConvEquivalence) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      buildConvFunc(Builder, 1, 3, 9, 2, 3, 2, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
      << Error;

  auto Soc = sim::makeCpuOnlySoC();
  MemRefDesc I = MemRefDesc::alloc({1, 3, 9, 9});
  MemRefDesc W = MemRefDesc::alloc({2, 3, 3, 3});
  MemRefDesc O = MemRefDesc::alloc({1, 2, 4, 4});
  auto runOnce = [&](bool UseCompiledPlan) -> sim::PerfReport {
    fillRandom(I, 31);
    fillRandom(W, 32);
    fillRandom(O, 33);
    Soc->resetCounters();
    Interpreter Interp(*Soc, nullptr, UseCompiledPlan);
    EXPECT_TRUE(succeeded(Interp.run(Func, {I, W, O}, Error))) << Error;
    return Soc->report();
  };
  sim::PerfReport Walker = runOnce(false);
  MemRefDesc WalkerO = cloneMemRef(O);
  sim::PerfReport Plan = runOnce(true);
  EXPECT_TRUE(memrefEquals(WalkerO, O));
  expectIdenticalReports(Walker, Plan);
}

//===----------------------------------------------------------------------===//
// Plan mechanics
//===----------------------------------------------------------------------===//

TEST(ExecPlan, CompilesToFlatProgram) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 8, 8, 8, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)));
  auto Plan = ExecPlan::compile(Func, Error);
  ASSERT_NE(Plan, nullptr) << Error;
  EXPECT_EQ(Plan->numArguments(), 3u);
  EXPECT_GT(Plan->numInstructions(), 0u);
  EXPECT_GE(Plan->numSlots(), 3u);
}

TEST(ExecPlan, ReusedAcrossRunsWithIdenticalCounters) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 6, 6, 6, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)));
  auto Plan = ExecPlan::compile(Func, Error);
  ASSERT_NE(Plan, nullptr) << Error;

  // Two executions of one plan on fresh systems: independent, identical.
  sim::PerfReport Reports[2];
  for (int Run = 0; Run < 2; ++Run) {
    auto Soc = sim::makeCpuOnlySoC();
    MemRefDesc A = MemRefDesc::alloc({6, 6});
    MemRefDesc B = MemRefDesc::alloc({6, 6});
    MemRefDesc C = MemRefDesc::alloc({6, 6});
    fillRandom(A, 1);
    fillRandom(B, 2);
    fillRandom(C, 3);
    MemRefDesc Expected = cloneMemRef(C);
    referenceMatMul(A, B, Expected);
    ASSERT_TRUE(succeeded(Plan->run(*Soc, nullptr, {A, B, C}, Error)))
        << Error;
    EXPECT_TRUE(memrefEquals(Expected, C));
    Reports[Run] = Soc->report();
  }
  expectIdenticalReports(Reports[0], Reports[1]);
}

/// Send/wait fusion: the axirt lowering emits every start_send/start_recv
/// immediately followed by its wait, so the fused plan must collapse all
/// of them — and stay observably identical (same output buffer, bit-equal
/// perf counters) to the unfused plan.
TEST(ExecPlan, FusesSendWaitPairs) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 16, 16, 16, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel =
      parseSingleAccelerator(makeMatMulConfigJson(V::V3, 8, "Ns"));
  ASSERT_TRUE(lowerMatMul(Func, Level::Axirt, Accel));

  std::string Error;
  auto Unfused = ExecPlan::compile(Func, Error, /*FuseTransferPairs=*/false);
  ASSERT_NE(Unfused, nullptr) << Error;
  auto Fused = ExecPlan::compile(Func, Error);
  ASSERT_NE(Fused, nullptr) << Error;

  EXPECT_EQ(Unfused->numFusedSends(), 0u);
  EXPECT_EQ(Unfused->numFusedRecvs(), 0u);
  EXPECT_GT(Fused->numFusedSends(), 0u);
  EXPECT_GT(Fused->numFusedRecvs(), 0u);
  // Each fused pair removes exactly one instruction.
  EXPECT_EQ(Fused->numInstructions() + Fused->numFusedSends() +
                Fused->numFusedRecvs(),
            Unfused->numInstructions());

  auto Soc = sim::makeMatMulSoC(V::V3, 8);
  runtime::DmaRuntime Runtime(*Soc);
  MemRefDesc A = MemRefDesc::alloc({16, 16});
  MemRefDesc B = MemRefDesc::alloc({16, 16});
  MemRefDesc C = MemRefDesc::alloc({16, 16});
  auto runOnce = [&](const ExecPlan &Plan) -> sim::PerfReport {
    fillRandom(A, 41);
    fillRandom(B, 42);
    fillRandom(C, 43);
    Soc->resetCounters();
    std::string RunError;
    EXPECT_TRUE(succeeded(Plan.run(*Soc, &Runtime, {A, B, C}, RunError)))
        << RunError;
    return Soc->report();
  };
  runOnce(*Unfused); // allocator warm-up (see checkMatMulEquivalence)
  sim::PerfReport UnfusedReport = runOnce(*Unfused);
  MemRefDesc UnfusedC = cloneMemRef(C);
  sim::PerfReport FusedReport = runOnce(*Fused);
  EXPECT_TRUE(memrefEquals(UnfusedC, C));
  expectIdenticalReports(UnfusedReport, FusedReport);
}

TEST(ExecPlan, DiagnosticsMatchWalker) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Builder.create("mystery.op");
  func::ReturnOp::create(Builder);

  std::string PlanError;
  EXPECT_EQ(ExecPlan::compile(Func, PlanError), nullptr);
  EXPECT_NE(PlanError.find("mystery.op"), std::string::npos);

  auto Soc = sim::makeCpuOnlySoC();
  std::string WalkerError;
  Interpreter Walker(*Soc, nullptr, /*UseCompiledPlan=*/false);
  EXPECT_TRUE(failed(Walker.run(Func, {}, WalkerError)));
  EXPECT_EQ(PlanError, WalkerError);
}

//===----------------------------------------------------------------------===//
// Golden disassembly: ExecPlan::print pinned before/after each optimizer
// pass (src/exec/opt) on one matmul and one conv driver.
//===----------------------------------------------------------------------===//

/// Asserts that \p Needles occur in \p Haystack in the given order.
void expectInOrder(const std::string &Haystack,
                   const std::vector<std::string> &Needles) {
  size_t Position = 0;
  for (const std::string &Needle : Needles) {
    size_t Found = Haystack.find(Needle, Position);
    ASSERT_NE(Found, std::string::npos)
        << "missing (in order): '" << Needle << "'\nafter offset "
        << Position << " in:\n"
        << Haystack;
    Position = Found + Needle.size();
  }
}

/// Lowers one small driver end to end (axirt level, no CPU tiling) and
/// compiles the plan. Matmul: 8x8x8 on the v3/4 As-flow accelerator.
/// Conv: 5x5x2 -> 3x3x2 on the conv2d_os engine.
std::unique_ptr<ExecPlan> compileGoldenDriver(MLIRContext &Context,
                                              OwningOpRef &Owner,
                                              bool Conv) {
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      Conv ? buildConvFunc(Builder, 1, 2, 5, 2, 3, 1, sim::ElemKind::I32)
           : buildMatMulFunc(Builder, 8, 8, 8, sim::ElemKind::I32);
  Owner = OwningOpRef(Func.getOperation());
  parser::AcceleratorDesc Accel = parseSingleAccelerator(
      Conv ? makeConvConfigJson() : makeMatMulConfigJson(V::V3, 4, "As"));
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  transforms::PassManager Pipeline = transforms::buildPipeline(
      std::vector<parser::AcceleratorDesc>{Accel}, Options);
  std::string Error;
  if (failed(Pipeline.run(Func, Error))) {
    ADD_FAILURE() << Error;
    return nullptr;
  }
  auto Plan = ExecPlan::compile(Func, Error);
  EXPECT_NE(Plan, nullptr) << Error;
  return Plan;
}

opt::PlanOptOptions onlyPass(const std::string &Spec) {
  opt::PlanOptOptions Options;
  std::string Error;
  EXPECT_TRUE(succeeded(opt::parsePlanOptSpec(Spec, Options, Error)))
      << Error;
  return Options;
}

TEST(PlanDisassembly, MatMulUnoptimized) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/false);
  ASSERT_NE(Plan, nullptr);
  expectInOrder(Plan->printToString(),
                {"plan @matmul_call args=3 slots=35 insts=41",
                 "dma_init #0",
                 "%5 = copy_literal_to_dma %4 @ %3",
                 "send end=%5 off=%3",
                 "loop %9 = [%6, %7) step %8 -> @41",
                 "loop %13 = [%10, %11) step %12 -> @40",
                 "%18 = const.i 34",
                 "%19 = copy_literal_to_dma %18 @ %17",
                 "%20 = subview %0[%9, %13] sizes=[4, 4]",
                 "%21 = copy_to_dma %20 @ %19",
                 "send end=%21 off=%17",
                 "loop %22 = [%14, %15) step %16 -> @39",
                 "%24 = const.i 35",
                 "%26 = subview %1[%13, %22] sizes=[4, 4]",
                 "%28 = const.i 240",
                 "%30 = const.i 36",
                 "send end=%31 off=%23",
                 "%32 = subview %2[%9, %22] sizes=[4, 4]",
                 "recv len=%33 off=%34",
                 "copy_from_dma %32 @ %34 accumulate",
                 "end -> @23",
                 "end -> @13",
                 "end -> @9"});
}

/// fold rewrites operand references to canonical constants without
/// moving or removing a single instruction: loop bounds, staging
/// offsets, and recv offsets all read the earliest dominating constant.
TEST(PlanDisassembly, MatMulAfterFold) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/false);
  ASSERT_NE(Plan, nullptr);
  opt::PlanOptStats Stats = opt::optimizePlan(*Plan, onlyPass("fold"));
  EXPECT_EQ(Stats.FoldedOperands, 5u);
  EXPECT_FALSE(Stats.changedCounters());
  EXPECT_EQ(Stats.RemovedUnchargedInsts, 0u);
  expectInOrder(Plan->printToString(),
                {"plan @matmul_call args=3 slots=35 insts=41",
                 "loop %9 = [%3, %7) step %8 -> @41",
                 "%19 = copy_literal_to_dma %18 @ %14",
                 "send end=%21 off=%14",
                 "recv len=%33 off=%23",
                 "copy_from_dma %32 @ %23 accumulate"});
}

/// Every constant in this driver is read, so dce finds nothing: the
/// disassembly must be byte-identical to the unoptimized plan. Same for
/// coalesce — the As-flow v3 driver has no fused-send adjacency or
/// single-trip loops.
TEST(PlanDisassembly, MatMulDceAndCoalesceAreNoOps) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/false);
  ASSERT_NE(Plan, nullptr);
  std::string Before = Plan->printToString();

  opt::PlanOptStats Stats = opt::optimizePlan(*Plan, onlyPass("dce"));
  EXPECT_EQ(Stats.total(), 0u);
  EXPECT_EQ(Plan->printToString(), Before);

  Stats = opt::optimizePlan(*Plan, onlyPass("coalesce"));
  EXPECT_EQ(Stats.total(), 0u);
  EXPECT_EQ(Plan->printToString(), Before);
}

/// licm drains the loop-invariant constants into the preheader and
/// hoists the sB-opcode staging literal (charged) out of the inner loop;
/// the IV-dependent subviews and copies must stay put.
TEST(PlanDisassembly, MatMulAfterLicm) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/false);
  ASSERT_NE(Plan, nullptr);
  opt::PlanOptStats Stats = opt::optimizePlan(*Plan, onlyPass("licm"));
  EXPECT_EQ(Stats.HoistedUnchargedInsts, 31u);
  EXPECT_EQ(Stats.HoistedChargedInsts, 1u);
  EXPECT_TRUE(Stats.changedCounters());
  expectInOrder(Plan->printToString(),
                {"plan @matmul_call args=3 slots=35 insts=41",
                 // Preheader: all loop constants, deepest last.
                 "%18 = const.i 34", "%24 = const.i 35",
                 "%28 = const.i 240", "%30 = const.i 36",
                 "%33 = const.i 16",
                 // Then the loop nest with only the real work inside.
                 "loop %9 = [%6, %7) step %8",
                 "loop %13 = [%10, %11) step %12",
                 "%19 = copy_literal_to_dma %18 @ %17",
                 "%20 = subview %0[%9, %13] sizes=[4, 4]",
                 "send end=%21 off=%17",
                 // The hoisted charged staging literal sits between the
                 // middle loop header and the inner loop.
                 "%25 = copy_literal_to_dma %24 @ %23",
                 "loop %22 = [%14, %15) step %16",
                 "%26 = subview %1[%13, %22] sizes=[4, 4]",
                 "send end=%31 off=%23",
                 "copy_from_dma %32 @ %34 accumulate"});
}

/// The full pipeline composes fold + licm, then dce deletes the
/// constants made dead by folding: 41 -> 31 instructions.
TEST(PlanDisassembly, MatMulAfterFullPipeline) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/false);
  ASSERT_NE(Plan, nullptr);
  opt::PlanOptStats Stats =
      opt::optimizePlan(*Plan, opt::PlanOptOptions::all());
  EXPECT_EQ(Stats.FoldedOperands, 17u);
  EXPECT_EQ(Stats.RemovedUnchargedInsts, 10u);
  EXPECT_EQ(Stats.HoistedUnchargedInsts, 31u);
  EXPECT_EQ(Stats.HoistedChargedInsts, 1u);
  expectInOrder(Plan->printToString(),
                {"plan @matmul_call args=3 slots=35 insts=31",
                 "send end=%5 off=%3",
                 "%33 = const.i 16",
                 "loop %9 = [%3, %7) step %8 -> @31",
                 "loop %13 = [%3, %7) step %8 -> @30",
                 "%19 = copy_literal_to_dma %18 @ %3",
                 "send end=%21 off=%3",
                 "%25 = copy_literal_to_dma %24 @ %3",
                 "loop %22 = [%3, %7) step %8 -> @29",
                 "send end=%31 off=%3",
                 "recv len=%33 off=%3",
                 "copy_from_dma %32 @ %3 accumulate"});
}

TEST(PlanDisassembly, ConvUnoptimized) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/true);
  ASSERT_NE(Plan, nullptr);
  expectInOrder(Plan->printToString(),
                {"plan @conv_call args=3 slots=48 insts=55",
                 "dma_init #0",
                 // cfg group: four chained literals, one send.
                 "%5 = copy_literal_to_dma %4 @ %3",
                 "%7 = copy_literal_to_dma %6 @ %5",
                 "%9 = copy_literal_to_dma %8 @ %7",
                 "%11 = copy_literal_to_dma %10 @ %9",
                 "send end=%11 off=%3",
                 // Output-channel loop: weights sent once per filter.
                 "loop %15 = [%12, %13) step %14 -> @55",
                 "%25 = subview %1[%15, %22, %23, %24] sizes=[1, 2, 3, 3]",
                 "send end=%26 off=%19",
                 // Spatial loops streaming input windows.
                 "loop %27 = [%16, %17) step %18 -> @42",
                 "loop %31 = [%28, %29) step %30 -> @41",
                 "%37 = subview %0[%35, %36, %27, %31] sizes=[1, 2, 3, 3]",
                 "send end=%38 off=%32",
                 "end -> @32", "end -> @28",
                 "recv len=%46 off=%47",
                 "copy_from_dma %45 @ %47 accumulate",
                 "end -> @15"});
}

/// Per-pass stats pins on the conv driver; dce and coalesce leave it
/// untouched, fold and licm each fire without changing the other's
/// domain.
TEST(PlanDisassembly, ConvPerPassStats) {
  MLIRContext Context;
  registerAllDialects(Context);

  struct Expectation {
    const char *Spec;
    size_t Folded, RemovedU, HoistedU, HoistedC;
  } Cases[] = {
      {"fold", 21, 0, 0, 0},
      {"dce", 0, 0, 0, 0},
      {"licm", 0, 0, 33, 2},
      {"coalesce", 0, 0, 0, 0},
  };
  for (const Expectation &E : Cases) {
    SCOPED_TRACE(E.Spec);
    OwningOpRef Owner;
    auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/true);
    ASSERT_NE(Plan, nullptr);
    std::string Before = Plan->printToString();
    opt::PlanOptStats Stats = opt::optimizePlan(*Plan, onlyPass(E.Spec));
    EXPECT_EQ(Stats.FoldedOperands, E.Folded);
    EXPECT_EQ(Stats.RemovedUnchargedInsts, E.RemovedU);
    EXPECT_EQ(Stats.HoistedUnchargedInsts, E.HoistedU);
    EXPECT_EQ(Stats.HoistedChargedInsts, E.HoistedC);
    EXPECT_EQ(Stats.RemovedChargedInsts, 0u);
    EXPECT_EQ(Stats.CoalescedSends, 0u);
    if (Stats.total() == 0) {
      EXPECT_EQ(Plan->printToString(), Before);
    }
  }
}

TEST(PlanDisassembly, ConvAfterFullPipeline) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/true);
  ASSERT_NE(Plan, nullptr);
  opt::PlanOptStats Stats =
      opt::optimizePlan(*Plan, opt::PlanOptOptions::all());
  EXPECT_EQ(Stats.FoldedOperands, 47u);
  EXPECT_EQ(Stats.RemovedUnchargedInsts, 21u);
  EXPECT_EQ(Stats.HoistedUnchargedInsts, 33u);
  EXPECT_EQ(Stats.HoistedChargedInsts, 2u);
  expectInOrder(Plan->printToString(),
                {"plan @conv_call args=3 slots=48 insts=34",
                 "send end=%11 off=%3",
                 "loop %15 = [%3, %10) step %14 -> @34",
                 // Weight staging (IV-dependent) stays in the oC loop...
                 "%25 = subview %1[%15, %3, %3, %3] sizes=[1, 2, 3, 3]",
                 "send end=%26 off=%3",
                 // ...with the rC-opcode literal hoisted above the
                 // spatial nest.
                 "%34 = copy_literal_to_dma %33 @ %3",
                 "loop %27 = [%3, %6) step %14 -> @28",
                 "loop %31 = [%3, %6) step %14 -> @27",
                 "%37 = subview %0[%3, %3, %27, %31] sizes=[1, 2, 3, 3]",
                 "send end=%38 off=%3",
                 "recv len=%46 off=%3",
                 "copy_from_dma %45 @ %3 accumulate"});
}

//===----------------------------------------------------------------------===//
// Golden disassembly of the pre-decoded (dispatch-ready) form: the
// threaded engine's view of the same programs. Shared opcodes print with
// the plan-interpreter mnemonics; specialized linalg.generic sites print
// their bound micro-kernel.
//===----------------------------------------------------------------------===//

TEST(DecodedDisassembly, AxirtMatMulDriver) {
  MLIRContext Context;
  registerAllDialects(Context);
  OwningOpRef Owner;
  auto Plan = compileGoldenDriver(Context, Owner, /*Conv=*/false);
  ASSERT_NE(Plan, nullptr);
  auto Decoded = DecodedPlan::decode(*Plan);
  ASSERT_NE(Decoded, nullptr);
  // Fully lowered driver: no linalg.generic left, so no kernels bind;
  // the program is the plan's 41 instructions plus the return sentinel.
  EXPECT_EQ(Decoded->numSpecializedKernels(), 0u);
  expectInOrder(Decoded->printToString(),
                {"dplan @matmul_call args=3 slots=35 insts=41+ret kernels=0",
                 "  0: dma_init #0",
                 "  3: %5 = copy_literal_to_dma %4 @ %3",
                 "  4: send end=%5 off=%3",
                 "  8: loop %9 = [%6, %7) step %8 -> @41",
                 " 12: loop %13 = [%10, %11) step %12 -> @40",
                 " 19: %20 = subview %0[%9, %13] sizes=[4, 4]",
                 " 21: send end=%21 off=%17",
                 " 22: loop %22 = [%14, %15) step %16 -> @39",
                 " 36: recv len=%33 off=%34",
                 " 37: copy_from_dma %32 @ %34 accumulate",
                 " 38: end -> @23",
                 " 39: end -> @13",
                 " 40: end -> @9",
                 " 41: ret"});
}

TEST(DecodedDisassembly, CpuMatMulBindsMulAddKernel) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 4, 4, 4, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
      << Error;
  auto Plan = ExecPlan::compile(Func, Error);
  ASSERT_NE(Plan, nullptr) << Error;
  auto Decoded = DecodedPlan::decode(*Plan);
  EXPECT_EQ(Decoded->numSpecializedKernels(), 1u);
  EXPECT_EQ(Decoded->printToString(),
            "dplan @matmul_call args=3 slots=8 insts=1+ret kernels=1\n"
            "    0: generic.muladd ranges=[4, 4, 4] operands=[%0, %1, %2]\n"
            "    1: ret\n");
}

TEST(DecodedDisassembly, CpuConvBindsMulAddKernel) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      buildConvFunc(Builder, 1, 2, 5, 2, 3, 1, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
      << Error;
  auto Plan = ExecPlan::compile(Func, Error);
  ASSERT_NE(Plan, nullptr) << Error;
  auto Decoded = DecodedPlan::decode(*Plan);
  // Conv's strided input map (d2*s+d5) is linear in the loop dims, so
  // the same mul+add kernel binds as for matmul.
  EXPECT_EQ(Decoded->numSpecializedKernels(), 1u);
  EXPECT_EQ(Decoded->printToString(),
            "dplan @conv_call args=3 slots=8 insts=1+ret kernels=1\n"
            "    0: generic.muladd ranges=[1, 2, 3, 3, 2, 3, 3] "
            "operands=[%0, %1, %2]\n"
            "    1: ret\n");
}

/// The Interpreter exposes the pre-decoded program of its cached plan
/// after a threaded-mode run (null before, and in other modes).
TEST(DecodedDisassembly, InterpreterExposesDecodedPlan) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 4, 4, 4, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
      << Error;

  auto Soc = sim::makeCpuOnlySoC();
  std::vector<MemRefDesc> Args = {MemRefDesc::alloc({4, 4}),
                                  MemRefDesc::alloc({4, 4}),
                                  MemRefDesc::alloc({4, 4})};
  for (size_t I = 0; I < Args.size(); ++I)
    fillRandom(Args[I], static_cast<uint32_t>(3 + I));

  Interpreter Interp(*Soc, nullptr); // defaults to ExecMode::Threaded
  EXPECT_EQ(Interp.execMode(), ExecMode::Threaded);
  EXPECT_EQ(Interp.decodedPlan(), nullptr);
  ASSERT_TRUE(succeeded(Interp.run(Func, Args, Error))) << Error;
  ASSERT_NE(Interp.decodedPlan(), nullptr);
  EXPECT_EQ(Interp.decodedPlan()->numSpecializedKernels(), 1u);

  Interpreter PlanInterp(*Soc, nullptr, ExecMode::Plan);
  ASSERT_TRUE(succeeded(PlanInterp.run(Func, Args, Error))) << Error;
  EXPECT_EQ(PlanInterp.decodedPlan(), nullptr);
}

} // namespace
