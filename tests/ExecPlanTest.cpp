//===- ExecPlanTest.cpp - Compiled plan vs. legacy walker equivalence -----===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves the compile-once/execute-many ExecPlan is indistinguishable from
/// the legacy tree-walking interpreter on all three abstraction levels
/// (linalg.generic, accel ops, axirt runtime calls): identical output
/// buffers AND bit-identical HostPerfModel counters. The plan is the
/// measurement engine for every figure bench, so this equivalence is what
/// licenses using it by default.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;
using V = sim::MatMulAccelerator::Version;

namespace {

/// Every counter of the perf report, compared exactly. The doubles are
/// sums accumulated in the same order on both sides, so even they must
/// match bit for bit.
void expectIdenticalReports(const sim::PerfReport &Walker,
                            const sim::PerfReport &Plan) {
  EXPECT_EQ(Walker.Instructions, Plan.Instructions);
  EXPECT_EQ(Walker.BranchInstructions, Plan.BranchInstructions);
  EXPECT_EQ(Walker.Loads, Plan.Loads);
  EXPECT_EQ(Walker.Stores, Plan.Stores);
  EXPECT_EQ(Walker.L1DAccesses, Plan.L1DAccesses);
  EXPECT_EQ(Walker.CacheReferences, Plan.CacheReferences);
  EXPECT_EQ(Walker.CacheMisses, Plan.CacheMisses);
  EXPECT_EQ(Walker.HostCycles, Plan.HostCycles);
  EXPECT_EQ(Walker.FabricCycles, Plan.FabricCycles);
  EXPECT_EQ(Walker.DmaTransfers, Plan.DmaTransfers);
  EXPECT_EQ(Walker.DmaBytesMoved, Plan.DmaBytesMoved);
  EXPECT_EQ(Walker.TaskClockMs, Plan.TaskClockMs);
}

/// How far to lower the matmul before execution.
enum class Level { Generic, Accel, Axirt };

/// Lowers one matmul func to \p L. Returns false (with ADD_FAILURE) on a
/// pipeline error.
bool lowerMatMul(func::FuncOp Func, Level L,
                 const parser::AcceleratorDesc &Accel) {
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    ADD_FAILURE() << Error;
    return false;
  }
  if (L == Level::Generic)
    return true;
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  if (failed(transforms::matchAndAnnotate(Func, Accel, Error)) ||
      failed(transforms::lowerToAccel(Func, Options, Error))) {
    ADD_FAILURE() << Error;
    return false;
  }
  if (L == Level::Axirt &&
      failed(transforms::convertAccelToRuntime(Func, Error))) {
    ADD_FAILURE() << Error;
    return false;
  }
  return true;
}

/// The full equivalence check for one (level, shape) combination.
///
/// Both executors run against the SAME SoC and the SAME argument buffers
/// (refilled from fixed seeds, counters and cache reset between runs):
/// the cache simulator is keyed on real host addresses, so distinct
/// allocations would legitimately produce different line-straddle counts.
/// A warm-up run first brings the allocator to steady state so staging
/// buffers allocated mid-execution (pad remainders) recycle identical
/// addresses for both executors.
void checkMatMulEquivalence(Level L, int64_t M, int64_t N, int64_t K,
                            int64_t AccelSize,
                            sim::ElemKind Kind = sim::ElemKind::I32) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, M, N, K, Kind);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel = parseSingleAccelerator(
      makeMatMulConfigJson(V::V3, AccelSize, "Ns", 0, 0, 0,
                           Kind == sim::ElemKind::F32 ? "float32" : "int32"));
  if (!lowerMatMul(Func, L, Accel))
    return;

  auto Soc = L == Level::Generic
                 ? sim::makeCpuOnlySoC()
                 : sim::makeMatMulSoC(V::V3, AccelSize, Kind);
  std::unique_ptr<runtime::DmaRuntime> Runtime;
  if (L != Level::Generic)
    Runtime = std::make_unique<runtime::DmaRuntime>(*Soc);

  MemRefDesc A = MemRefDesc::alloc({M, K}, Kind);
  MemRefDesc B = MemRefDesc::alloc({K, N}, Kind);
  MemRefDesc C = MemRefDesc::alloc({M, N}, Kind);

  auto runOnce = [&](bool UseCompiledPlan) -> sim::PerfReport {
    fillRandom(A, 21);
    fillRandom(B, 22);
    fillRandom(C, 23);
    Soc->resetCounters();
    Interpreter Interp(*Soc, Runtime.get(), UseCompiledPlan);
    std::string Error;
    EXPECT_TRUE(succeeded(Interp.run(Func, {A, B, C}, Error))) << Error;
    return Soc->report();
  };

  runOnce(/*UseCompiledPlan=*/false); // allocator warm-up
  sim::PerfReport Walker = runOnce(/*UseCompiledPlan=*/false);
  MemRefDesc WalkerC = cloneMemRef(C);
  sim::PerfReport Plan = runOnce(/*UseCompiledPlan=*/true);
  EXPECT_TRUE(memrefEquals(WalkerC, C));
  expectIdenticalReports(Walker, Plan);
}

//===----------------------------------------------------------------------===//
// The three abstraction levels (acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(ExecPlan, GenericLevelEquivalence) {
  checkMatMulEquivalence(Level::Generic, 12, 20, 16, 8);
}

TEST(ExecPlan, GenericLevelEquivalenceF32) {
  checkMatMulEquivalence(Level::Generic, 8, 10, 12, 8, sim::ElemKind::F32);
}

TEST(ExecPlan, AccelLevelEquivalence) {
  checkMatMulEquivalence(Level::Accel, 16, 16, 16, 8);
}

TEST(ExecPlan, AxirtLevelEquivalence) {
  checkMatMulEquivalence(Level::Axirt, 32, 16, 24, 8);
}

/// Non-divisible extents force the pad remainder path: alloc + staged
/// memref.copy + masked accumulate through the shared strided-copy engine
/// in both executors.
TEST(ExecPlan, AxirtPartialTileEquivalence) {
  checkMatMulEquivalence(Level::Axirt, 10, 12, 9, 8);
}

/// Strided-convolution generics exercise the non-projected affine-map
/// fallback of the compiled plan (d2*s + d5 indexing).
TEST(ExecPlan, GenericConvEquivalence) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      buildConvFunc(Builder, 1, 3, 9, 2, 3, 2, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
      << Error;

  auto Soc = sim::makeCpuOnlySoC();
  MemRefDesc I = MemRefDesc::alloc({1, 3, 9, 9});
  MemRefDesc W = MemRefDesc::alloc({2, 3, 3, 3});
  MemRefDesc O = MemRefDesc::alloc({1, 2, 4, 4});
  auto runOnce = [&](bool UseCompiledPlan) -> sim::PerfReport {
    fillRandom(I, 31);
    fillRandom(W, 32);
    fillRandom(O, 33);
    Soc->resetCounters();
    Interpreter Interp(*Soc, nullptr, UseCompiledPlan);
    EXPECT_TRUE(succeeded(Interp.run(Func, {I, W, O}, Error))) << Error;
    return Soc->report();
  };
  sim::PerfReport Walker = runOnce(false);
  MemRefDesc WalkerO = cloneMemRef(O);
  sim::PerfReport Plan = runOnce(true);
  EXPECT_TRUE(memrefEquals(WalkerO, O));
  expectIdenticalReports(Walker, Plan);
}

//===----------------------------------------------------------------------===//
// Plan mechanics
//===----------------------------------------------------------------------===//

TEST(ExecPlan, CompilesToFlatProgram) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 8, 8, 8, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)));
  auto Plan = ExecPlan::compile(Func, Error);
  ASSERT_NE(Plan, nullptr) << Error;
  EXPECT_EQ(Plan->numArguments(), 3u);
  EXPECT_GT(Plan->numInstructions(), 0u);
  EXPECT_GE(Plan->numSlots(), 3u);
}

TEST(ExecPlan, ReusedAcrossRunsWithIdenticalCounters) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 6, 6, 6, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)));
  auto Plan = ExecPlan::compile(Func, Error);
  ASSERT_NE(Plan, nullptr) << Error;

  // Two executions of one plan on fresh systems: independent, identical.
  sim::PerfReport Reports[2];
  for (int Run = 0; Run < 2; ++Run) {
    auto Soc = sim::makeCpuOnlySoC();
    MemRefDesc A = MemRefDesc::alloc({6, 6});
    MemRefDesc B = MemRefDesc::alloc({6, 6});
    MemRefDesc C = MemRefDesc::alloc({6, 6});
    fillRandom(A, 1);
    fillRandom(B, 2);
    fillRandom(C, 3);
    MemRefDesc Expected = cloneMemRef(C);
    referenceMatMul(A, B, Expected);
    ASSERT_TRUE(succeeded(Plan->run(*Soc, nullptr, {A, B, C}, Error)))
        << Error;
    EXPECT_TRUE(memrefEquals(Expected, C));
    Reports[Run] = Soc->report();
  }
  expectIdenticalReports(Reports[0], Reports[1]);
}

/// Send/wait fusion: the axirt lowering emits every start_send/start_recv
/// immediately followed by its wait, so the fused plan must collapse all
/// of them — and stay observably identical (same output buffer, bit-equal
/// perf counters) to the unfused plan.
TEST(ExecPlan, FusesSendWaitPairs) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, 16, 16, 16, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel =
      parseSingleAccelerator(makeMatMulConfigJson(V::V3, 8, "Ns"));
  ASSERT_TRUE(lowerMatMul(Func, Level::Axirt, Accel));

  std::string Error;
  auto Unfused = ExecPlan::compile(Func, Error, /*FuseTransferPairs=*/false);
  ASSERT_NE(Unfused, nullptr) << Error;
  auto Fused = ExecPlan::compile(Func, Error);
  ASSERT_NE(Fused, nullptr) << Error;

  EXPECT_EQ(Unfused->numFusedSends(), 0u);
  EXPECT_EQ(Unfused->numFusedRecvs(), 0u);
  EXPECT_GT(Fused->numFusedSends(), 0u);
  EXPECT_GT(Fused->numFusedRecvs(), 0u);
  // Each fused pair removes exactly one instruction.
  EXPECT_EQ(Fused->numInstructions() + Fused->numFusedSends() +
                Fused->numFusedRecvs(),
            Unfused->numInstructions());

  auto Soc = sim::makeMatMulSoC(V::V3, 8);
  runtime::DmaRuntime Runtime(*Soc);
  MemRefDesc A = MemRefDesc::alloc({16, 16});
  MemRefDesc B = MemRefDesc::alloc({16, 16});
  MemRefDesc C = MemRefDesc::alloc({16, 16});
  auto runOnce = [&](const ExecPlan &Plan) -> sim::PerfReport {
    fillRandom(A, 41);
    fillRandom(B, 42);
    fillRandom(C, 43);
    Soc->resetCounters();
    std::string RunError;
    EXPECT_TRUE(succeeded(Plan.run(*Soc, &Runtime, {A, B, C}, RunError)))
        << RunError;
    return Soc->report();
  };
  runOnce(*Unfused); // allocator warm-up (see checkMatMulEquivalence)
  sim::PerfReport UnfusedReport = runOnce(*Unfused);
  MemRefDesc UnfusedC = cloneMemRef(C);
  sim::PerfReport FusedReport = runOnce(*Fused);
  EXPECT_TRUE(memrefEquals(UnfusedC, C));
  expectIdenticalReports(UnfusedReport, FusedReport);
}

TEST(ExecPlan, DiagnosticsMatchWalker) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = func::FuncOp::create(Builder, "f", {});
  OwningOpRef Owner(Func.getOperation());
  Builder.setInsertionPointToEnd(&Func.getBody());
  Builder.create("mystery.op");
  func::ReturnOp::create(Builder);

  std::string PlanError;
  EXPECT_EQ(ExecPlan::compile(Func, PlanError), nullptr);
  EXPECT_NE(PlanError.find("mystery.op"), std::string::npos);

  auto Soc = sim::makeCpuOnlySoC();
  std::string WalkerError;
  Interpreter Walker(*Soc, nullptr, /*UseCompiledPlan=*/false);
  EXPECT_TRUE(failed(Walker.run(Func, {}, WalkerError)));
  EXPECT_EQ(PlanError, WalkerError);
}

} // namespace
