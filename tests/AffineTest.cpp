//===- AffineTest.cpp - Affine expression/map unit tests ------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/AffineMap.h"

#include <gtest/gtest.h>

using namespace axi4mlir;

namespace {

TEST(AffineExpr, EvalBasics) {
  AffineExpr D0 = AffineExpr::getDim(0);
  AffineExpr D1 = AffineExpr::getDim(1);
  AffineExpr C2 = AffineExpr::getConstant(2);
  EXPECT_EQ(D0.eval({5, 7}), 5);
  EXPECT_EQ((D0 + D1).eval({5, 7}), 12);
  EXPECT_EQ((D0 * 3).eval({5, 7}), 15);
  EXPECT_EQ((D0 * 2 + D1).eval({3, 1}), 7); // conv-style oh*2 + fh
  EXPECT_EQ(C2.eval({}), 2);
}

TEST(AffineExpr, ModAndFloorDiv) {
  AffineExpr D0 = AffineExpr::getDim(0);
  AffineExpr Mod = AffineExpr::getBinary(AffineExpr::Kind::Mod, D0,
                                         AffineExpr::getConstant(4));
  AffineExpr Div = AffineExpr::getBinary(AffineExpr::Kind::FloorDiv, D0,
                                         AffineExpr::getConstant(4));
  EXPECT_EQ(Mod.eval({10}), 2);
  EXPECT_EQ(Mod.eval({-1}), 3); // Euclidean semantics.
  EXPECT_EQ(Div.eval({10}), 2);
  EXPECT_EQ(Div.eval({-1}), -1);
}

TEST(AffineExpr, StructuralEquality) {
  AffineExpr A = AffineExpr::getDim(0) + AffineExpr::getDim(1);
  AffineExpr B = AffineExpr::getDim(0) + AffineExpr::getDim(1);
  AffineExpr C = AffineExpr::getDim(1) + AffineExpr::getDim(0);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // No canonicalization: structural comparison.
}

TEST(AffineExpr, CollectAndReplaceDims) {
  AffineExpr Expr = AffineExpr::getDim(2) * 2 + AffineExpr::getDim(5);
  std::set<unsigned> Dims;
  Expr.collectDimPositions(Dims);
  EXPECT_EQ(Dims, (std::set<unsigned>{2, 5}));
  AffineExpr Replaced = Expr.replaceDims({0, 1, 7, 3, 4, 9, 6});
  Dims.clear();
  Replaced.collectDimPositions(Dims);
  EXPECT_EQ(Dims, (std::set<unsigned>{7, 9}));
  EXPECT_EQ(Replaced.eval({0, 0, 0, 0, 0, 0, 0, 3, 0, 4}), 10);
}

TEST(AffineExpr, Printing) {
  AffineExpr Expr = AffineExpr::getDim(2) * 2 + AffineExpr::getDim(5);
  EXPECT_EQ(Expr.str(), "((d2 * 2) + d5)");
}

TEST(AffineMap, Identity) {
  AffineMap Map = AffineMap::getMultiDimIdentity(3);
  EXPECT_EQ(Map.getNumDims(), 3u);
  EXPECT_EQ(Map.getNumResults(), 3u);
  EXPECT_TRUE(Map.isPermutation());
  EXPECT_EQ(Map.eval({4, 5, 6}), (std::vector<int64_t>{4, 5, 6}));
}

TEST(AffineMap, Permutation) {
  // The A-stationary loop order of paper Fig. 6a: (m, n, k) -> (m, k, n).
  AffineMap Map = AffineMap::getPermutation({0, 2, 1});
  EXPECT_TRUE(Map.isPermutation());
  EXPECT_EQ(Map.eval({1, 2, 3}), (std::vector<int64_t>{1, 3, 2}));
  AffineMap NotPerm = AffineMap::getSelect({0, 0}, 2);
  EXPECT_FALSE(NotPerm.isPermutation());
  EXPECT_TRUE(NotPerm.isProjectedPermutation());
}

TEST(AffineMap, SelectMatchesMatmulOperands) {
  // A: (m, n, k) -> (m, k).
  AffineMap AMap = AffineMap::getSelect({0, 2}, 3);
  EXPECT_EQ(AMap.eval({10, 20, 30}), (std::vector<int64_t>{10, 30}));
  EXPECT_EQ(AMap.getResultDimPositions(1), (std::set<unsigned>{2}));
  EXPECT_EQ(AMap.getAllDimPositions(), (std::set<unsigned>{0, 2}));
}

TEST(AffineMap, ConstantMapForAccelDim) {
  // accel_dim = map<(m, n, k) -> (4, 4, 4)> (paper Fig. 6a L9).
  AffineMap Map = AffineMap::getConstant(3, {4, 4, 4});
  EXPECT_EQ(Map.getNumDims(), 3u);
  EXPECT_EQ(Map.eval({9, 9, 9}), (std::vector<int64_t>{4, 4, 4}));
  EXPECT_FALSE(Map.isProjectedPermutation());
  EXPECT_EQ(Map.getResult(0).getConstantValue(), 4);
}

TEST(AffineMap, EqualityAndPrinting) {
  EXPECT_EQ(AffineMap::getMultiDimIdentity(2),
            AffineMap::getMultiDimIdentity(2));
  EXPECT_NE(AffineMap::getMultiDimIdentity(2),
            AffineMap::getPermutation({1, 0}));
  EXPECT_EQ(AffineMap::getPermutation({1, 0}).str(), "(d0, d1) -> (d1, d0)");
}

TEST(AffineMap, ConvInputMap) {
  // I: (b, oc, oh, ow, ic, fh, fw) -> (b, ic, oh*2 + fh, ow*2 + fw).
  AffineExpr B = AffineExpr::getDim(0), OH = AffineExpr::getDim(2),
             OW = AffineExpr::getDim(3), IC = AffineExpr::getDim(4),
             FH = AffineExpr::getDim(5), FW = AffineExpr::getDim(6);
  AffineMap Map = AffineMap::get(7, 0, {B, IC, OH * 2 + FH, OW * 2 + FW});
  EXPECT_EQ(Map.eval({0, 3, 5, 6, 7, 1, 2}),
            (std::vector<int64_t>{0, 7, 11, 14}));
  EXPECT_EQ(Map.getResultDimPositions(2), (std::set<unsigned>{2, 5}));
}

} // namespace
