//===- PlanEquivalenceFuzzTest.cpp - Differential plan-optimizer fuzzing --===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equivalence harness pinning src/exec/opt and the threaded engine:
/// every driver is executed by the legacy walker, the unoptimized plan,
/// each optimizer pass on its own, and the full pipeline — against the
/// SAME simulated SoC and the SAME argument buffers (refilled from fixed
/// seeds, counters reset between runs) — and every configuration runs a
/// third time through the threaded-dispatch executor, which must match
/// the plan interpreter's buffers and address-independent counters bit
/// for bit. Output buffers must be bit-identical in every configuration.
/// Counters are held to the pass contracts (PlanOpt.h):
/// a run whose PlanOptStats report no counter-changing rewrites must
/// reproduce the walker's HostPerfModel/DMA/cache counters bit for bit;
/// runs with counter-changing rewrites (hoisted/removed charged
/// instructions, flattened loops, merged sends) must improve the
/// cache-free counters monotonically while conserving DmaBytesMoved.
///
/// A deterministic case list covers matmul v1–v4 across all four flows,
/// f32 and i32, pad/peel partial tiles, and conv; on top, a seeded fuzzer
/// generates random cases. AXI4MLIR_FUZZ_SEED / AXI4MLIR_FUZZ_CASES widen
/// the sweep (CI runs a fixed seed under ASan+UBSan and a 200-case
/// opt-in sweep).
///
//===----------------------------------------------------------------------===//

#include "analysis/PlanVerifier.h"
#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "exec/opt/PlanOpt.h"

#include <cstdlib>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;
using V = sim::MatMulAccelerator::Version;

namespace {

/// One generated driver: a matmul or conv workload plus its lowering and
/// system configuration.
struct FuzzCase {
  bool IsConv = false;
  // MatMul.
  int64_t M = 8, N = 8, K = 8;
  V Version = V::V3;
  int64_t AccelSize = 8;
  std::string Flow = "Ns";
  // Conv: fixed output-stationary engine.
  int64_t InC = 3, InHW = 9, OutC = 2, FilterHW = 3, Stride = 1;
  sim::ElemKind Kind = sim::ElemKind::I32;
  bool CpuTiling = false;
  transforms::RemainderMode Remainder = transforms::RemainderMode::Pad;

  std::string describe() const {
    std::ostringstream OS;
    if (IsConv) {
      OS << "conv " << InHW << "x" << InC << " f" << FilterHW << " oc"
         << OutC << " s" << Stride;
    } else {
      OS << "matmul v" << (Version == V::V1   ? 1
                           : Version == V::V2 ? 2
                           : Version == V::V3 ? 3
                                              : 4)
         << "/" << AccelSize << " " << Flow << " " << M << "x" << N << "x"
         << K;
    }
    OS << (Kind == sim::ElemKind::F32 ? " f32" : " i32")
       << (CpuTiling ? " cputile" : "")
       << (Remainder == transforms::RemainderMode::Peel ? " peel" : " pad");
    return OS.str();
  }
};

/// The improvement contract: buffers were already checked; here the
/// cache-free counters must not regress and the DMA byte volume must be
/// conserved. Cache-dependent counters (CacheReferences/Misses,
/// HostCycles, TaskClock) are exempt — staging relocation and LRU recency
/// shifts move them in either direction by design.
void expectImprovedReport(const sim::PerfReport &Walker,
                          const sim::PerfReport &Optimized,
                          const opt::PlanOptStats &Stats,
                          const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Walker.DmaBytesMoved, Optimized.DmaBytesMoved);
  EXPECT_LE(Optimized.DmaTransfers, Walker.DmaTransfers);
  EXPECT_LE(Optimized.Instructions, Walker.Instructions);
  EXPECT_LE(Optimized.BranchInstructions, Walker.BranchInstructions);
  EXPECT_LE(Optimized.Loads, Walker.Loads);
  EXPECT_LE(Optimized.Stores, Walker.Stores);
  EXPECT_LE(Optimized.FabricCycles, Walker.FabricCycles + 1e-9);
  if (Stats.CoalescedSends == 0) {
    // Without relocated staging the cache ACCESS count (not its
    // hit/miss split) is monotone too.
    EXPECT_LE(Optimized.L1DAccesses, Walker.L1DAccesses);
    EXPECT_EQ(Walker.DmaTransfers, Optimized.DmaTransfers);
  } else {
    // Every static merge executes at least once: strictly fewer bursts.
    EXPECT_LT(Optimized.DmaTransfers, Walker.DmaTransfers);
  }
  if (Stats.FlattenedLoops > 0) {
    EXPECT_LT(Optimized.BranchInstructions, Walker.BranchInstructions);
  }
  if (Stats.HoistedChargedInsts > 0 || Stats.RemovedChargedInsts > 0) {
    EXPECT_LT(Optimized.Instructions, Walker.Instructions);
  }
}

/// \p StableAddresses: the cache simulator keys on real host addresses,
/// so CacheReferences/CacheMisses (and the miss-penalty-derived
/// HostCycles/TaskClockMs) are only cross-executor deterministic when the
/// driver allocates no staging buffers mid-run — malloc may legally hand
/// the two executors differently-aligned blocks. Drivers with pad
/// remainders (memref.alloc in the lowered body) exempt those four; the
/// eight address-independent counters are exact always.
void expectIdenticalReport(const sim::PerfReport &Walker,
                           const sim::PerfReport &Plan,
                           const std::string &Label,
                           bool StableAddresses) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Walker.Instructions, Plan.Instructions);
  EXPECT_EQ(Walker.BranchInstructions, Plan.BranchInstructions);
  EXPECT_EQ(Walker.Loads, Plan.Loads);
  EXPECT_EQ(Walker.Stores, Plan.Stores);
  EXPECT_EQ(Walker.L1DAccesses, Plan.L1DAccesses);
  EXPECT_EQ(Walker.FabricCycles, Plan.FabricCycles);
  EXPECT_EQ(Walker.DmaTransfers, Plan.DmaTransfers);
  EXPECT_EQ(Walker.DmaBytesMoved, Plan.DmaBytesMoved);
  if (StableAddresses) {
    EXPECT_EQ(Walker.CacheReferences, Plan.CacheReferences);
    EXPECT_EQ(Walker.CacheMisses, Plan.CacheMisses);
    EXPECT_EQ(Walker.HostCycles, Plan.HostCycles);
    EXPECT_EQ(Walker.TaskClockMs, Plan.TaskClockMs);
  }
}

/// Runs one case through walker, plan-none, each single pass, and the
/// full pipeline, asserting the contracts. Returns false when the
/// lowering itself failed (reported via ADD_FAILURE).
void checkCase(const FuzzCase &Case) {
  SCOPED_TRACE(Case.describe());
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);

  func::FuncOp Func =
      Case.IsConv
          ? buildConvFunc(Builder, 1, Case.InC, Case.InHW, Case.OutC,
                          Case.FilterHW, Case.Stride, Case.Kind)
          : buildMatMulFunc(Builder, Case.M, Case.N, Case.K, Case.Kind);
  OwningOpRef Owner(Func.getOperation());

  const char *DataType =
      Case.Kind == sim::ElemKind::F32 ? "float32" : "int32";
  parser::AcceleratorDesc Accel = parseSingleAccelerator(
      Case.IsConv ? makeConvConfigJson(DataType)
                  : makeMatMulConfigJson(Case.Version, Case.AccelSize,
                                         Case.Flow, 0, 0, 0, DataType));

  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = Case.CpuTiling;
  Options.Remainder = Case.Remainder;
  transforms::PassManager Pipeline = transforms::buildPipeline(
      std::vector<parser::AcceleratorDesc>{Accel}, Options);
  std::string Error;
  ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;

  // Every lowered function must compile to a plan the static verifier
  // accepts before any executor touches it: the fuzzer doubles as a
  // soundness sweep for src/analysis across the whole case space.
  {
    auto Plan = ExecPlan::compile(Func, Error);
    ASSERT_TRUE(Plan) << Error;
    analysis::VerifyResult Verified = analysis::verifyPlan(*Plan);
    EXPECT_TRUE(Verified.Errors.empty()) << Verified.toString();
  }

  // Pad-remainder drivers allocate staging buffers mid-run; see
  // expectIdenticalReport for the contract consequence.
  bool StableAddresses = true;
  Func.getOperation()->walk([&](Operation *Op) {
    if (Op->getName() == memref::AllocOp::OpName)
      StableAddresses = false;
  });

  auto Soc = Case.IsConv
                 ? sim::makeConvSoC(Case.Kind)
                 : sim::makeMatMulSoC(Case.Version, Case.AccelSize,
                                      Case.Kind);
  runtime::DmaRuntime Runtime(*Soc);

  std::vector<MemRefDesc> Args;
  if (Case.IsConv) {
    int64_t OutHW = (Case.InHW - Case.FilterHW) / Case.Stride + 1;
    Args.push_back(MemRefDesc::alloc(
        {1, Case.InC, Case.InHW, Case.InHW}, Case.Kind));
    Args.push_back(MemRefDesc::alloc(
        {Case.OutC, Case.InC, Case.FilterHW, Case.FilterHW}, Case.Kind));
    Args.push_back(
        MemRefDesc::alloc({1, Case.OutC, OutHW, OutHW}, Case.Kind));
  } else {
    Args.push_back(MemRefDesc::alloc({Case.M, Case.K}, Case.Kind));
    Args.push_back(MemRefDesc::alloc({Case.K, Case.N}, Case.Kind));
    Args.push_back(MemRefDesc::alloc({Case.M, Case.N}, Case.Kind));
  }

  // All executors share the SoC and buffers: the cache simulator keys on
  // real host addresses, so distinct allocations would legitimately
  // diverge. Bit-identical cache counters additionally require the host
  // heap itself to be in steady state when a driver allocates staging
  // buffers mid-run (pad remainders): plan compilation, the optimizer and
  // pre-decode churn the allocator, so each spec is measured as its own
  // (walker warm-up, plan warm-up, threaded warm-up, walker, plan,
  // threaded) sextuple — the warm-ups compile/decode and settle the
  // allocator, and the measured runs are then execution-only on the
  // same heap.
  auto runOnce = [&](Interpreter &Interp) -> sim::PerfReport {
    for (size_t I = 0; I < Args.size(); ++I)
      fillRandom(Args[I], static_cast<uint32_t>(91 + I));
    Soc->resetCounters();
    std::string RunError;
    EXPECT_TRUE(succeeded(Interp.run(Func, Args, RunError))) << RunError;
    return Soc->report();
  };

  struct PassSpec {
    const char *Name;
    opt::PlanOptOptions Options;
  };
  std::vector<PassSpec> Specs;
  // Unoptimized plan first: the PR-3 bit-identical guarantee.
  Specs.push_back({"none", opt::PlanOptOptions::none()});
  {
    opt::PlanOptOptions O;
    O.Fold = true;
    Specs.push_back({"fold", O});
  }
  {
    opt::PlanOptOptions O;
    O.Dce = true;
    Specs.push_back({"dce", O});
  }
  {
    opt::PlanOptOptions O;
    O.Licm = true;
    Specs.push_back({"licm", O});
  }
  {
    opt::PlanOptOptions O;
    O.Coalesce = true;
    Specs.push_back({"coalesce", O});
  }
  Specs.push_back({"all", opt::PlanOptOptions::all()});
  // Re-verify the flat plan after every optimizer pass on every spec; a
  // rejected plan makes the interpreter run fail, which the EXPECTs in
  // runOnce surface with the pass name and diagnostic.
  for (PassSpec &Spec : Specs)
    Spec.Options.VerifyEach = true;

  // Snapshot storage is allocated up front: allocating it between the two
  // measured runs would itself shift the heap under the staging buffers.
  std::vector<MemRefDesc> Expected;
  for (const MemRefDesc &Arg : Args)
    Expected.push_back(cloneMemRef(Arg));
  auto snapshotBuffers = [&]() {
    for (size_t I = 0; I < Args.size(); ++I)
      std::copy(Args[I].Buffer->Data.begin(), Args[I].Buffer->Data.end(),
                Expected[I].Buffer->Data.begin());
  };
  auto checkBuffers = [&](const std::string &Label) {
    SCOPED_TRACE(Label);
    for (size_t I = 0; I < Args.size(); ++I)
      EXPECT_TRUE(memrefEquals(Expected[I], Args[I]))
          << "buffer " << I << " diverged";
  };

  for (const PassSpec &Spec : Specs) {
    Interpreter WalkerInterp(*Soc, &Runtime, ExecMode::Walker);
    Interpreter PlanInterp(*Soc, &Runtime, ExecMode::Plan);
    Interpreter ThreadedInterp(*Soc, &Runtime, ExecMode::Threaded);
    PlanInterp.setPlanOptions(Spec.Options);
    ThreadedInterp.setPlanOptions(Spec.Options);
    runOnce(WalkerInterp);
    runOnce(PlanInterp);     // compiles + optimizes; plan cached
    runOnce(ThreadedInterp); // compiles + optimizes + pre-decodes
    sim::PerfReport Walker = runOnce(WalkerInterp);
    snapshotBuffers();
    sim::PerfReport Optimized = runOnce(PlanInterp);
    checkBuffers(Spec.Name);
    // Third column: the threaded engine executes the SAME optimized plan
    // pre-decoded; its buffers and counters must match the plan
    // interpreter bit for bit on every case, optimized or not.
    snapshotBuffers();
    sim::PerfReport Threaded = runOnce(ThreadedInterp);
    checkBuffers(std::string(Spec.Name) + " threaded");
    expectIdenticalReport(Optimized, Threaded,
                          std::string(Spec.Name) + " threaded-vs-plan",
                          StableAddresses);
    const opt::PlanOptStats &Stats = PlanInterp.planOptStats();
    EXPECT_TRUE(Stats.VerifyError.empty())
        << "after " << Stats.VerifyFailedPass << ": " << Stats.VerifyError;

    if (Stats.changedCounters())
      expectImprovedReport(Walker, Optimized, Stats, Spec.Name);
    else
      expectIdenticalReport(Walker, Optimized, Spec.Name, StableAddresses);
    if (std::string(Spec.Name) == "none") {
      EXPECT_EQ(Stats.total(), 0u);
    }
    // fold rewrites operand references only: never a counter change.
    if (std::string(Spec.Name) == "fold") {
      EXPECT_FALSE(Stats.changedCounters());
    }
  }
}

//===----------------------------------------------------------------------===//
// Deterministic coverage: v1-v4, all flows, f32+i32, pad/peel partials,
// conv (the acceptance list).
//===----------------------------------------------------------------------===//

FuzzCase matmulCase(V Version, int64_t Size, const std::string &Flow,
                    int64_t M, int64_t N, int64_t K) {
  FuzzCase Case;
  Case.Version = Version;
  Case.AccelSize = Size;
  Case.Flow = Flow;
  Case.M = M;
  Case.N = N;
  Case.K = K;
  return Case;
}

TEST(PlanEquivalenceFuzz, MatMulV1) {
  checkCase(matmulCase(V::V1, 4, "Ns", 8, 8, 8));
}

TEST(PlanEquivalenceFuzz, MatMulV1PartialPad) {
  checkCase(matmulCase(V::V1, 4, "Ns", 10, 6, 9));
}

TEST(PlanEquivalenceFuzz, MatMulV2FlowAs) {
  checkCase(matmulCase(V::V2, 4, "As", 12, 8, 8));
}

TEST(PlanEquivalenceFuzz, MatMulV2FlowBs) {
  checkCase(matmulCase(V::V2, 4, "Bs", 8, 12, 8));
}

TEST(PlanEquivalenceFuzz, MatMulV3FlowNs) {
  checkCase(matmulCase(V::V3, 8, "Ns", 16, 16, 16));
}

TEST(PlanEquivalenceFuzz, MatMulV3FlowAsPartialPad) {
  checkCase(matmulCase(V::V3, 8, "As", 18, 10, 14));
}

TEST(PlanEquivalenceFuzz, MatMulV3FlowAsPartialPeel) {
  FuzzCase Case = matmulCase(V::V3, 8, "As", 18, 10, 14);
  Case.Remainder = transforms::RemainderMode::Peel;
  checkCase(Case);
}

TEST(PlanEquivalenceFuzz, MatMulV3FlowBs) {
  checkCase(matmulCase(V::V3, 8, "Bs", 8, 24, 16));
}

TEST(PlanEquivalenceFuzz, MatMulV3FlowCs) {
  checkCase(matmulCase(V::V3, 8, "Cs", 16, 8, 24));
}

TEST(PlanEquivalenceFuzz, MatMulV3F32) {
  FuzzCase Case = matmulCase(V::V3, 8, "Ns", 16, 16, 8);
  Case.Kind = sim::ElemKind::F32;
  checkCase(Case);
}

/// v4's init block (reset + cfg) is two adjacent constant-range send
/// groups: the relocation merge must fire on every v4 driver.
TEST(PlanEquivalenceFuzz, MatMulV4InitMerge) {
  checkCase(matmulCase(V::V4, 8, "Ns", 16, 16, 16));
}

TEST(PlanEquivalenceFuzz, MatMulV4CpuTiling) {
  FuzzCase Case = matmulCase(V::V4, 8, "As", 16, 16, 16);
  Case.CpuTiling = true;
  checkCase(Case);
}

TEST(PlanEquivalenceFuzz, Conv) {
  FuzzCase Case;
  Case.IsConv = true;
  Case.InC = 3;
  Case.InHW = 9;
  Case.OutC = 2;
  Case.FilterHW = 3;
  Case.Stride = 2;
  checkCase(Case);
}

TEST(PlanEquivalenceFuzz, ConvStride1F32) {
  FuzzCase Case;
  Case.IsConv = true;
  Case.InC = 4;
  Case.InHW = 8;
  Case.OutC = 4;
  Case.FilterHW = 3;
  Case.Stride = 1;
  Case.Kind = sim::ElemKind::F32;
  checkCase(Case);
}

//===----------------------------------------------------------------------===//
// Seeded random sweep
//===----------------------------------------------------------------------===//

FuzzCase randomCase(std::mt19937 &Rng) {
  auto pick = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  FuzzCase Case;
  if (pick(0, 4) == 0) {
    Case.IsConv = true;
    Case.FilterHW = pick(2, 3);
    Case.Stride = pick(1, 2);
    Case.InHW = Case.FilterHW + Case.Stride * pick(2, 5);
    Case.InC = pick(2, 5);
    Case.OutC = pick(1, 4);
    Case.Kind = pick(0, 3) == 0 ? sim::ElemKind::F32 : sim::ElemKind::I32;
    return Case;
  }
  switch (pick(1, 4)) {
  case 1:
    Case.Version = V::V1;
    Case.Flow = "Ns";
    break;
  case 2:
    Case.Version = V::V2;
    Case.Flow = std::vector<std::string>{"Ns", "As", "Bs"}[pick(0, 2)];
    break;
  case 3:
    Case.Version = V::V3;
    Case.Flow =
        std::vector<std::string>{"Ns", "As", "Bs", "Cs"}[pick(0, 3)];
    break;
  default:
    Case.Version = V::V4;
    Case.Flow =
        std::vector<std::string>{"Ns", "As", "Bs", "Cs"}[pick(0, 3)];
    break;
  }
  Case.AccelSize = pick(0, 1) ? 4 : 8;
  auto dim = [&]() {
    int64_t Extent = Case.AccelSize * pick(1, 3);
    if (pick(0, 2) == 0) // one in three: partial tile
      Extent += pick(1, static_cast<int>(Case.AccelSize) - 1);
    return Extent;
  };
  Case.M = dim();
  Case.N = dim();
  Case.K = dim();
  Case.Kind = pick(0, 3) == 0 ? sim::ElemKind::F32 : sim::ElemKind::I32;
  Case.CpuTiling = pick(0, 3) == 0;
  Case.Remainder = pick(0, 2) == 0 ? transforms::RemainderMode::Peel
                                   : transforms::RemainderMode::Pad;
  return Case;
}

TEST(PlanEquivalenceFuzz, RandomSweep) {
  uint32_t Seed = 1;
  int Cases = 8;
  if (const char *Env = std::getenv("AXI4MLIR_FUZZ_SEED"))
    Seed = static_cast<uint32_t>(std::strtoul(Env, nullptr, 10));
  if (const char *Env = std::getenv("AXI4MLIR_FUZZ_CASES"))
    Cases = static_cast<int>(std::strtol(Env, nullptr, 10));
  std::mt19937 Rng(Seed);
  for (int I = 0; I < Cases; ++I) {
    FuzzCase Case = randomCase(Rng);
    SCOPED_TRACE("seed " + std::to_string(Seed) + " case " +
                 std::to_string(I));
    checkCase(Case);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "stopping after first failing case: "
                    << Case.describe();
      return;
    }
  }
}

} // namespace
