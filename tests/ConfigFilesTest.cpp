//===- ConfigFilesTest.cpp - Checked-in configs/*.json smoke test ---------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads every JSON file checked in under configs/ through the real
/// parser and asserts it validates: each file must describe at least one
/// accelerator with a resolvable selected flow. Keeps the documented
/// example configs from drifting away from the parser.
///
//===----------------------------------------------------------------------===//

#include "parser/ConfigParser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace axi4mlir;
using namespace axi4mlir::parser;

namespace {

std::vector<std::filesystem::path> configFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(AXI4MLIR_CONFIGS_DIR))
    if (Entry.path().extension() == ".json")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(ConfigFiles, DirectoryHasDocumentedConfigs) {
  std::vector<std::string> Names;
  for (const auto &Path : configFiles())
    Names.push_back(Path.filename().string());
  // The configs the README and the acceptance command rely on.
  EXPECT_NE(std::find(Names.begin(), Names.end(), "matmul_v3_16.json"),
            Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "conv2d.json"),
            Names.end());
  EXPECT_GE(Names.size(), 6u);
}

TEST(ConfigFiles, EveryCheckedInConfigValidates) {
  for (const auto &Path : configFiles()) {
    std::string Error;
    auto Config = parseSystemConfigFile(Path.string(), &Error);
    ASSERT_TRUE(succeeded(Config)) << Path << ": " << Error;
    ASSERT_FALSE(Config->Accelerators.empty()) << Path;
    for (const AcceleratorDesc &Accel : Config->Accelerators) {
      EXPECT_FALSE(Accel.Name.empty()) << Path;
      EXPECT_FALSE(Accel.Kernel.empty()) << Path;
      ASSERT_NE(Accel.selectedFlow(), nullptr)
          << Path << ": accelerator '" << Accel.Name
          << "' has no resolvable selected flow";
    }
  }
}

TEST(ConfigFiles, MultiAcceleratorConfigDefinesTwoEngines) {
  // The multi-accelerator dispatch example the docs point at.
  std::string Error;
  auto Config = parseSystemConfigFile(
      std::string(AXI4MLIR_CONFIGS_DIR) + "/matmul_multi.json", &Error);
  ASSERT_TRUE(succeeded(Config)) << Error;
  ASSERT_EQ(Config->Accelerators.size(), 2u);
  EXPECT_EQ(Config->Accelerators[0].Kernel, "linalg.matmul");
  EXPECT_EQ(Config->Accelerators[1].Kernel, "linalg.matmul");
  EXPECT_NE(Config->Accelerators[0].Name, Config->Accelerators[1].Name);
}

TEST(ConfigFiles, MatMulConfigsCoverAllFourVersions) {
  std::vector<std::string> Kernels;
  for (const auto &Path : configFiles()) {
    auto Config = parseSystemConfigFile(Path.string());
    ASSERT_TRUE(succeeded(Config)) << Path;
    for (const AcceleratorDesc &Accel : Config->Accelerators)
      Kernels.push_back(Accel.Name);
  }
  for (const char *Version : {"v1", "v2", "v3", "v4"}) {
    bool Found = false;
    for (const std::string &Name : Kernels)
      Found = Found || Name.find(Version) != std::string::npos;
    EXPECT_TRUE(Found) << "no checked-in matmul config for " << Version;
  }
}

} // namespace
