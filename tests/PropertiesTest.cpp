//===- PropertiesTest.cpp - Parameterized property-style sweeps -----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style invariants checked over parameter sweeps (TEST_P):
///
///   * Numerical equivalence: for every (shape, version, size, flow,
///     specialization, tiling) combination, the AXI4MLIR-generated driver,
///     the manual driver and the CPU interpretation all compute the same
///     C as the reference kernel — i.e. tiling covers the iteration space
///     exactly, flows respect accelerator state, and copies round-trip.
///   * Performance-counter sanity: counters are internally consistent and
///     respond monotonically to problem size; data volume ordering between
///     flows matches the movement estimator.
///
//===----------------------------------------------------------------------===//

#include "exec/Heuristics.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

namespace {

//===----------------------------------------------------------------------===//
// Numerics sweep over versions / flows / rectangular shapes
//===----------------------------------------------------------------------===//

using NumericsParam =
    std::tuple<int /*version*/, int64_t /*size*/, const char * /*flow*/,
               std::tuple<int64_t, int64_t, int64_t> /*shape*/,
               bool /*specialize*/, bool /*cpuTiling*/>;

class MatMulNumerics : public ::testing::TestWithParam<NumericsParam> {};

TEST_P(MatMulNumerics, GeneratedManualAndReferenceAgree) {
  auto [VersionInt, Size, Flow, Shape, Specialize, CpuTiling] = GetParam();
  auto Version = static_cast<V>(VersionInt);
  if (Version == V::V1 && std::string(Flow) != "Ns")
    GTEST_SKIP() << "v1 only supports the Ns flow";
  if (Version == V::V2 && std::string(Flow) == "Cs")
    GTEST_SKIP() << "v2 cannot keep C stationary";

  MatMulRunConfig Config;
  std::tie(Config.M, Config.N, Config.K) = Shape;
  Config.Version = Version;
  Config.AccelSize = Size;
  Config.Flow = Flow;
  Config.SpecializeCopies = Specialize;
  Config.CpuTiling = CpuTiling;
  Config.Seed = static_cast<uint32_t>(7 + Size + Config.M);

  RunResult Generated = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Generated.Ok) << Generated.Error;
  EXPECT_TRUE(Generated.NumericsMatch) << Generated.Error;

  RunResult Manual = runMatMulManual(Config);
  ASSERT_TRUE(Manual.Ok) << Manual.Error;
  EXPECT_TRUE(Manual.NumericsMatch) << Manual.Error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatMulNumerics,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(V::V1), static_cast<int>(V::V2),
                          static_cast<int>(V::V3)),
        ::testing::Values<int64_t>(4, 8),
        ::testing::Values("Ns", "As", "Bs", "Cs"),
        ::testing::Values(std::make_tuple<int64_t, int64_t, int64_t>(16, 16,
                                                                     16),
                          std::make_tuple<int64_t, int64_t, int64_t>(32, 16,
                                                                     48),
                          std::make_tuple<int64_t, int64_t, int64_t>(8, 40,
                                                                     24)),
        ::testing::Values(true, false), ::testing::Values(true)));

//===----------------------------------------------------------------------===//
// Float numerics (exact for small integers stored as f32)
//===----------------------------------------------------------------------===//

class FloatFlows : public ::testing::TestWithParam<const char *> {};

TEST_P(FloatFlows, F32PathsAgree) {
  MatMulRunConfig Config;
  Config.M = Config.N = Config.K = 24;
  Config.Version = V::V3;
  Config.AccelSize = 8;
  Config.Flow = GetParam();
  Config.Kind = sim::ElemKind::F32;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

INSTANTIATE_TEST_SUITE_P(Flows, FloatFlows,
                         ::testing::Values("Ns", "As", "Bs", "Cs"));

//===----------------------------------------------------------------------===//
// V4 rectangular tiling sweep
//===----------------------------------------------------------------------===//

using V4Param = std::tuple<int64_t, int64_t, int64_t, const char *>;
class V4Tiles : public ::testing::TestWithParam<V4Param> {};

TEST_P(V4Tiles, FlexibleTilesValidate) {
  auto [TileM, TileN, TileK, Flow] = GetParam();
  MatMulRunConfig Config;
  Config.M = 64;
  Config.N = 32;
  Config.K = 64;
  Config.Version = V::V4;
  Config.AccelSize = 16;
  Config.TileM = TileM;
  Config.TileN = TileN;
  Config.TileK = TileK;
  Config.Flow = Flow;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, V4Tiles,
    ::testing::Combine(::testing::Values<int64_t>(16, 32),
                       ::testing::Values<int64_t>(8, 32),
                       ::testing::Values<int64_t>(16, 64),
                       ::testing::Values("Ns", "Cs")));

//===----------------------------------------------------------------------===//
// Conv sweep
//===----------------------------------------------------------------------===//

using ConvParam = std::tuple<int64_t /*iC*/, int64_t /*fHW*/,
                             int64_t /*stride*/, int64_t /*oC*/>;
class ConvNumerics : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvNumerics, GeneratedAndManualAgree) {
  auto [InChannels, FilterHW, Stride, OutChannels] = GetParam();
  ConvRunConfig Config;
  Config.InChannels = InChannels;
  Config.FilterHW = FilterHW;
  Config.Stride = Stride;
  Config.OutChannels = OutChannels;
  Config.InHW = FilterHW + 5 * Stride; // 6x6 outputs
  RunResult Generated = runConvAxi4mlir(Config);
  ASSERT_TRUE(Generated.Ok) << Generated.Error;
  EXPECT_TRUE(Generated.NumericsMatch) << Generated.Error;
  RunResult Manual = runConvManual(Config);
  ASSERT_TRUE(Manual.Ok) << Manual.Error;
  EXPECT_TRUE(Manual.NumericsMatch) << Manual.Error;
}

INSTANTIATE_TEST_SUITE_P(
    Layers, ConvNumerics,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 8),
                       ::testing::Values<int64_t>(1, 3),
                       ::testing::Values<int64_t>(1, 2),
                       ::testing::Values<int64_t>(2, 5)));

//===----------------------------------------------------------------------===//
// Perf-counter invariants
//===----------------------------------------------------------------------===//

TEST(PerfInvariants, CountersConsistent) {
  MatMulRunConfig Config;
  Config.M = Config.N = Config.K = 32;
  Config.Version = V::V3;
  Config.AccelSize = 8;
  Config.Flow = "As";
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  const sim::PerfReport &R = Result.Report;
  EXPECT_GT(R.Instructions, 0u);
  EXPECT_GT(R.DmaTransfers, 0u);
  EXPECT_GT(R.FabricCycles, 0.0);
  EXPECT_GE(R.L1DAccesses, R.CacheReferences); // refs are L1 misses
  EXPECT_GE(R.CacheReferences, R.CacheMisses);
  EXPECT_GE(R.Instructions, R.BranchInstructions);
  EXPECT_NEAR(R.TaskClockMs,
              Config.Params.taskClockMs(R.HostCycles, R.FabricCycles),
              1e-12);
}

TEST(PerfInvariants, TaskClockMonotoneInProblemSize) {
  double Previous = 0;
  for (int64_t Dims : {16, 32, 64}) {
    MatMulRunConfig Config;
    Config.M = Config.N = Config.K = Dims;
    Config.Version = V::V3;
    Config.AccelSize = 8;
    Config.Flow = "Ns";
    Config.Validate = false;
    RunResult Result = runMatMulAxi4mlir(Config);
    ASSERT_TRUE(Result.Ok) << Result.Error;
    EXPECT_GT(Result.Report.TaskClockMs, Previous);
    Previous = Result.Report.TaskClockMs;
  }
}

TEST(PerfInvariants, FlowDataVolumeMatchesEstimator) {
  // Measured DMA bytes must rank flows exactly as the movement estimator
  // predicts (opcode words add only noise).
  const int64_t Dims = 64, Size = 8;
  std::map<std::string, uint64_t> Measured;
  for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
    MatMulRunConfig Config;
    Config.M = Config.N = Config.K = Dims;
    Config.Version = V::V3;
    Config.AccelSize = Size;
    Config.Flow = Flow;
    Config.Validate = false;
    RunResult Result = runMatMulAxi4mlir(Config);
    ASSERT_TRUE(Result.Ok) << Result.Error;
    Measured[Flow] = Result.Report.DmaBytesMoved;
  }
  for (const char *Stationary : {"As", "Bs", "Cs"}) {
    EXPECT_LT(Measured[Stationary], Measured["Ns"]) << Stationary;
    double EstimatedRatio =
        estimateMovedElements(Stationary, Dims, Dims, Dims, Size, Size,
                              Size) /
        estimateMovedElements("Ns", Dims, Dims, Dims, Size, Size, Size);
    double MeasuredRatio = static_cast<double>(Measured[Stationary]) /
                           static_cast<double>(Measured["Ns"]);
    EXPECT_NEAR(MeasuredRatio, EstimatedRatio, 0.1) << Stationary;
  }
}

TEST(PerfInvariants, AcceleratorComputeMatchesTableI) {
  // Fabric cycles for compute scale with MACs / OPsPerCycle.
  MatMulRunConfig Config;
  Config.M = Config.N = Config.K = 32;
  Config.Version = V::V1;
  Config.AccelSize = 8;
  Config.Flow = "Ns";
  Config.Validate = false;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  double ComputeCycles = 2.0 * 32 * 32 * 32 / sim::matmulOpsPerCycle(8);
  // Fabric time = streaming + latency + compute; compute is a lower bound.
  EXPECT_GE(Result.Report.FabricCycles, ComputeCycles);
}

} // namespace
