//===- FaultRecoveryFuzzTest.cpp - Differential fault-recovery fuzzing ----===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The headline pin of the self-healing runtime: for any seeded fault
/// schedule with recovery enabled, the final buffers must be bit-identical
/// to the fault-free run — across the walker, the compiled plan and the
/// threaded executor — and the address-independent base counters
/// (instructions, branches, loads/stores, fabric cycles, DMA transfers and
/// bytes) must also be bit-identical to the fault-free run, with every
/// cycle of recovery work visible only in the dedicated recovery counters.
/// The single exception is CPU fallback, which legitimately moves compute
/// cycles off the fabric (FabricCycles -> CpuFallbackCycles).
///
/// Deterministic cases cover each fault kind's detection + recovery path
/// (transient refusal, corrupt-word CRC, short transfer, watchdog timeout
/// + replay, tolerated stall), retry exhaustion into spare failover and
/// into CPU fallback, and recovery-disabled error surfacing. A seeded
/// random sweep (AXI4MLIR_FUZZ_SEED / AXI4MLIR_FUZZ_CASES widen it; CI
/// runs a fixed seed under ASan+UBSan) composes random workloads with
/// random fault plans.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <cstdlib>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

namespace {

const ExecMode kModes[] = {ExecMode::Walker, ExecMode::Plan,
                           ExecMode::Threaded};

const char *modeName(ExecMode Mode) {
  switch (Mode) {
  case ExecMode::Walker:
    return "walker";
  case ExecMode::Plan:
    return "plan";
  case ExecMode::Threaded:
    return "threaded";
  }
  return "?";
}

/// The recovery counter contract: the eight address-independent base
/// counters of a healed run match the fault-free run bit for bit. CPU
/// fallback exempts FabricCycles only — the degraded tail's compute is
/// charged to CpuFallbackCycles instead.
void expectSameBaseCounters(const sim::PerfReport &Clean,
                            const sim::PerfReport &Healed,
                            const std::string &Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(Clean.Instructions, Healed.Instructions);
  EXPECT_EQ(Clean.BranchInstructions, Healed.BranchInstructions);
  EXPECT_EQ(Clean.Loads, Healed.Loads);
  EXPECT_EQ(Clean.Stores, Healed.Stores);
  EXPECT_EQ(Clean.L1DAccesses, Healed.L1DAccesses);
  EXPECT_EQ(Clean.DmaTransfers, Healed.DmaTransfers);
  EXPECT_EQ(Clean.DmaBytesMoved, Healed.DmaBytesMoved);
  if (Healed.CpuFallbackEvents == 0) {
    EXPECT_EQ(Clean.FabricCycles, Healed.FabricCycles);
  } else {
    EXPECT_GT(Healed.CpuFallbackCycles, 0u);
  }
  // Fault-free runs must not grow recovery telemetry.
  EXPECT_EQ(Clean.FaultsInjected, 0u);
  EXPECT_EQ(Clean.RecoveryRetries, 0u);
  EXPECT_EQ(Clean.RecoveryBackoffCycles, 0u);
  EXPECT_EQ(Clean.WatchdogPollCycles, 0u);
  EXPECT_EQ(Clean.RecoveryReplayCycles, 0u);
  EXPECT_EQ(Clean.FailoverEvents, 0u);
  EXPECT_EQ(Clean.CpuFallbackEvents, 0u);
  EXPECT_EQ(Clean.CpuFallbackCycles, 0u);
}

MatMulRunConfig matmulConfig(ExecMode Mode) {
  MatMulRunConfig Config;
  Config.M = 24;
  Config.N = 16;
  Config.K = 16;
  Config.Version = V::V3;
  Config.AccelSize = 8;
  Config.Flow = "As";
  Config.Exec = Mode;
  return Config;
}

/// Runs the same workload fault-free and faulted, asserting the headline
/// pin. Returns the healed report for extra per-case assertions.
sim::PerfReport checkHeals(MatMulRunConfig Config,
                           const sim::FaultPlan &Faults, unsigned Spares,
                           const std::string &Label) {
  SCOPED_TRACE(Label + " " + modeName(Config.Exec));
  Config.Faults = sim::FaultPlan();
  Config.SpareAccelerators = 0;
  RunResult Clean = runMatMulAxi4mlir(Config);
  EXPECT_TRUE(Clean.Ok) << Clean.Error;
  EXPECT_TRUE(Clean.NumericsMatch);

  Config.Faults = Faults;
  Config.SpareAccelerators = Spares;
  RunResult Healed = runMatMulAxi4mlir(Config);
  EXPECT_TRUE(Healed.Ok) << Healed.Error;
  // The whole point: a healed run is numerically indistinguishable from a
  // fault-free one.
  EXPECT_TRUE(Healed.NumericsMatch);
  expectSameBaseCounters(Clean.Report, Healed.Report, "base counters");
  return Healed.Report;
}

sim::FaultEvent event(sim::FaultKind Kind, uint64_t At) {
  sim::FaultEvent Event;
  Event.Kind = Kind;
  Event.At = At;
  Event.Steps = 128;
  return Event;
}

//===----------------------------------------------------------------------===//
// Each fault kind's detection + recovery path, on all three executors.
//===----------------------------------------------------------------------===//

TEST(FaultRecovery, TransientRefusalHeals) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::TransientError, 2));
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "transient@2");
    EXPECT_EQ(Report.FaultsInjected, 1u);
    EXPECT_EQ(Report.RecoveryRetries, 1u);
    EXPECT_GT(Report.RecoveryBackoffCycles, 0u);
    EXPECT_EQ(Report.FailoverEvents, 0u);
    EXPECT_EQ(Report.CpuFallbackEvents, 0u);
  }
}

TEST(FaultRecovery, CorruptWordHeals) {
  sim::FaultPlan Plan;
  sim::FaultEvent Corrupt = event(sim::FaultKind::CorruptWord, 4);
  Corrupt.WordIndex = 3;
  Corrupt.XorMask = 0xFF;
  Plan.Events.push_back(Corrupt);
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "corrupt@4");
    EXPECT_EQ(Report.FaultsInjected, 1u);
    EXPECT_EQ(Report.RecoveryRetries, 1u);
  }
}

TEST(FaultRecovery, TruncatedTransferHeals) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::TruncateSend, 3));
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "truncate@3");
    EXPECT_EQ(Report.FaultsInjected, 1u);
    EXPECT_EQ(Report.RecoveryRetries, 1u);
  }
}

TEST(FaultRecovery, DroppedBurstTimesOutAndReplays) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::DropSend, 5));
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "drop@5");
    EXPECT_EQ(Report.FaultsInjected, 1u);
    EXPECT_EQ(Report.RecoveryRetries, 1u);
    // The watchdog burned its full poll budget, and the reset re-staged
    // the transfers delivered before the drop.
    EXPECT_EQ(Report.WatchdogPollCycles,
              Plan.Recovery.WatchdogPolls * Plan.Recovery.PollCycles);
    EXPECT_GT(Report.RecoveryReplayCycles, 0u);
  }
}

TEST(FaultRecovery, StallWithinWatchdogBudgetIsTolerated) {
  sim::FaultPlan Plan;
  sim::FaultEvent Stall = event(sim::FaultKind::Stall, 2);
  Stall.Steps = 16; // under the default 64-poll budget
  Plan.Events.push_back(Stall);
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "stall@2:16");
    EXPECT_EQ(Report.FaultsInjected, 1u);
    // Tolerated: the watchdog charged the polls but no retry was needed.
    EXPECT_EQ(Report.RecoveryRetries, 0u);
    EXPECT_EQ(Report.WatchdogPollCycles, 16 * Plan.Recovery.PollCycles);
  }
}

TEST(FaultRecovery, StallBeyondWatchdogBudgetTimesOut) {
  sim::FaultPlan Plan;
  sim::FaultEvent Stall = event(sim::FaultKind::Stall, 2);
  Stall.Steps = 200; // over the 64-poll budget
  Plan.Events.push_back(Stall);
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "stall@2:200");
    EXPECT_EQ(Report.FaultsInjected, 1u);
    EXPECT_EQ(Report.RecoveryRetries, 1u);
    EXPECT_EQ(Report.WatchdogPollCycles,
              Plan.Recovery.WatchdogPolls * Plan.Recovery.PollCycles);
  }
}

TEST(FaultRecovery, MultipleFaultsHealIndependently) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::TransientError, 1));
  Plan.Events.push_back(event(sim::FaultKind::CorruptWord, 6));
  Plan.Events.push_back(event(sim::FaultKind::TruncateSend, 9));
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report =
        checkHeals(matmulConfig(Mode), Plan, 0, "three faults");
    EXPECT_EQ(Report.FaultsInjected, 3u);
    EXPECT_EQ(Report.RecoveryRetries, 3u);
  }
}

//===----------------------------------------------------------------------===//
// Retry exhaustion: failover to a spare, then CPU fallback.
//===----------------------------------------------------------------------===//

TEST(FaultRecovery, ExhaustionFailsOverToSpare) {
  sim::FaultPlan Plan;
  sim::FaultEvent Persistent = event(sim::FaultKind::TransientError, 2);
  Persistent.Attempts = 16; // outlasts any retry budget
  Plan.Events.push_back(Persistent);
  Plan.Recovery.MaxRetries = 2;
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report = checkHeals(matmulConfig(Mode), Plan,
                                        /*Spares=*/1, "persistent+spare");
    EXPECT_EQ(Report.RecoveryRetries, 2u);
    EXPECT_EQ(Report.FailoverEvents, 1u);
    EXPECT_EQ(Report.CpuFallbackEvents, 0u);
    EXPECT_GT(Report.RecoveryReplayCycles, 0u);
  }
}

TEST(FaultRecovery, ExhaustionFallsBackToCpu) {
  sim::FaultPlan Plan;
  sim::FaultEvent Persistent = event(sim::FaultKind::TransientError, 2);
  Persistent.Attempts = 16;
  Plan.Events.push_back(Persistent);
  Plan.Recovery.MaxRetries = 1;
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report = checkHeals(matmulConfig(Mode), Plan,
                                        /*Spares=*/0, "persistent+nospare");
    EXPECT_EQ(Report.RecoveryRetries, 1u);
    EXPECT_EQ(Report.FailoverEvents, 0u);
    EXPECT_EQ(Report.CpuFallbackEvents, 1u);
    EXPECT_GT(Report.CpuFallbackCycles, 0u);
  }
}

TEST(FaultRecovery, SpareExhaustionCascadesToCpu) {
  // Two persistent faults: the first burns the primary (failover), the
  // second burns the spare (CPU fallback). Injection is disabled on the
  // degraded unit, so the second event must target a later send made
  // while the spare is active... but failover disables injection for the
  // rest of the run by design — a degraded run stops being a fault target.
  // So: one persistent fault, one spare, retries so low the spare is the
  // last line; the run still heals via the spare.
  sim::FaultPlan Plan;
  sim::FaultEvent Persistent = event(sim::FaultKind::DropSend, 0);
  Persistent.Attempts = 16;
  Plan.Events.push_back(Persistent);
  Plan.Recovery.MaxRetries = 0; // immediate exhaustion
  for (ExecMode Mode : kModes) {
    sim::PerfReport Report = checkHeals(matmulConfig(Mode), Plan,
                                        /*Spares=*/1, "drop@0 retries=0");
    EXPECT_EQ(Report.RecoveryRetries, 0u);
    EXPECT_EQ(Report.FailoverEvents, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Recovery disabled: the fault surfaces as a structured error, never as
// silently wrong data.
//===----------------------------------------------------------------------===//

TEST(FaultRecovery, NoRecoverSurfacesStructuredError) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::TransientError, 2));
  Plan.Recovery.Enabled = false;
  for (ExecMode Mode : kModes) {
    SCOPED_TRACE(modeName(Mode));
    MatMulRunConfig Config = matmulConfig(Mode);
    Config.Faults = Plan;
    RunResult Result = runMatMulAxi4mlir(Config);
    EXPECT_FALSE(Result.Ok);
    EXPECT_NE(Result.Error.find("transient"), std::string::npos)
        << Result.Error;
    EXPECT_NE(Result.Error.find("recovery disabled"), std::string::npos)
        << Result.Error;
  }
}

TEST(FaultRecovery, NoRecoverCorruptWordFailsFatally) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::CorruptWord, 1));
  Plan.Recovery.Enabled = false;
  for (ExecMode Mode : kModes) {
    SCOPED_TRACE(modeName(Mode));
    MatMulRunConfig Config = matmulConfig(Mode);
    Config.Faults = Plan;
    RunResult Result = runMatMulAxi4mlir(Config);
    EXPECT_FALSE(Result.Ok);
    EXPECT_NE(Result.Error.find("corrupt-word"), std::string::npos)
        << Result.Error;
  }
}

//===----------------------------------------------------------------------===//
// Conv engine: the same recovery machinery drives the second accelerator.
//===----------------------------------------------------------------------===//

TEST(FaultRecovery, ConvHealsAcrossExecutors) {
  sim::FaultPlan Plan;
  Plan.Events.push_back(event(sim::FaultKind::TransientError, 3));
  Plan.Events.push_back(event(sim::FaultKind::TruncateSend, 2));
  for (ExecMode Mode : kModes) {
    SCOPED_TRACE(std::string("conv ") + modeName(Mode));
    ConvRunConfig Config;
    Config.InChannels = 3;
    Config.InHW = 9;
    Config.OutChannels = 2;
    Config.FilterHW = 3;
    Config.Stride = 1;
    Config.Exec = Mode;

    RunResult Clean = runConvAxi4mlir(Config);
    EXPECT_TRUE(Clean.Ok) << Clean.Error;
    EXPECT_TRUE(Clean.NumericsMatch);

    Config.Faults = Plan;
    RunResult Healed = runConvAxi4mlir(Config);
    EXPECT_TRUE(Healed.Ok) << Healed.Error;
    EXPECT_TRUE(Healed.NumericsMatch);
    expectSameBaseCounters(Clean.Report, Healed.Report, "conv base");
    EXPECT_EQ(Healed.Report.FaultsInjected, 2u);
  }
}

//===----------------------------------------------------------------------===//
// Seeded random sweep: random workloads x random fault schedules.
//===----------------------------------------------------------------------===//

TEST(FaultRecovery, RandomSweep) {
  uint32_t Seed = 3;
  int Cases = 6;
  if (const char *Env = std::getenv("AXI4MLIR_FUZZ_SEED"))
    Seed = static_cast<uint32_t>(std::strtoul(Env, nullptr, 10));
  if (const char *Env = std::getenv("AXI4MLIR_FUZZ_CASES"))
    Cases = static_cast<int>(std::strtol(Env, nullptr, 10));
  std::mt19937 Rng(Seed);
  auto pick = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  for (int I = 0; I < Cases; ++I) {
    MatMulRunConfig Config;
    Config.Version = pick(0, 1) ? V::V3 : V::V2;
    Config.AccelSize = Config.Version == V::V2 ? 4 : 8;
    Config.Flow = Config.Version == V::V2
                      ? std::vector<std::string>{"Ns", "As", "Bs"}[pick(0, 2)]
                      : std::vector<std::string>{"Ns", "As", "Bs",
                                                 "Cs"}[pick(0, 3)];
    Config.M = Config.AccelSize * pick(1, 3);
    Config.N = Config.AccelSize * pick(1, 3);
    Config.K = Config.AccelSize * pick(1, 3);
    Config.Exec = kModes[pick(0, 2)];
    uint32_t PlanSeed = static_cast<uint32_t>(pick(0, 1 << 20));
    sim::FaultPlan Plan =
        sim::makeRandomFaultPlan(PlanSeed, pick(1, 4), /*MaxIndex=*/24);
    // One spare so persistent schedules degrade gracefully instead of
    // dying (random plans can stack attempts past the retry budget).
    std::ostringstream Label;
    Label << "seed " << Seed << " case " << I << " plan " << PlanSeed;
    checkHeals(Config, Plan, /*Spares=*/1, Label.str());
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "stopping after first failing case: " << Label.str();
      return;
    }
  }
}

} // namespace
