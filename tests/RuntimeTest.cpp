//===- RuntimeTest.cpp - DMA runtime library unit tests -------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Reference.h"
#include "runtime/DmaRuntime.h"
#include "runtime/StridedCopy.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::runtime;
using namespace axi4mlir::sim;

namespace {

std::unique_ptr<SoC> makeBoard() {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 8);
  return Soc;
}

accel::DmaInitConfig bigRegions() {
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 16;
  Config.OutputBufferSize = 1 << 16;
  return Config;
}

TEST(StridedCopy, ZeroSizedOuterDimIsANoOp) {
  SoCParams Params;
  HostPerfModel Perf(Params);
  // Scalar mode with a zero leading dimension: nothing to copy, nothing
  // charged (the buffers are empty — any element access would be OOB).
  MemRefDesc Src2 = MemRefDesc::alloc({0, 4});
  MemRefDesc Dst2 = MemRefDesc::alloc({0, 4});
  stridedCopy(Perf, makeCopyRequest(Src2, Dst2, /*RowMemcpy=*/false));
  // Row mode, rank 3, zero outermost dimension: no row block may run.
  MemRefDesc Src3 = MemRefDesc::alloc({0, 2, 4});
  MemRefDesc Dst3 = MemRefDesc::alloc({0, 2, 4});
  stridedCopy(Perf, makeCopyRequest(Src3, Dst3, /*RowMemcpy=*/true));
  PerfReport R = Perf.report();
  EXPECT_EQ(R.Instructions, 0u);
  EXPECT_EQ(R.Loads, 0u);
  EXPECT_EQ(R.Stores, 0u);
  EXPECT_EQ(R.L1DAccesses, 0u);
}

TEST(MemRefDesc, AllocSubviewIndexing) {
  MemRefDesc Full = MemRefDesc::alloc({6, 8});
  EXPECT_EQ(Full.rank(), 2u);
  EXPECT_EQ(Full.numElements(), 48);
  EXPECT_EQ(Full.Strides, (std::vector<int64_t>{8, 1}));
  Full.write({2, 3}, 42);
  EXPECT_EQ(Full.read({2, 3}), 42);

  MemRefDesc Tile = Full.subview({2, 3}, {2, 2});
  EXPECT_EQ(Tile.Offset, 2 * 8 + 3);
  EXPECT_EQ(Tile.read({0, 0}), 42); // aliases the source buffer
  Tile.write({1, 1}, 7);
  EXPECT_EQ(Full.read({3, 4}), 7);
  EXPECT_TRUE(Tile.innermostContiguous());
}

TEST(MemRefDesc, FloatKind) {
  MemRefDesc F = MemRefDesc::alloc({4}, ElemKind::F32);
  F.write({2}, 1.5);
  EXPECT_DOUBLE_EQ(F.read({2}), 1.5);
}

TEST(DmaRuntime, LiteralAndOffsetChaining) {
  auto Soc = makeBoard();
  DmaRuntime Runtime(*Soc);
  Runtime.dmaInit(bigRegions());
  int64_t Off = Runtime.copyLiteralToDmaRegion(0x22, 0);
  EXPECT_EQ(Off, 1);
  MemRefDesc Tile = MemRefDesc::alloc({2, 3});
  for (int64_t I = 0; I < 2; ++I)
    for (int64_t J = 0; J < 3; ++J)
      Tile.write({I, J}, I * 3 + J);
  Off = Runtime.copyToDmaRegion(Tile, Off);
  EXPECT_EQ(Off, 7); // 1 literal + 6 elements
  uint32_t *Region = Soc->dma().inputRegion();
  EXPECT_EQ(Region[0], 0x22u);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(static_cast<int32_t>(Region[1 + I]), I);
}

TEST(DmaRuntime, StridedCopyLinearizesRowMajor) {
  auto Soc = makeBoard();
  DmaRuntime Runtime(*Soc);
  Runtime.dmaInit(bigRegions());
  MemRefDesc Full = MemRefDesc::alloc({8, 8});
  for (int64_t I = 0; I < 8; ++I)
    for (int64_t J = 0; J < 8; ++J)
      Full.write({I, J}, I * 10 + J);
  MemRefDesc Tile = Full.subview({2, 4}, {3, 2});
  Runtime.copyToDmaRegion(Tile, 0);
  uint32_t *Region = Soc->dma().inputRegion();
  int32_t Expected[] = {24, 25, 34, 35, 44, 45};
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(static_cast<int32_t>(Region[I]), Expected[I]);
}

TEST(DmaRuntime, SpecializationIsBitExact) {
  for (bool Specialize : {false, true}) {
    auto Soc = makeBoard();
    DmaRuntime Runtime(*Soc, Specialize);
    Runtime.dmaInit(bigRegions());
    MemRefDesc Full = MemRefDesc::alloc({16, 16});
    exec::fillRandom(Full, 3);
    MemRefDesc Tile = Full.subview({4, 8}, {8, 8});
    Runtime.copyToDmaRegion(Tile, 0);
    if (Specialize) {
      // Compare against the unspecialized sibling run.
      auto SocRef = makeBoard();
      DmaRuntime RuntimeRef(*SocRef, false);
      RuntimeRef.dmaInit(bigRegions());
      RuntimeRef.copyToDmaRegion(Tile, 0);
      for (int I = 0; I < 64; ++I)
        EXPECT_EQ(Soc->dma().inputRegion()[I],
                  SocRef->dma().inputRegion()[I]);
    }
  }
}

TEST(DmaRuntime, SpecializationCutsInstructions) {
  MemRefDesc Full = MemRefDesc::alloc({64, 64});
  MemRefDesc Tile = Full.subview({0, 0}, {16, 16});

  auto SlowSoc = makeBoard();
  DmaRuntime Slow(*SlowSoc, /*SpecializeCopies=*/false);
  Slow.dmaInit(bigRegions());
  Slow.copyToDmaRegion(Tile, 0);

  auto FastSoc = makeBoard();
  DmaRuntime Fast(*FastSoc, /*SpecializeCopies=*/true);
  Fast.dmaInit(bigRegions());
  Fast.copyToDmaRegion(Tile, 0);

  EXPECT_LT(FastSoc->report().Instructions,
            SlowSoc->report().Instructions);
  EXPECT_LT(FastSoc->report().BranchInstructions,
            SlowSoc->report().BranchInstructions);
}

TEST(DmaRuntime, NonContiguousFallsBackToElementwise) {
  // Column-slice tile: innermost stride != 1 -> generic path regardless of
  // the specialization flag; contents must still be correct.
  auto Soc = makeBoard();
  DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  Runtime.dmaInit(bigRegions());
  MemRefDesc Full = MemRefDesc::alloc({4, 4});
  for (int64_t I = 0; I < 4; ++I)
    for (int64_t J = 0; J < 4; ++J)
      Full.write({I, J}, I * 4 + J);
  MemRefDesc Column;
  Column.Buffer = Full.Buffer;
  Column.Offset = 1;
  Column.Sizes = {4};
  Column.Strides = {4}; // column 1
  Runtime.copyToDmaRegion(Column, 0);
  uint32_t *Region = Soc->dma().inputRegion();
  int32_t Expected[] = {1, 5, 9, 13};
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(static_cast<int32_t>(Region[I]), Expected[I]);
}

TEST(DmaRuntime, CopyFromDmaOverwriteAndAccumulate) {
  auto Soc = makeBoard();
  DmaRuntime Runtime(*Soc);
  Runtime.dmaInit(bigRegions());
  uint32_t *Out = Soc->dma().outputRegion();
  for (int I = 0; I < 4; ++I)
    Out[I] = static_cast<uint32_t>(10 + I);

  MemRefDesc Dest = MemRefDesc::alloc({2, 2});
  Dest.write({0, 0}, 100);
  Runtime.copyFromDmaRegion(Dest, 0, /*Accumulate=*/false);
  EXPECT_EQ(Dest.read({0, 0}), 10);
  EXPECT_EQ(Dest.read({1, 1}), 13);
  Runtime.copyFromDmaRegion(Dest, 0, /*Accumulate=*/true);
  EXPECT_EQ(Dest.read({0, 0}), 20);
  EXPECT_EQ(Dest.read({1, 1}), 26);
}

TEST(DmaRuntime, AccumulateFloat) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 8,
                           ElemKind::F32);
  DmaRuntime Runtime(*Soc);
  Runtime.dmaInit(bigRegions());
  Soc->dma().outputRegion()[0] = floatToWord(1.25f);
  MemRefDesc Dest = MemRefDesc::alloc({1}, ElemKind::F32);
  Dest.write({0}, 0.25);
  Runtime.copyFromDmaRegion(Dest, 0, /*Accumulate=*/true);
  EXPECT_DOUBLE_EQ(Dest.read({0}), 1.5);
}

TEST(DmaRuntime, UnitDimCollapseKeepsSemantics) {
  // A [1, C, 1, 1] conv-window-style view (the fHW==1 case of Sec. IV-D).
  auto Soc = makeBoard();
  DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  Runtime.dmaInit(bigRegions());
  MemRefDesc Input = MemRefDesc::alloc({1, 4, 3, 3});
  for (int64_t C = 0; C < 4; ++C)
    Input.write({0, C, 1, 2}, 50 + C);
  MemRefDesc Window = Input.subview({0, 0, 1, 2}, {1, 4, 1, 1});
  Runtime.copyToDmaRegion(Window, 0);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(static_cast<int32_t>(Soc->dma().inputRegion()[I]), 50 + I);
}

TEST(DmaRuntime, EndToEndSendComputeRecv) {
  // Drive one 8x8x8 tile through the real accelerator via the runtime.
  auto Soc = makeBoard();
  DmaRuntime Runtime(*Soc);
  Runtime.dmaInit(bigRegions());

  MemRefDesc A = MemRefDesc::alloc({8, 8});
  MemRefDesc B = MemRefDesc::alloc({8, 8});
  MemRefDesc C = MemRefDesc::alloc({8, 8});
  exec::fillRandom(A, 5);
  exec::fillRandom(B, 6);
  MemRefDesc Expected = exec::cloneMemRef(C);
  exec::referenceMatMul(A, B, Expected);

  int64_t Off = Runtime.copyLiteralToDmaRegion(0x22, 0);
  Off = Runtime.copyToDmaRegion(A, Off);
  Off = Runtime.copyLiteralToDmaRegion(0x23, Off);
  Off = Runtime.copyToDmaRegion(B, Off);
  Off = Runtime.copyLiteralToDmaRegion(0xF0, Off);
  Off = Runtime.copyLiteralToDmaRegion(0x24, Off);
  Runtime.dmaStartSend(Off, 0);
  Runtime.dmaWaitSendCompletion();
  Runtime.dmaStartRecv(64, 0);
  Runtime.dmaWaitRecvCompletion();
  Runtime.copyFromDmaRegion(C, 0, /*Accumulate=*/true);

  ASSERT_FALSE(Runtime.hadError()) << Runtime.errorMessage();
  EXPECT_TRUE(exec::memrefEquals(Expected, C));
}

} // namespace
