//===- GoldenIRTest.cpp - Printed-IR correspondence with paper Fig. 6b ----===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FileCheck-style golden tests: the printed IR of the lowered A-stationary
/// 60x72x80 matmul (the paper's running example, Figs. 2/6) must contain
/// the landmarks of Fig. 6b in order — dma_init, the reset literal, the
/// (m, k, n) loop nest with the hoisted sA transfer between the second and
/// third loop, and the innermost sB/cC/rC group.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Pipeline.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using V = sim::MatMulAccelerator::Version;

namespace {

/// Asserts that \p Needles occur in \p Haystack in the given order.
void expectInOrder(const std::string &Haystack,
                   const std::vector<std::string> &Needles) {
  size_t Position = 0;
  for (const std::string &Needle : Needles) {
    size_t Found = Haystack.find(Needle, Position);
    ASSERT_NE(Found, std::string::npos)
        << "missing (in order): '" << Needle << "'\nafter offset "
        << Position << " in:\n"
        << Haystack;
    Position = Found + Needle.size();
  }
}

TEST(GoldenIR, Fig6bAStationaryMatmul) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  // The paper's 60x80 * 80x72 example, 4x4x4 accelerator, As flow.
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, 60, 72, 80, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 4, "As"));

  std::string Error;
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  // Stop before the runtime lowering: Fig. 6b shows accel-level IR.
  ASSERT_TRUE(
      succeeded(transforms::convertNamedToGeneric(Func, Error)));
  ASSERT_TRUE(succeeded(transforms::matchAndAnnotate(Func, Accel, Error)))
      << Error;
  ASSERT_TRUE(succeeded(transforms::lowerToAccel(Func, Options, Error)))
      << Error;

  std::string IR = Func.getOperation()->str();
  expectInOrder(
      IR, {
              "accel.dma_init",
              "{literal = 255}", // reset (0xFF), once, before the loops
              "scf.for",         // m loop (0 to 60 step 4)
              "scf.for",         // k loop (0 to 80 step 4)
              "{literal = 34}",  // 0x22 — the sA opcode
              "memref.subview",  // %sA = subview %A[m, k][4, 4]
              "accel.send",      // hoisted A-tile transfer
              "scf.for",         // n loop (innermost, 0 to 72 step 4)
              "{literal = 35}",  // 0x23 — the sB opcode
              "accel.send",      // B tile
              "{literal = 240}", // 0xF0 — cC
              "{literal = 36}",  // 0x24 — rC
              "accel.recv",      // C tile, mode accumulate
          });
  EXPECT_NE(IR.find("mode = \"accumulate\""), std::string::npos);
  // The loop bounds of the paper example appear as constants.
  EXPECT_NE(IR.find("{value = 60 : index}"), std::string::npos);
  EXPECT_NE(IR.find("{value = 80 : index}"), std::string::npos);
  EXPECT_NE(IR.find("{value = 72 : index}"), std::string::npos);
}

TEST(GoldenIR, RuntimeLoweringBatchesTheInnermostGroup) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, 8, 8, 8, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(V::V3, 8, "Ns"));
  std::string Error;
  transforms::PassManager Pipeline =
      transforms::buildPipeline(Accel, transforms::LoweringOptions());
  ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;

  std::string IR = Func.getOperation()->str();
  // One tile, no loops: the whole sA+sB+cC+rC-opcode batch is staged by
  // chained copies and shipped by a single start_send before the recv.
  expectInOrder(IR, {
                        "axirt.copy_literal_to_dma", // 0x22
                        "axirt.copy_to_dma",         // A
                        "axirt.copy_literal_to_dma", // 0x23
                        "axirt.copy_to_dma",         // B
                        "axirt.copy_literal_to_dma", // 0xF0
                        "axirt.copy_literal_to_dma", // 0x24
                        "axirt.start_send",
                        "axirt.wait_send",
                        "axirt.start_recv",
                        "axirt.wait_recv",
                        "axirt.copy_from_dma",
                    });
  // Exactly two start_sends in total: init opcodes + the batch.
  size_t Count = 0, Position = 0;
  while ((Position = IR.find("axirt.start_send", Position)) !=
         std::string::npos) {
    ++Count;
    Position += 4;
  }
  EXPECT_EQ(Count, 2u);
}

} // namespace
