//===- PipelineTest.cpp - End-to-end pipeline integration tests -----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the full AXI4MLIR flow: linalg -> annotate ->
/// tile/permute/place -> runtime calls -> execution on the simulated SoC,
/// with numerics validated against the reference kernels for every
/// accelerator version and dataflow the paper evaluates.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using Version = sim::MatMulAccelerator::Version;

namespace {

MatMulRunConfig makeConfig(int64_t Dims, Version Ver, int64_t Size,
                           const std::string &Flow) {
  MatMulRunConfig Config;
  Config.M = Config.N = Config.K = Dims;
  Config.Version = Ver;
  Config.AccelSize = Size;
  Config.Flow = Flow;
  return Config;
}

TEST(Pipeline, V1NsSmall) {
  RunResult Result = runMatMulAxi4mlir(makeConfig(16, Version::V1, 4, "Ns"));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
  EXPECT_GT(Result.Report.TaskClockMs, 0.0);
}

TEST(Pipeline, V2AllFlows) {
  for (const char *Flow : {"Ns", "As", "Bs"}) {
    RunResult Result =
        runMatMulAxi4mlir(makeConfig(32, Version::V2, 8, Flow));
    ASSERT_TRUE(Result.Ok) << Flow << ": " << Result.Error;
    EXPECT_TRUE(Result.NumericsMatch) << Flow << ": " << Result.Error;
  }
}

TEST(Pipeline, V3AllFlows) {
  for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
    RunResult Result =
        runMatMulAxi4mlir(makeConfig(32, Version::V3, 8, Flow));
    ASSERT_TRUE(Result.Ok) << Flow << ": " << Result.Error;
    EXPECT_TRUE(Result.NumericsMatch) << Flow << ": " << Result.Error;
  }
}

TEST(Pipeline, V4FlexibleTiles) {
  MatMulRunConfig Config = makeConfig(0, Version::V4, 16, "Cs");
  Config.M = 64;
  Config.N = 32;
  Config.K = 128;
  Config.TileM = 32;
  Config.TileN = 16;
  Config.TileK = 64;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, PartialTilesPadMatchesReference) {
  // The acceptance shape: 100x36x52 on the 16-tile engine, zero-padded
  // partial tiles with masked write-back.
  MatMulRunConfig Config = makeConfig(0, Version::V3, 16, "Ns");
  Config.M = 100;
  Config.N = 36;
  Config.K = 52;
  Config.Remainder = transforms::RemainderMode::Pad;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
  EXPECT_EQ(Result.SelectedAccelerator, "matmul_v3_16");
}

TEST(Pipeline, PartialTilesPeelMatchesReference) {
  MatMulRunConfig Config = makeConfig(0, Version::V3, 16, "Ns");
  Config.M = 100;
  Config.N = 36;
  Config.K = 52;
  Config.Remainder = transforms::RemainderMode::Peel;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, PartialTilesAllFlowsBothStrategies) {
  for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
    for (transforms::RemainderMode Mode :
         {transforms::RemainderMode::Pad, transforms::RemainderMode::Peel}) {
      MatMulRunConfig Config = makeConfig(0, Version::V3, 8, Flow);
      Config.M = 20;
      Config.N = 12;
      Config.K = 28;
      Config.Remainder = Mode;
      RunResult Result = runMatMulAxi4mlir(Config);
      ASSERT_TRUE(Result.Ok)
          << Flow << "/" << transforms::remainderModeName(Mode) << ": "
          << Result.Error;
      EXPECT_TRUE(Result.NumericsMatch)
          << Flow << "/" << transforms::remainderModeName(Mode) << ": "
          << Result.Error;
    }
  }
}

TEST(Pipeline, PartialTilesV1CombinedOpcode) {
  // v1 ships A and B in one combined burst; padding must keep the burst
  // at the full expected size.
  MatMulRunConfig Config = makeConfig(0, Version::V1, 4, "Ns");
  Config.M = 10;
  Config.N = 7;
  Config.K = 9;
  Config.Remainder = transforms::RemainderMode::Pad;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, PartialTilesWithCpuTilingEnabled) {
  MatMulRunConfig Config = makeConfig(0, Version::V3, 16, "As");
  Config.M = 100;
  Config.N = 36;
  Config.K = 52;
  Config.CpuTiling = true;
  Config.Remainder = transforms::RemainderMode::Pad;
  RunResult Result = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, RejectModeReproducesLegacyError) {
  MatMulRunConfig Config = makeConfig(30, Version::V3, 8, "Ns");
  Config.Remainder = transforms::RemainderMode::Reject;
  RunResult Result = runMatMulAxi4mlir(Config);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("divisible"), std::string::npos)
      << Result.Error;
}

TEST(Pipeline, ConvOddShapeMatchesReference) {
  // Odd channel counts and an odd input size: the conv engine's plan
  // (per-element host loops + full-extent dims) has no partial tiles,
  // so any shape must run through the plan layer unchanged.
  ConvRunConfig Config;
  Config.InChannels = 3;
  Config.InHW = 13;
  Config.OutChannels = 5;
  Config.FilterHW = 3;
  Config.Stride = 2;
  RunResult Result = runConvAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, CpuOnlyMatchesReference) {
  RunResult Result = runMatMulCpuOnly(makeConfig(24, Version::V1, 4, "Ns"));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch);
  EXPECT_EQ(Result.Report.DmaTransfers, 0u);
}

TEST(Pipeline, ManualMatchesReference) {
  for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
    RunResult Result = runMatMulManual(makeConfig(32, Version::V3, 8, Flow));
    ASSERT_TRUE(Result.Ok) << Flow << ": " << Result.Error;
    EXPECT_TRUE(Result.NumericsMatch) << Flow;
  }
}

TEST(Pipeline, ConvAxi4mlirMatchesReference) {
  ConvRunConfig Config;
  Config.InChannels = 8;
  Config.InHW = 12;
  Config.OutChannels = 4;
  Config.FilterHW = 3;
  Config.Stride = 1;
  RunResult Result = runConvAxi4mlir(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, ConvManualMatchesReference) {
  ConvRunConfig Config;
  Config.InChannels = 8;
  Config.InHW = 12;
  Config.OutChannels = 4;
  Config.FilterHW = 3;
  Config.Stride = 2;
  RunResult Result = runConvManual(Config);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.NumericsMatch) << Result.Error;
}

TEST(Pipeline, SpecializationOnlyChangesPerformance) {
  MatMulRunConfig Config = makeConfig(32, Version::V3, 8, "As");
  Config.SpecializeCopies = true;
  RunResult Fast = runMatMulAxi4mlir(Config);
  Config.SpecializeCopies = false;
  RunResult Slow = runMatMulAxi4mlir(Config);
  ASSERT_TRUE(Fast.Ok) << Fast.Error;
  ASSERT_TRUE(Slow.Ok) << Slow.Error;
  EXPECT_TRUE(Fast.NumericsMatch);
  EXPECT_TRUE(Slow.NumericsMatch);
  // The unspecialized copies execute more instructions and branches.
  EXPECT_GT(Slow.Report.Instructions, Fast.Report.Instructions);
  EXPECT_GT(Slow.Report.BranchInstructions,
            Fast.Report.BranchInstructions);
}

} // namespace
