//===- SimTest.cpp - Simulator substrate unit tests -----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/SoC.h"

#include <gtest/gtest.h>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

namespace {

//===----------------------------------------------------------------------===//
// Cache simulator
//===----------------------------------------------------------------------===//

TEST(CacheSim, HitAfterMiss) {
  SoCParams Params;
  CacheSim Cache(Params);
  uint64_t Penalty1 = Cache.access(0x1000, 4);
  EXPECT_GT(Penalty1, 0u); // cold miss
  uint64_t Penalty2 = Cache.access(0x1004, 4);
  EXPECT_EQ(Penalty2, 0u); // same line
  EXPECT_EQ(Cache.getReferences(), 2u);
  EXPECT_EQ(Cache.getL1Misses(), 1u);
  EXPECT_EQ(Cache.getL2Misses(), 1u);
}

TEST(CacheSim, L2CatchesL1Evictions) {
  SoCParams Params;
  CacheSim Cache(Params);
  // Touch more lines than L1 holds but fewer than L2: second pass should
  // hit in L2 only.
  int64_t Lines = Params.L1SizeBytes / Params.CacheLineBytes * 2;
  for (int64_t I = 0; I < Lines; ++I)
    Cache.access(static_cast<uint64_t>(I) * Params.CacheLineBytes, 4);
  uint64_t L2MissesBefore = Cache.getL2Misses();
  for (int64_t I = 0; I < Lines; ++I)
    Cache.access(static_cast<uint64_t>(I) * Params.CacheLineBytes, 4);
  EXPECT_EQ(Cache.getL2Misses(), L2MissesBefore); // all L2 hits
  EXPECT_GT(Cache.getL1Misses(), static_cast<uint64_t>(Lines));
}

TEST(CacheSim, LruKeepsHotLine) {
  SoCParams Params;
  CacheSim Cache(Params);
  uint64_t SetStride =
      static_cast<uint64_t>(Params.L1SizeBytes / Params.L1Associativity);
  // Fill all 4 ways of set 0, re-touching line 0 to keep it MRU.
  Cache.access(0, 4);
  for (int64_t Way = 1; Way < Params.L1Associativity; ++Way) {
    Cache.access(static_cast<uint64_t>(Way) * SetStride, 4);
    Cache.access(0, 4);
  }
  // One more conflicting line evicts the LRU way — not line 0.
  Cache.access(static_cast<uint64_t>(Params.L1Associativity) * SetStride,
               4);
  uint64_t Misses = Cache.getL1Misses();
  Cache.access(0, 4);
  EXPECT_EQ(Cache.getL1Misses(), Misses); // still resident
}

TEST(CacheSim, RangeTouchesEachLineOnce) {
  SoCParams Params;
  CacheSim Cache(Params);
  Cache.accessRange(0, 256); // 4 lines of 64B
  EXPECT_EQ(Cache.getReferences(), 4u);
  Cache.reset();
  EXPECT_EQ(Cache.getReferences(), 0u);
  Cache.access(63, 4); // straddles two lines
  EXPECT_EQ(Cache.getReferences(), 2u);
}

//===----------------------------------------------------------------------===//
// Perf model
//===----------------------------------------------------------------------===//

TEST(PerfModel, CountersAccumulate) {
  SoCParams Params;
  HostPerfModel Perf(Params);
  Perf.onScalarLoad(0x100, 4);
  Perf.onScalarStore(0x200, 4);
  Perf.onBranch();
  Perf.onLoopIteration();
  Perf.onArith(3);
  PerfReport R = Perf.report();
  EXPECT_EQ(R.Loads, 1u);
  EXPECT_EQ(R.Stores, 1u);
  EXPECT_EQ(R.BranchInstructions, 2u); // explicit + loop backedge
  EXPECT_EQ(R.L1DAccesses, 2u);
  EXPECT_GT(R.Instructions, 6u);
  EXPECT_GT(R.TaskClockMs, 0.0);
  Perf.reset();
  EXPECT_EQ(Perf.report().Instructions, 0u);
}

TEST(PerfModel, MemcpyCheaperThanElementwise) {
  SoCParams Params;
  HostPerfModel A(Params), B(Params);
  // 64 elements x 4B.
  for (int I = 0; I < 64; ++I) {
    A.onScalarLoad(0x1000 + I * 4, 4);
    A.onScalarStore(0x8000 + I * 4, 4);
    A.onBranch();
  }
  B.onMemcpy(0x8000, 0x1000, 256);
  EXPECT_LT(B.report().Instructions, A.report().Instructions);
  EXPECT_LT(B.report().BranchInstructions,
            A.report().BranchInstructions);
}

TEST(PerfModel, TaskClockCombinesDomains) {
  SoCParams Params;
  HostPerfModel Perf(Params);
  Perf.onHostCycles(650000); // 1 ms of host work
  Perf.onFabricCycles(200000); // 1 ms of fabric work
  EXPECT_NEAR(Perf.report().TaskClockMs, 2.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// MatMul accelerators
//===----------------------------------------------------------------------===//

/// Streams a full tile through a v1 engine and checks the product.
TEST(MatMulAccel, V1ComputesTile) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V1, 4, ElemKind::I32,
                          Params);
  Accel.consumeWord(MM_SASBCCRC);
  // A = all 2s, B = identity.
  for (int I = 0; I < 16; ++I)
    Accel.consumeWord(2);
  for (int R = 0; R < 4; ++R)
    for (int C = 0; C < 4; ++C)
      Accel.consumeWord(R == C ? 1 : 0);
  ASSERT_EQ(Accel.outputAvailable(), 16u);
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_EQ(static_cast<int32_t>(Word), 2);
  EXPECT_FALSE(Accel.hadError());
  EXPECT_EQ(Accel.getTilesComputed(), 1u);
  // Table I throughput: 2*4^3/10 = 12.8 cycles.
  EXPECT_NEAR(Accel.takeComputeCycles(), 12.8, 1e-9);
}

TEST(MatMulAccel, V3AccumulatesAcrossCompute) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                          Params);
  auto sendTile = [&](uint32_t Opcode, int32_t Value) {
    Accel.consumeWord(Opcode);
    for (int I = 0; I < 16; ++I)
      Accel.consumeWord(static_cast<uint32_t>(Value));
  };
  sendTile(MM_SA, 1);
  sendTile(MM_SB, 1);
  Accel.consumeWord(MM_CC); // C += 4 per element
  Accel.consumeWord(MM_CC); // C += 4 again (output stationary)
  Accel.consumeWord(MM_RC);
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_EQ(static_cast<int32_t>(Word), 8);
  // rC cleared the accumulator.
  Accel.consumeWord(MM_RC);
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_EQ(static_cast<int32_t>(Word), 0);
  EXPECT_FALSE(Accel.hadError());
}

TEST(MatMulAccel, V2InputStationary) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V2, 4, ElemKind::I32,
                          Params);
  Accel.consumeWord(MM_SA);
  for (int I = 0; I < 16; ++I)
    Accel.consumeWord(3);
  // Two B tiles against the stationary A.
  for (int Round = 0; Round < 2; ++Round) {
    Accel.consumeWord(MM_SB);
    for (int R = 0; R < 4; ++R)
      for (int C = 0; C < 4; ++C)
        Accel.consumeWord(R == C ? 1 : 0);
    Accel.consumeWord(MM_CC_RC);
    for (uint32_t Word : Accel.drainOutput(16))
      EXPECT_EQ(static_cast<int32_t>(Word), 3);
  }
  EXPECT_FALSE(Accel.hadError());
  EXPECT_EQ(Accel.getTilesComputed(), 2u);
}

TEST(MatMulAccel, VersionOpcodeRestrictions) {
  SoCParams Params;
  MatMulAccelerator V1(MatMulAccelerator::Version::V1, 4, ElemKind::I32,
                       Params);
  V1.consumeWord(MM_SA); // v1 does not support split loads
  EXPECT_TRUE(V1.hadError());

  MatMulAccelerator V2(MatMulAccelerator::Version::V2, 4, ElemKind::I32,
                       Params);
  V2.consumeWord(MM_CC); // v2 has no separate compute opcode
  EXPECT_TRUE(V2.hadError());

  MatMulAccelerator V3(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                       Params);
  V3.consumeWord(MM_CFG); // only v4 is runtime-configurable
  EXPECT_TRUE(V3.hadError());
}

TEST(MatMulAccel, V4Reconfigures) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V4, 16,
                          ElemKind::I32, Params);
  Accel.consumeWord(MM_CFG);
  Accel.consumeWord(8);  // tM
  Accel.consumeWord(32); // tK
  Accel.consumeWord(4);  // tN
  EXPECT_FALSE(Accel.hadError());
  EXPECT_EQ(Accel.getTileM(), 8);
  EXPECT_EQ(Accel.getTileK(), 32);
  EXPECT_EQ(Accel.getTileN(), 4);

  Accel.consumeWord(MM_SA);
  for (int I = 0; I < 8 * 32; ++I)
    Accel.consumeWord(1);
  Accel.consumeWord(MM_SB);
  for (int I = 0; I < 32 * 4; ++I)
    Accel.consumeWord(1);
  Accel.consumeWord(MM_CC);
  Accel.consumeWord(MM_RC);
  ASSERT_EQ(Accel.outputAvailable(), 32u);
  for (uint32_t Word : Accel.drainOutput(32))
    EXPECT_EQ(static_cast<int32_t>(Word), 32); // sum over tK
}

TEST(MatMulAccel, V4RejectsOversizedTiles) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V4, 16,
                          ElemKind::I32, Params);
  Accel.consumeWord(MM_CFG);
  Accel.consumeWord(10000);
  Accel.consumeWord(10000);
  Accel.consumeWord(10000);
  EXPECT_TRUE(Accel.hadError());
}

TEST(MatMulAccel, FloatData) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V1, 4, ElemKind::F32,
                          Params);
  Accel.consumeWord(MM_SASBCCRC);
  for (int I = 0; I < 16; ++I)
    Accel.consumeWord(floatToWord(0.5f));
  for (int R = 0; R < 4; ++R)
    for (int C = 0; C < 4; ++C)
      Accel.consumeWord(floatToWord(R == C ? 2.0f : 0.0f));
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_FLOAT_EQ(wordToFloat(Word), 1.0f);
}

TEST(MatMulAccel, ResetClearsState) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                          Params);
  Accel.consumeWord(MM_SA);
  for (int I = 0; I < 16; ++I)
    Accel.consumeWord(7);
  Accel.consumeWord(MM_RESET);
  Accel.consumeWord(MM_SB);
  for (int I = 0; I < 16; ++I)
    Accel.consumeWord(1);
  Accel.consumeWord(MM_CC);
  Accel.consumeWord(MM_RC);
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_EQ(static_cast<int32_t>(Word), 0); // A was cleared
}

//===----------------------------------------------------------------------===//
// Conv accelerator
//===----------------------------------------------------------------------===//

TEST(ConvAccel, ComputesWindows) {
  SoCParams Params;
  ConvAccelerator Accel(ElemKind::I32, Params);
  Accel.consumeWord(CONV_SET_FS);
  Accel.consumeWord(2); // 2x2 filter
  Accel.consumeWord(CONV_SET_IC);
  Accel.consumeWord(3); // 3 channels
  EXPECT_EQ(Accel.getFilterSize(), 2);
  EXPECT_EQ(Accel.getInputChannels(), 3);

  Accel.consumeWord(CONV_SF);
  for (int I = 0; I < 12; ++I)
    Accel.consumeWord(1); // all-ones filter
  // Two windows.
  for (int W = 0; W < 2; ++W) {
    Accel.consumeWord(CONV_SICO);
    for (int I = 0; I < 12; ++I)
      Accel.consumeWord(static_cast<uint32_t>(W + 1));
  }
  Accel.consumeWord(CONV_RO);
  auto Out = Accel.drainOutput(2);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(static_cast<int32_t>(Out[0]), 12);
  EXPECT_EQ(static_cast<int32_t>(Out[1]), 24);
  EXPECT_FALSE(Accel.hadError());
  EXPECT_EQ(Accel.getWindowsComputed(), 2u);
}

TEST(ConvAccel, RejectsOversizedWindows) {
  SoCParams Params;
  ConvAccelerator Accel(ElemKind::I32, Params, /*MaxWindowWords=*/64);
  Accel.consumeWord(CONV_SET_FS);
  Accel.consumeWord(3);
  Accel.consumeWord(CONV_SET_IC);
  Accel.consumeWord(100); // 100*9 > 64
  EXPECT_TRUE(Accel.hadError());
}

TEST(ConvAccel, UnknownOpcode) {
  SoCParams Params;
  ConvAccelerator Accel(ElemKind::I32, Params);
  Accel.consumeWord(0xDEAD);
  EXPECT_TRUE(Accel.hadError());
}

//===----------------------------------------------------------------------===//
// DMA engine
//===----------------------------------------------------------------------===//

TEST(DmaEngine, TransfersAndAccounting) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V1, 4);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 4096;
  Config.OutputBufferSize = 4096;
  Soc->dma().init(Config);
  ASSERT_TRUE(Soc->dma().isInitialized());

  uint32_t *In = Soc->dma().inputRegion();
  In[0] = MM_SASBCCRC;
  for (int I = 0; I < 32; ++I)
    In[1 + I] = 1;
  Soc->dma().startSend(33, 0);
  Soc->dma().waitSendCompletion();
  Soc->dma().startRecv(16, 0);
  Soc->dma().waitRecvCompletion();
  EXPECT_FALSE(Soc->dma().hadError()) << Soc->dma().errorMessage();
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(static_cast<int32_t>(Soc->dma().outputRegion()[I]), 4);

  PerfReport R = Soc->report();
  EXPECT_EQ(R.DmaTransfers, 2u);
  EXPECT_EQ(R.DmaBytesMoved, (33u + 16u) * 4u);
  EXPECT_GT(R.FabricCycles, 0.0);
}

// Formerly Release-stripped asserts: using the DMA engine before
// dma_init must surface as a diagnosable Fatal error in every build type.
TEST(DmaEngine, UseBeforeInitSignalsError) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V1, 4);
  ASSERT_FALSE(Soc->dma().isInitialized());
  EXPECT_EQ(Soc->dma().startSend(4, 0), AccelStatus::Fatal);
  EXPECT_TRUE(Soc->dma().hadError());
  EXPECT_EQ(Soc->dma().errorMessage(),
            "dma: dma_start_send before dma_init");

  auto Soc2 = makeMatMulSoC(MatMulAccelerator::Version::V1, 4);
  EXPECT_EQ(Soc2->dma().startRecv(4, 0), AccelStatus::Fatal);
  EXPECT_TRUE(Soc2->dma().hadError());
  EXPECT_EQ(Soc2->dma().errorMessage(),
            "dma: dma_start_recv before dma_init");
}

// The burst plumbing is protected so the defensive protocol-violation
// paths (formerly Release-invisible asserts) stay pinned.
struct ProbeMatMul : MatMulAccelerator {
  using MatMulAccelerator::MatMulAccelerator;
  using MatMulAccelerator::copyIn;
  using MatMulAccelerator::finishBurst;
};

TEST(MatMulAccel, CopyInInIdleSignalsError) {
  SoCParams Params;
  ProbeMatMul Accel(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                    Params);
  uint32_t Word = 7;
  Accel.copyIn(&Word, 1);
  EXPECT_TRUE(Accel.hadError());
  EXPECT_EQ(Accel.status(), AccelStatus::Fatal);
  EXPECT_NE(Accel.errorMessage().find("copyIn in Idle state"),
            std::string::npos)
      << Accel.errorMessage();
}

TEST(MatMulAccel, FinishBurstInIdleSignalsError) {
  SoCParams Params;
  ProbeMatMul Accel(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                    Params);
  Accel.finishBurst();
  EXPECT_TRUE(Accel.hadError());
  EXPECT_NE(Accel.errorMessage().find("finishBurst in Idle state"),
            std::string::npos)
      << Accel.errorMessage();
}

// Error bookkeeping: the count is monotone and both the first (root
// cause) and most recent message survive a cascade.
TEST(MatMulAccel, ErrorCountRetainsFirstAndLastMessage) {
  SoCParams Params;
  ProbeMatMul Accel(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                    Params);
  EXPECT_EQ(Accel.errorCount(), 0u);
  uint32_t Word = 7;
  Accel.copyIn(&Word, 1); // first error
  Accel.finishBurst();    // cascading second error
  EXPECT_EQ(Accel.errorCount(), 2u);
  EXPECT_NE(Accel.errorMessage().find("copyIn in Idle state"),
            std::string::npos)
      << Accel.errorMessage();
  EXPECT_NE(Accel.lastErrorMessage().find("finishBurst in Idle state"),
            std::string::npos)
      << Accel.lastErrorMessage();
  // A full reset clears the bookkeeping.
  Accel.reset();
  EXPECT_EQ(Accel.errorCount(), 0u);
  EXPECT_TRUE(Accel.errorMessage().empty());
  EXPECT_TRUE(Accel.lastErrorMessage().empty());
}

TEST(DmaEngine, OverflowAndUnderflowErrors) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V1, 4);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 64; // 16 words
  Config.OutputBufferSize = 64;
  Soc->dma().init(Config);
  Soc->dma().startSend(1000, 0); // exceeds the input region
  EXPECT_TRUE(Soc->dma().hadError());

  auto Soc2 = makeMatMulSoC(MatMulAccelerator::Version::V1, 4);
  Soc2->dma().init(Config);
  Soc2->dma().startRecv(4, 0); // accelerator produced nothing
  EXPECT_TRUE(Soc2->dma().hadError());
}

} // namespace

namespace {

// Fused single-opcode variants (sAcCrC / sBcCrC) used by the As/Bs flows
// of simpler engines: load one input, compute against the stationary
// other input, and emit C in a single burst.
TEST(MatMulAccel, FusedComputeOpcodes) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V3, 4, ElemKind::I32,
                          Params);
  // Stationary A = 2*I.
  Accel.consumeWord(MM_SA);
  for (int R = 0; R < 4; ++R)
    for (int C = 0; C < 4; ++C)
      Accel.consumeWord(R == C ? 2 : 0);
  // sBcCrC: stream B, compute, emit.
  Accel.consumeWord(MM_SB_CC_RC);
  for (int I = 0; I < 16; ++I)
    Accel.consumeWord(3);
  ASSERT_EQ(Accel.outputAvailable(), 16u);
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_EQ(static_cast<int32_t>(Word), 6);
  // sAcCrC with the B still loaded: stream a fresh A, compute, emit.
  Accel.consumeWord(MM_SA_CC_RC);
  for (int R = 0; R < 4; ++R)
    for (int C = 0; C < 4; ++C)
      Accel.consumeWord(R == C ? 1 : 0);
  for (uint32_t Word : Accel.drainOutput(16))
    EXPECT_EQ(static_cast<int32_t>(Word), 3);
  EXPECT_FALSE(Accel.hadError());
}

TEST(ConvAccel, FilterReloadStartsFreshSlice) {
  SoCParams Params;
  ConvAccelerator Accel(ElemKind::I32, Params);
  Accel.consumeWord(CONV_SET_FS);
  Accel.consumeWord(1);
  Accel.consumeWord(CONV_SET_IC);
  Accel.consumeWord(2);
  auto window = [&](int32_t V) {
    Accel.consumeWord(CONV_SICO);
    Accel.consumeWord(static_cast<uint32_t>(V));
    Accel.consumeWord(static_cast<uint32_t>(V));
  };
  Accel.consumeWord(CONV_SF);
  Accel.consumeWord(1);
  Accel.consumeWord(1);
  window(5); // slice 0 accumulates one value (10)
  // Loading the next filter discards the un-drained slice.
  Accel.consumeWord(CONV_SF);
  Accel.consumeWord(2);
  Accel.consumeWord(2);
  window(3); // 3*2 + 3*2 = 12
  Accel.consumeWord(CONV_RO);
  auto Out = Accel.drainOutput(8);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(static_cast<int32_t>(Out[0]), 12);
}

} // namespace
