//===- RoundTripTest.cpp - print/parse round-trip properties --------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The round-trip property `print(parse(print(M))) == print(M)` — the
/// classic lever for flushing out printer and parser bugs — asserted for
/// every programmatic workload builder at every pipeline stage (input,
/// generic, annotated, accel-level, fully lowered axirt), plus:
///
///   * interpreter equivalence: a reparsed fully-lowered driver produces
///     bit-identical result buffers AND identical perf counters;
///   * the checked-in examples/*.mlir files parse, are printer-exact
///     (file minus comments == printed form), and drive the pipeline;
///   * printer-hardening regressions: string escaping, float precision,
///     deterministic attribute order.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "ir/Parser.h"
#include "runtime/DmaRuntime.h"
#include "transforms/Passes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

using namespace axi4mlir;
using V = sim::MatMulAccelerator::Version;

namespace {

/// Asserts the fixpoint property: parsing the printed form succeeds and
/// reprints identically.
void expectRoundTrip(MLIRContext &Context, Operation *Op,
                     const std::string &Label) {
  std::string Printed = Op->str();
  std::string Error;
  auto Reparsed = parseSourceString(Printed, &Context, &Error);
  ASSERT_TRUE(succeeded(Reparsed)) << Label << ": " << Error;
  EXPECT_EQ(Printed, (*Reparsed)->str())
      << Label << ": printed form is not a fixpoint";
}

/// Round-trips one matmul workload at every pipeline stage.
void roundTripMatMulStages(V Version, int64_t Size, const std::string &Flow,
                           int64_t M, int64_t N, int64_t K,
                           sim::ElemKind Kind) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = exec::buildMatMulFunc(Builder, M, N, K, Kind);
  OwningOpRef Owner(Func.getOperation());
  std::string Label = "matmul v" + std::to_string(static_cast<int>(Version) +
                                                  1) +
                      " " + Flow;
  expectRoundTrip(Context, Func.getOperation(), Label + " input");

  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(Version, Size, Flow));
  std::string Error;
  ASSERT_TRUE(succeeded(transforms::convertNamedToGeneric(Func, Error)))
      << Error;
  expectRoundTrip(Context, Func.getOperation(), Label + " generic");
  ASSERT_TRUE(succeeded(transforms::matchAndAnnotate(Func, Accel, Error)))
      << Error;
  expectRoundTrip(Context, Func.getOperation(), Label + " annotated");
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  ASSERT_TRUE(succeeded(transforms::lowerToAccel(Func, Options, Error)))
      << Error;
  expectRoundTrip(Context, Func.getOperation(), Label + " accel");
  ASSERT_TRUE(succeeded(transforms::convertAccelToRuntime(Func, Error))) << Error;
  expectRoundTrip(Context, Func.getOperation(), Label + " axirt");
}

TEST(RoundTrip, MatMulAllVersionsAllStages) {
  roundTripMatMulStages(V::V1, 4, "Ns", 8, 8, 8, sim::ElemKind::I32);
  roundTripMatMulStages(V::V2, 4, "Ns", 12, 8, 8, sim::ElemKind::I32);
  roundTripMatMulStages(V::V3, 4, "As", 60, 72, 80, sim::ElemKind::I32);
  roundTripMatMulStages(V::V3, 4, "Bs", 12, 12, 12, sim::ElemKind::F32);
  roundTripMatMulStages(V::V4, 8, "Cs", 16, 16, 16, sim::ElemKind::I32);
}

TEST(RoundTrip, ConvAllStages) {
  for (sim::ElemKind Kind : {sim::ElemKind::I32, sim::ElemKind::F32}) {
    for (int64_t Stride : {int64_t(1), int64_t(2)}) {
      MLIRContext Context;
      registerAllDialects(Context);
      OpBuilder Builder(&Context);
      func::FuncOp Func =
          exec::buildConvFunc(Builder, 1, 4, 10, 8, 3, Stride, Kind);
      OwningOpRef Owner(Func.getOperation());
      expectRoundTrip(Context, Func.getOperation(), "conv input");

      parser::AcceleratorDesc Accel =
          exec::parseSingleAccelerator(exec::makeConvConfigJson());
      std::string Error;
      transforms::LoweringOptions ConvOptions;
      ConvOptions.EnableCpuTiling = false;
      transforms::PassManager Pipeline =
          transforms::buildPipeline(Accel, ConvOptions);
      ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;
      expectRoundTrip(Context, Func.getOperation(), "conv lowered");
    }
  }
}

/// CPU-tiled path: exercises scf.for + memref.subview + linalg.generic with
/// partial-tile handling in the printed IR.
TEST(RoundTrip, PadAndPeelRemainders) {
  for (transforms::RemainderMode Mode :
       {transforms::RemainderMode::Pad, transforms::RemainderMode::Peel}) {
    MLIRContext Context;
    registerAllDialects(Context);
    OpBuilder Builder(&Context);
    func::FuncOp Func =
        exec::buildMatMulFunc(Builder, 10, 6, 7, sim::ElemKind::I32);
    OwningOpRef Owner(Func.getOperation());
    parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
        exec::makeMatMulConfigJson(V::V3, 4, "Ns"));
    transforms::LoweringOptions Options;
    Options.Remainder = Mode;
    std::string Error;
    transforms::PassManager Pipeline =
        transforms::buildPipeline(Accel, Options);
    ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;
    expectRoundTrip(Context, Func.getOperation(),
                    Mode == transforms::RemainderMode::Pad ? "pad" : "peel");
  }
}

/// Runs a lowered driver and its reparsed twin on identical inputs; the
/// result buffer and every perf counter must agree.
TEST(RoundTrip, ReparsedDriverExecutesIdentically) {
  struct Case {
    V Version;
    int64_t Size, M, N, K;
    const char *Flow;
  } Cases[] = {
      {V::V1, 4, 8, 8, 8, "Ns"},
      {V::V2, 4, 8, 12, 8, "Ns"},
      {V::V3, 4, 12, 12, 12, "As"},
      {V::V4, 4, 8, 8, 12, "Cs"},
  };
  for (const Case &C : Cases) {
    MLIRContext Context;
    registerAllDialects(Context);
    OpBuilder Builder(&Context);
    func::FuncOp Func =
        exec::buildMatMulFunc(Builder, C.M, C.N, C.K, sim::ElemKind::I32);
    OwningOpRef Owner(Func.getOperation());
    parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
        exec::makeMatMulConfigJson(C.Version, C.Size, C.Flow));
    std::string Error;
    transforms::PassManager Pipeline =
        transforms::buildPipeline(Accel, transforms::LoweringOptions());
    ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << Error;

    auto Reparsed =
        parseSourceString(Func.getOperation()->str(), &Context, &Error);
    ASSERT_TRUE(succeeded(Reparsed)) << Error;

    auto runOne = [&](Operation *Op,
                      std::vector<runtime::MemRefDesc> &Args) {
      auto Soc =
          sim::makeMatMulSoC(C.Version, C.Size, sim::ElemKind::I32);
      runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
      exec::Interpreter Interp(*Soc, &Runtime);
      std::string ExecError;
      EXPECT_TRUE(
          succeeded(Interp.run(func::FuncOp(Op), Args, ExecError)))
          << ExecError;
      return Soc->report().summary();
    };
    std::vector<runtime::MemRefDesc> Original, Twin;
    std::vector<std::pair<int64_t, int64_t>> Shapes = {
        {C.M, C.K}, {C.K, C.N}, {C.M, C.N}};
    for (size_t I = 0; I < Shapes.size(); ++I) {
      Original.push_back(runtime::MemRefDesc::alloc(
          {Shapes[I].first, Shapes[I].second}, sim::ElemKind::I32));
      exec::fillRandom(Original.back(), static_cast<uint32_t>(17 + I));
      Twin.push_back(exec::cloneMemRef(Original.back()));
    }
    EXPECT_EQ(runOne(Func.getOperation(), Original),
              runOne(Reparsed->get(), Twin))
        << "perf counters diverged after reparse";
    EXPECT_TRUE(exec::memrefEquals(Original[2], Twin[2]))
        << "result buffers diverged after reparse";
  }
}

//===----------------------------------------------------------------------===//
// Checked-in examples
//===----------------------------------------------------------------------===//

const char *ExampleFiles[] = {
    "matmul_v1.mlir", "matmul_v2.mlir", "matmul_v3.mlir",
    "matmul_v4.mlir", "conv2d.mlir",
};

/// The golden files are generated by the printer: stripping their comment
/// header must yield the printed form of the parsed IR, byte for byte.
TEST(RoundTrip, CheckedInExamplesArePrinterExact) {
  for (const char *Name : ExampleFiles) {
    std::string Path =
        std::string(AXI4MLIR_SOURCE_DIR) + "/examples/" + Name;
    MLIRContext Context;
    registerAllDialects(Context);
    std::string Error;
    auto Parsed = parseSourceFile(Path, &Context, &Error);
    ASSERT_TRUE(succeeded(Parsed)) << Error;
    expectRoundTrip(Context, Parsed->get(), Name);

    std::ifstream Stream(Path);
    ASSERT_TRUE(Stream.good()) << Path;
    std::string Line, WithoutComments;
    while (std::getline(Stream, Line)) {
      if (Line.rfind("//", 0) == 0)
        continue;
      WithoutComments += Line + "\n";
    }
    EXPECT_EQ(WithoutComments, (*Parsed)->str())
        << Name << " drifted from the printer's output";
  }
}

TEST(RoundTrip, CheckedInExamplesDriveThePipeline) {
  struct Case {
    const char *File;
    V Version;
    int64_t Size;
  } Cases[] = {
      {"matmul_v1.mlir", V::V1, 4},
      {"matmul_v2.mlir", V::V2, 4},
      {"matmul_v3.mlir", V::V3, 4},
      {"matmul_v4.mlir", V::V4, 16},
  };
  for (const Case &C : Cases) {
    MLIRContext Context;
    registerAllDialects(Context);
    std::string Error;
    auto Parsed = parseSourceFile(
        std::string(AXI4MLIR_SOURCE_DIR) + "/examples/" + C.File, &Context,
        &Error);
    ASSERT_TRUE(succeeded(Parsed)) << Error;
    func::FuncOp Func(Parsed->get());
    parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
        exec::makeMatMulConfigJson(C.Version, C.Size, "Ns"));
    transforms::PassManager Pipeline =
        transforms::buildPipeline(Accel, transforms::LoweringOptions());
    ASSERT_TRUE(succeeded(Pipeline.run(Func, Error))) << C.File << ": "
                                                      << Error;
    expectRoundTrip(Context, Func.getOperation(),
                    std::string(C.File) + " lowered");
  }
}

//===----------------------------------------------------------------------===//
// Printer hardening
//===----------------------------------------------------------------------===//

TEST(PrinterHardening, StringAttributesEscape) {
  MLIRContext Context;
  Attribute Attr = Attribute::getString("quote\" slash\\ nl\n tab\t \x01");
  std::string Printed = Attr.str();
  EXPECT_EQ(Printed, "\"quote\\\" slash\\\\ nl\\n tab\\t \\01\"");
}

TEST(PrinterHardening, FloatsSurviveReparsing) {
  for (double Value : {0.1, 1.0 / 3.0, 2.0, -0.0, 1e300, 5e-324,
                       123456789.123456789, -2.5}) {
    Attribute Attr = Attribute::getFloat(Value);
    MLIRContext Context;
    std::string Error;
    auto Op = parseSourceString("test.op() {v = " + Attr.str() +
                                    "} : () -> ()",
                                &Context, &Error,
                                ParserOptions{/*Verify=*/false});
    ASSERT_TRUE(succeeded(Op)) << Attr.str() << ": " << Error;
    Attribute Back = (*Op)->getAttr("v");
    ASSERT_EQ(Back.getKind(), Attribute::Kind::Float)
        << Attr.str() << " reparsed as a non-float";
    EXPECT_EQ(Back.getFloatValue(), Value) << "through " << Attr.str();
    // EXPECT_EQ cannot distinguish -0.0 from 0.0; pin the sign explicitly.
    EXPECT_EQ(std::signbit(Back.getFloatValue()), std::signbit(Value))
        << "sign lost through " << Attr.str();
  }
}

TEST(PrinterHardening, AttributeOrderIsDeterministic) {
  MLIRContext Context;
  auto makeOp = [&](bool Swapped) {
    Operation *Op = Operation::create(&Context, "test.op", {}, {});
    if (Swapped) {
      Op->setAttr("zeta", Attribute::getInteger(1));
      Op->setAttr("alpha", Attribute::getInteger(2));
    } else {
      Op->setAttr("alpha", Attribute::getInteger(2));
      Op->setAttr("zeta", Attribute::getInteger(1));
    }
    return Op;
  };
  Operation *A = makeOp(false);
  Operation *B = makeOp(true);
  EXPECT_EQ(A->str(), B->str());
  EXPECT_NE(A->str().find("{alpha = 2, zeta = 1}"), std::string::npos)
      << A->str();
  A->destroy();
  B->destroy();
}

} // namespace
