//===- DmaRuntime.cpp - DMA runtime library implementation ----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/DmaRuntime.h"

#include "runtime/StridedCopy.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::runtime;

void DmaRuntime::dmaInit(const accel::DmaInitConfig &Config) {
  Soc.dma().init(Config);
}

uint64_t DmaRuntime::regionAddress(bool Input, int64_t OffsetWords) const {
  const sim::DmaEngine &Dma = static_cast<const sim::SoC &>(Soc).dma();
  const uint32_t *Base = Input ? Dma.inputRegion() : Dma.outputRegion();
  return reinterpret_cast<uint64_t>(Base + OffsetWords);
}

/// Drops size-1 dimensions from a descriptor: the rank-specialization the
/// paper applies to "known rank sizes" (Sec. IV-B). A [1, iC, 1, 1] conv
/// window collapses to a rank-1 sweep, saving per-row recursion overhead.
static MemRefDesc collapseUnitDims(const MemRefDesc &Desc) {
  MemRefDesc Collapsed;
  Collapsed.Buffer = Desc.Buffer;
  Collapsed.Offset = Desc.Offset;
  for (unsigned I = 0; I < Desc.rank(); ++I) {
    if (Desc.Sizes[I] == 1)
      continue;
    Collapsed.Sizes.push_back(Desc.Sizes[I]);
    Collapsed.Strides.push_back(Desc.Strides[I]);
  }
  return Collapsed;
}

/// Rows shorter than this gain nothing from memcpy (call setup dominates);
/// the generic path handles them — this is why fHW==1 convolution layers
/// cannot leverage the specialization (paper Sec. IV-D).
static constexpr int64_t MinProfitableRowElements = 2;

static bool rowsAreProfitable(const MemRefDesc &Desc) {
  return Desc.innermostContiguous() &&
         (Desc.rank() == 0 ||
          Desc.Sizes.back() >= MinProfitableRowElements);
}

/// Row-major contiguous strides over \p Sizes: the layout of the DMA
/// staging regions. Written into \p Strides (MaxCopyRank capacity).
static void contiguousStrides(const std::vector<int64_t> &Sizes,
                              int64_t *Strides) {
  unsigned Rank = Sizes.size();
  assert(Rank <= detail::MaxCopyRank && "region copy rank beyond cap");
  int64_t Running = 1;
  for (unsigned I = Rank; I > 0; --I) {
    Strides[I - 1] = Running;
    Running *= Sizes[I - 1];
  }
}

int64_t DmaRuntime::copyToDmaRegion(const MemRefDesc &Source,
                                    int64_t OffsetWords) {
  // Diagnosable in every build type (was a Release-stripped assert that
  // left an out-of-bounds write behind).
  if (!Soc.dma().isInitialized()) {
    Soc.dma().signalError("dma: copy_to_dma_region before dma_init");
    return OffsetWords;
  }
  MemRefDesc Collapsed = collapseUnitDims(Source);
  int64_t RegionStrides[detail::MaxCopyRank];
  contiguousStrides(Collapsed.Sizes, RegionStrides);

  StridedCopyRequest Req;
  Req.Rank = Collapsed.rank();
  Req.Sizes = Collapsed.Sizes.data();
  Req.Src = {Collapsed.Buffer->Data.data() + Collapsed.Offset,
             Collapsed.addressOf(Collapsed.Offset),
             Collapsed.Strides.data()};
  Req.Dst = {Soc.dma().inputRegion() + OffsetWords,
             regionAddress(/*Input=*/true, OffsetWords), RegionStrides};
  Req.RowMemcpy = SpecializeCopies && rowsAreProfitable(Collapsed);
  stridedCopy(Soc.perf(), Req);
  return OffsetWords + Collapsed.numElements();
}

int64_t DmaRuntime::copyLiteralToDmaRegion(int32_t Literal,
                                           int64_t OffsetWords) {
  if (!Soc.dma().isInitialized()) {
    Soc.dma().signalError("dma: copy_literal_to_dma_region before dma_init");
    return OffsetWords;
  }
  Soc.dma().inputRegion()[OffsetWords] = static_cast<uint32_t>(Literal);
  Soc.perf().onScalarStore(regionAddress(/*Input=*/true, OffsetWords), 4);
  Soc.perf().onArith(1);
  return OffsetWords + 1;
}

sim::AccelStatus DmaRuntime::dmaStartSend(int64_t LengthWords,
                                          int64_t OffsetWords) {
  return Soc.dma().startSend(static_cast<size_t>(LengthWords),
                             static_cast<size_t>(OffsetWords));
}

sim::AccelStatus DmaRuntime::dmaWaitSendCompletion() {
  return Soc.dma().waitSendCompletion();
}

sim::AccelStatus DmaRuntime::dmaStartRecv(int64_t LengthWords,
                                          int64_t OffsetWords) {
  return Soc.dma().startRecv(static_cast<size_t>(LengthWords),
                             static_cast<size_t>(OffsetWords));
}

sim::AccelStatus DmaRuntime::dmaWaitRecvCompletion() {
  return Soc.dma().waitRecvCompletion();
}

void DmaRuntime::copyFromDmaRegion(const MemRefDesc &OriginalDest,
                                   int64_t OffsetWords, bool Accumulate) {
  if (!Soc.dma().isInitialized()) {
    Soc.dma().signalError("dma: copy_from_dma_region before dma_init");
    return;
  }
  MemRefDesc Dest = collapseUnitDims(OriginalDest);
  int64_t RegionStrides[detail::MaxCopyRank];
  contiguousStrides(Dest.Sizes, RegionStrides);

  StridedCopyRequest Req;
  Req.Rank = Dest.rank();
  Req.Sizes = Dest.Sizes.data();
  Req.Src = {Soc.dma().outputRegion() + OffsetWords,
             regionAddress(/*Input=*/false, OffsetWords), RegionStrides};
  Req.Dst = {Dest.Buffer->Data.data() + Dest.Offset,
             Dest.addressOf(Dest.Offset), Dest.Strides.data()};
  Req.Mode = !Accumulate ? CopyMode::Overwrite
             : Dest.kind() == sim::ElemKind::F32 ? CopyMode::AccumulateF32
                                                 : CopyMode::AccumulateI32;
  Req.RowMemcpy = SpecializeCopies && rowsAreProfitable(Dest);
  stridedCopy(Soc.perf(), Req);
}
