//===- DmaRuntime.cpp - DMA runtime library implementation ----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/DmaRuntime.h"

#include <cassert>
#include <functional>

using namespace axi4mlir;
using namespace axi4mlir::runtime;

void DmaRuntime::dmaInit(const accel::DmaInitConfig &Config) {
  Soc.dma().init(Config);
}

uint64_t DmaRuntime::regionAddress(bool Input, int64_t OffsetWords) const {
  sim::DmaEngine &Dma = const_cast<sim::SoC &>(Soc).dma();
  const uint32_t *Base = Input ? const_cast<sim::DmaEngine &>(Dma).inputRegion()
                               : const_cast<sim::DmaEngine &>(Dma).outputRegion();
  return reinterpret_cast<uint64_t>(Base + OffsetWords);
}

void DmaRuntime::copyElementwiseToRegion(const MemRefDesc &Source,
                                         std::vector<int64_t> &Indices,
                                         unsigned Dim, int64_t &OffsetWords) {
  sim::HostPerfModel &Perf = Soc.perf();
  if (Dim == Source.rank()) {
    // Leaf: one element. Loads/stores hit the cache model; the recursive
    // descent costs control flow per element (the bottleneck the paper
    // identifies in Sec. IV-B).
    int64_t Linear = Source.linearIndex(Indices);
    Perf.onScalarLoad(Source.addressOf(Linear), 4);
    Soc.dma().inputRegion()[OffsetWords] =
        Source.Buffer->Data[static_cast<size_t>(Linear)];
    Perf.onScalarStore(regionAddress(/*Input=*/true, OffsetWords), 4);
    Perf.onArith(2); // index arithmetic
    Perf.onBranch(); // rank/stride dispatch
    ++OffsetWords;
    return;
  }
  for (int64_t I = 0; I < Source.Sizes[Dim]; ++I) {
    Indices[Dim] = I;
    Perf.onLoopIteration();
    copyElementwiseToRegion(Source, Indices, Dim + 1, OffsetWords);
  }
  Perf.onArith(4); // call frame / recursion overhead per row
}

void DmaRuntime::copyRowsToRegion(const MemRefDesc &Source,
                                  std::vector<int64_t> &Indices, unsigned Dim,
                                  int64_t &OffsetWords) {
  sim::HostPerfModel &Perf = Soc.perf();
  if (Dim + 1 == Source.rank() || Source.rank() == 0) {
    // Copy one contiguous row with memcpy (vectorized by the compiler on
    // the real board; Sec. IV-B).
    int64_t RowElements = Source.rank() == 0 ? 1 : Source.Sizes[Dim];
    if (Source.rank() > 0)
      Indices[Dim] = 0;
    int64_t Linear = Source.linearIndex(Indices);
    uint64_t Bytes = static_cast<uint64_t>(RowElements) * 4;
    __builtin_memcpy(Soc.dma().inputRegion() + OffsetWords,
                     Source.Buffer->Data.data() + Linear, Bytes);
    Perf.onMemcpy(regionAddress(/*Input=*/true, OffsetWords),
                  Source.addressOf(Linear), Bytes);
    OffsetWords += RowElements;
    return;
  }
  for (int64_t I = 0; I < Source.Sizes[Dim]; ++I) {
    Indices[Dim] = I;
    Perf.onLoopIteration();
    copyRowsToRegion(Source, Indices, Dim + 1, OffsetWords);
  }
}

/// Drops size-1 dimensions from a descriptor: the rank-specialization the
/// paper applies to "known rank sizes" (Sec. IV-B). A [1, iC, 1, 1] conv
/// window collapses to a rank-1 sweep, saving per-row recursion overhead.
static MemRefDesc collapseUnitDims(const MemRefDesc &Desc) {
  MemRefDesc Collapsed;
  Collapsed.Buffer = Desc.Buffer;
  Collapsed.Offset = Desc.Offset;
  for (unsigned I = 0; I < Desc.rank(); ++I) {
    if (Desc.Sizes[I] == 1)
      continue;
    Collapsed.Sizes.push_back(Desc.Sizes[I]);
    Collapsed.Strides.push_back(Desc.Strides[I]);
  }
  return Collapsed;
}

/// Rows shorter than this gain nothing from memcpy (call setup dominates);
/// the generic path handles them — this is why fHW==1 convolution layers
/// cannot leverage the specialization (paper Sec. IV-D).
static constexpr int64_t MinProfitableRowElements = 2;

static bool rowsAreProfitable(const MemRefDesc &Desc) {
  return Desc.innermostContiguous() &&
         (Desc.rank() == 0 ||
          Desc.Sizes.back() >= MinProfitableRowElements);
}

int64_t DmaRuntime::copyToDmaRegion(const MemRefDesc &Source,
                                    int64_t OffsetWords) {
  assert(Soc.dma().isInitialized() && "copy before dma_init");
  MemRefDesc Collapsed = collapseUnitDims(Source);
  std::vector<int64_t> Indices(Collapsed.rank(), 0);
  int64_t Offset = OffsetWords;
  if (SpecializeCopies && rowsAreProfitable(Collapsed))
    copyRowsToRegion(Collapsed, Indices, 0, Offset);
  else
    copyElementwiseToRegion(Collapsed, Indices, 0, Offset);
  return Offset;
}

int64_t DmaRuntime::copyLiteralToDmaRegion(int32_t Literal,
                                           int64_t OffsetWords) {
  assert(Soc.dma().isInitialized() && "copy before dma_init");
  Soc.dma().inputRegion()[OffsetWords] = static_cast<uint32_t>(Literal);
  Soc.perf().onScalarStore(regionAddress(/*Input=*/true, OffsetWords), 4);
  Soc.perf().onArith(1);
  return OffsetWords + 1;
}

void DmaRuntime::dmaStartSend(int64_t LengthWords, int64_t OffsetWords) {
  Soc.dma().startSend(static_cast<size_t>(LengthWords),
                      static_cast<size_t>(OffsetWords));
}

void DmaRuntime::dmaWaitSendCompletion() { Soc.dma().waitSendCompletion(); }

void DmaRuntime::dmaStartRecv(int64_t LengthWords, int64_t OffsetWords) {
  Soc.dma().startRecv(static_cast<size_t>(LengthWords),
                      static_cast<size_t>(OffsetWords));
}

void DmaRuntime::dmaWaitRecvCompletion() { Soc.dma().waitRecvCompletion(); }

void DmaRuntime::copyElementwiseFromRegion(const MemRefDesc &Dest,
                                           std::vector<int64_t> &Indices,
                                           unsigned Dim, int64_t &OffsetWords,
                                           bool Accumulate) {
  sim::HostPerfModel &Perf = Soc.perf();
  if (Dim == Dest.rank()) {
    int64_t Linear = Dest.linearIndex(Indices);
    uint32_t Word = Soc.dma().outputRegion()[OffsetWords];
    Perf.onScalarLoad(regionAddress(/*Input=*/false, OffsetWords), 4);
    uint32_t &Slot = Dest.Buffer->Data[static_cast<size_t>(Linear)];
    if (Accumulate) {
      Perf.onScalarLoad(Dest.addressOf(Linear), 4);
      Perf.onArith(1);
      if (Dest.kind() == sim::ElemKind::F32)
        Slot = sim::floatToWord(sim::wordToFloat(Slot) +
                                sim::wordToFloat(Word));
      else
        Slot = static_cast<uint32_t>(static_cast<int32_t>(Slot) +
                                     static_cast<int32_t>(Word));
    } else {
      Slot = Word;
    }
    Perf.onScalarStore(Dest.addressOf(Linear), 4);
    Perf.onArith(2);
    Perf.onBranch();
    ++OffsetWords;
    return;
  }
  for (int64_t I = 0; I < Dest.Sizes[Dim]; ++I) {
    Indices[Dim] = I;
    Perf.onLoopIteration();
    copyElementwiseFromRegion(Dest, Indices, Dim + 1, OffsetWords,
                              Accumulate);
  }
  Perf.onArith(4);
}

void DmaRuntime::copyFromDmaRegion(const MemRefDesc &OriginalDest,
                                   int64_t OffsetWords, bool Accumulate) {
  assert(Soc.dma().isInitialized() && "copy before dma_init");
  sim::HostPerfModel &Perf = Soc.perf();
  MemRefDesc Dest = collapseUnitDims(OriginalDest);
  std::vector<int64_t> Indices(Dest.rank(), 0);
  int64_t Offset = OffsetWords;

  if (!SpecializeCopies || !rowsAreProfitable(Dest)) {
    copyElementwiseFromRegion(Dest, Indices, 0, Offset, Accumulate);
    return;
  }

  // Specialized path: process whole contiguous rows. Plain receives are a
  // memcpy; accumulating receives are a vectorized load-add-store sweep
  // (per-line cache references either way).
  unsigned Rank = Dest.rank();
  std::function<void(unsigned)> CopyRows = [&](unsigned Dim) {
    if (Dim + 1 == Rank || Rank == 0) {
      int64_t RowElements = Rank == 0 ? 1 : Dest.Sizes[Dim];
      if (Rank > 0)
        Indices[Dim] = 0;
      int64_t Linear = Dest.linearIndex(Indices);
      uint64_t Bytes = static_cast<uint64_t>(RowElements) * 4;
      uint32_t *Src = Soc.dma().outputRegion() + Offset;
      uint32_t *Dst = Dest.Buffer->Data.data() + Linear;
      if (!Accumulate) {
        __builtin_memcpy(Dst, Src, Bytes);
      } else if (Dest.kind() == sim::ElemKind::F32) {
        for (int64_t I = 0; I < RowElements; ++I)
          Dst[I] = sim::floatToWord(sim::wordToFloat(Dst[I]) +
                                    sim::wordToFloat(Src[I]));
      } else {
        for (int64_t I = 0; I < RowElements; ++I)
          Dst[I] = static_cast<uint32_t>(static_cast<int32_t>(Dst[I]) +
                                         static_cast<int32_t>(Src[I]));
      }
      Perf.onMemcpy(Dest.addressOf(Linear),
                    regionAddress(/*Input=*/false, Offset), Bytes);
      if (Accumulate)
        Perf.onArith(Bytes / 8); // vectorized adds
      Offset += RowElements;
      return;
    }
    for (int64_t I = 0; I < Dest.Sizes[Dim]; ++I) {
      Indices[Dim] = I;
      Perf.onLoopIteration();
      CopyRows(Dim + 1);
    }
  };
  CopyRows(0);
}
