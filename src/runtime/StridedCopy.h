//===- StridedCopy.h - Shared non-recursive strided copies ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one strided-copy engine behind every host-side data movement: the
/// interpreter's memref.copy and both directions of the DMA staging copies
/// (DmaRuntime::copyToDmaRegion / copyFromDmaRegion). Replaces the per-call
/// recursive sweeps (std::function recursion, per-element index vectors)
/// with a flat odometer walk whose cost-model charging is batched per row
/// block — counter totals are numerically identical to the unbatched
/// per-element/per-row charges because the arithmetic counters are pure
/// sums and the stateful cache simulator is still walked access-by-access
/// in the original order.
///
/// Charging is unified across all callers (this is the fix for the
/// historical asymmetry where the DMA elementwise path charged a
/// per-row recursion overhead the interpreter's scalar sweep did not):
///   * scalar element: load(src) [+ load(dst) + 1 ALU when accumulating],
///     store(dst), 2 ALU index ops, 1 dispatch branch;
///   * row: one vectorized memcpy charge [+ RowBytes/8 ALU when
///     accumulating];
///   * one loop-iteration charge per index step of the sweep (every
///     dimension in scalar mode; all but the innermost in row mode);
///   * no per-row call-frame overhead — the walk is not recursive.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_RUNTIME_STRIDEDCOPY_H
#define AXI4MLIR_RUNTIME_STRIDEDCOPY_H

#include "runtime/MemRefDesc.h"
#include "sim/AcceleratorModel.h"
#include "sim/PerfModel.h"

#include <cassert>
#include <cstdint>
#include <cstring>

namespace axi4mlir {
namespace runtime {

/// One side of a strided copy: word pointer and host address of the view's
/// element 0, plus per-dimension element strides (Rank entries).
struct CopySpan {
  uint32_t *Data = nullptr;
  uint64_t Address = 0;
  const int64_t *Strides = nullptr;
};

/// What to do with each destination word.
enum class CopyMode : uint8_t { Overwrite, AccumulateI32, AccumulateF32 };

/// One strided copy over a common iteration shape. The row-memcpy
/// specialization is a caller policy (the paper's Sec. IV-B flag plus any
/// profitability threshold), not decided here.
struct StridedCopyRequest {
  unsigned Rank = 0;
  const int64_t *Sizes = nullptr;
  CopySpan Dst;
  CopySpan Src;
  CopyMode Mode = CopyMode::Overwrite;
  bool RowMemcpy = false;
};

namespace detail {

/// Upper bound on iteration-space rank for the fixed-size odometers here
/// and in ExecPlan's generic kernels. Callers compiling IR reject deeper
/// nests with a diagnostic (ExecPlan::compile); raw requests are asserted.
inline constexpr unsigned MaxCopyRank = 16;

/// Sum over d of prod(Sizes[0..d]) for d in [0, Dims): the number of
/// onLoopIteration charges a nested sweep over the leading \p Dims
/// dimensions performs.
inline uint64_t sweepIterations(const int64_t *Sizes, unsigned Dims) {
  uint64_t Total = 0, Prefix = 1;
  for (unsigned D = 0; D < Dims; ++D) {
    Prefix *= static_cast<uint64_t>(Sizes[D]);
    Total += Prefix;
  }
  return Total;
}

inline void accumulateRow(uint32_t *Dst, const uint32_t *Src, int64_t Count,
                          CopyMode Mode) {
  if (Mode == CopyMode::AccumulateF32) {
    for (int64_t I = 0; I < Count; ++I)
      Dst[I] = sim::floatToWord(sim::wordToFloat(Dst[I]) +
                                sim::wordToFloat(Src[I]));
  } else {
    for (int64_t I = 0; I < Count; ++I)
      Dst[I] = static_cast<uint32_t>(static_cast<int32_t>(Dst[I]) +
                                     static_cast<int32_t>(Src[I]));
  }
}

} // namespace detail

/// Builds a request between two memref views of a common shape (the
/// shape is taken from \p Source; callers have already checked equality).
/// The row-memcpy policy stays with the caller.
inline StridedCopyRequest makeCopyRequest(const MemRefDesc &Source,
                                          const MemRefDesc &Dest,
                                          bool RowMemcpy,
                                          CopyMode Mode = CopyMode::Overwrite) {
  StridedCopyRequest Req;
  Req.Rank = Source.rank();
  Req.Sizes = Source.Sizes.data();
  Req.Src = {Source.Buffer->Data.data() + Source.Offset,
             Source.addressOf(Source.Offset), Source.Strides.data()};
  Req.Dst = {Dest.Buffer->Data.data() + Dest.Offset,
             Dest.addressOf(Dest.Offset), Dest.Strides.data()};
  Req.Mode = Mode;
  Req.RowMemcpy = RowMemcpy;
  return Req;
}

/// Executes \p Req, charging \p Perf as documented above.
inline void stridedCopy(sim::HostPerfModel &Perf,
                        const StridedCopyRequest &Req) {
  assert(Req.Rank <= detail::MaxCopyRank && "copy rank beyond odometer cap");
  const unsigned Rank = Req.Rank;
  const int64_t *Sizes = Req.Sizes;

  //===------------------------------------------------------------------===//
  // Row-memcpy mode: one memcpy per innermost row, charges batched per
  // uniformly-strided row block (the second-innermost dimension).
  //===------------------------------------------------------------------===//
  if (Req.RowMemcpy) {
    const int64_t RowElements = Rank == 0 ? 1 : Sizes[Rank - 1];
    const uint64_t RowBytes = static_cast<uint64_t>(RowElements) * 4;
    // Loop iterations are charged for every dimension above the rows.
    Perf.onLoopIterations(
        detail::sweepIterations(Sizes, Rank >= 1 ? Rank - 1 : 0));

    const int64_t Rows = Rank >= 2 ? Sizes[Rank - 2] : 1;
    const int64_t SrcRowStride = Rank >= 2 ? Req.Src.Strides[Rank - 2] : 0;
    const int64_t DstRowStride = Rank >= 2 ? Req.Dst.Strides[Rank - 2] : 0;
    // Rows that abut on both sides collapse into a single memcpy (charged
    // identically: the model still sees one memcpy per row).
    const bool Collapsible = Req.Mode == CopyMode::Overwrite &&
                             SrcRowStride == RowElements &&
                             DstRowStride == RowElements;

    // Odometer over the dimensions outside the row block. A zero-sized
    // outer dimension means no block ever runs (the loop-iteration
    // charges above are already zero from that dimension inward).
    const unsigned OuterDims = Rank >= 2 ? Rank - 2 : 0;
    for (unsigned D = 0; D < OuterDims; ++D)
      if (Sizes[D] == 0)
        return;
    int64_t Index[detail::MaxCopyRank] = {0};
    int64_t SrcOff = 0, DstOff = 0;
    while (true) {
      Perf.onMemcpyRows(Req.Dst.Address + DstOff * 4,
                        Req.Src.Address + SrcOff * 4, RowBytes,
                        static_cast<uint64_t>(Rows), DstRowStride * 4,
                        SrcRowStride * 4);
      if (Req.Mode == CopyMode::Overwrite) {
        if (Collapsible) {
          std::memcpy(Req.Dst.Data + DstOff, Req.Src.Data + SrcOff,
                      static_cast<size_t>(Rows) * RowBytes);
        } else {
          for (int64_t Row = 0; Row < Rows; ++Row)
            std::memcpy(Req.Dst.Data + DstOff + Row * DstRowStride,
                        Req.Src.Data + SrcOff + Row * SrcRowStride,
                        RowBytes);
        }
      } else {
        Perf.onArith(RowBytes / 8 * static_cast<uint64_t>(Rows));
        for (int64_t Row = 0; Row < Rows; ++Row)
          detail::accumulateRow(Req.Dst.Data + DstOff + Row * DstRowStride,
                                Req.Src.Data + SrcOff + Row * SrcRowStride,
                                RowElements, Req.Mode);
      }
      // Advance the outer odometer (innermost-outer fastest).
      unsigned D = OuterDims;
      while (D > 0) {
        --D;
        ++Index[D];
        SrcOff += Req.Src.Strides[D];
        DstOff += Req.Dst.Strides[D];
        if (Index[D] < Sizes[D])
          break;
        SrcOff -= Sizes[D] * Req.Src.Strides[D];
        DstOff -= Sizes[D] * Req.Dst.Strides[D];
        Index[D] = 0;
        if (D == 0)
          return;
      }
      if (OuterDims == 0)
        return;
    }
  }

  //===------------------------------------------------------------------===//
  // Scalar mode: element-by-element, cache accesses issued in element
  // order, pure-ALU charges batched per row.
  //===------------------------------------------------------------------===//
  const int64_t RowElements = Rank == 0 ? 1 : Sizes[Rank - 1];
  Perf.onLoopIterations(detail::sweepIterations(Sizes, Rank));
  const uint64_t ArithPerElement =
      Req.Mode == CopyMode::Overwrite ? 2 : 3;
  const int64_t SrcElemStride = Rank == 0 ? 0 : Req.Src.Strides[Rank - 1];
  const int64_t DstElemStride = Rank == 0 ? 0 : Req.Dst.Strides[Rank - 1];

  const unsigned OuterDims = Rank >= 1 ? Rank - 1 : 0;
  for (unsigned D = 0; D < OuterDims; ++D)
    if (Sizes[D] == 0)
      return;
  int64_t Index[detail::MaxCopyRank] = {0};
  int64_t SrcOff = 0, DstOff = 0;
  while (true) {
    Perf.onArith(ArithPerElement * static_cast<uint64_t>(RowElements));
    Perf.onBranch(static_cast<uint64_t>(RowElements));
    int64_t SrcElem = SrcOff, DstElem = DstOff;
    for (int64_t I = 0; I < RowElements; ++I) {
      Perf.onScalarLoad(Req.Src.Address + SrcElem * 4, 4);
      uint32_t Word = Req.Src.Data[SrcElem];
      uint32_t *Slot = Req.Dst.Data + DstElem;
      if (Req.Mode == CopyMode::Overwrite) {
        *Slot = Word;
      } else {
        Perf.onScalarLoad(Req.Dst.Address + DstElem * 4, 4);
        if (Req.Mode == CopyMode::AccumulateF32)
          *Slot = sim::floatToWord(sim::wordToFloat(*Slot) +
                                   sim::wordToFloat(Word));
        else
          *Slot = static_cast<uint32_t>(static_cast<int32_t>(*Slot) +
                                        static_cast<int32_t>(Word));
      }
      Perf.onScalarStore(Req.Dst.Address + DstElem * 4, 4);
      SrcElem += SrcElemStride;
      DstElem += DstElemStride;
    }
    unsigned D = OuterDims;
    while (D > 0) {
      --D;
      ++Index[D];
      SrcOff += Req.Src.Strides[D];
      DstOff += Req.Dst.Strides[D];
      if (Index[D] < Sizes[D])
        break;
      SrcOff -= Sizes[D] * Req.Src.Strides[D];
      DstOff -= Sizes[D] * Req.Dst.Strides[D];
      Index[D] = 0;
      if (D == 0)
        return;
    }
    if (OuterDims == 0)
      return;
  }
}

} // namespace runtime
} // namespace axi4mlir

#endif // AXI4MLIR_RUNTIME_STRIDEDCOPY_H
