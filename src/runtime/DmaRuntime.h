//===- DmaRuntime.h - The AXI4MLIR DMA runtime library ----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The custom AXI DMA library of paper Sec. III-A: a thin, driver-level API
/// the generated host code calls. Functions mirror paper Fig. 9:
///
///   dma_init(id, inAddr, inSize, outAddr, outSize)
///   copy_to_dma_region(memref, offset) -> new offset
///   copy_literal_to_dma_region(value, offset) -> new offset
///   dma_start_send(length, offset) / dma_wait_send_completion()
///   dma_start_recv(length, offset) / dma_wait_recv_completion()
///   copy_from_dma_region(memref, offset, accumulate)
///
/// The staging copies implement both the generic rank-N element-by-element
/// path and the memcpy specialization for contiguous innermost dimensions
/// (paper Sec. IV-B), switchable to reproduce Fig. 12a vs. 12b.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_RUNTIME_DMARUNTIME_H
#define AXI4MLIR_RUNTIME_DMARUNTIME_H

#include "runtime/MemRefDesc.h"
#include "sim/SoC.h"

namespace axi4mlir {
namespace runtime {

/// The runtime library instance bound to one simulated SoC.
class DmaRuntime {
public:
  /// \p SpecializeCopies enables the memcpy fast path for staging copies
  /// when strides[rank-1] == 1 (paper Sec. IV-B optimization).
  explicit DmaRuntime(sim::SoC &Soc, bool SpecializeCopies = true)
      : Soc(Soc), SpecializeCopies(SpecializeCopies) {}

  bool copySpecializationEnabled() const { return SpecializeCopies; }
  void setCopySpecialization(bool Enabled) { SpecializeCopies = Enabled; }

  /// Initializes the DMA engine and maps the staging regions. Executed
  /// once per application (paper Sec. III-C, dma_init_config).
  void dmaInit(const accel::DmaInitConfig &Config);

  /// Copies a (possibly strided) memref tile into the input staging region
  /// starting at \p OffsetWords. Returns the offset one past the data, so
  /// consecutive copies batch into a single send (paper Sec. III-A).
  int64_t copyToDmaRegion(const MemRefDesc &Source, int64_t OffsetWords);

  /// Stores one 32-bit literal (an opcode) at \p OffsetWords.
  int64_t copyLiteralToDmaRegion(int32_t Literal, int64_t OffsetWords);

  /// Starts/completes a send of \p LengthWords words from \p OffsetWords.
  /// Every DMA call reports its outcome so the executors can stop issuing
  /// work immediately; the recovery layer has already absorbed whatever
  /// faults it could by the time a non-Ok status surfaces here.
  sim::AccelStatus dmaStartSend(int64_t LengthWords, int64_t OffsetWords);
  sim::AccelStatus dmaWaitSendCompletion();

  /// Starts/completes a receive of \p LengthWords words into
  /// \p OffsetWords.
  sim::AccelStatus dmaStartRecv(int64_t LengthWords, int64_t OffsetWords);
  sim::AccelStatus dmaWaitRecvCompletion();

  /// Copies data from the output staging region back into a memref tile.
  /// With \p Accumulate the data is added to the destination (partial
  /// results of a reduction dimension).
  void copyFromDmaRegion(const MemRefDesc &Dest, int64_t OffsetWords,
                         bool Accumulate);

  bool hadError() const { return Soc.dma().hadError(); }
  const std::string &errorMessage() const {
    return Soc.dma().errorMessage();
  }

  /// Structured engine state; non-Ok latches on the first unrecovered
  /// failure. Checked by all three executors after every runtime call.
  sim::AccelStatus status() const { return Soc.dma().status(); }

  /// The uniform failure text all three executors report, so a fault
  /// surfaces identically under the walker, the plan interpreter and the
  /// threaded engine.
  std::string statusErrorText() const {
    return std::string("accelerator/DMA ") + sim::toString(status()) +
           " error: " + errorMessage();
  }

  sim::SoC &soc() { return Soc; }

private:
  /// Both staging directions (the unspecialized per-element path of
  /// Fig. 12a and the row-wise memcpy specialization of Fig. 12b) are
  /// driven by the shared engine in runtime/StridedCopy.h; this class only
  /// picks the policy (unit-dim collapse + row profitability).

  uint64_t regionAddress(bool Input, int64_t OffsetWords) const;

  sim::SoC &Soc;
  bool SpecializeCopies;
};

} // namespace runtime
} // namespace axi4mlir

#endif // AXI4MLIR_RUNTIME_DMARUNTIME_H
