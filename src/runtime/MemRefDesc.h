//===- MemRefDesc.h - Runtime memref descriptor -----------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime equivalent of an MLIR memref (paper Fig. 3):
///
///   typedef struct {
///     float *allocated;  // for deallocation
///     float *aligned;    // base address
///     size_t offset;     // offset in # of elements
///     size_t size[N];    // one size per dim
///     size_t stride[N];  // one stride per dim
///   }
///
/// Elements are stored as 32-bit words (i32 or f32 bit patterns) to match
/// the AXI-Stream width; buffers are shared so subviews alias their source.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_RUNTIME_MEMREFDESC_H
#define AXI4MLIR_RUNTIME_MEMREFDESC_H

#include "sim/AcceleratorModel.h"
#include "support/AlignedAlloc.h"
#include "support/STLExtras.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace axi4mlir {
namespace runtime {

/// Cache-line-aligned allocation (shared with the simulator's DMA staging
/// regions; see support/AlignedAlloc.h for why alignment matters to the
/// modeled counters).
using axi4mlir::CacheLineAllocator;

/// The storage behind one allocation.
struct MemRefBuffer {
  AlignedVector<uint32_t> Data;
  sim::ElemKind Kind = sim::ElemKind::I32;

  explicit MemRefBuffer(size_t NumElements,
                        sim::ElemKind Kind = sim::ElemKind::I32)
      : Data(NumElements, 0), Kind(Kind) {}
};

/// A (possibly strided) view into a MemRefBuffer.
struct MemRefDesc {
  std::shared_ptr<MemRefBuffer> Buffer;
  int64_t Offset = 0;
  std::vector<int64_t> Sizes;
  std::vector<int64_t> Strides;

  MemRefDesc() = default;

  /// Allocates a fresh contiguous row-major memref.
  static MemRefDesc alloc(const std::vector<int64_t> &Shape,
                          sim::ElemKind Kind = sim::ElemKind::I32) {
    MemRefDesc Desc;
    Desc.Buffer = std::make_shared<MemRefBuffer>(
        static_cast<size_t>(product(Shape)), Kind);
    Desc.Sizes = Shape;
    Desc.Strides.assign(Shape.size(), 1);
    for (int I = static_cast<int>(Shape.size()) - 2; I >= 0; --I)
      Desc.Strides[I] = Desc.Strides[I + 1] * Shape[I + 1];
    return Desc;
  }

  unsigned rank() const { return Sizes.size(); }
  int64_t numElements() const { return product(Sizes); }
  sim::ElemKind kind() const { return Buffer->Kind; }

  /// A rank-preserving subview at the given offsets with the given sizes
  /// (relative strides of 1), aliasing this buffer.
  MemRefDesc subview(const std::vector<int64_t> &Offsets,
                     const std::vector<int64_t> &SubSizes) const {
    assert(Offsets.size() == rank() && SubSizes.size() == rank());
    MemRefDesc Desc;
    Desc.Buffer = Buffer;
    Desc.Offset = Offset;
    for (unsigned I = 0; I < rank(); ++I) {
      assert(Offsets[I] + SubSizes[I] <= Sizes[I] &&
             "subview escapes its source memref");
      Desc.Offset += Offsets[I] * Strides[I];
    }
    Desc.Sizes = SubSizes;
    Desc.Strides = Strides;
    return Desc;
  }

  /// Linearized element index of a coordinate.
  int64_t linearIndex(const std::vector<int64_t> &Indices) const {
    assert(Indices.size() == rank() && "coordinate rank mismatch");
    int64_t Linear = Offset;
    for (unsigned I = 0; I < rank(); ++I) {
      assert(Indices[I] >= 0 && Indices[I] < Sizes[I] &&
             "memref index out of bounds");
      Linear += Indices[I] * Strides[I];
    }
    return Linear;
  }

  uint32_t &at(const std::vector<int64_t> &Indices) {
    return Buffer->Data[static_cast<size_t>(linearIndex(Indices))];
  }
  uint32_t at(const std::vector<int64_t> &Indices) const {
    return Buffer->Data[static_cast<size_t>(linearIndex(Indices))];
  }

  /// Host virtual address of an element (for the cache simulator).
  uint64_t addressOf(int64_t LinearIndex) const {
    return reinterpret_cast<uint64_t>(Buffer->Data.data() + LinearIndex);
  }

  /// True if the innermost dimension is contiguous (stride 1), i.e. the
  /// copy specialization of paper Sec. IV-B applies.
  bool innermostContiguous() const {
    return rank() == 0 || Strides.back() == 1;
  }

  //===------------------------------------------------------------------===//
  // Typed element access (used by reference kernels and tests)
  //===------------------------------------------------------------------===//

  double read(const std::vector<int64_t> &Indices) const {
    uint32_t Word = at(Indices);
    return kind() == sim::ElemKind::F32
               ? static_cast<double>(sim::wordToFloat(Word))
               : static_cast<double>(static_cast<int32_t>(Word));
  }
  void write(const std::vector<int64_t> &Indices, double Value) {
    at(Indices) = kind() == sim::ElemKind::F32
                      ? sim::floatToWord(static_cast<float>(Value))
                      : static_cast<uint32_t>(
                            static_cast<int32_t>(static_cast<int64_t>(Value)));
  }
};

} // namespace runtime
} // namespace axi4mlir

#endif // AXI4MLIR_RUNTIME_MEMREFDESC_H
