//===- OpcodeParser.cpp - opcode_map / opcode_flow parser impl ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "parser/OpcodeParser.h"

#include "support/ParseInt.h"

#include <cctype>
#include <cstdint>

using namespace axi4mlir;
using namespace axi4mlir::accel;
using namespace axi4mlir::parser;

namespace {

/// Shared character-level cursor for the two small grammars.
class Cursor {
public:
  explicit Cursor(const std::string &Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consumeIf(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  bool consumeKeyword(const std::string &Keyword) {
    skipSpace();
    if (Text.compare(Pos, Keyword.size(), Keyword) != 0)
      return false;
    size_t After = Pos + Keyword.size();
    if (After < Text.size() &&
        (std::isalnum(static_cast<unsigned char>(Text[After])) ||
         Text[After] == '_'))
      return false;
    Pos = After;
    return true;
  }

  std::string readIdentifier() {
    skipSpace();
    std::string Result;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
        Result.push_back(C);
        ++Pos;
      } else {
        break;
      }
    }
    return Result;
  }

  /// Reads a decimal or 0x-hex integer; returns failure if none present.
  /// A literal that is present but does not fit int64 is an error (reported
  /// through \p Error, naming the token) rather than a silently clamped or
  /// zeroed value.
  FailureOr<int64_t> readInteger(std::string *Error = nullptr) {
    skipSpace();
    size_t Start = Pos;
    bool Negative = false;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+')) {
      Negative = Text[Pos] == '-';
      ++Pos;
    }
    bool IsHex = false;
    if (Pos + 1 < Text.size() && Text[Pos] == '0' &&
        (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
      Pos += 2;
      IsHex = true;
    }
    size_t DigitsStart = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            (IsHex && std::isxdigit(static_cast<unsigned char>(Text[Pos])))))
      ++Pos;
    if (Pos == DigitsStart) {
      Pos = Start;
      return failure();
    }
    int64_t Value = 0;
    if (!parseCheckedInt64(Text.data() + DigitsStart, Text.data() + Pos,
                           Negative, IsHex ? 16 : 10, Value)) {
      if (Error && Error->empty())
        *Error = "integer literal '" + Text.substr(Start, Pos - Start) +
                 "' is out of range (at offset " + std::to_string(Start) + ")";
      Pos = Start;
      return failure();
    }
    return Value;
  }

  size_t position() const { return Pos; }

private:
  const std::string &Text;
  size_t Pos = 0;
};

std::string describe(const std::string &Message, const Cursor &C) {
  return Message + " (at offset " + std::to_string(C.position()) + ")";
}

/// Resolves a bare id that should be an integer (or a named dimension).
FailureOr<int64_t> resolveIndex(Cursor &C,
                                const std::vector<std::string> *DimNames,
                                std::string *Error, const char *What) {
  if (auto IntValue = C.readInteger(Error); succeeded(IntValue))
    return *IntValue;
  if (Error && !Error->empty())
    return failure(); // Out-of-range literal, already reported.
  std::string Ident = C.readIdentifier();
  if (!Ident.empty() && DimNames) {
    for (size_t I = 0; I < DimNames->size(); ++I)
      if ((*DimNames)[I] == Ident)
        return static_cast<int64_t>(I);
  }
  if (Error)
    *Error = describe(std::string("expected integer or dimension name for ") +
                          What + (Ident.empty() ? "" : " ('" + Ident + "')"),
                      C);
  return failure();
}

FailureOr<OpcodeAction> parseAction(Cursor &C,
                                    const std::vector<std::string> *DimNames,
                                    std::string *Error) {
  std::string Keyword = C.readIdentifier();
  auto fail = [&](const std::string &Message) -> FailureOr<OpcodeAction> {
    if (Error && Error->empty())
      *Error = describe(Message, C);
    return failure();
  };

  if (Keyword.empty())
    return fail("expected an opcode action keyword");
  if (!C.consumeIf('('))
    return fail("expected '(' after '" + Keyword + "'");

  OpcodeAction Action;
  if (Keyword == "send") {
    auto Arg = resolveIndex(C, DimNames, Error, "send argument");
    if (failed(Arg))
      return failure();
    Action = OpcodeAction::send(*Arg);
  } else if (Keyword == "send_literal") {
    auto Literal = C.readInteger(Error);
    if (failed(Literal))
      return fail("expected integer literal in send_literal");
    Action = OpcodeAction::sendLiteral(*Literal);
  } else if (Keyword == "send_dim") {
    auto First = resolveIndex(C, DimNames, Error, "send_dim argument");
    if (failed(First))
      return failure();
    if (C.consumeIf(',')) {
      auto Second = resolveIndex(C, DimNames, Error, "send_dim dimension");
      if (failed(Second))
        return failure();
      Action = OpcodeAction::sendDim(*First, *Second);
    } else {
      // Single-argument form: dimension of the op's iteration space;
      // argument index unspecified (-1).
      Action = OpcodeAction::sendDim(/*ArgIndex=*/-1, *First);
    }
  } else if (Keyword == "send_idx") {
    auto Dim = resolveIndex(C, DimNames, Error, "send_idx dimension");
    if (failed(Dim))
      return failure();
    Action = OpcodeAction::sendIdx(*Dim);
  } else if (Keyword == "recv") {
    auto Arg = resolveIndex(C, DimNames, Error, "recv argument");
    if (failed(Arg))
      return failure();
    Action = OpcodeAction::recv(*Arg);
  } else {
    return fail("unknown opcode action '" + Keyword + "'");
  }

  if (!C.consumeIf(')'))
    return fail("expected ')' closing '" + Keyword + "'");
  return Action;
}

FailureOr<FlowScope> parseScope(Cursor &C, std::string *Error);

FailureOr<FlowItem> parseFlowItem(Cursor &C, std::string *Error) {
  if (C.peek() == '(') {
    auto Nested = parseScope(C, Error);
    if (failed(Nested))
      return failure();
    FlowItem Item;
    Item.Scope = std::make_shared<FlowScope>(std::move(*Nested));
    return Item;
  }
  std::string Token = C.readIdentifier();
  if (Token.empty()) {
    if (Error && Error->empty())
      *Error = describe("expected opcode token or '('", C);
    return failure();
  }
  FlowItem Item;
  Item.Token = Token;
  return Item;
}

FailureOr<FlowScope> parseScope(Cursor &C, std::string *Error) {
  if (!C.consumeIf('(')) {
    if (Error && Error->empty())
      *Error = describe("expected '('", C);
    return failure();
  }
  FlowScope Scope;
  while (!C.atEnd() && C.peek() != ')') {
    auto Item = parseFlowItem(C, Error);
    if (failed(Item))
      return failure();
    Scope.Items.push_back(std::move(*Item));
  }
  if (!C.consumeIf(')')) {
    if (Error && Error->empty())
      *Error = describe("expected ')'", C);
    return failure();
  }
  return Scope;
}

} // namespace

FailureOr<OpcodeMapData>
parser::parseOpcodeMap(const std::string &Text, std::string *Error,
                       const std::vector<std::string> *DimNames) {
  Cursor C(Text);
  // Optional `opcode_map <` wrapper.
  bool HasKeyword = C.consumeKeyword("opcode_map");
  bool HasAngle = C.consumeIf('<');
  (void)HasKeyword;

  OpcodeMapData Map;
  while (true) {
    std::string Name;
    if (C.consumeIf('"')) {
      // string_literal key (no escapes; identifiers in practice).
      Name = C.readIdentifier();
      if (!C.consumeIf('"')) {
        if (Error)
          *Error = describe("expected closing '\"' after opcode name", C);
        return failure();
      }
    } else {
      Name = C.readIdentifier();
    }
    if (Name.empty()) {
      if (Error)
        *Error = describe("expected opcode entry name", C);
      return failure();
    }
    if (Map.lookup(Name)) {
      if (Error)
        *Error = "duplicate opcode entry '" + Name + "'";
      return failure();
    }
    if (!C.consumeIf('=')) {
      if (Error)
        *Error = describe("expected '=' after opcode name '" + Name + "'", C);
      return failure();
    }
    if (!C.consumeIf('[')) {
      if (Error)
        *Error = describe("expected '[' starting the opcode list", C);
      return failure();
    }
    OpcodeEntry Entry;
    Entry.Name = Name;
    while (true) {
      auto Action = parseAction(C, DimNames, Error);
      if (failed(Action))
        return failure();
      Entry.Actions.push_back(*Action);
      if (C.consumeIf(','))
        continue;
      break;
    }
    if (!C.consumeIf(']')) {
      if (Error)
        *Error = describe("expected ']' closing the opcode list", C);
      return failure();
    }
    Map.Entries.push_back(std::move(Entry));
    if (C.consumeIf(','))
      continue;
    break;
  }

  if (HasAngle && !C.consumeIf('>')) {
    if (Error)
      *Error = describe("expected '>' closing opcode_map", C);
    return failure();
  }
  if (!C.atEnd()) {
    if (Error)
      *Error = describe("unexpected trailing characters in opcode_map", C);
    return failure();
  }
  if (Map.Entries.empty()) {
    if (Error)
      *Error = "opcode_map must define at least one opcode";
    return failure();
  }
  return Map;
}

FailureOr<OpcodeFlowData> parser::parseOpcodeFlow(const std::string &Text,
                                                  std::string *Error) {
  Cursor C(Text);
  bool HasKeyword = C.consumeKeyword("opcode_flow");
  if (!HasKeyword)
    (void)C.consumeKeyword("init_opcodes");
  bool HasAngle = C.consumeIf('<');

  auto Root = parseScope(C, Error);
  if (failed(Root))
    return failure();

  if (HasAngle && !C.consumeIf('>')) {
    if (Error)
      *Error = describe("expected '>' closing opcode_flow", C);
    return failure();
  }
  if (!C.atEnd()) {
    if (Error)
      *Error = describe("unexpected trailing characters in opcode_flow", C);
    return failure();
  }
  OpcodeFlowData Flow;
  Flow.Root = std::move(*Root);
  if (Flow.allTokens().empty()) {
    if (Error)
      *Error = "opcode_flow must contain at least one opcode token";
    return failure();
  }
  return Flow;
}

LogicalResult
parser::validateFlowAgainstMap(const OpcodeFlowData &Flow,
                               const OpcodeMapData &Map, std::string *Error) {
  for (const std::string &Token : Flow.allTokens()) {
    if (!Map.lookup(Token)) {
      if (Error)
        *Error = "opcode_flow references '" + Token +
                 "', which is not defined in the opcode_map";
      return failure();
    }
  }
  return success();
}
