//===- OpcodeParser.h - opcode_map / opcode_flow parsers --------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsers for the two textual grammars AXI4MLIR introduces:
///
/// opcode_map (paper Fig. 7):
///   opcode_dict  ::= `opcode_map` `<` opcode_entry (`,` opcode_entry)* `>`
///   opcode_entry ::= (bare_id | string_literal) `=` opcode_list
///   opcode_list  ::= `[` opcode_expr (`,` opcode_expr)* `]`
///   opcode_expr  ::= `send` `(` bare_id `)`
///                  | `send_literal` `(` integer_literal `)`
///                  | `send_dim` `(` bare_id (`,` bare_id)? `)`
///                  | `send_idx` `(` bare_id `)`
///                  | `recv` `(` bare_id `)`
///
/// opcode_flow (paper Fig. 8):
///   opcode_flow_entry ::= `opcode_flow` `<` flow_expr `>`
///   flow_expr         ::= `(` flow_expr `)` | bare_id (` ` bare_id)*
///
/// The leading `opcode_map` / `opcode_flow` keywords and angle brackets are
/// optional so config files can embed just the body.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_PARSER_OPCODEPARSER_H
#define AXI4MLIR_PARSER_OPCODEPARSER_H

#include "ir/AccelTraits.h"
#include "support/LogicalResult.h"

#include <string>

namespace axi4mlir {
namespace parser {

/// Parses an opcode_map string. On failure fills \p Error. \p DimNames,
/// when provided (from the config file's "dims" entry, e.g. ["m","n","k"]),
/// lets send_dim/send_idx reference dimensions by name instead of index.
FailureOr<accel::OpcodeMapData>
parseOpcodeMap(const std::string &Text, std::string *Error = nullptr,
               const std::vector<std::string> *DimNames = nullptr);

/// Parses an opcode_flow string (also used for init_opcodes). On failure
/// fills \p Error.
FailureOr<accel::OpcodeFlowData>
parseOpcodeFlow(const std::string &Text, std::string *Error = nullptr);

/// Validates that every token in \p Flow is defined in \p Map.
LogicalResult validateFlowAgainstMap(const accel::OpcodeFlowData &Flow,
                                     const accel::OpcodeMapData &Map,
                                     std::string *Error = nullptr);

} // namespace parser
} // namespace axi4mlir

#endif // AXI4MLIR_PARSER_OPCODEPARSER_H
