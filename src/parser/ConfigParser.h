//===- ConfigParser.h - Configuration file parser ---------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the JSON configuration file of paper Fig. 5 into a SystemConfig,
/// validating the opcode map, the opcode flows and the selected flow
/// (paper Sec. III-B3 "Configuration Parsing").
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_PARSER_CONFIGPARSER_H
#define AXI4MLIR_PARSER_CONFIGPARSER_H

#include "parser/AcceleratorConfig.h"
#include "support/LogicalResult.h"

#include <string>

namespace axi4mlir {
namespace parser {

/// Parses configuration text. On failure fills \p Error.
FailureOr<SystemConfig> parseSystemConfig(const std::string &Text,
                                          std::string *Error = nullptr);

/// Parses a configuration file from disk.
FailureOr<SystemConfig> parseSystemConfigFile(const std::string &Path,
                                              std::string *Error = nullptr);

} // namespace parser
} // namespace axi4mlir

#endif // AXI4MLIR_PARSER_CONFIGPARSER_H
