//===- AcceleratorConfig.h - Parsed configuration data ----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory representation of the accelerator + host CPU configuration
/// file (paper Fig. 5). This is what the "Parse accelerator and host CPU
/// description" stage (Fig. 4, step 2) produces and what the
/// match-and-annotate transformation consumes.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_PARSER_ACCELERATORCONFIG_H
#define AXI4MLIR_PARSER_ACCELERATORCONFIG_H

#include "ir/AccelTraits.h"
#include "sim/FaultInjector.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace axi4mlir {
namespace parser {

/// Host CPU description: cache sizes in bytes, innermost first
/// (paper Fig. 5 L1-L2).
struct CpuInfo {
  std::vector<int64_t> CacheLevelBytes = {32 * 1024, 512 * 1024};
  std::vector<std::string> CacheTypes = {"data", "shared"};

  /// Size of the last-level cache, used by the CPU tiling heuristic.
  int64_t lastLevelCacheBytes() const {
    return CacheLevelBytes.empty() ? 512 * 1024 : CacheLevelBytes.back();
  }
};

/// One accelerator description from the configuration file.
struct AcceleratorDesc {
  std::string Name;
  std::string Version;
  std::string Description;

  accel::DmaInitConfig DmaConfig;

  /// The linalg named op this accelerator implements
  /// (e.g. "linalg.matmul", "linalg.conv_2d_nchw_fchw").
  std::string Kernel;

  /// Accelerator tile size per kernel dimension (paper `accel_size`).
  /// Zero entries mean "dimension not tiled by the accelerator" (the conv
  /// accelerator uses 0 for B/H/W, Fig. 15a).
  std::vector<int64_t> AccelSize;

  /// Element data type name ("int32", "f32", ...).
  std::string DataType = "f32";

  /// Kernel dimension names, e.g. ["m", "n", "k"].
  std::vector<std::string> Dims;

  /// Operand name -> dimension names, e.g. "A" -> ["m", "k"].
  std::vector<std::pair<std::string, std::vector<std::string>>> Data;

  /// The accelerator micro-ISA.
  accel::OpcodeMapData OpcodeMap;

  /// Flow id -> flow tree, plus the user-selected flow id.
  std::vector<std::pair<std::string, accel::OpcodeFlowData>> FlowMap;
  std::string SelectedFlow;

  /// Opcodes sent once per kernel launch (may be empty).
  std::optional<accel::OpcodeFlowData> InitOpcodes;

  /// Optional explicit loop permutation (indices into Dims). When absent,
  /// the annotate pass derives one from the selected flow (stationary
  /// operands' dimensions become outer loops).
  std::optional<std::vector<unsigned>> Permutation;

  const accel::OpcodeFlowData *lookupFlow(const std::string &FlowId) const {
    for (const auto &[Id, Flow] : FlowMap)
      if (Id == FlowId)
        return &Flow;
    return nullptr;
  }

  const accel::OpcodeFlowData *selectedFlow() const {
    return lookupFlow(SelectedFlow);
  }
};

/// The `serve` section of a configuration file: sizing and robustness
/// policy for the multi-tenant accelerator service (src/serve). All
/// bounds are validated at parse time so the server never has to guard
/// against zero-sized queues or empty pools.
struct ServeSection {
  /// Simulated SoC instances in the pool. Instance i hosts
  /// accelerators[i % count] from this file's accelerator list.
  unsigned Instances = 2;
  /// Bounded admission queue depth; submissions beyond it are shed with
  /// a structured Overloaded status (never blocked).
  unsigned QueueDepth = 16;
  /// Total execution attempts per admitted job (first try + re-routes).
  unsigned MaxAttempts = 3;
  /// Consecutive attempt failures that trip an instance's circuit
  /// breaker open.
  unsigned BreakerThreshold = 3;
  /// Routing decisions an open breaker skips before allowing one
  /// half-open probe job.
  unsigned BreakerCooldown = 4;
  /// Shared compiled-plan LRU capacity (kernel x shape x accelerator).
  unsigned PlanCacheCapacity = 32;
  /// Worker threads; 0 selects the deterministic single-thread scheduler
  /// (jobs run on the caller's thread at drain points).
  unsigned Threads = 0;
  /// Default modeled-latency budget per job in milliseconds (0 = none).
  double DefaultDeadlineMs = 0;
  /// Allow host-CPU fallback when no healthy instance remains.
  bool CpuFallback = true;
  /// Pool instance the file's `faults` schedule is assigned to (-1 =
  /// faults stay a global per-run schedule, the pre-serve behaviour).
  int64_t FaultyInstance = -1;
  /// How many of the faulty instance's first jobs see the schedule
  /// (0 = every job; a finite count lets half-open probes find a healed
  /// instance).
  unsigned FaultyJobs = 0;
};

/// The full parsed configuration file.
struct SystemConfig {
  CpuInfo Cpu;
  std::vector<AcceleratorDesc> Accelerators;

  /// Optional `faults` section: a deterministic fault schedule plus the
  /// recovery policy bounds. Empty events with default policy when absent.
  sim::FaultPlan Faults;
  /// Protocol-identical spare accelerators to register as failover
  /// targets (`faults.spares`).
  unsigned SpareAccelerators = 0;
  /// True when the file had a `faults` section at all (a policy-only
  /// section still arms the injection hooks).
  bool HasFaults = false;

  /// Optional `serve` section (defaults when absent).
  ServeSection Serve;
  bool HasServe = false;

  const AcceleratorDesc *findByKernel(const std::string &Kernel) const {
    for (const AcceleratorDesc &Accel : Accelerators)
      if (Accel.Kernel == Kernel)
        return &Accel;
    return nullptr;
  }
};

} // namespace parser
} // namespace axi4mlir

#endif // AXI4MLIR_PARSER_ACCELERATORCONFIG_H
