//===- ConfigParser.cpp - Configuration file parser implementation --------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "parser/ConfigParser.h"

#include "parser/OpcodeParser.h"
#include "support/JSON.h"

#include <fstream>
#include <sstream>

using namespace axi4mlir;
using namespace axi4mlir::parser;

static LogicalResult fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return failure();
}

static LogicalResult parseCpu(const json::Value &Root, CpuInfo &Cpu,
                              std::string *Error) {
  const json::Value *CpuValue = Root.get("cpu");
  if (!CpuValue)
    return success(); // CPU section is optional; defaults model the A9.
  if (!CpuValue->isObject())
    return fail(Error, "'cpu' must be an object");
  if (const json::Value *Levels = CpuValue->get("cache-levels")) {
    if (!Levels->isArray())
      return fail(Error, "'cpu.cache-levels' must be an array");
    Cpu.CacheLevelBytes.clear();
    for (const json::Value &Level : Levels->array()) {
      if (!Level.isInt())
        return fail(Error, "'cpu.cache-levels' entries must be sizes");
      Cpu.CacheLevelBytes.push_back(Level.asInt());
    }
  }
  if (const json::Value *Types = CpuValue->get("cache-types")) {
    if (!Types->isArray())
      return fail(Error, "'cpu.cache-types' must be an array");
    Cpu.CacheTypes.clear();
    for (const json::Value &TypeName : Types->array())
      Cpu.CacheTypes.push_back(TypeName.asString());
  }
  return success();
}

/// Post-parse reference validation of an accelerator's opcode_map: every
/// action index must resolve against the declared 'data' operands and
/// 'dims' names, so a config typo like send(9) is diagnosed at load time
/// by opcode name instead of surfacing as a runtime lowering failure (or,
/// for send_dim, an out-of-range memref dimension read).
static LogicalResult validateOpcodeActions(const AcceleratorDesc &Accel,
                                           std::string *Error) {
  auto failAction = [&](const std::string &Opcode,
                        const std::string &Message) {
    return fail(Error, "in opcode_map of '" + Accel.Name + "': opcode '" +
                           Opcode + "': " + Message);
  };
  int64_t NumOperands = static_cast<int64_t>(Accel.Data.size());
  int64_t NumDims = static_cast<int64_t>(Accel.Dims.size());
  for (const accel::OpcodeEntry &Entry : Accel.OpcodeMap.Entries) {
    for (const accel::OpcodeAction &Action : Entry.Actions) {
      switch (Action.ActionKind) {
      case accel::OpcodeAction::Kind::SendLiteral:
        break;
      case accel::OpcodeAction::Kind::Send:
      case accel::OpcodeAction::Kind::Recv: {
        const char *What =
            Action.ActionKind == accel::OpcodeAction::Kind::Send ? "send"
                                                                 : "recv";
        if (Action.ArgIndex < 0 ||
            (NumOperands > 0 && Action.ArgIndex >= NumOperands))
          return failAction(
              Entry.Name,
              std::string(What) + "(" + std::to_string(Action.ArgIndex) +
                  ") references an operand but 'data' defines " +
                  std::to_string(NumOperands) + " operand(s)");
        break;
      }
      case accel::OpcodeAction::Kind::SendDim:
        if (Action.ArgIndex >= 0) {
          if (NumOperands > 0 && Action.ArgIndex >= NumOperands)
            return failAction(
                Entry.Name,
                "send_dim(" + std::to_string(Action.ArgIndex) + ", " +
                    std::to_string(Action.DimIndex) +
                    ") references an operand but 'data' defines " +
                    std::to_string(NumOperands) + " operand(s)");
          if (NumOperands > 0) {
            const auto &Operand = Accel.Data[Action.ArgIndex];
            int64_t Rank = static_cast<int64_t>(Operand.second.size());
            if (Action.DimIndex < 0 || Action.DimIndex >= Rank)
              return failAction(
                  Entry.Name,
                  "send_dim(" + std::to_string(Action.ArgIndex) + ", " +
                      std::to_string(Action.DimIndex) +
                      ") references dimension " +
                      std::to_string(Action.DimIndex) + " but operand '" +
                      Operand.first + "' has rank " + std::to_string(Rank));
          }
          break;
        }
        [[fallthrough]];
      case accel::OpcodeAction::Kind::SendIdx:
        if (Action.DimIndex < 0 ||
            (NumDims > 0 && Action.DimIndex >= NumDims))
          return failAction(
              Entry.Name,
              std::string(Action.ActionKind ==
                                  accel::OpcodeAction::Kind::SendIdx
                              ? "send_idx"
                              : "send_dim") +
                  "(" + std::to_string(Action.DimIndex) +
                  ") references a kernel dimension but 'dims' defines " +
                  std::to_string(NumDims) + " name(s)");
        break;
      }
    }
  }
  return success();
}

/// Rejects empty `()` scopes anywhere in a flow: an empty scope stands
/// for a loop nest that issues no opcodes, which is always a config
/// mistake (typically an editing leftover) and would silently drop a
/// level of the intended tiling structure.
static LogicalResult validateFlowScopes(const accel::FlowScope &Scope,
                                        const AcceleratorDesc &Accel,
                                        const std::string &Where,
                                        std::string *Error) {
  if (Scope.Items.empty())
    return fail(Error, "in " + Where + " of '" + Accel.Name +
                           "': empty '()' scope (a scope must contain at "
                           "least one opcode or nested scope)");
  for (const accel::FlowItem &Item : Scope.Items)
    if (Item.Scope)
      if (failed(validateFlowScopes(*Item.Scope, Accel, Where, Error)))
        return failure();
  return success();
}

static LogicalResult parseDmaConfig(const json::Value &AccelValue,
                                    accel::DmaInitConfig &Config,
                                    std::string *Error) {
  const json::Value *Dma = AccelValue.get("dma_config");
  if (!Dma)
    return success(); // Optional; defaults are fine for simulation.
  if (!Dma->isObject())
    return fail(Error, "'dma_config' must be an object");
  Config.DmaId = Dma->getInt("id", Config.DmaId);
  Config.InputAddress = Dma->getInt("inputAddress", Config.InputAddress);
  Config.InputBufferSize =
      Dma->getInt("inputBufferSize", Config.InputBufferSize);
  Config.OutputAddress = Dma->getInt("outputAddress", Config.OutputAddress);
  Config.OutputBufferSize =
      Dma->getInt("outputBufferSize", Config.OutputBufferSize);
  return success();
}

static LogicalResult parseAccelerator(const json::Value &AccelValue,
                                      AcceleratorDesc &Accel,
                                      std::string *Error) {
  if (!AccelValue.isObject())
    return fail(Error, "accelerator entries must be objects");

  Accel.Name = AccelValue.getString("name", "unnamed");
  if (const json::Value *Version = AccelValue.get("version")) {
    if (Version->isString())
      Accel.Version = Version->asString();
    else if (Version->isDouble() || Version->isInt()) {
      std::ostringstream OS;
      OS << Version->asDouble();
      Accel.Version = OS.str();
    }
  }
  Accel.Description = AccelValue.getString("description");
  Accel.Kernel = AccelValue.getString("kernel");
  if (Accel.Kernel.empty())
    return fail(Error, "accelerator '" + Accel.Name + "' needs a 'kernel'");
  Accel.DataType = AccelValue.getString("data_type", "f32");

  if (failed(parseDmaConfig(AccelValue, Accel.DmaConfig, Error)))
    return failure();
  // Default staging buffer sizes if the config omitted them.
  if (Accel.DmaConfig.InputBufferSize == 0)
    Accel.DmaConfig.InputBufferSize = 0xFF00;
  if (Accel.DmaConfig.OutputBufferSize == 0)
    Accel.DmaConfig.OutputBufferSize = 0xFF00;
  if (Accel.DmaConfig.OutputAddress == 0)
    Accel.DmaConfig.OutputAddress =
        Accel.DmaConfig.InputAddress + Accel.DmaConfig.InputBufferSize + 0x42;

  const json::Value *Size = AccelValue.get("accel_size");
  if (!Size)
    return fail(Error,
                "accelerator '" + Accel.Name + "' needs 'accel_size'");
  if (Size->isInt()) {
    Accel.AccelSize.assign(3, Size->asInt());
  } else if (Size->isArray()) {
    for (const json::Value &Dim : Size->array()) {
      if (!Dim.isInt())
        return fail(Error, "'accel_size' entries must be integers");
      if (Dim.asInt() < -1)
        return fail(Error, "accelerator '" + Accel.Name +
                               "': 'accel_size' entries must be >= -1 "
                               "(got " + std::to_string(Dim.asInt()) + ")");
      Accel.AccelSize.push_back(Dim.asInt());
    }
  } else {
    return fail(Error, "'accel_size' must be an integer or array");
  }

  if (const json::Value *Dims = AccelValue.get("dims")) {
    if (!Dims->isArray())
      return fail(Error, "'dims' must be an array of dimension names");
    for (const json::Value &Dim : Dims->array())
      Accel.Dims.push_back(Dim.asString());
  }
  if (!Accel.Dims.empty() && Accel.Dims.size() != Accel.AccelSize.size())
    return fail(Error, "'dims' and 'accel_size' length mismatch");

  if (const json::Value *Data = AccelValue.get("data")) {
    if (!Data->isObject())
      return fail(Error, "'data' must be an object");
    for (const auto &[OperandName, DimList] : Data->members()) {
      std::vector<std::string> DimNames;
      if (!DimList.isArray())
        return fail(Error, "'data' entries must be dimension arrays");
      for (const json::Value &Dim : DimList.array())
        DimNames.push_back(Dim.asString());
      Accel.Data.emplace_back(OperandName, std::move(DimNames));
    }
  }

  // opcode_map.
  std::string MapText = AccelValue.getString("opcode_map");
  if (MapText.empty())
    return fail(Error,
                "accelerator '" + Accel.Name + "' needs an 'opcode_map'");
  std::string ParseError;
  auto Map = parseOpcodeMap(MapText, &ParseError,
                            Accel.Dims.empty() ? nullptr : &Accel.Dims);
  if (failed(Map))
    return fail(Error, "in opcode_map of '" + Accel.Name + "': " + ParseError);
  Accel.OpcodeMap = std::move(*Map);
  if (failed(validateOpcodeActions(Accel, Error)))
    return failure();

  // opcode_flow_map + selected_flow.
  const json::Value *FlowMap = AccelValue.get("opcode_flow_map");
  if (!FlowMap || !FlowMap->isObject())
    return fail(Error, "accelerator '" + Accel.Name +
                           "' needs an 'opcode_flow_map' object");
  for (const auto &[FlowId, FlowText] : FlowMap->members()) {
    if (!FlowText.isString())
      return fail(Error, "flow '" + FlowId + "' must be a string");
    auto Flow = parseOpcodeFlow(FlowText.asString(), &ParseError);
    if (failed(Flow))
      return fail(Error, "in flow '" + FlowId + "': " + ParseError);
    if (failed(validateFlowAgainstMap(*Flow, Accel.OpcodeMap, &ParseError)))
      return fail(Error, "in flow '" + FlowId + "': " + ParseError);
    if (failed(validateFlowScopes(Flow->Root, Accel, "flow '" + FlowId + "'",
                                  Error)))
      return failure();
    Accel.FlowMap.emplace_back(FlowId, std::move(*Flow));
  }
  Accel.SelectedFlow = AccelValue.getString("selected_flow");
  if (Accel.SelectedFlow.empty() && !Accel.FlowMap.empty())
    Accel.SelectedFlow = Accel.FlowMap.front().first;
  if (!Accel.lookupFlow(Accel.SelectedFlow))
    return fail(Error, "selected_flow '" + Accel.SelectedFlow +
                           "' is not defined in opcode_flow_map");

  // init_opcodes (optional).
  std::string InitText = AccelValue.getString("init_opcodes");
  if (!InitText.empty()) {
    auto Init = parseOpcodeFlow(InitText, &ParseError);
    if (failed(Init))
      return fail(Error,
                  "in init_opcodes of '" + Accel.Name + "': " + ParseError);
    if (failed(validateFlowAgainstMap(*Init, Accel.OpcodeMap, &ParseError)))
      return fail(Error,
                  "in init_opcodes of '" + Accel.Name + "': " + ParseError);
    if (failed(validateFlowScopes(Init->Root, Accel, "init_opcodes", Error)))
      return failure();
    Accel.InitOpcodes = std::move(*Init);
  }

  // Optional explicit permutation.
  if (const json::Value *Perm = AccelValue.get("permutation")) {
    if (!Perm->isArray())
      return fail(Error, "'permutation' must be an array");
    std::vector<unsigned> Permutation;
    for (const json::Value &Entry : Perm->array()) {
      if (Entry.isInt()) {
        Permutation.push_back(static_cast<unsigned>(Entry.asInt()));
        continue;
      }
      // Dimension name.
      bool Found = false;
      for (size_t I = 0; I < Accel.Dims.size(); ++I) {
        if (Accel.Dims[I] == Entry.asString()) {
          Permutation.push_back(static_cast<unsigned>(I));
          Found = true;
          break;
        }
      }
      if (!Found)
        return fail(Error, "unknown dimension '" + Entry.asString() +
                               "' in 'permutation'");
    }
    Accel.Permutation = std::move(Permutation);
  }

  return success();
}

static LogicalResult parseFaultEvent(const json::Value &EventValue,
                                     sim::FaultEvent &Event,
                                     std::string *Error) {
  if (!EventValue.isObject())
    return fail(Error, "'faults.events' entries must be objects");
  std::string Kind = EventValue.getString("kind");
  if (Kind == "drop")
    Event.Kind = sim::FaultKind::DropSend;
  else if (Kind == "truncate")
    Event.Kind = sim::FaultKind::TruncateSend;
  else if (Kind == "corrupt")
    Event.Kind = sim::FaultKind::CorruptWord;
  else if (Kind == "transient")
    Event.Kind = sim::FaultKind::TransientError;
  else if (Kind == "stall")
    Event.Kind = sim::FaultKind::Stall;
  else
    return fail(Error, "unknown fault kind '" + Kind +
                           "' (expected drop, truncate, corrupt, "
                           "transient or stall)");

  const json::Value *At = EventValue.get("at");
  if (!At || !At->isInt() || At->asInt() < 0)
    return fail(Error, "fault event '" + Kind +
                           "' needs a non-negative integer 'at' index");
  Event.At = static_cast<uint64_t>(At->asInt());

  int64_t Attempts = EventValue.getInt("attempts", 1);
  if (Attempts < 1)
    return fail(Error, "fault event 'attempts' must be >= 1");
  Event.Attempts = static_cast<uint32_t>(Attempts);
  Event.WordIndex = static_cast<uint32_t>(EventValue.getInt("word", 0));
  Event.XorMask = static_cast<uint32_t>(EventValue.getInt("xor", 1));
  if (Event.XorMask == 0)
    return fail(Error, "fault event 'xor' mask must be non-zero");
  int64_t Steps = EventValue.getInt("steps", 128);
  if (Steps < 1)
    return fail(Error, "fault event 'steps' must be >= 1");
  Event.Steps = static_cast<uint64_t>(Steps);
  return success();
}

static LogicalResult parseFaults(const json::Value &Root, SystemConfig &Config,
                                 std::string *Error) {
  const json::Value *Faults = Root.get("faults");
  if (!Faults)
    return success(); // Optional: absent means fault-free, hooks stay cold.
  if (!Faults->isObject())
    return fail(Error, "'faults' must be an object");
  Config.HasFaults = true;

  if (const json::Value *Events = Faults->get("events")) {
    if (!Events->isArray())
      return fail(Error, "'faults.events' must be an array");
    size_t Index = 0;
    for (const json::Value &EventValue : Events->array()) {
      sim::FaultEvent Event;
      std::string EventError;
      if (failed(parseFaultEvent(EventValue, Event, &EventError)))
        return fail(Error, "in faults.events[" + std::to_string(Index) +
                               "]: " + EventError);
      Config.Faults.Events.push_back(Event);
      ++Index;
    }
  }

  sim::RecoveryPolicy &Policy = Config.Faults.Recovery;
  if (const json::Value *Recover = Faults->get("recover")) {
    if (!Recover->isBool())
      return fail(Error, "'faults.recover' must be a boolean");
    Policy.Enabled = Recover->asBool();
  }
  int64_t Retries = Faults->getInt("retries", Policy.MaxRetries);
  int64_t Watchdog = Faults->getInt("watchdog", Policy.WatchdogPolls);
  int64_t Backoff = Faults->getInt("backoff", Policy.BackoffCycles);
  int64_t Poll = Faults->getInt("poll", Policy.PollCycles);
  if (Retries < 0 || Watchdog < 1 || Backoff < 0 || Poll < 1)
    return fail(Error, "'faults' policy fields out of range (retries/backoff "
                       ">= 0, watchdog/poll >= 1)");
  Policy.MaxRetries = static_cast<uint32_t>(Retries);
  Policy.WatchdogPolls = static_cast<uint64_t>(Watchdog);
  Policy.BackoffCycles = static_cast<uint64_t>(Backoff);
  Policy.PollCycles = static_cast<uint64_t>(Poll);

  int64_t Spares = Faults->getInt("spares", 0);
  if (Spares < 0)
    return fail(Error, "'faults.spares' must be >= 0");
  Config.SpareAccelerators = static_cast<unsigned>(Spares);

  // Two explicit events with the same kind-domain and index would race
  // for the same logical slot: the second can only fire on retries of the
  // first, which is never what a schedule author means. Diagnose instead
  // of silently accepting (the generated `random` schedule is exempt — it
  // models environmental noise and is appended after this check).
  for (size_t I = 0; I < Config.Faults.Events.size(); ++I) {
    for (size_t J = I + 1; J < Config.Faults.Events.size(); ++J) {
      const sim::FaultEvent &A = Config.Faults.Events[I];
      const sim::FaultEvent &B = Config.Faults.Events[J];
      if (A.At == B.At && sim::isDmaFault(A.Kind) == sim::isDmaFault(B.Kind))
        return fail(Error,
                    "'faults.events' entries " + std::to_string(I) + " and " +
                        std::to_string(J) + " both target " +
                        (sim::isDmaFault(A.Kind) ? "send" : "opcode") +
                        " index " + std::to_string(A.At) +
                        " (merge them or use 'attempts')");
    }
  }

  // Optional deterministic random schedule appended to the explicit events.
  if (const json::Value *Random = Faults->get("random")) {
    if (!Random->isObject())
      return fail(Error, "'faults.random' must be an object");
    int64_t Count = Random->getInt("count", 1);
    int64_t Max = Random->getInt("max", 64);
    if (Count < 1 || Max < 1)
      return fail(Error, "'faults.random' count and max must be >= 1");
    sim::FaultPlan Generated = sim::makeRandomFaultPlan(
        static_cast<uint32_t>(Random->getInt("seed", 0)),
        static_cast<unsigned>(Count), static_cast<uint64_t>(Max));
    Config.Faults.Events.insert(Config.Faults.Events.end(),
                                Generated.Events.begin(),
                                Generated.Events.end());
  }
  return success();
}

static LogicalResult parseServe(const json::Value &Root, SystemConfig &Config,
                                std::string *Error) {
  const json::Value *Serve = Root.get("serve");
  if (!Serve)
    return success(); // Optional: defaults apply when absent.
  if (!Serve->isObject())
    return fail(Error, "'serve' must be an object");
  Config.HasServe = true;
  ServeSection &S = Config.Serve;

  int64_t Instances = Serve->getInt("instances", S.Instances);
  int64_t QueueDepth = Serve->getInt("queue_depth", S.QueueDepth);
  int64_t MaxAttempts = Serve->getInt("max_attempts", S.MaxAttempts);
  int64_t Threshold = Serve->getInt("breaker_threshold", S.BreakerThreshold);
  int64_t Cooldown = Serve->getInt("breaker_cooldown", S.BreakerCooldown);
  int64_t PlanCache = Serve->getInt("plan_cache", S.PlanCacheCapacity);
  int64_t Threads = Serve->getInt("threads", S.Threads);
  if (Instances < 1 || QueueDepth < 1 || MaxAttempts < 1 || Threshold < 1)
    return fail(Error, "'serve' instances/queue_depth/max_attempts/"
                       "breaker_threshold must be >= 1");
  if (Cooldown < 0 || Threads < 0 || PlanCache < 1)
    return fail(Error, "'serve' breaker_cooldown/threads must be >= 0 and "
                       "plan_cache >= 1");
  S.Instances = static_cast<unsigned>(Instances);
  S.QueueDepth = static_cast<unsigned>(QueueDepth);
  S.MaxAttempts = static_cast<unsigned>(MaxAttempts);
  S.BreakerThreshold = static_cast<unsigned>(Threshold);
  S.BreakerCooldown = static_cast<unsigned>(Cooldown);
  S.PlanCacheCapacity = static_cast<unsigned>(PlanCache);
  S.Threads = static_cast<unsigned>(Threads);

  if (const json::Value *Deadline = Serve->get("deadline_ms")) {
    if ((!Deadline->isDouble() && !Deadline->isInt()) ||
        Deadline->asDouble() < 0)
      return fail(Error, "'serve.deadline_ms' must be a non-negative number");
    S.DefaultDeadlineMs = Deadline->asDouble();
  }
  if (const json::Value *Fallback = Serve->get("cpu_fallback")) {
    if (!Fallback->isBool())
      return fail(Error, "'serve.cpu_fallback' must be a boolean");
    S.CpuFallback = Fallback->asBool();
  }
  int64_t Faulty = Serve->getInt("faulty_instance", -1);
  if (Faulty < -1 || Faulty >= Instances)
    return fail(Error, "'serve.faulty_instance' must name a pool instance "
                       "(0 <= index < instances, or -1 for none)");
  S.FaultyInstance = Faulty;
  if (Faulty >= 0 && !Config.HasFaults)
    return fail(Error, "'serve.faulty_instance' requires a 'faults' section "
                       "supplying the schedule to assign");
  int64_t FaultyJobs = Serve->getInt("faulty_jobs", 0);
  if (FaultyJobs < 0)
    return fail(Error, "'serve.faulty_jobs' must be >= 0");
  S.FaultyJobs = static_cast<unsigned>(FaultyJobs);
  return success();
}

FailureOr<SystemConfig> parser::parseSystemConfig(const std::string &Text,
                                                  std::string *Error) {
  std::string JsonError;
  auto Root = json::parse(Text, &JsonError);
  if (failed(Root))
    return (void)fail(Error, "configuration is not valid JSON: " + JsonError),
           failure();
  if (!Root->isObject())
    return (void)fail(Error, "configuration root must be an object"),
           failure();

  SystemConfig Config;
  if (failed(parseCpu(*Root, Config.Cpu, Error)))
    return failure();
  if (failed(parseFaults(*Root, Config, Error)))
    return failure();

  const json::Value *Accels = Root->get("accelerators");
  if (!Accels || !Accels->isArray())
    return (void)fail(Error, "configuration needs an 'accelerators' array"),
           failure();
  // Every entry must parse cleanly, not just the first one the pipeline
  // happens to use: since the planning layer dispatches across the whole
  // array, a malformed trailing entry is a hard error.
  size_t EntryIndex = 0;
  for (const json::Value &AccelValue : Accels->array()) {
    AcceleratorDesc Accel;
    std::string EntryError;
    if (failed(parseAccelerator(AccelValue, Accel, &EntryError))) {
      if (Error)
        *Error = "in accelerators[" + std::to_string(EntryIndex) +
                 "]: " + EntryError;
      return failure();
    }
    Config.Accelerators.push_back(std::move(Accel));
    ++EntryIndex;
  }
  if (Config.Accelerators.empty())
    return (void)fail(Error, "configuration defines no accelerators"),
           failure();
  // Names must be unique so plan diagnostics and dispatch are unambiguous.
  for (size_t I = 0; I < Config.Accelerators.size(); ++I)
    for (size_t J = I + 1; J < Config.Accelerators.size(); ++J)
      if (Config.Accelerators[I].Name == Config.Accelerators[J].Name)
        return (void)fail(Error, "duplicate accelerator name '" +
                                     Config.Accelerators[I].Name + "'"),
               failure();
  // Spares are per-primary clones: asking for more spares than configured
  // accelerators cannot be honoured and previously degraded silently.
  if (Config.SpareAccelerators > Config.Accelerators.size())
    return (void)fail(Error,
                      "'faults.spares' (" +
                          std::to_string(Config.SpareAccelerators) +
                          ") exceeds the number of configured accelerators (" +
                          std::to_string(Config.Accelerators.size()) + ")"),
           failure();
  if (failed(parseServe(*Root, Config, Error)))
    return failure();
  return Config;
}

FailureOr<SystemConfig> parser::parseSystemConfigFile(const std::string &Path,
                                                      std::string *Error) {
  std::ifstream Input(Path);
  if (!Input) {
    if (Error)
      *Error = "cannot open configuration file '" + Path + "'";
    return failure();
  }
  std::ostringstream Contents;
  Contents << Input.rdbuf();
  return parseSystemConfig(Contents.str(), Error);
}
