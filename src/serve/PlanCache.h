//===- PlanCache.h - Shared LRU cache of compiled ExecPlans -----*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, LRU-bounded cache of compiled kernels keyed by
/// (kernel, shape, element type, accelerator). The serve layer compiles a
/// job's driver once per key and then executes the pre-decoded plan on
/// every pool instance hosting that accelerator; entries are handed out as
/// shared_ptr so an eviction never invalidates an execution already in
/// flight. DecodedPlan owns copies of everything it needs, so the IR and
/// MLIRContext used during compilation are discarded immediately.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SERVE_PLANCACHE_H
#define AXI4MLIR_SERVE_PLANCACHE_H

#include "exec/ExecPlanRun.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace axi4mlir {
namespace serve {

/// One compiled job driver: the dispatch-ready plan plus the TilingPlan
/// modeled cost of the kernel on its accelerator (0 for host-CPU plans).
struct CompiledKernel {
  std::shared_ptr<const exec::DecodedPlan> Decoded;
  double EstimatedCostMs = 0;
  /// Accelerator the plan was lowered for (empty = host-CPU fallback).
  std::string Accelerator;
};

/// The shared cache. All methods are thread-safe; concurrent misses on the
/// same key may both compile (deterministically identical plans) and the
/// second insert wins — cheaper than a per-key latch and harmless.
class PlanCache {
public:
  explicit PlanCache(size_t Capacity) : Capacity(Capacity < 1 ? 1 : Capacity) {}

  /// Returns the cached kernel for \p Key (refreshing its recency) or null.
  /// Counts a hit or a miss.
  std::shared_ptr<const CompiledKernel> lookup(const std::string &Key) {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Index.find(Key);
    if (It == Index.end()) {
      ++Misses;
      return nullptr;
    }
    ++Hits;
    Lru.splice(Lru.begin(), Lru, It->second);
    return Lru.front().second;
  }

  /// Inserts (or refreshes) \p Kernel under \p Key, evicting the least
  /// recently used entries beyond capacity.
  void insert(const std::string &Key,
              std::shared_ptr<const CompiledKernel> Kernel) {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      It->second->second = std::move(Kernel);
      Lru.splice(Lru.begin(), Lru, It->second);
      return;
    }
    Lru.emplace_front(Key, std::move(Kernel));
    Index[Key] = Lru.begin();
    while (Lru.size() > Capacity) {
      Index.erase(Lru.back().first);
      Lru.pop_back();
      ++Evictions;
    }
  }

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> Guard(Mutex);
    return {Hits, Misses, Evictions};
  }
  size_t size() const {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Lru.size();
  }
  size_t capacity() const { return Capacity; }

private:
  mutable std::mutex Mutex;
  size_t Capacity;
  /// MRU at the front.
  std::list<std::pair<std::string, std::shared_ptr<const CompiledKernel>>> Lru;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string,
                          std::shared_ptr<const CompiledKernel>>>::iterator>
      Index;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace serve
} // namespace axi4mlir

#endif // AXI4MLIR_SERVE_PLANCACHE_H
