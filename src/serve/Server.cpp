//===- Server.cpp - Resilient multi-tenant accelerator service ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "dialects/InitAllDialects.h"
#include "dialects/Linalg.h"
#include "exec/ExecPlan.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "runtime/DmaRuntime.h"
#include "sim/MatMulAccelerator.h"
#include "sim/SoC.h"
#include "transforms/Passes.h"
#include "transforms/TilingPlan.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace axi4mlir;
using namespace axi4mlir::serve;
using runtime::MemRefDesc;

const char *serve::toString(JobKind Kind) {
  return Kind == JobKind::MatMul ? "matmul" : "conv2d";
}

const char *serve::toString(JobStatus Status) {
  switch (Status) {
  case JobStatus::Completed:
    return "completed";
  case JobStatus::Overloaded:
    return "overloaded";
  case JobStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Failed:
    return "failed";
  }
  return "unknown";
}

const char *serve::toString(BreakerState State) {
  switch (State) {
  case BreakerState::Closed:
    return "closed";
  case BreakerState::Open:
    return "open";
  case BreakerState::HalfOpen:
    return "half-open";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Job geometry helpers
//===----------------------------------------------------------------------===//

namespace {

const char *kernelNameOf(JobKind Kind) {
  return Kind == JobKind::MatMul ? "linalg.matmul" : "linalg.conv_2d_nchw_fchw";
}

int64_t convOutHW(const JobRequest &Request) {
  return (Request.InHW - Request.FilterHW) / Request.Stride + 1;
}

bool validateRequest(const JobRequest &Request, std::string &Reason) {
  if (Request.Kind == JobKind::MatMul) {
    if (Request.M <= 0 || Request.N <= 0 || Request.K <= 0) {
      Reason = "invalid matmul shape: M, N and K must be positive";
      return false;
    }
    return true;
  }
  if (Request.InChannels <= 0 || Request.OutChannels <= 0 ||
      Request.InHW <= 0 || Request.FilterHW <= 0 || Request.Stride <= 0) {
    Reason = "invalid conv2d shape: all dimensions must be positive";
    return false;
  }
  if (Request.FilterHW > Request.InHW) {
    Reason = "invalid conv2d shape: filter is larger than the input";
    return false;
  }
  return true;
}

/// Canonical loop ranges in the order the planner's indexing maps expect:
/// matmul (m, n, k); conv (b, oc, oh, ow, ic, fh, fw).
std::vector<int64_t> loopRangesOf(const JobRequest &Request) {
  if (Request.Kind == JobKind::MatMul)
    return {Request.M, Request.N, Request.K};
  int64_t Out = convOutHW(Request);
  return {1,
          Request.OutChannels,
          Out,
          Out,
          Request.InChannels,
          Request.FilterHW,
          Request.FilterHW};
}

std::vector<AffineMap> indexingMapsOf(const JobRequest &Request) {
  return Request.Kind == JobKind::MatMul
             ? linalg::getMatmulIndexingMaps()
             : linalg::getConvIndexingMaps(Request.Stride, Request.Stride);
}

std::string shapeKey(const JobRequest &Request) {
  std::ostringstream OS;
  OS << toString(Request.Kind) << '|';
  if (Request.Kind == JobKind::MatMul)
    OS << Request.M << 'x' << Request.N << 'x' << Request.K;
  else
    OS << Request.InChannels << 'x' << Request.InHW << 'x'
       << Request.OutChannels << 'x' << Request.FilterHW << 's'
       << Request.Stride;
  OS << '|' << (Request.Elem == sim::ElemKind::F32 ? "f32" : "i32");
  return OS.str();
}

std::string planKeyOf(const JobRequest &Request,
                      const parser::AcceleratorDesc *Accel) {
  return shapeKey(Request) + '|' + (Accel ? "accel:" + Accel->Name : "cpu");
}

/// Coarse host-CPU cost model for deadline gating of the fallback path:
/// a scalar MAC costs roughly 8 host instructions (two loads, multiply,
/// add, amortized store and loop overhead). Only the order of magnitude
/// matters — it must be comparable to the accelerator plan costs.
double cpuEstimateMs(const sim::SoCParams &Params, const JobRequest &Request) {
  double Macs;
  if (Request.Kind == JobKind::MatMul) {
    Macs = double(Request.M) * double(Request.N) * double(Request.K);
  } else {
    double Out = double(convOutHW(Request));
    Macs = double(Request.OutChannels) * Out * Out *
           double(Request.InChannels) * double(Request.FilterHW) *
           double(Request.FilterHW);
  }
  return Params.taskClockMs(Macs * 8.0 * Params.CyclesPerInstruction, 0);
}

/// Accelerator engine size for the SoC factory: the largest configured
/// tile (the square engines store the full tile), floor 8 when the config
/// only has sentinel entries.
int64_t accelTileSize(const parser::AcceleratorDesc &Accel) {
  int64_t Size = 0;
  for (int64_t Tile : Accel.AccelSize)
    Size = std::max(Size, Tile);
  return Size <= 0 ? 8 : Size;
}

std::vector<MemRefDesc> makeJobBuffers(const JobRequest &Request) {
  std::vector<MemRefDesc> Args;
  if (Request.Kind == JobKind::MatMul) {
    Args.push_back(MemRefDesc::alloc({Request.M, Request.K}, Request.Elem));
    Args.push_back(MemRefDesc::alloc({Request.K, Request.N}, Request.Elem));
    Args.push_back(MemRefDesc::alloc({Request.M, Request.N}, Request.Elem));
  } else {
    int64_t Out = convOutHW(Request);
    Args.push_back(MemRefDesc::alloc(
        {1, Request.InChannels, Request.InHW, Request.InHW}, Request.Elem));
    Args.push_back(MemRefDesc::alloc({Request.OutChannels, Request.InChannels,
                                      Request.FilterHW, Request.FilterHW},
                                     Request.Elem));
    Args.push_back(
        MemRefDesc::alloc({1, Request.OutChannels, Out, Out}, Request.Elem));
  }
  // Same seeds as the solo pipeline entry points, so checksums are
  // comparable across routing decisions and the CPU fallback.
  exec::fillRandom(Args[0], Request.Seed);
  exec::fillRandom(Args[1], Request.Seed + 1);
  exec::fillRandom(Args[2], Request.Seed + 2);
  return Args;
}

/// FNV-1a 64 over the output buffer words.
uint64_t checksumOf(const MemRefDesc &Desc) {
  uint64_t Hash = 1469598103934665603ull;
  const auto &Words = Desc.Buffer->Data;
  for (size_t I = 0, E = Words.size(); I != E; ++I) {
    uint32_t Word = Words[I];
    for (int Byte = 0; Byte < 4; ++Byte) {
      Hash ^= (Word >> (8 * Byte)) & 0xffu;
      Hash *= 1099511628211ull;
    }
  }
  return Hash;
}

/// Compiles one job driver: builds the workload IR, runs the AXI4MLIR
/// pipeline for \p Accel (or named->generic for the CPU path), compiles
/// the ExecPlan and pre-decodes it. The IR and context are discarded —
/// DecodedPlan owns copies of everything it executes.
std::shared_ptr<const CompiledKernel>
compileKernel(const JobRequest &Request, const parser::AcceleratorDesc *Accel,
              const ServerOptions &Options, std::string &Error) {
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      Request.Kind == JobKind::MatMul
          ? exec::buildMatMulFunc(Builder, Request.M, Request.N, Request.K,
                                  Request.Elem)
          : exec::buildConvFunc(Builder, 1, Request.InChannels, Request.InHW,
                                Request.OutChannels, Request.FilterHW,
                                Request.Stride, Request.Elem);
  OwningOpRef Owner(Func.getOperation());

  auto Kernel = std::make_shared<CompiledKernel>();
  if (Accel) {
    transforms::LoweringOptions Lowering;
    Lowering.EnableCpuTiling = Request.Kind == JobKind::MatMul;
    Lowering.CacheBytes = Options.Params.L2SizeBytes;
    Lowering.CostParams = Options.Params;
    auto Plans = std::make_shared<std::vector<transforms::TilingPlan>>();
    transforms::PassManager Pipeline = transforms::buildPipeline(
        std::vector<parser::AcceleratorDesc>{*Accel}, Lowering, Plans);
    if (failed(Pipeline.run(Func, Error)))
      return nullptr;
    if (!Plans->empty())
      Kernel->EstimatedCostMs = Plans->front().EstimatedCostMs;
    Kernel->Accelerator = Accel->Name;
  } else if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    return nullptr;
  }

  std::unique_ptr<exec::ExecPlan> Plan = exec::ExecPlan::compile(Func, Error);
  if (!Plan)
    return nullptr;
  Kernel->Decoded = exec::DecodedPlan::decode(*Plan);
  return Kernel;
}

} // namespace

//===----------------------------------------------------------------------===//
// Server internals
//===----------------------------------------------------------------------===//

struct Server::Instance {
  parser::AcceleratorDesc Accel;
  InstanceFaults Faults;

  BreakerState Breaker = BreakerState::Closed;
  unsigned ConsecutiveFailures = 0;
  unsigned CooldownLeft = 0;
  bool ProbeInFlight = false;

  /// Attempts ever dispatched here (the fault window counts these).
  unsigned AttemptsStarted = 0;
  unsigned InFlight = 0;
  /// Modeled busy time accumulated on this instance (the pool clock).
  double BusyMs = 0;
};

struct Server::PendingJob {
  uint64_t Id = 0;
  JobRequest Request;
  /// Resolved budget (server default applied); 0 = none.
  double DeadlineMs = 0;
  /// Pool clock when the job was admitted (for modeled queue wait).
  double ArrivalMs = 0;
};

struct Server::AttemptSetup {
  int Instance = -1; // -1 = host-CPU fallback
  const parser::AcceleratorDesc *Accel = nullptr;
  bool IsProbe = false;
  bool Faulty = false;
  sim::FaultPlan Faults;
  unsigned Spares = 0;
};

struct Server::AttemptResult {
  bool Ok = false;
  std::string Error;
  double ModeledMs = 0;
  uint64_t Checksum = 0;
  sim::PerfReport Report;
};

struct Server::Impl {
  explicit Impl(const ServerOptions &Options)
      : Options(Options), Plans(Options.PlanCacheCapacity) {}

  ServerOptions Options;
  std::vector<Instance> Instances;
  PlanCache Plans;

  mutable std::mutex Mutex;
  std::condition_variable WorkCv;
  std::condition_variable IdleCv;
  std::deque<PendingJob> Queue;
  unsigned Executing = 0;
  bool Draining = false;
  bool Stopping = false;

  uint64_t LastJobId = 0;
  ServerStats Stats;
  std::map<uint64_t, JobOutcome> Outcomes;
  /// shapeKey|accel -> TilingPlan modeled cost (negative = illegal).
  std::map<std::string, double> CostCache;

  std::vector<std::thread> Workers;

  double costForLocked(const JobRequest &Request,
                       const parser::AcceleratorDesc &Accel);
  int routeLocked(const JobRequest &Request, int Exclude);
  AttemptSetup beginAttemptLocked(int Chosen, const PendingJob &Job,
                                  bool FirstAttempt, JobOutcome &Out);
  void finishAttemptLocked(const AttemptSetup &Setup,
                           const AttemptResult &Result);
  AttemptResult runAttempt(const JobRequest &Request,
                           const AttemptSetup &Setup);
  void processJobLocked(PendingJob Job, std::unique_lock<std::mutex> &Lock);
  void recordOutcomeLocked(JobOutcome Out);
  void workerLoop();
};

double Server::Impl::costForLocked(const JobRequest &Request,
                                   const parser::AcceleratorDesc &Accel) {
  std::string Key = shapeKey(Request) + '|' + Accel.Name;
  auto It = CostCache.find(Key);
  if (It != CostCache.end())
    return It->second;
  transforms::PlanningOptions Planning;
  Planning.Params = Options.Params;
  std::string Error;
  FailureOr<transforms::TilingPlan> Plan = transforms::planKernelDispatch(
      loopRangesOf(Request), indexingMapsOf(Request), {Accel}, Planning,
      Error);
  double Cost = succeeded(Plan) ? Plan->EstimatedCostMs : -1.0;
  CostCache[Key] = Cost;
  return Cost;
}

/// Picks the cheapest healthy instance for the job. Pass 0 skips the
/// instance the previous attempt just failed on (\p Exclude) so a retry
/// hedges elsewhere; pass 1 reconsiders it only when nothing else was
/// available. Open breakers consume one cooldown tick per consideration
/// and transition to HalfOpen at zero; a half-open instance admits a
/// single probe at a time.
int Server::Impl::routeLocked(const JobRequest &Request, int Exclude) {
  const char *Kernel = kernelNameOf(Request.Kind);
  for (int Pass = 0; Pass < 2; ++Pass) {
    int Best = -1;
    double BestScore = 0;
    for (size_t I = 0; I < Instances.size(); ++I) {
      if (Pass == 0 ? int(I) == Exclude : int(I) != Exclude)
        continue;
      Instance &Inst = Instances[I];
      if (Inst.Accel.Kernel != Kernel)
        continue;
      if (Inst.Breaker == BreakerState::Open) {
        if (Inst.CooldownLeft > 0) {
          --Inst.CooldownLeft;
          continue;
        }
        Inst.Breaker = BreakerState::HalfOpen;
      }
      if (Inst.Breaker == BreakerState::HalfOpen && Inst.ProbeInFlight)
        continue;
      double Cost = costForLocked(Request, Inst.Accel);
      if (Cost < 0)
        continue;
      double Score = Cost * (1.0 + Inst.InFlight);
      if (Best < 0 || Score < BestScore) {
        Best = int(I);
        BestScore = Score;
      }
    }
    if (Best >= 0)
      return Best;
    if (Exclude < 0)
      break; // nothing to reconsider
  }
  return -1;
}

Server::AttemptSetup Server::Impl::beginAttemptLocked(int Chosen,
                                                      const PendingJob &Job,
                                                      bool FirstAttempt,
                                                      JobOutcome &Out) {
  AttemptSetup Setup;
  Setup.Instance = Chosen;
  if (Chosen < 0)
    return Setup;
  Instance &Inst = Instances[Chosen];
  Setup.Accel = &Inst.Accel;
  if (Inst.Breaker == BreakerState::HalfOpen) {
    Setup.IsProbe = true;
    Inst.ProbeInFlight = true;
  }
  bool InWindow = Inst.Faults.JobsAffected == 0 ||
                  Inst.AttemptsStarted < Inst.Faults.JobsAffected;
  if (InWindow && (!Inst.Faults.Plan.empty() || Inst.Faults.Spares > 0)) {
    Setup.Faulty = true;
    Setup.Faults = Inst.Faults.Plan;
    Setup.Spares = Inst.Faults.Spares;
  }
  ++Inst.AttemptsStarted;
  ++Inst.InFlight;
  if (FirstAttempt)
    Out.QueueWaitMs = std::max(0.0, Inst.BusyMs - Job.ArrivalMs);
  return Setup;
}

void Server::Impl::finishAttemptLocked(const AttemptSetup &Setup,
                                       const AttemptResult &Result) {
  if (Setup.Instance < 0)
    return; // CPU fallback carries no breaker state
  Instance &Inst = Instances[Setup.Instance];
  --Inst.InFlight;
  Inst.BusyMs += Result.ModeledMs;
  if (Result.Ok) {
    Inst.ConsecutiveFailures = 0;
    if (Setup.IsProbe)
      Inst.ProbeInFlight = false;
    if (Inst.Breaker != BreakerState::Closed)
      Inst.Breaker = BreakerState::Closed;
    return;
  }
  if (Setup.IsProbe) {
    // A failed probe re-opens the breaker for a fresh cooldown.
    Inst.ProbeInFlight = false;
    Inst.Breaker = BreakerState::Open;
    Inst.CooldownLeft = Options.BreakerCooldown;
    return;
  }
  if (Inst.Breaker == BreakerState::Closed &&
      ++Inst.ConsecutiveFailures >= Options.BreakerThreshold) {
    Inst.Breaker = BreakerState::Open;
    Inst.CooldownLeft = Options.BreakerCooldown;
    ++Stats.BreakerTrips;
  }
}

Server::AttemptResult Server::Impl::runAttempt(const JobRequest &Request,
                                               const AttemptSetup &Setup) {
  AttemptResult Result;
  std::string Error;

  std::string Key = planKeyOf(Request, Setup.Accel);
  std::shared_ptr<const CompiledKernel> Kernel = Plans.lookup(Key);
  bool CacheHit = Kernel != nullptr;
  if (!Kernel) {
    Kernel = compileKernel(Request, Setup.Accel, Options, Error);
    if (!Kernel) {
      Result.Error = "plan compilation failed: " + Error;
      return Result;
    }
    Plans.insert(Key, Kernel);
  }

  std::vector<MemRefDesc> Args = makeJobBuffers(Request);

  std::unique_ptr<sim::SoC> Soc;
  if (!Setup.Accel) {
    Soc = sim::makeCpuOnlySoC(Options.Params);
  } else if (Request.Kind == JobKind::MatMul) {
    FailureOr<sim::MatMulAccelerator::Version> Version =
        sim::MatMulAccelerator::versionFromName(Setup.Accel->Name, Error);
    if (failed(Version)) {
      Result.Error = Error;
      return Result;
    }
    Soc = sim::makeMatMulSoC(*Version, accelTileSize(*Setup.Accel),
                             Request.Elem, Options.Params);
  } else {
    Soc = sim::makeConvSoC(Request.Elem, Options.Params);
  }
  if (CacheHit)
    Soc->perf().onPlanCacheHit();
  else
    Soc->perf().onPlanCacheMiss();

  // Replay the instance's fault schedule through a fresh injector so every
  // affected attempt sees the deterministic schedule from the start.
  std::optional<sim::FaultInjector> Injector;
  if (Setup.Faulty) {
    for (unsigned I = 0; I < Setup.Spares; ++I)
      Soc->addSpareAccelerator(Soc->accelerator()->cloneFresh(),
                               Kernel->EstimatedCostMs);
    Injector.emplace(Setup.Faults);
    Soc->attachFaultInjector(&*Injector);
  }

  std::optional<runtime::DmaRuntime> Runtime;
  if (Setup.Accel)
    Runtime.emplace(*Soc, /*SpecializeCopies=*/true);

  LogicalResult Run = Kernel->Decoded->run(
      *Soc, Setup.Accel ? &*Runtime : nullptr, Args, Error);
  Result.Report = Soc->report();
  Result.ModeledMs = Result.Report.TaskClockMs;
  if (failed(Run)) {
    Result.Error = Error.empty() ? "execution failed" : Error;
    return Result;
  }
  Result.Checksum = checksumOf(Args.back());
  Result.Ok = true;
  return Result;
}

void Server::Impl::processJobLocked(PendingJob Job,
                                    std::unique_lock<std::mutex> &Lock) {
  JobOutcome Out;
  Out.Id = Job.Id;
  double SpentMs = 0;
  int Exclude = -1;
  int PrevInstance = -2;
  unsigned Attempt = 0;
  std::string LastError;

  for (;;) {
    int Chosen = routeLocked(Job.Request, Exclude);
    bool UseCpu = Chosen < 0;
    if (UseCpu && !Options.CpuFallback) {
      Out.Status = JobStatus::Failed;
      Out.Error = Attempt == 0
                      ? std::string("no healthy instance for kernel '") +
                            kernelNameOf(Job.Request.Kind) +
                            "' and host-CPU fallback is disabled"
                      : "no healthy instance remains after " +
                            std::to_string(Attempt) +
                            " attempt(s); last error: " + LastError;
      break;
    }

    // Deadline watchdog: cancel once the budget cannot cover another
    // attempt's modeled cost. The budget covers the whole modeled
    // latency, so the first attempt also charges the queueing delay the
    // job would pay before running on the chosen instance.
    double EstimateMs = UseCpu ? cpuEstimateMs(Options.Params, Job.Request)
                               : costForLocked(Job.Request,
                                               Instances[Chosen].Accel);
    if (Attempt == 0 && !UseCpu)
      EstimateMs +=
          std::max(0.0, Instances[Chosen].BusyMs - Job.ArrivalMs);
    else
      EstimateMs += Out.QueueWaitMs;
    if (Job.DeadlineMs > 0 && SpentMs + EstimateMs > Job.DeadlineMs) {
      Out.Status = JobStatus::DeadlineExceeded;
      std::ostringstream OS;
      OS << "deadline watchdog: modeled budget " << Job.DeadlineMs
         << " ms exhausted after " << Attempt << " attempt(s) (" << SpentMs
         << " ms spent, next attempt needs " << EstimateMs << " ms)";
      Out.Error = OS.str();
      if (!LastError.empty())
        Out.Error += "; last error: " + LastError;
      break;
    }

    if (Attempt > 0) {
      ++Stats.Retries;
      if (!UseCpu && Chosen != PrevInstance)
        ++Stats.Failovers;
    }
    ++Attempt;
    AttemptSetup Setup = beginAttemptLocked(Chosen, Job, Attempt == 1, Out);

    Lock.unlock();
    AttemptResult Result = runAttempt(Job.Request, Setup);
    Lock.lock();

    SpentMs += Result.ModeledMs;
    finishAttemptLocked(Setup, Result);

    if (Result.Ok) {
      Out.Status = JobStatus::Completed;
      Out.Instance = Chosen;
      Out.CpuFallback = UseCpu;
      Out.Checksum = Result.Checksum;
      Out.Report = Result.Report;
      if (UseCpu)
        ++Stats.CpuFallbacks;
      break;
    }

    LastError = Result.Error;
    if (UseCpu) {
      // The fallback path is deterministic and fault-free: a failure here
      // would repeat, so retrying is pointless.
      Out.Status = JobStatus::Failed;
      Out.Error = "host-CPU fallback failed: " + LastError;
      break;
    }
    if (Attempt >= Options.MaxAttempts) {
      Out.Status = JobStatus::Failed;
      Out.Error = "retries exhausted after " + std::to_string(Attempt) +
                  " attempt(s): " + LastError;
      break;
    }
    Exclude = Chosen;
    PrevInstance = Chosen;
  }

  Out.Attempts = Attempt;
  Out.ModeledMs = SpentMs;
  Out.LatencyMs = SpentMs + Out.QueueWaitMs;
  recordOutcomeLocked(std::move(Out));
}

void Server::Impl::recordOutcomeLocked(JobOutcome Out) {
  switch (Out.Status) {
  case JobStatus::Completed:
    ++Stats.Completed;
    break;
  case JobStatus::Overloaded:
    ++Stats.Overloaded;
    break;
  case JobStatus::DeadlineExceeded:
    ++Stats.DeadlineExceeded;
    break;
  case JobStatus::Rejected:
    ++Stats.Rejected;
    break;
  case JobStatus::Failed:
    ++Stats.Failed;
    break;
  }
  Outcomes[Out.Id] = std::move(Out);
}

void Server::Impl::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) {
      if (Stopping)
        return;
      continue;
    }
    PendingJob Job = std::move(Queue.front());
    Queue.pop_front();
    ++Executing;
    processJobLocked(std::move(Job), Lock);
    --Executing;
    IdleCv.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

ServerOptions serve::makeServerOptions(const parser::SystemConfig &Config) {
  ServerOptions Options;
  const parser::ServeSection &Serve = Config.Serve;
  Options.Instances = Serve.Instances;
  Options.QueueDepth = Serve.QueueDepth;
  Options.MaxAttempts = Serve.MaxAttempts;
  Options.BreakerThreshold = Serve.BreakerThreshold;
  Options.BreakerCooldown = Serve.BreakerCooldown;
  Options.PlanCacheCapacity = Serve.PlanCacheCapacity;
  Options.Threads = Serve.Threads;
  Options.DefaultDeadlineMs = Serve.DefaultDeadlineMs;
  Options.CpuFallback = Serve.CpuFallback;
  Options.Params.L2SizeBytes = Config.Cpu.lastLevelCacheBytes();
  return Options;
}

Server::Server(std::vector<parser::AcceleratorDesc> Accels,
               const ServerOptions &Options)
    : State(std::make_unique<Impl>(Options)) {
  Impl &S = *State;
  unsigned Count = std::max(1u, Options.Instances);
  if (!Accels.empty()) {
    S.Instances.reserve(Count);
    for (unsigned I = 0; I < Count; ++I) {
      Instance Inst;
      Inst.Accel = Accels[I % Accels.size()];
      S.Instances.push_back(std::move(Inst));
    }
  }
  for (unsigned T = 0; T < Options.Threads; ++T)
    S.Workers.emplace_back([&S] { S.workerLoop(); });
}

Server::~Server() { shutdown(); }

void Server::setInstanceFaults(unsigned Index, InstanceFaults Faults) {
  Impl &S = *State;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  assert(Index < S.Instances.size() && "fault index out of range");
  if (Index < S.Instances.size())
    S.Instances[Index].Faults = std::move(Faults);
}

uint64_t Server::submit(const JobRequest &Request) {
  Impl &S = *State;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint64_t Id = ++S.LastJobId;
  ++S.Stats.Submitted;

  auto Shed = [&](JobStatus Status, std::string Error) {
    JobOutcome Out;
    Out.Id = Id;
    Out.Status = Status;
    Out.Error = std::move(Error);
    S.recordOutcomeLocked(std::move(Out));
    return Id;
  };

  if (S.Draining)
    return Shed(JobStatus::Rejected, "server is draining; submission refused");
  std::string Reason;
  if (!validateRequest(Request, Reason))
    return Shed(JobStatus::Rejected, Reason);

  // Best-case modeled cost across the pool (breakers ignored: a tripped
  // instance may heal before the job runs).
  double BestMs = -1;
  double ArrivalMs = -1;
  for (Instance &Inst : S.Instances) {
    if (Inst.Accel.Kernel != kernelNameOf(Request.Kind))
      continue;
    double Cost = S.costForLocked(Request, Inst.Accel);
    if (Cost >= 0 && (BestMs < 0 || Cost < BestMs))
      BestMs = Cost;
    if (ArrivalMs < 0 || Inst.BusyMs < ArrivalMs)
      ArrivalMs = Inst.BusyMs;
  }
  if (BestMs < 0) {
    if (!S.Options.CpuFallback)
      return Shed(JobStatus::Rejected,
                  std::string("no configured instance supports kernel '") +
                      kernelNameOf(Request.Kind) +
                      "' and host-CPU fallback is disabled");
    BestMs = cpuEstimateMs(S.Options.Params, Request);
  }

  double DeadlineMs =
      Request.DeadlineMs < 0 ? S.Options.DefaultDeadlineMs : Request.DeadlineMs;
  if (DeadlineMs > 0 && BestMs > DeadlineMs) {
    std::ostringstream OS;
    OS << "infeasible deadline: best-case modeled cost " << BestMs
       << " ms exceeds the " << DeadlineMs << " ms budget";
    return Shed(JobStatus::DeadlineExceeded, OS.str());
  }

  if (S.Queue.size() >= S.Options.QueueDepth)
    return Shed(JobStatus::Overloaded,
                "admission queue full (depth " +
                    std::to_string(S.Options.QueueDepth) + ")");

  ++S.Stats.Admitted;
  PendingJob Job;
  Job.Id = Id;
  Job.Request = Request;
  Job.DeadlineMs = DeadlineMs;
  Job.ArrivalMs = ArrivalMs < 0 ? 0 : ArrivalMs;
  S.Queue.push_back(std::move(Job));
  S.WorkCv.notify_one();
  return Id;
}

void Server::drain() {
  Impl &S = *State;
  std::unique_lock<std::mutex> Lock(S.Mutex);
  if (S.Options.Threads == 0) {
    // Deterministic scheduler: FIFO on the caller's thread.
    while (!S.Queue.empty()) {
      PendingJob Job = std::move(S.Queue.front());
      S.Queue.pop_front();
      S.processJobLocked(std::move(Job), Lock);
    }
    return;
  }
  S.IdleCv.wait(Lock, [&S] { return S.Queue.empty() && S.Executing == 0; });
}

void Server::shutdown() {
  Impl &S = *State;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Draining = true;
  }
  drain();
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Stopping = true;
  }
  S.WorkCv.notify_all();
  for (std::thread &Worker : S.Workers)
    if (Worker.joinable())
      Worker.join();
  S.Workers.clear();
}

std::vector<JobOutcome> Server::takeOutcomes() {
  Impl &S = *State;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::vector<JobOutcome> Result;
  Result.reserve(S.Outcomes.size());
  for (auto &Entry : S.Outcomes)
    Result.push_back(std::move(Entry.second));
  S.Outcomes.clear();
  return Result;
}

ServerStats Server::stats() const {
  Impl &S = *State;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  ServerStats Stats = S.Stats;
  Stats.Plans = S.Plans.stats();
  return Stats;
}

BreakerState Server::breakerState(unsigned Index) const {
  Impl &S = *State;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  assert(Index < S.Instances.size() && "breaker index out of range");
  return Index < S.Instances.size() ? S.Instances[Index].Breaker
                                    : BreakerState::Closed;
}

unsigned Server::numInstances() const {
  Impl &S = *State;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return unsigned(S.Instances.size());
}

JobOutcome serve::runSoloJob(const JobRequest &Request,
                             const std::vector<parser::AcceleratorDesc> &Accels,
                             const ServerOptions &Options) {
  ServerOptions Solo = Options;
  Solo.Threads = 0;
  Solo.DefaultDeadlineMs = 0;
  Solo.QueueDepth = std::max(1u, Solo.QueueDepth);
  JobRequest Reference = Request;
  Reference.DeadlineMs = 0;
  Server Instance(Accels, Solo);
  Instance.submit(Reference);
  Instance.drain();
  std::vector<JobOutcome> Outcomes = Instance.takeOutcomes();
  return Outcomes.empty() ? JobOutcome{} : std::move(Outcomes.front());
}
