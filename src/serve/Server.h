//===- Server.h - Resilient multi-tenant accelerator service ----*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// axi4mlir-serve: a job server executing a stream of (kernel, shape,
/// deadline) requests across a pool of independent simulated SoC
/// instances. The robustness policies are explicit and bounded:
///
///  * Admission control — a bounded queue; submissions beyond QueueDepth
///    are shed immediately with a structured Overloaded status, never
///    blocked. Deadline-infeasible jobs (best-case modeled cost already
///    over budget) are shed at admission as DeadlineExceeded.
///  * Cost-model routing — each attempt is dispatched to the healthy
///    instance with the cheapest TilingPlan modeled cost for the job's
///    shape (transforms::planKernelDispatch), scaled by instance load.
///  * Deadlines — per-job modeled-latency budgets. A watchdog gate before
///    every attempt cancels the job (DeadlineExceeded) once the budget
///    cannot cover another attempt; individual attempts are bounded by the
///    simulator's own DMA watchdog, so nothing hangs.
///  * Circuit breakers — per-instance failure tracking. BreakerThreshold
///    consecutive attempt failures trip the breaker Open; the instance is
///    skipped for BreakerCooldown routing decisions, then admits a single
///    HalfOpen probe job whose outcome closes or re-opens the breaker.
///  * Retry with failover — failed attempts retry (up to MaxAttempts) on
///    a different instance when one exists, falling back to a host-CPU
///    execution when no healthy instance remains (CpuFallback).
///  * Graceful drain — shutdown stops admission (Rejected), completes all
///    admitted jobs, and joins the workers.
///
/// Determinism: Threads = 0 selects a single-thread scheduler (jobs run
/// FIFO on the caller's thread at drain points) and all latency accounting
/// uses *modeled* time (PerfReport.TaskClockMs), so every status, routing
/// decision and output checksum is reproducible — the ServerTest
/// differential pin compares each admitted job's buffers against a
/// fault-free solo run bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SERVE_SERVER_H
#define AXI4MLIR_SERVE_SERVER_H

#include "parser/AcceleratorConfig.h"
#include "serve/PlanCache.h"
#include "sim/CostModel.h"
#include "sim/FaultInjector.h"
#include "sim/PerfModel.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace axi4mlir {
namespace serve {

/// Kernels the service executes.
enum class JobKind { MatMul, Conv2D };

const char *toString(JobKind Kind);

/// One client request. Shapes are validated at submission; invalid
/// requests are Rejected with a diagnostic.
struct JobRequest {
  JobKind Kind = JobKind::MatMul;

  /// MatMul problem size.
  int64_t M = 64, N = 64, K = 64;

  /// Conv2D (NCHW/FCHW, batch 1) problem size.
  int64_t InChannels = 64, InHW = 16, OutChannels = 64, FilterHW = 3,
          Stride = 1;

  sim::ElemKind Elem = sim::ElemKind::I32;

  /// Data seed: operands are filled fillRandom(Seed / Seed+1 / Seed+2),
  /// exactly like the solo pipeline entry points, so checksums are
  /// comparable across routing decisions.
  uint32_t Seed = 7;

  /// Modeled-latency budget in ms. Negative = use the server default,
  /// 0 = no deadline.
  double DeadlineMs = -1;
};

/// Terminal status of a job. Every submitted job receives exactly one.
enum class JobStatus {
  /// Executed; Checksum and Report are valid.
  Completed,
  /// Shed at admission: queue full (backpressure).
  Overloaded,
  /// Deadline infeasible at admission, or budget exhausted by retries.
  DeadlineExceeded,
  /// Refused without execution: draining server or invalid request.
  Rejected,
  /// All attempts failed (retries + fallback exhausted).
  Failed,
};

const char *toString(JobStatus Status);

/// The terminal record of one job.
struct JobOutcome {
  uint64_t Id = 0;
  JobStatus Status = JobStatus::Failed;
  std::string Error;
  /// Pool instance that completed the job (-1 = none / CPU fallback).
  int Instance = -1;
  /// Completed on the host-CPU fallback path.
  bool CpuFallback = false;
  /// Execution attempts consumed (0 when shed at admission).
  unsigned Attempts = 0;
  /// Modeled execution time summed over every attempt (ms).
  double ModeledMs = 0;
  /// Modeled queueing delay before the first attempt started (ms).
  double QueueWaitMs = 0;
  /// ModeledMs + QueueWaitMs: the job's end-to-end modeled latency.
  double LatencyMs = 0;
  /// FNV-1a 64 over the output buffer words (Completed only).
  uint64_t Checksum = 0;
  /// Perf counters of the completing attempt (Completed only).
  sim::PerfReport Report;
};

/// Per-instance circuit-breaker state (exposed for tests/monitoring).
enum class BreakerState { Closed, Open, HalfOpen };

const char *toString(BreakerState State);

/// Fault assignment for one pool instance: the schedule a fresh
/// FaultInjector replays on each affected attempt, plus failover spares.
struct InstanceFaults {
  sim::FaultPlan Plan;
  /// Number of the instance's first attempts that see the schedule
  /// (0 = every attempt). A finite window models a transient brown-out a
  /// half-open probe can discover as healed.
  unsigned JobsAffected = 0;
  /// Protocol-identical spare accelerators registered on affected runs.
  unsigned Spares = 0;
};

/// Service sizing and policy. Mirrors parser::ServeSection plus the SoC
/// calibration; makeServerOptions converts a parsed config.
struct ServerOptions {
  unsigned Instances = 2;
  unsigned QueueDepth = 16;
  unsigned MaxAttempts = 3;
  unsigned BreakerThreshold = 3;
  unsigned BreakerCooldown = 4;
  unsigned PlanCacheCapacity = 32;
  unsigned Threads = 0;
  double DefaultDeadlineMs = 0;
  bool CpuFallback = true;
  sim::SoCParams Params;
};

/// Builds ServerOptions from a parsed configuration file's serve section
/// (defaults when the section is absent).
ServerOptions makeServerOptions(const parser::SystemConfig &Config);

/// Aggregate fleet counters.
struct ServerStats {
  uint64_t Submitted = 0;
  uint64_t Admitted = 0;
  uint64_t Completed = 0;
  uint64_t Overloaded = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t Rejected = 0;
  uint64_t Failed = 0;
  /// Extra attempts beyond each job's first.
  uint64_t Retries = 0;
  /// Retries routed to a different instance than the failed one.
  uint64_t Failovers = 0;
  /// Jobs completed on the host-CPU fallback path.
  uint64_t CpuFallbacks = 0;
  /// Closed -> Open breaker transitions across the pool.
  uint64_t BreakerTrips = 0;
  /// Shared compiled-plan cache counters.
  PlanCache::Stats Plans;
};

/// The service. Construction builds the instance pool: instance i hosts
/// Accels[i % Accels.size()] (an empty accelerator list makes a CPU-only
/// pool usable only with CpuFallback). Thread-safe; with Threads = 0 all
/// execution happens inside drain() on the caller's thread.
class Server {
public:
  Server(std::vector<parser::AcceleratorDesc> Accels,
         const ServerOptions &Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Assigns a fault schedule to pool instance \p Index. Call before
  /// submitting; attempts on that instance replay the schedule through a
  /// fresh FaultInjector.
  void setInstanceFaults(unsigned Index, InstanceFaults Faults);

  /// Submits one job. Never blocks: the job is queued, or shed with a
  /// structured status recorded in its outcome. Returns the job id.
  uint64_t submit(const JobRequest &Request);

  /// Runs (Threads = 0) or waits for (threaded) every admitted job.
  void drain();

  /// Graceful shutdown: stop admitting, drain, join workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Moves out all recorded outcomes, ordered by job id.
  std::vector<JobOutcome> takeOutcomes();

  ServerStats stats() const;
  BreakerState breakerState(unsigned Index) const;
  unsigned numInstances() const;

private:
  struct Instance;
  struct PendingJob;
  struct AttemptSetup;
  struct AttemptResult;
  struct Impl;
  std::unique_ptr<Impl> State;
};

/// Executes \p Request alone on a fresh fault-free deterministic server
/// over the same accelerator pool — the reference for the differential
/// robustness pin (deadline cleared so the reference always completes).
JobOutcome runSoloJob(const JobRequest &Request,
                      const std::vector<parser::AcceleratorDesc> &Accels,
                      const ServerOptions &Options);

} // namespace serve
} // namespace axi4mlir

#endif // AXI4MLIR_SERVE_SERVER_H
