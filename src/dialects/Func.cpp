//===- Func.cpp - func dialect implementation -----------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/Func.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;
using namespace axi4mlir::func;

FuncOp func::FuncOp::create(OpBuilder &Builder, const std::string &Name,
                            const std::vector<Type> &ArgumentTypes,
                            const std::vector<Type> &ResultTypes) {
  FunctionType FuncTy =
      FunctionType::get(Builder.getContext(), ArgumentTypes, ResultTypes);
  Operation *Op = Operation::create(
      Builder.getContext(), OpName, /*Operands=*/{}, /*ResultTypes=*/{},
      {{"sym_name", Attribute::getString(Name)},
       {"function_type", Attribute::getType(FuncTy)}},
      /*NumRegions=*/1);
  Block &Entry = Op->getRegion(0).emplaceBlock();
  for (Type ArgTy : ArgumentTypes)
    Entry.addArgument(ArgTy);
  return FuncOp(Op);
}

ReturnOp func::ReturnOp::create(OpBuilder &Builder,
                                const std::vector<Value> &Operands) {
  return ReturnOp(Builder.create(OpName, Operands));
}

CallOp func::CallOp::create(OpBuilder &Builder, const std::string &Callee,
                            const std::vector<Value> &Operands,
                            const std::vector<Type> &ResultTypes) {
  return CallOp(Builder.create(OpName, Operands, ResultTypes,
                               {{"callee", Attribute::getString(Callee)}}));
}

void func::registerDialect(MLIRContext &Context) {
  OpRegistry &Registry = Context.getOpRegistry();
  Registry.registerOp({/*Name=*/FuncOp::OpName, /*NumOperands=*/0,
                       /*NumResults=*/0, /*NumRegions=*/1,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->hasAttr("sym_name") ||
                             !Op->hasAttr("function_type")) {
                           Error = "func.func requires sym_name and "
                                   "function_type attributes";
                           return failure();
                         }
                         if (Op->getRegion(0).empty()) {
                           Error = "func.func requires a non-empty body";
                           return failure();
                         }
                         return success();
                       }});
  Registry.registerOp({ReturnOp::OpName, /*NumOperands=*/-1,
                       /*NumResults=*/0, /*NumRegions=*/0,
                       /*IsTerminator=*/true, nullptr});
  Registry.registerOp({CallOp::OpName, /*NumOperands=*/-1,
                       /*NumResults=*/-1, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->hasAttr("callee")) {
                           Error = "func.call requires a callee attribute";
                           return failure();
                         }
                         return success();
                       }});
}
