//===- Linalg.h - linalg dialect --------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `linalg` dialect: linalg.generic (the core structured op the paper's
/// transformations target), linalg.yield, and the named ops linalg.matmul /
/// linalg.conv_2d_nchw_fchw that the pipeline converts to generics
/// (paper Fig. 4 step "Convert named ops to linalg.generic").
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_LINALG_H
#define AXI4MLIR_DIALECTS_LINALG_H

#include "dialects/OpView.h"

#include <functional>

namespace axi4mlir {
namespace linalg {

/// Iterator type strings, as in MLIR.
inline constexpr const char *IteratorParallel = "parallel";
inline constexpr const char *IteratorReduction = "reduction";

/// linalg.generic: indexing maps + iterator types + scalar payload region.
class GenericOp : public OpView {
public:
  static constexpr const char *OpName = "linalg.generic";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  /// Builds a generic op. \p BodyBuilder is invoked with the payload block's
  /// scalar arguments (inputs then outputs) and must create the
  /// linalg.yield. Indexing maps are ordered inputs-then-outputs.
  static GenericOp
  create(OpBuilder &Builder, const std::vector<Value> &Inputs,
         const std::vector<Value> &Outputs,
         const std::vector<AffineMap> &IndexingMaps,
         const std::vector<std::string> &IteratorTypes,
         const std::function<void(OpBuilder &, const std::vector<Value> &)>
             &BodyBuilder);

  unsigned getNumInputs() const { return Op->getIntAttr("num_inputs"); }
  unsigned getNumOutputs() const {
    return Op->getNumOperands() - getNumInputs();
  }
  Value getInput(unsigned Index) const { return Op->getOperand(Index); }
  Value getOutput(unsigned Index) const {
    return Op->getOperand(getNumInputs() + Index);
  }

  /// Indexing map for operand \p Index (inputs then outputs).
  AffineMap getIndexingMap(unsigned Index) const;
  std::vector<AffineMap> getIndexingMaps() const;
  std::vector<std::string> getIteratorTypes() const;
  unsigned getNumLoops() const { return getIteratorTypes().size(); }

  Block &getBody() const { return Op->getRegion(0).front(); }

  /// Computes the static extent of every loop dimension by matching
  /// standalone dim results in the indexing maps against operand shapes.
  /// Fails (returns empty) if some dimension never appears standalone.
  std::vector<int64_t> getStaticLoopRanges() const;
};

/// linalg.yield: payload terminator carrying the value(s) stored to the
/// output(s).
class YieldOp : public OpView {
public:
  static constexpr const char *OpName = "linalg.yield";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static YieldOp create(OpBuilder &Builder, const std::vector<Value> &Values);
};

/// linalg.matmul: named op, C += A * B.
class MatmulOp : public OpView {
public:
  static constexpr const char *OpName = "linalg.matmul";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static MatmulOp create(OpBuilder &Builder, Value A, Value B, Value C);

  Value getA() const { return Op->getOperand(0); }
  Value getB() const { return Op->getOperand(1); }
  Value getC() const { return Op->getOperand(2); }
};

/// linalg.conv_2d_nchw_fchw: named 2-D convolution, NCHW input layout,
/// FCHW filter layout, with static strides.
class Conv2DNchwFchwOp : public OpView {
public:
  static constexpr const char *OpName = "linalg.conv_2d_nchw_fchw";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static Conv2DNchwFchwOp create(OpBuilder &Builder, Value Input,
                                 Value Filter, Value Output, int64_t StrideH,
                                 int64_t StrideW);

  Value getInput() const { return Op->getOperand(0); }
  Value getFilter() const { return Op->getOperand(1); }
  Value getOutput() const { return Op->getOperand(2); }
  int64_t getStrideH() const;
  int64_t getStrideW() const;
};

//===----------------------------------------------------------------------===//
// Canonical traits
//===----------------------------------------------------------------------===//

/// The canonical matmul indexing maps over dims (m, n, k):
///   A: (m, k), B: (k, n), C: (m, n)   (paper Fig. 2a).
std::vector<AffineMap> getMatmulIndexingMaps();
std::vector<std::string> getMatmulIteratorTypes();

/// The canonical conv_2d_nchw_fchw maps over dims
/// (b, oc, oh, ow, ic, fh, fw) with strides (sh, sw):
///   I: (b, ic, oh*sh + fh, ow*sw + fw), W: (oc, ic, fh, fw),
///   O: (b, oc, oh, ow).
std::vector<AffineMap> getConvIndexingMaps(int64_t StrideH, int64_t StrideW);
std::vector<std::string> getConvIteratorTypes();

void registerDialect(MLIRContext &Context);

} // namespace linalg
} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_LINALG_H
