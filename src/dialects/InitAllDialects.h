//===- InitAllDialects.h - Dialect registration hub -------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// registerAllDialects() populates a context's op registry with every
/// dialect in this reproduction. Call it once per MLIRContext before
/// building or verifying IR.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_INITALLDIALECTS_H
#define AXI4MLIR_DIALECTS_INITALLDIALECTS_H

#include "dialects/Accel.h"
#include "dialects/Arith.h"
#include "dialects/Func.h"
#include "dialects/Linalg.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"

namespace axi4mlir {

inline void registerAllDialects(MLIRContext &Context) {
  func::registerDialect(Context);
  arith::registerDialect(Context);
  scf::registerDialect(Context);
  memref::registerDialect(Context);
  linalg::registerDialect(Context);
  accel::registerDialect(Context);
}

} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_INITALLDIALECTS_H
