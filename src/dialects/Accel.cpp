//===- Accel.cpp - accel dialect implementation ---------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/Accel.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;
using namespace axi4mlir::accel;

DmaInitOp accel::DmaInitOp::create(OpBuilder &Builder,
                                   const DmaInitConfig &Config) {
  return DmaInitOp(Builder.create(
      OpName, {}, {}, {{"dma_config", Attribute::getDmaConfig(Config)}}));
}

SendLiteralOp accel::SendLiteralOp::create(OpBuilder &Builder,
                                           int64_t Literal, Value Offset) {
  return SendLiteralOp(
      Builder.create(OpName, {Offset}, {Builder.getIndexType()},
                     {{"literal", Attribute::getInteger(Literal)}}));
}

SendOp accel::SendOp::create(OpBuilder &Builder, Value MemRef, Value Offset) {
  return SendOp(
      Builder.create(OpName, {MemRef, Offset}, {Builder.getIndexType()}));
}

SendDimOp accel::SendDimOp::create(OpBuilder &Builder, Value MemRef,
                                   int64_t DimIndex, Value Offset) {
  return SendDimOp(
      Builder.create(OpName, {MemRef, Offset}, {Builder.getIndexType()},
                     {{"dim", Attribute::getInteger(DimIndex)}}));
}

SendIdxOp accel::SendIdxOp::create(OpBuilder &Builder, Value Index,
                                   Value Offset) {
  return SendIdxOp(
      Builder.create(OpName, {Index, Offset}, {Builder.getIndexType()}));
}

RecvOp accel::RecvOp::create(OpBuilder &Builder, Value MemRef, Value Offset,
                             const std::string &Mode) {
  assert((Mode == "accumulate" || Mode == "overwrite") &&
         "recv mode must be accumulate or overwrite");
  return RecvOp(Builder.create(OpName, {MemRef, Offset},
                               {Builder.getIndexType()},
                               {{"mode", Attribute::getString(Mode)}}));
}

static LogicalResult verifyMemRefAndOffset(Operation *Op,
                                           std::string &Error) {
  if (!Op->getOperand(0).getType().isa<MemRefType>()) {
    Error = "'" + Op->getName() + "' first operand must be a memref";
    return failure();
  }
  if (!Op->getOperand(1).getType().isIntOrIndex()) {
    Error = "'" + Op->getName() + "' offset must be index-typed";
    return failure();
  }
  return success();
}

void accel::registerDialect(MLIRContext &Context) {
  OpRegistry &Registry = Context.getOpRegistry();
  Registry.registerOp({DmaInitOp::OpName, /*NumOperands=*/0,
                       /*NumResults=*/0, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->hasAttr("dma_config")) {
                           Error = "accel.dma_init requires dma_config";
                           return failure();
                         }
                         return success();
                       }});
  Registry.registerOp({SendLiteralOp::OpName, /*NumOperands=*/1,
                       /*NumResults=*/1, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->hasAttr("literal")) {
                           Error = "accel.send_literal requires a literal";
                           return failure();
                         }
                         if (!Op->getOperand(0).getType().isIntOrIndex()) {
                           Error = "accel.send_literal offset must be "
                                   "index-typed";
                           return failure();
                         }
                         return success();
                       }});
  Registry.registerOp({SendOp::OpName, /*NumOperands=*/2, /*NumResults=*/1,
                       /*NumRegions=*/0, /*IsTerminator=*/false,
                       verifyMemRefAndOffset});
  Registry.registerOp({SendDimOp::OpName, /*NumOperands=*/2,
                       /*NumResults=*/1, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (failed(verifyMemRefAndOffset(Op, Error)))
                           return failure();
                         if (!Op->hasAttr("dim")) {
                           Error = "accel.send_dim requires a dim attribute";
                           return failure();
                         }
                         MemRefType Ty =
                             Op->getOperand(0).getType().cast<MemRefType>();
                         int64_t Dim = Op->getIntAttr("dim");
                         if (Dim < 0 || Dim >= Ty.getRank()) {
                           Error = "accel.send_dim dim out of range";
                           return failure();
                         }
                         return success();
                       }});
  Registry.registerOp({SendIdxOp::OpName, /*NumOperands=*/2,
                       /*NumResults=*/1, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->getOperand(0).getType().isIntOrIndex() ||
                             !Op->getOperand(1).getType().isIntOrIndex()) {
                           Error = "accel.send_idx operands must be "
                                   "index-typed";
                           return failure();
                         }
                         return success();
                       }});
  Registry.registerOp({RecvOp::OpName, /*NumOperands=*/2, /*NumResults=*/1,
                       /*NumRegions=*/0, /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (failed(verifyMemRefAndOffset(Op, Error)))
                           return failure();
                         if (!Op->hasAttr("mode")) {
                           Error = "accel.recv requires a mode attribute";
                           return failure();
                         }
                         std::string Mode = Op->getStringAttr("mode");
                         if (Mode != "accumulate" && Mode != "overwrite") {
                           Error = "accel.recv mode must be accumulate or "
                                   "overwrite";
                           return failure();
                         }
                         return success();
                       }});
}
