//===- SCF.cpp - structured control flow implementation -------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/SCF.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;
using namespace axi4mlir::scf;

ForOp scf::ForOp::create(OpBuilder &Builder, Value LowerBound,
                         Value UpperBound, Value Step) {
  Operation *Op = Builder.create(OpName, {LowerBound, UpperBound, Step}, {},
                                 {}, /*NumRegions=*/1);
  Block &Body = Op->getRegion(0).emplaceBlock();
  Body.addArgument(Type::getIndex(Builder.getContext()));
  // Terminate the body so callers can insert before the terminator.
  OpBuilder::InsertPoint Saved = Builder.saveInsertionPoint();
  Builder.setInsertionPointToEnd(&Body);
  YieldOp::create(Builder);
  Builder.restoreInsertionPoint(Saved);
  return ForOp(Op);
}

YieldOp scf::YieldOp::create(OpBuilder &Builder) {
  return YieldOp(Builder.create(OpName));
}

void scf::registerDialect(MLIRContext &Context) {
  OpRegistry &Registry = Context.getOpRegistry();
  Registry.registerOp(
      {ForOp::OpName, /*NumOperands=*/3, /*NumResults=*/0, /*NumRegions=*/1,
       /*IsTerminator=*/false, [](Operation *Op, std::string &Error) {
         for (unsigned I = 0; I < 3; ++I) {
           if (!Op->getOperand(I).getType().isIntOrIndex()) {
             Error = "scf.for bounds must be index-typed";
             return failure();
           }
         }
         if (Op->getRegion(0).empty() ||
             Op->getRegion(0).front().getNumArguments() != 1) {
           Error = "scf.for body must have exactly one index argument";
           return failure();
         }
         Block &Body = Op->getRegion(0).front();
         if (Body.empty() || Body.getTerminator()->getName() != "scf.yield") {
           Error = "scf.for body must terminate with scf.yield";
           return failure();
         }
         return success();
       }});
  Registry.registerOp({YieldOp::OpName, /*NumOperands=*/-1, /*NumResults=*/0,
                       /*NumRegions=*/0, /*IsTerminator=*/true, nullptr});
}

void scf::buildLoopNest(
    OpBuilder &Builder, const std::vector<Value> &LowerBounds,
    const std::vector<Value> &UpperBounds, const std::vector<Value> &Steps,
    const std::function<void(OpBuilder &, const std::vector<Value> &)>
        &BodyBuilder) {
  assert(LowerBounds.size() == UpperBounds.size() &&
         LowerBounds.size() == Steps.size() && "loop nest rank mismatch");
  OpBuilder::InsertPoint Saved = Builder.saveInsertionPoint();
  std::vector<Value> InductionVars;
  InductionVars.reserve(LowerBounds.size());
  for (size_t I = 0, E = LowerBounds.size(); I < E; ++I) {
    ForOp Loop =
        ForOp::create(Builder, LowerBounds[I], UpperBounds[I], Steps[I]);
    InductionVars.push_back(Loop.getInductionVar());
    Builder.setInsertionPoint(Loop.getBodyTerminator());
  }
  BodyBuilder(Builder, InductionVars);
  Builder.restoreInsertionPoint(Saved);
}
