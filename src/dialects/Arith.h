//===- Arith.h - arith dialect ----------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `arith` dialect: constants and scalar arithmetic used by the
/// linalg.generic payload regions and by loop-bound/index computations.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_ARITH_H
#define AXI4MLIR_DIALECTS_ARITH_H

#include "dialects/OpView.h"

namespace axi4mlir {
namespace arith {

/// arith.constant: a typed constant (index, integer or float).
class ConstantOp : public OpView {
public:
  static constexpr const char *OpName = "arith.constant";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static ConstantOp createIndex(OpBuilder &Builder, int64_t Value);
  static ConstantOp createInt(OpBuilder &Builder, int64_t Value, Type Ty);
  static ConstantOp createFloat(OpBuilder &Builder, double Value, Type Ty);

  Value getResult() const { return Op->getResult(0); }
  bool isFloatConstant() const {
    return Op->getAttr("value").getKind() == Attribute::Kind::Float;
  }
  int64_t getIntValue() const { return Op->getIntAttr("value"); }
  double getFloatValue() const {
    return Op->getAttr("value").getFloatValue();
  }
};

/// Binary elementwise arithmetic ops: addf/mulf/subf, addi/muli/subi.
class BinaryOp : public OpView {
public:
  using OpView::OpView;

  static bool classof(const Operation *Op) {
    const std::string &Name = Op->getName();
    return Name == "arith.addf" || Name == "arith.mulf" ||
           Name == "arith.subf" || Name == "arith.addi" ||
           Name == "arith.muli" || Name == "arith.subi" ||
           Name == "arith.divf" || Name == "arith.maxf";
  }

  static BinaryOp create(OpBuilder &Builder, const std::string &Name,
                         Value LHS, Value RHS);

  Value getLHS() const { return Op->getOperand(0); }
  Value getRHS() const { return Op->getOperand(1); }
  Value getResult() const { return Op->getResult(0); }
};

/// arith.index_cast: index <-> integer conversions.
class IndexCastOp : public OpView {
public:
  static constexpr const char *OpName = "arith.index_cast";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static IndexCastOp create(OpBuilder &Builder, Value Input, Type ResultTy);

  Value getResult() const { return Op->getResult(0); }
};

void registerDialect(MLIRContext &Context);

} // namespace arith
} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_ARITH_H
