//===- Func.h - func dialect ------------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `func` dialect: func.func / func.return / func.call. Functions hold
/// the host code being generated (paper Fig. 2, Fig. 6b).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_FUNC_H
#define AXI4MLIR_DIALECTS_FUNC_H

#include "dialects/OpView.h"

namespace axi4mlir {
namespace func {

/// func.func: a named function with one region. Arguments are the entry
/// block's arguments.
class FuncOp : public OpView {
public:
  static constexpr const char *OpName = "func.func";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  /// Creates a function with an entry block whose arguments match
  /// \p ArgumentTypes. The builder's insertion point is left untouched.
  static FuncOp create(OpBuilder &Builder, const std::string &Name,
                       const std::vector<Type> &ArgumentTypes,
                       const std::vector<Type> &ResultTypes = {});

  std::string getFuncName() const { return Op->getStringAttr("sym_name"); }
  Block &getBody() const { return Op->getRegion(0).front(); }
  Value getArgument(unsigned Index) const {
    return getBody().getArgument(Index);
  }
  unsigned getNumArguments() const { return getBody().getNumArguments(); }
  FunctionType getFunctionType() const {
    return Op->getAttr("function_type").getTypeValue().cast<FunctionType>();
  }
};

/// func.return: function terminator with optional operands.
class ReturnOp : public OpView {
public:
  static constexpr const char *OpName = "func.return";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static ReturnOp create(OpBuilder &Builder,
                         const std::vector<Value> &Operands = {});
};

/// func.call: a direct call to a named function (used after lowering accel
/// ops to DMA runtime library calls).
class CallOp : public OpView {
public:
  static constexpr const char *OpName = "func.call";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static CallOp create(OpBuilder &Builder, const std::string &Callee,
                       const std::vector<Value> &Operands,
                       const std::vector<Type> &ResultTypes = {});

  std::string getCallee() const { return Op->getStringAttr("callee"); }
};

/// Registers the func dialect ops into \p Context's registry.
void registerDialect(MLIRContext &Context);

} // namespace func
} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_FUNC_H
