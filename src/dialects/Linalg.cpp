//===- Linalg.cpp - linalg dialect implementation -------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/Linalg.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;
using namespace axi4mlir::linalg;

GenericOp linalg::GenericOp::create(
    OpBuilder &Builder, const std::vector<Value> &Inputs,
    const std::vector<Value> &Outputs,
    const std::vector<AffineMap> &IndexingMaps,
    const std::vector<std::string> &IteratorTypes,
    const std::function<void(OpBuilder &, const std::vector<Value> &)>
        &BodyBuilder) {
  assert(IndexingMaps.size() == Inputs.size() + Outputs.size() &&
         "one indexing map per operand");

  std::vector<Value> Operands = Inputs;
  Operands.insert(Operands.end(), Outputs.begin(), Outputs.end());

  std::vector<Attribute> MapAttrs;
  MapAttrs.reserve(IndexingMaps.size());
  for (const AffineMap &Map : IndexingMaps)
    MapAttrs.push_back(Attribute::getAffineMap(Map));
  std::vector<Attribute> IterAttrs;
  IterAttrs.reserve(IteratorTypes.size());
  for (const std::string &Iterator : IteratorTypes)
    IterAttrs.push_back(Attribute::getString(Iterator));

  Operation *Op = Builder.create(
      OpName, Operands, {},
      {{"indexing_maps", Attribute::getArray(std::move(MapAttrs))},
       {"iterator_types", Attribute::getArray(std::move(IterAttrs))},
       {"num_inputs",
        Attribute::getInteger(static_cast<int64_t>(Inputs.size()))}},
      /*NumRegions=*/1);

  Block &Body = Op->getRegion(0).emplaceBlock();
  std::vector<Value> BlockArgs;
  for (Value Operand : Operands) {
    MemRefType Ty = Operand.getType().cast<MemRefType>();
    BlockArgs.push_back(Body.addArgument(Ty.getElementType()));
  }
  OpBuilder::InsertPoint Saved = Builder.saveInsertionPoint();
  Builder.setInsertionPointToEnd(&Body);
  BodyBuilder(Builder, BlockArgs);
  Builder.restoreInsertionPoint(Saved);
  return GenericOp(Op);
}

AffineMap linalg::GenericOp::getIndexingMap(unsigned Index) const {
  return Op->getAttr("indexing_maps")
      .getArrayValue()[Index]
      .getAffineMapValue();
}

std::vector<AffineMap> linalg::GenericOp::getIndexingMaps() const {
  std::vector<AffineMap> Maps;
  for (const Attribute &A : Op->getAttr("indexing_maps").getArrayValue())
    Maps.push_back(A.getAffineMapValue());
  return Maps;
}

std::vector<std::string> linalg::GenericOp::getIteratorTypes() const {
  std::vector<std::string> Iterators;
  for (const Attribute &A : Op->getAttr("iterator_types").getArrayValue())
    Iterators.push_back(A.getStringValue());
  return Iterators;
}

std::vector<int64_t> linalg::GenericOp::getStaticLoopRanges() const {
  unsigned NumLoops = getNumLoops();
  std::vector<int64_t> Ranges(NumLoops, -1);
  for (unsigned OperandIdx = 0, E = Op->getNumOperands(); OperandIdx < E;
       ++OperandIdx) {
    AffineMap Map = getIndexingMap(OperandIdx);
    MemRefType Ty = Op->getOperand(OperandIdx).getType().cast<MemRefType>();
    for (unsigned R = 0; R < Map.getNumResults(); ++R) {
      AffineExpr Result = Map.getResult(R);
      if (Result.isDim())
        Ranges[Result.getPosition()] = Ty.getDimSize(R);
    }
  }
  for (int64_t Range : Ranges)
    if (Range < 0)
      return {};
  return Ranges;
}

YieldOp linalg::YieldOp::create(OpBuilder &Builder,
                                const std::vector<Value> &Values) {
  return YieldOp(Builder.create(OpName, Values));
}

MatmulOp linalg::MatmulOp::create(OpBuilder &Builder, Value A, Value B,
                                  Value C) {
  return MatmulOp(Builder.create(OpName, {A, B, C}, {},
                                 {{"num_inputs", Attribute::getInteger(2)}}));
}

Conv2DNchwFchwOp linalg::Conv2DNchwFchwOp::create(OpBuilder &Builder,
                                                  Value Input, Value Filter,
                                                  Value Output,
                                                  int64_t StrideH,
                                                  int64_t StrideW) {
  return Conv2DNchwFchwOp(Builder.create(
      OpName, {Input, Filter, Output}, {},
      {{"num_inputs", Attribute::getInteger(2)},
       {"strides", Attribute::getArray({Attribute::getInteger(StrideH),
                                        Attribute::getInteger(StrideW)})}}));
}

int64_t linalg::Conv2DNchwFchwOp::getStrideH() const {
  return Op->getAttr("strides").getArrayValue()[0].getIntValue();
}

int64_t linalg::Conv2DNchwFchwOp::getStrideW() const {
  return Op->getAttr("strides").getArrayValue()[1].getIntValue();
}

//===----------------------------------------------------------------------===//
// Canonical traits
//===----------------------------------------------------------------------===//

std::vector<AffineMap> linalg::getMatmulIndexingMaps() {
  // Dims: (m, n, k).
  AffineMap AMap = AffineMap::getSelect({0, 2}, 3); // (m, k)
  AffineMap BMap = AffineMap::getSelect({2, 1}, 3); // (k, n)
  AffineMap CMap = AffineMap::getSelect({0, 1}, 3); // (m, n)
  return {AMap, BMap, CMap};
}

std::vector<std::string> linalg::getMatmulIteratorTypes() {
  return {IteratorParallel, IteratorParallel, IteratorReduction};
}

std::vector<AffineMap> linalg::getConvIndexingMaps(int64_t StrideH,
                                                   int64_t StrideW) {
  // Dims: (b, oc, oh, ow, ic, fh, fw).
  AffineExpr B = AffineExpr::getDim(0);
  AffineExpr OC = AffineExpr::getDim(1);
  AffineExpr OH = AffineExpr::getDim(2);
  AffineExpr OW = AffineExpr::getDim(3);
  AffineExpr IC = AffineExpr::getDim(4);
  AffineExpr FH = AffineExpr::getDim(5);
  AffineExpr FW = AffineExpr::getDim(6);
  AffineMap IMap =
      AffineMap::get(7, 0, {B, IC, OH * StrideH + FH, OW * StrideW + FW});
  AffineMap WMap = AffineMap::get(7, 0, {OC, IC, FH, FW});
  AffineMap OMap = AffineMap::get(7, 0, {B, OC, OH, OW});
  return {IMap, WMap, OMap};
}

std::vector<std::string> linalg::getConvIteratorTypes() {
  return {IteratorParallel, IteratorParallel, IteratorParallel,
          IteratorParallel, IteratorReduction, IteratorReduction,
          IteratorReduction};
}

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

static LogicalResult verifyGeneric(Operation *Op, std::string &Error) {
  GenericOp Generic(Op);
  if (!Op->hasAttr("indexing_maps") || !Op->hasAttr("iterator_types") ||
      !Op->hasAttr("num_inputs")) {
    Error = "linalg.generic requires indexing_maps, iterator_types and "
            "num_inputs";
    return failure();
  }
  unsigned NumOperands = Op->getNumOperands();
  if (Generic.getNumInputs() > NumOperands) {
    Error = "linalg.generic num_inputs exceeds operand count";
    return failure();
  }
  if (Op->getAttr("indexing_maps").getArrayValue().size() != NumOperands) {
    Error = "linalg.generic requires one indexing map per operand";
    return failure();
  }
  unsigned NumLoops = Generic.getNumLoops();
  for (unsigned I = 0; I < NumOperands; ++I) {
    if (!Op->getOperand(I).getType().isa<MemRefType>()) {
      Error = "linalg.generic operands must be memrefs";
      return failure();
    }
    AffineMap Map = Generic.getIndexingMap(I);
    if (Map.getNumDims() != NumLoops) {
      Error = "linalg.generic indexing map dim count must equal the number "
              "of iterator types";
      return failure();
    }
    MemRefType Ty = Op->getOperand(I).getType().cast<MemRefType>();
    if (Map.getNumResults() != Ty.getRank()) {
      Error = "linalg.generic indexing map result count must equal operand "
              "rank";
      return failure();
    }
  }
  if (Op->getRegion(0).empty() ||
      Op->getRegion(0).front().getNumArguments() != NumOperands) {
    Error = "linalg.generic payload must have one scalar argument per "
            "operand";
    return failure();
  }
  Block &Body = Op->getRegion(0).front();
  if (Body.empty() || Body.getTerminator()->getName() != "linalg.yield") {
    Error = "linalg.generic payload must end with linalg.yield";
    return failure();
  }
  if (Body.getTerminator()->getNumOperands() !=
      NumOperands - Generic.getNumInputs()) {
    Error = "linalg.yield must yield one value per output";
    return failure();
  }
  return success();
}

void linalg::registerDialect(MLIRContext &Context) {
  OpRegistry &Registry = Context.getOpRegistry();
  Registry.registerOp({GenericOp::OpName, /*NumOperands=*/-1,
                       /*NumResults=*/0, /*NumRegions=*/1,
                       /*IsTerminator=*/false, verifyGeneric});
  Registry.registerOp({YieldOp::OpName, /*NumOperands=*/-1, /*NumResults=*/0,
                       /*NumRegions=*/0, /*IsTerminator=*/true, nullptr});
  Registry.registerOp({MatmulOp::OpName, /*NumOperands=*/3, /*NumResults=*/0,
                       /*NumRegions=*/0, /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         for (unsigned I = 0; I < 3; ++I) {
                           MemRefType Ty = Op->getOperand(I)
                                               .getType()
                                               .dyn_cast<MemRefType>();
                           if (!Ty || Ty.getRank() != 2) {
                             Error = "linalg.matmul operands must be rank-2 "
                                     "memrefs";
                             return failure();
                           }
                         }
                         return success();
                       }});
  Registry.registerOp({Conv2DNchwFchwOp::OpName, /*NumOperands=*/3,
                       /*NumResults=*/0, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         for (unsigned I = 0; I < 3; ++I) {
                           MemRefType Ty = Op->getOperand(I)
                                               .getType()
                                               .dyn_cast<MemRefType>();
                           if (!Ty || Ty.getRank() != 4) {
                             Error = "linalg.conv_2d_nchw_fchw operands "
                                     "must be rank-4 memrefs";
                             return failure();
                           }
                         }
                         return success();
                       }});
}
