//===- MemRef.h - memref dialect --------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `memref` dialect: alloc/dealloc, load/store and subview. Subviews
/// are how the tiling pass names tiles of A/B/C before handing them to
/// accel.send / accel.recv (paper Fig. 6b L8, L12-13).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_MEMREF_H
#define AXI4MLIR_DIALECTS_MEMREF_H

#include "dialects/OpView.h"

namespace axi4mlir {
namespace memref {

/// memref.alloc: allocates a contiguous row-major buffer.
class AllocOp : public OpView {
public:
  static constexpr const char *OpName = "memref.alloc";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static AllocOp create(OpBuilder &Builder, MemRefType Ty);

  Value getResult() const { return Op->getResult(0); }
  MemRefType getType() const {
    return getResult().getType().cast<MemRefType>();
  }
};

/// memref.dealloc.
class DeallocOp : public OpView {
public:
  static constexpr const char *OpName = "memref.dealloc";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static DeallocOp create(OpBuilder &Builder, Value MemRef);
};

/// memref.copy %src, %dst: copies every element of one memref view into
/// another of identical shape (the pad-staging copy of partial tiles; a
/// memcpy per contiguous row at runtime).
class CopyOp : public OpView {
public:
  static constexpr const char *OpName = "memref.copy";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static CopyOp create(OpBuilder &Builder, Value Source, Value Dest);

  Value getSource() const { return Op->getOperand(0); }
  Value getDest() const { return Op->getOperand(1); }
};

/// memref.load %memref[%i, %j, ...].
class LoadOp : public OpView {
public:
  static constexpr const char *OpName = "memref.load";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static LoadOp create(OpBuilder &Builder, Value MemRef,
                       const std::vector<Value> &Indices);

  Value getMemRef() const { return Op->getOperand(0); }
  Value getResult() const { return Op->getResult(0); }
};

/// memref.store %value, %memref[%i, %j, ...].
class StoreOp : public OpView {
public:
  static constexpr const char *OpName = "memref.store";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static StoreOp create(OpBuilder &Builder, Value StoredValue, Value MemRef,
                        const std::vector<Value> &Indices);

  Value getStoredValue() const { return Op->getOperand(0); }
  Value getMemRef() const { return Op->getOperand(1); }
};

/// memref.subview %src[%off0, ...][size0, ...][1, ...]: a rank-preserving
/// tile view. Offsets are dynamic (loop IVs); sizes are static attributes;
/// relative strides are always 1 (tiles are dense selections), so the
/// result strides equal the source strides and the offset is dynamic.
class SubViewOp : public OpView {
public:
  static constexpr const char *OpName = "memref.subview";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static SubViewOp create(OpBuilder &Builder, Value Source,
                          const std::vector<Value> &Offsets,
                          const std::vector<int64_t> &Sizes);

  Value getSource() const { return Op->getOperand(0); }
  std::vector<Value> getOffsets() const {
    return {Op->getOperands().begin() + 1, Op->getOperands().end()};
  }
  std::vector<int64_t> getStaticSizes() const;
  Value getResult() const { return Op->getResult(0); }
  MemRefType getType() const {
    return getResult().getType().cast<MemRefType>();
  }
};

void registerDialect(MLIRContext &Context);

} // namespace memref
} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_MEMREF_H
