//===- Accel.h - accel dialect (paper Sec. III-C) ---------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `accel` dialect introduced by AXI4MLIR: operations abstracting
/// host-accelerator transactions (paper Fig. 9). Keeping communication at
/// this abstraction makes hoisting/stationary transformations trivial
/// before the final lowering to DMA runtime library calls.
///
/// Ops (offsets thread through sends so transfers can be batched):
///   accel.dma_init   {dma_config}                      -> ()
///   accel.send_literal(%offset) {literal}              -> %new_offset
///   accel.send       (%memref, %offset)                -> %new_offset
///   accel.send_dim   (%memref, %offset) {dim}          -> %new_offset
///   accel.send_idx   (%index,  %offset)                -> %new_offset
///   accel.recv       (%memref, %offset) {mode}         -> %new_offset
///
/// This header also defines the names of the AXI4MLIR trait attributes
/// attached to linalg.generic (paper Fig. 6a).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_ACCEL_H
#define AXI4MLIR_DIALECTS_ACCEL_H

#include "dialects/OpView.h"

namespace axi4mlir {
namespace accel {

//===----------------------------------------------------------------------===//
// Trait attribute names on linalg.generic (paper Fig. 6a)
//===----------------------------------------------------------------------===//

inline constexpr const char *DmaInitConfigAttrName = "accel.dma_init_config";
inline constexpr const char *InitOpcodesAttrName = "accel.init_opcodes";
inline constexpr const char *AccelDimAttrName = "accel.accel_dim";
inline constexpr const char *PermutationMapAttrName = "accel.permutation_map";
inline constexpr const char *OpcodeMapAttrName = "accel.opcode_map";
inline constexpr const char *OpcodeFlowAttrName = "accel.opcode_flow";
/// Name of the accelerator (from the config file), for diagnostics.
inline constexpr const char *AcceleratorNameAttrName = "accel.name";

//===----------------------------------------------------------------------===//
// Ops
//===----------------------------------------------------------------------===//

/// accel.dma_init: one-time DMA engine configuration (paper Fig. 6b L3).
class DmaInitOp : public OpView {
public:
  static constexpr const char *OpName = "accel.dma_init";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static DmaInitOp create(OpBuilder &Builder, const DmaInitConfig &Config);

  const DmaInitConfig &getConfig() const {
    return Op->getAttr("dma_config").getDmaConfigValue();
  }
};

/// accel.send_literal: stages a 32-bit literal (an opcode word) into the
/// DMA region at %offset and flushes it. Returns the updated offset.
class SendLiteralOp : public OpView {
public:
  static constexpr const char *OpName = "accel.send_literal";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static SendLiteralOp create(OpBuilder &Builder, int64_t Literal,
                              Value Offset);

  int64_t getLiteral() const { return Op->getIntAttr("literal"); }
  Value getOffset() const { return Op->getOperand(0); }
  Value getResult() const { return Op->getResult(0); }
};

/// accel.send: stages a memref tile into the DMA region and transfers it.
class SendOp : public OpView {
public:
  static constexpr const char *OpName = "accel.send";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static SendOp create(OpBuilder &Builder, Value MemRef, Value Offset);

  Value getMemRef() const { return Op->getOperand(0); }
  Value getOffset() const { return Op->getOperand(1); }
  Value getResult() const { return Op->getResult(0); }
};

/// accel.send_dim: transfers one dimension size of a memref (used to
/// configure runtime-flexible accelerators, paper Fig. 15a `rst`).
class SendDimOp : public OpView {
public:
  static constexpr const char *OpName = "accel.send_dim";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static SendDimOp create(OpBuilder &Builder, Value MemRef, int64_t DimIndex,
                          Value Offset);

  Value getMemRef() const { return Op->getOperand(0); }
  int64_t getDimIndex() const { return Op->getIntAttr("dim"); }
  Value getOffset() const { return Op->getOperand(1); }
  Value getResult() const { return Op->getResult(0); }
};

/// accel.send_idx: transfers the current value of a loop index.
class SendIdxOp : public OpView {
public:
  static constexpr const char *OpName = "accel.send_idx";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static SendIdxOp create(OpBuilder &Builder, Value Index, Value Offset);

  Value getIndex() const { return Op->getOperand(0); }
  Value getOffset() const { return Op->getOperand(1); }
  Value getResult() const { return Op->getResult(0); }
};

/// accel.recv: waits for accelerator output and copies it back into a
/// memref tile. mode = "accumulate" adds into the destination (partial
/// results), mode = "overwrite" replaces it.
class RecvOp : public OpView {
public:
  static constexpr const char *OpName = "accel.recv";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static RecvOp create(OpBuilder &Builder, Value MemRef, Value Offset,
                       const std::string &Mode = "accumulate");

  Value getMemRef() const { return Op->getOperand(0); }
  Value getOffset() const { return Op->getOperand(1); }
  std::string getMode() const { return Op->getStringAttr("mode"); }
  Value getResult() const { return Op->getResult(0); }
};

void registerDialect(MLIRContext &Context);

} // namespace accel
} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_ACCEL_H
