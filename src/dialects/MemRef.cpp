//===- MemRef.cpp - memref dialect implementation -------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/MemRef.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;
using namespace axi4mlir::memref;

AllocOp memref::AllocOp::create(OpBuilder &Builder, MemRefType Ty) {
  assert(Ty && !Ty.hasExplicitStrides() &&
         "memref.alloc allocates contiguous row-major buffers");
  return AllocOp(Builder.create(OpName, {}, {Ty}));
}

DeallocOp memref::DeallocOp::create(OpBuilder &Builder, Value MemRef) {
  return DeallocOp(Builder.create(OpName, {MemRef}));
}

CopyOp memref::CopyOp::create(OpBuilder &Builder, Value Source, Value Dest) {
  [[maybe_unused]] MemRefType SourceTy =
      Source.getType().cast<MemRefType>();
  [[maybe_unused]] MemRefType DestTy = Dest.getType().cast<MemRefType>();
  assert(SourceTy.getShape() == DestTy.getShape() &&
         "memref.copy requires identical shapes");
  return CopyOp(Builder.create(OpName, {Source, Dest}));
}

LoadOp memref::LoadOp::create(OpBuilder &Builder, Value MemRef,
                              const std::vector<Value> &Indices) {
  MemRefType Ty = MemRef.getType().cast<MemRefType>();
  assert(Indices.size() == Ty.getRank() && "load index count != rank");
  std::vector<Value> Operands = {MemRef};
  Operands.insert(Operands.end(), Indices.begin(), Indices.end());
  return LoadOp(Builder.create(OpName, Operands, {Ty.getElementType()}));
}

StoreOp memref::StoreOp::create(OpBuilder &Builder, Value StoredValue,
                                Value MemRef,
                                const std::vector<Value> &Indices) {
  MemRefType Ty = MemRef.getType().cast<MemRefType>();
  assert(Indices.size() == Ty.getRank() && "store index count != rank");
  assert(StoredValue.getType() == Ty.getElementType() &&
         "stored value type != element type");
  std::vector<Value> Operands = {StoredValue, MemRef};
  Operands.insert(Operands.end(), Indices.begin(), Indices.end());
  return StoreOp(Builder.create(OpName, Operands));
}

SubViewOp memref::SubViewOp::create(OpBuilder &Builder, Value Source,
                                    const std::vector<Value> &Offsets,
                                    const std::vector<int64_t> &Sizes) {
  MemRefType SourceTy = Source.getType().cast<MemRefType>();
  assert(Offsets.size() == SourceTy.getRank() && "offset count != rank");
  assert(Sizes.size() == SourceTy.getRank() && "size count != rank");

  MemRefType ResultTy = MemRefType::getStrided(
      Builder.getContext(), Sizes, SourceTy.getElementType(),
      SourceTy.getStrides(), DynamicSize);

  std::vector<Value> Operands = {Source};
  Operands.insert(Operands.end(), Offsets.begin(), Offsets.end());
  std::vector<Attribute> SizeAttrs;
  SizeAttrs.reserve(Sizes.size());
  for (int64_t Size : Sizes)
    SizeAttrs.push_back(Attribute::getInteger(Size));
  return SubViewOp(
      Builder.create(OpName, Operands, {ResultTy},
                     {{"static_sizes", Attribute::getArray(SizeAttrs)}}));
}

std::vector<int64_t> memref::SubViewOp::getStaticSizes() const {
  std::vector<int64_t> Sizes;
  for (const Attribute &A : Op->getAttr("static_sizes").getArrayValue())
    Sizes.push_back(A.getIntValue());
  return Sizes;
}

void memref::registerDialect(MLIRContext &Context) {
  OpRegistry &Registry = Context.getOpRegistry();
  Registry.registerOp({AllocOp::OpName, /*NumOperands=*/0, /*NumResults=*/1,
                       /*NumRegions=*/0, /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->getResult(0).getType().isa<MemRefType>()) {
                           Error = "memref.alloc result must be a memref";
                           return failure();
                         }
                         return success();
                       }});
  Registry.registerOp({DeallocOp::OpName, /*NumOperands=*/1,
                       /*NumResults=*/0, /*NumRegions=*/0,
                       /*IsTerminator=*/false, nullptr});
  Registry.registerOp(
      {CopyOp::OpName, /*NumOperands=*/2, /*NumResults=*/0,
       /*NumRegions=*/0, /*IsTerminator=*/false,
       [](Operation *Op, std::string &Error) {
         MemRefType SourceTy =
             Op->getOperand(0).getType().dyn_cast<MemRefType>();
         MemRefType DestTy =
             Op->getOperand(1).getType().dyn_cast<MemRefType>();
         if (!SourceTy || !DestTy) {
           Error = "memref.copy operands must be memrefs";
           return failure();
         }
         if (SourceTy.getShape() != DestTy.getShape()) {
           Error = "memref.copy source/dest shapes differ";
           return failure();
         }
         return success();
       }});
  Registry.registerOp(
      {LoadOp::OpName, /*NumOperands=*/-1, /*NumResults=*/1, /*NumRegions=*/0,
       /*IsTerminator=*/false, [](Operation *Op, std::string &Error) {
         MemRefType Ty = Op->getOperand(0).getType().dyn_cast<MemRefType>();
         if (!Ty) {
           Error = "memref.load first operand must be a memref";
           return failure();
         }
         if (Op->getNumOperands() != 1 + Ty.getRank()) {
           Error = "memref.load index count must equal rank";
           return failure();
         }
         return success();
       }});
  Registry.registerOp(
      {StoreOp::OpName, /*NumOperands=*/-1, /*NumResults=*/0,
       /*NumRegions=*/0, /*IsTerminator=*/false,
       [](Operation *Op, std::string &Error) {
         if (Op->getNumOperands() < 2) {
           Error = "memref.store requires a value and a memref";
           return failure();
         }
         MemRefType Ty = Op->getOperand(1).getType().dyn_cast<MemRefType>();
         if (!Ty) {
           Error = "memref.store second operand must be a memref";
           return failure();
         }
         if (Op->getNumOperands() != 2 + Ty.getRank()) {
           Error = "memref.store index count must equal rank";
           return failure();
         }
         return success();
       }});
  Registry.registerOp(
      {SubViewOp::OpName, /*NumOperands=*/-1, /*NumResults=*/1,
       /*NumRegions=*/0, /*IsTerminator=*/false,
       [](Operation *Op, std::string &Error) {
         MemRefType Ty = Op->getOperand(0).getType().dyn_cast<MemRefType>();
         if (!Ty) {
           Error = "memref.subview source must be a memref";
           return failure();
         }
         if (Op->getNumOperands() != 1 + Ty.getRank()) {
           Error = "memref.subview offset count must equal rank";
           return failure();
         }
         if (!Op->hasAttr("static_sizes")) {
           Error = "memref.subview requires static_sizes";
           return failure();
         }
         return success();
       }});
}
