//===- OpView.h - Typed wrappers over generic operations --------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpView is the base of all dialect op wrapper classes, following MLIR's
/// Op<...> pattern: a non-owning typed view over a generic Operation* that
/// adds named accessors. Views are cheap to copy and convert to bool
/// (null/kind-mismatch -> false).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_OPVIEW_H
#define AXI4MLIR_DIALECTS_OPVIEW_H

#include "ir/Builders.h"
#include "ir/Operation.h"

namespace axi4mlir {

/// Base class for typed operation views.
class OpView {
public:
  OpView() = default;
  explicit OpView(Operation *Op) : Op(Op) {}

  Operation *getOperation() const { return Op; }
  Operation *operator->() const { return Op; }
  explicit operator bool() const { return Op != nullptr; }

protected:
  Operation *Op = nullptr;
};

/// Returns a typed view for \p Op if it has the right op name, otherwise a
/// null view. The view class must provide `classof(const Operation *)`.
template <typename OpT>
OpT dyn_cast_op(Operation *Op) {
  return Op && OpT::classof(Op) ? OpT(Op) : OpT();
}

/// Returns a typed view, asserting the op kind matches.
template <typename OpT>
OpT cast_op(Operation *Op) {
  assert(Op && OpT::classof(Op) && "cast_op to incompatible operation");
  return OpT(Op);
}

template <typename OpT>
bool isa_op(const Operation *Op) {
  return Op && OpT::classof(Op);
}

} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_OPVIEW_H
