//===- SCF.h - structured control flow dialect ------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `scf` dialect: scf.for / scf.yield. The tiling transformation emits
/// scf.for loop nests exactly as in paper Fig. 2b and Fig. 6b.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_DIALECTS_SCF_H
#define AXI4MLIR_DIALECTS_SCF_H

#include "dialects/OpView.h"

namespace axi4mlir {
namespace scf {

/// scf.for %iv = %lb to %ub step %step { body }. No iter_args (the host
/// driver code the paper generates does not need loop-carried values).
class ForOp : public OpView {
public:
  static constexpr const char *OpName = "scf.for";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  /// Creates the loop; the body block (with its index argument) is created
  /// and terminated with scf.yield. The builder's insertion point is left
  /// after the loop.
  static ForOp create(OpBuilder &Builder, Value LowerBound, Value UpperBound,
                      Value Step);

  Value getLowerBound() const { return Op->getOperand(0); }
  Value getUpperBound() const { return Op->getOperand(1); }
  Value getStep() const { return Op->getOperand(2); }
  Block *getBody() const { return &Op->getRegion(0).front(); }
  Value getInductionVar() const { return getBody()->getArgument(0); }

  /// The op before the terminator, i.e. the insertion point for appending
  /// to the body.
  Operation *getBodyTerminator() const { return getBody()->getTerminator(); }
};

/// scf.yield: loop body terminator.
class YieldOp : public OpView {
public:
  static constexpr const char *OpName = "scf.yield";
  using OpView::OpView;

  static bool classof(const Operation *Op) { return Op->getName() == OpName; }

  static YieldOp create(OpBuilder &Builder);
};

void registerDialect(MLIRContext &Context);

/// Helper used by the tiling pass: builds a perfect loop nest with the
/// given bounds/steps, calling \p BodyBuilder with the induction variables
/// while the builder is positioned at the innermost body. The builder's
/// insertion point is restored after the nest.
void buildLoopNest(OpBuilder &Builder, const std::vector<Value> &LowerBounds,
                   const std::vector<Value> &UpperBounds,
                   const std::vector<Value> &Steps,
                   const std::function<void(OpBuilder &,
                                            const std::vector<Value> &)>
                       &BodyBuilder);

} // namespace scf
} // namespace axi4mlir

#endif // AXI4MLIR_DIALECTS_SCF_H
