//===- Arith.cpp - arith dialect implementation ---------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "dialects/Arith.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;
using namespace axi4mlir::arith;

ConstantOp arith::ConstantOp::createIndex(OpBuilder &Builder, int64_t Value) {
  return createInt(Builder, Value, Builder.getIndexType());
}

ConstantOp arith::ConstantOp::createInt(OpBuilder &Builder, int64_t Value,
                                        Type Ty) {
  assert(Ty.isIntOrIndex() && "integer constant requires int/index type");
  return ConstantOp(Builder.create(
      OpName, {}, {Ty}, {{"value", Attribute::getInteger(Value, Ty)}}));
}

ConstantOp arith::ConstantOp::createFloat(OpBuilder &Builder, double Value,
                                          Type Ty) {
  assert(Ty.isFloat() && "float constant requires float type");
  return ConstantOp(
      Builder.create(OpName, {}, {Ty}, {{"value", Attribute::getFloat(Value)}}));
}

BinaryOp arith::BinaryOp::create(OpBuilder &Builder, const std::string &Name,
                                 Value LHS, Value RHS) {
  assert(LHS.getType() == RHS.getType() &&
         "binary arith ops require matching operand types");
  return BinaryOp(Builder.create(Name, {LHS, RHS}, {LHS.getType()}));
}

IndexCastOp arith::IndexCastOp::create(OpBuilder &Builder, Value Input,
                                       Type ResultTy) {
  return IndexCastOp(Builder.create(OpName, {Input}, {ResultTy}));
}

void arith::registerDialect(MLIRContext &Context) {
  OpRegistry &Registry = Context.getOpRegistry();
  Registry.registerOp({ConstantOp::OpName, /*NumOperands=*/0,
                       /*NumResults=*/1, /*NumRegions=*/0,
                       /*IsTerminator=*/false,
                       [](Operation *Op, std::string &Error) {
                         if (!Op->hasAttr("value")) {
                           Error = "arith.constant requires a value attr";
                           return failure();
                         }
                         return success();
                       }});
  for (const char *Name :
       {"arith.addf", "arith.mulf", "arith.subf", "arith.divf", "arith.maxf",
        "arith.addi", "arith.muli", "arith.subi"}) {
    Registry.registerOp({Name, /*NumOperands=*/2, /*NumResults=*/1,
                         /*NumRegions=*/0, /*IsTerminator=*/false,
                         [](Operation *Op, std::string &Error) {
                           if (Op->getOperand(0).getType() !=
                               Op->getOperand(1).getType()) {
                             Error = "binary arith op operand types differ";
                             return failure();
                           }
                           return success();
                         }});
  }
  Registry.registerOp({IndexCastOp::OpName, /*NumOperands=*/1,
                       /*NumResults=*/1, /*NumRegions=*/0,
                       /*IsTerminator=*/false, nullptr});
}
