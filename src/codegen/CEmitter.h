//===- CEmitter.h - C host-code emitter -------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders fully lowered host driver IR (scf/arith/memref + axirt.* calls)
/// as a readable, self-contained C source file — what you would
/// cross-compile for the real PYNQ-Z2 board instead of interpreting. This
/// corresponds to the paper's final "Translate host code to LLVM IR,
/// compile to binary file" stage (Fig. 4), rendered as C for inspection.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_CODEGEN_CEMITTER_H
#define AXI4MLIR_CODEGEN_CEMITTER_H

#include "dialects/Func.h"
#include "support/LogicalResult.h"

#include <string>

namespace axi4mlir {
namespace codegen {

/// Emits C99 host driver code for \p Func. \p Func must already be fully
/// lowered (no linalg/accel ops). On failure fills \p Error.
FailureOr<std::string> emitC(func::FuncOp Func, std::string *Error = nullptr);

} // namespace codegen
} // namespace axi4mlir

#endif // AXI4MLIR_CODEGEN_CEMITTER_H
