//===- PassManager.cpp - Pass pipeline driver -----------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "transforms/Passes.h"

#include "ir/Verifier.h"

using namespace axi4mlir;
using namespace axi4mlir::transforms;

LogicalResult PassManager::run(func::FuncOp Func, std::string &Error) {
  for (auto &[Name, Fn] : Passes) {
    if (failed(Fn(Func, Error))) {
      Error = "pass '" + Name + "' failed: " + Error;
      return failure();
    }
    if (VerifyAfterEach &&
        failed(verify(Func.getOperation(), Error))) {
      Error = "IR verification failed after pass '" + Name + "': " + Error;
      return failure();
    }
  }
  return success();
}

PassManager transforms::buildPipeline(
    std::vector<parser::AcceleratorDesc> Accels,
    const LoweringOptions &Options,
    std::shared_ptr<std::vector<TilingPlan>> PlansOut) {
  PlanningOptions Planning;
  Planning.Mode = Options.Remainder;
  Planning.Params = Options.CostParams;

  PassManager PM;
  PM.addPass("convert-named-to-generic",
             [](func::FuncOp Func, std::string &Error) {
               return convertNamedToGeneric(Func, Error);
             });
  PM.addPass("match-and-annotate",
             [Accels = std::move(Accels), Planning,
              PlansOut](func::FuncOp Func, std::string &Error) {
               return matchAndAnnotate(Func, Accels, Planning, Error,
                                       /*NumAnnotated=*/nullptr,
                                       PlansOut.get());
             });
  PM.addPass("lower-to-accel",
             [Options](func::FuncOp Func, std::string &Error) {
               return lowerToAccel(Func, Options, Error);
             });
  PM.addPass("convert-accel-to-runtime",
             [](func::FuncOp Func, std::string &Error) {
               return convertAccelToRuntime(Func, Error);
             });
  return PM;
}

PassManager transforms::buildPipeline(const parser::AcceleratorDesc &Accel,
                                      const LoweringOptions &Options) {
  return buildPipeline(std::vector<parser::AcceleratorDesc>{Accel}, Options);
}
