//===- TilingPlan.h - Per-kernel tiling/dispatch plan -----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiling-plan layer: a `TilingPlan` value object captures, per loop
/// dimension of a matched kernel, the accelerator tile, the number of full
/// tiles, the partial-tile remainder and the strategy used to handle it
/// (`Pad` a zero-filled staging tile + mask the result, or `Peel` the
/// remainder into a host epilogue loop), plus the accelerator selected to
/// run the kernel.
///
/// `planTiling` is the single entry point: it scores *every* parsed
/// accelerator that structurally implements the kernel against the
/// `sim/CostModel.h` SoC parameters and picks the cheapest legal one.
/// The plan is computed once (during match-and-annotate), attached to the
/// annotated linalg.generic as attributes, and consumed — never re-derived
/// — by lowerToAccel (loop bounds, peel epilogues, pad staging) and
/// convertAccelToRuntime (DMA transfer lengths follow the plan's
/// tile-shaped staging buffers).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_TRANSFORMS_TILINGPLAN_H
#define AXI4MLIR_TRANSFORMS_TILINGPLAN_H

#include "dialects/Linalg.h"
#include "parser/AcceleratorConfig.h"
#include "sim/CostModel.h"
#include "support/LogicalResult.h"

#include <string>
#include <vector>

namespace axi4mlir {
namespace transforms {

/// How problem extents that are not divisible by the accelerator tile are
/// handled.
enum class RemainderMode {
  /// Refuse non-divisible problems (the pre-plan behaviour). The error
  /// reports every offending dimension at once.
  Reject,
  /// Ship the last tile of each dimension zero-padded to the full
  /// accelerator tile and mask the valid region when writing results back.
  Pad,
  /// Execute full tiles on the accelerator and peel the remainder region
  /// into host epilogue loops (a residual linalg.generic per partial dim).
  Peel,
};

const char *remainderModeName(RemainderMode Mode);
FailureOr<RemainderMode> parseRemainderMode(const std::string &Name);

/// The plan for one kernel loop dimension.
struct DimPlan {
  /// Full problem extent of this dimension.
  int64_t Extent = 0;
  /// Accelerator tile (resolved: >0 config = fixed, 0 = per-element host
  /// loop, -1 = full extent; always clamped to the extent).
  int64_t Tile = 1;
  /// Number of whole accelerator tiles: Extent / Tile.
  int64_t FullTiles = 0;
  /// Partial-tile remainder: Extent % Tile (0 when divisible).
  int64_t Remainder = 0;

  /// Extent covered by full tiles (the accelerator main region).
  int64_t mainExtent() const { return FullTiles * Tile; }
  /// Extent after padding the partial tile up to a full one.
  int64_t paddedExtent() const {
    return (FullTiles + (Remainder ? 1 : 0)) * Tile;
  }
  bool hasPartialTile() const { return Remainder != 0; }
};

/// A complete tiling/dispatch decision for one kernel.
struct TilingPlan {
  RemainderMode Mode = RemainderMode::Pad;
  std::vector<DimPlan> Dims;
  /// The selected accelerator: name and index into the candidate list
  /// handed to planTiling.
  std::string AcceleratorName;
  size_t AcceleratorIndex = 0;
  /// Modelled execution cost of the whole kernel on the selected
  /// accelerator (milliseconds of task clock).
  double EstimatedCostMs = 0.0;

  bool hasPartialTiles() const {
    for (const DimPlan &Dim : Dims)
      if (Dim.hasPartialTile())
        return true;
    return false;
  }
  std::vector<int64_t> tiles() const {
    std::vector<int64_t> Tiles;
    for (const DimPlan &Dim : Dims)
      Tiles.push_back(Dim.Tile);
    return Tiles;
  }
  std::vector<int64_t> remainders() const {
    std::vector<int64_t> Remainders;
    for (const DimPlan &Dim : Dims)
      Remainders.push_back(Dim.Remainder);
    return Remainders;
  }

  /// Attaches the plan to an annotated linalg.generic (remainder mode +
  /// per-dim tiles/remainders). The accel_dim attribute carries the tiles;
  /// the plan attributes carry the rest.
  void attachTo(Operation *Op) const;
  /// Reconstructs the plan attached by attachTo. Fails with \p Error if
  /// the op does not carry plan attributes.
  static FailureOr<TilingPlan> fromOp(Operation *Op, std::string &Error);
};

/// Options for plan construction.
struct PlanningOptions {
  RemainderMode Mode = RemainderMode::Pad;
  /// SoC calibration used by the dispatch cost model.
  sim::SoCParams Params;
};

/// Resolves the per-dimension tiles of \p Accel against the kernel's loop
/// ranges and builds a plan (no cost scoring, no selection). Fails when
/// the accelerator is illegal for the kernel: rank mismatch, or — in
/// Reject mode — any non-divisible extent (all offending dims are listed
/// in one error).
FailureOr<TilingPlan> planForAccelerator(const std::vector<int64_t> &LoopRanges,
                                         const parser::AcceleratorDesc &Accel,
                                         RemainderMode Mode,
                                         std::string &Error);

/// Models the cost of executing the planned kernel on \p Accel: per-tile
/// DMA driver overhead, streamed words (padded tiles ship full size),
/// fabric compute on padded extents, and — for Peel — the host cycles of
/// the epilogue region. Returns milliseconds of task clock.
double estimatePlanCostMs(const TilingPlan &Plan,
                          const parser::AcceleratorDesc &Accel,
                          const std::vector<AffineMap> &IndexingMaps,
                          const sim::SoCParams &Params);

/// The planning entry point: scores every candidate accelerator whose
/// description is legal for the kernel and returns the cheapest plan
/// (ties break towards the earlier entry, making selection deterministic).
/// Fails when no candidate is legal; the error aggregates every
/// per-candidate reason.
FailureOr<TilingPlan> planTiling(linalg::GenericOp Generic,
                                 const std::vector<parser::AcceleratorDesc> &Accels,
                                 const PlanningOptions &Options,
                                 std::string &Error);

/// IR-free planning entry: identical selection semantics to planTiling but
/// over a kernel described directly by its canonical loop ranges and
/// indexing maps (`linalg::getMatmulIndexingMaps` /
/// `linalg::getConvIndexingMaps` build them without an MLIRContext). This
/// is the routing signal of the serve layer: the accelerator pool scores a
/// job's shape against every healthy instance without constructing IR.
FailureOr<TilingPlan>
planKernelDispatch(const std::vector<int64_t> &LoopRanges,
                   const std::vector<AffineMap> &IndexingMaps,
                   const std::vector<parser::AcceleratorDesc> &Accels,
                   const PlanningOptions &Options, std::string &Error);

/// Plan attribute names (attached next to the Fig. 6a trait attributes).
inline constexpr const char *RemainderModeAttrName = "accel.remainder_mode";
inline constexpr const char *PlanRemaindersAttrName = "accel.plan_remainders";

} // namespace transforms
} // namespace axi4mlir

#endif // AXI4MLIR_TRANSFORMS_TILINGPLAN_H
