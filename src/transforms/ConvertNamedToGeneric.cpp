//===- ConvertNamedToGeneric.cpp - Named linalg ops -> generic ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the "Convert named ops to linalg.generic" stage of the
/// pipeline (paper Fig. 4, Fig. 2a): linalg.matmul and
/// linalg.conv_2d_nchw_fchw are rewritten into linalg.generic ops with the
/// canonical indexing maps, iterator types, and a mul-add payload.
///
//===----------------------------------------------------------------------===//

#include "dialects/Arith.h"
#include "dialects/Linalg.h"
#include "transforms/Passes.h"

using namespace axi4mlir;
using namespace axi4mlir::transforms;

/// Builds the multiply-accumulate payload shared by matmul and conv:
///   %0 = mul(%a, %b); %1 = add(%c, %0); linalg.yield %1
static void buildMulAddBody(OpBuilder &Builder,
                            const std::vector<Value> &Args) {
  bool IsFloat = Args[0].getType().isFloat();
  Value Product = arith::BinaryOp::create(
                      Builder, IsFloat ? "arith.mulf" : "arith.muli", Args[0],
                      Args[1])
                      .getResult();
  Value Sum = arith::BinaryOp::create(Builder,
                                      IsFloat ? "arith.addf" : "arith.addi",
                                      Args[2], Product)
                  .getResult();
  linalg::YieldOp::create(Builder, {Sum});
}

LogicalResult transforms::convertNamedToGeneric(func::FuncOp Func,
                                                std::string &Error) {
  (void)Error;
  std::vector<Operation *> NamedOps;
  Func.getOperation()->walk([&](Operation *Op) {
    if (isa_op<linalg::MatmulOp>(Op) || isa_op<linalg::Conv2DNchwFchwOp>(Op))
      NamedOps.push_back(Op);
  });

  OpBuilder Builder(Func.getOperation()->getContext());
  for (Operation *Op : NamedOps) {
    Builder.setInsertionPoint(Op);
    if (auto Matmul = dyn_cast_op<linalg::MatmulOp>(Op)) {
      linalg::GenericOp::create(
          Builder, {Matmul.getA(), Matmul.getB()}, {Matmul.getC()},
          linalg::getMatmulIndexingMaps(), linalg::getMatmulIteratorTypes(),
          buildMulAddBody);
    } else {
      auto Conv = cast_op<linalg::Conv2DNchwFchwOp>(Op);
      linalg::GenericOp::create(
          Builder, {Conv.getInput(), Conv.getFilter()}, {Conv.getOutput()},
          linalg::getConvIndexingMaps(Conv.getStrideH(), Conv.getStrideW()),
          linalg::getConvIteratorTypes(), buildMulAddBody);
    }
    Op->erase();
  }
  return success();
}
