//===- TilingPlan.cpp - Plan construction, cost model, selection ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "transforms/TilingPlan.h"

#include "dialects/Accel.h"
#include "support/STLExtras.h"

#include <cmath>
#include <limits>

using namespace axi4mlir;
using namespace axi4mlir::transforms;

//===----------------------------------------------------------------------===//
// Remainder mode names
//===----------------------------------------------------------------------===//

const char *transforms::remainderModeName(RemainderMode Mode) {
  switch (Mode) {
  case RemainderMode::Reject:
    return "reject";
  case RemainderMode::Pad:
    return "pad";
  case RemainderMode::Peel:
    return "peel";
  }
  return "pad";
}

FailureOr<RemainderMode>
transforms::parseRemainderMode(const std::string &Name) {
  if (Name == "reject")
    return RemainderMode::Reject;
  if (Name == "pad")
    return RemainderMode::Pad;
  if (Name == "peel")
    return RemainderMode::Peel;
  return failure();
}

//===----------------------------------------------------------------------===//
// Plan <-> attribute round trip
//===----------------------------------------------------------------------===//

void TilingPlan::attachTo(Operation *Op) const {
  unsigned NumLoops = Dims.size();
  Op->setAttr(accel::AccelDimAttrName,
              Attribute::getAffineMap(AffineMap::getConstant(NumLoops,
                                                             tiles())));
  Op->setAttr(RemainderModeAttrName,
              Attribute::getString(remainderModeName(Mode)));
  Op->setAttr(PlanRemaindersAttrName,
              Attribute::getAffineMap(AffineMap::getConstant(NumLoops,
                                                             remainders())));
}

FailureOr<TilingPlan> TilingPlan::fromOp(Operation *Op, std::string &Error) {
  linalg::GenericOp Generic(Op);
  std::vector<int64_t> Ranges = Generic.getStaticLoopRanges();
  if (Ranges.empty()) {
    Error = "planned generic has non-inferable loop ranges";
    return failure();
  }
  if (!Op->hasAttr(accel::AccelDimAttrName)) {
    Error = "operation carries no tiling plan (missing accel_dim)";
    return failure();
  }

  TilingPlan Plan;
  AffineMap TileMap = Op->getAffineMapAttr(accel::AccelDimAttrName);
  AffineMap RemainderMap = Op->hasAttr(PlanRemaindersAttrName)
                               ? Op->getAffineMapAttr(PlanRemaindersAttrName)
                               : AffineMap();
  if (Op->hasAttr(RemainderModeAttrName)) {
    auto Mode = parseRemainderMode(Op->getStringAttr(RemainderModeAttrName));
    if (failed(Mode)) {
      Error = "unknown remainder mode '" +
              Op->getStringAttr(RemainderModeAttrName) + "'";
      return failure();
    }
    Plan.Mode = *Mode;
  }
  if (Op->hasAttr(accel::AcceleratorNameAttrName))
    Plan.AcceleratorName = Op->getStringAttr(accel::AcceleratorNameAttrName);

  Plan.Dims.resize(Ranges.size());
  for (unsigned D = 0; D < Ranges.size(); ++D) {
    DimPlan &Dim = Plan.Dims[D];
    Dim.Extent = Ranges[D];
    Dim.Tile = TileMap.getResult(D).getConstantValue();
    Dim.Remainder =
        RemainderMap ? RemainderMap.getResult(D).getConstantValue() : 0;
    Dim.FullTiles = (Dim.Extent - Dim.Remainder) / Dim.Tile;
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Per-accelerator plan construction
//===----------------------------------------------------------------------===//

FailureOr<TilingPlan>
transforms::planForAccelerator(const std::vector<int64_t> &LoopRanges,
                               const parser::AcceleratorDesc &Accel,
                               RemainderMode Mode, std::string &Error) {
  unsigned NumLoops = LoopRanges.size();
  if (Accel.AccelSize.size() != NumLoops) {
    Error = "accel_size rank (" + std::to_string(Accel.AccelSize.size()) +
            ") does not match the kernel's loop count (" +
            std::to_string(NumLoops) + ")";
    return failure();
  }

  TilingPlan Plan;
  Plan.Mode = Mode;
  Plan.AcceleratorName = Accel.Name;
  Plan.Dims.resize(NumLoops);
  std::vector<unsigned> OffendingDims;
  for (unsigned D = 0; D < NumLoops; ++D) {
    DimPlan &Dim = Plan.Dims[D];
    Dim.Extent = LoopRanges[D];
    // Resolve the accelerator tile: >0 -> fixed tile; 0 -> per-element
    // host loop; -1 -> runtime-flexible, covers the full extent.
    int64_t Config = Accel.AccelSize[D];
    if (Config < 0)
      Dim.Tile = Dim.Extent;
    else if (Config == 0)
      Dim.Tile = 1;
    else
      Dim.Tile = Config;
    // Extents below the engine tile: with a pad/peel strategy the tile
    // stays at full engine size and the whole extent becomes a partial
    // tile (a fixed-size engine still expects full-size bursts, so
    // clamping would break the wire protocol). Reject mode keeps the
    // legacy clamp for backward compatibility.
    if (Dim.Tile > Dim.Extent && Mode == RemainderMode::Reject)
      Dim.Tile = Dim.Extent;
    Dim.Remainder = Dim.Extent % Dim.Tile;
    Dim.FullTiles = Dim.Extent / Dim.Tile;
    if (Dim.Remainder != 0)
      OffendingDims.push_back(D);
  }

  if (Mode == RemainderMode::Reject && !OffendingDims.empty()) {
    // Report every offending dimension in one error.
    Error = "problem extents are not divisible by the accelerator tile:";
    for (unsigned D : OffendingDims)
      Error += " dim " + std::to_string(D) + " (extent " +
               std::to_string(Plan.Dims[D].Extent) + ", tile " +
               std::to_string(Plan.Dims[D].Tile) + ")";
    Error += "; use a pad or peel remainder strategy";
    return failure();
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

namespace {

/// Sum of |coeff| over the dims of a linear indexing expression, mapped
/// through \p PerDim; returns the tile footprint of one map result.
int64_t resultFootprint(AffineExpr Expr,
                        const std::vector<int64_t> &PerDim) {
  switch (Expr.getKind()) {
  case AffineExpr::Kind::Constant:
    return 0;
  case AffineExpr::Kind::Dim:
    return PerDim[Expr.getPosition()] - 1;
  case AffineExpr::Kind::Add:
    return resultFootprint(Expr.getLHS(), PerDim) +
           resultFootprint(Expr.getRHS(), PerDim);
  case AffineExpr::Kind::Mul: {
    AffineExpr LHS = Expr.getLHS(), RHS = Expr.getRHS();
    if (RHS.isConstant())
      return std::abs(RHS.getConstantValue()) *
             resultFootprint(LHS, PerDim);
    if (LHS.isConstant())
      return std::abs(LHS.getConstantValue()) *
             resultFootprint(RHS, PerDim);
    return 0;
  }
  default:
    return 0;
  }
}

/// Elements of one operand tile under per-dimension footprints.
int64_t operandTileElements(AffineMap Map,
                            const std::vector<int64_t> &PerDim) {
  int64_t Elements = 1;
  for (const AffineExpr &Result : Map.getResults())
    Elements *= 1 + resultFootprint(Result, PerDim);
  return Elements;
}

} // namespace

double transforms::estimatePlanCostMs(const TilingPlan &Plan,
                                      const parser::AcceleratorDesc &Accel,
                                      const std::vector<AffineMap> &IndexingMaps,
                                      const sim::SoCParams &Params) {
  // Tile-step count over the accelerator region: padded problems round the
  // partial tile up to a full step, peeled problems only run full tiles.
  double AccelSteps = 1.0;
  double PaddedPoints = 1.0, MainPoints = 1.0, TotalPoints = 1.0;
  std::vector<int64_t> Tiles = Plan.tiles();
  for (const DimPlan &Dim : Plan.Dims) {
    int64_t Steps = Plan.Mode == RemainderMode::Peel
                        ? Dim.FullTiles
                        : Dim.FullTiles + (Dim.Remainder ? 1 : 0);
    AccelSteps *= static_cast<double>(Steps);
    PaddedPoints *= static_cast<double>(Dim.paddedExtent());
    MainPoints *= static_cast<double>(Dim.mainExtent());
    TotalPoints *= static_cast<double>(Dim.Extent);
  }

  // Words streamed per tile step: every operand's full-tile footprint
  // (padded partial tiles ship at full size). This deliberately ignores
  // stationary hoisting — it applies equally to every candidate, so it
  // cancels out of the comparison.
  double WordsPerStep = 0.0;
  for (const AffineMap &Map : IndexingMaps)
    WordsPerStep += static_cast<double>(operandTileElements(Map, Tiles));
  double Words = WordsPerStep * AccelSteps;
  double Bytes = Words * 4.0;

  // Host side: DMA driver calls per step (one batched send + one receive)
  // plus the staging copies in and out.
  double HostCycles =
      static_cast<double>(Params.DmaInitHostCycles) +
      AccelSteps * 2.0 *
          static_cast<double>(Params.DmaStartHostCycles +
                              Params.DmaWaitHostCycles) +
      AccelSteps * 2.0 * static_cast<double>(Params.MemcpySetupInstructions) +
      Bytes / static_cast<double>(Params.MemcpyBytesPerInstruction);

  // Fabric side: transfer latency per step, streamed words, and the
  // compute on the (padded) accelerator region.
  double ComputePoints =
      Plan.Mode == RemainderMode::Peel ? MainPoints : PaddedPoints;
  double OpsPerCycle =
      Accel.Kernel == "linalg.conv_2d_nchw_fchw"
          ? sim::convOpsPerCycle()
          : sim::matmulOpsPerCycle([&] {
              int64_t MaxTile = 1;
              for (int64_t Tile : Tiles)
                MaxTile = std::max(MaxTile, Tile);
              return MaxTile;
            }());
  double FabricCycles =
      AccelSteps * 2.0 *
          static_cast<double>(Params.DmaTransferLatencyFabricCycles) +
      Bytes / static_cast<double>(Params.BytesPerFabricCycle) +
      2.0 * ComputePoints / OpsPerCycle;

  double Ms = Params.taskClockMs(HostCycles, FabricCycles);

  // Peel epilogue: the remainder region executes on the host, roughly one
  // load per operand + one MAC + store per point.
  if (Plan.Mode == RemainderMode::Peel) {
    double EpiloguePoints = TotalPoints - MainPoints;
    double EpilogueCycles =
        EpiloguePoints *
        static_cast<double>(IndexingMaps.size() + 1 +
                            Params.ScalarAccessExtraInstructions +
                            Params.LoopIterationInstructions);
    Ms += Params.taskClockMs(EpilogueCycles, 0.0);
  }
  return Ms;
}

//===----------------------------------------------------------------------===//
// Selection
//===----------------------------------------------------------------------===//

FailureOr<TilingPlan>
transforms::planTiling(linalg::GenericOp Generic,
                       const std::vector<parser::AcceleratorDesc> &Accels,
                       const PlanningOptions &Options, std::string &Error) {
  std::vector<int64_t> LoopRanges = Generic.getStaticLoopRanges();
  if (LoopRanges.empty()) {
    Error = "cannot infer static loop ranges for the planned generic";
    return failure();
  }
  return planKernelDispatch(LoopRanges, Generic.getIndexingMaps(), Accels,
                            Options, Error);
}

FailureOr<TilingPlan> transforms::planKernelDispatch(
    const std::vector<int64_t> &LoopRanges,
    const std::vector<AffineMap> &Maps,
    const std::vector<parser::AcceleratorDesc> &Accels,
    const PlanningOptions &Options, std::string &Error) {
  if (Accels.empty()) {
    Error = "no candidate accelerators to plan against";
    return failure();
  }

  bool Found = false;
  TilingPlan Best;
  double BestCost = std::numeric_limits<double>::max();
  std::string Reasons;
  for (size_t Index = 0; Index < Accels.size(); ++Index) {
    std::string CandidateError;
    auto Candidate = planForAccelerator(LoopRanges, Accels[Index],
                                        Options.Mode, CandidateError);
    if (failed(Candidate)) {
      Reasons += (Reasons.empty() ? "" : "; ") + Accels[Index].Name + ": " +
                 CandidateError;
      continue;
    }
    Candidate->AcceleratorIndex = Index;
    Candidate->EstimatedCostMs =
        estimatePlanCostMs(*Candidate, Accels[Index], Maps, Options.Params);
    // Strictly-cheaper wins; ties keep the earlier candidate so selection
    // is deterministic across identical engines.
    if (!Found || Candidate->EstimatedCostMs < BestCost) {
      Found = true;
      Best = std::move(*Candidate);
      BestCost = Best.EstimatedCostMs;
    }
  }
  if (!Found) {
    Error = "no legal accelerator for the kernel: " + Reasons;
    return failure();
  }
  return Best;
}
