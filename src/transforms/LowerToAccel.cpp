//===- LowerToAccel.cpp - Tiling + opcode-flow host code generation -------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of AXI4MLIR (paper Fig. 4 steps 4-5): lowers an annotated
/// linalg.generic into
///
///   * an optional outer loop nest tiled for the CPU's last-level cache
///     (temporal locality, DESIGN.md Sec. 5.2),
///   * an inner loop nest tiled to the accelerator size, ordered by the
///     permutation_map (stationary dataflows),
///   * accel-dialect communication ops placed at the loop level dictated
///     by the opcode_flow scopes and each tile's index dependencies
///     (DESIGN.md Sec. 5.1) — e.g. paper Fig. 6b for matmul-As and
///     Fig. 15b for the output-stationary convolution.
///
//===----------------------------------------------------------------------===//

#include "dialects/Accel.h"
#include "dialects/Arith.h"
#include "dialects/Linalg.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"
#include "transforms/Passes.h"

#include <algorithm>
#include <map>
#include <set>

using namespace axi4mlir;
using namespace axi4mlir::transforms;
using accel::OpcodeAction;

namespace {

//===----------------------------------------------------------------------===//
// Linear analysis of indexing expressions
//===----------------------------------------------------------------------===//

/// A sum of coeff*dim terms plus a constant: the normal form of every
/// indexing expression we support (projections and strided convolutions).
struct LinearExpr {
  std::vector<std::pair<unsigned, int64_t>> Terms; // (dim, coeff)
  int64_t Constant = 0;
};

bool analyzeLinear(AffineExpr Expr, LinearExpr &Out, int64_t Scale = 1) {
  switch (Expr.getKind()) {
  case AffineExpr::Kind::Constant:
    Out.Constant += Scale * Expr.getConstantValue();
    return true;
  case AffineExpr::Kind::Dim:
    Out.Terms.emplace_back(Expr.getPosition(), Scale);
    return true;
  case AffineExpr::Kind::Add:
    return analyzeLinear(Expr.getLHS(), Out, Scale) &&
           analyzeLinear(Expr.getRHS(), Out, Scale);
  case AffineExpr::Kind::Mul: {
    AffineExpr LHS = Expr.getLHS(), RHS = Expr.getRHS();
    if (RHS.isConstant())
      return analyzeLinear(LHS, Out, Scale * RHS.getConstantValue());
    if (LHS.isConstant())
      return analyzeLinear(RHS, Out, Scale * LHS.getConstantValue());
    return false;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Per-dimension loop bookkeeping
//===----------------------------------------------------------------------===//

/// Everything the emitter knows about one kernel dimension.
struct DimInfo {
  int64_t Extent = 0;   ///< full problem extent
  int64_t Tile = 1;     ///< accelerator tile (== Extent if not host-looped)
  int64_t CpuTile = 0;  ///< CPU cache tile (0 = no CPU loop)
  bool HasAccelLoop = false;
  int AccelLoopDepth = -1; ///< depth among emitted accel loops
  Value AccelIV;
  Value CpuIV;
};

/// A token placement decision.
struct TokenPlacement {
  const accel::OpcodeEntry *Entry = nullptr;
  unsigned Depth = 0; ///< number of enclosing accel loops
  bool Post = false;  ///< insert after (true) or before (false) the child
                      ///< loop at Depth
};

//===----------------------------------------------------------------------===//
// The emitter
//===----------------------------------------------------------------------===//

class AccelLoweringEmitter {
public:
  AccelLoweringEmitter(linalg::GenericOp Generic,
                       const LoweringOptions &Options, std::string &Error)
      : Generic(Generic), Op(Generic.getOperation()),
        Builder(Op->getContext()), Options(Options), Error(Error) {}

  LogicalResult run();

private:
  LogicalResult analyze();
  void chooseCpuTiles();
  LogicalResult placeTokens(const accel::FlowScope &Scope, unsigned Level,
                            std::vector<TokenPlacement> &Placements);
  unsigned innerStartOfLevel(unsigned Level) const;
  unsigned sendTokenDepth(const accel::OpcodeEntry &Entry) const;

  LogicalResult emit();
  LogicalResult emitInitOpcodes();
  /// The accelerator-tile footprint of result dimension \p ResultDim of
  /// operand \p ArgIndex (what send_dim transmits).
  int64_t operandDimFootprint(int64_t ArgIndex, unsigned ResultDim) const;
  void buildLoopNest();
  LogicalResult emitToken(const TokenPlacement &Placement);
  Value emitSubview(int64_t ArgIndex, unsigned Depth);
  Value visibleIV(unsigned Dim, unsigned Depth, bool &CoveredByLoop) const;

  Value constantIndex(int64_t V) {
    return arith::ConstantOp::createIndex(Builder, V).getResult();
  }

  linalg::GenericOp Generic;
  Operation *Op;
  OpBuilder Builder;
  LoweringOptions Options;
  std::string &Error;

  // Analysis results.
  unsigned NumLoops = 0;
  std::vector<DimInfo> Dims;
  std::vector<unsigned> Permutation;
  const accel::OpcodeMapData *OpcodeMap = nullptr;
  const accel::OpcodeFlowData *Flow = nullptr;
  const accel::OpcodeFlowData *InitFlow = nullptr;
  accel::DmaInitConfig DmaConfig;

  /// Dim -> accel-loop depth map and the emitted loops.
  std::vector<unsigned> AccelLoopDims; // perm-ordered dims with accel loops
  std::vector<scf::ForOp> AccelLoops;
  std::vector<scf::ForOp> CpuLoops;

  /// Per-scope-level maximum send-token depth (for recv/literal placement).
  std::vector<unsigned> LevelSendDepth;

  /// Saved insertion state per (depth, post) while emitting tokens. The
  /// running offset chains consecutive tokens of a slot into one batched
  /// DMA transfer (paper Sec. III-A: "computing the total length and
  /// executing a single send").
  struct SlotState {
    OpBuilder::InsertPoint Point;
    Value ChainOffset;
  };
  std::map<std::pair<unsigned, bool>, SlotState> Points;
};

LogicalResult AccelLoweringEmitter::analyze() {
  NumLoops = Generic.getNumLoops();
  std::vector<int64_t> Ranges = Generic.getStaticLoopRanges();
  if (Ranges.empty()) {
    Error = "annotated generic has non-inferable loop ranges";
    return failure();
  }

  AffineMap TileMap =
      Op->getAttr(accel::AccelDimAttrName).getAffineMapValue();
  AffineMap PermMap =
      Op->getAttr(accel::PermutationMapAttrName).getAffineMapValue();
  OpcodeMap = &Op->getAttr(accel::OpcodeMapAttrName).getOpcodeMapValue();
  Flow = &Op->getAttr(accel::OpcodeFlowAttrName).getOpcodeFlowValue();
  if (Op->hasAttr(accel::InitOpcodesAttrName))
    InitFlow = &Op->getAttr(accel::InitOpcodesAttrName).getOpcodeFlowValue();
  DmaConfig = Op->getAttr(accel::DmaInitConfigAttrName).getDmaConfigValue();

  Dims.resize(NumLoops);
  for (unsigned D = 0; D < NumLoops; ++D) {
    Dims[D].Extent = Ranges[D];
    Dims[D].Tile = TileMap.getResult(D).getConstantValue();
  }
  Permutation.clear();
  for (unsigned R = 0; R < PermMap.getNumResults(); ++R)
    Permutation.push_back(PermMap.getResult(R).getPosition());

  chooseCpuTiles();

  // Decide which dims get accel loops, in permutation order.
  for (unsigned Dim : Permutation) {
    int64_t LoopExtent =
        Dims[Dim].CpuTile ? Dims[Dim].CpuTile : Dims[Dim].Extent;
    if (Dims[Dim].Tile < LoopExtent) {
      Dims[Dim].HasAccelLoop = true;
      Dims[Dim].AccelLoopDepth = static_cast<int>(AccelLoopDims.size());
      AccelLoopDims.push_back(Dim);
    }
  }
  return success();
}

void AccelLoweringEmitter::chooseCpuTiles() {
  if (!Options.EnableCpuTiling)
    return;
  // Working set of one CPU tile: sum over operands of the tile footprint
  // under candidate tile sizes (DESIGN.md Sec. 5.2).
  auto workingSetBytes = [&](const std::vector<int64_t> &Tiles) -> int64_t {
    int64_t Total = 0;
    for (unsigned I = 0, E = Op->getNumOperands(); I < E; ++I) {
      AffineMap Map = Generic.getIndexingMap(I);
      int64_t Elements = 1;
      for (const AffineExpr &Result : Map.getResults()) {
        LinearExpr Linear;
        if (!analyzeLinear(Result, Linear))
          return INT64_MAX;
        int64_t Size = 1;
        for (auto [Dim, Coeff] : Linear.Terms)
          Size += std::abs(Coeff) * (Tiles[Dim] - 1);
        Elements *= Size;
      }
      Total += Elements * Options.ElementBytes;
    }
    return Total;
  };

  // Grow tiles by powers of two above the accelerator tile while the
  // working set fits in half the last-level cache and the tile divides the
  // extent.
  std::vector<int64_t> Best(NumLoops);
  for (unsigned D = 0; D < NumLoops; ++D)
    Best[D] = Dims[D].Tile;
  for (int Step = 0; Step < 12; ++Step) {
    bool Changed = false;
    // Round-robin doubling keeps tiles roughly square.
    for (unsigned D = 0; D < NumLoops; ++D) {
      int64_t Candidate = Best[D] * 2;
      if (Candidate > Dims[D].Extent)
        Candidate = Dims[D].Extent;
      if (Candidate == Best[D] || Dims[D].Extent % Candidate != 0)
        continue;
      std::vector<int64_t> Trial = Best;
      Trial[D] = Candidate;
      if (workingSetBytes(Trial) * 2 <= Options.CacheBytes) {
        Best = Trial;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  for (unsigned D = 0; D < NumLoops; ++D) {
    // A CPU loop is only worthwhile strictly between tile and extent.
    if (Best[D] > Dims[D].Tile && Best[D] < Dims[D].Extent)
      Dims[D].CpuTile = Best[D];
  }
}

int64_t AccelLoweringEmitter::operandDimFootprint(int64_t ArgIndex,
                                                  unsigned ResultDim) const {
  AffineMap Map = Generic.getIndexingMap(ArgIndex);
  assert(ResultDim < Map.getNumResults() && "send_dim result out of range");
  LinearExpr Linear;
  [[maybe_unused]] bool Ok = analyzeLinear(Map.getResult(ResultDim), Linear);
  assert(Ok && "non-linear indexing expression in send_dim");
  int64_t Size = 1;
  for (auto [Dim, Coeff] : Linear.Terms)
    Size += std::abs(Coeff) * (Dims[Dim].Tile - 1);
  return Size;
}

unsigned AccelLoweringEmitter::sendTokenDepth(
    const accel::OpcodeEntry &Entry) const {
  unsigned Depth = 0;
  for (const OpcodeAction &Action : Entry.Actions) {
    if (Action.ActionKind != OpcodeAction::Kind::Send)
      continue;
    AffineMap Map = Generic.getIndexingMap(Action.ArgIndex);
    for (unsigned Dim : Map.getAllDimPositions())
      if (Dims[Dim].HasAccelLoop)
        Depth = std::max(Depth,
                         static_cast<unsigned>(Dims[Dim].AccelLoopDepth) + 1);
  }
  return Depth;
}

unsigned AccelLoweringEmitter::innerStartOfLevel(unsigned Level) const {
  // First loop depth owned by scopes deeper than `Level`: one past the
  // deepest send of levels <= Level, or the innermost depth if those
  // levels transfer nothing.
  if (Level < LevelSendDepth.size() && LevelSendDepth[Level] > 0)
    return LevelSendDepth[Level];
  return static_cast<unsigned>(AccelLoops.size());
}

LogicalResult AccelLoweringEmitter::placeTokens(
    const accel::FlowScope &Scope, unsigned Level,
    std::vector<TokenPlacement> &Placements) {
  bool SeenNestedScope = false;
  for (const accel::FlowItem &Item : Scope.Items) {
    if (Item.isScope()) {
      if (failed(placeTokens(*Item.Scope, Level + 1, Placements)))
        return failure();
      SeenNestedScope = true;
      continue;
    }
    const accel::OpcodeEntry *Entry = OpcodeMap->lookup(Item.Token);
    if (!Entry) {
      Error = "flow token '" + Item.Token + "' missing from opcode_map";
      return failure();
    }
    TokenPlacement Placement;
    Placement.Entry = Entry;
    Placement.Post = SeenNestedScope;

    bool HasSend = false, HasRecv = false;
    for (const OpcodeAction &Action : Entry->Actions) {
      HasSend |= Action.ActionKind == OpcodeAction::Kind::Send;
      HasRecv |= Action.ActionKind == OpcodeAction::Kind::Recv;
    }

    if (HasSend) {
      Placement.Depth = sendTokenDepth(*Entry);
    } else if (HasRecv) {
      // Hoisted receives cover the loops owned by deeper scopes: only
      // dimensions of outer loops act as tile offsets.
      unsigned Limit = innerStartOfLevel(Level);
      unsigned Depth = 0;
      for (const OpcodeAction &Action : Entry->Actions) {
        if (Action.ActionKind != OpcodeAction::Kind::Recv)
          continue;
        AffineMap Map = Generic.getIndexingMap(Action.ArgIndex);
        for (unsigned Dim : Map.getAllDimPositions()) {
          if (!Dims[Dim].HasAccelLoop)
            continue;
          unsigned LoopDepth =
              static_cast<unsigned>(Dims[Dim].AccelLoopDepth);
          if (LoopDepth < Limit)
            Depth = std::max(Depth, LoopDepth + 1);
        }
      }
      // A receive never hoists above sends of its own scope: in a flat Ns
      // flow (sA sB cC rC) the rC stays innermost alongside the sends;
      // only when the inner scope owns the reduction loops (Cs / conv-Os)
      // does the receive land outside them.
      if (Level < LevelSendDepth.size())
        Depth = std::max(Depth, LevelSendDepth[Level]);
      Placement.Depth = Depth;
    } else {
      // Literal/config-only tokens (e.g. cC) run at their scope's compute
      // depth: alongside that scope's deepest sends, or innermost.
      unsigned Depth = 0;
      if (Level < LevelSendDepth.size())
        Depth = LevelSendDepth[Level];
      Placement.Depth =
          Depth ? Depth : static_cast<unsigned>(AccelLoops.size());
    }
    Placements.push_back(Placement);
  }
  return success();
}

void AccelLoweringEmitter::buildLoopNest() {
  // CPU-level loops first (permutation order).
  for (unsigned Dim : Permutation) {
    if (!Dims[Dim].CpuTile)
      continue;
    scf::ForOp Loop = scf::ForOp::create(Builder, constantIndex(0),
                                         constantIndex(Dims[Dim].Extent),
                                         constantIndex(Dims[Dim].CpuTile));
    Dims[Dim].CpuIV = Loop.getInductionVar();
    CpuLoops.push_back(Loop);
    Builder.setInsertionPoint(Loop.getBodyTerminator());
  }
  // Accelerator-level loops.
  for (unsigned Dim : AccelLoopDims) {
    Value LowerBound, UpperBound;
    if (Dims[Dim].CpuTile) {
      LowerBound = Dims[Dim].CpuIV;
      UpperBound = arith::BinaryOp::create(Builder, "arith.addi",
                                           Dims[Dim].CpuIV,
                                           constantIndex(Dims[Dim].CpuTile))
                       .getResult();
    } else {
      LowerBound = constantIndex(0);
      UpperBound = constantIndex(Dims[Dim].Extent);
    }
    scf::ForOp Loop = scf::ForOp::create(Builder, LowerBound, UpperBound,
                                         constantIndex(Dims[Dim].Tile));
    Dims[Dim].AccelIV = Loop.getInductionVar();
    AccelLoops.push_back(Loop);
    Builder.setInsertionPoint(Loop.getBodyTerminator());
  }
}

Value AccelLoweringEmitter::visibleIV(unsigned Dim, unsigned Depth,
                                      bool &CoveredByLoop) const {
  const DimInfo &Info = Dims[Dim];
  CoveredByLoop = false;
  if (Info.HasAccelLoop &&
      static_cast<unsigned>(Info.AccelLoopDepth) < Depth)
    return Info.AccelIV;
  if (Info.HasAccelLoop) {
    // Hoisted over this accel loop: the tile covers its whole range.
    CoveredByLoop = true;
    return Info.CpuIV; // may be null (covers the full extent from 0)
  }
  return Value(); // No loop: tile == extent, offset 0.
}

Value AccelLoweringEmitter::emitSubview(int64_t ArgIndex, unsigned Depth) {
  Value Operand = Op->getOperand(ArgIndex);
  MemRefType Ty = Operand.getType().cast<MemRefType>();
  AffineMap Map = Generic.getIndexingMap(ArgIndex);

  std::vector<Value> Offsets;
  std::vector<int64_t> Sizes;
  for (unsigned R = 0; R < Map.getNumResults(); ++R) {
    LinearExpr Linear;
    [[maybe_unused]] bool Ok = analyzeLinear(Map.getResult(R), Linear);
    assert(Ok && "non-linear indexing expression");

    // Offset = const + sum coeff * visible-IV; Size = 1 + sum
    // coeff * (per-dim footprint - 1).
    Value Offset;
    int64_t StaticOffset = Linear.Constant;
    int64_t Size = 1;
    for (auto [Dim, Coeff] : Linear.Terms) {
      bool Covered = false;
      Value IV = visibleIV(Dim, Depth, Covered);
      int64_t Footprint;
      if (Covered)
        Footprint = Dims[Dim].CpuTile ? Dims[Dim].CpuTile : Dims[Dim].Extent;
      else if (IV)
        Footprint = Dims[Dim].Tile;
      else
        Footprint = Dims[Dim].Tile; // No loop: tile == covered extent.
      Size += std::abs(Coeff) * (Footprint - 1);
      if (!IV)
        continue;
      Value Term = IV;
      if (Coeff != 1)
        Term = arith::BinaryOp::create(Builder, "arith.muli", IV,
                                       constantIndex(Coeff))
                   .getResult();
      Offset = Offset ? arith::BinaryOp::create(Builder, "arith.addi",
                                                Offset, Term)
                            .getResult()
                      : Term;
    }
    if (StaticOffset != 0 || !Offset) {
      Value Const = constantIndex(StaticOffset);
      Offset = Offset ? arith::BinaryOp::create(Builder, "arith.addi",
                                                Offset, Const)
                            .getResult()
                      : Const;
    }
    Offsets.push_back(Offset);
    Sizes.push_back(std::min(Size, Ty.getDimSize(R)));
  }
  return memref::SubViewOp::create(Builder, Operand, Offsets, Sizes)
      .getResult();
}

LogicalResult AccelLoweringEmitter::emitToken(
    const TokenPlacement &Placement) {
  unsigned Depth = Placement.Depth;
  unsigned NumAccelLoops = AccelLoops.size();

  // Restore (or initialize) the insertion point for this placement slot.
  auto Key = std::make_pair(Depth, Placement.Post);
  auto It = Points.find(Key);
  if (It != Points.end()) {
    Builder.restoreInsertionPoint(It->second.Point);
  } else if (Depth == NumAccelLoops) {
    // Innermost: before the innermost terminator (or at the generic's
    // position when there are no loops at all).
    if (NumAccelLoops > 0)
      Builder.setInsertionPoint(AccelLoops.back().getBodyTerminator());
    else if (!CpuLoops.empty())
      Builder.setInsertionPoint(CpuLoops.back().getBodyTerminator());
    // else: Builder already sits at the generic's position.
  } else if (!Placement.Post) {
    Builder.setInsertionPoint(AccelLoops[Depth].getOperation());
  } else {
    Builder.setInsertionPointAfter(AccelLoops[Depth].getOperation());
  }

  // Emit the token's actions with offset chaining. Consecutive tokens in
  // the same slot continue the chain, so e.g. the whole v3 Ns iteration
  // (sA sB cC rC-opcode) ships as one batched DMA transfer before the
  // receive.
  Value Offset = It != Points.end() && It->second.ChainOffset
                     ? It->second.ChainOffset
                     : constantIndex(0);
  for (const OpcodeAction &Action : Placement.Entry->Actions) {
    switch (Action.ActionKind) {
    case OpcodeAction::Kind::SendLiteral:
      Offset = accel::SendLiteralOp::create(Builder, Action.Literal, Offset)
                   .getResult();
      break;
    case OpcodeAction::Kind::Send: {
      Value Tile = emitSubview(Action.ArgIndex, Depth);
      Offset = accel::SendOp::create(Builder, Tile, Offset).getResult();
      break;
    }
    case OpcodeAction::Kind::SendDim: {
      // send_dim transmits the per-kernel tile footprint of an operand
      // dimension: the conv accelerator's `rst` receives iC and fH (full
      // extents, Fig. 15a); v4's `cfg` receives the selected tM/tK/tN.
      int64_t Arg = Action.ArgIndex >= 0 ? Action.ArgIndex : 0;
      Operation *SendDim =
          accel::SendDimOp::create(Builder, Op->getOperand(Arg),
                                   Action.DimIndex, Offset)
              .getOperation();
      SendDim->setAttr(
          "static_size",
          Attribute::getInteger(operandDimFootprint(
              Arg, static_cast<unsigned>(Action.DimIndex))));
      Offset = SendDim->getResult(0);
      break;
    }
    case OpcodeAction::Kind::SendIdx: {
      unsigned Dim = static_cast<unsigned>(Action.DimIndex);
      if (Dim >= NumLoops) {
        Error = "send_idx dimension out of range";
        return failure();
      }
      bool Covered = false;
      Value IV = visibleIV(Dim, Depth, Covered);
      if (!IV)
        IV = constantIndex(0);
      Offset = accel::SendIdxOp::create(Builder, IV, Offset).getResult();
      break;
    }
    case OpcodeAction::Kind::Recv: {
      Value Tile = emitSubview(Action.ArgIndex, Depth);
      Offset = accel::RecvOp::create(Builder, Tile, Offset, "accumulate")
                   .getResult();
      break;
    }
    }
  }
  // A receive consumed the in-flight batch; later tokens start a fresh
  // chain at offset 0.
  bool EndsWithRecv = false;
  for (const OpcodeAction &Action : Placement.Entry->Actions)
    EndsWithRecv |= Action.ActionKind == OpcodeAction::Kind::Recv;
  Points[Key] = {Builder.saveInsertionPoint(),
                 EndsWithRecv ? Value() : Offset};
  return success();
}

LogicalResult AccelLoweringEmitter::emitInitOpcodes() {
  if (!InitFlow)
    return success();
  for (const std::string &Token : InitFlow->allTokens()) {
    const accel::OpcodeEntry *Entry = OpcodeMap->lookup(Token);
    if (!Entry) {
      Error = "init opcode '" + Token + "' missing from opcode_map";
      return failure();
    }
    Value Offset = constantIndex(0);
    for (const OpcodeAction &Action : Entry->Actions) {
      switch (Action.ActionKind) {
      case OpcodeAction::Kind::SendLiteral:
        Offset = accel::SendLiteralOp::create(Builder, Action.Literal,
                                              Offset)
                     .getResult();
        break;
      case OpcodeAction::Kind::SendDim: {
        int64_t Arg = Action.ArgIndex >= 0 ? Action.ArgIndex : 0;
        Operation *SendDim =
            accel::SendDimOp::create(Builder, Op->getOperand(Arg),
                                     Action.DimIndex, Offset)
                .getOperation();
        SendDim->setAttr(
            "static_size",
            Attribute::getInteger(operandDimFootprint(
                Arg, static_cast<unsigned>(Action.DimIndex))));
        Offset = SendDim->getResult(0);
        break;
      }
      default:
        Error = "init_opcodes may only use send_literal and send_dim";
        return failure();
      }
    }
  }
  return success();
}

LogicalResult AccelLoweringEmitter::run() {
  if (failed(analyze()))
    return failure();

  // dma_init + init opcodes go right before the loop nest (executed once
  // per kernel; dma_init itself is idempotent in the runtime).
  Builder.setInsertionPoint(Op);
  accel::DmaInitOp::create(Builder, DmaConfig);
  if (failed(emitInitOpcodes()))
    return failure();

  buildLoopNest();

  // Pre-compute per-scope-level deepest send depth (controls hoisted-recv
  // and literal-token placement).
  {
    LevelSendDepth.clear();
    std::function<void(const accel::FlowScope &, unsigned)> Visit =
        [&](const accel::FlowScope &Scope, unsigned Level) {
          if (LevelSendDepth.size() <= Level)
            LevelSendDepth.resize(Level + 1, 0);
          for (const accel::FlowItem &Item : Scope.Items) {
            if (Item.isScope()) {
              Visit(*Item.Scope, Level + 1);
              continue;
            }
            if (const accel::OpcodeEntry *Entry =
                    OpcodeMap->lookup(Item.Token))
              LevelSendDepth[Level] =
                  std::max(LevelSendDepth[Level], sendTokenDepth(*Entry));
          }
        };
    Visit(Flow->Root, 0);
    // Outer levels bound inner levels from below.
    for (size_t L = 1; L < LevelSendDepth.size(); ++L)
      LevelSendDepth[L] = std::max(LevelSendDepth[L], LevelSendDepth[L - 1]);
  }

  std::vector<TokenPlacement> Placements;
  if (failed(placeTokens(Flow->Root, 0, Placements)))
    return failure();
  for (const TokenPlacement &Placement : Placements)
    if (failed(emitToken(Placement)))
      return failure();

  Op->erase();
  return success();
}

} // namespace

LogicalResult transforms::lowerToAccel(func::FuncOp Func,
                                       const LoweringOptions &Options,
                                       std::string &Error) {
  std::vector<Operation *> Annotated;
  Func.getOperation()->walk([&](Operation *Op) {
    if (isa_op<linalg::GenericOp>(Op) &&
        Op->hasAttr(accel::OpcodeFlowAttrName))
      Annotated.push_back(Op);
  });
  for (Operation *Op : Annotated) {
    AccelLoweringEmitter Emitter(linalg::GenericOp(Op), Options, Error);
    if (failed(Emitter.run()))
      return failure();
  }
  return success();
}
