//===- LowerToAccel.cpp - Tiling + opcode-flow host code generation -------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of AXI4MLIR (paper Fig. 4 steps 4-5): lowers an annotated
/// linalg.generic into
///
///   * an optional outer loop nest tiled for the CPU's last-level cache
///     (temporal locality, DESIGN.md Sec. 5.2),
///   * an inner loop nest tiled to the accelerator size, ordered by the
///     permutation_map (stationary dataflows),
///   * accel-dialect communication ops placed at the loop level dictated
///     by the opcode_flow scopes and each tile's index dependencies
///     (DESIGN.md Sec. 5.1) — e.g. paper Fig. 6b for matmul-As and
///     Fig. 15b for the output-stationary convolution.
///
/// The pass consumes the TilingPlan computed during match-and-annotate
/// instead of re-deriving tiles. Problem extents that are not divisible by
/// the accelerator tile are handled per the plan's remainder strategy:
///
///   * Pad: the iteration space is decomposed into boxes (full-tile
///     segments x partial-tile segments per dimension); partial tiles are
///     staged through a zero-filled full-tile buffer on send and masked
///     through a staging buffer + accumulate-copy on receive, so the
///     accelerator always sees full-size bursts.
///   * Peel: the accelerator runs the full-tile main region only and each
///     partial dimension peels into a host epilogue (a residual
///     linalg.generic over the remainder subviews).
///
//===----------------------------------------------------------------------===//

#include "dialects/Accel.h"
#include "dialects/Arith.h"
#include "dialects/Linalg.h"
#include "dialects/MemRef.h"
#include "transforms/Passes.h"
#include "transforms/TilingPlan.h"
#include "dialects/SCF.h"

#include <algorithm>
#include <map>
#include <set>

using namespace axi4mlir;
using namespace axi4mlir::transforms;
using accel::OpcodeAction;

namespace {

//===----------------------------------------------------------------------===//
// Linear analysis of indexing expressions
//===----------------------------------------------------------------------===//

/// A sum of coeff*dim terms plus a constant: the normal form of every
/// indexing expression we support (projections and strided convolutions).
struct LinearExpr {
  std::vector<std::pair<unsigned, int64_t>> Terms; // (dim, coeff)
  int64_t Constant = 0;
};

bool analyzeLinear(AffineExpr Expr, LinearExpr &Out, int64_t Scale = 1) {
  switch (Expr.getKind()) {
  case AffineExpr::Kind::Constant:
    Out.Constant += Scale * Expr.getConstantValue();
    return true;
  case AffineExpr::Kind::Dim:
    Out.Terms.emplace_back(Expr.getPosition(), Scale);
    return true;
  case AffineExpr::Kind::Add:
    return analyzeLinear(Expr.getLHS(), Out, Scale) &&
           analyzeLinear(Expr.getRHS(), Out, Scale);
  case AffineExpr::Kind::Mul: {
    AffineExpr LHS = Expr.getLHS(), RHS = Expr.getRHS();
    if (RHS.isConstant())
      return analyzeLinear(LHS, Out, Scale * RHS.getConstantValue());
    if (LHS.isConstant())
      return analyzeLinear(RHS, Out, Scale * LHS.getConstantValue());
    return false;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Per-dimension loop bookkeeping
//===----------------------------------------------------------------------===//

/// Everything the emitter knows about one kernel dimension. The plan-level
/// fields are constant; the region-local fields are reset per emitted
/// iteration-space box.
struct DimInfo {
  // Plan level.
  int64_t Extent = 0;     ///< full problem extent
  int64_t Tile = 1;       ///< accelerator tile (== Extent if not host-looped)
  int64_t Remainder = 0;  ///< partial-tile remainder (plan)
  int64_t MainExtent = 0; ///< extent covered by full tiles
  int64_t CpuTile = 0;    ///< CPU cache tile (0 = no CPU loop; main box only)

  // Region-local.
  int64_t Lower = 0;     ///< box lower bound for this dim
  int64_t Length = 0;    ///< box extent for this dim
  int64_t Footprint = 1; ///< tile footprint inside the box (<= Tile)
  bool HasAccelLoop = false;
  int AccelLoopDepth = -1; ///< depth among emitted accel loops
  Value AccelIV;
  Value CpuIV;
};

/// One segment of a dimension: either the full-tile main range or the
/// partial-tile remainder range.
struct DimSegment {
  int64_t Lower = 0;
  int64_t Length = 0;
  int64_t Footprint = 1;
  bool Partial = false;
};

/// One box of the decomposed iteration space.
struct RegionBox {
  std::vector<DimSegment> Segments; // one per kernel dim
  bool Host = false; ///< peel epilogue: execute on the host CPU
  bool hasPartial() const {
    for (const DimSegment &Segment : Segments)
      if (Segment.Partial)
        return true;
    return false;
  }
  /// A box with a zero-length segment covers no iteration-space points
  /// (e.g. the main box when an extent is below the engine tile).
  bool isEmpty() const {
    for (const DimSegment &Segment : Segments)
      if (Segment.Length == 0)
        return true;
    return false;
  }
};

/// A token placement decision.
struct TokenPlacement {
  const accel::OpcodeEntry *Entry = nullptr;
  unsigned Depth = 0; ///< number of enclosing accel loops
  bool Post = false;  ///< insert after (true) or before (false) the child
                      ///< loop at Depth
};

//===----------------------------------------------------------------------===//
// The emitter
//===----------------------------------------------------------------------===//

class AccelLoweringEmitter {
public:
  AccelLoweringEmitter(linalg::GenericOp Generic,
                       const LoweringOptions &Options, std::string &Error)
      : Generic(Generic), Op(Generic.getOperation()),
        Builder(Op->getContext()), Options(Options), Error(Error) {}

  LogicalResult run();

private:
  LogicalResult analyze();
  void chooseCpuTiles();
  std::vector<RegionBox> buildRegions() const;

  LogicalResult emitAccelRegion(const RegionBox &Box);
  LogicalResult emitHostRegion(const RegionBox &Box);

  LogicalResult placeTokens(const accel::FlowScope &Scope, unsigned Level,
                            std::vector<TokenPlacement> &Placements);
  unsigned innerStartOfLevel(unsigned Level) const;
  unsigned sendTokenDepth(const accel::OpcodeEntry &Entry) const;

  LogicalResult emitInitOpcodes();
  /// The accelerator-tile footprint of result dimension \p ResultDim of
  /// operand \p ArgIndex (what send_dim transmits). Always the plan's full
  /// tile: padded partial tiles ship at full size.
  int64_t operandDimFootprint(int64_t ArgIndex, unsigned ResultDim) const;
  void buildLoopNest();
  LogicalResult emitToken(const TokenPlacement &Placement);
  /// Emits the tile subview of \p ArgIndex visible at \p Depth. Also
  /// reports the subview's sizes and the full accelerator-tile sizes the
  /// engine expects; they differ exactly when the tile is partial.
  Value emitSubview(int64_t ArgIndex, unsigned Depth,
                    std::vector<int64_t> *ActualSizes = nullptr,
                    std::vector<int64_t> *FullSizes = nullptr);
  Value visibleIV(unsigned Dim, unsigned Depth, bool &CoveredByLoop) const;

  /// Stages a partial tile into a fresh zero-filled full-tile buffer
  /// (memref.alloc zero-fills) and returns the staging buffer to send.
  Value emitPadStaging(Value PartialTile,
                       const std::vector<int64_t> &ActualSizes,
                       const std::vector<int64_t> &FullSizes);
  /// Receives into a full-tile staging buffer and accumulates only the
  /// valid region back into \p PartialTile (result masking).
  Value emitMaskedRecv(Value PartialTile,
                       const std::vector<int64_t> &ActualSizes,
                       const std::vector<int64_t> &FullSizes, Value Offset);

  Value constantIndex(int64_t V) {
    return arith::ConstantOp::createIndex(Builder, V).getResult();
  }

  linalg::GenericOp Generic;
  Operation *Op;
  OpBuilder Builder;
  LoweringOptions Options;
  std::string &Error;

  // Analysis results.
  unsigned NumLoops = 0;
  TilingPlan Plan;
  std::vector<DimInfo> Dims;
  std::vector<unsigned> Permutation;
  const accel::OpcodeMapData *OpcodeMap = nullptr;
  const accel::OpcodeFlowData *Flow = nullptr;
  const accel::OpcodeFlowData *InitFlow = nullptr;
  accel::DmaInitConfig DmaConfig;

  /// Dim -> accel-loop depth map and the emitted loops (region-local).
  std::vector<unsigned> AccelLoopDims; // perm-ordered dims with accel loops
  std::vector<scf::ForOp> AccelLoops;
  std::vector<scf::ForOp> CpuLoops;

  /// Per-scope-level maximum send-token depth (for recv/literal placement).
  std::vector<unsigned> LevelSendDepth;

  /// Saved insertion state per (depth, post) while emitting tokens. The
  /// running offset chains consecutive tokens of a slot into one batched
  /// DMA transfer (paper Sec. III-A: "computing the total length and
  /// executing a single send").
  struct SlotState {
    OpBuilder::InsertPoint Point;
    Value ChainOffset;
  };
  std::map<std::pair<unsigned, bool>, SlotState> Points;
};

LogicalResult AccelLoweringEmitter::analyze() {
  NumLoops = Generic.getNumLoops();

  auto AttachedPlan = TilingPlan::fromOp(Op, Error);
  if (failed(AttachedPlan))
    return failure();
  Plan = std::move(*AttachedPlan);

  AffineMap PermMap =
      Op->getAttr(accel::PermutationMapAttrName).getAffineMapValue();
  OpcodeMap = &Op->getAttr(accel::OpcodeMapAttrName).getOpcodeMapValue();
  Flow = &Op->getAttr(accel::OpcodeFlowAttrName).getOpcodeFlowValue();
  if (Op->hasAttr(accel::InitOpcodesAttrName))
    InitFlow = &Op->getAttr(accel::InitOpcodesAttrName).getOpcodeFlowValue();
  DmaConfig = Op->getAttr(accel::DmaInitConfigAttrName).getDmaConfigValue();

  Dims.resize(NumLoops);
  for (unsigned D = 0; D < NumLoops; ++D) {
    const DimPlan &Planned = Plan.Dims[D];
    Dims[D].Extent = Planned.Extent;
    Dims[D].Tile = Planned.Tile;
    Dims[D].Remainder = Planned.Remainder;
    Dims[D].MainExtent = Planned.mainExtent();
  }
  Permutation.clear();
  for (unsigned R = 0; R < PermMap.getNumResults(); ++R)
    Permutation.push_back(PermMap.getResult(R).getPosition());

  chooseCpuTiles();
  return success();
}

void AccelLoweringEmitter::chooseCpuTiles() {
  if (!Options.EnableCpuTiling)
    return;
  // CPU cache tiling applies to the full-tile main region; partial-tile
  // boxes are a thin fringe that gains nothing from an extra loop level.
  // Working set of one CPU tile: sum over operands of the tile footprint
  // under candidate tile sizes (DESIGN.md Sec. 5.2).
  auto workingSetBytes = [&](const std::vector<int64_t> &Tiles) -> int64_t {
    int64_t Total = 0;
    for (unsigned I = 0, E = Op->getNumOperands(); I < E; ++I) {
      AffineMap Map = Generic.getIndexingMap(I);
      int64_t Elements = 1;
      for (const AffineExpr &Result : Map.getResults()) {
        LinearExpr Linear;
        if (!analyzeLinear(Result, Linear))
          return INT64_MAX;
        int64_t Size = 1;
        for (auto [Dim, Coeff] : Linear.Terms)
          Size += std::abs(Coeff) * (Tiles[Dim] - 1);
        Elements *= Size;
      }
      Total += Elements * Options.ElementBytes;
    }
    return Total;
  };

  // Grow tiles by powers of two above the accelerator tile while the
  // working set fits in half the last-level cache and the tile divides the
  // main-region extent.
  std::vector<int64_t> Best(NumLoops);
  for (unsigned D = 0; D < NumLoops; ++D)
    Best[D] = Dims[D].Tile;
  for (int Step = 0; Step < 12; ++Step) {
    bool Changed = false;
    // Round-robin doubling keeps tiles roughly square.
    for (unsigned D = 0; D < NumLoops; ++D) {
      // No main region above one tile -> no room for a CPU loop level.
      if (Dims[D].MainExtent <= Dims[D].Tile)
        continue;
      int64_t Candidate = Best[D] * 2;
      if (Candidate > Dims[D].MainExtent)
        Candidate = Dims[D].MainExtent;
      if (Candidate <= Best[D] || Dims[D].MainExtent % Candidate != 0)
        continue;
      std::vector<int64_t> Trial = Best;
      Trial[D] = Candidate;
      if (workingSetBytes(Trial) * 2 <= Options.CacheBytes) {
        Best = Trial;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  for (unsigned D = 0; D < NumLoops; ++D) {
    // A CPU loop is only worthwhile strictly between tile and extent.
    if (Best[D] > Dims[D].Tile && Best[D] < Dims[D].MainExtent)
      Dims[D].CpuTile = Best[D];
  }
}

std::vector<RegionBox> AccelLoweringEmitter::buildRegions() const {
  // The all-full-tiles main box (for divisible problems: the whole space).
  RegionBox Main;
  Main.Segments.resize(NumLoops);
  for (unsigned D = 0; D < NumLoops; ++D)
    Main.Segments[D] = {/*Lower=*/0, Dims[D].MainExtent, Dims[D].Tile,
                        /*Partial=*/false};
  std::vector<RegionBox> Regions = {Main};
  if (!Plan.hasPartialTiles())
    return Regions;

  if (Plan.Mode == RemainderMode::Peel) {
    // Host epilogue boxes: for each partial dim d, the box where d is the
    // first dimension escaping the main region — dims before d stay in
    // their main range, dims after d run their full extent. The boxes are
    // disjoint and together cover exactly the peeled remainder.
    for (unsigned D = 0; D < NumLoops; ++D) {
      if (!Dims[D].Remainder)
        continue;
      RegionBox Box;
      Box.Host = true;
      Box.Segments.resize(NumLoops);
      for (unsigned I = 0; I < NumLoops; ++I) {
        if (I < D)
          Box.Segments[I] = {0, Dims[I].MainExtent, Dims[I].Tile, false};
        else if (I == D)
          Box.Segments[I] = {Dims[I].MainExtent, Dims[I].Remainder,
                             Dims[I].Remainder, true};
        else
          Box.Segments[I] = {0, Dims[I].Extent, Dims[I].Tile, false};
      }
      Regions.push_back(Box);
    }
    return Regions;
  }

  // Pad: the cartesian product of {main, partial} segments per dimension.
  // Every box with at least one partial segment runs on the accelerator
  // with zero-padded staging tiles; static subview sizes stay uniform
  // inside each box.
  std::vector<unsigned> PartialDims;
  for (unsigned D = 0; D < NumLoops; ++D)
    if (Dims[D].Remainder)
      PartialDims.push_back(D);
  for (uint64_t Mask = 1; Mask < (uint64_t(1) << PartialDims.size());
       ++Mask) {
    RegionBox Box = Main;
    for (size_t Bit = 0; Bit < PartialDims.size(); ++Bit) {
      if (!(Mask & (uint64_t(1) << Bit)))
        continue;
      unsigned D = PartialDims[Bit];
      Box.Segments[D] = {Dims[D].MainExtent, Dims[D].Remainder,
                         Dims[D].Remainder, true};
    }
    Regions.push_back(Box);
  }
  return Regions;
}

int64_t AccelLoweringEmitter::operandDimFootprint(int64_t ArgIndex,
                                                  unsigned ResultDim) const {
  AffineMap Map = Generic.getIndexingMap(ArgIndex);
  assert(ResultDim < Map.getNumResults() && "send_dim result out of range");
  LinearExpr Linear;
  [[maybe_unused]] bool Ok = analyzeLinear(Map.getResult(ResultDim), Linear);
  assert(Ok && "non-linear indexing expression in send_dim");
  int64_t Size = 1;
  for (auto [Dim, Coeff] : Linear.Terms)
    Size += std::abs(Coeff) * (Dims[Dim].Tile - 1);
  return Size;
}

unsigned AccelLoweringEmitter::sendTokenDepth(
    const accel::OpcodeEntry &Entry) const {
  unsigned Depth = 0;
  for (const OpcodeAction &Action : Entry.Actions) {
    if (Action.ActionKind != OpcodeAction::Kind::Send)
      continue;
    AffineMap Map = Generic.getIndexingMap(Action.ArgIndex);
    for (unsigned Dim : Map.getAllDimPositions())
      if (Dims[Dim].HasAccelLoop)
        Depth = std::max(Depth,
                         static_cast<unsigned>(Dims[Dim].AccelLoopDepth) + 1);
  }
  return Depth;
}

unsigned AccelLoweringEmitter::innerStartOfLevel(unsigned Level) const {
  // First loop depth owned by scopes deeper than `Level`: one past the
  // deepest send of levels <= Level, or the innermost depth if those
  // levels transfer nothing.
  if (Level < LevelSendDepth.size() && LevelSendDepth[Level] > 0)
    return LevelSendDepth[Level];
  return static_cast<unsigned>(AccelLoops.size());
}

LogicalResult AccelLoweringEmitter::placeTokens(
    const accel::FlowScope &Scope, unsigned Level,
    std::vector<TokenPlacement> &Placements) {
  bool SeenNestedScope = false;
  for (const accel::FlowItem &Item : Scope.Items) {
    if (Item.isScope()) {
      if (failed(placeTokens(*Item.Scope, Level + 1, Placements)))
        return failure();
      SeenNestedScope = true;
      continue;
    }
    const accel::OpcodeEntry *Entry = OpcodeMap->lookup(Item.Token);
    if (!Entry) {
      Error = "flow token '" + Item.Token + "' missing from opcode_map";
      return failure();
    }
    TokenPlacement Placement;
    Placement.Entry = Entry;
    Placement.Post = SeenNestedScope;

    bool HasSend = false, HasRecv = false;
    for (const OpcodeAction &Action : Entry->Actions) {
      HasSend |= Action.ActionKind == OpcodeAction::Kind::Send;
      HasRecv |= Action.ActionKind == OpcodeAction::Kind::Recv;
    }

    if (HasSend) {
      Placement.Depth = sendTokenDepth(*Entry);
    } else if (HasRecv) {
      // Hoisted receives cover the loops owned by deeper scopes: only
      // dimensions of outer loops act as tile offsets.
      unsigned Limit = innerStartOfLevel(Level);
      unsigned Depth = 0;
      for (const OpcodeAction &Action : Entry->Actions) {
        if (Action.ActionKind != OpcodeAction::Kind::Recv)
          continue;
        AffineMap Map = Generic.getIndexingMap(Action.ArgIndex);
        for (unsigned Dim : Map.getAllDimPositions()) {
          if (!Dims[Dim].HasAccelLoop)
            continue;
          unsigned LoopDepth =
              static_cast<unsigned>(Dims[Dim].AccelLoopDepth);
          if (LoopDepth < Limit)
            Depth = std::max(Depth, LoopDepth + 1);
        }
      }
      // A receive never hoists above sends of its own scope: in a flat Ns
      // flow (sA sB cC rC) the rC stays innermost alongside the sends;
      // only when the inner scope owns the reduction loops (Cs / conv-Os)
      // does the receive land outside them.
      if (Level < LevelSendDepth.size())
        Depth = std::max(Depth, LevelSendDepth[Level]);
      Placement.Depth = Depth;
    } else {
      // Literal/config-only tokens (e.g. cC) run at their scope's compute
      // depth: alongside that scope's deepest sends, or innermost.
      unsigned Depth = 0;
      if (Level < LevelSendDepth.size())
        Depth = LevelSendDepth[Level];
      Placement.Depth =
          Depth ? Depth : static_cast<unsigned>(AccelLoops.size());
    }
    Placements.push_back(Placement);
  }
  return success();
}

void AccelLoweringEmitter::buildLoopNest() {
  // CPU-level loops first (permutation order; main box only).
  for (unsigned Dim : Permutation) {
    if (!Dims[Dim].CpuTile)
      continue;
    scf::ForOp Loop = scf::ForOp::create(Builder, constantIndex(0),
                                         constantIndex(Dims[Dim].Length),
                                         constantIndex(Dims[Dim].CpuTile));
    Dims[Dim].CpuIV = Loop.getInductionVar();
    CpuLoops.push_back(Loop);
    Builder.setInsertionPoint(Loop.getBodyTerminator());
  }
  // Accelerator-level loops.
  for (unsigned Dim : AccelLoopDims) {
    Value LowerBound, UpperBound;
    if (Dims[Dim].CpuTile) {
      LowerBound = Dims[Dim].CpuIV;
      UpperBound = arith::BinaryOp::create(Builder, "arith.addi",
                                           Dims[Dim].CpuIV,
                                           constantIndex(Dims[Dim].CpuTile))
                       .getResult();
    } else {
      LowerBound = constantIndex(Dims[Dim].Lower);
      UpperBound = constantIndex(Dims[Dim].Lower + Dims[Dim].Length);
    }
    scf::ForOp Loop = scf::ForOp::create(Builder, LowerBound, UpperBound,
                                         constantIndex(Dims[Dim].Footprint));
    Dims[Dim].AccelIV = Loop.getInductionVar();
    AccelLoops.push_back(Loop);
    Builder.setInsertionPoint(Loop.getBodyTerminator());
  }
}

Value AccelLoweringEmitter::visibleIV(unsigned Dim, unsigned Depth,
                                      bool &CoveredByLoop) const {
  const DimInfo &Info = Dims[Dim];
  CoveredByLoop = false;
  if (Info.HasAccelLoop &&
      static_cast<unsigned>(Info.AccelLoopDepth) < Depth)
    return Info.AccelIV;
  if (Info.HasAccelLoop) {
    // Hoisted over this accel loop: the tile covers its whole range.
    CoveredByLoop = true;
    return Info.CpuIV; // may be null (covers the box range from Lower)
  }
  return Value(); // No loop: tile == box segment, offset = box lower.
}

Value AccelLoweringEmitter::emitSubview(int64_t ArgIndex, unsigned Depth,
                                        std::vector<int64_t> *ActualSizes,
                                        std::vector<int64_t> *FullSizes) {
  Value Operand = Op->getOperand(ArgIndex);
  MemRefType Ty = Operand.getType().cast<MemRefType>();
  AffineMap Map = Generic.getIndexingMap(ArgIndex);

  std::vector<Value> Offsets;
  std::vector<int64_t> Sizes;
  for (unsigned R = 0; R < Map.getNumResults(); ++R) {
    LinearExpr Linear;
    [[maybe_unused]] bool Ok = analyzeLinear(Map.getResult(R), Linear);
    assert(Ok && "non-linear indexing expression");

    // Offset = const + sum coeff * visible-IV; Size = 1 + sum
    // coeff * (per-dim footprint - 1). The full size replaces partial
    // footprints with the plan's full tile (what the engine expects).
    Value Offset;
    int64_t StaticOffset = Linear.Constant;
    int64_t Size = 1, FullSize = 1;
    for (auto [Dim, Coeff] : Linear.Terms) {
      bool Covered = false;
      Value IV = visibleIV(Dim, Depth, Covered);
      int64_t Footprint;
      if (Covered)
        Footprint = Dims[Dim].CpuTile ? Dims[Dim].CpuTile : Dims[Dim].Length;
      else
        Footprint = Dims[Dim].Footprint;
      Size += std::abs(Coeff) * (Footprint - 1);
      // Covered tiles stream tile-by-tile from the engine's perspective;
      // only uncovered partial footprints need padding to the full tile.
      FullSize +=
          std::abs(Coeff) * ((Covered ? Footprint : Dims[Dim].Tile) - 1);
      if (!IV) {
        // No loop (or a covered dim without a CPU loop): the tile starts
        // at the box's lower corner.
        StaticOffset += Coeff * Dims[Dim].Lower;
        continue;
      }
      Value Term = IV;
      if (Coeff != 1)
        Term = arith::BinaryOp::create(Builder, "arith.muli", IV,
                                       constantIndex(Coeff))
                   .getResult();
      Offset = Offset ? arith::BinaryOp::create(Builder, "arith.addi",
                                                Offset, Term)
                            .getResult()
                      : Term;
    }
    if (StaticOffset != 0 || !Offset) {
      Value Const = constantIndex(StaticOffset);
      Offset = Offset ? arith::BinaryOp::create(Builder, "arith.addi",
                                                Offset, Const)
                            .getResult()
                      : Const;
    }
    Offsets.push_back(Offset);
    Sizes.push_back(std::min(Size, Ty.getDimSize(R)));
    if (FullSizes)
      FullSizes->push_back(FullSize);
  }
  if (ActualSizes)
    *ActualSizes = Sizes;
  return memref::SubViewOp::create(Builder, Operand, Offsets, Sizes)
      .getResult();
}

Value AccelLoweringEmitter::emitPadStaging(
    Value PartialTile, const std::vector<int64_t> &ActualSizes,
    const std::vector<int64_t> &FullSizes) {
  MemRefType TileTy = PartialTile.getType().cast<MemRefType>();
  MemRefType StagingTy = MemRefType::get(Builder.getContext(), FullSizes,
                                         TileTy.getElementType());
  // memref.alloc zero-fills, so the elements beyond the valid region are
  // the neutral zeros the accelerator's multiply-accumulate ignores.
  Value Staging = memref::AllocOp::create(Builder, StagingTy).getResult();
  std::vector<Value> Zeros(FullSizes.size(), constantIndex(0));
  Value Dest =
      memref::SubViewOp::create(Builder, Staging, Zeros, ActualSizes)
          .getResult();
  memref::CopyOp::create(Builder, PartialTile, Dest);
  return Staging;
}

Value AccelLoweringEmitter::emitMaskedRecv(
    Value PartialTile, const std::vector<int64_t> &ActualSizes,
    const std::vector<int64_t> &FullSizes, Value Offset) {
  MemRefType TileTy = PartialTile.getType().cast<MemRefType>();
  Type ElemTy = TileTy.getElementType();
  MemRefType StagingTy =
      MemRefType::get(Builder.getContext(), FullSizes, ElemTy);
  Value Staging = memref::AllocOp::create(Builder, StagingTy).getResult();
  Value Result =
      accel::RecvOp::create(Builder, Staging, Offset, "overwrite")
          .getResult();
  // Mask: accumulate only the valid region back into the real tile.
  std::vector<Value> Zeros(FullSizes.size(), constantIndex(0));
  Value Valid =
      memref::SubViewOp::create(Builder, Staging, Zeros, ActualSizes)
          .getResult();
  unsigned Rank = ActualSizes.size();
  const char *AddName = ElemTy.isFloat() ? "arith.addf" : "arith.addi";
  linalg::GenericOp::create(
      Builder, {Valid}, {PartialTile},
      {AffineMap::getMultiDimIdentity(Rank),
       AffineMap::getMultiDimIdentity(Rank)},
      std::vector<std::string>(Rank, linalg::IteratorParallel),
      [&](OpBuilder &B, const std::vector<Value> &Args) {
        Value Sum =
            arith::BinaryOp::create(B, AddName, Args[0], Args[1]).getResult();
        linalg::YieldOp::create(B, {Sum});
      });
  memref::DeallocOp::create(Builder, Staging);
  return Result;
}

LogicalResult AccelLoweringEmitter::emitToken(
    const TokenPlacement &Placement) {
  unsigned Depth = Placement.Depth;
  unsigned NumAccelLoops = AccelLoops.size();

  // Restore (or initialize) the insertion point for this placement slot.
  auto Key = std::make_pair(Depth, Placement.Post);
  auto It = Points.find(Key);
  if (It != Points.end()) {
    Builder.restoreInsertionPoint(It->second.Point);
  } else if (Depth == NumAccelLoops) {
    // Innermost: before the innermost terminator (or at the generic's
    // position when there are no loops at all).
    if (NumAccelLoops > 0)
      Builder.setInsertionPoint(AccelLoops.back().getBodyTerminator());
    else if (!CpuLoops.empty())
      Builder.setInsertionPoint(CpuLoops.back().getBodyTerminator());
    // else: Builder already sits at the generic's position.
  } else if (!Placement.Post) {
    Builder.setInsertionPoint(AccelLoops[Depth].getOperation());
  } else {
    Builder.setInsertionPointAfter(AccelLoops[Depth].getOperation());
  }

  // Emit the token's actions with offset chaining. Consecutive tokens in
  // the same slot continue the chain, so e.g. the whole v3 Ns iteration
  // (sA sB cC rC-opcode) ships as one batched DMA transfer before the
  // receive.
  Value Offset = It != Points.end() && It->second.ChainOffset
                     ? It->second.ChainOffset
                     : constantIndex(0);
  for (const OpcodeAction &Action : Placement.Entry->Actions) {
    switch (Action.ActionKind) {
    case OpcodeAction::Kind::SendLiteral:
      Offset = accel::SendLiteralOp::create(Builder, Action.Literal, Offset)
                   .getResult();
      break;
    case OpcodeAction::Kind::Send: {
      std::vector<int64_t> ActualSizes, FullSizes;
      Value Tile =
          emitSubview(Action.ArgIndex, Depth, &ActualSizes, &FullSizes);
      Value Staging;
      if (ActualSizes != FullSizes)
        Tile = Staging = emitPadStaging(Tile, ActualSizes, FullSizes);
      Offset = accel::SendOp::create(Builder, Tile, Offset).getResult();
      if (Staging)
        memref::DeallocOp::create(Builder, Staging);
      break;
    }
    case OpcodeAction::Kind::SendDim: {
      // send_dim transmits the per-kernel tile footprint of an operand
      // dimension: the conv accelerator's `rst` receives iC and fH (full
      // extents, Fig. 15a); v4's `cfg` receives the selected tM/tK/tN.
      int64_t Arg = Action.ArgIndex >= 0 ? Action.ArgIndex : 0;
      Operation *SendDim =
          accel::SendDimOp::create(Builder, Op->getOperand(Arg),
                                   Action.DimIndex, Offset)
              .getOperation();
      SendDim->setAttr(
          "static_size",
          Attribute::getInteger(operandDimFootprint(
              Arg, static_cast<unsigned>(Action.DimIndex))));
      Offset = SendDim->getResult(0);
      break;
    }
    case OpcodeAction::Kind::SendIdx: {
      unsigned Dim = static_cast<unsigned>(Action.DimIndex);
      if (Dim >= NumLoops) {
        Error = "send_idx dimension out of range";
        return failure();
      }
      bool Covered = false;
      Value IV = visibleIV(Dim, Depth, Covered);
      if (!IV)
        IV = constantIndex(Dims[Dim].Lower);
      Offset = accel::SendIdxOp::create(Builder, IV, Offset).getResult();
      break;
    }
    case OpcodeAction::Kind::Recv: {
      std::vector<int64_t> ActualSizes, FullSizes;
      Value Tile =
          emitSubview(Action.ArgIndex, Depth, &ActualSizes, &FullSizes);
      if (ActualSizes != FullSizes)
        Offset = emitMaskedRecv(Tile, ActualSizes, FullSizes, Offset);
      else
        Offset = accel::RecvOp::create(Builder, Tile, Offset, "accumulate")
                     .getResult();
      break;
    }
    }
  }
  // A receive consumed the in-flight batch; later tokens start a fresh
  // chain at offset 0.
  bool EndsWithRecv = false;
  for (const OpcodeAction &Action : Placement.Entry->Actions)
    EndsWithRecv |= Action.ActionKind == OpcodeAction::Kind::Recv;
  Points[Key] = {Builder.saveInsertionPoint(),
                 EndsWithRecv ? Value() : Offset};
  return success();
}

LogicalResult AccelLoweringEmitter::emitInitOpcodes() {
  if (!InitFlow)
    return success();
  for (const std::string &Token : InitFlow->allTokens()) {
    const accel::OpcodeEntry *Entry = OpcodeMap->lookup(Token);
    if (!Entry) {
      Error = "init opcode '" + Token + "' missing from opcode_map";
      return failure();
    }
    Value Offset = constantIndex(0);
    for (const OpcodeAction &Action : Entry->Actions) {
      switch (Action.ActionKind) {
      case OpcodeAction::Kind::SendLiteral:
        Offset = accel::SendLiteralOp::create(Builder, Action.Literal,
                                              Offset)
                     .getResult();
        break;
      case OpcodeAction::Kind::SendDim: {
        int64_t Arg = Action.ArgIndex >= 0 ? Action.ArgIndex : 0;
        Operation *SendDim =
            accel::SendDimOp::create(Builder, Op->getOperand(Arg),
                                     Action.DimIndex, Offset)
                .getOperation();
        SendDim->setAttr(
            "static_size",
            Attribute::getInteger(operandDimFootprint(
                Arg, static_cast<unsigned>(Action.DimIndex))));
        Offset = SendDim->getResult(0);
        break;
      }
      default:
        Error = "init_opcodes may only use send_literal and send_dim";
        return failure();
      }
    }
  }
  return success();
}

LogicalResult AccelLoweringEmitter::emitAccelRegion(const RegionBox &Box) {
  // Region-local state: bounds, footprints and loop decisions.
  AccelLoopDims.clear();
  AccelLoops.clear();
  CpuLoops.clear();
  LevelSendDepth.clear();
  Points.clear();
  bool Partial = Box.hasPartial();
  for (unsigned D = 0; D < NumLoops; ++D) {
    const DimSegment &Segment = Box.Segments[D];
    DimInfo &Info = Dims[D];
    Info.Lower = Segment.Lower;
    Info.Length = Segment.Length;
    Info.Footprint = Segment.Footprint;
    Info.HasAccelLoop = false;
    Info.AccelLoopDepth = -1;
    Info.AccelIV = Value();
    Info.CpuIV = Value();
    // CPU cache tiling only applies to the all-full-tiles main box.
    if (Partial)
      Info.CpuTile = 0;
  }
  // Decide which dims get accel loops, in permutation order.
  for (unsigned Dim : Permutation) {
    int64_t LoopExtent =
        Dims[Dim].CpuTile ? Dims[Dim].CpuTile : Dims[Dim].Length;
    if (Dims[Dim].Footprint < LoopExtent) {
      Dims[Dim].HasAccelLoop = true;
      Dims[Dim].AccelLoopDepth = static_cast<int>(AccelLoopDims.size());
      AccelLoopDims.push_back(Dim);
    }
  }

  Builder.setInsertionPoint(Op);
  buildLoopNest();

  // Pre-compute per-scope-level deepest send depth (controls hoisted-recv
  // and literal-token placement).
  {
    LevelSendDepth.clear();
    std::function<void(const accel::FlowScope &, unsigned)> Visit =
        [&](const accel::FlowScope &Scope, unsigned Level) {
          if (LevelSendDepth.size() <= Level)
            LevelSendDepth.resize(Level + 1, 0);
          for (const accel::FlowItem &Item : Scope.Items) {
            if (Item.isScope()) {
              Visit(*Item.Scope, Level + 1);
              continue;
            }
            if (const accel::OpcodeEntry *Entry =
                    OpcodeMap->lookup(Item.Token))
              LevelSendDepth[Level] =
                  std::max(LevelSendDepth[Level], sendTokenDepth(*Entry));
          }
        };
    Visit(Flow->Root, 0);
    // Outer levels bound inner levels from below.
    for (size_t L = 1; L < LevelSendDepth.size(); ++L)
      LevelSendDepth[L] = std::max(LevelSendDepth[L], LevelSendDepth[L - 1]);
  }

  std::vector<TokenPlacement> Placements;
  if (failed(placeTokens(Flow->Root, 0, Placements)))
    return failure();
  for (const TokenPlacement &Placement : Placements)
    if (failed(emitToken(Placement)))
      return failure();
  return success();
}

LogicalResult AccelLoweringEmitter::emitHostRegion(const RegionBox &Box) {
  // Peel epilogue: the remainder box executes as a residual linalg.generic
  // on subviews of the operands, interpreted on the host CPU.
  Builder.setInsertionPoint(Op);
  unsigned NumInputs = Generic.getNumInputs();
  std::vector<Value> Inputs, Outputs;
  for (unsigned I = 0, E = Op->getNumOperands(); I < E; ++I) {
    AffineMap Map = Generic.getIndexingMap(I);
    std::vector<Value> Offsets;
    std::vector<int64_t> Sizes;
    for (unsigned R = 0; R < Map.getNumResults(); ++R) {
      LinearExpr Linear;
      if (!analyzeLinear(Map.getResult(R), Linear)) {
        Error = "non-linear indexing expression in peel epilogue";
        return failure();
      }
      // The subview origin absorbs the box lower corner; the map's own
      // constant stays inside the cloned generic's indexing map.
      int64_t Offset = 0, Size = 1;
      for (auto [Dim, Coeff] : Linear.Terms) {
        Offset += Coeff * Box.Segments[Dim].Lower;
        Size += std::abs(Coeff) * (Box.Segments[Dim].Length - 1);
      }
      Offsets.push_back(constantIndex(Offset));
      Sizes.push_back(Size);
    }
    Value View =
        memref::SubViewOp::create(Builder, Op->getOperand(I), Offsets, Sizes)
            .getResult();
    if (I < NumInputs)
      Inputs.push_back(View);
    else
      Outputs.push_back(View);
  }

  // Clone the payload into a fresh generic with identical traits.
  Block &OrigBody = Generic.getBody();
  linalg::GenericOp::create(
      Builder, Inputs, Outputs, Generic.getIndexingMaps(),
      Generic.getIteratorTypes(),
      [&](OpBuilder &B, const std::vector<Value> &Args) {
        std::map<detail::ValueImpl *, Value> Mapping;
        for (unsigned I = 0; I < OrigBody.getNumArguments(); ++I)
          Mapping[OrigBody.getArgument(I).getImpl()] = Args[I];
        for (Operation *BodyOp : OrigBody.getOperations()) {
          std::vector<Value> Operands;
          for (Value Operand : BodyOp->getOperands()) {
            auto Found = Mapping.find(Operand.getImpl());
            Operands.push_back(Found != Mapping.end() ? Found->second
                                                      : Operand);
          }
          std::vector<Type> ResultTypes;
          for (unsigned R = 0; R < BodyOp->getNumResults(); ++R)
            ResultTypes.push_back(BodyOp->getResult(R).getType());
          Operation *Clone = B.create(BodyOp->getName(), Operands,
                                      ResultTypes, BodyOp->getAttrs());
          for (unsigned R = 0; R < BodyOp->getNumResults(); ++R)
            Mapping[BodyOp->getResult(R).getImpl()] = Clone->getResult(R);
        }
      });
  return success();
}

LogicalResult AccelLoweringEmitter::run() {
  if (failed(analyze()))
    return failure();

  // dma_init + init opcodes go right before the loop nest (executed once
  // per kernel; dma_init itself is idempotent in the runtime).
  Builder.setInsertionPoint(Op);
  accel::DmaInitOp::create(Builder, DmaConfig);
  if (failed(emitInitOpcodes()))
    return failure();

  // Emit every box of the (possibly decomposed) iteration space: the main
  // full-tile region first, then the partial-tile fringe. Empty boxes
  // (an extent below the engine tile leaves no full-tile range) vanish.
  for (const RegionBox &Box : buildRegions()) {
    if (Box.isEmpty())
      continue;
    if (Box.Host ? failed(emitHostRegion(Box))
                 : failed(emitAccelRegion(Box)))
      return failure();
  }

  Op->erase();
  return success();
}

} // namespace

LogicalResult transforms::lowerToAccel(func::FuncOp Func,
                                       const LoweringOptions &Options,
                                       std::string &Error) {
  std::vector<Operation *> Annotated;
  Func.getOperation()->walk([&](Operation *Op) {
    if (isa_op<linalg::GenericOp>(Op) &&
        Op->hasAttr(accel::OpcodeFlowAttrName))
      Annotated.push_back(Op);
  });
  for (Operation *Op : Annotated) {
    AccelLoweringEmitter Emitter(linalg::GenericOp(Op), Options, Error);
    if (failed(Emitter.run()))
      return failure();
  }
  return success();
}
