//===- MatchAndAnnotate.cpp - Find and annotate offloadable generics ------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the "Match and Annotate operations for Runtime Replacement"
/// stage (paper Fig. 4 step 3): linalg.generic ops whose operation traits
/// (indexing maps + iterator types) structurally match the accelerator's
/// kernel get the AXI4MLIR trait attributes of paper Fig. 6a attached.
///
/// Also implements the default loop-permutation derivation: dimensions
/// transferred by outer-scope (stationary) send opcodes become outer loops.
///
//===----------------------------------------------------------------------===//

#include "dialects/Accel.h"
#include "dialects/Linalg.h"
#include "transforms/Passes.h"
#include "transforms/TilingPlan.h"

#include <algorithm>
#include <set>

using namespace axi4mlir;
using namespace axi4mlir::transforms;
using accel::OpcodeAction;

//===----------------------------------------------------------------------===//
// Permutation derivation
//===----------------------------------------------------------------------===//

namespace {

/// Collects, per scope depth, the dimensions referenced by send-action
/// operands of tokens directly in that scope (flow order), assigning each
/// dimension to the first scope that transfers it.
void assignDimsToScopes(const accel::FlowScope &Scope, unsigned Depth,
                        const accel::OpcodeMapData &Map,
                        const std::vector<AffineMap> &IndexingMaps,
                        std::vector<std::vector<unsigned>> &DimsPerLevel,
                        std::set<unsigned> &Assigned) {
  if (DimsPerLevel.size() <= Depth)
    DimsPerLevel.resize(Depth + 1);
  for (const accel::FlowItem &Item : Scope.Items) {
    if (Item.isScope()) {
      assignDimsToScopes(*Item.Scope, Depth + 1, Map, IndexingMaps,
                         DimsPerLevel, Assigned);
      continue;
    }
    const accel::OpcodeEntry *Entry = Map.lookup(Item.Token);
    if (!Entry)
      continue;
    for (const OpcodeAction &Action : Entry->Actions) {
      if (Action.ActionKind != OpcodeAction::Kind::Send)
        continue;
      if (Action.ArgIndex < 0 ||
          Action.ArgIndex >= static_cast<int64_t>(IndexingMaps.size()))
        continue;
      std::set<unsigned> Dims =
          IndexingMaps[Action.ArgIndex].getAllDimPositions();
      for (unsigned Dim : Dims) {
        if (Assigned.insert(Dim).second)
          DimsPerLevel[Depth].push_back(Dim);
      }
    }
  }
}

} // namespace

std::vector<unsigned> transforms::derivePermutationFromFlow(
    const accel::OpcodeFlowData &Flow, const accel::OpcodeMapData &Map,
    const std::vector<AffineMap> &IndexingMaps, unsigned NumLoops) {
  std::vector<std::vector<unsigned>> DimsPerLevel;
  std::set<unsigned> Assigned;
  assignDimsToScopes(Flow.Root, 0, Map, IndexingMaps, DimsPerLevel,
                     Assigned);

  std::vector<unsigned> Permutation;
  for (std::vector<unsigned> &LevelDims : DimsPerLevel) {
    std::sort(LevelDims.begin(), LevelDims.end());
    for (unsigned Dim : LevelDims)
      Permutation.push_back(Dim);
  }
  // Dimensions never transferred (e.g. fully accelerator-internal ones)
  // keep their natural order at the innermost position.
  for (unsigned Dim = 0; Dim < NumLoops; ++Dim)
    if (!Assigned.count(Dim))
      Permutation.push_back(Dim);
  return Permutation;
}

//===----------------------------------------------------------------------===//
// Structural matching
//===----------------------------------------------------------------------===//

/// Extracts the stride of a conv-style expression `dOuter * s + dInner`
/// against expected dim positions; returns 0 if the shape doesn't match.
static int64_t matchStridedExpr(AffineExpr Expr, unsigned OuterDim,
                                unsigned InnerDim) {
  if (Expr.getKind() != AffineExpr::Kind::Add)
    return 0;
  AffineExpr LHS = Expr.getLHS(), RHS = Expr.getRHS();
  if (!RHS.isDim() || RHS.getPosition() != InnerDim)
    return 0;
  if (LHS.isDim() && LHS.getPosition() == OuterDim)
    return 1;
  if (LHS.getKind() == AffineExpr::Kind::Mul && LHS.getLHS().isDim() &&
      LHS.getLHS().getPosition() == OuterDim && LHS.getRHS().isConstant())
    return LHS.getRHS().getConstantValue();
  return 0;
}

/// True if \p Generic is a canonical matmul generic (paper Fig. 2a traits).
static bool matchesMatmul(linalg::GenericOp Generic) {
  if (Generic.getNumInputs() != 2 || Generic.getNumOutputs() != 1 ||
      Generic.getNumLoops() != 3)
    return false;
  if (Generic.getIteratorTypes() != linalg::getMatmulIteratorTypes())
    return false;
  std::vector<AffineMap> Expected = linalg::getMatmulIndexingMaps();
  for (unsigned I = 0; I < 3; ++I)
    if (!(Generic.getIndexingMap(I) == Expected[I]))
      return false;
  return true;
}

/// True if \p Generic is a canonical conv_2d_nchw_fchw generic; extracts
/// the strides.
static bool matchesConv(linalg::GenericOp Generic, int64_t &StrideH,
                        int64_t &StrideW) {
  if (Generic.getNumInputs() != 2 || Generic.getNumOutputs() != 1 ||
      Generic.getNumLoops() != 7)
    return false;
  if (Generic.getIteratorTypes() != linalg::getConvIteratorTypes())
    return false;
  AffineMap IMap = Generic.getIndexingMap(0);
  if (IMap.getNumResults() != 4)
    return false;
  StrideH = matchStridedExpr(IMap.getResult(2), /*OuterDim=*/2,
                             /*InnerDim=*/5);
  StrideW = matchStridedExpr(IMap.getResult(3), /*OuterDim=*/3,
                             /*InnerDim=*/6);
  if (StrideH <= 0 || StrideW <= 0)
    return false;
  std::vector<AffineMap> Expected =
      linalg::getConvIndexingMaps(StrideH, StrideW);
  return IMap == Expected[0] && Generic.getIndexingMap(1) == Expected[1] &&
         Generic.getIndexingMap(2) == Expected[2];
}

//===----------------------------------------------------------------------===//
// Annotation
//===----------------------------------------------------------------------===//

static LogicalResult annotateGeneric(linalg::GenericOp Generic,
                                     const parser::AcceleratorDesc &Accel,
                                     const TilingPlan &Plan,
                                     std::string &Error) {
  Operation *Op = Generic.getOperation();
  unsigned NumLoops = Generic.getNumLoops();

  // Validate opcode arg indices against the operand count.
  for (const accel::OpcodeEntry &Entry : Accel.OpcodeMap.Entries) {
    for (const OpcodeAction &Action : Entry.Actions) {
      bool NeedsArg = Action.ActionKind == OpcodeAction::Kind::Send ||
                      Action.ActionKind == OpcodeAction::Kind::Recv ||
                      (Action.ActionKind == OpcodeAction::Kind::SendDim &&
                       Action.ArgIndex >= 0);
      if (NeedsArg && (Action.ArgIndex < 0 ||
                       Action.ArgIndex >=
                           static_cast<int64_t>(Op->getNumOperands()))) {
        Error = "opcode '" + Entry.Name +
                "' references operand #" + std::to_string(Action.ArgIndex) +
                " but the kernel has " +
                std::to_string(Op->getNumOperands()) + " operands";
        return failure();
      }
    }
  }

  const accel::OpcodeFlowData *Flow = Accel.selectedFlow();
  if (!Flow) {
    Error = "accelerator '" + Accel.Name + "' has no selected flow";
    return failure();
  }

  // Permutation: explicit or derived from the flow.
  std::vector<unsigned> Permutation;
  if (Accel.Permutation) {
    Permutation = *Accel.Permutation;
    if (Permutation.size() != NumLoops) {
      Error = "explicit permutation rank mismatch";
      return failure();
    }
  } else {
    Permutation = derivePermutationFromFlow(
        *Flow, Accel.OpcodeMap, Generic.getIndexingMaps(), NumLoops);
  }
  {
    std::vector<bool> Seen(NumLoops, false);
    for (unsigned Dim : Permutation) {
      if (Dim >= NumLoops || Seen[Dim]) {
        Error = "derived/explicit loop order is not a permutation";
        return failure();
      }
      Seen[Dim] = true;
    }
  }

  Op->setAttr(accel::AcceleratorNameAttrName,
              Attribute::getString(Accel.Name));
  Op->setAttr(accel::DmaInitConfigAttrName,
              Attribute::getDmaConfig(Accel.DmaConfig));
  Plan.attachTo(Op); // accel_dim (tiles) + remainder mode/remainders.
  Op->setAttr(accel::PermutationMapAttrName,
              Attribute::getAffineMap(AffineMap::getPermutation(Permutation)));
  Op->setAttr(accel::OpcodeMapAttrName,
              Attribute::getOpcodeMap(Accel.OpcodeMap));
  Op->setAttr(accel::OpcodeFlowAttrName, Attribute::getOpcodeFlow(*Flow));
  if (Accel.InitOpcodes)
    Op->setAttr(accel::InitOpcodesAttrName,
                Attribute::getOpcodeFlow(*Accel.InitOpcodes));
  return success();
}

transforms::GenericKernelKind
transforms::classifyGenericKernel(Operation *Op, int64_t &StrideH,
                                  int64_t &StrideW) {
  if (!Op || Op->getName() != linalg::GenericOp::OpName)
    return GenericKernelKind::None;
  linalg::GenericOp Generic(Op);
  if (matchesMatmul(Generic))
    return GenericKernelKind::MatMul;
  if (matchesConv(Generic, StrideH, StrideW))
    return GenericKernelKind::Conv2D;
  return GenericKernelKind::None;
}

/// True if \p Generic structurally matches the kernel \p Accel implements.
static bool matchesKernel(linalg::GenericOp Generic,
                          const parser::AcceleratorDesc &Accel) {
  if (Accel.Kernel == "linalg.matmul")
    return matchesMatmul(Generic);
  if (Accel.Kernel == "linalg.conv_2d_nchw_fchw") {
    int64_t StrideH = 0, StrideW = 0;
    return matchesConv(Generic, StrideH, StrideW);
  }
  return false;
}

LogicalResult transforms::matchAndAnnotate(
    func::FuncOp Func, const std::vector<parser::AcceleratorDesc> &Accels,
    const PlanningOptions &Options, std::string &Error,
    unsigned *NumAnnotated, std::vector<TilingPlan> *PlansOut) {
  unsigned Count = 0;
  bool Failed = false;
  Func.getOperation()->walk([&](Operation *Op) {
    if (Failed)
      return;
    auto Generic = dyn_cast_op<linalg::GenericOp>(Op);
    if (!Generic)
      return;

    // Candidate set: every accelerator that structurally implements this
    // generic (remember original indices for the caller).
    std::vector<parser::AcceleratorDesc> Candidates;
    std::vector<size_t> CandidateIndices;
    for (size_t Index = 0; Index < Accels.size(); ++Index) {
      if (matchesKernel(Generic, Accels[Index])) {
        Candidates.push_back(Accels[Index]);
        CandidateIndices.push_back(Index);
      }
    }
    if (Candidates.empty())
      return;

    auto Plan = planTiling(Generic, Candidates, Options, Error);
    if (failed(Plan)) {
      Failed = true;
      return;
    }
    const parser::AcceleratorDesc &Selected =
        Candidates[Plan->AcceleratorIndex];
    Plan->AcceleratorIndex = CandidateIndices[Plan->AcceleratorIndex];
    if (failed(annotateGeneric(Generic, Selected, *Plan, Error))) {
      Failed = true;
      return;
    }
    if (PlansOut)
      PlansOut->push_back(*Plan);
    ++Count;
  });
  if (NumAnnotated)
    *NumAnnotated = Count;
  return failure(Failed);
}

LogicalResult transforms::matchAndAnnotate(func::FuncOp Func,
                                           const parser::AcceleratorDesc &Accel,
                                           std::string &Error,
                                           unsigned *NumAnnotated) {
  return matchAndAnnotate(Func, std::vector<parser::AcceleratorDesc>{Accel},
                          PlanningOptions(), Error, NumAnnotated);
}
