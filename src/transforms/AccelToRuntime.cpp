//===- AccelToRuntime.cpp - accel ops -> DMA runtime library calls --------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers accel-dialect ops to func.call ops on the DMA runtime library
/// (paper Fig. 9 semantics):
///
///   accel.send_literal -> axirt.copy_literal_to_dma
///   accel.send         -> axirt.copy_to_dma
///   accel.send_dim     -> axirt.copy_literal_to_dma (static dim size)
///   accel.send_idx     -> axirt.copy_index_to_dma
///   accel.recv         -> axirt.start_recv + axirt.wait_recv
///                         + axirt.copy_from_dma {accumulate}
///
/// Consecutive staged copies whose offsets chain are batched into a single
/// axirt.start_send/axirt.wait_send pair ("the offset argument allows for
/// efficient batching of different data transfers after computing the
/// total length and executing a single send", paper Sec. III-A).
///
//===----------------------------------------------------------------------===//

#include "dialects/Accel.h"
#include "dialects/Arith.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"
#include "transforms/Passes.h"

using namespace axi4mlir;
using namespace axi4mlir::transforms;

namespace {

/// Lowers the accel ops of one block (recursing into nested regions).
class RuntimeLowering {
public:
  RuntimeLowering(MLIRContext *Context, std::string &Error)
      : Builder(Context), Error(Error) {}

  LogicalResult lowerBlock(Block &TheBlock);

private:
  /// Flushes an open send chain: emits start_send(end, start) + wait.
  void flushChain() {
    if (!ChainOpen)
      return;
    Builder.setInsertionPointAfter(LastChainOp);
    func::CallOp::create(Builder, rtcall::StartSend,
                         {ChainEndOffset, ChainStartOffset});
    func::CallOp::create(Builder, rtcall::WaitSend, {});
    ChainOpen = false;
    LastChainOp = nullptr;
  }

  OpBuilder Builder;
  std::string &Error;

  bool ChainOpen = false;
  Value ChainStartOffset;
  Value ChainEndOffset;
  Operation *LastChainOp = nullptr;
  /// Maps original accel op results (offsets) to lowered call results.
  std::map<detail::ValueImpl *, Value> OffsetMapping;
};

LogicalResult RuntimeLowering::lowerBlock(Block &TheBlock) {
  // Snapshot: we will insert and erase while iterating.
  std::vector<Operation *> Ops(TheBlock.getOperations().begin(),
                               TheBlock.getOperations().end());
  for (Operation *Op : Ops) {
    // Recurse into nested loops first; chains never span loop boundaries.
    if (Op->getNumRegions() > 0) {
      flushChain();
      for (unsigned R = 0; R < Op->getNumRegions(); ++R)
        for (auto &Nested : Op->getRegion(R).getBlocks())
          if (failed(lowerBlock(*Nested)))
            return failure();
      continue;
    }

    const std::string &Name = Op->getName();
    bool IsSendLike = Name == accel::SendOp::OpName ||
                      Name == accel::SendLiteralOp::OpName ||
                      Name == accel::SendDimOp::OpName ||
                      Name == accel::SendIdxOp::OpName;
    bool IsRecv = Name == accel::RecvOp::OpName;
    bool IsDmaInit = Name == accel::DmaInitOp::OpName;
    if (!IsSendLike && !IsRecv && !IsDmaInit) {
      // Ops that never touch the DMA staging region may interleave with a
      // batch: address/tile computations (constants, index arithmetic,
      // subviews) and the host-side pad-staging ops (alloc/copy/dealloc of
      // the zero-filled full-tile buffers). Anything else flushes it.
      bool ChainTransparent = Name.rfind("arith.", 0) == 0 ||
                              Name == memref::SubViewOp::OpName ||
                              Name == memref::AllocOp::OpName ||
                              Name == memref::CopyOp::OpName ||
                              Name == memref::DeallocOp::OpName;
      if (!ChainTransparent && ChainOpen)
        flushChain();
      continue;
    }

    Builder.setInsertionPoint(Op);

    if (IsDmaInit) {
      flushChain();
      const accel::DmaInitConfig &Config =
          accel::DmaInitOp(Op).getConfig();
      Operation *Call =
          func::CallOp::create(Builder, rtcall::DmaInit, {}).getOperation();
      Call->setAttr("dma_config", Attribute::getDmaConfig(Config));
      Op->erase();
      continue;
    }

    if (IsSendLike) {
      // Resolve this op's offset operand: it either continues the open
      // chain or starts a new one.
      unsigned OffsetIdx = Name == accel::SendLiteralOp::OpName ? 0 : 1;
      Value OldOffset = Op->getOperand(OffsetIdx);
      Value NewOffset;
      auto Mapped = OffsetMapping.find(OldOffset.getImpl());
      // The operand either still names the original accel result (mapped)
      // or was already rewritten to the lowered call result.
      bool Continues =
          ChainOpen && (OldOffset == ChainEndOffset ||
                        (Mapped != OffsetMapping.end() &&
                         Mapped->second == ChainEndOffset));
      if (!Continues) {
        flushChain();
        Builder.setInsertionPoint(Op);
        NewOffset = Mapped != OffsetMapping.end() ? Mapped->second
                                                  : OldOffset;
        ChainStartOffset = NewOffset;
      } else {
        NewOffset = ChainEndOffset;
      }

      func::CallOp Call;
      Type IndexTy = Builder.getIndexType();
      if (Name == accel::SendLiteralOp::OpName) {
        Value Literal =
            arith::ConstantOp::createInt(
                Builder, accel::SendLiteralOp(Op).getLiteral(),
                Builder.getI32Type())
                .getResult();
        Call = func::CallOp::create(Builder, rtcall::CopyLiteralToDma,
                                    {Literal, NewOffset}, {IndexTy});
      } else if (Name == accel::SendOp::OpName) {
        Call = func::CallOp::create(Builder, rtcall::CopyToDma,
                                    {Op->getOperand(0), NewOffset},
                                    {IndexTy});
      } else if (Name == accel::SendDimOp::OpName) {
        // The transmitted size is static: the tile footprint recorded by
        // the lowering pass, or the memref's dimension as a fallback.
        MemRefType Ty = Op->getOperand(0).getType().cast<MemRefType>();
        int64_t DimSize =
            Op->hasAttr("static_size")
                ? Op->getIntAttr("static_size")
                : Ty.getDimSize(static_cast<unsigned>(Op->getIntAttr("dim")));
        Value Literal = arith::ConstantOp::createInt(Builder, DimSize,
                                                     Builder.getI32Type())
                            .getResult();
        Call = func::CallOp::create(Builder, rtcall::CopyLiteralToDma,
                                    {Literal, NewOffset}, {IndexTy});
      } else { // accel.send_idx
        Call = func::CallOp::create(Builder, rtcall::CopyIndexToDma,
                                    {Op->getOperand(0), NewOffset},
                                    {IndexTy});
      }

      Value Result = Call.getOperation()->getResult(0);
      OffsetMapping[Op->getResult(0).getImpl()] = Result;
      // Any residual uses of the old offset result (e.g. by accel.recv)
      // see the lowered offset.
      TheBlock.getParentOp()->replaceUsesOfWith(Op->getResult(0), Result);
      ChainOpen = true;
      ChainEndOffset = Result;
      LastChainOp = Call.getOperation();
      Op->erase();
      continue;
    }

    // accel.recv: flush sends, then start/wait/copy-back.
    flushChain();
    Builder.setInsertionPoint(Op);
    accel::RecvOp Recv(Op);
    MemRefType TileTy = Recv.getMemRef().getType().cast<MemRefType>();
    Value Length = arith::ConstantOp::createIndex(
                       Builder, TileTy.getNumElements())
                       .getResult();
    Value Zero = arith::ConstantOp::createIndex(Builder, 0).getResult();
    func::CallOp::create(Builder, rtcall::StartRecv, {Length, Zero});
    func::CallOp::create(Builder, rtcall::WaitRecv, {});
    Operation *CopyBack =
        func::CallOp::create(Builder, rtcall::CopyFromDma,
                             {Recv.getMemRef(), Zero}, {})
            .getOperation();
    CopyBack->setAttr("accumulate",
                      Attribute::getBool(Recv.getMode() == "accumulate"));
    // The recv result (an offset) is only used as a chain seed; any such
    // use restarts from the recv's incoming offset.
    TheBlock.getParentOp()->replaceUsesOfWith(Op->getResult(0),
                                              Recv.getOffset());
    Op->erase();
  }
  flushChain();
  return success();
}

} // namespace

LogicalResult transforms::convertAccelToRuntime(func::FuncOp Func,
                                                std::string &Error) {
  RuntimeLowering Lowering(Func.getOperation()->getContext(), Error);
  return Lowering.lowerBlock(Func.getBody());
}
