//===- Passes.h - AXI4MLIR transformation passes ----------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AXI4MLIR compiler pipeline (paper Fig. 4):
///
///   1. convertNamedToGeneric — linalg named ops -> linalg.generic (step 3).
///   2. matchAndAnnotate      — find generics an accelerator implements and
///                              attach the trait attributes (steps 2+3).
///   3. lowerToAccel          — tiling for CPU caches and accelerator size,
///                              loop permutation and opcode-flow placement,
///                              emitting scf loops + accel ops (steps 4+5).
///   4. convertAccelToRuntime — accel ops -> DMA runtime library calls with
///                              transfer batching (step 5 -> 6).
///
/// Passes operate on func.func roots and report errors through a string
/// (no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_TRANSFORMS_PASSES_H
#define AXI4MLIR_TRANSFORMS_PASSES_H

#include "dialects/Func.h"
#include "parser/AcceleratorConfig.h"
#include "support/LogicalResult.h"
#include "transforms/TilingPlan.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace transforms {

/// Converts linalg.matmul / linalg.conv_2d_nchw_fchw into linalg.generic
/// with the canonical indexing maps and payload regions.
LogicalResult convertNamedToGeneric(func::FuncOp Func, std::string &Error);

/// Finds linalg.generic ops whose traits structurally match what any of
/// the \p Accels implements, computes a TilingPlan (scoring every
/// structurally-matching candidate through the cost model and picking the
/// cheapest), and attaches the AXI4MLIR trait attributes (paper Fig. 6a)
/// plus the plan attributes of the selected accelerator. Returns the
/// number of annotated ops via \p NumAnnotated and, when \p PlansOut is
/// non-null, appends the plan chosen for each annotated op.
LogicalResult matchAndAnnotate(func::FuncOp Func,
                               const std::vector<parser::AcceleratorDesc> &Accels,
                               const PlanningOptions &Options,
                               std::string &Error,
                               unsigned *NumAnnotated = nullptr,
                               std::vector<TilingPlan> *PlansOut = nullptr);

/// Single-accelerator convenience overload (pad remainders by default).
LogicalResult matchAndAnnotate(func::FuncOp Func,
                               const parser::AcceleratorDesc &Accel,
                               std::string &Error,
                               unsigned *NumAnnotated = nullptr);

/// Structural classification of a linalg.generic against the kernels the
/// accelerators implement — the same matcher matchAndAnnotate uses, exposed
/// so tools can accept already-generic kernels in their inputs.
enum class GenericKernelKind { None, MatMul, Conv2D };

/// Classifies \p Op. For Conv2D the window strides extracted from the
/// indexing maps are returned through \p StrideH / \p StrideW.
GenericKernelKind classifyGenericKernel(Operation *Op, int64_t &StrideH,
                                        int64_t &StrideW);

/// Derives a loop permutation from an opcode flow: dimensions used by send
/// tokens of outer scopes become outer loops (stationary operands' indices
/// go outermost); remaining dimensions are appended in ascending order.
std::vector<unsigned>
derivePermutationFromFlow(const accel::OpcodeFlowData &Flow,
                          const accel::OpcodeMapData &Map,
                          const std::vector<AffineMap> &IndexingMaps,
                          unsigned NumLoops);

/// Options controlling the tiling/lowering pass.
struct LoweringOptions {
  /// Emit an extra loop level tiled for the CPU's last-level cache
  /// (paper Fig. 4 step 4; disabling reproduces the no-CPU-tiling
  /// ablation).
  bool EnableCpuTiling = true;
  /// Last-level cache capacity used by the tiling heuristic.
  int64_t CacheBytes = 512 * 1024;
  /// Element width in bytes (the AXI stream carries 32-bit words).
  int64_t ElementBytes = 4;
  /// Partial-tile strategy used when planning (pad, peel or reject).
  RemainderMode Remainder = RemainderMode::Pad;
  /// SoC calibration for the accelerator-dispatch cost model.
  sim::SoCParams CostParams;
};

/// Lowers every annotated linalg.generic into the tiled scf loop nest with
/// accel-dialect communication ops placed according to the opcode flow
/// (paper Fig. 6b / Fig. 15b).
LogicalResult lowerToAccel(func::FuncOp Func, const LoweringOptions &Options,
                           std::string &Error);

/// Lowers accel ops to DMA runtime library calls ("axirt.*" callees),
/// batching consecutive staged copies into single dma_start_send transfers.
LogicalResult convertAccelToRuntime(func::FuncOp Func, std::string &Error);

/// Runtime-library callee names emitted by convertAccelToRuntime.
namespace rtcall {
inline constexpr const char *DmaInit = "axirt.dma_init";
inline constexpr const char *CopyToDma = "axirt.copy_to_dma";
inline constexpr const char *CopyLiteralToDma = "axirt.copy_literal_to_dma";
inline constexpr const char *CopyIndexToDma = "axirt.copy_index_to_dma";
inline constexpr const char *StartSend = "axirt.start_send";
inline constexpr const char *WaitSend = "axirt.wait_send";
inline constexpr const char *StartRecv = "axirt.start_recv";
inline constexpr const char *WaitRecv = "axirt.wait_recv";
inline constexpr const char *CopyFromDma = "axirt.copy_from_dma";
} // namespace rtcall

/// A tiny pass manager: runs passes in order, optionally verifying after
/// each, collecting the first error.
class PassManager {
public:
  using PassFn = std::function<LogicalResult(func::FuncOp, std::string &)>;

  explicit PassManager(bool VerifyAfterEach = true)
      : VerifyAfterEach(VerifyAfterEach) {}

  void addPass(std::string Name, PassFn Fn) {
    Passes.emplace_back(std::move(Name), std::move(Fn));
  }

  /// Runs all passes on \p Func. On failure \p Error names the failing
  /// pass.
  LogicalResult run(func::FuncOp Func, std::string &Error);

private:
  std::vector<std::pair<std::string, PassFn>> Passes;
  bool VerifyAfterEach;
};

/// Builds the standard AXI4MLIR pipeline over a set of candidate
/// accelerators: the match pass plans each matched kernel across all of
/// them and dispatches to the cheapest. When \p PlansOut is non-null the
/// plans selected during the run are appended to it (one per annotated
/// kernel, in walk order).
PassManager buildPipeline(std::vector<parser::AcceleratorDesc> Accels,
                          const LoweringOptions &Options,
                          std::shared_ptr<std::vector<TilingPlan>> PlansOut =
                              nullptr);

/// Builds the standard AXI4MLIR pipeline for one accelerator.
PassManager buildPipeline(const parser::AcceleratorDesc &Accel,
                          const LoweringOptions &Options);

} // namespace transforms
} // namespace axi4mlir

#endif // AXI4MLIR_TRANSFORMS_PASSES_H
