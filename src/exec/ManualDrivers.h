//===- ManualDrivers.h - Hand-written baseline drivers ----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-optimized host driver code in the style of the paper's SECDA-TFLite
/// baselines ("cpp_MANUAL", Sec. IV-A): direct C++ loops over bare arrays,
/// tiled only to the accelerator size, with the fewest DMA transfers per
/// dataflow and no extra staging overhead. AXI4MLIR-generated code is
/// compared against these throughout Figs. 10-16.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_MANUALDRIVERS_H
#define AXI4MLIR_EXEC_MANUALDRIVERS_H

#include "runtime/DmaRuntime.h"
#include "sim/MatMulAccelerator.h"

#include <string>

namespace axi4mlir {
namespace exec {

/// Configuration of one manual matmul offload.
struct ManualMatMulConfig {
  sim::MatMulAccelerator::Version Version =
      sim::MatMulAccelerator::Version::V3;
  /// Accelerator tile sizes (square unless v4).
  int64_t TileM = 8, TileN = 8, TileK = 8;
  /// Dataflow: "Ns", "As", "Bs" (v2/v3/v4) or "Cs" (v3/v4).
  std::string Flow = "Ns";
};

/// Runs C += A x B on the accelerator with hand-written driver code.
/// Problem sizes come from the descriptors; they must be divisible by the
/// tiles. Returns false on a protocol error.
bool runManualMatMul(runtime::DmaRuntime &Runtime,
                     const runtime::MemRefDesc &A,
                     const runtime::MemRefDesc &B, runtime::MemRefDesc &C,
                     const ManualMatMulConfig &Config);

/// Runs O += conv2d(I, W) on the conv accelerator with hand-written,
/// layer-specific driver code (filter+output stationary).
bool runManualConv2D(runtime::DmaRuntime &Runtime,
                     const runtime::MemRefDesc &Input,
                     const runtime::MemRefDesc &Filter,
                     runtime::MemRefDesc &Output, int64_t StrideH,
                     int64_t StrideW);

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_MANUALDRIVERS_H
