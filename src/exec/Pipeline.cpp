//===- Pipeline.cpp - End-to-end driver API implementation ----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include "dialects/InitAllDialects.h"
#include "dialects/Linalg.h"
#include "dialects/MemRef.h"
#include "exec/AccelConfigs.h"
#include "exec/Interpreter.h"
#include "exec/Reference.h"
#include "ir/Verifier.h"

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;
using sim::MatMulAccelerator;

func::FuncOp exec::buildMatMulFunc(OpBuilder &Builder, int64_t M, int64_t N,
                                   int64_t K, sim::ElemKind Kind) {
  MLIRContext *Context = Builder.getContext();
  Type Elem = Kind == sim::ElemKind::F32 ? Type::getF32(Context)
                                         : Type::getI32(Context);
  MemRefType ATy = MemRefType::get(Context, {M, K}, Elem);
  MemRefType BTy = MemRefType::get(Context, {K, N}, Elem);
  MemRefType CTy = MemRefType::get(Context, {M, N}, Elem);
  func::FuncOp Func =
      func::FuncOp::create(Builder, "matmul_call", {ATy, BTy, CTy});
  OpBuilder BodyBuilder(Context);
  BodyBuilder.setInsertionPointToEnd(&Func.getBody());
  linalg::MatmulOp::create(BodyBuilder, Func.getArgument(0),
                           Func.getArgument(1), Func.getArgument(2));
  func::ReturnOp::create(BodyBuilder);
  return Func;
}

func::FuncOp exec::buildConvFunc(OpBuilder &Builder, int64_t Batch,
                                 int64_t InChannels, int64_t InHW,
                                 int64_t OutChannels, int64_t FilterHW,
                                 int64_t Stride, sim::ElemKind Kind) {
  MLIRContext *Context = Builder.getContext();
  Type Elem = Kind == sim::ElemKind::F32 ? Type::getF32(Context)
                                         : Type::getI32(Context);
  int64_t OutHW = (InHW - FilterHW) / Stride + 1;
  MemRefType ITy =
      MemRefType::get(Context, {Batch, InChannels, InHW, InHW}, Elem);
  MemRefType WTy = MemRefType::get(
      Context, {OutChannels, InChannels, FilterHW, FilterHW}, Elem);
  MemRefType OTy =
      MemRefType::get(Context, {Batch, OutChannels, OutHW, OutHW}, Elem);
  func::FuncOp Func =
      func::FuncOp::create(Builder, "conv_call", {ITy, WTy, OTy});
  OpBuilder BodyBuilder(Context);
  BodyBuilder.setInsertionPointToEnd(&Func.getBody());
  linalg::Conv2DNchwFchwOp::create(BodyBuilder, Func.getArgument(0),
                                   Func.getArgument(1), Func.getArgument(2),
                                   Stride, Stride);
  func::ReturnOp::create(BodyBuilder);
  return Func;
}

namespace {

/// Shared validation: run the reference kernel on clones and compare.
bool validateMatMul(const MemRefDesc &A, const MemRefDesc &B,
                    const MemRefDesc &CIn, const MemRefDesc &COut) {
  MemRefDesc Expected = cloneMemRef(CIn);
  MemRefDesc ACopy = cloneMemRef(A), BCopy = cloneMemRef(B);
  referenceMatMul(ACopy, BCopy, Expected);
  return memrefEquals(Expected, COut);
}

struct MatMulData {
  MemRefDesc A, B, C, CInitial;
};

MatMulData makeMatMulData(const MatMulRunConfig &Config) {
  MatMulData Data;
  Data.A = MemRefDesc::alloc({Config.M, Config.K}, Config.Kind);
  Data.B = MemRefDesc::alloc({Config.K, Config.N}, Config.Kind);
  Data.C = MemRefDesc::alloc({Config.M, Config.N}, Config.Kind);
  fillRandom(Data.A, Config.Seed);
  fillRandom(Data.B, Config.Seed + 1);
  fillRandom(Data.C, Config.Seed + 2);
  Data.CInitial = cloneMemRef(Data.C);
  return Data;
}

int64_t tileOf(const MatMulRunConfig &Config, int Which) {
  int64_t Tile = Which == 0   ? Config.TileM
                 : Which == 1 ? Config.TileN
                              : Config.TileK;
  return Tile ? Tile : Config.AccelSize;
}

} // namespace

RunResult exec::runMatMulAxi4mlir(const MatMulRunConfig &Config) {
  RunResult Result;

  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, Config.M, Config.N, Config.K,
                                      Config.Kind);
  OwningOpRef Owner(Func.getOperation());

  // Parse the accelerator description (as from a user's config file).
  parser::AcceleratorDesc Accel = parseSingleAccelerator(
      makeMatMulConfigJson(Config.Version, Config.AccelSize, Config.Flow,
                           tileOf(Config, 0), tileOf(Config, 1),
                           tileOf(Config, 2)));

  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = Config.CpuTiling;
  Options.CacheBytes = Config.Params.L2SizeBytes;
  Options.Remainder = Config.Remainder;
  Options.CostParams = Config.Params;
  auto Plans = std::make_shared<std::vector<transforms::TilingPlan>>();
  transforms::PassManager Pipeline = transforms::buildPipeline(
      std::vector<parser::AcceleratorDesc>{Accel}, Options, Plans);
  if (failed(Pipeline.run(Func, Result.Error)))
    return Result;
  if (!Plans->empty())
    Result.SelectedAccelerator = Plans->front().AcceleratorName;

  // Execute against the simulated board.
  auto Soc = sim::makeMatMulSoC(Config.Version, Config.AccelSize,
                                Config.Kind, Config.Params);
  // Fault injection + self-healing: spares are protocol-identical clones
  // ranked by the selected plan's modeled cost; the injector outlives the
  // run (the SoC holds a raw pointer).
  std::optional<sim::FaultInjector> Injector;
  if (!Config.Faults.empty() || Config.SpareAccelerators > 0) {
    double Score = Plans->empty() ? 0.0 : Plans->front().EstimatedCostMs;
    for (unsigned I = 0; I < Config.SpareAccelerators; ++I)
      Soc->addSpareAccelerator(Soc->accelerator()->cloneFresh(), Score);
    Injector.emplace(Config.Faults);
    Soc->attachFaultInjector(&*Injector);
  }
  runtime::DmaRuntime Runtime(*Soc, Config.SpecializeCopies);
  MatMulData Data = makeMatMulData(Config);
  Interpreter Interp(*Soc, &Runtime, Config.Exec);
  if (!Config.PlanOpt.empty()) {
    opt::PlanOptOptions OptOptions;
    if (failed(opt::parsePlanOptSpec(Config.PlanOpt, OptOptions,
                                     Result.Error)))
      return Result;
    Interp.setPlanOptions(OptOptions);
  }
  if (failed(Interp.run(Func, {Data.A, Data.B, Data.C}, Result.Error)))
    return Result;

  Result.Ok = true;
  Result.NumericsMatch =
      !Config.Validate ||
      validateMatMul(Data.A, Data.B, Data.CInitial, Data.C);
  if (Config.Validate && !Result.NumericsMatch)
    Result.Error = "numerical mismatch against the reference kernel";
  Result.Report = Soc->report();
  return Result;
}

RunResult exec::runMatMulManual(const MatMulRunConfig &Config) {
  RunResult Result;
  auto Soc = sim::makeMatMulSoC(Config.Version, Config.AccelSize,
                                Config.Kind, Config.Params);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  MatMulData Data = makeMatMulData(Config);

  ManualMatMulConfig Manual;
  Manual.Version = Config.Version;
  Manual.TileM = tileOf(Config, 0);
  Manual.TileN = tileOf(Config, 1);
  Manual.TileK = tileOf(Config, 2);
  Manual.Flow = Config.Flow;
  if (!runManualMatMul(Runtime, Data.A, Data.B, Data.C, Manual)) {
    Result.Error = "manual driver protocol error: " + Runtime.errorMessage();
    return Result;
  }

  Result.Ok = true;
  Result.NumericsMatch =
      !Config.Validate ||
      validateMatMul(Data.A, Data.B, Data.CInitial, Data.C);
  if (Config.Validate && !Result.NumericsMatch)
    Result.Error = "numerical mismatch against the reference kernel";
  Result.Report = Soc->report();
  return Result;
}

RunResult exec::runMatMulCpuOnly(const MatMulRunConfig &Config) {
  RunResult Result;

  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildMatMulFunc(Builder, Config.M, Config.N, Config.K,
                                      Config.Kind);
  OwningOpRef Owner(Func.getOperation());
  if (failed(transforms::convertNamedToGeneric(Func, Result.Error)))
    return Result;

  auto Soc = sim::makeCpuOnlySoC(Config.Params);
  MatMulData Data = makeMatMulData(Config);
  Interpreter Interp(*Soc, /*Runtime=*/nullptr, Config.Exec);
  if (failed(Interp.run(Func, {Data.A, Data.B, Data.C}, Result.Error)))
    return Result;

  Result.Ok = true;
  Result.NumericsMatch =
      !Config.Validate ||
      validateMatMul(Data.A, Data.B, Data.CInitial, Data.C);
  if (Config.Validate && !Result.NumericsMatch)
    Result.Error = "numerical mismatch against the reference kernel";
  Result.Report = Soc->report();
  return Result;
}

//===----------------------------------------------------------------------===//
// Convolution
//===----------------------------------------------------------------------===//

namespace {

struct ConvData {
  MemRefDesc Input, Filter, Output, OutputInitial;
};

ConvData makeConvData(const ConvRunConfig &Config) {
  int64_t OutHW = (Config.InHW - Config.FilterHW) / Config.Stride + 1;
  ConvData Data;
  Data.Input = MemRefDesc::alloc(
      {Config.Batch, Config.InChannels, Config.InHW, Config.InHW},
      Config.Kind);
  Data.Filter = MemRefDesc::alloc({Config.OutChannels, Config.InChannels,
                                   Config.FilterHW, Config.FilterHW},
                                  Config.Kind);
  Data.Output = MemRefDesc::alloc(
      {Config.Batch, Config.OutChannels, OutHW, OutHW}, Config.Kind);
  fillRandom(Data.Input, Config.Seed);
  fillRandom(Data.Filter, Config.Seed + 1);
  fillRandom(Data.Output, Config.Seed + 2);
  Data.OutputInitial = cloneMemRef(Data.Output);
  return Data;
}

bool validateConv(const ConvRunConfig &Config, const ConvData &Data) {
  MemRefDesc Expected = cloneMemRef(Data.OutputInitial);
  referenceConv2D(Data.Input, Data.Filter, Expected, Config.Stride,
                  Config.Stride);
  return memrefEquals(Expected, Data.Output);
}

} // namespace

RunResult exec::runConvAxi4mlir(const ConvRunConfig &Config) {
  RunResult Result;

  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func = buildConvFunc(Builder, Config.Batch,
                                    Config.InChannels, Config.InHW,
                                    Config.OutChannels, Config.FilterHW,
                                    Config.Stride, Config.Kind);
  OwningOpRef Owner(Func.getOperation());

  parser::AcceleratorDesc Accel =
      parseSingleAccelerator(makeConvConfigJson());

  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = Config.CpuTiling;
  Options.CacheBytes = Config.Params.L2SizeBytes;
  Options.Remainder = Config.Remainder;
  Options.CostParams = Config.Params;
  auto Plans = std::make_shared<std::vector<transforms::TilingPlan>>();
  transforms::PassManager Pipeline = transforms::buildPipeline(
      std::vector<parser::AcceleratorDesc>{Accel}, Options, Plans);
  if (failed(Pipeline.run(Func, Result.Error)))
    return Result;
  if (!Plans->empty())
    Result.SelectedAccelerator = Plans->front().AcceleratorName;

  auto Soc = sim::makeConvSoC(Config.Kind, Config.Params);
  std::optional<sim::FaultInjector> Injector;
  if (!Config.Faults.empty() || Config.SpareAccelerators > 0) {
    double Score = Plans->empty() ? 0.0 : Plans->front().EstimatedCostMs;
    for (unsigned I = 0; I < Config.SpareAccelerators; ++I)
      Soc->addSpareAccelerator(Soc->accelerator()->cloneFresh(), Score);
    Injector.emplace(Config.Faults);
    Soc->attachFaultInjector(&*Injector);
  }
  runtime::DmaRuntime Runtime(*Soc, Config.SpecializeCopies);
  ConvData Data = makeConvData(Config);
  Interpreter Interp(*Soc, &Runtime, Config.Exec);
  if (!Config.PlanOpt.empty()) {
    opt::PlanOptOptions OptOptions;
    if (failed(opt::parsePlanOptSpec(Config.PlanOpt, OptOptions,
                                     Result.Error)))
      return Result;
    Interp.setPlanOptions(OptOptions);
  }
  if (failed(Interp.run(Func, {Data.Input, Data.Filter, Data.Output},
                        Result.Error)))
    return Result;

  Result.Ok = true;
  Result.NumericsMatch = !Config.Validate || validateConv(Config, Data);
  if (Config.Validate && !Result.NumericsMatch)
    Result.Error = "numerical mismatch against the reference kernel";
  Result.Report = Soc->report();
  return Result;
}

RunResult exec::runConvManual(const ConvRunConfig &Config) {
  RunResult Result;
  auto Soc = sim::makeConvSoC(Config.Kind, Config.Params);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  ConvData Data = makeConvData(Config);
  if (!runManualConv2D(Runtime, Data.Input, Data.Filter, Data.Output,
                       Config.Stride, Config.Stride)) {
    Result.Error = "manual driver protocol error: " + Runtime.errorMessage();
    return Result;
  }
  Result.Ok = true;
  Result.NumericsMatch = !Config.Validate || validateConv(Config, Data);
  if (Config.Validate && !Result.NumericsMatch)
    Result.Error = "numerical mismatch against the reference kernel";
  Result.Report = Soc->report();
  return Result;
}
