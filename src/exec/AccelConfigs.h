//===- AccelConfigs.h - Configuration files for the Table I accels -*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the JSON configuration files (paper Fig. 5) describing the
/// simulated accelerators: MatMul v1..v4 (Table I) and the Conv2D engine
/// (Fig. 15a). These strings go through the real parser
/// (parser::parseSystemConfig), exactly as a user's config file would.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_ACCELCONFIGS_H
#define AXI4MLIR_EXEC_ACCELCONFIGS_H

#include "parser/ConfigParser.h"
#include "sim/MatMulAccelerator.h"

#include <cassert>
#include <sstream>
#include <string>

namespace axi4mlir {
namespace exec {

/// Builds the configuration JSON for a MatMul accelerator.
/// \p Flow is one of "Ns", "As", "Bs", "Cs" (availability depends on the
/// version, Table I). \p TileM/N/K override the square size for v4.
inline std::string
makeMatMulConfigJson(sim::MatMulAccelerator::Version Version, int64_t Size,
                     const std::string &Flow, int64_t TileM = 0,
                     int64_t TileN = 0, int64_t TileK = 0,
                     const std::string &DataType = "int32") {
  using V = sim::MatMulAccelerator::Version;
  int64_t TM = TileM ? TileM : Size;
  int64_t TN = TileN ? TileN : Size;
  int64_t TK = TileK ? TileK : Size;

  std::ostringstream OS;
  OS << "{ \"cpu\": { \"cache-levels\": [32K, 512K],"
     << " \"cache-types\": [data, shared] },\n";
  OS << "  \"accelerators\": [ {\n";
  OS << "    \"name\": \"matmul_v" << (Version == V::V1   ? 1
                                       : Version == V::V2 ? 2
                                       : Version == V::V3 ? 3
                                                          : 4)
     << "_" << Size << "\", \"version\": 1.0,\n";
  OS << "    \"description\": \"Table I tile MatMul engine\",\n";
  OS << "    \"kernel\": \"linalg.matmul\", \"data_type\": \"" << DataType
     << "\",\n";
  OS << "    \"dma_config\": { \"id\": 0, \"inputAddress\": 0x42,"
     << " \"inputBufferSize\": 0x40000, \"outputAddress\": 0x40042,"
     << " \"outputBufferSize\": 0x40000 },\n";
  OS << "    \"accel_size\": [" << TM << ", " << TN << ", " << TK << "],\n";
  OS << "    \"dims\": [m, n, k],\n";
  OS << "    \"data\": { \"A\": [m, k], \"B\": [k, n], \"C\": [m, n] },\n";

  // Micro-ISA per version (Table I "Opcode(s)" column).
  OS << "    \"opcode_map\": \"opcode_map< ";
  switch (Version) {
  case V::V1:
    OS << "sAsBcCrC = [send_literal(0x21), send(0), send(1), recv(2)], "
       << "reset = [send_literal(0xFF)]";
    break;
  case V::V2:
    OS << "sA = [send_literal(0x22), send(0)], "
       << "sB = [send_literal(0x23), send(1)], "
       << "cCrC = [send_literal(0x27), recv(2)], "
       << "reset = [send_literal(0xFF)]";
    break;
  case V::V3:
  case V::V4:
    OS << "sA = [send_literal(0x22), send(0)], "
       << "sB = [send_literal(0x23), send(1)], "
       << "cC = [send_literal(0xF0)], "
       << "rC = [send_literal(0x24), recv(2)], "
       << "reset = [send_literal(0xFF)]";
    if (Version == V::V4)
      OS << ", cfg = [send_literal(0x10), send_dim(0, 0), send_dim(0, 1), "
         << "send_dim(1, 1)]";
    break;
  }
  OS << " >\",\n";

  // Legal flows per version.
  OS << "    \"opcode_flow_map\": {\n";
  if (Version == V::V1) {
    OS << "      \"Ns\": \"(sAsBcCrC)\"\n";
  } else if (Version == V::V2) {
    OS << "      \"Ns\": \"(sA sB cCrC)\",\n";
    OS << "      \"As\": \"(sA (sB cCrC))\",\n";
    OS << "      \"Bs\": \"(sB (sA cCrC))\"\n";
  } else {
    OS << "      \"Ns\": \"(sA sB cC rC)\",\n";
    OS << "      \"As\": \"(sA (sB cC rC))\",\n";
    OS << "      \"Bs\": \"(sB (sA cC rC))\",\n";
    OS << "      \"Cs\": \"((sA sB cC) rC)\"\n";
  }
  OS << "    },\n";
  OS << "    \"selected_flow\": \"" << Flow << "\",\n";
  OS << "    \"init_opcodes\": \"("
     << (Version == V::V4 ? "reset cfg" : "reset") << ")\"\n";
  OS << "  } ] }\n";
  return OS.str();
}

/// Builds the configuration JSON for the Conv2D accelerator (Fig. 15a):
/// filter+output stationary, runtime-configurable iC and fH/fW.
/// accel_size -1 entries mean "full extent handled inside the
/// accelerator"; 0 entries mean per-element host loops.
inline std::string makeConvConfigJson(const std::string &DataType = "int32") {
  std::ostringstream OS;
  OS << "{ \"cpu\": { \"cache-levels\": [32K, 512K],"
     << " \"cache-types\": [data, shared] },\n";
  OS << "  \"accelerators\": [ {\n";
  OS << "    \"name\": \"conv2d_os\", \"version\": 1.0,\n";
  OS << "    \"description\": \"output+filter stationary Conv2D\",\n";
  OS << "    \"kernel\": \"linalg.conv_2d_nchw_fchw\", \"data_type\": \""
     << DataType << "\",\n";
  OS << "    \"dma_config\": { \"id\": 0, \"inputAddress\": 0x42,"
     << " \"inputBufferSize\": 0x80000, \"outputAddress\": 0x80042,"
     << " \"outputBufferSize\": 0x80000 },\n";
  // Dims (b, oc, oh, ow, ic, fh, fw): host loops over b/oc/oh/ow
  // (per-element), accelerator holds ic/fh/fw in full.
  OS << "    \"accel_size\": [0, 1, 0, 0, -1, -1, -1],\n";
  OS << "    \"dims\": [b, oc, oh, ow, ic, fh, fw],\n";
  OS << "    \"data\": { \"I\": [b, ic, h, w], \"W\": [oc, ic, fh, fw],"
     << " \"O\": [b, oc, oh, ow] },\n";
  OS << "    \"opcode_map\": \"opcode_map< "
     << "sIcO = [send_literal(70), send(0)], "
     << "sF = [send_literal(1), send(1)], "
     << "rO = [send_literal(8), recv(2)], "
     << "rst = [send_literal(32), send_dim(1, 3), send_literal(16), "
     << "send_dim(0, 1)] >\",\n";
  OS << "    \"opcode_flow_map\": { \"Os\": \"(sF (sIcO) rO)\" },\n";
  OS << "    \"selected_flow\": \"Os\",\n";
  OS << "    \"init_opcodes\": \"(rst)\"\n";
  OS << "  } ] }\n";
  return OS.str();
}

/// Parses one of the above configs into an AcceleratorDesc (asserts
/// success: these are library-internal strings covered by tests).
inline parser::AcceleratorDesc
parseSingleAccelerator(const std::string &ConfigJson) {
  std::string Error;
  auto Config = parser::parseSystemConfig(ConfigJson, &Error);
  assert(succeeded(Config) && "internal accelerator config must parse");
  assert(!Config->Accelerators.empty());
  return Config->Accelerators.front();
}

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_ACCELCONFIGS_H
