//===- PlanOpt.h - ExecPlan optimizer pass pipeline -------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pass pipeline over compiled ExecPlans, in the spirit of a JIT's IR
/// optimizer: many small semantics-preserving rewrites, each with an
/// explicit legality/counter contract that the differential equivalence
/// harness (tests/PlanEquivalenceFuzzTest.cpp) pins run by run.
///
/// Passes and their contracts (always: bit-identical output buffers):
///
///   * fold — constant stride/index folding through the pooled operand
///     lists: operand references to slots with a known constant value are
///     rewritten to the earliest dominating constant slot holding the same
///     value (plus copy-propagation through index_cast). Only *references*
///     change, never the executed instruction sequence, so every modeled
///     counter is bit-identical.
///   * dce — removes dead uncharged pure instructions (constants and
///     index_casts whose result is never read), constant zero-trip loops
///     (counter-identical: their bodies never executed), and dead staging
///     writes whose byte range is fully overwritten before any DMA send
///     can read it (charged: counters improve; Stats.RemovedChargedInsts
///     tells the harness which assertion applies).
///   * licm — hoists loop-invariant instructions in front of the loop:
///     constants/index_casts unconditionally (uncharged — counters stay
///     bit-identical), charged pure ops (arith, subview) and idempotent
///     constant-range staging writes only when the loop has a known
///     positive constant trip count and, for staging writes, the written
///     range is disjoint from every other staging write in the loop and
///     no overlapping send precedes the write in the body. Host counters
///     improve monotonically; DMA transfer count and bytes are identical.
///   * coalesce — flattens constant single-trip loops and merges adjacent
///     same-region sends into one larger burst by relocating the second
///     send's staging writes right behind the first send's range. The
///     merged burst streams the identical word sequence (the accelerator
///     FSMs are burst-boundary independent), so buffers and DmaBytesMoved
///     are identical while DmaTransfers and host dispatch shrink. Cache
///     counters may shift either way (staging lands at other region
///     addresses), so only the cache-free counters are contracted.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_OPT_PLANOPT_H
#define AXI4MLIR_EXEC_OPT_PLANOPT_H

#include "support/LogicalResult.h"

#include <string>

namespace axi4mlir {
namespace exec {

class ExecPlan;

namespace opt {

/// Per-pass enable flags for the plan optimizer pipeline.
struct PlanOptOptions {
  bool Fold = false;
  bool Dce = false;
  bool Licm = false;
  bool Coalesce = false;

  /// Run the static verifier (src/analysis/PlanVerifier) over the plan
  /// after every pass that changed it; the first verification failure is
  /// recorded in PlanOptStats::VerifyError and stops the pipeline. This
  /// is a pure compile-time check (never charged per run); Debug builds
  /// default it on so every test exercises the verifier, Release builds
  /// leave it to explicit opt-in (the fuzzers and --verify-each).
#ifdef NDEBUG
  bool VerifyEach = false;
#else
  bool VerifyEach = true;
#endif

  static PlanOptOptions none() { return {}; }
  static PlanOptOptions all() {
    PlanOptOptions Options;
    Options.Fold = Options.Dce = Options.Licm = Options.Coalesce = true;
    return Options;
  }
  bool any() const { return Fold || Dce || Licm || Coalesce; }
};

/// Parses a `--plan-opt` specification: "none", "all", or a comma list of
/// pass names out of {fold, dce, licm, coalesce}. On failure \p Error
/// names the offending token.
LogicalResult parsePlanOptSpec(const std::string &Spec,
                               PlanOptOptions &Options, std::string &Error);

/// Canonical spelling of \p Options ("none", "all" or a comma list).
std::string toString(const PlanOptOptions &Options);

/// What the pipeline did — the equivalence harness uses these to decide
/// which counter contract applies to a given run.
struct PlanOptStats {
  /// fold: operand references rewritten to canonical constant slots.
  unsigned FoldedOperands = 0;
  /// dce: removed instructions that charge no perf events (counters stay
  /// bit-identical).
  unsigned RemovedUnchargedInsts = 0;
  /// dce: removed charged instructions (dead staging writes, zero-trip
  /// loop bookkeeping is uncharged and counted above). When nonzero the
  /// counters improve instead of matching bit-exactly.
  unsigned RemovedChargedInsts = 0;
  /// licm: hoisted uncharged instructions (constants/index_casts).
  unsigned HoistedUnchargedInsts = 0;
  /// licm: hoisted charged instructions (arith/subview/staging writes).
  unsigned HoistedChargedInsts = 0;
  /// coalesce: constant single-trip loops flattened away.
  unsigned FlattenedLoops = 0;
  /// coalesce: send pairs merged into one burst (each saves one DMA
  /// transfer).
  unsigned CoalescedSends = 0;

  /// With PlanOptOptions::VerifyEach: the first verifier diagnostic hit
  /// between passes (empty when every stage verified clean), and the pass
  /// that produced the offending plan.
  std::string VerifyError;
  std::string VerifyFailedPass;

  bool changedCounters() const {
    return RemovedChargedInsts || HoistedChargedInsts || FlattenedLoops ||
           CoalescedSends;
  }
  unsigned total() const {
    return FoldedOperands + RemovedUnchargedInsts + RemovedChargedInsts +
           HoistedUnchargedInsts + HoistedChargedInsts + FlattenedLoops +
           CoalescedSends;
  }
};

/// Runs the enabled passes over \p Plan in the canonical order
/// fold -> licm -> coalesce -> dce, repeating until a whole round changes
/// nothing (each pass is monotone, so this terminates). Returns aggregate
/// statistics.
PlanOptStats optimizePlan(ExecPlan &Plan, const PlanOptOptions &Options);

} // namespace opt
} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_OPT_PLANOPT_H
