//===- PlanOpt.cpp - ExecPlan optimizer pass pipeline ---------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The optimizer works on a structured view of the flat program: the
// well-nested LoopBegin/LoopEnd spans compiled from scf.for are parsed
// into a tree of nodes, passes transform the tree, and the tree is
// re-flattened with loop PC targets recomputed. Legality reasoning is
// the interesting part; every rule is commented at its check.
//
//===----------------------------------------------------------------------===//

#include "exec/opt/PlanOpt.h"

#include "analysis/PlanAnalyses.h"
#include "analysis/PlanVerifier.h"
#include "exec/ExecPlan.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using namespace axi4mlir::exec::opt;

//===----------------------------------------------------------------------===//
// Option parsing
//===----------------------------------------------------------------------===//

LogicalResult opt::parsePlanOptSpec(const std::string &Spec,
                                    PlanOptOptions &Options,
                                    std::string &Error) {
  Options = PlanOptOptions::none();
  if (Spec.empty() || Spec == "none")
    return success();
  if (Spec == "all") {
    Options = PlanOptOptions::all();
    return success();
  }
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Token = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Token == "fold")
      Options.Fold = true;
    else if (Token == "dce")
      Options.Dce = true;
    else if (Token == "licm")
      Options.Licm = true;
    else if (Token == "coalesce")
      Options.Coalesce = true;
    else {
      Error = "unknown plan-opt pass '" + Token +
              "' (expected none|all|fold|dce|licm|coalesce)";
      return failure();
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return success();
}

std::string opt::toString(const PlanOptOptions &Options) {
  if (!Options.any())
    return "none";
  if (Options.Fold && Options.Dce && Options.Licm && Options.Coalesce)
    return "all";
  std::string Out;
  auto append = [&](const char *Name) {
    if (!Out.empty())
      Out += ',';
    Out += Name;
  };
  if (Options.Fold)
    append("fold");
  if (Options.Dce)
    append("dce");
  if (Options.Licm)
    append("licm");
  if (Options.Coalesce)
    append("coalesce");
  return Out;
}

//===----------------------------------------------------------------------===//
// PlanOptimizer
//===----------------------------------------------------------------------===//

namespace axi4mlir {
namespace exec {
namespace opt {

class PlanOptimizer {
public:
  PlanOptimizer(ExecPlan &Plan, const PlanOptOptions &Options)
      : Plan(Plan), Options(Options) {}

  PlanOptStats run();

private:
  using Inst = ExecPlan::Inst;
  using POp = ExecPlan::Op;

  /// Structured program: leaves carry one instruction, loops carry the
  /// LoopBegin instruction plus their body (the LoopEnd is reconstructed
  /// at flatten time from the LoopBegin's fields, exactly as compiled).
  struct Node {
    Inst I;
    bool IsLoop = false;
    std::vector<Node> Body;
  };

  /// A half-open staged-region word range (the shared analysis type, so
  /// the optimizer's legality ranges and the verifier's bounds proofs are
  /// literally the same values).
  using Range = analysis::WordRange;

  //===--------------------------------------------------------------------===//
  // Tree building / flattening
  //===--------------------------------------------------------------------===//

  std::vector<Node> buildTree() const {
    size_t Pc = 0;
    return buildSpan(Pc, Plan.Program.size());
  }

  std::vector<Node> buildSpan(size_t &Pc, size_t End) const {
    std::vector<Node> Out;
    while (Pc < End) {
      const Inst &I = Plan.Program[Pc];
      if (I.Code == POp::LoopBegin) {
        Node Loop;
        Loop.I = I;
        Loop.IsLoop = true;
        size_t Past = static_cast<size_t>(I.Aux); // PC past the LoopEnd
        ++Pc;
        Loop.Body = buildSpan(Pc, Past - 1); // stop at the LoopEnd
        assert(Pc == Past - 1 &&
               Plan.Program[Pc].Code == POp::LoopEnd &&
               "malformed loop span");
        ++Pc; // consume the LoopEnd
        Out.push_back(std::move(Loop));
        continue;
      }
      assert(I.Code != POp::LoopEnd && "unbalanced LoopEnd");
      Node Leaf;
      Leaf.I = I;
      Out.push_back(std::move(Leaf));
      ++Pc;
    }
    return Out;
  }

  void flattenInto(const std::vector<Node> &Nodes,
                   std::vector<Inst> &Out) const {
    for (const Node &N : Nodes) {
      if (!N.IsLoop) {
        Out.push_back(N.I);
        continue;
      }
      size_t BeginPc = Out.size();
      Out.push_back(N.I);
      flattenInto(N.Body, Out);
      Inst End;
      End.Code = POp::LoopEnd;
      End.Dst = N.I.Dst;
      End.B = N.I.B;
      End.C = N.I.C;
      End.Aux = static_cast<int32_t>(BeginPc + 1);
      Out.push_back(End);
      Out[BeginPc].Aux = static_cast<int32_t>(Out.size());
    }
  }

  void commit(const std::vector<Node> &Tree) {
    std::vector<Inst> Out;
    Out.reserve(Plan.Program.size());
    flattenInto(Tree, Out);
    Plan.Program = std::move(Out);
  }

  //===--------------------------------------------------------------------===//
  // Operand enumeration
  //===--------------------------------------------------------------------===//

  /// Invokes \p Fn on a mutable reference to every slot the instruction
  /// reads (including pooled index/offset lists). Loop nodes report the
  /// bound/step slots of their LoopBegin.
  template <typename Fn> void forEachRead(Inst &I, Fn &&F) {
    switch (I.Code) {
    case POp::ConstInt:
    case POp::ConstFloat:
    case POp::Alloc:
    case POp::Dealloc:
    case POp::CallWaitSend:
    case POp::CallWaitRecv:
    case POp::CallDmaInit:
    case POp::AccelDmaInit:
      return;
    case POp::Binary:
    case POp::Copy:
    case POp::AccelSend:
    case POp::AccelSendDim:
    case POp::AccelSendIdx:
    case POp::CallCopyToDma:
    case POp::CallCopyLiteralToDma:
    case POp::CallStartSend:
    case POp::CallStartRecv:
    case POp::CallCopyFromDma:
    case POp::CallSendFused:
    case POp::CallRecvFused:
      F(I.A);
      F(I.B);
      return;
    case POp::IndexCast:
    case POp::AccelSendLiteral:
    case POp::AccelRecv:
      F(I.A);
      return;
    case POp::LoopBegin:
      F(I.A);
      F(I.B);
      F(I.C);
      return;
    case POp::LoopEnd:
      F(I.B);
      F(I.C);
      return;
    case POp::Load: {
      F(I.A);
      for (unsigned K = 0; K < I.Sub; ++K)
        F(Plan.SlotPool[static_cast<size_t>(I.Aux) + K]);
      return;
    }
    case POp::Store: {
      F(I.A);
      F(I.B);
      for (unsigned K = 0; K < I.Sub; ++K)
        F(Plan.SlotPool[static_cast<size_t>(I.Aux) + K]);
      return;
    }
    case POp::SubView: {
      F(I.A);
      ExecPlan::SubViewPlan &Info = Plan.SubViews[I.Aux];
      for (unsigned K = 0; K < Info.NumOffsets; ++K)
        F(Plan.SlotPool[static_cast<size_t>(Info.PoolOffset) + K]);
      return;
    }
    case POp::Generic: {
      ExecPlan::GenericPlan &G = Plan.Generics[I.Aux];
      for (ExecPlan::OperandPlan &P : G.Operands)
        F(P.Slot);
      for (Inst &B : G.Body)
        forEachRead(B, F);
      for (int32_t &Y : G.YieldSlots)
        F(Y);
      return;
    }
    }
  }

  /// The slot the instruction defines, or -1.
  static int32_t writeSlot(const Inst &I) {
    switch (I.Code) {
    case POp::ConstInt:
    case POp::ConstFloat:
    case POp::Binary:
    case POp::IndexCast:
    case POp::LoopBegin: // induction variable
    case POp::Alloc:
    case POp::Load:
    case POp::SubView:
    case POp::AccelSendLiteral:
    case POp::AccelSend:
    case POp::AccelSendDim:
    case POp::AccelSendIdx:
    case POp::AccelRecv:
    case POp::CallCopyToDma:
    case POp::CallCopyLiteralToDma:
      return I.Dst;
    default:
      return -1;
    }
  }

  /// True for instructions that charge no perf event at execution time.
  static bool isUncharged(POp Code) {
    return Code == POp::ConstInt || Code == POp::ConstFloat ||
           Code == POp::IndexCast;
  }

  //===--------------------------------------------------------------------===//
  // Constant and memref-size analyses
  //===--------------------------------------------------------------------===//

  /// Per-slot constant/size facts — the shared analysis type consumed by
  /// the verifier's proofs and the query functions below.
  using Analysis = analysis::SlotFacts;

  /// Evaluates the instruction's result given current constant facts;
  /// mirrors runSpan's arithmetic exactly (Binary computes in double and
  /// truncates back, like the walker). Delegates to the shared analysis.
  bool evalConst(const Inst &I, const Analysis &A, int64_t &Out) const {
    return analysis::evalConstDst(I, A, Out);
  }

  Analysis analyze(std::vector<Node> &Tree) {
    unsigned N = Plan.NumSlots;
    Analysis A(N);

    // Collect every defining instruction per slot. Loop nodes write their
    // induction variable (twice at runtime — begin and backedge — which is
    // modeled as an unevaluable writer). Generic body instructions write
    // body-local slots; body arguments are rebound per point.
    std::vector<std::vector<const Inst *>> Writers(N);
    std::vector<int8_t> Unknown(N, 0);
    auto note = [&](int32_t Slot, const Inst *Def) {
      if (Slot < 0)
        return;
      ++A.NumWriters[Slot];
      if (Def)
        Writers[Slot].push_back(Def);
      else
        Unknown[Slot] = 1;
    };
    walkInsts(Tree, [&](const Node &Nd) {
      if (Nd.IsLoop) {
        note(Nd.I.Dst, nullptr);
        return;
      }
      const Inst &I = Nd.I;
      if (I.Code == POp::Generic) {
        const ExecPlan::GenericPlan &G = Plan.Generics[I.Aux];
        for (int32_t S : G.BodyArgSlots)
          note(S, nullptr);
        for (const Inst &B : G.Body)
          note(writeSlot(B), &B);
        return;
      }
      note(writeSlot(I), &I);
    });
    // Arguments are memref parameters: unknown values.
    for (unsigned Idx = 0; Idx < Plan.NumArgs && Idx < N; ++Idx)
      Unknown[Idx] = 1;

    // Static element counts (subviews and allocs have static shapes).
    analysis::PlanView View(Plan);
    walkInsts(Tree, [&](const Node &Nd) {
      if (Nd.IsLoop)
        return;
      const Inst &I = Nd.I;
      int64_t Count = analysis::staticElementCount(View, I);
      if (Count < 0)
        return;
      int32_t Slot = I.Dst;
      if (Slot < 0)
        return;
      if (A.SizeKnown[Slot] && A.Count[Slot] != Count) {
        A.SizeKnown[Slot] = 0; // conflicting writers
        Unknown[Slot] = 1;
        return;
      }
      A.SizeKnown[Slot] = 1;
      A.Count[Slot] = Count;
    });

    // Fixpoint: a slot is constant when every writer evaluates to the
    // same value under the facts established so far. Knowledge only
    // grows, so the loop terminates.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned Slot = 0; Slot < N; ++Slot) {
        if (A.Known[Slot] || Unknown[Slot] || Writers[Slot].empty())
          continue;
        int64_t Value = 0;
        bool Ok = true, First = true;
        for (const Inst *Def : Writers[Slot]) {
          int64_t V = 0;
          if (!evalConst(*Def, A, V)) {
            Ok = false;
            break;
          }
          if (First) {
            Value = V;
            First = false;
          } else if (V != Value) {
            Ok = false;
            break;
          }
        }
        if (Ok) {
          A.Known[Slot] = 1;
          A.Value[Slot] = Value;
          Changed = true;
        }
      }
    }
    return A;
  }

  template <typename Fn> void walkInsts(std::vector<Node> &Tree, Fn &&F) {
    for (Node &N : Tree) {
      F(static_cast<const Node &>(N));
      if (N.IsLoop)
        walkInsts(N.Body, F);
    }
  }
  template <typename Fn>
  void walkInsts(const std::vector<Node> &Tree, Fn &&F) const {
    for (const Node &N : Tree) {
      F(N);
      if (N.IsLoop)
        walkInsts(N.Body, F);
    }
  }

  /// Constant trip count of a loop node, or -1 when unknown.
  int64_t tripCount(const Node &Loop, const Analysis &A) const {
    return analysis::constTripCount(Loop.I, A);
  }

  /// Constant staged-input-region range written by the instruction, if
  /// determinable.
  bool inputWriteRange(const Inst &I, const Analysis &A, Range &R) const {
    return analysis::inputWriteRange(I, A, R);
  }

  static bool isInputWrite(POp Code) {
    return Code == POp::CallCopyToDma || Code == POp::CallCopyLiteralToDma;
  }
  static bool isFusedSend(POp Code) { return Code == POp::CallSendFused; }
  static bool isAnySend(POp Code) {
    return Code == POp::CallStartSend || Code == POp::CallSendFused;
  }

  bool sendRange(const Inst &I, const Analysis &A, Range &R) const {
    return analysis::sendRange(I, A, R);
  }

  //===--------------------------------------------------------------------===//
  // fold
  //===--------------------------------------------------------------------===//

  bool foldPass(std::vector<Node> &Tree) {
    Analysis A = analyze(Tree);

    // Copy-propagation through index_cast: the cast's cell holds exactly
    // its operand's value, and every (SSA-dominated) read happens before
    // the operand can change — the only multi-writer slots are loop IVs,
    // which update strictly between iterations of their own loop while
    // all reads of the cast sit inside one iteration.
    std::vector<int32_t> Forward(Plan.NumSlots);
    for (unsigned S = 0; S < Plan.NumSlots; ++S)
      Forward[S] = static_cast<int32_t>(S);
    walkInsts(Tree, [&](const Node &Nd) {
      if (Nd.IsLoop)
        return;
      const Inst &I = Nd.I;
      if (I.Code == POp::IndexCast && I.Dst >= 0 &&
          A.NumWriters[I.Dst] == 1)
        Forward[I.Dst] = I.A;
    });
    auto resolve = [&](int32_t Slot) {
      // Chase chains of casts (bounded: the chain is acyclic in SSA).
      for (int Guard = 0; Guard < 8 && Forward[Slot] != Slot; ++Guard)
        Slot = Forward[Slot];
      return Slot;
    };

    // Canonical constants: scoped forward walk. A ConstInt defined at an
    // enclosing (dominating) position is the canonical slot for its
    // value; later reads of any slot known to hold that value are
    // redirected to it. Only references change — the executed sequence
    // and every perf charge stay bit-identical.
    bool Changed = false;
    std::vector<std::map<int64_t, int32_t>> Scopes(1);
    std::function<void(std::vector<Node> &)> walk =
        [&](std::vector<Node> &Body) {
          for (Node &Nd : Body) {
            auto rewrite = [&](int32_t &Slot) {
              int32_t Propagated = resolve(Slot);
              if (Propagated != Slot && !A.isConst(Slot)) {
                Slot = Propagated;
                ++Stats.FoldedOperands;
                Changed = true;
                return;
              }
              if (!A.isConst(Slot))
                return;
              int64_t V = A.Value[Slot];
              for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
                auto Found = It->find(V);
                if (Found != It->end()) {
                  if (Found->second != Slot) {
                    Slot = Found->second;
                    ++Stats.FoldedOperands;
                    Changed = true;
                  }
                  return;
                }
              }
            };
            if (Nd.I.Code == POp::Generic) {
              // Payload bodies are rebound per point; leave them alone.
            } else {
              forEachRead(Nd.I, rewrite);
            }
            if (!Nd.IsLoop && Nd.I.Code == POp::ConstInt &&
                Nd.I.Dst >= 0 && A.isConst(Nd.I.Dst))
              Scopes.back().try_emplace(A.Value[Nd.I.Dst], Nd.I.Dst);
            if (Nd.IsLoop) {
              Scopes.emplace_back();
              walk(Nd.Body);
              Scopes.pop_back();
            }
          }
        };
    walk(Tree);
    return Changed;
  }

  //===--------------------------------------------------------------------===//
  // dce
  //===--------------------------------------------------------------------===//

  void countReads(std::vector<Node> &Tree, std::vector<uint32_t> &Reads) {
    Reads.assign(Plan.NumSlots, 0);
    walkInsts(Tree, [&](const Node &Nd) {
      // Loop machinery reads the IV it writes; keep IVs alive.
      Node &Mutable = const_cast<Node &>(Nd);
      forEachRead(Mutable.I, [&](int32_t &Slot) {
        if (Slot >= 0)
          ++Reads[Slot];
      });
      if (Nd.IsLoop && Nd.I.Dst >= 0)
        ++Reads[Nd.I.Dst];
    });
  }

  bool dcePass(std::vector<Node> &Tree) {
    bool AnyChange = false;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      Analysis A = analyze(Tree);
      std::vector<uint32_t> Reads;
      countReads(Tree, Reads);

      std::function<void(std::vector<Node> &)> sweep =
          [&](std::vector<Node> &Body) {
            std::vector<Node> Kept;
            Kept.reserve(Body.size());
            for (size_t Idx = 0; Idx < Body.size(); ++Idx) {
              Node &Nd = Body[Idx];
              if (Nd.IsLoop) {
                // A constant zero-trip loop never executes its body and
                // charges nothing at the LoopBegin: removal is perfectly
                // counter-identical.
                if (tripCount(Nd, A) == 0) {
                  unsigned Removed = 0;
                  walkInsts(Nd.Body, [&](const Node &) { ++Removed; });
                  Stats.RemovedUnchargedInsts += Removed + 1;
                  Changed = AnyChange = true;
                  continue;
                }
                sweep(Nd.Body);
                Kept.push_back(std::move(Nd));
                continue;
              }
              const Inst &I = Nd.I;
              // Dead uncharged pure instructions: removing them changes
              // no executed charge and no observable value.
              if (isUncharged(I.Code) && I.Dst >= 0 &&
                  Reads[I.Dst] == 0) {
                ++Stats.RemovedUnchargedInsts;
                Changed = AnyChange = true;
                continue;
              }
              // Dead staging writes: a constant-range input-region write
              // whose bytes are fully overwritten (or re-initialized by
              // dma_init) before any send can stream them is
              // unobservable apart from its charges.
              Range W;
              if (isInputWrite(I.Code) &&
                  (I.Dst < 0 || Reads[I.Dst] == 0) &&
                  inputWriteRange(I, A, W) && deadAfter(Body, Idx, W, A)) {
                ++Stats.RemovedChargedInsts;
                Changed = AnyChange = true;
                continue;
              }
              Kept.push_back(std::move(Nd));
            }
            Body = std::move(Kept);
          };
      sweep(Tree);
    }
    return AnyChange;
  }

  /// True if write range \p W at \p Body[Idx] is fully overwritten before
  /// anything can read it. Only the same straight-line level is scanned;
  /// loops, accel ops and unknown-range region ops stop the scan
  /// conservatively.
  bool deadAfter(std::vector<Node> &Body, size_t Idx, const Range &W,
                 const Analysis &A) {
    for (size_t J = Idx + 1; J < Body.size(); ++J) {
      Node &Nd = Body[J];
      if (Nd.IsLoop)
        return false;
      const Inst &I = Nd.I;
      if (I.Code == POp::CallDmaInit)
        return true; // region re-initialized wholesale
      if (isInputWrite(I.Code)) {
        Range R;
        if (!inputWriteRange(I, A, R))
          return false;
        if (R.covers(W))
          return true;
        if (R.overlaps(W))
          return false; // partially clobbered: keep it simple, keep it
        continue;
      }
      if (isAnySend(I.Code)) {
        Range R;
        if (!sendRange(I, A, R) || R.overlaps(W))
          return false;
        continue;
      }
      if (I.Code == POp::AccelDmaInit || I.Code == POp::AccelSendLiteral ||
          I.Code == POp::AccelSend || I.Code == POp::AccelSendDim ||
          I.Code == POp::AccelSendIdx || I.Code == POp::AccelRecv)
        return false;
      // Pure/host instructions never read the staged region.
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // licm
  //===--------------------------------------------------------------------===//

  struct LoopFacts {
    std::set<int32_t> Written;
    std::vector<Range> InputWrites; // constant-range staging writes
    bool RegionUnknown = false;     // accel op / dma_init / unknown range
    bool HostMemWrite = false;      // store/copy/generic/copy_from/recv
  };

  void collectLoopFacts(std::vector<Node> &Body, const Analysis &A,
                        LoopFacts &Facts) {
    walkInsts(Body, [&](const Node &Nd) {
      if (Nd.IsLoop) {
        Facts.Written.insert(Nd.I.Dst);
        return;
      }
      const Inst &I = Nd.I;
      int32_t W = writeSlot(I);
      if (W >= 0)
        Facts.Written.insert(W);
      switch (I.Code) {
      case POp::Generic: {
        const ExecPlan::GenericPlan &G = Plan.Generics[I.Aux];
        for (int32_t S : G.BodyArgSlots)
          Facts.Written.insert(S);
        for (const Inst &B : G.Body) {
          int32_t BW = writeSlot(B);
          if (BW >= 0)
            Facts.Written.insert(BW);
        }
        Facts.HostMemWrite = true;
        break;
      }
      case POp::Store:
      case POp::Copy:
      case POp::CallCopyFromDma:
      case POp::AccelRecv:
        Facts.HostMemWrite = true;
        break;
      default:
        break;
      }
      if (isInputWrite(I.Code)) {
        Range R;
        if (inputWriteRange(I, A, R))
          Facts.InputWrites.push_back(R);
        else
          Facts.RegionUnknown = true;
      }
      if (isAnySend(I.Code)) {
        Range R;
        if (!sendRange(I, A, R))
          Facts.RegionUnknown = true;
      }
      if (I.Code == POp::CallDmaInit || I.Code == POp::AccelDmaInit ||
          I.Code == POp::AccelSendLiteral || I.Code == POp::AccelSend ||
          I.Code == POp::AccelSendDim || I.Code == POp::AccelSendIdx)
        Facts.RegionUnknown = true;
    });
  }

  bool licmPass(std::vector<Node> &Tree) {
    Analysis A = analyze(Tree);
    return licmOnBody(Tree, A);
  }

  bool licmOnBody(std::vector<Node> &Body, const Analysis &A) {
    bool Changed = false;
    for (size_t Idx = 0; Idx < Body.size(); ++Idx) {
      if (!Body[Idx].IsLoop)
        continue;
      // Innermost first, so hoisted code bubbles outward level by level
      // across pipeline rounds.
      if (licmOnBody(Body[Idx].Body, A))
        Changed = true;
      std::vector<Node> Hoisted;
      if (hoistFromLoop(Body[Idx], A, Hoisted)) {
        Body.insert(Body.begin() + static_cast<long>(Idx),
                    std::make_move_iterator(Hoisted.begin()),
                    std::make_move_iterator(Hoisted.end()));
        Idx += Hoisted.size();
        Changed = true;
      }
    }
    return Changed;
  }

  bool hoistFromLoop(Node &Loop, const Analysis &A,
                     std::vector<Node> &Hoisted) {
    LoopFacts Facts;
    collectLoopFacts(Loop.Body, A, Facts);
    // The loop's own induction variable is written by the loop node
    // itself, which the body walk doesn't see.
    Facts.Written.insert(Loop.I.Dst);
    int64_t Trip = tripCount(Loop, A);

    bool Changed = false;
    bool Repeat = true;
    while (Repeat) {
      Repeat = false;
      for (size_t Idx = 0; Idx < Loop.Body.size(); ++Idx) {
        Node &Nd = Loop.Body[Idx];
        if (Nd.IsLoop)
          continue;
        Inst &I = Nd.I;

        bool Invariant = true;
        forEachRead(I, [&](int32_t &Slot) {
          if (Slot >= 0 && Facts.Written.count(Slot))
            Invariant = false;
        });
        if (!Invariant)
          continue;

        bool DoHoist = false;
        bool Charged = false;
        if (isUncharged(I.Code)) {
          // Constants and index_casts charge nothing: re-executing them
          // per iteration versus once is invisible to every counter.
          DoHoist = true;
        } else if (I.Code == POp::Binary || I.Code == POp::SubView) {
          // Charged pure ops need a guaranteed execution: hoisting above
          // a possibly-zero-trip loop would add charges, not remove them.
          DoHoist = Trip >= 1;
          Charged = true;
        } else if (isInputWrite(I.Code)) {
          DoHoist = Trip >= 1 && !Facts.RegionUnknown;
          Charged = true;
          Range W{0, 0};
          if (DoHoist && !inputWriteRange(I, A, W))
            DoHoist = false;
          if (DoHoist) {
            // Idempotence: the write must be the only writer of its
            // range in the whole loop, so dropping the re-execution
            // leaves exactly the value every send observes.
            unsigned Overlaps = 0;
            for (const Range &R : Facts.InputWrites)
              if (R.overlaps(W))
                ++Overlaps;
            if (Overlaps != 1)
              DoHoist = false;
          }
          if (DoHoist && sendBeforeOverlaps(Loop.Body, Idx, W, A)) {
            // An overlapping send earlier in the body would, on the
            // first iteration, stream the pre-loop region content; the
            // hoisted write must not change what it sees.
            DoHoist = false;
          }
          if (DoHoist && I.Code == POp::CallCopyToDma &&
              Facts.HostMemWrite) {
            // The copy reads host memory; anything in the loop writing
            // host memory could alias its source. No alias analysis
            // here — stay conservative.
            DoHoist = false;
          }
        }
        if (!DoHoist)
          continue;

        if (Charged)
          ++Stats.HoistedChargedInsts;
        else
          ++Stats.HoistedUnchargedInsts;
        int32_t W = writeSlot(I);
        if (W >= 0)
          Facts.Written.erase(W);
        Hoisted.push_back(std::move(Nd));
        Loop.Body.erase(Loop.Body.begin() + static_cast<long>(Idx));
        --Idx;
        Changed = true;
        Repeat = true; // new invariants may have been exposed
      }
    }
    return Changed;
  }

  /// True if a send overlapping \p W executes before direct child
  /// \p Limit of \p Body on the first iteration.
  bool sendBeforeOverlaps(std::vector<Node> &Body, size_t Limit,
                          const Range &W, const Analysis &A) {
    bool Found = false;
    for (size_t K = 0; K < Limit && !Found; ++K) {
      auto check = [&](const Node &Nd) {
        if (Nd.IsLoop || Found)
          return;
        if (isAnySend(Nd.I.Code)) {
          Range R;
          if (!sendRange(Nd.I, A, R) || R.overlaps(W))
            Found = true;
        }
      };
      check(Body[K]);
      if (Body[K].IsLoop)
        walkInsts(Body[K].Body, check);
    }
    return Found;
  }

  //===--------------------------------------------------------------------===//
  // coalesce
  //===--------------------------------------------------------------------===//

  bool coalescePass(std::vector<Node> &Tree) {
    bool Changed = false;
    {
      Analysis A = analyze(Tree);
      if (flattenSingleTripLoops(Tree, A))
        Changed = true;
    }
    // Re-analyze: flattening turned IVs into constants, which is exactly
    // what exposes constant send ranges for merging.
    Analysis A = analyze(Tree);
    if (mergePreconditions(Tree, A)) {
      int64_t Capacity = inputRegionWords();
      if (Capacity > 0 && mergeSendsIn(Tree, A, Capacity))
        Changed = true;
    }
    return Changed;
  }

  /// Replaces constant single-trip loops by IV := lb plus the body. Drops
  /// one modeled loop-iteration charge per entered loop — strictly fewer
  /// instructions/branches, everything else untouched.
  bool flattenSingleTripLoops(std::vector<Node> &Body, const Analysis &A) {
    bool Changed = false;
    std::vector<Node> Out;
    Out.reserve(Body.size());
    for (Node &Nd : Body) {
      if (!Nd.IsLoop) {
        Out.push_back(std::move(Nd));
        continue;
      }
      if (flattenSingleTripLoops(Nd.Body, A))
        Changed = true;
      if (tripCount(Nd, A) != 1) {
        Out.push_back(std::move(Nd));
        continue;
      }
      Node IvDef;
      IvDef.I.Code = POp::ConstInt;
      IvDef.I.Dst = Nd.I.Dst;
      IvDef.I.Imm = A.Value[Nd.I.A];
      Out.push_back(std::move(IvDef));
      for (Node &Child : Nd.Body)
        Out.push_back(std::move(Child));
      ++Stats.FlattenedLoops;
      Changed = true;
    }
    Body = std::move(Out);
    return Changed;
  }

  int64_t inputRegionWords() const {
    return analysis::inputRegionWords(analysis::PlanView(Plan));
  }

  /// Global soundness precondition for merging: every send must stream
  /// only freshly staged words. Then relocating one send's staging
  /// behind another's range can never surface stale region content to a
  /// later transfer. Checked per send by walking backwards over its
  /// straight-line context (continuing in front of the enclosing loop,
  /// where hoisted staging lands) until the range is covered; writes
  /// contributed from outside a loop must be disjoint from every write
  /// inside it so iterations beyond the first see the same bytes.
  bool mergePreconditions(std::vector<Node> &Tree, const Analysis &A) {
    bool Ok = true;
    walkInsts(Tree, [&](const Node &Nd) {
      if (Nd.IsLoop || !Ok)
        return;
      switch (Nd.I.Code) {
      case POp::AccelDmaInit:
      case POp::AccelSendLiteral:
      case POp::AccelSend:
      case POp::AccelSendDim:
      case POp::AccelSendIdx:
      case POp::AccelRecv:
      case POp::CallStartSend: // unfused plan: stay out of its way
      case POp::CallWaitSend:
        Ok = false;
        return;
      default:
        break;
      }
    });
    if (!Ok)
      return false;
    return sendsFreshIn(Tree, nullptr, A);
  }

  struct BodyContext {
    std::vector<Node> *Body;
    size_t LoopIdx; // index of the loop node within *Body
    const BodyContext *Parent;
    const std::vector<Range> *LoopWrites; // const writes inside the loop
  };

  bool sendsFreshIn(std::vector<Node> &Body, const BodyContext *Ctx,
                    const Analysis &A) {
    for (size_t Idx = 0; Idx < Body.size(); ++Idx) {
      Node &Nd = Body[Idx];
      if (Nd.IsLoop) {
        std::vector<Range> Writes;
        bool Unknown = false;
        walkInsts(Nd.Body, [&](const Node &Sub) {
          if (Sub.IsLoop)
            return;
          if (isInputWrite(Sub.I.Code)) {
            Range R;
            if (inputWriteRange(Sub.I, A, R))
              Writes.push_back(R);
            else
              Unknown = true;
          }
        });
        if (Unknown)
          return false;
        BodyContext Inner{&Body, Idx, Ctx, &Writes};
        if (!sendsFreshIn(Nd.Body, &Inner, A))
          return false;
        continue;
      }
      if (!isFusedSend(Nd.I.Code))
        continue;
      Range S;
      if (!sendRange(Nd.I, A, S))
        return false;
      if (!coveredBackwards(&Body, Idx, S, Ctx, A))
        return false;
    }
    return true;
  }

  /// Walks backwards from \p Body[Idx] accumulating staged writes until
  /// \p Need is covered. dma_init covers everything (the region is
  /// re-initialized). Crossing out of a loop body continues right before
  /// the loop node; contributions gathered beyond that point must be
  /// disjoint from all writes inside the crossed loops (so iterations
  /// after the first observe identical bytes).
  bool coveredBackwards(std::vector<Node> *Body, size_t Idx, Range Need,
                        const BodyContext *Ctx, const Analysis &A) {
    std::vector<Range> Covered;
    auto isCovered = [&]() {
      // Interval union check over the (small) covered set.
      int64_t Pos = Need.Begin;
      bool Progress = true;
      while (Pos < Need.End && Progress) {
        Progress = false;
        for (const Range &R : Covered) {
          if (R.Begin <= Pos && Pos < R.End) {
            Pos = R.End;
            Progress = true;
          }
        }
      }
      return Pos >= Need.End;
    };
    std::vector<const std::vector<Range> *> CrossedWrites;
    for (;;) {
      for (size_t K = Idx; K-- > 0;) {
        Node &Nd = (*Body)[K];
        if (Nd.IsLoop)
          return false; // an intervening loop hides the staging order
        const Inst &I = Nd.I;
        if (I.Code == POp::CallDmaInit)
          return true; // freshly zeroed region
        if (isInputWrite(I.Code)) {
          Range R;
          if (!inputWriteRange(I, A, R))
            return false;
          for (const std::vector<Range> *LW : CrossedWrites)
            for (const Range &InLoop : *LW)
              if (InLoop.overlaps(R))
                return false;
          Covered.push_back(R);
          if (isCovered())
            return true;
        }
        // Sends only read; pure/host ops never touch the region.
      }
      if (!Ctx)
        return false;
      // Continue scanning in the parent, from just before the loop node
      // (where licm parks hoisted staging).
      CrossedWrites.push_back(Ctx->LoopWrites);
      Body = Ctx->Body;
      Idx = Ctx->LoopIdx;
      Ctx = Ctx->Parent;
    }
  }

  /// Merges adjacent fused sends separated only by the second send's
  /// constant-range staging (plus region-blind pure/host instructions).
  /// The second group's staged words are relocated to start right behind
  /// the first send's range, producing one burst that streams the exact
  /// same word sequence.
  bool mergeSendsIn(std::vector<Node> &Tree, Analysis &A,
                    int64_t Capacity) {
    bool Changed = false;
    std::function<void(std::vector<Node> &)> scan =
        [&](std::vector<Node> &Body) {
          for (Node &Nd : Body)
            if (Nd.IsLoop)
              scan(Nd.Body);
          bool Restart = true;
          while (Restart) {
            Restart = false;
            for (size_t I1 = 0; I1 < Body.size(); ++I1) {
              if (Body[I1].IsLoop || !isFusedSend(Body[I1].I.Code))
                continue;
              if (tryMergeAt(Body, I1, A, Capacity)) {
                Changed = true;
                Restart = true;
                // Analysis gained new constant slots.
                break;
              }
            }
          }
        };
    scan(Tree);
    return Changed;
  }

  bool tryMergeAt(std::vector<Node> &Body, size_t I1, Analysis &A,
                  int64_t Capacity) {
    Range S1;
    if (!sendRange(Body[I1].I, A, S1))
      return false;
    // Collect the second send's staging group.
    std::vector<size_t> Group;
    size_t I2 = 0;
    bool FoundSecond = false;
    for (size_t J = I1 + 1; J < Body.size(); ++J) {
      Node &Nd = Body[J];
      if (Nd.IsLoop)
        return false;
      const Inst &I = Nd.I;
      if (isFusedSend(I.Code)) {
        I2 = J;
        FoundSecond = true;
        break;
      }
      if (isInputWrite(I.Code)) {
        Range R;
        if (!inputWriteRange(I, A, R))
          return false;
        Group.push_back(J);
        continue;
      }
      switch (I.Code) {
      case POp::ConstInt:
      case POp::ConstFloat:
      case POp::Binary:
      case POp::IndexCast:
      case POp::Alloc:
      case POp::Dealloc:
      case POp::Load:
      case POp::Store:
      case POp::Copy:
      case POp::SubView:
      case POp::Generic:
        continue; // region-blind: streams later, reads/writes host only
      default:
        return false; // recv / dma_init / anything region-ordered
      }
    }
    if (!FoundSecond || Group.empty())
      return false;
    Range S2;
    if (!sendRange(Body[I2].I, A, S2))
      return false;
    int64_t L2 = S2.End - S2.Begin;
    if (L2 <= 0 || S1.End - S1.Begin <= 0)
      return false;
    if (S1.End + L2 > Capacity)
      return false;

    // The group must stage exactly the second send's range — otherwise
    // the merged burst would stream bytes the group never wrote.
    std::vector<Range> Ranges;
    for (size_t J : Group) {
      Range R;
      if (!inputWriteRange(Body[J].I, A, R))
        return false;
      if (R.Begin < S2.Begin || R.End > S2.End)
        return false;
      Ranges.push_back(R);
    }
    {
      int64_t Pos = S2.Begin;
      bool Progress = true;
      while (Pos < S2.End && Progress) {
        Progress = false;
        for (const Range &R : Ranges)
          if (R.Begin <= Pos && Pos < R.End) {
            Pos = R.End;
            Progress = true;
          }
      }
      if (Pos < S2.End)
        return false;
    }

    // Relocation rewrites the group's offsets and the second send's
    // operands; the group members' end-offset results change value, so
    // every read of them must be one of the rewritten positions.
    std::set<int32_t> GroupDsts;
    for (size_t J : Group)
      if (Body[J].I.Dst >= 0)
        GroupDsts.insert(Body[J].I.Dst);
    if (!GroupDsts.empty()) {
      std::map<int32_t, long> Outside;
      for (int32_t D : GroupDsts)
        Outside[D] = 0;
      // Count all reads, then subtract the rewritten positions.
      walkInsts(*TreeRoot, [&](const Node &Nd) {
        Node &Mutable = const_cast<Node &>(Nd);
        forEachRead(Mutable.I, [&](int32_t &Slot) {
          auto It = Outside.find(Slot);
          if (It != Outside.end())
            ++It->second;
        });
      });
      for (size_t J : Group) {
        auto It = Outside.find(Body[J].I.B);
        if (It != Outside.end())
          --It->second;
      }
      for (int32_t Slot : {Body[I2].I.A, Body[I2].I.B}) {
        auto It = Outside.find(Slot);
        if (It != Outside.end())
          --It->second;
      }
      for (auto &Entry : Outside)
        if (Entry.second != 0)
          return false;
    }

    // Perform the merge. New constants are uncharged, so the only
    // counter deltas are the dropped dmaStartSend/dmaWaitSendCompletion
    // charges and one DMA transfer — the word stream is unchanged.
    int64_t Delta = S1.End - S2.Begin;
    std::vector<Node> NewConsts;
    auto makeConst = [&](int64_t Value) {
      Node C;
      C.I.Code = POp::ConstInt;
      C.I.Dst = static_cast<int32_t>(Plan.NumSlots++);
      C.I.Imm = Value;
      NewConsts.push_back(std::move(C));
      return NewConsts.back().I.Dst;
    };
    for (size_t J : Group) {
      Range R;
      inputWriteRange(Body[J].I, A, R);
      Body[J].I.B = makeConst(R.Begin + Delta);
    }
    Inst &Merged = Body[I2].I;
    Merged.A = makeConst(S1.End + L2);
    Merged.B = Body[I1].I.B;

    std::vector<Node> Rebuilt;
    Rebuilt.reserve(Body.size() + NewConsts.size());
    for (size_t J = 0; J < Body.size(); ++J) {
      if (J == I1) {
        for (Node &C : NewConsts)
          Rebuilt.push_back(std::move(C));
        continue; // the first send is absorbed
      }
      Rebuilt.push_back(std::move(Body[J]));
    }
    Body = std::move(Rebuilt);
    ++Stats.CoalescedSends;
    // Extend the analysis for the new constant slots.
    A = analyze(*TreeRoot);
    return true;
  }

  ExecPlan &Plan;
  const PlanOptOptions &Options;
  PlanOptStats Stats;
  std::vector<Node> *TreeRoot = nullptr;
};

PlanOptStats PlanOptimizer::run() {
  if (!Options.any() || Plan.Program.empty())
    return Stats;
  std::vector<Node> Tree = buildTree();
  TreeRoot = &Tree;
  // Verify-each: re-flatten and run the static verifier after every pass
  // that changed the tree. The first failure records the offending pass
  // and aborts the pipeline, leaving the plan in the rejected state so
  // the caller can dump it next to the diagnostic.
  auto verifiedAfter = [&](const char *Pass) {
    if (!Options.VerifyEach)
      return true;
    commit(Tree);
    analysis::VerifyResult R = analysis::verifyPlan(Plan);
    if (R.Errors.empty())
      return true;
    Stats.VerifyError = R.Errors.front().Message;
    Stats.VerifyFailedPass = Pass;
    return false;
  };
  // Canonical order: fold exposes constants, licm hoists, coalesce
  // flattens+merges, dce sweeps the leftovers. Each pass is monotone, so
  // repeating until a full round is quiet terminates.
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    if (Options.Fold && foldPass(Tree)) {
      Changed = true;
      if (!verifiedAfter("fold")) {
        TreeRoot = nullptr;
        return Stats;
      }
    }
    if (Options.Licm && licmPass(Tree)) {
      Changed = true;
      if (!verifiedAfter("licm")) {
        TreeRoot = nullptr;
        return Stats;
      }
    }
    if (Options.Coalesce && coalescePass(Tree)) {
      Changed = true;
      if (!verifiedAfter("coalesce")) {
        TreeRoot = nullptr;
        return Stats;
      }
    }
    if (Options.Dce && dcePass(Tree)) {
      Changed = true;
      if (!verifiedAfter("dce")) {
        TreeRoot = nullptr;
        return Stats;
      }
    }
    if (!Changed)
      break;
  }
  commit(Tree);
  TreeRoot = nullptr;
  return Stats;
}

} // namespace opt
} // namespace exec
} // namespace axi4mlir

PlanOptStats opt::optimizePlan(ExecPlan &Plan,
                               const PlanOptOptions &Options) {
  PlanOptimizer Optimizer(Plan, Options);
  return Optimizer.run();
}
