//===- ManualDrivers.cpp - Hand-written baseline driver implementations ---===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/ManualDrivers.h"

#include "sim/AcceleratorModel.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using namespace axi4mlir::sim::opcodes;
using runtime::MemRefDesc;
using sim::MatMulAccelerator;

namespace {

/// Manual staging copy: a tight loop over a bare C array (no memref
/// descriptor recursion — the baselines "have no additional data transfer
/// overheads", Sec. IV-A). One load + one store + loop bookkeeping per
/// element.
class ManualStager {
public:
  explicit ManualStager(runtime::DmaRuntime &Runtime)
      : Runtime(Runtime), Soc(Runtime.soc()) {}

  int64_t literal(int32_t Value, int64_t Offset) {
    return Runtime.copyLiteralToDmaRegion(Value, Offset);
  }

  /// Copies a rank-2 tile A[Row0..Row0+Rows)[Col0..Col0+Cols).
  int64_t copyTile2D(const MemRefDesc &Source, int64_t Row0, int64_t Col0,
                     int64_t Rows, int64_t Cols, int64_t Offset) {
    sim::HostPerfModel &Perf = Soc.perf();
    uint32_t *Region = Soc.dma().inputRegion();
    for (int64_t R = 0; R < Rows; ++R) {
      Perf.onLoopIteration();
      for (int64_t C = 0; C < Cols; ++C) {
        Perf.onLoopIteration();
        int64_t Linear = Source.linearIndex({Row0 + R, Col0 + C});
        Perf.onArith(1);
        Perf.onScalarLoad(Source.addressOf(Linear), 4);
        Region[Offset] = Source.Buffer->Data[static_cast<size_t>(Linear)];
        Perf.onScalarStore(
            reinterpret_cast<uint64_t>(Region + Offset), 4);
        ++Offset;
      }
    }
    return Offset;
  }

  /// Accumulates (or overwrites) a rank-2 tile from the output region.
  void readTile2D(MemRefDesc &Dest, int64_t Row0, int64_t Col0,
                  int64_t Rows, int64_t Cols, int64_t Offset,
                  bool Accumulate) {
    sim::HostPerfModel &Perf = Soc.perf();
    uint32_t *Region = Soc.dma().outputRegion();
    for (int64_t R = 0; R < Rows; ++R) {
      Perf.onLoopIteration();
      for (int64_t C = 0; C < Cols; ++C) {
        Perf.onLoopIteration();
        int64_t Linear = Dest.linearIndex({Row0 + R, Col0 + C});
        Perf.onArith(1);
        Perf.onScalarLoad(reinterpret_cast<uint64_t>(Region + Offset), 4);
        uint32_t Word = Region[Offset];
        uint32_t &Slot = Dest.Buffer->Data[static_cast<size_t>(Linear)];
        if (Accumulate) {
          Perf.onScalarLoad(Dest.addressOf(Linear), 4);
          Perf.onArith(1);
          Slot = Dest.kind() == sim::ElemKind::F32
                     ? sim::floatToWord(sim::wordToFloat(Slot) +
                                        sim::wordToFloat(Word))
                     : static_cast<uint32_t>(static_cast<int32_t>(Slot) +
                                             static_cast<int32_t>(Word));
        } else {
          Slot = Word;
        }
        Perf.onScalarStore(Dest.addressOf(Linear), 4);
        ++Offset;
      }
    }
  }

  void send(int64_t Words) {
    Runtime.dmaStartSend(Words, 0);
    Runtime.dmaWaitSendCompletion();
  }
  void recv(int64_t Words) {
    Runtime.dmaStartRecv(Words, 0);
    Runtime.dmaWaitRecvCompletion();
  }

  runtime::DmaRuntime &Runtime;
  sim::SoC &Soc;
};

} // namespace

bool exec::runManualMatMul(runtime::DmaRuntime &Runtime,
                           const MemRefDesc &A, const MemRefDesc &B,
                           MemRefDesc &C, const ManualMatMulConfig &Config) {
  using V = MatMulAccelerator::Version;
  int64_t M = A.Sizes[0], K = A.Sizes[1], N = B.Sizes[1];
  int64_t TM = Config.TileM, TN = Config.TileN, TK = Config.TileK;
  assert(M % TM == 0 && N % TN == 0 && K % TK == 0 &&
         "manual driver requires tile-divisible problems");

  ManualStager Stage(Runtime);
  sim::HostPerfModel &Perf = Runtime.soc().perf();
  accel::DmaInitConfig Dma;
  Dma.InputBufferSize = 0x40000;
  Dma.OutputBufferSize = 0x40000;
  Runtime.dmaInit(Dma);

  // One-time accelerator init: reset (+ tile config for v4).
  {
    int64_t Off = Stage.literal(MM_RESET, 0);
    if (Config.Version == V::V4) {
      Off = Stage.literal(MM_CFG, Off);
      Off = Stage.literal(static_cast<int32_t>(TM), Off);
      Off = Stage.literal(static_cast<int32_t>(TK), Off);
      Off = Stage.literal(static_cast<int32_t>(TN), Off);
    }
    Stage.send(Off);
  }

  auto sendA = [&](int64_t M0, int64_t K0, int64_t Off) {
    Off = Stage.literal(MM_SA, Off);
    return Stage.copyTile2D(A, M0, K0, TM, TK, Off);
  };
  auto sendB = [&](int64_t K0, int64_t N0, int64_t Off) {
    Off = Stage.literal(MM_SB, Off);
    return Stage.copyTile2D(B, K0, N0, TK, TN, Off);
  };
  auto recvC = [&](int64_t M0, int64_t N0) {
    Stage.recv(TM * TN);
    Stage.readTile2D(C, M0, N0, TM, TN, /*Offset=*/0, /*Accumulate=*/true);
  };

  const std::string &Flow = Config.Flow;
  if (Flow == "Ns") {
    for (int64_t M0 = 0; M0 < M; M0 += TM) {
      Perf.onLoopIteration();
      for (int64_t N0 = 0; N0 < N; N0 += TN) {
        Perf.onLoopIteration();
        for (int64_t K0 = 0; K0 < K; K0 += TK) {
          Perf.onLoopIteration();
          // Fewest transfers: one batched send per tile iteration.
          int64_t Off = 0;
          if (Config.Version == V::V1) {
            Off = Stage.literal(MM_SASBCCRC, Off);
            Off = Stage.copyTile2D(A, M0, K0, TM, TK, Off);
            Off = Stage.copyTile2D(B, K0, N0, TK, TN, Off);
          } else if (Config.Version == V::V2) {
            Off = sendA(M0, K0, Off);
            Off = sendB(K0, N0, Off);
            Off = Stage.literal(MM_CC_RC, Off);
          } else {
            Off = sendA(M0, K0, Off);
            Off = sendB(K0, N0, Off);
            Off = Stage.literal(MM_CC, Off);
            Off = Stage.literal(MM_RC, Off);
          }
          Stage.send(Off);
          recvC(M0, N0);
        }
      }
    }
    return !Runtime.hadError();
  }

  if (Flow == "As") {
    assert(Config.Version != V::V1 && "v1 supports only Ns");
    for (int64_t M0 = 0; M0 < M; M0 += TM) {
      Perf.onLoopIteration();
      for (int64_t K0 = 0; K0 < K; K0 += TK) {
        Perf.onLoopIteration();
        Stage.send(sendA(M0, K0, 0)); // A stationary for the n sweep
        for (int64_t N0 = 0; N0 < N; N0 += TN) {
          Perf.onLoopIteration();
          int64_t Off = sendB(K0, N0, 0);
          Off = Stage.literal(
              Config.Version == V::V2 ? MM_CC_RC : MM_CC, Off);
          if (Config.Version != V::V2)
            Off = Stage.literal(MM_RC, Off);
          Stage.send(Off);
          recvC(M0, N0);
        }
      }
    }
    return !Runtime.hadError();
  }

  if (Flow == "Bs") {
    assert(Config.Version != V::V1 && "v1 supports only Ns");
    for (int64_t N0 = 0; N0 < N; N0 += TN) {
      Perf.onLoopIteration();
      for (int64_t K0 = 0; K0 < K; K0 += TK) {
        Perf.onLoopIteration();
        Stage.send(sendB(K0, N0, 0)); // B stationary for the m sweep
        for (int64_t M0 = 0; M0 < M; M0 += TM) {
          Perf.onLoopIteration();
          int64_t Off = sendA(M0, K0, 0);
          Off = Stage.literal(
              Config.Version == V::V2 ? MM_CC_RC : MM_CC, Off);
          if (Config.Version != V::V2)
            Off = Stage.literal(MM_RC, Off);
          Stage.send(Off);
          recvC(M0, N0);
        }
      }
    }
    return !Runtime.hadError();
  }

  assert(Flow == "Cs" && "unknown manual flow");
  assert((Config.Version == V::V3 || Config.Version == V::V4) &&
         "output-stationary needs a v3/v4 accelerator");
  for (int64_t M0 = 0; M0 < M; M0 += TM) {
    Perf.onLoopIteration();
    for (int64_t N0 = 0; N0 < N; N0 += TN) {
      Perf.onLoopIteration();
      for (int64_t K0 = 0; K0 < K; K0 += TK) {
        Perf.onLoopIteration();
        int64_t Off = sendA(M0, K0, 0);
        Off = sendB(K0, N0, Off);
        Off = Stage.literal(MM_CC, Off); // accumulate on-chip
        Stage.send(Off);
      }
      Stage.send(Stage.literal(MM_RC, 0));
      recvC(M0, N0);
    }
  }
  return !Runtime.hadError();
}

bool exec::runManualConv2D(runtime::DmaRuntime &Runtime,
                           const MemRefDesc &Input, const MemRefDesc &Filter,
                           MemRefDesc &Output, int64_t StrideH,
                           int64_t StrideW) {
  int64_t Batch = Output.Sizes[0], OutChannels = Output.Sizes[1];
  int64_t OutH = Output.Sizes[2], OutW = Output.Sizes[3];
  int64_t InChannels = Filter.Sizes[1], FilterH = Filter.Sizes[2],
          FilterW = Filter.Sizes[3];

  ManualStager Stage(Runtime);
  sim::HostPerfModel &Perf = Runtime.soc().perf();
  accel::DmaInitConfig Dma;
  Dma.InputBufferSize = 0x80000;
  Dma.OutputBufferSize = 0x80000;
  Runtime.dmaInit(Dma);

  // Configure the engine: filter size then input-channel count.
  {
    int64_t Off = Stage.literal(CONV_SET_FS, 0);
    Off = Stage.literal(static_cast<int32_t>(FilterH), Off);
    Off = Stage.literal(CONV_SET_IC, Off);
    Off = Stage.literal(static_cast<int32_t>(InChannels), Off);
    Stage.send(Off);
  }

  // Layer-specific bare-array copies (3-deep loops).
  auto copy3D = [&](const MemRefDesc &Source,
                    const std::vector<int64_t> &Base, int64_t Offset) {
    uint32_t *Region = Runtime.soc().dma().inputRegion();
    for (int64_t IC = 0; IC < InChannels; ++IC) {
      Perf.onLoopIteration();
      for (int64_t FH = 0; FH < FilterH; ++FH) {
        Perf.onLoopIteration();
        for (int64_t FW = 0; FW < FilterW; ++FW) {
          Perf.onLoopIteration();
          int64_t Linear = Source.linearIndex(
              {Base[0], Base[1] + IC, Base[2] + FH, Base[3] + FW});
          Perf.onArith(1);
          Perf.onScalarLoad(Source.addressOf(Linear), 4);
          Region[Offset] =
              Source.Buffer->Data[static_cast<size_t>(Linear)];
          Perf.onScalarStore(reinterpret_cast<uint64_t>(Region + Offset),
                             4);
          ++Offset;
        }
      }
    }
    return Offset;
  };

  for (int64_t B = 0; B < Batch; ++B) {
    Perf.onLoopIteration();
    for (int64_t OC = 0; OC < OutChannels; ++OC) {
      Perf.onLoopIteration();
      // Filter slice for this output channel (stationary).
      int64_t Off = Stage.literal(CONV_SF, 0);
      Off = copy3D(Filter, {OC, 0, 0, 0}, Off);
      Stage.send(Off);
      for (int64_t OH = 0; OH < OutH; ++OH) {
        Perf.onLoopIteration();
        for (int64_t OW = 0; OW < OutW; ++OW) {
          Perf.onLoopIteration();
          int64_t WindowOff = Stage.literal(CONV_SICO, 0);
          WindowOff =
              copy3D(Input, {B, 0, OH * StrideH, OW * StrideW}, WindowOff);
          Stage.send(WindowOff);
        }
      }
      // Whole output slice back, accumulated into O[b][oc].
      Stage.send(Stage.literal(CONV_RO, 0));
      Stage.recv(OutH * OutW);
      {
        uint32_t *Region = Runtime.soc().dma().outputRegion();
        int64_t Offset = 0;
        for (int64_t OH = 0; OH < OutH; ++OH) {
          Perf.onLoopIteration();
          for (int64_t OW = 0; OW < OutW; ++OW) {
            Perf.onLoopIteration();
            int64_t Linear = Output.linearIndex({B, OC, OH, OW});
            Perf.onArith(1);
            Perf.onScalarLoad(
                reinterpret_cast<uint64_t>(Region + Offset), 4);
            Perf.onScalarLoad(Output.addressOf(Linear), 4);
            Perf.onArith(1);
            uint32_t &Slot =
                Output.Buffer->Data[static_cast<size_t>(Linear)];
            uint32_t Word = Region[Offset];
            Slot = Output.kind() == sim::ElemKind::F32
                       ? sim::floatToWord(sim::wordToFloat(Slot) +
                                          sim::wordToFloat(Word))
                       : static_cast<uint32_t>(
                             static_cast<int32_t>(Slot) +
                             static_cast<int32_t>(Word));
            Perf.onScalarStore(Output.addressOf(Linear), 4);
            ++Offset;
          }
        }
      }
    }
  }
  return !Runtime.hadError();
}
