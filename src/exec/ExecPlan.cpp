//===- ExecPlan.cpp - Compiled host-code execution plans ------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecPlan.h"

#include "dialects/Accel.h"
#include "dialects/Arith.h"
#include "dialects/Linalg.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"
#include "runtime/StridedCopy.h"
#include "transforms/Passes.h"

#include <cassert>
#include <map>
#include <ostream>
#include <sstream>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

namespace axi4mlir {
namespace exec {

/// Lowers operations into ExecPlan instructions, numbering SSA values into
/// dense slots as it goes.
struct ExecPlanBuilder {
  ExecPlan &Plan;
  std::map<detail::ValueImpl *, int32_t> Slots;
  std::string Error;

  explicit ExecPlanBuilder(ExecPlan &Plan) : Plan(Plan) {}

  int32_t slot(Value V) {
    auto Inserted =
        Slots.try_emplace(V.getImpl(), static_cast<int32_t>(Plan.NumSlots));
    if (Inserted.second)
      ++Plan.NumSlots;
    return Inserted.first->second;
  }

  LogicalResult fail(std::string Message) {
    if (Error.empty())
      Error = std::move(Message);
    return failure();
  }

  static bool isTerminator(const std::string &Name) {
    return Name == "func.return" || Name == "scf.yield" ||
           Name == "linalg.yield";
  }

  /// Compiles \p TheBlock's operations up to (excluding) the first
  /// terminator, which is reported through \p Terminator.
  LogicalResult compileBlock(Block &TheBlock, std::vector<ExecPlan::Inst> &Out,
                             Operation **Terminator) {
    *Terminator = nullptr;
    for (Operation *Op : TheBlock.getOperations()) {
      if (isTerminator(Op->getName())) {
        *Terminator = Op;
        return success();
      }
      if (failed(compileOp(Op, Out)))
        return failure();
    }
    return success();
  }

  LogicalResult compileOp(Operation *Op, std::vector<ExecPlan::Inst> &Out);
  LogicalResult compileGeneric(Operation *Op,
                               std::vector<ExecPlan::Inst> &Out);
  LogicalResult compileAccel(Operation *Op, std::vector<ExecPlan::Inst> &Out);
  LogicalResult compileCall(Operation *Op, std::vector<ExecPlan::Inst> &Out);
};

} // namespace exec
} // namespace axi4mlir

LogicalResult ExecPlanBuilder::compileOp(Operation *Op,
                                         std::vector<ExecPlan::Inst> &Out) {
  using Inst = ExecPlan::Inst;
  using PlanOp = ExecPlan::Op;
  const std::string &Name = Op->getName();
  Inst I;

  //===--------------------------------------------------------------------===//
  // arith
  //===--------------------------------------------------------------------===//
  if (Name == "arith.constant") {
    Attribute ValueAttr = Op->getAttr("value");
    I.Dst = slot(Op->getResult(0));
    if (ValueAttr.getKind() == Attribute::Kind::Float) {
      I.Code = PlanOp::ConstFloat;
      I.FImm = ValueAttr.getFloatValue();
    } else {
      I.Code = PlanOp::ConstInt;
      I.Imm = ValueAttr.getIntValue();
    }
    Out.push_back(I);
    return success();
  }
  if (Name.rfind("arith.", 0) == 0 && Op->getNumOperands() == 2) {
    ExecPlan::BinKind Kind;
    if (Name == "arith.addf" || Name == "arith.addi")
      Kind = ExecPlan::BinKind::Add;
    else if (Name == "arith.mulf" || Name == "arith.muli")
      Kind = ExecPlan::BinKind::Mul;
    else if (Name == "arith.subf" || Name == "arith.subi")
      Kind = ExecPlan::BinKind::Sub;
    else if (Name == "arith.divf")
      Kind = ExecPlan::BinKind::Div;
    else if (Name == "arith.maxf")
      Kind = ExecPlan::BinKind::Max;
    else
      return fail("unsupported arith op '" + Name + "'");
    I.Code = PlanOp::Binary;
    I.Sub = static_cast<uint8_t>(Kind);
    if (Op->getResult(0).getType().isFloat())
      I.Sub |= ExecPlan::BinFloatResult;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }
  if (Name == "arith.index_cast") {
    I.Code = PlanOp::IndexCast;
    I.A = slot(Op->getOperand(0));
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }

  //===--------------------------------------------------------------------===//
  // scf.for: flattened to LoopBegin/LoopEnd over a contiguous body span.
  //===--------------------------------------------------------------------===//
  if (Name == scf::ForOp::OpName) {
    scf::ForOp For(Op);
    I.Code = PlanOp::LoopBegin;
    I.A = slot(For.getLowerBound());
    I.B = slot(For.getUpperBound());
    I.C = slot(For.getStep());
    I.Dst = slot(For.getInductionVar());
    size_t BeginPc = Out.size();
    Out.push_back(I);
    Operation *Terminator = nullptr;
    if (failed(compileBlock(*For.getBody(), Out, &Terminator)))
      return failure();
    Inst End;
    End.Code = PlanOp::LoopEnd;
    End.Dst = I.Dst;
    End.B = I.B;
    End.C = I.C;
    End.Aux = static_cast<int32_t>(BeginPc + 1);
    Out.push_back(End);
    Out[BeginPc].Aux = static_cast<int32_t>(Out.size());
    return success();
  }

  //===--------------------------------------------------------------------===//
  // memref
  //===--------------------------------------------------------------------===//
  if (Name == memref::AllocOp::OpName) {
    memref::AllocOp Alloc(Op);
    MemRefType Ty = Alloc.getType();
    ExecPlan::AllocPlan Info;
    Info.Shape = Ty.getShape();
    Info.Kind = Ty.getElementType().isFloat() ? sim::ElemKind::F32
                                              : sim::ElemKind::I32;
    I.Code = PlanOp::Alloc;
    I.Aux = static_cast<int32_t>(Plan.Allocs.size());
    I.Dst = slot(Op->getResult(0));
    Plan.Allocs.push_back(std::move(Info));
    Out.push_back(I);
    return success();
  }
  if (Name == memref::DeallocOp::OpName) {
    I.Code = PlanOp::Dealloc;
    Out.push_back(I);
    return success();
  }
  if (Name == memref::LoadOp::OpName || Name == memref::StoreOp::OpName) {
    bool IsLoad = Name == memref::LoadOp::OpName;
    I.Code = IsLoad ? PlanOp::Load : PlanOp::Store;
    unsigned FirstIndex = IsLoad ? 1 : 2;
    if (IsLoad) {
      I.A = slot(Op->getOperand(0));
      I.Dst = slot(Op->getResult(0));
    } else {
      I.A = slot(Op->getOperand(0)); // stored value
      I.B = slot(Op->getOperand(1)); // memref
    }
    I.Aux = static_cast<int32_t>(Plan.SlotPool.size());
    for (unsigned Idx = FirstIndex; Idx < Op->getNumOperands(); ++Idx)
      Plan.SlotPool.push_back(slot(Op->getOperand(Idx)));
    I.Sub = static_cast<uint8_t>(Op->getNumOperands() - FirstIndex);
    Out.push_back(I);
    return success();
  }
  if (Name == memref::CopyOp::OpName) {
    I.Code = PlanOp::Copy;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    Out.push_back(I);
    return success();
  }
  if (Name == memref::SubViewOp::OpName) {
    memref::SubViewOp SubView(Op);
    ExecPlan::SubViewPlan Info;
    Info.PoolOffset = static_cast<int32_t>(Plan.SlotPool.size());
    for (unsigned Idx = 1; Idx < Op->getNumOperands(); ++Idx)
      Plan.SlotPool.push_back(slot(Op->getOperand(Idx)));
    Info.NumOffsets = Op->getNumOperands() - 1;
    Info.StaticSizes = SubView.getStaticSizes();
    I.Code = PlanOp::SubView;
    I.A = slot(Op->getOperand(0));
    I.Aux = static_cast<int32_t>(Plan.SubViews.size());
    I.Dst = slot(Op->getResult(0));
    Plan.SubViews.push_back(std::move(Info));
    Out.push_back(I);
    return success();
  }

  //===--------------------------------------------------------------------===//
  // linalg / accel / calls
  //===--------------------------------------------------------------------===//
  if (Name == linalg::GenericOp::OpName)
    return compileGeneric(Op, Out);
  if (Name.rfind("accel.", 0) == 0)
    return compileAccel(Op, Out);
  if (Name == func::CallOp::OpName)
    return compileCall(Op, Out);

  return fail("interpreter: unsupported operation '" + Name + "'");
}

LogicalResult
ExecPlanBuilder::compileGeneric(Operation *Op,
                                std::vector<ExecPlan::Inst> &Out) {
  linalg::GenericOp Generic(Op);
  ExecPlan::GenericPlan G;
  G.Ranges = Generic.getStaticLoopRanges();
  if (G.Ranges.empty())
    return fail("linalg.generic with non-static loop ranges");
  if (G.Ranges.size() > runtime::detail::MaxCopyRank)
    return fail("linalg.generic loop nest deeper than the supported " +
                std::to_string(runtime::detail::MaxCopyRank) + " loops");
  G.NumInputs = Generic.getNumInputs();

  for (unsigned Idx = 0; Idx < Op->getNumOperands(); ++Idx) {
    ExecPlan::OperandPlan P;
    P.Slot = slot(Op->getOperand(Idx));
    AffineMap Map = Generic.getIndexingMap(Idx);
    P.Projected = Map.isProjectedPermutation();
    if (P.Projected) {
      for (unsigned R = 0; R < Map.getNumResults(); ++R)
        P.DimPos.push_back(Map.getResult(R).getPosition());
    } else {
      P.Exprs = Map.getResults();
    }
    G.Operands.push_back(std::move(P));
  }

  Block &Body = Generic.getBody();
  for (unsigned Idx = 0; Idx < Body.getNumArguments(); ++Idx)
    G.BodyArgSlots.push_back(slot(Body.getArgument(Idx)));

  Operation *Terminator = nullptr;
  if (failed(compileBlock(Body, G.Body, &Terminator)))
    return failure();
  if (Terminator && Terminator->getName() == linalg::YieldOp::OpName)
    for (unsigned O = 0; O < Terminator->getNumOperands(); ++O)
      G.YieldSlots.push_back(slot(Terminator->getOperand(O)));

  ExecPlan::Inst I;
  I.Code = ExecPlan::Op::Generic;
  I.Aux = static_cast<int32_t>(Plan.Generics.size());
  Plan.Generics.push_back(std::move(G));
  Out.push_back(I);
  return success();
}

LogicalResult ExecPlanBuilder::compileAccel(Operation *Op,
                                            std::vector<ExecPlan::Inst> &Out) {
  using PlanOp = ExecPlan::Op;
  const std::string &Name = Op->getName();
  ExecPlan::Inst I;

  if (Name == accel::DmaInitOp::OpName) {
    I.Code = PlanOp::AccelDmaInit;
    I.Aux = static_cast<int32_t>(Plan.DmaConfigs.size());
    Plan.DmaConfigs.push_back(accel::DmaInitOp(Op).getConfig());
    Out.push_back(I);
    return success();
  }
  if (Name == accel::SendLiteralOp::OpName) {
    I.Code = PlanOp::AccelSendLiteral;
    I.A = slot(Op->getOperand(0));
    I.Imm = Op->getIntAttr("literal");
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }
  if (Name == accel::SendOp::OpName) {
    I.Code = PlanOp::AccelSend;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }
  if (Name == accel::SendDimOp::OpName) {
    I.Code = PlanOp::AccelSendDim;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    if (Op->hasAttr("static_size")) {
      I.Sub = 1;
      I.Imm = Op->getIntAttr("static_size");
    } else {
      I.Imm = Op->getIntAttr("dim");
    }
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }
  if (Name == accel::SendIdxOp::OpName) {
    I.Code = PlanOp::AccelSendIdx;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }
  if (Name == accel::RecvOp::OpName) {
    I.Code = PlanOp::AccelRecv;
    I.A = slot(Op->getOperand(0));
    I.Sub = accel::RecvOp(Op).getMode() == "accumulate" ? 1 : 0;
    I.Dst = slot(Op->getResult(0));
    Out.push_back(I);
    return success();
  }
  return fail("unsupported accel op '" + Name + "'");
}

LogicalResult ExecPlanBuilder::compileCall(Operation *Op,
                                           std::vector<ExecPlan::Inst> &Out) {
  using PlanOp = ExecPlan::Op;
  namespace rt = transforms::rtcall;
  const std::string Callee = func::CallOp(Op).getCallee();
  ExecPlan::Inst I;

  if (Callee == rt::DmaInit) {
    I.Code = PlanOp::CallDmaInit;
    I.Aux = static_cast<int32_t>(Plan.DmaConfigs.size());
    Plan.DmaConfigs.push_back(Op->getAttr("dma_config").getDmaConfigValue());
  } else if (Callee == rt::CopyToDma) {
    I.Code = PlanOp::CallCopyToDma;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    I.Dst = slot(Op->getResult(0));
  } else if (Callee == rt::CopyLiteralToDma || Callee == rt::CopyIndexToDma) {
    I.Code = PlanOp::CallCopyLiteralToDma;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    I.Dst = slot(Op->getResult(0));
  } else if (Callee == rt::StartSend) {
    I.Code = PlanOp::CallStartSend;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
  } else if (Callee == rt::WaitSend) {
    I.Code = PlanOp::CallWaitSend;
  } else if (Callee == rt::StartRecv) {
    I.Code = PlanOp::CallStartRecv;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
  } else if (Callee == rt::WaitRecv) {
    I.Code = PlanOp::CallWaitRecv;
  } else if (Callee == rt::CopyFromDma) {
    I.Code = PlanOp::CallCopyFromDma;
    I.A = slot(Op->getOperand(0));
    I.B = slot(Op->getOperand(1));
    I.Sub = Op->getAttr("accumulate").getIntValue() != 0 ? 1 : 0;
  } else {
    return fail("unknown runtime callee '" + Callee + "'");
  }
  Out.push_back(I);
  return success();
}

/// Peephole over the flat program: an axirt start_send immediately
/// followed by its wait_send (the only shape convert-accel-to-runtime
/// emits for the blocking driver) collapses into one fused instruction;
/// likewise for recv. Loop PC targets are remapped; a deleted wait is
/// never a jump target (it always sits right after its start, which a
/// LoopBegin/LoopEnd boundary would separate).
void ExecPlan::fuseTransferPairs(std::vector<ExecPlan::Inst> &Program,
                                 unsigned &FusedSends, unsigned &FusedRecvs) {
  std::vector<int32_t> NewIndex(Program.size() + 1, 0);
  std::vector<ExecPlan::Inst> Out;
  Out.reserve(Program.size());
  for (size_t Pc = 0; Pc < Program.size(); ++Pc) {
    NewIndex[Pc] = static_cast<int32_t>(Out.size());
    ExecPlan::Inst I = Program[Pc];
    bool FuseSend = I.Code == Op::CallStartSend &&
                    Pc + 1 < Program.size() &&
                    Program[Pc + 1].Code == Op::CallWaitSend;
    bool FuseRecv = I.Code == Op::CallStartRecv &&
                    Pc + 1 < Program.size() &&
                    Program[Pc + 1].Code == Op::CallWaitRecv;
    if (FuseSend || FuseRecv) {
      I.Code = FuseSend ? Op::CallSendFused : Op::CallRecvFused;
      (FuseSend ? FusedSends : FusedRecvs) += 1;
      Out.push_back(I);
      NewIndex[Pc + 1] = static_cast<int32_t>(Out.size());
      ++Pc; // the wait is absorbed
      continue;
    }
    Out.push_back(I);
  }
  NewIndex[Program.size()] = static_cast<int32_t>(Out.size());
  for (ExecPlan::Inst &I : Out)
    if (I.Code == Op::LoopBegin || I.Code == Op::LoopEnd)
      I.Aux = NewIndex[I.Aux];
  Program = std::move(Out);
}

std::unique_ptr<ExecPlan> ExecPlan::compile(func::FuncOp Func,
                                            std::string &Error,
                                            bool FuseTransferPairs) {
  std::unique_ptr<ExecPlan> Plan(new ExecPlan());
  ExecPlanBuilder Builder(*Plan);
  Plan->FuncName = Func.getFuncName();
  Block &Entry = Func.getBody();
  Plan->NumArgs = Entry.getNumArguments();
  // Arguments occupy the first slots in order.
  for (unsigned Idx = 0; Idx < Plan->NumArgs; ++Idx)
    Builder.slot(Entry.getArgument(Idx));
  Operation *Terminator = nullptr;
  if (failed(Builder.compileBlock(Entry, Plan->Program, &Terminator))) {
    Error = Builder.Error.empty() ? "plan compilation failure"
                                  : Builder.Error;
    return nullptr;
  }
  if (FuseTransferPairs)
    fuseTransferPairs(Plan->Program, Plan->FusedSends, Plan->FusedRecvs);
  return Plan;
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

namespace {

/// Binary-op mnemonic for Inst::Sub.
const char *binName(uint8_t Sub) {
  switch (Sub & 0x7) {
  case 0:
    return "add";
  case 1:
    return "mul";
  case 2:
    return "sub";
  case 3:
    return "div";
  case 4:
    return "max";
  default:
    return "bin?";
  }
}

void printIndexList(std::ostream &OS, const std::vector<int32_t> &Pool,
                    int32_t Offset, uint32_t Count) {
  OS << '[';
  for (uint32_t K = 0; K < Count; ++K) {
    if (K)
      OS << ", ";
    OS << '%' << Pool[static_cast<size_t>(Offset) + K];
  }
  OS << ']';
}

} // namespace

void ExecPlan::print(std::ostream &OS) const {
  OS << "plan @" << FuncName << " args=" << NumArgs << " slots=" << NumSlots
     << " insts=" << Program.size() << "\n";
  for (size_t Pc = 0; Pc < Program.size(); ++Pc) {
    const Inst &I = Program[Pc];
    OS << "  ";
    // Fixed-width PC keeps goldens aligned without depending on locale.
    if (Pc < 10)
      OS << ' ';
    if (Pc < 100)
      OS << ' ';
    OS << Pc << ": ";
    switch (I.Code) {
    case Op::ConstInt:
      OS << '%' << I.Dst << " = const.i " << I.Imm;
      break;
    case Op::ConstFloat: {
      std::ostringstream Tmp;
      Tmp << I.FImm;
      OS << '%' << I.Dst << " = const.f " << Tmp.str();
      break;
    }
    case Op::Binary:
      OS << '%' << I.Dst << " = " << binName(I.Sub)
         << ((I.Sub & BinFloatResult) ? ".f %" : ".i %") << I.A << ", %"
         << I.B;
      break;
    case Op::IndexCast:
      OS << '%' << I.Dst << " = index_cast %" << I.A;
      break;
    case Op::LoopBegin:
      OS << "loop %" << I.Dst << " = [%" << I.A << ", %" << I.B << ") step %"
         << I.C << " -> @" << I.Aux;
      break;
    case Op::LoopEnd:
      OS << "end -> @" << I.Aux;
      break;
    case Op::Alloc: {
      const AllocPlan &Info = Allocs[I.Aux];
      OS << '%' << I.Dst << " = alloc ";
      for (int64_t Dim : Info.Shape)
        OS << Dim << 'x';
      OS << (Info.Kind == sim::ElemKind::F32 ? "f32" : "i32");
      break;
    }
    case Op::Dealloc:
      OS << "dealloc";
      break;
    case Op::Load:
      OS << '%' << I.Dst << " = load %" << I.A;
      printIndexList(OS, SlotPool, I.Aux, I.Sub);
      break;
    case Op::Store:
      OS << "store %" << I.A << " -> %" << I.B;
      printIndexList(OS, SlotPool, I.Aux, I.Sub);
      break;
    case Op::Copy:
      OS << "copy %" << I.A << " -> %" << I.B;
      break;
    case Op::SubView: {
      const SubViewPlan &Info = SubViews[I.Aux];
      OS << '%' << I.Dst << " = subview %" << I.A;
      printIndexList(OS, SlotPool, Info.PoolOffset, Info.NumOffsets);
      OS << " sizes=[";
      for (size_t K = 0; K < Info.StaticSizes.size(); ++K)
        OS << (K ? ", " : "") << Info.StaticSizes[K];
      OS << ']';
      break;
    }
    case Op::Generic: {
      const GenericPlan &G = Generics[I.Aux];
      OS << "generic ranges=[";
      for (size_t K = 0; K < G.Ranges.size(); ++K)
        OS << (K ? ", " : "") << G.Ranges[K];
      OS << "] operands=[";
      for (size_t K = 0; K < G.Operands.size(); ++K)
        OS << (K ? ", " : "") << '%' << G.Operands[K].Slot;
      OS << "] body=" << G.Body.size();
      break;
    }
    case Op::AccelDmaInit:
      OS << "accel.dma_init #" << I.Aux;
      break;
    case Op::AccelSendLiteral:
      OS << '%' << I.Dst << " = accel.send_literal " << I.Imm << " @ %"
         << I.A;
      break;
    case Op::AccelSend:
      OS << '%' << I.Dst << " = accel.send %" << I.A << " @ %" << I.B;
      break;
    case Op::AccelSendDim:
      OS << '%' << I.Dst << " = accel.send_dim %" << I.A
         << (I.Sub ? " size=" : " dim=") << I.Imm << " @ %" << I.B;
      break;
    case Op::AccelSendIdx:
      OS << '%' << I.Dst << " = accel.send_idx %" << I.A << " @ %" << I.B;
      break;
    case Op::AccelRecv:
      OS << '%' << I.Dst << " = accel.recv %" << I.A
         << (I.Sub ? " accumulate" : "");
      break;
    case Op::CallDmaInit:
      OS << "dma_init #" << I.Aux;
      break;
    case Op::CallCopyToDma:
      OS << '%' << I.Dst << " = copy_to_dma %" << I.A << " @ %" << I.B;
      break;
    case Op::CallCopyLiteralToDma:
      OS << '%' << I.Dst << " = copy_literal_to_dma %" << I.A << " @ %"
         << I.B;
      break;
    case Op::CallStartSend:
      OS << "start_send end=%" << I.A << " off=%" << I.B;
      break;
    case Op::CallWaitSend:
      OS << "wait_send";
      break;
    case Op::CallStartRecv:
      OS << "start_recv len=%" << I.A << " off=%" << I.B;
      break;
    case Op::CallWaitRecv:
      OS << "wait_recv";
      break;
    case Op::CallCopyFromDma:
      OS << "copy_from_dma %" << I.A << " @ %" << I.B
         << (I.Sub ? " accumulate" : "");
      break;
    case Op::CallSendFused:
      OS << "send end=%" << I.A << " off=%" << I.B;
      break;
    case Op::CallRecvFused:
      OS << "recv len=%" << I.A << " off=%" << I.B;
      break;
    }
    OS << "\n";
  }
}

std::string ExecPlan::printToString() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

struct ExecPlan::ExecState {
  sim::SoC &Soc;
  runtime::DmaRuntime *Runtime;
  std::vector<Cell> Cells;
  std::vector<int64_t> Scratch; ///< Reused subview-offset buffer.
  std::string Error;

  ExecState(sim::SoC &Soc, runtime::DmaRuntime *Runtime)
      : Soc(Soc), Runtime(Runtime) {}

  LogicalResult fail(std::string Message) {
    if (Error.empty())
      Error = std::move(Message);
    return failure();
  }
};

namespace {

/// Word -> dynamic value / dynamic value -> word, matching the walker's
/// load/store conversions exactly. Templated so the anonymous namespace
/// can name ExecPlan's private Cell type through deduction.
template <typename CellT> inline void wordToCellImpl(uint32_t Word, bool IsF32, CellT &C) {
  if (IsF32) {
    C.Tag = CellT::Kind::Float;
    C.F = static_cast<double>(sim::wordToFloat(Word));
  } else {
    C.Tag = CellT::Kind::Int;
    C.I = static_cast<int32_t>(Word);
  }
}

template <typename CellT> inline uint32_t cellToWordImpl(const CellT &C, bool IsF32) {
  if (IsF32)
    return sim::floatToWord(static_cast<float>(
        C.Tag == CellT::Kind::Float ? C.F : static_cast<double>(C.I)));
  return static_cast<uint32_t>(static_cast<int32_t>(
      C.Tag == CellT::Kind::Float ? static_cast<int64_t>(C.F) : C.I));
}

} // namespace

LogicalResult ExecPlan::runSpan(const std::vector<Inst> &Code,
                                ExecState &S) const {
  sim::HostPerfModel &Perf = S.Soc.perf();
  for (size_t Pc = 0; Pc < Code.size(); ++Pc) {
    const Inst &I = Code[Pc];
    switch (I.Code) {
    case Op::ConstInt: {
      Cell &C = S.Cells[I.Dst];
      C.Tag = Cell::Kind::Int;
      C.I = I.Imm;
      break;
    }
    case Op::ConstFloat: {
      Cell &C = S.Cells[I.Dst];
      C.Tag = Cell::Kind::Float;
      C.F = I.FImm;
      break;
    }
    case Op::Binary: {
      const Cell &LHS = S.Cells[I.A];
      const Cell &RHS = S.Cells[I.B];
      Perf.onArith(1);
      // The LHS tag selects the interpretation of both operands, exactly
      // as in the legacy walker.
      bool IsFloat = LHS.Tag == Cell::Kind::Float;
      double A = IsFloat ? LHS.F : static_cast<double>(LHS.I);
      double B = IsFloat ? RHS.F : static_cast<double>(RHS.I);
      double R = 0;
      switch (static_cast<BinKind>(I.Sub & 0x7)) {
      case BinKind::Add:
        R = A + B;
        break;
      case BinKind::Mul:
        R = A * B;
        break;
      case BinKind::Sub:
        R = A - B;
        break;
      case BinKind::Div:
        R = A / B;
        break;
      case BinKind::Max:
        R = A > B ? A : B;
        break;
      }
      Cell &D = S.Cells[I.Dst];
      if (I.Sub & BinFloatResult) {
        D.Tag = Cell::Kind::Float;
        D.F = R;
      } else {
        D.Tag = Cell::Kind::Int;
        D.I = static_cast<int64_t>(R);
      }
      break;
    }
    case Op::IndexCast: {
      S.Cells[I.Dst] = S.Cells[I.A];
      break;
    }
    case Op::LoopBegin: {
      int64_t LowerBound = S.Cells[I.A].I;
      int64_t UpperBound = S.Cells[I.B].I;
      int64_t Step = S.Cells[I.C].I;
      if (Step <= 0)
        return S.fail("scf.for requires a positive step");
      if (LowerBound >= UpperBound) {
        Pc = static_cast<size_t>(I.Aux) - 1; // continue after LoopEnd
        break;
      }
      Perf.onLoopIteration();
      Cell &Iv = S.Cells[I.Dst];
      Iv.Tag = Cell::Kind::Int;
      Iv.I = LowerBound;
      break;
    }
    case Op::LoopEnd: {
      Cell &Iv = S.Cells[I.Dst];
      int64_t Next = Iv.I + S.Cells[I.C].I;
      if (Next < S.Cells[I.B].I) {
        Perf.onLoopIteration();
        Iv.I = Next;
        Pc = static_cast<size_t>(I.Aux) - 1; // jump to loop body
      }
      break;
    }
    case Op::Alloc: {
      const AllocPlan &Info = Allocs[I.Aux];
      Perf.onArith(10); // allocator call
      Cell &C = S.Cells[I.Dst];
      C.Tag = Cell::Kind::MemRef;
      C.M = MemRefDesc::alloc(Info.Shape, Info.Kind);
      break;
    }
    case Op::Dealloc: {
      Perf.onArith(10);
      break;
    }
    case Op::Load: {
      const MemRefDesc &Desc = S.Cells[I.A].M;
      const int32_t *IndexSlots = SlotPool.data() + I.Aux;
      int64_t Linear = Desc.Offset;
      for (unsigned K = 0; K < I.Sub; ++K) {
        int64_t Index = S.Cells[IndexSlots[K]].I;
        assert(Index >= 0 && Index < Desc.Sizes[K] &&
               "memref index out of bounds");
        Linear += Index * Desc.Strides[K];
      }
      Perf.onArith(I.Sub); // address computation
      Perf.onScalarLoad(Desc.addressOf(Linear), 4);
      uint32_t Word = Desc.Buffer->Data[static_cast<size_t>(Linear)];
      wordToCellImpl(Word, Desc.kind() == sim::ElemKind::F32,
                     S.Cells[I.Dst]);
      break;
    }
    case Op::Store: {
      const MemRefDesc &Desc = S.Cells[I.B].M;
      const int32_t *IndexSlots = SlotPool.data() + I.Aux;
      int64_t Linear = Desc.Offset;
      for (unsigned K = 0; K < I.Sub; ++K) {
        int64_t Index = S.Cells[IndexSlots[K]].I;
        assert(Index >= 0 && Index < Desc.Sizes[K] &&
               "memref index out of bounds");
        Linear += Index * Desc.Strides[K];
      }
      Perf.onArith(I.Sub);
      Perf.onScalarStore(Desc.addressOf(Linear), 4);
      Desc.Buffer->Data[static_cast<size_t>(Linear)] = cellToWordImpl(
          S.Cells[I.A], Desc.kind() == sim::ElemKind::F32);
      break;
    }
    case Op::Copy: {
      const MemRefDesc &Source = S.Cells[I.A].M;
      const MemRefDesc &Dest = S.Cells[I.B].M;
      if (Source.Sizes != Dest.Sizes)
        return S.fail("memref.copy shape mismatch");
      runtime::stridedCopy(
          Perf, runtime::makeCopyRequest(Source, Dest,
                                         Source.innermostContiguous() &&
                                             Dest.innermostContiguous()));
      break;
    }
    case Op::SubView: {
      const SubViewPlan &Info = SubViews[I.Aux];
      const MemRefDesc &Source = S.Cells[I.A].M;
      S.Scratch.clear();
      const int32_t *OffsetSlots = SlotPool.data() + Info.PoolOffset;
      for (unsigned K = 0; K < Info.NumOffsets; ++K)
        S.Scratch.push_back(S.Cells[OffsetSlots[K]].I);
      Perf.onArith(2 * Source.rank()); // descriptor arithmetic
      Cell &C = S.Cells[I.Dst];
      C.Tag = Cell::Kind::MemRef;
      C.M = Source.subview(S.Scratch, Info.StaticSizes);
      break;
    }
    case Op::Generic: {
      if (failed(runGeneric(Generics[I.Aux], S)))
        return failure();
      break;
    }

    //===----------------------------------------------------------------===//
    // accel ops (each performs its own staged copy + transfer)
    //===----------------------------------------------------------------===//
    case Op::AccelDmaInit:
    case Op::AccelSendLiteral:
    case Op::AccelSend:
    case Op::AccelSendDim:
    case Op::AccelSendIdx:
    case Op::AccelRecv: {
      if (!S.Runtime)
        return S.fail("accel op executed without a DMA runtime");
      runtime::DmaRuntime &Rt = *S.Runtime;
      if (I.Code == Op::AccelDmaInit) {
        Rt.dmaInit(DmaConfigs[I.Aux]);
        break;
      }
      if (I.Code == Op::AccelRecv) {
        const MemRefDesc &Desc = S.Cells[I.A].M;
        Rt.dmaStartRecv(Desc.numElements(), 0);
        Rt.dmaWaitRecvCompletion();
        Rt.copyFromDmaRegion(Desc, 0, I.Sub != 0);
        Cell &C = S.Cells[I.Dst];
        C.Tag = Cell::Kind::Int;
        C.I = 0;
        // Stop issuing work the moment a runtime call fails (recovery has
        // already absorbed what it could).
        if (Rt.status() != sim::AccelStatus::Ok)
          return S.fail(Rt.statusErrorText());
        break;
      }
      int64_t Offset = S.Cells[I.Code == Op::AccelSendLiteral ? I.A : I.B].I;
      int64_t End = 0;
      switch (I.Code) {
      case Op::AccelSendLiteral:
        End = Rt.copyLiteralToDmaRegion(static_cast<int32_t>(I.Imm), Offset);
        break;
      case Op::AccelSend:
        End = Rt.copyToDmaRegion(S.Cells[I.A].M, Offset);
        break;
      case Op::AccelSendDim: {
        const MemRefDesc &Desc = S.Cells[I.A].M;
        if (!I.Sub && (I.Imm < 0 ||
                       static_cast<size_t>(I.Imm) >= Desc.Sizes.size()))
          return S.fail("accel.send_dim reads dimension " +
                        std::to_string(I.Imm) + " of a rank-" +
                        std::to_string(Desc.Sizes.size()) + " memref");
        int64_t Size =
            I.Sub ? I.Imm : Desc.Sizes[static_cast<size_t>(I.Imm)];
        End = Rt.copyLiteralToDmaRegion(static_cast<int32_t>(Size), Offset);
        break;
      }
      case Op::AccelSendIdx:
        End = Rt.copyLiteralToDmaRegion(
            static_cast<int32_t>(S.Cells[I.A].I), Offset);
        break;
      default:
        break;
      }
      Rt.dmaStartSend(End - Offset, Offset);
      Rt.dmaWaitSendCompletion();
      Cell &C = S.Cells[I.Dst];
      C.Tag = Cell::Kind::Int;
      C.I = End;
      if (Rt.status() != sim::AccelStatus::Ok)
        return S.fail(Rt.statusErrorText());
      break;
    }

    //===----------------------------------------------------------------===//
    // axirt runtime calls (batched transfers; the fully lowered form)
    //===----------------------------------------------------------------===//
    case Op::CallDmaInit:
    case Op::CallCopyToDma:
    case Op::CallCopyLiteralToDma:
    case Op::CallStartSend:
    case Op::CallWaitSend:
    case Op::CallStartRecv:
    case Op::CallWaitRecv:
    case Op::CallCopyFromDma:
    case Op::CallSendFused:
    case Op::CallRecvFused: {
      if (!S.Runtime)
        return S.fail("runtime call executed without a DMA runtime");
      runtime::DmaRuntime &Rt = *S.Runtime;
      switch (I.Code) {
      case Op::CallDmaInit:
        Rt.dmaInit(DmaConfigs[I.Aux]);
        break;
      case Op::CallCopyToDma: {
        int64_t End = Rt.copyToDmaRegion(S.Cells[I.A].M, S.Cells[I.B].I);
        Cell &C = S.Cells[I.Dst];
        C.Tag = Cell::Kind::Int;
        C.I = End;
        break;
      }
      case Op::CallCopyLiteralToDma: {
        int64_t End = Rt.copyLiteralToDmaRegion(
            static_cast<int32_t>(S.Cells[I.A].I), S.Cells[I.B].I);
        Cell &C = S.Cells[I.Dst];
        C.Tag = Cell::Kind::Int;
        C.I = End;
        break;
      }
      case Op::CallStartSend:
        Rt.dmaStartSend(S.Cells[I.A].I - S.Cells[I.B].I, S.Cells[I.B].I);
        break;
      case Op::CallWaitSend:
        Rt.dmaWaitSendCompletion();
        break;
      case Op::CallStartRecv:
        Rt.dmaStartRecv(S.Cells[I.A].I, S.Cells[I.B].I);
        break;
      case Op::CallWaitRecv:
        Rt.dmaWaitRecvCompletion();
        break;
      case Op::CallSendFused:
        // One dispatch for the blocking start+wait pair; the runtime calls
        // (and thus every perf charge) are unchanged and in order.
        Rt.dmaStartSend(S.Cells[I.A].I - S.Cells[I.B].I, S.Cells[I.B].I);
        Rt.dmaWaitSendCompletion();
        break;
      case Op::CallRecvFused:
        Rt.dmaStartRecv(S.Cells[I.A].I, S.Cells[I.B].I);
        Rt.dmaWaitRecvCompletion();
        break;
      case Op::CallCopyFromDma:
        Rt.copyFromDmaRegion(S.Cells[I.A].M, S.Cells[I.B].I, I.Sub != 0);
        break;
      default:
        break;
      }
      if (Rt.status() != sim::AccelStatus::Ok)
        return S.fail(Rt.statusErrorText());
      break;
    }
    }
  }
  return success();
}

LogicalResult ExecPlan::runGeneric(const GenericPlan &G, ExecState &S) const {
  sim::HostPerfModel &Perf = S.Soc.perf();
  const unsigned NumLoops = static_cast<unsigned>(G.Ranges.size());
  const unsigned NumOperands = static_cast<unsigned>(G.Operands.size());

  // Resolve descriptors once per generic execution; for projected
  // permutations fold the map into per-loop-dim stride contributions so
  // each point's linear index is a plain dot product.
  struct Resolved {
    const MemRefDesc *Desc;
    bool IsF32;
    bool Projected;
    int64_t DimStride[runtime::detail::MaxCopyRank];
  };
  assert(NumLoops <= runtime::detail::MaxCopyRank &&
         "loop nest beyond plan odometer cap");
  std::vector<Resolved> Ops(NumOperands);
  for (unsigned K = 0; K < NumOperands; ++K) {
    const OperandPlan &P = G.Operands[K];
    Resolved &R = Ops[K];
    R.Desc = &S.Cells[P.Slot].M;
    R.IsF32 = R.Desc->kind() == sim::ElemKind::F32;
    R.Projected = P.Projected;
    if (P.Projected) {
      for (unsigned D = 0; D < NumLoops; ++D)
        R.DimStride[D] = 0;
      for (unsigned Idx = 0; Idx < P.DimPos.size(); ++Idx)
        R.DimStride[P.DimPos[Idx]] += R.Desc->Strides[Idx];
    }
  }

  auto linearAt = [&](unsigned K,
                      const std::vector<int64_t> &Point) -> int64_t {
    const Resolved &R = Ops[K];
    int64_t Linear = R.Desc->Offset;
    if (R.Projected) {
      for (unsigned D = 0; D < NumLoops; ++D)
        Linear += Point[D] * R.DimStride[D];
      return Linear;
    }
    const OperandPlan &P = G.Operands[K];
    for (unsigned Idx = 0; Idx < P.Exprs.size(); ++Idx) {
      int64_t Index = P.Exprs[Idx].eval(Point);
      assert(Index >= 0 && Index < R.Desc->Sizes[Idx] &&
             "memref index out of bounds");
      Linear += Index * R.Desc->Strides[Idx];
    }
    return Linear;
  };

  // Odometer over the iteration space; models the compiled loop nest.
  std::vector<int64_t> Point(NumLoops, 0);
  bool Done = product(G.Ranges) == 0;
  while (!Done) {
    Perf.onLoopIteration();
    Perf.onArith(3); // indexing arithmetic per point

    // Bind payload arguments: input elements then current output elements.
    for (unsigned K = 0; K < NumOperands; ++K) {
      int64_t Linear = linearAt(K, Point);
      Perf.onScalarLoad(Ops[K].Desc->addressOf(Linear), 4);
      uint32_t Word =
          Ops[K].Desc->Buffer->Data[static_cast<size_t>(Linear)];
      wordToCellImpl(Word, Ops[K].IsF32, S.Cells[G.BodyArgSlots[K]]);
    }

    // Run the pre-compiled payload, then store the yielded values.
    if (!G.Body.empty() && failed(runSpan(G.Body, S)))
      return failure();
    for (unsigned O = 0; O < G.YieldSlots.size(); ++O) {
      unsigned OperandIdx = G.NumInputs + O;
      int64_t Linear = linearAt(OperandIdx, Point);
      Perf.onScalarStore(Ops[OperandIdx].Desc->addressOf(Linear), 4);
      Ops[OperandIdx].Desc->Buffer->Data[static_cast<size_t>(Linear)] =
          cellToWordImpl(S.Cells[G.YieldSlots[O]], Ops[OperandIdx].IsF32);
    }

    // Advance the odometer (innermost dimension fastest).
    Done = true;
    for (int D = static_cast<int>(NumLoops) - 1; D >= 0; --D) {
      if (++Point[D] < G.Ranges[D]) {
        Done = false;
        break;
      }
      Point[D] = 0;
    }
  }
  return success();
}

LogicalResult ExecPlan::run(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                            const std::vector<MemRefDesc> &Arguments,
                            std::string &Error) const {
  if (Arguments.size() != NumArgs) {
    Error = "argument count mismatch calling '" + FuncName + "'";
    return failure();
  }
  ExecState S(Soc, Runtime);
  S.Cells.resize(NumSlots);
  for (unsigned Idx = 0; Idx < NumArgs; ++Idx) {
    S.Cells[Idx].Tag = Cell::Kind::MemRef;
    S.Cells[Idx].M = Arguments[Idx];
  }
  if (failed(runSpan(Program, S))) {
    Error = S.Error.empty() ? "interpreter failure" : S.Error;
    return failure();
  }
  // Belt-and-braces end-of-run check (the per-call status checks stop the
  // run early; this catches anything signalled outside a runtime call).
  if (Runtime && Runtime->status() != sim::AccelStatus::Ok) {
    Error = Runtime->statusErrorText();
    return failure();
  }
  return success();
}
