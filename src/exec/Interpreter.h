//===- Interpreter.h - Host-code IR interpreter -----------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes lowered host code (scf/arith/memref + runtime calls) against
/// the simulated SoC, charging the cost model for every host action. It
/// stands in for running the cross-compiled binary on the PYNQ-Z2: the
/// perf counters it produces correspond to what the paper measures with
/// perf (Sec. IV).
///
/// Three abstraction levels are executable, enabling lowering ablations:
///   * linalg.generic directly (the mlir_CPU baseline),
///   * accel-dialect ops (each transaction on its own),
///   * axirt.* runtime calls (batched transfers; the fully lowered form).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_INTERPRETER_H
#define AXI4MLIR_EXEC_INTERPRETER_H

#include "dialects/Func.h"
#include "exec/ExecPlanRun.h"
#include "exec/opt/PlanOpt.h"
#include "runtime/DmaRuntime.h"
#include "support/LogicalResult.h"

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace exec {

class ExecPlan;

/// Interprets one func.func against a simulated system. By default the
/// function is compiled once into an ExecPlan (cached across run() calls
/// on the same function), pre-decoded into dispatch-ready form, and
/// executed through the threaded-dispatch engine. The plan interpreter
/// (one switch per instruction) and the legacy tree walker stay
/// selectable through ExecMode for the equivalence tests and ablations;
/// all three produce identical buffers and perf counters.
class Interpreter {
public:
  /// \p Runtime may be null for CPU-only functions (no accel/axirt ops).
  Interpreter(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
              ExecMode Mode = ExecMode::Threaded);
  /// Legacy selector kept for the walker-vs-plan call sites: true is the
  /// plan interpreter, false the tree walker.
  Interpreter(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
              bool UseCompiledPlan);
  ~Interpreter();

  void setExecMode(ExecMode Mode) { this->Mode = Mode; }
  ExecMode execMode() const { return Mode; }

  /// Legacy selector: compiled execution (the plan interpreter) vs the
  /// tree walker. Both produce identical output buffers and counters.
  void setUseCompiledPlan(bool Enabled) {
    Mode = Enabled ? ExecMode::Plan : ExecMode::Walker;
  }
  bool usesCompiledPlan() const { return Mode != ExecMode::Walker; }

  /// Enables plan-optimizer passes (src/exec/opt) for subsequent runs.
  /// Off by default to preserve the bit-identical plan-vs-walker counter
  /// guarantee. Invalidates the plan cache.
  void setPlanOptions(const opt::PlanOptOptions &Options);
  const opt::PlanOptOptions &planOptions() const { return PlanOptions; }
  /// What the optimizer did to the most recently compiled plan.
  const opt::PlanOptStats &planOptStats() const { return OptStats; }

  /// Bounds the LRU plan cache (entries, >= 1). Shrinking below the
  /// current population evicts least-recently-used entries immediately
  /// (charged to the SoC's PlanCacheEvictions counter).
  void setPlanCacheCapacity(size_t Capacity);
  size_t planCacheCapacity() const { return PlanCacheCapacity; }
  size_t planCacheSize() const { return PlanCache.size(); }

  /// Runs \p Func with memref arguments bound to \p Arguments. Compiled
  /// plans are held in a per-Interpreter LRU cache keyed by function
  /// identity, so alternating across several functions skips
  /// recompilation (and re-decoding in threaded mode) until the capacity
  /// bound evicts them. Hits/misses/evictions are charged to the SoC's
  /// HostPerfModel plan-cache counters (counters only, no cycles).
  LogicalResult run(func::FuncOp Func,
                    const std::vector<runtime::MemRefDesc> &Arguments,
                    std::string &Error);

  /// The pre-decoded program of the most recently used cache entry, or
  /// null until a threaded-mode run() has populated it. For introspection
  /// (disassembly goldens, kernel-specialization counts).
  const DecodedPlan *decodedPlan() const;

private:
  /// A dynamic value: index/integer, float, or memref.
  struct RuntimeValue {
    enum class Kind { Int, Float, MemRef } Tag = Kind::Int;
    int64_t IntVal = 0;
    double FloatVal = 0;
    runtime::MemRefDesc MemRef;

    static RuntimeValue fromInt(int64_t V) {
      RuntimeValue Value;
      Value.Tag = Kind::Int;
      Value.IntVal = V;
      return Value;
    }
    static RuntimeValue fromFloat(double V) {
      RuntimeValue Value;
      Value.Tag = Kind::Float;
      Value.FloatVal = V;
      return Value;
    }
    static RuntimeValue fromMemRef(runtime::MemRefDesc Desc) {
      RuntimeValue Value;
      Value.Tag = Kind::MemRef;
      Value.MemRef = std::move(Desc);
      return Value;
    }
  };

  LogicalResult executeBlock(Block &TheBlock);
  LogicalResult executeOp(Operation *Op);
  LogicalResult executeLinalgGeneric(Operation *Op);
  LogicalResult executeRuntimeCall(Operation *Op);
  LogicalResult executeAccelOp(Operation *Op);

  RuntimeValue &value(Value V) { return Env[V.getImpl()]; }
  int64_t intValue(Value V) { return value(V).IntVal; }
  const runtime::MemRefDesc &memrefValue(Value V) {
    return value(V).MemRef;
  }
  LogicalResult fail(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = Message;
    return failure();
  }

  sim::SoC &Soc;
  runtime::DmaRuntime *Runtime;
  ExecMode Mode;
  opt::PlanOptOptions PlanOptions;
  opt::PlanOptStats OptStats;
  /// One compiled function in the LRU plan cache. The fingerprint (op
  /// address, name, structural argument types, top-level op count)
  /// invalidates on the realistic staleness cases; callers mutating a
  /// function body in place without changing any of those must use a
  /// fresh Interpreter.
  struct PlanCacheEntry {
    std::unique_ptr<ExecPlan> Plan;
    /// Dispatch-ready form; populated lazily in threaded mode.
    std::unique_ptr<DecodedPlan> Decoded;
    Operation *For = nullptr;
    size_t TopLevelOps = 0;
    std::vector<Type> ArgTypes;
    opt::PlanOptStats Stats;
  };
  /// Most-recently-used entry at the front; evicted from the back once
  /// the population exceeds PlanCacheCapacity.
  std::list<PlanCacheEntry> PlanCache;
  size_t PlanCacheCapacity = 8;
  std::map<detail::ValueImpl *, RuntimeValue> Env;
  std::string ErrorMessage;
};

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_INTERPRETER_H
