//===- Heuristics.cpp - Tiling/dataflow selection implementation ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Heuristics.h"

#include <cassert>
#include <limits>
#include <vector>

using namespace axi4mlir;
using namespace axi4mlir::exec;

double exec::estimateMovedElements(const std::string &Flow, int64_t M,
                                   int64_t N, int64_t K, int64_t TileM,
                                   int64_t TileN, int64_t TileK) {
  double DM = static_cast<double>(M), DN = static_cast<double>(N),
         DK = static_cast<double>(K);
  double StepsM = DM / static_cast<double>(TileM);
  double StepsN = DN / static_cast<double>(TileN);
  double StepsK = DK / static_cast<double>(TileK);
  double AAll = DM * DK, BAll = DK * DN, CAll = DM * DN;

  if (Flow == "As") // A sent once; B per (m); C per (k).
    return AAll + BAll * StepsM + CAll * StepsK;
  if (Flow == "Bs") // B sent once; A per (n); C per (k).
    return BAll + AAll * StepsN + CAll * StepsK;
  if (Flow == "Cs") // C received once; A per (n); B per (m).
    return CAll + AAll * StepsN + BAll * StepsM;
  // Ns: everything moves in the innermost loop.
  return AAll * StepsN + BAll * StepsM + CAll * StepsK;
}

FlowTilingChoice exec::chooseSquareTile(int64_t M, int64_t N, int64_t K,
                                        const std::string &Flow,
                                        int64_t CapacityWords) {
  FlowTilingChoice Choice;
  Choice.Flow = Flow;
  int64_t Limit = std::min(std::min(M, N), K);
  for (int64_t T = Limit; T >= 1; --T) {
    if (M % T || N % T || K % T || T * T > CapacityWords)
      continue;
    Choice.TileM = Choice.TileN = Choice.TileK = T;
    Choice.MovedElements = estimateMovedElements(Flow, M, N, K, T, T, T);
    return Choice;
  }
  Choice.TileM = Choice.TileN = Choice.TileK = 1;
  Choice.MovedElements = estimateMovedElements(Flow, M, N, K, 1, 1, 1);
  return Choice;
}

static std::vector<int64_t> tileCandidates(int64_t Extent,
                                           int64_t TileQuantum) {
  std::vector<int64_t> Candidates;
  for (int64_t T = TileQuantum; T <= Extent; T += TileQuantum)
    if (Extent % T == 0)
      Candidates.push_back(T);
  if (Candidates.empty())
    Candidates.push_back(Extent); // Extent smaller than the quantum.
  return Candidates;
}

FlowTilingChoice exec::chooseBestFlexible(int64_t M, int64_t N, int64_t K,
                                          int64_t CapacityWords,
                                          int64_t TileQuantum) {
  FlowTilingChoice Best;
  Best.MovedElements = std::numeric_limits<double>::max();
  const char *Flows[] = {"Ns", "As", "Bs", "Cs"};
  for (int64_t TM : tileCandidates(M, TileQuantum)) {
    for (int64_t TN : tileCandidates(N, TileQuantum)) {
      for (int64_t TK : tileCandidates(K, TileQuantum)) {
        if (TM * TK > CapacityWords || TK * TN > CapacityWords ||
            TM * TN > CapacityWords)
          continue;
        for (const char *Flow : Flows) {
          double Moved = estimateMovedElements(Flow, M, N, K, TM, TN, TK);
          // Prefer strictly fewer moves; tie-break on larger tiles (fewer
          // transfer calls).
          bool Better =
              Moved < Best.MovedElements ||
              (Moved == Best.MovedElements &&
               TM * TN * TK > Best.TileM * Best.TileN * Best.TileK);
          if (Better) {
            Best.Flow = Flow;
            Best.TileM = TM;
            Best.TileN = TN;
            Best.TileK = TK;
            Best.MovedElements = Moved;
          }
        }
      }
    }
  }
  assert(Best.TileM && "no feasible tiling found");
  return Best;
}
