//===- Heuristics.cpp - Tiling/dataflow selection implementation ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Heuristics.h"

#include "support/STLExtras.h"

#include <cassert>
#include <limits>
#include <vector>

using namespace axi4mlir;
using namespace axi4mlir::exec;

double exec::estimateMovedElements(const std::string &Flow, int64_t M,
                                   int64_t N, int64_t K, int64_t TileM,
                                   int64_t TileN, int64_t TileK) {
  // Partial tiles ship padded to full size, so each dimension contributes
  // ceil(extent/tile) full tile steps (exact for divisible extents).
  double StepsM = static_cast<double>(ceilDiv(M, TileM));
  double StepsN = static_cast<double>(ceilDiv(N, TileN));
  double StepsK = static_cast<double>(ceilDiv(K, TileK));
  double DM = StepsM * static_cast<double>(TileM),
         DN = StepsN * static_cast<double>(TileN),
         DK = StepsK * static_cast<double>(TileK);
  double AAll = DM * DK, BAll = DK * DN, CAll = DM * DN;

  if (Flow == "As") // A sent once; B per (m); C per (k).
    return AAll + BAll * StepsM + CAll * StepsK;
  if (Flow == "Bs") // B sent once; A per (n); C per (k).
    return BAll + AAll * StepsN + CAll * StepsK;
  if (Flow == "Cs") // C received once; A per (n); B per (m).
    return CAll + AAll * StepsN + BAll * StepsM;
  // Ns: everything moves in the innermost loop.
  return AAll * StepsN + BAll * StepsM + CAll * StepsK;
}

FlowTilingChoice exec::chooseSquareTile(int64_t M, int64_t N, int64_t K,
                                        const std::string &Flow,
                                        int64_t CapacityWords,
                                        bool AllowPartial) {
  FlowTilingChoice Choice;
  Choice.Flow = Flow;
  int64_t Limit = std::min(std::min(M, N), K);
  if (!AllowPartial) {
    // Legacy behaviour: the largest divisible square tile wins outright.
    for (int64_t T = Limit; T >= 1; --T) {
      if (M % T || N % T || K % T || T * T > CapacityWords)
        continue;
      Choice.TileM = Choice.TileN = Choice.TileK = T;
      Choice.MovedElements = estimateMovedElements(Flow, M, N, K, T, T, T);
      return Choice;
    }
    Choice.TileM = Choice.TileN = Choice.TileK = 1;
    Choice.MovedElements = estimateMovedElements(Flow, M, N, K, 1, 1, 1);
    return Choice;
  }
  // With a pad/peel strategy every tile is legal; the padded-movement
  // estimate penalizes tiles that waste a large partial fringe.
  Choice.MovedElements = std::numeric_limits<double>::max();
  for (int64_t T = Limit; T >= 1; --T) {
    if (T * T > CapacityWords)
      continue;
    double Moved = estimateMovedElements(Flow, M, N, K, T, T, T);
    if (Moved < Choice.MovedElements) {
      Choice.TileM = Choice.TileN = Choice.TileK = T;
      Choice.MovedElements = Moved;
    }
  }
  if (!Choice.TileM) {
    Choice.TileM = Choice.TileN = Choice.TileK = 1;
    Choice.MovedElements = estimateMovedElements(Flow, M, N, K, 1, 1, 1);
  }
  return Choice;
}

static std::vector<int64_t> tileCandidates(int64_t Extent,
                                           int64_t TileQuantum,
                                           bool AllowPartial) {
  std::vector<int64_t> Candidates;
  for (int64_t T = TileQuantum; T <= Extent; T += TileQuantum)
    if (AllowPartial || Extent % T == 0)
      Candidates.push_back(T);
  if (Candidates.empty())
    Candidates.push_back(Extent); // Extent smaller than the quantum.
  return Candidates;
}

FlowTilingChoice exec::chooseBestFlexible(int64_t M, int64_t N, int64_t K,
                                          int64_t CapacityWords,
                                          int64_t TileQuantum,
                                          bool AllowPartial) {
  FlowTilingChoice Best;
  Best.MovedElements = std::numeric_limits<double>::max();
  const char *Flows[] = {"Ns", "As", "Bs", "Cs"};
  for (int64_t TM : tileCandidates(M, TileQuantum, AllowPartial)) {
    for (int64_t TN : tileCandidates(N, TileQuantum, AllowPartial)) {
      for (int64_t TK : tileCandidates(K, TileQuantum, AllowPartial)) {
        if (TM * TK > CapacityWords || TK * TN > CapacityWords ||
            TM * TN > CapacityWords)
          continue;
        for (const char *Flow : Flows) {
          double Moved = estimateMovedElements(Flow, M, N, K, TM, TN, TK);
          // Prefer strictly fewer moves; tie-break on larger tiles (fewer
          // transfer calls).
          bool Better =
              Moved < Best.MovedElements ||
              (Moved == Best.MovedElements &&
               TM * TN * TK > Best.TileM * Best.TileN * Best.TileK);
          if (Better) {
            Best.Flow = Flow;
            Best.TileM = TM;
            Best.TileN = TN;
            Best.TileK = TK;
            Best.MovedElements = Moved;
          }
        }
      }
    }
  }
  assert(Best.TileM && "no feasible tiling found");
  return Best;
}
