//===- Interpreter.cpp - Host-code IR interpreter implementation ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "dialects/Accel.h"
#include "dialects/Arith.h"
#include "dialects/Linalg.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"
#include "exec/ExecPlan.h"
#include "runtime/StridedCopy.h"
#include "transforms/Passes.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;

Interpreter::Interpreter(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                         ExecMode Mode)
    : Soc(Soc), Runtime(Runtime), Mode(Mode) {}

Interpreter::Interpreter(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                         bool UseCompiledPlan)
    : Interpreter(Soc, Runtime,
                  UseCompiledPlan ? ExecMode::Plan : ExecMode::Walker) {}

Interpreter::~Interpreter() = default;

void Interpreter::setPlanOptions(const opt::PlanOptOptions &Options) {
  PlanOptions = Options;
  PlanCache.clear();
}

void Interpreter::setPlanCacheCapacity(size_t Capacity) {
  PlanCacheCapacity = Capacity < 1 ? 1 : Capacity;
  while (PlanCache.size() > PlanCacheCapacity) {
    PlanCache.pop_back();
    Soc.perf().onPlanCacheEviction();
  }
}

const DecodedPlan *Interpreter::decodedPlan() const {
  return PlanCache.empty() ? nullptr : PlanCache.front().Decoded.get();
}

LogicalResult Interpreter::run(func::FuncOp Func,
                               const std::vector<MemRefDesc> &Arguments,
                               std::string &Error) {
  Env.clear();
  ErrorMessage.clear();
  Block &Entry = Func.getBody();
  if (Arguments.size() != Entry.getNumArguments()) {
    Error = "argument count mismatch calling '" + Func.getFuncName() + "'";
    return failure();
  }
  if (Mode != ExecMode::Walker) {
    // Compile once, execute many: plans are reused while run() keeps
    // being called with the same, unmodified functions. The fingerprint
    // (address + name + structural argument types + top-level op count)
    // catches the realistic staleness cases — a recycled heap address,
    // different workload shapes, or a pass rewriting the function in
    // place — but a caller that mutates the body without changing any
    // of those must use a fresh Interpreter (or compile an ExecPlan
    // directly). The cache is a bounded LRU so a driver alternating over
    // many functions neither thrashes on two of them (the old
    // single-entry behaviour) nor grows without limit.
    size_t TopLevelOps = Entry.getOperations().size();
    auto matches = [&](const PlanCacheEntry &Cached) {
      if (Cached.For != Func.getOperation() ||
          Cached.TopLevelOps != TopLevelOps ||
          Cached.Plan->funcName() != Func.getFuncName() ||
          Cached.ArgTypes.size() != Entry.getNumArguments())
        return false;
      for (unsigned I = 0; I < Entry.getNumArguments(); ++I)
        if (!(Cached.ArgTypes[I] == Entry.getArgument(I).getType()))
          return false;
      return true;
    };
    auto Hit = PlanCache.end();
    for (auto It = PlanCache.begin(); It != PlanCache.end(); ++It) {
      if (matches(*It)) {
        Hit = It;
        break;
      }
    }
    if (Hit != PlanCache.end()) {
      Soc.perf().onPlanCacheHit();
      PlanCache.splice(PlanCache.begin(), PlanCache, Hit);
      OptStats = PlanCache.front().Stats;
    } else {
      Soc.perf().onPlanCacheMiss();
      PlanCacheEntry Fresh;
      Fresh.Plan = ExecPlan::compile(Func, Error);
      if (!Fresh.Plan)
        return failure();
      Fresh.Stats = opt::optimizePlan(*Fresh.Plan, PlanOptions);
      if (!Fresh.Stats.VerifyError.empty()) {
        // Verify-each caught a miscompile between passes: refuse to cache
        // or run the rejected plan.
        Error = "plan verification failed after " +
                Fresh.Stats.VerifyFailedPass + ": " +
                Fresh.Stats.VerifyError;
        return failure();
      }
      OptStats = Fresh.Stats;
      Fresh.For = Func.getOperation();
      Fresh.TopLevelOps = TopLevelOps;
      for (unsigned I = 0; I < Entry.getNumArguments(); ++I)
        Fresh.ArgTypes.push_back(Entry.getArgument(I).getType());
      PlanCache.push_front(std::move(Fresh));
      while (PlanCache.size() > PlanCacheCapacity) {
        PlanCache.pop_back();
        Soc.perf().onPlanCacheEviction();
      }
    }
    PlanCacheEntry &Active = PlanCache.front();
    if (Mode == ExecMode::Threaded) {
      // Decode lazily (after the optimizer has run) so a mode switch on a
      // warm plan cache still picks up the threaded engine.
      if (!Active.Decoded)
        Active.Decoded = DecodedPlan::decode(*Active.Plan);
      return Active.Decoded->run(Soc, Runtime, Arguments, Error);
    }
    return Active.Plan->run(Soc, Runtime, Arguments, Error);
  }
  for (unsigned I = 0; I < Arguments.size(); ++I)
    Env[Entry.getArgument(I).getImpl()] =
        RuntimeValue::fromMemRef(Arguments[I]);
  if (failed(executeBlock(Entry))) {
    Error = ErrorMessage.empty() ? "interpreter failure" : ErrorMessage;
    return failure();
  }
  // Belt-and-braces end-of-run check (the per-call status checks stop the
  // run early; this catches anything signalled outside a runtime call).
  if (Runtime && Runtime->status() != sim::AccelStatus::Ok) {
    Error = Runtime->statusErrorText();
    return failure();
  }
  return success();
}

LogicalResult Interpreter::executeBlock(Block &TheBlock) {
  for (Operation *Op : TheBlock.getOperations()) {
    const std::string &Name = Op->getName();
    if (Name == "func.return" || Name == "scf.yield" ||
        Name == "linalg.yield")
      return success();
    if (failed(executeOp(Op)))
      return failure();
  }
  return success();
}

LogicalResult Interpreter::executeOp(Operation *Op) {
  const std::string &Name = Op->getName();
  sim::HostPerfModel &Perf = Soc.perf();

  //===--------------------------------------------------------------------===//
  // arith
  //===--------------------------------------------------------------------===//
  if (Name == "arith.constant") {
    Attribute ValueAttr = Op->getAttr("value");
    if (ValueAttr.getKind() == Attribute::Kind::Float)
      value(Op->getResult(0)) =
          RuntimeValue::fromFloat(ValueAttr.getFloatValue());
    else
      value(Op->getResult(0)) =
          RuntimeValue::fromInt(ValueAttr.getIntValue());
    return success();
  }
  if (Name.rfind("arith.", 0) == 0 && Op->getNumOperands() == 2) {
    RuntimeValue &LHS = value(Op->getOperand(0));
    RuntimeValue &RHS = value(Op->getOperand(1));
    Perf.onArith(1);
    bool IsFloat = LHS.Tag == RuntimeValue::Kind::Float;
    double A = IsFloat ? LHS.FloatVal : static_cast<double>(LHS.IntVal);
    double B = IsFloat ? RHS.FloatVal : static_cast<double>(RHS.IntVal);
    double R = 0;
    if (Name == "arith.addf" || Name == "arith.addi")
      R = A + B;
    else if (Name == "arith.mulf" || Name == "arith.muli")
      R = A * B;
    else if (Name == "arith.subf" || Name == "arith.subi")
      R = A - B;
    else if (Name == "arith.divf")
      R = A / B;
    else if (Name == "arith.maxf")
      R = A > B ? A : B;
    else
      return fail("unsupported arith op '" + Name + "'");
    if (Op->getResult(0).getType().isFloat())
      value(Op->getResult(0)) = RuntimeValue::fromFloat(R);
    else
      value(Op->getResult(0)) =
          RuntimeValue::fromInt(static_cast<int64_t>(R));
    return success();
  }
  if (Name == "arith.index_cast") {
    value(Op->getResult(0)) = value(Op->getOperand(0));
    return success();
  }

  //===--------------------------------------------------------------------===//
  // scf
  //===--------------------------------------------------------------------===//
  if (auto For = dyn_cast_op<scf::ForOp>(Op)) {
    int64_t LowerBound = intValue(For.getLowerBound());
    int64_t UpperBound = intValue(For.getUpperBound());
    int64_t Step = intValue(For.getStep());
    if (Step <= 0)
      return fail("scf.for requires a positive step");
    for (int64_t IV = LowerBound; IV < UpperBound; IV += Step) {
      Perf.onLoopIteration();
      value(For.getInductionVar()) = RuntimeValue::fromInt(IV);
      if (failed(executeBlock(*For.getBody())))
        return failure();
    }
    return success();
  }

  //===--------------------------------------------------------------------===//
  // memref
  //===--------------------------------------------------------------------===//
  if (auto Alloc = dyn_cast_op<memref::AllocOp>(Op)) {
    MemRefType Ty = Alloc.getType();
    sim::ElemKind Kind = Ty.getElementType().isFloat()
                             ? sim::ElemKind::F32
                             : sim::ElemKind::I32;
    Perf.onArith(10); // allocator call
    value(Op->getResult(0)) =
        RuntimeValue::fromMemRef(MemRefDesc::alloc(Ty.getShape(), Kind));
    return success();
  }
  if (Name == "memref.dealloc") {
    Perf.onArith(10);
    return success();
  }
  if (auto Load = dyn_cast_op<memref::LoadOp>(Op)) {
    const MemRefDesc &Desc = memrefValue(Load.getMemRef());
    std::vector<int64_t> Indices;
    for (unsigned I = 1; I < Op->getNumOperands(); ++I)
      Indices.push_back(intValue(Op->getOperand(I)));
    int64_t Linear = Desc.linearIndex(Indices);
    Perf.onArith(Desc.rank()); // address computation
    Perf.onScalarLoad(Desc.addressOf(Linear), 4);
    uint32_t Word = Desc.Buffer->Data[static_cast<size_t>(Linear)];
    if (Desc.kind() == sim::ElemKind::F32)
      value(Op->getResult(0)) = RuntimeValue::fromFloat(
          static_cast<double>(sim::wordToFloat(Word)));
    else
      value(Op->getResult(0)) =
          RuntimeValue::fromInt(static_cast<int32_t>(Word));
    return success();
  }
  if (auto Store = dyn_cast_op<memref::StoreOp>(Op)) {
    const MemRefDesc &Desc = memrefValue(Store.getMemRef());
    std::vector<int64_t> Indices;
    for (unsigned I = 2; I < Op->getNumOperands(); ++I)
      Indices.push_back(intValue(Op->getOperand(I)));
    int64_t Linear = Desc.linearIndex(Indices);
    Perf.onArith(Desc.rank());
    Perf.onScalarStore(Desc.addressOf(Linear), 4);
    RuntimeValue &Stored = value(Store.getStoredValue());
    uint32_t Word =
        Desc.kind() == sim::ElemKind::F32
            ? sim::floatToWord(static_cast<float>(
                  Stored.Tag == RuntimeValue::Kind::Float
                      ? Stored.FloatVal
                      : static_cast<double>(Stored.IntVal)))
            : static_cast<uint32_t>(static_cast<int32_t>(
                  Stored.Tag == RuntimeValue::Kind::Float
                      ? static_cast<int64_t>(Stored.FloatVal)
                      : Stored.IntVal));
    Desc.Buffer->Data[static_cast<size_t>(Linear)] = Word;
    return success();
  }
  if (auto Copy = dyn_cast_op<memref::CopyOp>(Op)) {
    const MemRefDesc &Source = memrefValue(Copy.getSource());
    const MemRefDesc &Dest = memrefValue(Copy.getDest());
    if (Source.Sizes != Dest.Sizes)
      return fail("memref.copy shape mismatch");
    // Row-wise memcpy when both sides are contiguous innermost (the
    // compiler vectorizes the staging copy); scalar sweep otherwise.
    // Data movement and charging live in the shared strided-copy engine.
    runtime::stridedCopy(
        Perf, runtime::makeCopyRequest(Source, Dest,
                                       Source.innermostContiguous() &&
                                           Dest.innermostContiguous()));
    return success();
  }
  if (auto SubView = dyn_cast_op<memref::SubViewOp>(Op)) {
    const MemRefDesc &Source = memrefValue(SubView.getSource());
    std::vector<int64_t> Offsets;
    for (unsigned I = 1; I < Op->getNumOperands(); ++I)
      Offsets.push_back(intValue(Op->getOperand(I)));
    Perf.onArith(2 * Source.rank()); // descriptor arithmetic
    value(Op->getResult(0)) = RuntimeValue::fromMemRef(
        Source.subview(Offsets, SubView.getStaticSizes()));
    return success();
  }

  //===--------------------------------------------------------------------===//
  // linalg / accel / calls
  //===--------------------------------------------------------------------===//
  if (isa_op<linalg::GenericOp>(Op))
    return executeLinalgGeneric(Op);
  // Runtime-facing ops check the structured DMA status on the way out:
  // the walker stops issuing work the moment a call comes back non-Ok
  // (recovery has already absorbed whatever it could by then).
  if (Name.rfind("accel.", 0) == 0) {
    if (failed(executeAccelOp(Op)))
      return failure();
    if (Runtime && Runtime->status() != sim::AccelStatus::Ok)
      return fail(Runtime->statusErrorText());
    return success();
  }
  if (Name == "func.call") {
    if (failed(executeRuntimeCall(Op)))
      return failure();
    if (Runtime && Runtime->status() != sim::AccelStatus::Ok)
      return fail(Runtime->statusErrorText());
    return success();
  }

  return fail("interpreter: unsupported operation '" + Name + "'");
}

LogicalResult Interpreter::executeLinalgGeneric(Operation *Op) {
  linalg::GenericOp Generic(Op);
  std::vector<int64_t> Ranges = Generic.getStaticLoopRanges();
  if (Ranges.empty())
    return fail("linalg.generic with non-static loop ranges");

  unsigned NumOperands = Op->getNumOperands();
  unsigned NumInputs = Generic.getNumInputs();
  std::vector<MemRefDesc> Descs;
  std::vector<AffineMap> Maps;
  for (unsigned I = 0; I < NumOperands; ++I) {
    Descs.push_back(memrefValue(Op->getOperand(I)));
    Maps.push_back(Generic.getIndexingMap(I));
  }
  Block &Body = Generic.getBody();
  sim::HostPerfModel &Perf = Soc.perf();

  // Odometer over the iteration space; models the compiled loop nest.
  std::vector<int64_t> Point(Ranges.size(), 0);
  bool Done = product(Ranges) == 0;
  while (!Done) {
    Perf.onLoopIteration();
    Perf.onArith(3); // indexing arithmetic per point

    // Bind payload arguments: input elements then current output elements.
    for (unsigned I = 0; I < NumOperands; ++I) {
      std::vector<int64_t> Indices = Maps[I].eval(Point);
      int64_t Linear = Descs[I].linearIndex(Indices);
      Perf.onScalarLoad(Descs[I].addressOf(Linear), 4);
      uint32_t Word = Descs[I].Buffer->Data[static_cast<size_t>(Linear)];
      RuntimeValue BoundValue =
          Descs[I].kind() == sim::ElemKind::F32
              ? RuntimeValue::fromFloat(
                    static_cast<double>(sim::wordToFloat(Word)))
              : RuntimeValue::fromInt(static_cast<int32_t>(Word));
      Env[Body.getArgument(I).getImpl()] = BoundValue;
    }

    // Run the payload.
    for (Operation *BodyOp : Body.getOperations()) {
      if (BodyOp->getName() == "linalg.yield") {
        for (unsigned O = 0; O < BodyOp->getNumOperands(); ++O) {
          unsigned OperandIdx = NumInputs + O;
          RuntimeValue &Yielded = value(BodyOp->getOperand(O));
          std::vector<int64_t> Indices = Maps[OperandIdx].eval(Point);
          int64_t Linear = Descs[OperandIdx].linearIndex(Indices);
          Perf.onScalarStore(Descs[OperandIdx].addressOf(Linear), 4);
          Descs[OperandIdx].Buffer->Data[static_cast<size_t>(Linear)] =
              Descs[OperandIdx].kind() == sim::ElemKind::F32
                  ? sim::floatToWord(static_cast<float>(
                        Yielded.Tag == RuntimeValue::Kind::Float
                            ? Yielded.FloatVal
                            : static_cast<double>(Yielded.IntVal)))
                  : static_cast<uint32_t>(static_cast<int32_t>(
                        Yielded.Tag == RuntimeValue::Kind::Float
                            ? static_cast<int64_t>(Yielded.FloatVal)
                            : Yielded.IntVal));
        }
        break;
      }
      if (failed(executeOp(BodyOp)))
        return failure();
    }

    // Advance the odometer (innermost dimension fastest).
    Done = true;
    for (int D = static_cast<int>(Point.size()) - 1; D >= 0; --D) {
      if (++Point[D] < Ranges[D]) {
        Done = false;
        break;
      }
      Point[D] = 0;
    }
  }
  return success();
}

LogicalResult Interpreter::executeAccelOp(Operation *Op) {
  if (!Runtime)
    return fail("accel op executed without a DMA runtime");
  const std::string &Name = Op->getName();

  if (Name == accel::DmaInitOp::OpName) {
    Runtime->dmaInit(accel::DmaInitOp(Op).getConfig());
    return success();
  }
  // Each accel op performs its own staged copy + transfer (the batched
  // form only exists after convert-accel-to-runtime).
  if (Name == accel::SendLiteralOp::OpName) {
    int64_t Offset = intValue(Op->getOperand(0));
    int64_t End = Runtime->copyLiteralToDmaRegion(
        static_cast<int32_t>(Op->getIntAttr("literal")), Offset);
    Runtime->dmaStartSend(End - Offset, Offset);
    Runtime->dmaWaitSendCompletion();
    value(Op->getResult(0)) = RuntimeValue::fromInt(End);
    return success();
  }
  if (Name == accel::SendOp::OpName) {
    int64_t Offset = intValue(Op->getOperand(1));
    int64_t End =
        Runtime->copyToDmaRegion(memrefValue(Op->getOperand(0)), Offset);
    Runtime->dmaStartSend(End - Offset, Offset);
    Runtime->dmaWaitSendCompletion();
    value(Op->getResult(0)) = RuntimeValue::fromInt(End);
    return success();
  }
  if (Name == accel::SendDimOp::OpName) {
    int64_t Offset = intValue(Op->getOperand(1));
    const MemRefDesc &Desc = memrefValue(Op->getOperand(0));
    int64_t Size = Op->hasAttr("static_size")
                       ? Op->getIntAttr("static_size")
                       : Desc.Sizes[static_cast<size_t>(
                             Op->getIntAttr("dim"))];
    int64_t End = Runtime->copyLiteralToDmaRegion(
        static_cast<int32_t>(Size), Offset);
    Runtime->dmaStartSend(End - Offset, Offset);
    Runtime->dmaWaitSendCompletion();
    value(Op->getResult(0)) = RuntimeValue::fromInt(End);
    return success();
  }
  if (Name == accel::SendIdxOp::OpName) {
    int64_t Offset = intValue(Op->getOperand(1));
    int64_t End = Runtime->copyLiteralToDmaRegion(
        static_cast<int32_t>(intValue(Op->getOperand(0))), Offset);
    Runtime->dmaStartSend(End - Offset, Offset);
    Runtime->dmaWaitSendCompletion();
    value(Op->getResult(0)) = RuntimeValue::fromInt(End);
    return success();
  }
  if (Name == accel::RecvOp::OpName) {
    accel::RecvOp Recv(Op);
    const MemRefDesc &Desc = memrefValue(Recv.getMemRef());
    int64_t Length = Desc.numElements();
    Runtime->dmaStartRecv(Length, 0);
    Runtime->dmaWaitRecvCompletion();
    Runtime->copyFromDmaRegion(Desc, 0, Recv.getMode() == "accumulate");
    value(Op->getResult(0)) = RuntimeValue::fromInt(0);
    return success();
  }
  return fail("unsupported accel op '" + Name + "'");
}

LogicalResult Interpreter::executeRuntimeCall(Operation *Op) {
  const std::string Callee = func::CallOp(Op).getCallee();
  if (!Runtime)
    return fail("runtime call executed without a DMA runtime");
  namespace rt = transforms::rtcall;

  if (Callee == rt::DmaInit) {
    Runtime->dmaInit(Op->getAttr("dma_config").getDmaConfigValue());
    return success();
  }
  if (Callee == rt::CopyToDma) {
    int64_t End = Runtime->copyToDmaRegion(memrefValue(Op->getOperand(0)),
                                           intValue(Op->getOperand(1)));
    value(Op->getResult(0)) = RuntimeValue::fromInt(End);
    return success();
  }
  if (Callee == rt::CopyLiteralToDma || Callee == rt::CopyIndexToDma) {
    RuntimeValue &Literal = value(Op->getOperand(0));
    int64_t End = Runtime->copyLiteralToDmaRegion(
        static_cast<int32_t>(Literal.IntVal), intValue(Op->getOperand(1)));
    value(Op->getResult(0)) = RuntimeValue::fromInt(End);
    return success();
  }
  if (Callee == rt::StartSend) {
    int64_t End = intValue(Op->getOperand(0));
    int64_t Start = intValue(Op->getOperand(1));
    Runtime->dmaStartSend(End - Start, Start);
    return success();
  }
  if (Callee == rt::WaitSend) {
    Runtime->dmaWaitSendCompletion();
    return success();
  }
  if (Callee == rt::StartRecv) {
    Runtime->dmaStartRecv(intValue(Op->getOperand(0)),
                          intValue(Op->getOperand(1)));
    return success();
  }
  if (Callee == rt::WaitRecv) {
    Runtime->dmaWaitRecvCompletion();
    return success();
  }
  if (Callee == rt::CopyFromDma) {
    bool Accumulate = Op->getAttr("accumulate").getIntValue() != 0;
    Runtime->copyFromDmaRegion(memrefValue(Op->getOperand(0)),
                               intValue(Op->getOperand(1)), Accumulate);
    return success();
  }
  return fail("unknown runtime callee '" + Callee + "'");
}
