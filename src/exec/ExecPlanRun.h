//===- ExecPlanRun.h - Threaded-dispatch ExecPlan executor ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second execution engine for compiled ExecPlans: a pre-decode stage
/// rewrites the plan's instruction vector once per plan-cache entry into a
/// dispatch-ready program (dense jump-table opcodes, side-table indices and
/// slot-pool offsets resolved to raw pointers, specialized micro-kernels
/// bound per linalg.generic), which a token-threaded dispatch loop then
/// executes — computed goto on GCC/Clang, a portable switch fallback
/// behind AXI4MLIR_FORCE_SWITCH_DISPATCH.
///
/// At decode time the common `linalg.generic` body shapes are recognized
/// and bound to straight-line C++ micro-kernels with hardwired inner-loop
/// strides:
///   * mul+add accumulate (matmul and conv kernels, any rank whose
///     indexing maps are linear in the loop dims),
///   * single elementwise binary epilogues,
///   * staging copies (empty body yielding the input element).
/// Everything else falls back to the generic odometer. All kernels charge
/// HostPerfModel with exactly the events, order and addresses of
/// ExecPlan::run, so every modeled counter stays bit-identical —
/// PlanEquivalenceFuzzTest pins this differentially.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_EXECPLANRUN_H
#define AXI4MLIR_EXEC_EXECPLANRUN_H

#include "exec/ExecPlan.h"
#include "support/LogicalResult.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace exec {

/// Which executor runs a function: the legacy tree walker, the PR-3 plan
/// interpreter (one switch per instruction), or the pre-decoded
/// threaded-dispatch engine (the default).
enum class ExecMode { Walker, Plan, Threaded };

/// Parses "walker" | "plan" | "threaded"; sets \p Error otherwise.
LogicalResult parseExecMode(const std::string &Text, ExecMode &Mode,
                            std::string &Error);
const char *toString(ExecMode Mode);

/// A plan pre-decoded into dispatch-ready form. Owns copies of everything
/// it needs (like ExecPlan itself), so it stays valid after the source
/// plan is destroyed. Decode is total: every valid plan decodes.
class DecodedPlan {
public:
  /// Pre-decodes \p Plan (after any optimizer passes have run — the
  /// decoded program snapshots the plan as-is).
  static std::unique_ptr<DecodedPlan> decode(const ExecPlan &Plan);
  ~DecodedPlan();

  /// Executes via the threaded dispatch loop. Same contract (arguments,
  /// diagnostics, perf charges) as ExecPlan::run.
  LogicalResult run(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                    const std::vector<runtime::MemRefDesc> &Arguments,
                    std::string &Error) const;

  /// Disassembles the dispatch-ready program (golden-pinned in
  /// ExecPlanTest, matching the ExecPlan::print goldens).
  void print(std::ostream &OS) const;
  std::string printToString() const;

  /// linalg.generic sites bound to a specialized micro-kernel.
  unsigned numSpecializedKernels() const;

  /// True when this build dispatches via computed goto (GCC/Clang and
  /// not AXI4MLIR_FORCE_SWITCH_DISPATCH).
  static bool usesComputedGoto();

private:
  DecodedPlan();
  std::unique_ptr<DecodedProgram> Impl;
};

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_EXECPLANRUN_H
