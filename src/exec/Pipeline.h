//===- Pipeline.h - End-to-end driver API -----------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's top-level convenience API: build a linalg workload, run
/// the AXI4MLIR pipeline (or a baseline), execute it on the simulated SoC
/// and return validated perf counters. The examples and every benchmark
/// binary are built on these entry points.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_PIPELINE_H
#define AXI4MLIR_EXEC_PIPELINE_H

#include "dialects/Func.h"
#include "exec/ExecPlanRun.h"
#include "exec/ManualDrivers.h"
#include "sim/SoC.h"
#include "transforms/Passes.h"

#include <optional>
#include <string>

namespace axi4mlir {
namespace exec {

/// Workload + system configuration for one MatMul experiment.
struct MatMulRunConfig {
  int64_t M = 64, N = 64, K = 64;
  sim::MatMulAccelerator::Version Version =
      sim::MatMulAccelerator::Version::V3;
  /// Square accelerator size (Table I: 4, 8 or 16).
  int64_t AccelSize = 8;
  /// Optional rectangular tiles (v4 only); 0 = use AccelSize.
  int64_t TileM = 0, TileN = 0, TileK = 0;
  /// Dataflow strategy: Ns / As / Bs / Cs.
  std::string Flow = "Ns";
  /// AXI4MLIR options (ignored by manual/CPU runs).
  bool CpuTiling = true;
  bool SpecializeCopies = true;
  /// Partial-tile strategy for extents not divisible by the tile
  /// (ignored by manual/CPU runs; Reject reproduces the legacy error).
  transforms::RemainderMode Remainder = transforms::RemainderMode::Pad;
  sim::ElemKind Kind = sim::ElemKind::I32;
  sim::SoCParams Params;
  /// Validate numerics against the reference kernel (costs an extra
  /// reference execution; disable in large sweeps).
  bool Validate = true;
  uint32_t Seed = 7;
  /// Plan-optimizer spec for the compiled executor: "none" (default),
  /// "all", or a comma list of fold/dce/licm/coalesce.
  std::string PlanOpt;
  /// Which execution engine interprets the lowered host code.
  ExecMode Exec = ExecMode::Threaded;
  /// Fault schedule + recovery policy for the run (empty events =
  /// fault-free; the injection hooks stay cold).
  sim::FaultPlan Faults;
  /// Protocol-identical spare accelerators registered as failover targets
  /// (scored by the TilingPlan modeled cost of the selected plan).
  unsigned SpareAccelerators = 0;
};

/// Result of one experiment run.
struct RunResult {
  bool Ok = false;
  bool NumericsMatch = false;
  std::string Error;
  sim::PerfReport Report;
  /// Name of the accelerator the planning layer dispatched to (empty for
  /// manual/CPU runs).
  std::string SelectedAccelerator;
};

/// Builds `func @matmul_call(%A, %B, %C)` containing one linalg.matmul.
func::FuncOp buildMatMulFunc(OpBuilder &Builder, int64_t M, int64_t N,
                             int64_t K, sim::ElemKind Kind);

/// Builds `func @conv_call(%I, %W, %O)` containing one
/// linalg.conv_2d_nchw_fchw.
func::FuncOp buildConvFunc(OpBuilder &Builder, int64_t Batch,
                           int64_t InChannels, int64_t InHW,
                           int64_t OutChannels, int64_t FilterHW,
                           int64_t Stride, sim::ElemKind Kind);

/// Full AXI4MLIR path: IR -> pipeline -> interpret on the simulated SoC.
RunResult runMatMulAxi4mlir(const MatMulRunConfig &Config);

/// Hand-written driver baseline (cpp_MANUAL).
RunResult runMatMulManual(const MatMulRunConfig &Config);

/// CPU-only execution of the tiled linalg.generic (mlir_CPU baseline).
RunResult runMatMulCpuOnly(const MatMulRunConfig &Config);

/// One ResNet-style convolution layer.
struct ConvRunConfig {
  int64_t Batch = 1, InChannels = 64, InHW = 58, OutChannels = 64,
          FilterHW = 3, Stride = 1;
  bool CpuTiling = false; // conv tiles are already output-slice shaped
  bool SpecializeCopies = true;
  transforms::RemainderMode Remainder = transforms::RemainderMode::Pad;
  sim::ElemKind Kind = sim::ElemKind::I32;
  sim::SoCParams Params;
  bool Validate = true;
  uint32_t Seed = 11;
  /// Plan-optimizer spec (see MatMulRunConfig::PlanOpt).
  std::string PlanOpt;
  /// Which execution engine interprets the lowered host code.
  ExecMode Exec = ExecMode::Threaded;
  /// Fault schedule + failover spares (see MatMulRunConfig).
  sim::FaultPlan Faults;
  unsigned SpareAccelerators = 0;
};

RunResult runConvAxi4mlir(const ConvRunConfig &Config);
RunResult runConvManual(const ConvRunConfig &Config);

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_PIPELINE_H
