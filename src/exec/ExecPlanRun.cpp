//===- ExecPlanRun.cpp - Threaded-dispatch ExecPlan executor --------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Decode stage + token-threaded dispatch loop + specialized odometer
// micro-kernels. The contract with ExecPlan::run is exact: identical
// buffers, identical diagnostics, and an identical sequence of
// HostPerfModel charges (same events, same order, same addresses), so
// every modeled counter is bit-identical. PlanEquivalenceFuzzTest pins
// this differentially for every fuzz case.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecPlanRun.h"

#include "runtime/StridedCopy.h"

#include <cassert>
#include <ostream>
#include <sstream>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using runtime::MemRefDesc;

/// Dispatch backend selection: computed goto is a GNU extension available
/// on GCC and Clang; everything else (or a build with
/// AXI4MLIR_FORCE_SWITCH_DISPATCH defined) uses the portable switch loop.
#if defined(AXI4MLIR_FORCE_SWITCH_DISPATCH) || \
    !(defined(__GNUC__) || defined(__clang__))
#define AXI4MLIR_SWITCH_DISPATCH 1
#else
#define AXI4MLIR_SWITCH_DISPATCH 0
#endif

//===----------------------------------------------------------------------===//
// ExecMode
//===----------------------------------------------------------------------===//

namespace axi4mlir {
namespace exec {

LogicalResult parseExecMode(const std::string &Text, ExecMode &Mode,
                            std::string &Error) {
  if (Text == "walker") {
    Mode = ExecMode::Walker;
    return success();
  }
  if (Text == "plan") {
    Mode = ExecMode::Plan;
    return success();
  }
  if (Text == "threaded") {
    Mode = ExecMode::Threaded;
    return success();
  }
  Error = "unknown exec mode '" + Text + "' (expected walker|plan|threaded)";
  return failure();
}

const char *toString(ExecMode Mode) {
  switch (Mode) {
  case ExecMode::Walker:
    return "walker";
  case ExecMode::Plan:
    return "plan";
  case ExecMode::Threaded:
    return "threaded";
  }
  return "?";
}

} // namespace exec
} // namespace axi4mlir

//===----------------------------------------------------------------------===//
// Word <-> dynamic value conversions (same trick as ExecPlan.cpp: templated
// so this file can name ExecPlan's private Cell type through deduction).
//===----------------------------------------------------------------------===//

namespace {

template <typename CellT>
inline void wordToCellImpl(uint32_t Word, bool IsF32, CellT &C) {
  if (IsF32) {
    C.Tag = CellT::Kind::Float;
    C.F = static_cast<double>(sim::wordToFloat(Word));
  } else {
    C.Tag = CellT::Kind::Int;
    C.I = static_cast<int32_t>(Word);
  }
}

template <typename CellT>
inline uint32_t cellToWordImpl(const CellT &C, bool IsF32) {
  if (IsF32)
    return sim::floatToWord(static_cast<float>(
        C.Tag == CellT::Kind::Float ? C.F : static_cast<double>(C.I)));
  return static_cast<uint32_t>(static_cast<int32_t>(
      C.Tag == CellT::Kind::Float ? static_cast<int64_t>(C.F) : C.I));
}

/// Decomposes \p Expr into Const + sum_d Coef[d]*d over the loop dims.
/// Returns false (kernel specialization illegal, generic odometer stays)
/// for Mod/FloorDiv/Symbol or products of two dim-carrying terms.
bool linearizeExpr(const AffineExpr &Expr, unsigned NumLoops, int64_t &Const,
                   std::vector<int64_t> &Coef) {
  switch (Expr.getKind()) {
  case AffineExpr::Kind::Constant:
    Const += Expr.getConstantValue();
    return true;
  case AffineExpr::Kind::Dim: {
    unsigned Pos = Expr.getPosition();
    if (Pos >= NumLoops)
      return false;
    Coef[Pos] += 1;
    return true;
  }
  case AffineExpr::Kind::Add:
    return linearizeExpr(Expr.getLHS(), NumLoops, Const, Coef) &&
           linearizeExpr(Expr.getRHS(), NumLoops, Const, Coef);
  case AffineExpr::Kind::Mul: {
    int64_t CL = 0, CR = 0;
    std::vector<int64_t> L(NumLoops, 0), R(NumLoops, 0);
    if (!linearizeExpr(Expr.getLHS(), NumLoops, CL, L) ||
        !linearizeExpr(Expr.getRHS(), NumLoops, CR, R))
      return false;
    auto AllZero = [](const std::vector<int64_t> &V) {
      for (int64_t X : V)
        if (X)
          return false;
      return true;
    };
    if (AllZero(L)) {
      Const += CL * CR;
      for (unsigned D = 0; D < NumLoops; ++D)
        Coef[D] += CL * R[D];
      return true;
    }
    if (AllZero(R)) {
      Const += CL * CR;
      for (unsigned D = 0; D < NumLoops; ++D)
        Coef[D] += CR * L[D];
      return true;
    }
    return false; // d_i * d_j: not linear
  }
  default:
    return false; // Mod, FloorDiv, Symbol
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// DecodedProgram
//===----------------------------------------------------------------------===//

namespace axi4mlir {
namespace exec {

struct DecodedProgram {
  using Inst = ExecPlan::Inst;
  using Cell = ExecPlan::Cell;
  using AllocPlan = ExecPlan::AllocPlan;
  using SubViewPlan = ExecPlan::SubViewPlan;
  using GenericPlan = ExecPlan::GenericPlan;
  using OperandPlan = ExecPlan::OperandPlan;
  using BinKind = ExecPlan::BinKind;
  using PlanOp = ExecPlan::Op;

  /// Dispatch-ready opcodes: ExecPlan's opcodes (same numeric values) plus
  /// the specialized generic kernels and the span-end sentinel. The
  /// computed-goto jump table is indexed by this value, so the handler
  /// order in exec() must match this order exactly.
  enum class DOp : uint8_t {
    ConstInt,
    ConstFloat,
    Binary,
    IndexCast,
    LoopBegin,
    LoopEnd,
    Alloc,
    Dealloc,
    Load,
    Store,
    Copy,
    SubView,
    Generic,
    AccelDmaInit,
    AccelSendLiteral,
    AccelSend,
    AccelSendDim,
    AccelSendIdx,
    AccelRecv,
    CallDmaInit,
    CallCopyToDma,
    CallCopyLiteralToDma,
    CallStartSend,
    CallWaitSend,
    CallStartRecv,
    CallWaitRecv,
    CallCopyFromDma,
    CallSendFused,
    CallRecvFused,
    /// linalg.generic bodies bound to specialized micro-kernels.
    GenericMulAdd,
    GenericCopy,
    GenericEltwise,
    /// End of a span (appended to the program and every generic body).
    Return,
  };
  static constexpr unsigned NumDOps = static_cast<unsigned>(DOp::Return) + 1;

  /// One dispatch-ready instruction: the original operand slots plus
  /// pre-resolved side-table and slot-pool pointers (no per-dispatch
  /// indexing through the plan's tables).
  struct DInst {
    DOp Code = DOp::Return;
    uint8_t Sub = 0;
    int32_t Dst = -1;
    int32_t A = -1;
    int32_t B = -1;
    int32_t C = -1;
    int32_t Aux = -1;
    int64_t Imm = 0;
    double FImm = 0;
    const void *Side = nullptr;  ///< Alloc/SubView/Generic/DmaConfig entry.
    const int32_t *Pool = nullptr; ///< Load/Store index-slot list.
  };

  /// Per-operand linear decomposition of the indexing map: map result r
  /// equals Consts[r] + sum_d Coef[r][d] * d. Folded against the runtime
  /// strides once per kernel execution.
  struct LinFold {
    bool Linear = false;
    std::vector<int64_t> Consts;            ///< One per map result.
    std::vector<std::vector<int64_t>> Coef; ///< [result][loop dim].
  };

  enum class GKind : uint8_t { Odometer, MulAdd, CopyK, Eltwise };

  /// Decode-time classification of one linalg.generic site.
  struct DecodedGeneric {
    const GenericPlan *G = nullptr; ///< Our copy in Generics.
    GKind Kind = GKind::Odometer;
    std::vector<LinFold> Lin;   ///< Per operand (valid when all Linear).
    std::vector<DInst> BodyCode; ///< Decoded payload span (+ Return).
    // MulAdd: t = mul(V[MulArgA], V[MulArgB]); y = add with t on the
    // recorded side and V[AddArg] on the other; yield y.
    uint8_t MulArgA = 0, MulArgB = 0, AddArg = 0;
    bool AddTOnLhs = false;
    uint8_t MulSub = 0, AddSub = 0;
    // Eltwise: y = bin(V[EltArgA], V[EltArgB]); yield y.
    uint8_t EltArgA = 0, EltArgB = 0, EltSub = 0;
  };

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  std::string FuncName;
  unsigned NumArgs = 0;
  unsigned NumSlots = 0;
  std::vector<int32_t> SlotPool;
  std::vector<AllocPlan> Allocs;
  std::vector<SubViewPlan> SubViews;
  std::vector<GenericPlan> Generics;
  std::vector<accel::DmaInitConfig> DmaConfigs;
  std::vector<DecodedGeneric> DGenerics;
  std::vector<DInst> Code;
  unsigned NumSpecialized = 0;

  struct RunState {
    sim::SoC &Soc;
    runtime::DmaRuntime *Runtime;
    std::vector<Cell> Cells;
    std::vector<int64_t> Scratch;
    std::string Error;

    RunState(sim::SoC &Soc, runtime::DmaRuntime *Runtime)
        : Soc(Soc), Runtime(Runtime) {}

    LogicalResult fail(std::string Message) {
      if (Error.empty())
        Error = std::move(Message);
      return failure();
    }
  };

  //===--------------------------------------------------------------------===//
  // Entry points (defined below)
  //===--------------------------------------------------------------------===//

  void decode(const ExecPlan &Plan);
  LogicalResult run(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                    const std::vector<MemRefDesc> &Arguments,
                    std::string &Error) const;
  void print(std::ostream &OS) const;

private:
  void decodeSpan(const std::vector<Inst> &In, std::vector<DInst> &Out);
  void classifyGeneric(DecodedGeneric &DG);
  LogicalResult exec(const DInst *Base, RunState &S) const;
  LogicalResult runOdometer(const DecodedGeneric &DG, RunState &S) const;
  int classifyKinds(const DecodedGeneric &DG, RunState &S) const;
  template <bool IsF32>
  void mulAddKernel(const DecodedGeneric &DG, RunState &S) const;
  template <bool IsF32>
  void copyKernel(const DecodedGeneric &DG, RunState &S) const;
  template <bool IsF32>
  void eltwiseKernel(const DecodedGeneric &DG, RunState &S) const;
};

} // namespace exec
} // namespace axi4mlir

using DOp = DecodedProgram::DOp;
using DInst = DecodedProgram::DInst;

// Decode relies on ExecPlan::Op values mapping onto the DOp prefix 1:1.
static_assert(static_cast<uint8_t>(DecodedProgram::PlanOp::ConstInt) ==
                  static_cast<uint8_t>(DOp::ConstInt),
              "DOp must begin with ExecPlan's opcodes");
static_assert(static_cast<uint8_t>(DecodedProgram::PlanOp::Generic) ==
                  static_cast<uint8_t>(DOp::Generic),
              "DOp must begin with ExecPlan's opcodes");
static_assert(static_cast<uint8_t>(DecodedProgram::PlanOp::CallRecvFused) ==
                  static_cast<uint8_t>(DOp::CallRecvFused),
              "DOp must begin with ExecPlan's opcodes");

//===----------------------------------------------------------------------===//
// Decode
//===----------------------------------------------------------------------===//

void DecodedProgram::decodeSpan(const std::vector<Inst> &In,
                                std::vector<DInst> &Out) {
  Out.clear();
  Out.reserve(In.size() + 1);
  for (const Inst &I : In) {
    DInst D;
    // ExecPlan::Op and the first 29 DOp values coincide numerically.
    D.Code = static_cast<DOp>(static_cast<uint8_t>(I.Code));
    D.Sub = I.Sub;
    D.Dst = I.Dst;
    D.A = I.A;
    D.B = I.B;
    D.C = I.C;
    D.Aux = I.Aux;
    D.Imm = I.Imm;
    D.FImm = I.FImm;
    switch (I.Code) {
    case PlanOp::Load:
    case PlanOp::Store:
      D.Pool = SlotPool.data() + I.Aux;
      break;
    case PlanOp::Alloc:
      D.Side = &Allocs[I.Aux];
      break;
    case PlanOp::SubView:
      D.Side = &SubViews[I.Aux];
      break;
    case PlanOp::Generic: {
      const DecodedGeneric &DG = DGenerics[I.Aux];
      D.Side = &DG;
      switch (DG.Kind) {
      case GKind::MulAdd:
        D.Code = DOp::GenericMulAdd;
        break;
      case GKind::CopyK:
        D.Code = DOp::GenericCopy;
        break;
      case GKind::Eltwise:
        D.Code = DOp::GenericEltwise;
        break;
      case GKind::Odometer:
        break;
      }
      break;
    }
    case PlanOp::AccelDmaInit:
    case PlanOp::CallDmaInit:
      D.Side = &DmaConfigs[I.Aux];
      break;
    default:
      break;
    }
    Out.push_back(D);
  }
  Out.push_back(DInst()); // Return sentinel (also the empty-loop target)
}

void DecodedProgram::classifyGeneric(DecodedGeneric &DG) {
  const GenericPlan &G = *DG.G;
  const unsigned NumLoops = static_cast<unsigned>(G.Ranges.size());
  DG.Kind = GKind::Odometer;

  // Outputs are single-yield only, and the kernels index body arguments
  // by operand position, so operands and body args must line up 1:1.
  if (G.Operands.size() != G.BodyArgSlots.size() ||
      G.Operands.size() != static_cast<size_t>(G.NumInputs) + 1 ||
      G.YieldSlots.size() != 1)
    return;

  // Every operand's indexing map must be linear in the loop dims so the
  // per-dim stride fold (and thus the hardwired inner-loop increments)
  // computes exactly the addresses the generic odometer would.
  DG.Lin.assign(G.Operands.size(), LinFold());
  for (size_t K = 0; K < G.Operands.size(); ++K) {
    const OperandPlan &P = G.Operands[K];
    LinFold &L = DG.Lin[K];
    size_t NumResults = P.Projected ? P.DimPos.size() : P.Exprs.size();
    L.Consts.assign(NumResults, 0);
    L.Coef.assign(NumResults, std::vector<int64_t>(NumLoops, 0));
    L.Linear = true;
    if (P.Projected) {
      for (size_t R = 0; R < P.DimPos.size(); ++R)
        L.Coef[R][P.DimPos[R]] += 1;
    } else {
      for (size_t R = 0; R < P.Exprs.size(); ++R)
        if (!linearizeExpr(P.Exprs[R], NumLoops, L.Consts[R], L.Coef[R])) {
          L.Linear = false;
          break;
        }
    }
    if (!L.Linear)
      return;
  }

  auto ArgIndex = [&](int32_t Slot) -> int {
    for (size_t K = 0; K < G.BodyArgSlots.size(); ++K)
      if (G.BodyArgSlots[K] == Slot)
        return static_cast<int>(K);
    return -1;
  };

  // Staging copy: empty body yielding the input element.
  if (G.Body.empty() && G.Operands.size() == 2 &&
      G.YieldSlots[0] == G.BodyArgSlots[0]) {
    DG.Kind = GKind::CopyK;
    return;
  }

  // Elementwise epilogue: one binary over two body args, yielded.
  if (G.Body.size() == 1 && G.Body[0].Code == PlanOp::Binary &&
      G.YieldSlots[0] == G.Body[0].Dst && ArgIndex(G.Body[0].Dst) < 0 &&
      G.Operands.size() <= 4) {
    int A = ArgIndex(G.Body[0].A);
    int B = ArgIndex(G.Body[0].B);
    if (A >= 0 && B >= 0) {
      DG.Kind = GKind::Eltwise;
      DG.EltArgA = static_cast<uint8_t>(A);
      DG.EltArgB = static_cast<uint8_t>(B);
      DG.EltSub = G.Body[0].Sub;
      return;
    }
  }

  // Accumulating mul+add (matmul, and conv via the linear fold above):
  //   t = mul(arg, arg); y = add(arg, t) | add(t, arg); yield y.
  if (G.Body.size() == 2 && G.Body[0].Code == PlanOp::Binary &&
      G.Body[1].Code == PlanOp::Binary &&
      static_cast<BinKind>(G.Body[0].Sub & 0x7) == BinKind::Mul &&
      static_cast<BinKind>(G.Body[1].Sub & 0x7) == BinKind::Add &&
      G.Operands.size() == 3 && G.YieldSlots[0] == G.Body[1].Dst &&
      G.Body[1].Dst != G.Body[0].Dst && ArgIndex(G.Body[0].Dst) < 0) {
    int MA = ArgIndex(G.Body[0].A);
    int MB = ArgIndex(G.Body[0].B);
    if (MA < 0 || MB < 0)
      return;
    int32_t T = G.Body[0].Dst;
    int Other = -1;
    bool TOnLhs = false;
    if (G.Body[1].A == T && (Other = ArgIndex(G.Body[1].B)) >= 0)
      TOnLhs = true;
    else if (G.Body[1].B == T && (Other = ArgIndex(G.Body[1].A)) >= 0)
      TOnLhs = false;
    else
      return;
    DG.Kind = GKind::MulAdd;
    DG.MulArgA = static_cast<uint8_t>(MA);
    DG.MulArgB = static_cast<uint8_t>(MB);
    DG.AddArg = static_cast<uint8_t>(Other);
    DG.AddTOnLhs = TOnLhs;
    DG.MulSub = G.Body[0].Sub;
    DG.AddSub = G.Body[1].Sub;
  }
}

void DecodedProgram::decode(const ExecPlan &Plan) {
  // Copy everything first so every Side/Pool pointer built below stays
  // stable for the life of the decoded program.
  FuncName = Plan.FuncName;
  NumArgs = Plan.NumArgs;
  NumSlots = Plan.NumSlots;
  SlotPool = Plan.SlotPool;
  Allocs = Plan.Allocs;
  SubViews = Plan.SubViews;
  Generics = Plan.Generics;
  DmaConfigs = Plan.DmaConfigs;

  DGenerics.resize(Generics.size());
  for (size_t K = 0; K < Generics.size(); ++K) {
    DGenerics[K].G = &Generics[K];
    classifyGeneric(DGenerics[K]);
    if (DGenerics[K].Kind != GKind::Odometer)
      ++NumSpecialized;
  }
  // Bodies may themselves contain generics, so decode them after every
  // site is classified.
  for (size_t K = 0; K < Generics.size(); ++K)
    decodeSpan(Generics[K].Body, DGenerics[K].BodyCode);
  decodeSpan(Plan.Program, Code);
}

//===----------------------------------------------------------------------===//
// Dispatch loop
//===----------------------------------------------------------------------===//

#if AXI4MLIR_SWITCH_DISPATCH
#define OP(name) case DOp::name
#define DISPATCH() continue
#else
#define OP(name) H_##name
#define DISPATCH() goto *JumpTable[static_cast<uint8_t>(Ip->Code)]
#endif

// Runtime-facing handlers bounce out the moment a DMA call reports a
// non-Ok status, with the same failure text as the other two executors
// (recovery has already absorbed whatever it could by then).
#define RT_STATUS_CHECK(Rt)                                                    \
  do {                                                                         \
    if ((Rt).status() != sim::AccelStatus::Ok)                                 \
      return S.fail((Rt).statusErrorText());                                   \
  } while (false)

LogicalResult DecodedProgram::exec(const DInst *Base, RunState &S) const {
  sim::HostPerfModel &Perf = S.Soc.perf();
  Cell *Cells = S.Cells.data();
  const DInst *Ip = Base;

#if !AXI4MLIR_SWITCH_DISPATCH
  // One entry per DOp, in DOp order.
  static const void *const JumpTable[NumDOps] = {
      &&H_ConstInt,
      &&H_ConstFloat,
      &&H_Binary,
      &&H_IndexCast,
      &&H_LoopBegin,
      &&H_LoopEnd,
      &&H_Alloc,
      &&H_Dealloc,
      &&H_Load,
      &&H_Store,
      &&H_Copy,
      &&H_SubView,
      &&H_Generic,
      &&H_AccelDmaInit,
      &&H_AccelSendLiteral,
      &&H_AccelSend,
      &&H_AccelSendDim,
      &&H_AccelSendIdx,
      &&H_AccelRecv,
      &&H_CallDmaInit,
      &&H_CallCopyToDma,
      &&H_CallCopyLiteralToDma,
      &&H_CallStartSend,
      &&H_CallWaitSend,
      &&H_CallStartRecv,
      &&H_CallWaitRecv,
      &&H_CallCopyFromDma,
      &&H_CallSendFused,
      &&H_CallRecvFused,
      &&H_GenericMulAdd,
      &&H_GenericCopy,
      &&H_GenericEltwise,
      &&H_Return,
  };
  DISPATCH();
#else
  for (;;) {
    switch (Ip->Code) {
#endif

  OP(ConstInt) : {
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = Ip->Imm;
    ++Ip;
    DISPATCH();
  }
  OP(ConstFloat) : {
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Float;
    C.F = Ip->FImm;
    ++Ip;
    DISPATCH();
  }
  OP(Binary) : {
    const Cell &LHS = Cells[Ip->A];
    const Cell &RHS = Cells[Ip->B];
    Perf.onArith(1);
    // The LHS tag selects the interpretation of both operands, exactly
    // as in the walker and the plan interpreter.
    bool IsFloat = LHS.Tag == Cell::Kind::Float;
    double A = IsFloat ? LHS.F : static_cast<double>(LHS.I);
    double B = IsFloat ? RHS.F : static_cast<double>(RHS.I);
    double R = 0;
    switch (static_cast<BinKind>(Ip->Sub & 0x7)) {
    case BinKind::Add:
      R = A + B;
      break;
    case BinKind::Mul:
      R = A * B;
      break;
    case BinKind::Sub:
      R = A - B;
      break;
    case BinKind::Div:
      R = A / B;
      break;
    case BinKind::Max:
      R = A > B ? A : B;
      break;
    }
    Cell &D = Cells[Ip->Dst];
    if (Ip->Sub & ExecPlan::BinFloatResult) {
      D.Tag = Cell::Kind::Float;
      D.F = R;
    } else {
      D.Tag = Cell::Kind::Int;
      D.I = static_cast<int64_t>(R);
    }
    ++Ip;
    DISPATCH();
  }
  OP(IndexCast) : {
    Cells[Ip->Dst] = Cells[Ip->A];
    ++Ip;
    DISPATCH();
  }
  OP(LoopBegin) : {
    int64_t LowerBound = Cells[Ip->A].I;
    int64_t UpperBound = Cells[Ip->B].I;
    int64_t Step = Cells[Ip->C].I;
    if (Step <= 0)
      return S.fail("scf.for requires a positive step");
    if (LowerBound >= UpperBound) {
      Ip = Base + Ip->Aux; // continue after LoopEnd
      DISPATCH();
    }
    Perf.onLoopIteration();
    Cell &Iv = Cells[Ip->Dst];
    Iv.Tag = Cell::Kind::Int;
    Iv.I = LowerBound;
    ++Ip;
    DISPATCH();
  }
  OP(LoopEnd) : {
    Cell &Iv = Cells[Ip->Dst];
    int64_t Next = Iv.I + Cells[Ip->C].I;
    if (Next < Cells[Ip->B].I) {
      Perf.onLoopIteration();
      Iv.I = Next;
      Ip = Base + Ip->Aux; // back to the loop body
      DISPATCH();
    }
    ++Ip;
    DISPATCH();
  }
  OP(Alloc) : {
    const AllocPlan &Info = *static_cast<const AllocPlan *>(Ip->Side);
    Perf.onArith(10); // allocator call
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::MemRef;
    C.M = MemRefDesc::alloc(Info.Shape, Info.Kind);
    ++Ip;
    DISPATCH();
  }
  OP(Dealloc) : {
    Perf.onArith(10);
    ++Ip;
    DISPATCH();
  }
  OP(Load) : {
    const MemRefDesc &Desc = Cells[Ip->A].M;
    const int32_t *IndexSlots = Ip->Pool;
    int64_t Linear = Desc.Offset;
    for (unsigned K = 0; K < Ip->Sub; ++K) {
      int64_t Index = Cells[IndexSlots[K]].I;
      assert(Index >= 0 && Index < Desc.Sizes[K] &&
             "memref index out of bounds");
      Linear += Index * Desc.Strides[K];
    }
    Perf.onArith(Ip->Sub); // address computation
    Perf.onScalarLoad(Desc.addressOf(Linear), 4);
    uint32_t Word = Desc.Buffer->Data[static_cast<size_t>(Linear)];
    wordToCellImpl(Word, Desc.kind() == sim::ElemKind::F32, Cells[Ip->Dst]);
    ++Ip;
    DISPATCH();
  }
  OP(Store) : {
    const MemRefDesc &Desc = Cells[Ip->B].M;
    const int32_t *IndexSlots = Ip->Pool;
    int64_t Linear = Desc.Offset;
    for (unsigned K = 0; K < Ip->Sub; ++K) {
      int64_t Index = Cells[IndexSlots[K]].I;
      assert(Index >= 0 && Index < Desc.Sizes[K] &&
             "memref index out of bounds");
      Linear += Index * Desc.Strides[K];
    }
    Perf.onArith(Ip->Sub);
    Perf.onScalarStore(Desc.addressOf(Linear), 4);
    Desc.Buffer->Data[static_cast<size_t>(Linear)] =
        cellToWordImpl(Cells[Ip->A], Desc.kind() == sim::ElemKind::F32);
    ++Ip;
    DISPATCH();
  }
  OP(Copy) : {
    const MemRefDesc &Source = Cells[Ip->A].M;
    const MemRefDesc &Dest = Cells[Ip->B].M;
    if (Source.Sizes != Dest.Sizes)
      return S.fail("memref.copy shape mismatch");
    runtime::stridedCopy(
        Perf, runtime::makeCopyRequest(Source, Dest,
                                       Source.innermostContiguous() &&
                                           Dest.innermostContiguous()));
    ++Ip;
    DISPATCH();
  }
  OP(SubView) : {
    const SubViewPlan &Info = *static_cast<const SubViewPlan *>(Ip->Side);
    const MemRefDesc &Source = Cells[Ip->A].M;
    S.Scratch.clear();
    const int32_t *OffsetSlots = SlotPool.data() + Info.PoolOffset;
    for (unsigned K = 0; K < Info.NumOffsets; ++K)
      S.Scratch.push_back(Cells[OffsetSlots[K]].I);
    Perf.onArith(2 * Source.rank()); // descriptor arithmetic
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::MemRef;
    C.M = Source.subview(S.Scratch, Info.StaticSizes);
    ++Ip;
    DISPATCH();
  }
  OP(Generic) : {
    const auto &DG = *static_cast<const DecodedGeneric *>(Ip->Side);
    if (failed(runOdometer(DG, S)))
      return failure();
    ++Ip;
    DISPATCH();
  }

  //===--------------------------------------------------------------------===//
  // accel ops (each performs its own staged copy + transfer)
  //===--------------------------------------------------------------------===//
  OP(AccelDmaInit) : {
    if (!S.Runtime)
      return S.fail("accel op executed without a DMA runtime");
    S.Runtime->dmaInit(*static_cast<const accel::DmaInitConfig *>(Ip->Side));
    ++Ip;
    DISPATCH();
  }
  OP(AccelSendLiteral) : {
    if (!S.Runtime)
      return S.fail("accel op executed without a DMA runtime");
    runtime::DmaRuntime &Rt = *S.Runtime;
    int64_t Offset = Cells[Ip->A].I;
    int64_t End =
        Rt.copyLiteralToDmaRegion(static_cast<int32_t>(Ip->Imm), Offset);
    Rt.dmaStartSend(End - Offset, Offset);
    Rt.dmaWaitSendCompletion();
    RT_STATUS_CHECK(Rt);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = End;
    ++Ip;
    DISPATCH();
  }
  OP(AccelSend) : {
    if (!S.Runtime)
      return S.fail("accel op executed without a DMA runtime");
    runtime::DmaRuntime &Rt = *S.Runtime;
    int64_t Offset = Cells[Ip->B].I;
    int64_t End = Rt.copyToDmaRegion(Cells[Ip->A].M, Offset);
    Rt.dmaStartSend(End - Offset, Offset);
    Rt.dmaWaitSendCompletion();
    RT_STATUS_CHECK(Rt);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = End;
    ++Ip;
    DISPATCH();
  }
  OP(AccelSendDim) : {
    if (!S.Runtime)
      return S.fail("accel op executed without a DMA runtime");
    runtime::DmaRuntime &Rt = *S.Runtime;
    int64_t Offset = Cells[Ip->B].I;
    const MemRefDesc &Desc = Cells[Ip->A].M;
    int64_t Size =
        Ip->Sub ? Ip->Imm : Desc.Sizes[static_cast<size_t>(Ip->Imm)];
    int64_t End =
        Rt.copyLiteralToDmaRegion(static_cast<int32_t>(Size), Offset);
    Rt.dmaStartSend(End - Offset, Offset);
    Rt.dmaWaitSendCompletion();
    RT_STATUS_CHECK(Rt);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = End;
    ++Ip;
    DISPATCH();
  }
  OP(AccelSendIdx) : {
    if (!S.Runtime)
      return S.fail("accel op executed without a DMA runtime");
    runtime::DmaRuntime &Rt = *S.Runtime;
    int64_t Offset = Cells[Ip->B].I;
    int64_t End = Rt.copyLiteralToDmaRegion(
        static_cast<int32_t>(Cells[Ip->A].I), Offset);
    Rt.dmaStartSend(End - Offset, Offset);
    Rt.dmaWaitSendCompletion();
    RT_STATUS_CHECK(Rt);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = End;
    ++Ip;
    DISPATCH();
  }
  OP(AccelRecv) : {
    if (!S.Runtime)
      return S.fail("accel op executed without a DMA runtime");
    runtime::DmaRuntime &Rt = *S.Runtime;
    const MemRefDesc &Desc = Cells[Ip->A].M;
    Rt.dmaStartRecv(Desc.numElements(), 0);
    Rt.dmaWaitRecvCompletion();
    Rt.copyFromDmaRegion(Desc, 0, Ip->Sub != 0);
    RT_STATUS_CHECK(Rt);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = 0;
    ++Ip;
    DISPATCH();
  }

  //===--------------------------------------------------------------------===//
  // axirt runtime calls (batched transfers; the fully lowered form)
  //===--------------------------------------------------------------------===//
  OP(CallDmaInit) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaInit(*static_cast<const accel::DmaInitConfig *>(Ip->Side));
    ++Ip;
    DISPATCH();
  }
  OP(CallCopyToDma) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    int64_t End =
        S.Runtime->copyToDmaRegion(Cells[Ip->A].M, Cells[Ip->B].I);
    RT_STATUS_CHECK(*S.Runtime);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = End;
    ++Ip;
    DISPATCH();
  }
  OP(CallCopyLiteralToDma) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    int64_t End = S.Runtime->copyLiteralToDmaRegion(
        static_cast<int32_t>(Cells[Ip->A].I), Cells[Ip->B].I);
    RT_STATUS_CHECK(*S.Runtime);
    Cell &C = Cells[Ip->Dst];
    C.Tag = Cell::Kind::Int;
    C.I = End;
    ++Ip;
    DISPATCH();
  }
  OP(CallStartSend) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaStartSend(Cells[Ip->A].I - Cells[Ip->B].I, Cells[Ip->B].I);
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }
  OP(CallWaitSend) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaWaitSendCompletion();
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }
  OP(CallStartRecv) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaStartRecv(Cells[Ip->A].I, Cells[Ip->B].I);
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }
  OP(CallWaitRecv) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaWaitRecvCompletion();
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }
  OP(CallCopyFromDma) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->copyFromDmaRegion(Cells[Ip->A].M, Cells[Ip->B].I,
                                 Ip->Sub != 0);
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }
  OP(CallSendFused) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaStartSend(Cells[Ip->A].I - Cells[Ip->B].I, Cells[Ip->B].I);
    S.Runtime->dmaWaitSendCompletion();
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }
  OP(CallRecvFused) : {
    if (!S.Runtime)
      return S.fail("runtime call executed without a DMA runtime");
    S.Runtime->dmaStartRecv(Cells[Ip->A].I, Cells[Ip->B].I);
    S.Runtime->dmaWaitRecvCompletion();
    RT_STATUS_CHECK(*S.Runtime);
    ++Ip;
    DISPATCH();
  }

  //===--------------------------------------------------------------------===//
  // specialized generic kernels (fall back to the odometer whenever the
  // runtime element kinds contradict the decode-time classification)
  //===--------------------------------------------------------------------===//
  OP(GenericMulAdd) : {
    const auto &DG = *static_cast<const DecodedGeneric *>(Ip->Side);
    int F32 = classifyKinds(DG, S);
    bool WantF = (DG.MulSub & ExecPlan::BinFloatResult) != 0;
    bool AddF = (DG.AddSub & ExecPlan::BinFloatResult) != 0;
    if (F32 < 0 || WantF != (F32 == 1) || AddF != (F32 == 1)) {
      if (failed(runOdometer(DG, S)))
        return failure();
    } else if (F32) {
      mulAddKernel<true>(DG, S);
    } else {
      mulAddKernel<false>(DG, S);
    }
    ++Ip;
    DISPATCH();
  }
  OP(GenericCopy) : {
    const auto &DG = *static_cast<const DecodedGeneric *>(Ip->Side);
    int F32 = classifyKinds(DG, S);
    if (F32 < 0) {
      if (failed(runOdometer(DG, S)))
        return failure();
    } else if (F32) {
      copyKernel<true>(DG, S);
    } else {
      copyKernel<false>(DG, S);
    }
    ++Ip;
    DISPATCH();
  }
  OP(GenericEltwise) : {
    const auto &DG = *static_cast<const DecodedGeneric *>(Ip->Side);
    int F32 = classifyKinds(DG, S);
    bool WantF = (DG.EltSub & ExecPlan::BinFloatResult) != 0;
    if (F32 < 0 || WantF != (F32 == 1)) {
      if (failed(runOdometer(DG, S)))
        return failure();
    } else if (F32) {
      eltwiseKernel<true>(DG, S);
    } else {
      eltwiseKernel<false>(DG, S);
    }
    ++Ip;
    DISPATCH();
  }

  OP(Return) : { return success(); }

#if AXI4MLIR_SWITCH_DISPATCH
    }
  }
#endif
}

#undef OP
#undef DISPATCH
#undef RT_STATUS_CHECK

//===----------------------------------------------------------------------===//
// Generic odometer fallback (mirrors ExecPlan::runGeneric instruction for
// instruction; the body span runs through the threaded dispatcher)
//===----------------------------------------------------------------------===//

LogicalResult DecodedProgram::runOdometer(const DecodedGeneric &DG,
                                          RunState &S) const {
  const GenericPlan &G = *DG.G;
  sim::HostPerfModel &Perf = S.Soc.perf();
  const unsigned NumLoops = static_cast<unsigned>(G.Ranges.size());
  const unsigned NumOperands = static_cast<unsigned>(G.Operands.size());

  struct Resolved {
    const MemRefDesc *Desc;
    bool IsF32;
    bool Projected;
    int64_t DimStride[runtime::detail::MaxCopyRank];
  };
  assert(NumLoops <= runtime::detail::MaxCopyRank &&
         "loop nest beyond plan odometer cap");
  std::vector<Resolved> Ops(NumOperands);
  for (unsigned K = 0; K < NumOperands; ++K) {
    const OperandPlan &P = G.Operands[K];
    Resolved &R = Ops[K];
    R.Desc = &S.Cells[P.Slot].M;
    R.IsF32 = R.Desc->kind() == sim::ElemKind::F32;
    R.Projected = P.Projected;
    if (P.Projected) {
      for (unsigned D = 0; D < NumLoops; ++D)
        R.DimStride[D] = 0;
      for (unsigned Idx = 0; Idx < P.DimPos.size(); ++Idx)
        R.DimStride[P.DimPos[Idx]] += R.Desc->Strides[Idx];
    }
  }

  auto LinearAt = [&](unsigned K,
                      const std::vector<int64_t> &Point) -> int64_t {
    const Resolved &R = Ops[K];
    int64_t Linear = R.Desc->Offset;
    if (R.Projected) {
      for (unsigned D = 0; D < NumLoops; ++D)
        Linear += Point[D] * R.DimStride[D];
      return Linear;
    }
    const OperandPlan &P = G.Operands[K];
    for (unsigned Idx = 0; Idx < P.Exprs.size(); ++Idx) {
      int64_t Index = P.Exprs[Idx].eval(Point);
      assert(Index >= 0 && Index < R.Desc->Sizes[Idx] &&
             "memref index out of bounds");
      Linear += Index * R.Desc->Strides[Idx];
    }
    return Linear;
  };

  std::vector<int64_t> Point(NumLoops, 0);
  bool Done = product(G.Ranges) == 0;
  while (!Done) {
    Perf.onLoopIteration();
    Perf.onArith(3); // indexing arithmetic per point

    for (unsigned K = 0; K < NumOperands; ++K) {
      int64_t Linear = LinearAt(K, Point);
      Perf.onScalarLoad(Ops[K].Desc->addressOf(Linear), 4);
      uint32_t Word = Ops[K].Desc->Buffer->Data[static_cast<size_t>(Linear)];
      wordToCellImpl(Word, Ops[K].IsF32, S.Cells[G.BodyArgSlots[K]]);
    }

    if (!G.Body.empty() && failed(exec(DG.BodyCode.data(), S)))
      return failure();
    for (unsigned O = 0; O < G.YieldSlots.size(); ++O) {
      unsigned OperandIdx = G.NumInputs + O;
      int64_t Linear = LinearAt(OperandIdx, Point);
      Perf.onScalarStore(Ops[OperandIdx].Desc->addressOf(Linear), 4);
      Ops[OperandIdx].Desc->Buffer->Data[static_cast<size_t>(Linear)] =
          cellToWordImpl(S.Cells[G.YieldSlots[O]], Ops[OperandIdx].IsF32);
    }

    Done = true;
    for (int D = static_cast<int>(NumLoops) - 1; D >= 0; --D) {
      if (++Point[D] < G.Ranges[D]) {
        Done = false;
        break;
      }
      Point[D] = 0;
    }
  }
  return success();
}

//===----------------------------------------------------------------------===//
// Specialized micro-kernels
//===----------------------------------------------------------------------===//

/// Runtime legality gate shared by the specialized kernels: every operand
/// must have the same element kind and an indexing map whose result count
/// matches the descriptor rank. Returns 1 (f32), 0 (i32), or -1 (run the
/// generic odometer instead).
int DecodedProgram::classifyKinds(const DecodedGeneric &DG,
                                  RunState &S) const {
  const GenericPlan &G = *DG.G;
  sim::ElemKind Kind0 = S.Cells[G.Operands[0].Slot].M.kind();
  for (size_t K = 0; K < G.Operands.size(); ++K) {
    const MemRefDesc &D = S.Cells[G.Operands[K].Slot].M;
    if (D.kind() != Kind0)
      return -1;
    if (DG.Lin[K].Consts.size() != D.rank())
      return -1;
  }
  return Kind0 == sim::ElemKind::F32 ? 1 : 0;
}

namespace {

/// Per-operand iteration state for a specialized kernel: the fold of the
/// decode-time linear decomposition against the runtime strides, giving a
/// base linear index and one stride per loop dim.
struct KernelOperand {
  uint32_t *Buf;
  int64_t Lin;
  int64_t DimStride[runtime::detail::MaxCopyRank];
};

/// Loads one word the way the generic odometer does, as a double.
template <bool IsF32> inline double wordValue(uint32_t Word) {
  if (IsF32)
    return static_cast<double>(sim::wordToFloat(Word));
  return static_cast<double>(static_cast<int32_t>(Word));
}

} // namespace

/// Folds DG.Lin against the runtime descriptors. The kernels walk the
/// iteration space with an outer odometer over dims [0, NumLoops-1) and a
/// hardwired inner loop over the innermost dim, bumping each operand's
/// linear index incrementally instead of recomputing the dot product.
#define AXI4MLIR_KERNEL_PROLOGUE(CAP, NOPS)                                    \
  const GenericPlan &G = *DG.G;                                                \
  sim::HostPerfModel &Perf = S.Soc.perf();                                     \
  const unsigned NumLoops = static_cast<unsigned>(G.Ranges.size());            \
  KernelOperand Kop[CAP];                                                      \
  for (unsigned K = 0; K < (NOPS); ++K) {                                      \
    const MemRefDesc &D = S.Cells[G.Operands[K].Slot].M;                       \
    const LinFold &L = DG.Lin[K];                                              \
    Kop[K].Buf = D.Buffer->Data.data();                                        \
    int64_t Base = D.Offset;                                                   \
    for (size_t R = 0; R < L.Consts.size(); ++R)                               \
      Base += L.Consts[R] * D.Strides[R];                                      \
    Kop[K].Lin = Base;                                                         \
    for (unsigned Dim = 0; Dim < NumLoops; ++Dim) {                            \
      int64_t Stride = 0;                                                      \
      for (size_t R = 0; R < L.Consts.size(); ++R)                             \
        Stride += L.Coef[R][Dim] * D.Strides[R];                               \
      Kop[K].DimStride[Dim] = Stride;                                          \
    }                                                                          \
  }                                                                            \
  if (product(G.Ranges) == 0)                                                  \
    return;                                                                    \
  const unsigned Inner = NumLoops - 1;                                         \
  const int64_t InnerN = G.Ranges[Inner];                                      \
  int64_t Point[runtime::detail::MaxCopyRank] = {0};                           \
  (void)Point;

/// Advances the outer odometer (dims [0, Inner)) after one inner sweep;
/// breaks out of the enclosing loop when the space is exhausted.
#define AXI4MLIR_KERNEL_ADVANCE(NOPS)                                          \
  {                                                                            \
    int Dim = static_cast<int>(Inner) - 1;                                     \
    for (; Dim >= 0; --Dim) {                                                  \
      for (unsigned K = 0; K < (NOPS); ++K)                                    \
        Kop[K].Lin += Kop[K].DimStride[Dim];                                   \
      if (++Point[Dim] < G.Ranges[Dim])                                        \
        break;                                                                 \
      for (unsigned K = 0; K < (NOPS); ++K)                                    \
        Kop[K].Lin -= Kop[K].DimStride[Dim] * G.Ranges[Dim];                   \
      Point[Dim] = 0;                                                          \
    }                                                                          \
    if (Dim < 0)                                                               \
      break;                                                                   \
  }

template <bool IsF32>
void DecodedProgram::mulAddKernel(const DecodedGeneric &DG,
                                  RunState &S) const {
  AXI4MLIR_KERNEL_PROLOGUE(3, 3)
  const int64_t S0 = Kop[0].DimStride[Inner];
  const int64_t S1 = Kop[1].DimStride[Inner];
  const int64_t S2 = Kop[2].DimStride[Inner];
  uint32_t *const B0 = Kop[0].Buf, *const B1 = Kop[1].Buf,
           *const B2 = Kop[2].Buf;
  const unsigned MA = DG.MulArgA, MB = DG.MulArgB, AO = DG.AddArg;
  const bool TL = DG.AddTOnLhs;
  for (;;) {
    int64_t L0 = Kop[0].Lin, L1 = Kop[1].Lin, L2 = Kop[2].Lin;
    for (int64_t J = 0; J < InnerN; ++J) {
      // Charge order per point matches the generic odometer exactly:
      // loop iteration, indexing arith, operand loads in operand order,
      // one arith per body instruction, the yield store.
      Perf.onLoopIteration();
      Perf.onArith(3);
      double V[3];
      Perf.onScalarLoad(reinterpret_cast<uint64_t>(B0 + L0), 4);
      V[0] = wordValue<IsF32>(B0[L0]);
      Perf.onScalarLoad(reinterpret_cast<uint64_t>(B1 + L1), 4);
      V[1] = wordValue<IsF32>(B1[L1]);
      Perf.onScalarLoad(reinterpret_cast<uint64_t>(B2 + L2), 4);
      V[2] = wordValue<IsF32>(B2[L2]);
      Perf.onArith(1); // mul
      Perf.onArith(1); // add
      uint32_t OutWord;
      if (IsF32) {
        // Matches the Binary handler's double arithmetic on f32 cells:
        // the product stays an unrounded double through the add.
        double T = V[MA] * V[MB];
        double Y = TL ? T + V[AO] : V[AO] + T;
        OutWord = sim::floatToWord(static_cast<float>(Y));
      } else {
        // i32 path: the product is truncated through int64 (and the sum
        // computed on doubles of those), exactly as the interpreter's
        // Cell arithmetic does.
        int64_t T = static_cast<int64_t>(V[MA] * V[MB]);
        double A = TL ? static_cast<double>(T) : V[AO];
        double B = TL ? V[AO] : static_cast<double>(T);
        int64_t Y = static_cast<int64_t>(A + B);
        OutWord = static_cast<uint32_t>(static_cast<int32_t>(Y));
      }
      Perf.onScalarStore(reinterpret_cast<uint64_t>(B2 + L2), 4);
      B2[L2] = OutWord;
      L0 += S0;
      L1 += S1;
      L2 += S2;
    }
    AXI4MLIR_KERNEL_ADVANCE(3)
  }
}

template <bool IsF32>
void DecodedProgram::copyKernel(const DecodedGeneric &DG, RunState &S) const {
  AXI4MLIR_KERNEL_PROLOGUE(2, 2)
  const int64_t S0 = Kop[0].DimStride[Inner];
  const int64_t S1 = Kop[1].DimStride[Inner];
  uint32_t *const B0 = Kop[0].Buf, *const B1 = Kop[1].Buf;
  for (;;) {
    int64_t L0 = Kop[0].Lin, L1 = Kop[1].Lin;
    for (int64_t J = 0; J < InnerN; ++J) {
      Perf.onLoopIteration();
      Perf.onArith(3);
      Perf.onScalarLoad(reinterpret_cast<uint64_t>(B0 + L0), 4);
      uint32_t Word = B0[L0];
      // The odometer loads the current output element too (its value is
      // discarded, but the cache sees the access).
      Perf.onScalarLoad(reinterpret_cast<uint64_t>(B1 + L1), 4);
      uint32_t OutWord;
      if (IsF32)
        OutWord = sim::floatToWord(static_cast<float>(
            static_cast<double>(sim::wordToFloat(Word))));
      else
        OutWord = static_cast<uint32_t>(static_cast<int32_t>(Word));
      Perf.onScalarStore(reinterpret_cast<uint64_t>(B1 + L1), 4);
      B1[L1] = OutWord;
      L0 += S0;
      L1 += S1;
    }
    AXI4MLIR_KERNEL_ADVANCE(2)
  }
}

template <bool IsF32>
void DecodedProgram::eltwiseKernel(const DecodedGeneric &DG,
                                   RunState &S) const {
  const unsigned NOps = static_cast<unsigned>(DG.G->Operands.size());
  assert(NOps <= 4 && "eltwise kernel operand cap enforced at decode time");
  AXI4MLIR_KERNEL_PROLOGUE(4, NOps)
  const BinKind Kind = static_cast<BinKind>(DG.EltSub & 0x7);
  const unsigned EA = DG.EltArgA, EB = DG.EltArgB;
  const unsigned Out = NOps - 1;
  for (;;) {
    int64_t L[4];
    for (unsigned K = 0; K < NOps; ++K)
      L[K] = Kop[K].Lin;
    for (int64_t J = 0; J < InnerN; ++J) {
      Perf.onLoopIteration();
      Perf.onArith(3);
      double V[4] = {0, 0, 0, 0};
      for (unsigned K = 0; K < NOps; ++K) {
        Perf.onScalarLoad(reinterpret_cast<uint64_t>(Kop[K].Buf + L[K]), 4);
        V[K] = wordValue<IsF32>(Kop[K].Buf[L[K]]);
      }
      Perf.onArith(1);
      double A = V[EA], B = V[EB], R = 0;
      switch (Kind) {
      case BinKind::Add:
        R = A + B;
        break;
      case BinKind::Mul:
        R = A * B;
        break;
      case BinKind::Sub:
        R = A - B;
        break;
      case BinKind::Div:
        R = A / B;
        break;
      case BinKind::Max:
        R = A > B ? A : B;
        break;
      }
      uint32_t OutWord;
      if (IsF32)
        OutWord = sim::floatToWord(static_cast<float>(R));
      else
        OutWord = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int64_t>(R)));
      Perf.onScalarStore(reinterpret_cast<uint64_t>(Kop[Out].Buf + L[Out]),
                         4);
      Kop[Out].Buf[L[Out]] = OutWord;
      for (unsigned K = 0; K < NOps; ++K)
        L[K] += Kop[K].DimStride[Inner];
    }
    AXI4MLIR_KERNEL_ADVANCE(NOps)
  }
}

#undef AXI4MLIR_KERNEL_PROLOGUE
#undef AXI4MLIR_KERNEL_ADVANCE

//===----------------------------------------------------------------------===//
// Run
//===----------------------------------------------------------------------===//

LogicalResult DecodedProgram::run(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                                  const std::vector<MemRefDesc> &Arguments,
                                  std::string &Error) const {
  if (Arguments.size() != NumArgs) {
    Error = "argument count mismatch calling '" + FuncName + "'";
    return failure();
  }
  RunState S(Soc, Runtime);
  S.Cells.resize(NumSlots);
  for (unsigned Idx = 0; Idx < NumArgs; ++Idx) {
    S.Cells[Idx].Tag = Cell::Kind::MemRef;
    S.Cells[Idx].M = Arguments[Idx];
  }
  if (failed(exec(Code.data(), S))) {
    Error = S.Error.empty() ? "interpreter failure" : S.Error;
    return failure();
  }
  // Belt-and-braces end-of-run check (the per-call status checks stop the
  // run early; this catches anything signalled outside a runtime call).
  if (Runtime && Runtime->status() != sim::AccelStatus::Ok) {
    Error = Runtime->statusErrorText();
    return failure();
  }
  return success();
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

namespace {

const char *binName(uint8_t Sub) {
  switch (Sub & 0x7) {
  case 0:
    return "add";
  case 1:
    return "mul";
  case 2:
    return "sub";
  case 3:
    return "div";
  case 4:
    return "max";
  default:
    return "bin?";
  }
}

void printIndexList(std::ostream &OS, const int32_t *Pool, uint32_t Count) {
  OS << '[';
  for (uint32_t K = 0; K < Count; ++K) {
    if (K)
      OS << ", ";
    OS << '%' << Pool[K];
  }
  OS << ']';
}

} // namespace

void DecodedProgram::print(std::ostream &OS) const {
  OS << "dplan @" << FuncName << " args=" << NumArgs << " slots=" << NumSlots
     << " insts=" << (Code.size() - 1) << "+ret kernels=" << NumSpecialized
     << "\n";
  for (size_t Pc = 0; Pc < Code.size(); ++Pc) {
    const DInst &I = Code[Pc];
    OS << "  ";
    if (Pc < 10)
      OS << ' ';
    if (Pc < 100)
      OS << ' ';
    OS << Pc << ": ";
    switch (I.Code) {
    case DOp::ConstInt:
      OS << '%' << I.Dst << " = const.i " << I.Imm;
      break;
    case DOp::ConstFloat: {
      std::ostringstream Tmp;
      Tmp << I.FImm;
      OS << '%' << I.Dst << " = const.f " << Tmp.str();
      break;
    }
    case DOp::Binary:
      OS << '%' << I.Dst << " = " << binName(I.Sub)
         << ((I.Sub & ExecPlan::BinFloatResult) ? ".f %" : ".i %") << I.A
         << ", %" << I.B;
      break;
    case DOp::IndexCast:
      OS << '%' << I.Dst << " = index_cast %" << I.A;
      break;
    case DOp::LoopBegin:
      OS << "loop %" << I.Dst << " = [%" << I.A << ", %" << I.B << ") step %"
         << I.C << " -> @" << I.Aux;
      break;
    case DOp::LoopEnd:
      OS << "end -> @" << I.Aux;
      break;
    case DOp::Alloc: {
      const AllocPlan &Info = *static_cast<const AllocPlan *>(I.Side);
      OS << '%' << I.Dst << " = alloc ";
      for (int64_t Dim : Info.Shape)
        OS << Dim << 'x';
      OS << (Info.Kind == sim::ElemKind::F32 ? "f32" : "i32");
      break;
    }
    case DOp::Dealloc:
      OS << "dealloc";
      break;
    case DOp::Load:
      OS << '%' << I.Dst << " = load %" << I.A;
      printIndexList(OS, I.Pool, I.Sub);
      break;
    case DOp::Store:
      OS << "store %" << I.A << " -> %" << I.B;
      printIndexList(OS, I.Pool, I.Sub);
      break;
    case DOp::Copy:
      OS << "copy %" << I.A << " -> %" << I.B;
      break;
    case DOp::SubView: {
      const SubViewPlan &Info = *static_cast<const SubViewPlan *>(I.Side);
      OS << '%' << I.Dst << " = subview %" << I.A;
      printIndexList(OS, SlotPool.data() + Info.PoolOffset, Info.NumOffsets);
      OS << " sizes=[";
      for (size_t K = 0; K < Info.StaticSizes.size(); ++K)
        OS << (K ? ", " : "") << Info.StaticSizes[K];
      OS << ']';
      break;
    }
    case DOp::Generic:
    case DOp::GenericMulAdd:
    case DOp::GenericCopy:
    case DOp::GenericEltwise: {
      const auto &DG = *static_cast<const DecodedGeneric *>(I.Side);
      const GenericPlan &G = *DG.G;
      OS << "generic";
      switch (I.Code) {
      case DOp::GenericMulAdd:
        OS << ".muladd";
        break;
      case DOp::GenericCopy:
        OS << ".copy";
        break;
      case DOp::GenericEltwise:
        OS << ".eltwise." << binName(DG.EltSub);
        break;
      default:
        break;
      }
      OS << " ranges=[";
      for (size_t K = 0; K < G.Ranges.size(); ++K)
        OS << (K ? ", " : "") << G.Ranges[K];
      OS << "] operands=[";
      for (size_t K = 0; K < G.Operands.size(); ++K)
        OS << (K ? ", " : "") << '%' << G.Operands[K].Slot;
      OS << ']';
      if (I.Code == DOp::Generic)
        OS << " body=" << G.Body.size();
      break;
    }
    case DOp::AccelDmaInit:
      OS << "accel.dma_init #" << I.Aux;
      break;
    case DOp::AccelSendLiteral:
      OS << '%' << I.Dst << " = accel.send_literal " << I.Imm << " @ %"
         << I.A;
      break;
    case DOp::AccelSend:
      OS << '%' << I.Dst << " = accel.send %" << I.A << " @ %" << I.B;
      break;
    case DOp::AccelSendDim:
      OS << '%' << I.Dst << " = accel.send_dim %" << I.A
         << (I.Sub ? " size=" : " dim=") << I.Imm << " @ %" << I.B;
      break;
    case DOp::AccelSendIdx:
      OS << '%' << I.Dst << " = accel.send_idx %" << I.A << " @ %" << I.B;
      break;
    case DOp::AccelRecv:
      OS << '%' << I.Dst << " = accel.recv %" << I.A
         << (I.Sub ? " accumulate" : "");
      break;
    case DOp::CallDmaInit:
      OS << "dma_init #" << I.Aux;
      break;
    case DOp::CallCopyToDma:
      OS << '%' << I.Dst << " = copy_to_dma %" << I.A << " @ %" << I.B;
      break;
    case DOp::CallCopyLiteralToDma:
      OS << '%' << I.Dst << " = copy_literal_to_dma %" << I.A << " @ %"
         << I.B;
      break;
    case DOp::CallStartSend:
      OS << "start_send end=%" << I.A << " off=%" << I.B;
      break;
    case DOp::CallWaitSend:
      OS << "wait_send";
      break;
    case DOp::CallStartRecv:
      OS << "start_recv len=%" << I.A << " off=%" << I.B;
      break;
    case DOp::CallWaitRecv:
      OS << "wait_recv";
      break;
    case DOp::CallCopyFromDma:
      OS << "copy_from_dma %" << I.A << " @ %" << I.B
         << (I.Sub ? " accumulate" : "");
      break;
    case DOp::CallSendFused:
      OS << "send end=%" << I.A << " off=%" << I.B;
      break;
    case DOp::CallRecvFused:
      OS << "recv len=%" << I.A << " off=%" << I.B;
      break;
    case DOp::Return:
      OS << "ret";
      break;
    }
    OS << "\n";
  }
}

//===----------------------------------------------------------------------===//
// DecodedPlan facade
//===----------------------------------------------------------------------===//

namespace axi4mlir {
namespace exec {

DecodedPlan::DecodedPlan() = default;
DecodedPlan::~DecodedPlan() = default;

std::unique_ptr<DecodedPlan> DecodedPlan::decode(const ExecPlan &Plan) {
  std::unique_ptr<DecodedPlan> Decoded(new DecodedPlan());
  Decoded->Impl = std::make_unique<DecodedProgram>();
  Decoded->Impl->decode(Plan);
  return Decoded;
}

LogicalResult DecodedPlan::run(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                               const std::vector<MemRefDesc> &Arguments,
                               std::string &Error) const {
  return Impl->run(Soc, Runtime, Arguments, Error);
}

void DecodedPlan::print(std::ostream &OS) const { Impl->print(OS); }

std::string DecodedPlan::printToString() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

unsigned DecodedPlan::numSpecializedKernels() const {
  return Impl->NumSpecialized;
}

bool DecodedPlan::usesComputedGoto() {
#if AXI4MLIR_SWITCH_DISPATCH
  return false;
#else
  return true;
#endif
}

} // namespace exec
} // namespace axi4mlir
