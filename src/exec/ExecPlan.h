//===- ExecPlan.h - Compiled host-code execution plans ----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compile-once/execute-many lowering of one func.func into a flat vector
/// of pre-resolved instructions, replacing the tree-walking interpreter's
/// per-op string dispatch, std::map value environments and per-element
/// index-vector allocations:
///
///   * enum opcodes instead of `Name ==` string chains,
///   * dense SSA value slots numbered at plan time (a flat Cell array at
///     execution time) instead of `std::map<ValueImpl*, RuntimeValue>`,
///   * operand/index slot lists pre-resolved into a shared pool, so
///     memref.load/store stop allocating a std::vector per element,
///   * scf.for flattened into LoopBegin/LoopEnd instructions over a
///     contiguous instruction span (a PC jump instead of re-dispatching
///     through a recursive block walker),
///   * linalg.generic compiled into an odometer kernel with per-operand
///     index computations resolved to stride dot-products (projected
///     permutations) or affine-expression evaluations (no vectors
///     allocated per point) and the payload pre-compiled.
///
/// The modeled perf counters (HostPerfModel) charged during execution are
/// bit-identical to the legacy walker's: the same events fire in the same
/// order with the same addresses. ExecPlanTest asserts this across all
/// three abstraction levels. A plan owns copies of everything it needs
/// (shapes, configs, affine maps), so it stays valid after the IR is
/// mutated or destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_EXECPLAN_H
#define AXI4MLIR_EXEC_EXECPLAN_H

#include "dialects/Func.h"
#include "ir/AccelTraits.h"
#include "ir/AffineExpr.h"
#include "runtime/DmaRuntime.h"
#include "support/LogicalResult.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace analysis {
class PlanView;
} // namespace analysis
namespace exec {

struct ExecPlanBuilder;
class DecodedPlan;
struct DecodedProgram;

namespace opt {
class PlanOptimizer;
} // namespace opt

/// One function compiled to a flat instruction program.
class ExecPlan {
public:
  /// Compiles \p Func. Returns nullptr and sets \p Error on unsupported
  /// IR (same diagnostics the walker would produce). With
  /// \p FuseTransferPairs (the default), adjacent axirt
  /// start_send+wait_send / start_recv+wait_recv instruction pairs — the
  /// shape convert-accel-to-runtime always emits for the blocking driver —
  /// are fused into single opcodes, halving dispatch on the DMA-heavy
  /// sequences. Fusion charges the exact same perf events in the same
  /// order; the toggle exists for the fused-vs-unfused micro-benchmarks.
  static std::unique_ptr<ExecPlan> compile(func::FuncOp Func,
                                           std::string &Error,
                                           bool FuseTransferPairs = true);

  /// Executes the plan against \p Soc, binding \p Arguments to the
  /// function's memref parameters. \p Runtime may be null for CPU-only
  /// functions. Reusable: call once per input set.
  LogicalResult run(sim::SoC &Soc, runtime::DmaRuntime *Runtime,
                    const std::vector<runtime::MemRefDesc> &Arguments,
                    std::string &Error) const;

  size_t numInstructions() const { return Program.size(); }
  unsigned numSlots() const { return NumSlots; }
  unsigned numArguments() const { return NumArgs; }
  const std::string &funcName() const { return FuncName; }
  /// Number of start+wait pairs fused at compile time.
  unsigned numFusedSends() const { return FusedSends; }
  unsigned numFusedRecvs() const { return FusedRecvs; }

  /// Prints a stable textual disassembly of the program (one instruction
  /// per line, slots as %N, loop targets as @PC). Golden tests pin this
  /// output before/after each optimizer pass.
  void print(std::ostream &OS) const;
  std::string printToString() const;

private:
  ExecPlan() = default;
  friend struct ExecPlanBuilder;
  /// The plan optimizer (src/exec/opt) rewrites Program/SlotPool in place.
  friend class opt::PlanOptimizer;
  /// The threaded-dispatch engine (ExecPlanRun) pre-decodes the program
  /// into its own dispatch-ready representation.
  friend class DecodedPlan;
  friend struct DecodedProgram;
  /// The static analysis framework (src/analysis) reads the instruction
  /// program without executing it; PlanView re-exports the internal types
  /// to the verifier, the protocol checker and the mutation tests.
  friend class analysis::PlanView;

  /// Instruction opcodes (the former string-compare chains).
  enum class Op : uint8_t {
    ConstInt,
    ConstFloat,
    Binary,
    IndexCast,
    LoopBegin,
    LoopEnd,
    Alloc,
    Dealloc,
    Load,
    Store,
    Copy,
    SubView,
    Generic,
    AccelDmaInit,
    AccelSendLiteral,
    AccelSend,
    AccelSendDim,
    AccelSendIdx,
    AccelRecv,
    CallDmaInit,
    CallCopyToDma,
    CallCopyLiteralToDma,
    CallStartSend,
    CallWaitSend,
    CallStartRecv,
    CallWaitRecv,
    CallCopyFromDma,
    /// Fused start_send+wait_send / start_recv+wait_recv pairs (one
    /// dispatch, identical perf charges in identical order).
    CallSendFused,
    CallRecvFused,
  };

  /// Binary-op kinds packed into Inst::Sub (bit 3 = float result type).
  enum class BinKind : uint8_t { Add = 0, Mul, Sub, Div, Max };
  static constexpr uint8_t BinFloatResult = 1 << 3;

  /// One pre-resolved instruction. Slot fields index the Cell array; Aux
  /// indexes a side table or the slot pool, or is a PC target for loops.
  struct Inst {
    Op Code;
    uint8_t Sub = 0;
    int32_t Dst = -1;
    int32_t A = -1;
    int32_t B = -1;
    int32_t C = -1;
    int32_t Aux = -1;
    int64_t Imm = 0;
    double FImm = 0;
  };

  /// A dynamic value slot (the former RuntimeValue).
  struct Cell {
    enum class Kind : uint8_t { Int, Float, MemRef } Tag = Kind::Int;
    int64_t I = 0;
    double F = 0;
    runtime::MemRefDesc M;
  };

  struct AllocPlan {
    std::vector<int64_t> Shape;
    sim::ElemKind Kind = sim::ElemKind::I32;
  };

  struct SubViewPlan {
    int32_t PoolOffset = 0; ///< Offset slots in SlotPool.
    uint32_t NumOffsets = 0;
    std::vector<int64_t> StaticSizes;
  };

  /// Pre-resolved indexing for one linalg.generic operand.
  struct OperandPlan {
    int32_t Slot = -1;
    /// Projected permutation: result r reads loop dim DimPos[r]; the
    /// linear index is a plain stride dot-product.
    bool Projected = false;
    std::vector<uint32_t> DimPos;
    /// Fallback: one affine expression per map result (strided conv).
    std::vector<AffineExpr> Exprs;
  };

  struct GenericPlan {
    std::vector<int64_t> Ranges;
    unsigned NumInputs = 0;
    std::vector<OperandPlan> Operands;
    std::vector<int32_t> BodyArgSlots;
    std::vector<Inst> Body; ///< Payload ops, linalg.yield excluded.
    std::vector<int32_t> YieldSlots;
  };

  struct ExecState;

  static void fuseTransferPairs(std::vector<Inst> &Program,
                                unsigned &FusedSends, unsigned &FusedRecvs);
  LogicalResult runSpan(const std::vector<Inst> &Code, ExecState &S) const;
  LogicalResult runGeneric(const GenericPlan &G, ExecState &S) const;

  std::string FuncName;
  unsigned NumArgs = 0;
  unsigned NumSlots = 0;
  unsigned FusedSends = 0;
  unsigned FusedRecvs = 0;
  std::vector<Inst> Program;
  std::vector<int32_t> SlotPool;
  std::vector<AllocPlan> Allocs;
  std::vector<SubViewPlan> SubViews;
  std::vector<GenericPlan> Generics;
  std::vector<accel::DmaInitConfig> DmaConfigs;
};

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_EXECPLAN_H
