//===- Reference.h - Golden reference kernels -------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain (uninstrumented) reference implementations used to validate the
/// numerics of every execution path: CPU-interpreted generics, manual
/// drivers, and AXI4MLIR-generated drivers must all match these.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_REFERENCE_H
#define AXI4MLIR_EXEC_REFERENCE_H

#include "runtime/MemRefDesc.h"

#include <cstdint>
#include <random>

namespace axi4mlir {
namespace exec {

/// C += A x B over MemRef descriptors (any strides).
inline void referenceMatMul(const runtime::MemRefDesc &A,
                            const runtime::MemRefDesc &B,
                            runtime::MemRefDesc &C) {
  int64_t M = A.Sizes[0], K = A.Sizes[1], N = B.Sizes[1];
  for (int64_t I = 0; I < M; ++I) {
    for (int64_t J = 0; J < N; ++J) {
      double Sum = C.read({I, J});
      for (int64_t L = 0; L < K; ++L)
        Sum += A.read({I, L}) * B.read({L, J});
      C.write({I, J}, Sum);
    }
  }
}

/// O += conv2d(I, W), NCHW/FCHW layouts with the given strides.
inline void referenceConv2D(const runtime::MemRefDesc &Input,
                            const runtime::MemRefDesc &Filter,
                            runtime::MemRefDesc &Output, int64_t StrideH,
                            int64_t StrideW) {
  int64_t Batch = Output.Sizes[0], OutChannels = Output.Sizes[1];
  int64_t OutH = Output.Sizes[2], OutW = Output.Sizes[3];
  int64_t InChannels = Filter.Sizes[1], FilterH = Filter.Sizes[2],
          FilterW = Filter.Sizes[3];
  for (int64_t B = 0; B < Batch; ++B)
    for (int64_t OC = 0; OC < OutChannels; ++OC)
      for (int64_t OH = 0; OH < OutH; ++OH)
        for (int64_t OW = 0; OW < OutW; ++OW) {
          double Sum = Output.read({B, OC, OH, OW});
          for (int64_t IC = 0; IC < InChannels; ++IC)
            for (int64_t FH = 0; FH < FilterH; ++FH)
              for (int64_t FW = 0; FW < FilterW; ++FW)
                Sum += Input.read({B, IC, OH * StrideH + FH,
                                   OW * StrideW + FW}) *
                       Filter.read({OC, IC, FH, FW});
          Output.write({B, OC, OH, OW}, Sum);
        }
}

/// Fills a memref with small deterministic pseudo-random integers (exact
/// in both i32 and f32 arithmetic, so all paths compare bit-equal).
inline void fillRandom(runtime::MemRefDesc &Desc, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int32_t> Dist(-4, 4);
  for (uint32_t &Word : Desc.Buffer->Data) {
    int32_t V = Dist(Rng);
    Word = Desc.kind() == sim::ElemKind::F32
               ? sim::floatToWord(static_cast<float>(V))
               : static_cast<uint32_t>(V);
  }
}

/// True if the two memrefs hold identical logical shapes and values.
inline bool memrefEquals(const runtime::MemRefDesc &LHS,
                         const runtime::MemRefDesc &RHS) {
  if (LHS.Sizes != RHS.Sizes)
    return false;
  std::vector<int64_t> Point(LHS.rank(), 0);
  bool Done = LHS.numElements() == 0;
  while (!Done) {
    if (LHS.read(Point) != RHS.read(Point))
      return false;
    Done = true;
    for (int D = static_cast<int>(Point.size()) - 1; D >= 0; --D) {
      if (++Point[D] < LHS.Sizes[D]) {
        Done = false;
        break;
      }
      Point[D] = 0;
    }
  }
  return true;
}

/// Deep copy of a memref's logical contents into a fresh buffer.
inline runtime::MemRefDesc cloneMemRef(const runtime::MemRefDesc &Source) {
  runtime::MemRefDesc Copy =
      runtime::MemRefDesc::alloc(Source.Sizes, Source.kind());
  std::vector<int64_t> Point(Source.rank(), 0);
  bool Done = Source.numElements() == 0;
  while (!Done) {
    Copy.at(Point) = Source.at(Point);
    Done = true;
    for (int D = static_cast<int>(Point.size()) - 1; D >= 0; --D) {
      if (++Point[D] < Source.Sizes[D]) {
        Done = false;
        break;
      }
      Point[D] = 0;
    }
  }
  return Copy;
}

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_REFERENCE_H
