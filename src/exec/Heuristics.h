//===- Heuristics.h - Tiling/dataflow selection heuristics ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiling/dataflow selection heuristics of paper Sec. IV-C (Fig. 14):
/// *-squareTile picks the largest square tile fitting the accelerator's
/// buffers for a fixed stationary flow; "Best" searches all flows and
/// rectangular tile shapes (v4's flex size) minimizing total host<->
/// accelerator data movement.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_HEURISTICS_H
#define AXI4MLIR_EXEC_HEURISTICS_H

#include <cstdint>
#include <string>

namespace axi4mlir {
namespace exec {

/// A selected (flow, tile) configuration plus its movement estimate.
struct FlowTilingChoice {
  std::string Flow = "Ns";
  int64_t TileM = 0, TileN = 0, TileK = 0;
  /// Estimated elements moved host<->accelerator over the whole problem.
  double MovedElements = 0;
};

/// Estimated elements transferred (in + out) for a MatMul of size M,N,K
/// tiled (TM,TN,TK) under the given stationary flow. Non-divisible
/// extents are modelled as padded: tile steps round up and partial tiles
/// ship at full size (exact for divisible problems).
double estimateMovedElements(const std::string &Flow, int64_t M, int64_t N,
                             int64_t K, int64_t TileM, int64_t TileN,
                             int64_t TileK);

/// Largest square tile T whose per-operand footprint T*T fits in
/// \p CapacityWords, with the given flow. By default T must divide M, N
/// and K; with \p AllowPartial (a pad/peel remainder strategy is
/// available) non-dividing tiles are legal and the minimum-movement one
/// wins.
FlowTilingChoice chooseSquareTile(int64_t M, int64_t N, int64_t K,
                                  const std::string &Flow,
                                  int64_t CapacityWords,
                                  bool AllowPartial = false);

/// Searches all flows (Ns/As/Bs/Cs) and rectangular tiles (multiples of
/// \p TileQuantum, footprints within \p CapacityWords) for the
/// minimum-movement configuration. Without \p AllowPartial tiles must
/// divide each dimension; with it partial tiles are legal (padded
/// transfer volumes are charged by the estimate).
FlowTilingChoice chooseBestFlexible(int64_t M, int64_t N, int64_t K,
                                    int64_t CapacityWords,
                                    int64_t TileQuantum = 16,
                                    bool AllowPartial = false);

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_HEURISTICS_H
