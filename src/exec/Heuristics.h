//===- Heuristics.h - Tiling/dataflow selection heuristics ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiling/dataflow selection heuristics of paper Sec. IV-C (Fig. 14):
/// *-squareTile picks the largest square tile fitting the accelerator's
/// buffers for a fixed stationary flow; "Best" searches all flows and
/// rectangular tile shapes (v4's flex size) minimizing total host<->
/// accelerator data movement.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_EXEC_HEURISTICS_H
#define AXI4MLIR_EXEC_HEURISTICS_H

#include <cstdint>
#include <string>

namespace axi4mlir {
namespace exec {

/// A selected (flow, tile) configuration plus its movement estimate.
struct FlowTilingChoice {
  std::string Flow = "Ns";
  int64_t TileM = 0, TileN = 0, TileK = 0;
  /// Estimated elements moved host<->accelerator over the whole problem.
  double MovedElements = 0;
};

/// Estimated elements transferred (in + out) for a MatMul of size M,N,K
/// tiled (TM,TN,TK) under the given stationary flow.
double estimateMovedElements(const std::string &Flow, int64_t M, int64_t N,
                             int64_t K, int64_t TileM, int64_t TileN,
                             int64_t TileK);

/// Largest square tile T dividing M, N and K whose per-operand footprint
/// T*T fits in \p CapacityWords, with the given flow.
FlowTilingChoice chooseSquareTile(int64_t M, int64_t N, int64_t K,
                                  const std::string &Flow,
                                  int64_t CapacityWords);

/// Searches all flows (Ns/As/Bs/Cs) and rectangular tiles (multiples of
/// \p TileQuantum dividing each dimension, footprints within
/// \p CapacityWords) for the minimum-movement configuration.
FlowTilingChoice chooseBestFlexible(int64_t M, int64_t N, int64_t K,
                                    int64_t CapacityWords,
                                    int64_t TileQuantum = 16);

} // namespace exec
} // namespace axi4mlir

#endif // AXI4MLIR_EXEC_HEURISTICS_H
