//===- PlanAnalyses.h - Shared ExecPlan analyses ----------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The range/constant/trip-count analyses shared by the plan optimizer
/// (src/exec/opt) and the static verifier (PlanVerifier). Before this
/// framework existed each licm/coalesce legality rule carried its own
/// ad-hoc copy of these queries; now the optimizer's preconditions and
/// the verifier's proofs are answered by the same code, so a bug in the
/// shared math is caught by both the differential fuzzers and the
/// mutation tests.
///
/// All arithmetic mirrors ExecPlan::runSpan exactly (Binary computes in
/// double and truncates back to int64, like the tree walker).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_ANALYSIS_PLANANALYSES_H
#define AXI4MLIR_ANALYSIS_PLANANALYSES_H

#include "analysis/PlanView.h"

#include <cstdint>
#include <vector>

namespace axi4mlir {
namespace analysis {

/// A half-open word range in the staged DMA region.
struct WordRange {
  int64_t Begin = 0, End = 0;
  bool overlaps(const WordRange &O) const {
    return Begin < O.End && O.Begin < End;
  }
  bool covers(const WordRange &O) const {
    return Begin <= O.Begin && O.End <= End;
  }
  int64_t size() const { return End - Begin; }
};

/// Per-slot facts: constant values (ints only) and static memref element
/// counts. Populated by a client-driven fixpoint (the optimizer walks its
/// node tree, the verifier walks the flat program); the queries below
/// consume it.
struct SlotFacts {
  std::vector<int8_t> Known;     ///< slot holds one constant everywhere
  std::vector<int64_t> Value;    ///< that constant
  std::vector<int8_t> SizeKnown; ///< memref slot with static element count
  std::vector<int64_t> Count;
  std::vector<int32_t> NumWriters;

  explicit SlotFacts(unsigned NumSlots = 0) { resize(NumSlots); }
  void resize(unsigned NumSlots) {
    Known.assign(NumSlots, 0);
    Value.assign(NumSlots, 0);
    SizeKnown.assign(NumSlots, 0);
    Count.assign(NumSlots, 0);
    NumWriters.assign(NumSlots, 0);
  }
  bool isConst(int32_t Slot) const { return Slot >= 0 && Known[Slot]; }
};

/// Evaluates \p I's result under \p Facts; true when it is a compile-time
/// constant. Covers constants, index_cast, integer Binary (double
/// arithmetic, runSpan-identical) and the staging end-offset results of
/// copy_to_dma / copy_literal_to_dma.
bool evalConstDst(const PlanView::Inst &I, const SlotFacts &Facts,
                  int64_t &Out);

/// Constant trip count of a LoopBegin instruction, or -1 when any bound
/// is unknown or the step is non-positive (runSpan rejects those at
/// execution time).
int64_t constTripCount(const PlanView::Inst &LoopBegin,
                       const SlotFacts &Facts);

/// Constant staged-input-region range written by a copy_to_dma /
/// copy_literal_to_dma instruction, if determinable.
bool inputWriteRange(const PlanView::Inst &I, const SlotFacts &Facts,
                     WordRange &R);

/// Constant [offset, end) range of a start_send / send_fused
/// instruction, if both operands are known.
bool sendRange(const PlanView::Inst &I, const SlotFacts &Facts,
               WordRange &R);

/// Input staging capacity in words: the minimum input buffer across the
/// plan's dma_init configs (0 when the plan has none).
int64_t inputRegionWords(const PlanView &Plan);

/// Output staging capacity in words (minimum across configs, 0 if none).
int64_t outputRegionWords(const PlanView &Plan);

/// Static element count of an Alloc/SubView result, or -1 for any other
/// instruction.
int64_t staticElementCount(const PlanView &Plan, const PlanView::Inst &I);

} // namespace analysis
} // namespace axi4mlir

#endif // AXI4MLIR_ANALYSIS_PLANANALYSES_H
