//===- PlanVerifier.h - Static ExecPlan verification ------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract interpretation over a compiled ExecPlan's flat instruction
/// program, proving -- without executing it -- the properties the
/// runtime otherwise discovers by failing or crashing mid-simulation:
///
///  * structural integrity: every slot reference inside the plan's slot
///    space, every side-table index (pool, subviews, generics, dma
///    configs) in bounds, LoopBegin/LoopEnd well nested with mutually
///    consistent jump targets (including the remapped targets the
///    optimizer writes after fusion and loop flattening);
///  * definition before use: a read of a slot no path has written is an
///    error; a read of a slot defined only inside a possibly zero-trip
///    loop is a strict-mode finding;
///  * loop sanity: constant-folded bounds with a non-positive step, the
///    condition runSpan rejects at execution time, are rejected here;
///  * DMA staging bounds: every staged copy, send and receive whose
///    offsets constant-fold is proven inside the active dma_init's
///    input/output region; unprovable transfers are strict findings;
///  * transfer discipline: every dmaStartSend/Recv is awaited before the
///    next start of the same direction, before its loop body repeats,
///    and before the program ends;
///  * protocol conformance (when a ProtocolModel is supplied): the words
///    each send streams are replayed against the abstract accelerator
///    FSM, so unsupported opcodes, data-before-configuration orderings,
///    burst/tile mismatches and unreachable receives are static
///    diagnostics. Loop bodies are proven protocol-stable by walking
///    them to a fixpoint before their effect is admitted.
///
/// Diagnostics carry the failing instruction: "pc 12 (send): ...".
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_ANALYSIS_PLANVERIFIER_H
#define AXI4MLIR_ANALYSIS_PLANVERIFIER_H

#include "analysis/ProtocolModel.h"

#include <string>
#include <vector>

namespace axi4mlir {
namespace exec {
class ExecPlan;
} // namespace exec

namespace analysis {

/// One verifier finding, anchored to an instruction (Pc < 0 for
/// plan-level findings).
struct PlanDiag {
  int64_t Pc = -1;
  std::string Message;
};

/// The verifier's verdict: hard errors (the plan would fail or crash, or
/// its encoding is corrupt) and strict-mode findings (properties the
/// verifier could not prove).
struct VerifyResult {
  std::vector<PlanDiag> Errors;
  std::vector<PlanDiag> Warnings;

  bool ok(bool Strict = false) const {
    return Errors.empty() && (!Strict || Warnings.empty());
  }
  /// All findings, one "error: pc N (op): ..." line each.
  std::string toString() const;
};

struct VerifyOptions {
  /// Promote unprovable properties (possibly-undefined reads, unprovable
  /// DMA bounds, protocol give-ups) from warnings to failures of ok().
  bool Strict = false;
  /// When set, layer 2 runs: the words the plan streams are checked
  /// against this abstract accelerator FSM. The model is copied.
  const ProtocolModel *Model = nullptr;
};

/// Verifies \p Plan statically. Never executes the plan and never
/// mutates it.
VerifyResult verifyPlan(const exec::ExecPlan &Plan,
                        const VerifyOptions &Options = VerifyOptions());

} // namespace analysis
} // namespace axi4mlir

#endif // AXI4MLIR_ANALYSIS_PLANVERIFIER_H
