//===- PlanVerifier.cpp - Static ExecPlan verification --------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// A flow-sensitive abstract interpretation over the flat instruction
// program. Loops are walked through their structure: a body is
// interpreted once under first-iteration semantics (with the constants
// of any slot the body overwrites invalidated, so facts that change
// across iterations are never trusted), and when the protocol model
// changed, a second suppressed walk proves the body reaches a protocol
// fixpoint before its effect is admitted. Zero-trip loops are walked for
// diagnosis and then fully rolled back; unknown-trip loops merge their
// exit state against the entry state (definitions become "maybe",
// disagreeing constants are dropped).
//
//===----------------------------------------------------------------------===//

#include "analysis/PlanVerifier.h"

#include "analysis/PlanAnalyses.h"
#include "analysis/PlanView.h"

#include <map>
#include <utility>

using namespace axi4mlir;
using namespace axi4mlir::analysis;

std::string VerifyResult::toString() const {
  std::string Out;
  for (const PlanDiag &D : Errors)
    Out += "error: " + D.Message + "\n";
  for (const PlanDiag &D : Warnings)
    Out += "warning: " + D.Message + "\n";
  return Out;
}

namespace {

using Inst = PlanView::Inst;
using Op = PlanView::Op;

/// Hard ceiling on reported errors; a corrupted program should not
/// produce an avalanche.
constexpr size_t MaxErrors = 64;

/// The slot an instruction defines, or -1 (mirrors the optimizer's
/// writeSlot).
int32_t writeSlotOf(const Inst &I) {
  switch (I.Code) {
  case Op::ConstInt:
  case Op::ConstFloat:
  case Op::Binary:
  case Op::IndexCast:
  case Op::LoopBegin: // induction variable
  case Op::Alloc:
  case Op::Load:
  case Op::SubView:
  case Op::AccelSendLiteral:
  case Op::AccelSend:
  case Op::AccelSendDim:
  case Op::AccelSendIdx:
  case Op::AccelRecv:
  case Op::CallCopyToDma:
  case Op::CallCopyLiteralToDma:
    return I.Dst;
  default:
    return -1;
  }
}

class Verifier {
public:
  Verifier(const exec::ExecPlan &Plan, const VerifyOptions &Opts)
      : V(Plan), Opts(Opts), Facts(V.numSlots()) {
    if (Opts.Model) {
      Model = *Opts.Model;
      HaveModel = true;
    }
  }

  VerifyResult run();

private:
  /// Abstract per-slot state. Constant values and static element counts
  /// live in the shared SlotFacts, kept in sync with every definition.
  struct AbsSlot {
    enum class Def : uint8_t { Undef, Maybe, Yes };
    enum class Kind : uint8_t { Unknown, Scalar, MemRef };
    Def D = Def::Undef;
    Kind K = Kind::Unknown;
    int64_t Rank = -1; ///< memref rank when statically known
  };
  enum class Req { Any, Scalar, MemRef };

  struct Snapshot {
    std::vector<AbsSlot> Slots;
    SlotFacts Facts;
    int32_t CurDma;
    int64_t PendingSend, PendingRecv;
    ProtocolModel Model;
    std::map<int64_t, AbstractWord> Region;
    bool RegionUnknown;
  };

  //===------------------------------------------------------------------===//
  // Diagnostics
  //===------------------------------------------------------------------===//

  std::string at(int64_t Pc) const {
    if (Pc < 0)
      return std::string();
    return "pc " + std::to_string(Pc) + " (" +
           PlanView::opName(V.program()[static_cast<size_t>(Pc)].Code) +
           "): ";
  }
  void error(int64_t Pc, const std::string &Msg) {
    if (QuietDepth)
      return;
    if (R.Errors.size() >= MaxErrors) {
      Aborted = true;
      return;
    }
    R.Errors.push_back({Pc, at(Pc) + Msg});
  }
  void warn(int64_t Pc, const std::string &Msg) {
    if (QuietDepth)
      return;
    R.Warnings.push_back({Pc, at(Pc) + Msg});
  }

  //===------------------------------------------------------------------===//
  // Slot state
  //===------------------------------------------------------------------===//

  bool inRange(int32_t Slot) const {
    return Slot >= 0 && static_cast<unsigned>(Slot) < V.numSlots();
  }

  bool checkWrite(int64_t Pc, int32_t Slot) {
    if (inRange(Slot))
      return true;
    error(Pc, "defines slot %" + std::to_string(Slot) +
                  " outside the plan's " + std::to_string(V.numSlots()) +
                  " slots");
    return false;
  }

  bool checkRead(int64_t Pc, int32_t Slot, Req Want, const char *What) {
    if (!inRange(Slot)) {
      error(Pc, std::string("reads ") + What + " from slot %" +
                    std::to_string(Slot) + " outside the plan's " +
                    std::to_string(V.numSlots()) + " slots");
      return false;
    }
    const AbsSlot &S = Slots[Slot];
    if (S.D == AbsSlot::Def::Undef) {
      error(Pc, std::string("reads ") + What + " from %" +
                    std::to_string(Slot) + " before any definition");
      return false;
    }
    if (S.D == AbsSlot::Def::Maybe)
      warn(Pc, std::string("reads ") + What + " from %" +
                   std::to_string(Slot) +
                   " whose only definition sits inside a possibly "
                   "zero-trip loop");
    if (Want == Req::MemRef && S.K == AbsSlot::Kind::Scalar) {
      error(Pc, std::string("expects a memref as ") + What + " but %" +
                    std::to_string(Slot) + " holds a scalar");
      return false;
    }
    if (Want == Req::Scalar && S.K == AbsSlot::Kind::MemRef) {
      error(Pc, std::string("expects a scalar as ") + What + " but %" +
                    std::to_string(Slot) + " holds a memref");
      return false;
    }
    return true;
  }

  void defineScalar(int32_t Slot, bool IsConst, int64_t Value) {
    if (!inRange(Slot))
      return;
    Slots[Slot] = {AbsSlot::Def::Yes, AbsSlot::Kind::Scalar, -1};
    Facts.Known[Slot] = IsConst;
    Facts.Value[Slot] = IsConst ? Value : 0;
    Facts.SizeKnown[Slot] = 0;
    Facts.Count[Slot] = 0;
  }
  void defineMemRef(int32_t Slot, int64_t Count, int64_t Rank) {
    if (!inRange(Slot))
      return;
    Slots[Slot] = {AbsSlot::Def::Yes, AbsSlot::Kind::MemRef, Rank};
    Facts.Known[Slot] = 0;
    Facts.Value[Slot] = 0;
    Facts.SizeKnown[Slot] = Count >= 0;
    Facts.Count[Slot] = Count >= 0 ? Count : 0;
  }
  void defineUnknown(int32_t Slot) {
    if (!inRange(Slot))
      return;
    Slots[Slot] = {AbsSlot::Def::Yes, AbsSlot::Kind::Unknown, -1};
    Facts.Known[Slot] = 0;
    Facts.SizeKnown[Slot] = 0;
  }

  int64_t memrefCount(int32_t Slot) const {
    return inRange(Slot) && Facts.SizeKnown[Slot] ? Facts.Count[Slot] : -1;
  }
  int64_t memrefRank(int32_t Slot) const {
    return inRange(Slot) ? Slots[Slot].Rank : -1;
  }

  bool checkPool(int64_t Pc, int32_t Offset, unsigned Count) {
    if (Offset >= 0 &&
        static_cast<size_t>(Offset) + Count <= V.slotPool().size())
      return true;
    error(Pc, "index pool range [" + std::to_string(Offset) + ", " +
                  std::to_string(Offset + static_cast<int32_t>(Count)) +
                  ") is outside the plan's pool (" +
                  std::to_string(V.slotPool().size()) + " entries)");
    return false;
  }

  //===------------------------------------------------------------------===//
  // DMA regions
  //===------------------------------------------------------------------===//

  /// False when no dma_init dominates this point (hard error) or the
  /// active config is loop-dependent (strict finding).
  bool requireDma(int64_t Pc) {
    if (CurDma >= 0)
      return true;
    if (CurDma == -1)
      error(Pc, "transfers before any dma_init configured the DMA region");
    else
      warn(Pc, "the active DMA configuration depends on a loop; region "
               "bounds are not proven");
    return false;
  }

  int64_t inputWords() const {
    return V.dmaConfigs()[CurDma].InputBufferSize / 4;
  }
  int64_t outputWords() const {
    return V.dmaConfigs()[CurDma].OutputBufferSize / 4;
  }

  void checkRegionRange(int64_t Pc, bool Input, bool OffKnown, int64_t Off,
                        int64_t Count, const char *What) {
    if (!requireDma(Pc))
      return;
    int64_t Cap = Input ? inputWords() : outputWords();
    const char *RegionName = Input ? "input" : "output";
    if (OffKnown && Off < 0) {
      error(Pc, std::string(What) + " uses negative region offset " +
                    std::to_string(Off));
      return;
    }
    if (OffKnown && Count >= 0) {
      if (Off + Count > Cap)
        error(Pc, std::string(What) + " covers words [" +
                      std::to_string(Off) + ", " +
                      std::to_string(Off + Count) + ") but the DMA " +
                      RegionName + " region holds only " +
                      std::to_string(Cap) + " words");
      return;
    }
    warn(Pc, std::string("cannot prove ") + What +
                 " stays inside the DMA " + RegionName +
                 " region (offset or length is not a compile-time "
                 "constant)");
  }

  //===------------------------------------------------------------------===//
  // Protocol layer
  //===------------------------------------------------------------------===//

  void noteIfGaveUp(int64_t Pc, bool WasTracking) {
    if (WasTracking && Model.gaveUp())
      warn(Pc, "stopped statically tracking the accelerator protocol here "
               "(a word the checker cannot classify reached the FSM)");
  }
  void modelWord(int64_t Pc, const AbstractWord &W) {
    if (!HaveModel)
      return;
    bool WasTracking = !Model.gaveUp();
    std::string Msg = Model.feedWord(W);
    if (!Msg.empty())
      error(Pc, Msg);
    noteIfGaveUp(Pc, WasTracking);
  }
  void modelData(int64_t Pc, int64_t Count) {
    if (!HaveModel)
      return;
    bool WasTracking = !Model.gaveUp();
    std::string Msg = Model.feedData(Count);
    if (!Msg.empty())
      error(Pc, Msg);
    noteIfGaveUp(Pc, WasTracking);
  }
  void modelRecv(int64_t Pc, int64_t Words) {
    if (!HaveModel)
      return;
    std::string Msg = Model.feedRecv(Words);
    if (!Msg.empty())
      error(Pc, Msg);
  }

  /// Replays the staged words [Begin, End) of the input region against
  /// the model, exactly as dmaStartSend would stream them.
  void streamStagedRange(int64_t Pc, int64_t Begin, int64_t End) {
    if (!HaveModel || Model.gaveUp())
      return;
    if (RegionUnknown) {
      warn(Pc, "sends from a staged region the checker could not "
               "reconstruct; protocol tracking stops");
      Model.invalidate();
      return;
    }
    bool WarnedUnstaged = false;
    int64_t O = Begin;
    while (O < End && !Model.gaveUp() && !Aborted) {
      auto It = Region.find(O);
      if (It == Region.end()) {
        if (!WarnedUnstaged) {
          warn(Pc, "streams region words never staged since the last "
                   "dma_init (first at offset " +
                       std::to_string(O) + ")");
          WarnedUnstaged = true;
        }
        modelWord(Pc, AbstractWord::unknown());
        ++O;
        continue;
      }
      if (It->second.K == AbstractWord::Kind::Data) {
        int64_t Run = 0;
        while (O < End) {
          auto Next = Region.find(O);
          if (Next == Region.end() ||
              Next->second.K != AbstractWord::Kind::Data)
            break;
          ++Run;
          ++O;
        }
        modelData(Pc, Run);
        continue;
      }
      modelWord(Pc, It->second);
      ++O;
    }
  }

  //===------------------------------------------------------------------===//
  // Walk
  //===------------------------------------------------------------------===//

  Snapshot save() const {
    return {Slots,  Facts, CurDma,       PendingSend,
            PendingRecv, Model, Region, RegionUnknown};
  }
  void restore(Snapshot &&S) {
    Slots = std::move(S.Slots);
    Facts = std::move(S.Facts);
    CurDma = S.CurDma;
    PendingSend = S.PendingSend;
    PendingRecv = S.PendingRecv;
    Model = S.Model;
    Region = std::move(S.Region);
    RegionUnknown = S.RegionUnknown;
  }

  /// Drops the constants (and memref geometry) of every slot the body
  /// span writes: a read of such a slot may observe the previous
  /// iteration's value, so only iteration-independent facts survive.
  void invalidateBodyWrites(size_t Begin, size_t End) {
    const std::vector<Inst> &P = V.program();
    auto drop = [&](int32_t Slot) {
      if (!inRange(Slot))
        return;
      Facts.Known[Slot] = 0;
      Facts.SizeKnown[Slot] = 0;
      Slots[Slot].Rank = -1;
    };
    for (size_t Pc = Begin; Pc < End; ++Pc) {
      const Inst &I = P[Pc];
      drop(writeSlotOf(I));
      if (I.Code == Op::Generic && I.Aux >= 0 &&
          static_cast<size_t>(I.Aux) < V.generics().size()) {
        const PlanView::GenericPlan &G = V.generics()[I.Aux];
        for (int32_t S : G.BodyArgSlots)
          drop(S);
        for (const Inst &B : G.Body)
          drop(writeSlotOf(B));
      }
    }
  }

  /// Merges the post-body state against the entry state of a loop whose
  /// trip count is unknown (it may have run zero times).
  void mergeUnknownTrip(const Snapshot &Pre) {
    for (unsigned S = 0; S < V.numSlots(); ++S) {
      AbsSlot &Cur = Slots[S];
      const AbsSlot &Old = Pre.Slots[S];
      if (Cur.D != Old.D)
        Cur.D = AbsSlot::Def::Maybe;
      if (Cur.K != Old.K)
        Cur.K = AbsSlot::Kind::Unknown;
      if (Cur.Rank != Old.Rank)
        Cur.Rank = -1;
      if (!(Facts.Known[S] && Pre.Facts.Known[S] &&
            Facts.Value[S] == Pre.Facts.Value[S]))
        Facts.Known[S] = Facts.Known[S] && Pre.Facts.Known[S] &&
                         Facts.Value[S] == Pre.Facts.Value[S];
      if (!(Facts.SizeKnown[S] && Pre.Facts.SizeKnown[S] &&
            Facts.Count[S] == Pre.Facts.Count[S]))
        Facts.SizeKnown[S] = 0;
    }
    if (CurDma != Pre.CurDma)
      CurDma = -2; // some dma_init happened, but which one is open
    if (HaveModel) {
      for (auto &Entry : Region) {
        auto It = Pre.Region.find(Entry.first);
        if (It == Pre.Region.end() || It->second.K != Entry.second.K ||
            (Entry.second.K == AbstractWord::Kind::Const &&
             It->second.Value != Entry.second.Value))
          Entry.second = AbstractWord::unknown();
      }
      for (const auto &Old : Pre.Region)
        if (!Region.count(Old.first))
          Region[Old.first] = AbstractWord::unknown();
      RegionUnknown = RegionUnknown || Pre.RegionUnknown;
    }
  }

  /// After a loop body that moved the protocol model: prove the body is
  /// a protocol fixpoint by walking it once more (suppressed), then
  /// admit the steady state with extrapolated accumulators. A body that
  /// does not stabilize is a protocol break when it provably repeats.
  void stabilizeProtocol(size_t LoopPc, size_t EndPc,
                         const ProtocolModel &Entry, int64_t Trip) {
    if (!HaveModel || Entry.gaveUp() || Model.gaveUp())
      return;
    if (Model == Entry)
      return; // protocol-neutral body
    ProtocolModel AfterOne = Model;
    int64_t PS = PendingSend, PR = PendingRecv;
    int32_t CD = CurDma;
    ++QuietDepth;
    walkSpan(LoopPc + 1, EndPc);
    --QuietDepth;
    PendingSend = PS;
    PendingRecv = PR;
    CurDma = CD;
    ProtocolModel AfterTwo = Model;
    if (!AfterOne.sameFsmPosition(AfterTwo) || AfterTwo.gaveUp()) {
      std::string Msg =
          "loop body does not return the accelerator protocol to a steady "
          "state (after one iteration: " +
          AfterOne.stateDescription() +
          "; after another: " + AfterTwo.stateDescription() + ")";
      if (Trip >= 2)
        error(static_cast<int64_t>(LoopPc), Msg);
      else
        warn(static_cast<int64_t>(LoopPc), Msg);
      Model.invalidate();
      return;
    }
    Model = AfterOne;
    Model.extrapolateAccumulators(AfterTwo, Trip);
  }

  void walkSpan(size_t Begin, size_t End) {
    const std::vector<Inst> &P = V.program();
    size_t Pc = Begin;
    while (Pc < End && !Aborted) {
      const Inst &I = P[Pc];
      if (I.Code == Op::LoopBegin) {
        Pc = handleLoop(Pc, End);
        continue;
      }
      if (I.Code == Op::LoopEnd) {
        error(static_cast<int64_t>(Pc),
              "loop end without a matching loop begin");
        Aborted = true;
        return;
      }
      interpret(Pc, I);
      ++Pc;
    }
  }

  size_t handleLoop(size_t PcU, size_t End) {
    const std::vector<Inst> &P = V.program();
    const Inst &I = P[PcU];
    int64_t Pc = static_cast<int64_t>(PcU);
    checkRead(Pc, I.A, Req::Scalar, "the lower bound");
    checkRead(Pc, I.B, Req::Scalar, "the upper bound");
    checkRead(Pc, I.C, Req::Scalar, "the step");
    checkWrite(Pc, I.Dst);

    if (I.Aux < static_cast<int64_t>(PcU) + 2 ||
        static_cast<size_t>(I.Aux) > End) {
      error(Pc, "jump target @" + std::to_string(I.Aux) +
                    " escapes the enclosing body (instructions [" +
                    std::to_string(PcU + 1) + ", " + std::to_string(End) +
                    "))");
      Aborted = true;
      return End;
    }
    size_t EndPc = static_cast<size_t>(I.Aux) - 1;
    const Inst &E = P[EndPc];
    if (E.Code != Op::LoopEnd) {
      error(Pc, "jump target @" + std::to_string(I.Aux) +
                    " does not follow a loop end (pc " +
                    std::to_string(EndPc) + " is '" +
                    PlanView::opName(E.Code) + "')");
      Aborted = true;
      return End;
    }
    if (E.Dst != I.Dst || E.B != I.B || E.C != I.C)
      error(static_cast<int64_t>(EndPc),
            "loop end disagrees with its begin at pc " +
                std::to_string(PcU) +
                " (induction/bound/step slots differ)");
    if (E.Aux != static_cast<int32_t>(PcU) + 1)
      error(static_cast<int64_t>(EndPc),
            "back-edge target @" + std::to_string(E.Aux) +
                " does not point at the loop body (@" +
                std::to_string(PcU + 1) + ")");

    if (Facts.isConst(I.C) && Facts.Value[I.C] <= 0)
      error(Pc, "constant step " + std::to_string(Facts.Value[I.C]) +
                    " is not positive; execution rejects this loop");

    int64_t Trip = constTripCount(I, Facts);
    Snapshot Pre = save();

    if (Trip != 1 && Trip != 0)
      invalidateBodyWrites(PcU + 1, EndPc);
    defineScalar(I.Dst, Trip == 1 && Facts.isConst(I.A),
                 Facts.isConst(I.A) ? Facts.Value[I.A] : 0);

    walkSpan(PcU + 1, EndPc);
    if (Aborted)
      return End;

    if (Trip == 0) {
      // The body provably never executes: diagnostics stand (the code is
      // dead but still checked), the state rolls back.
      restore(std::move(Pre));
      return static_cast<size_t>(I.Aux);
    }

    if (Trip != 1) {
      // The body may repeat: a transfer still in flight at the back edge
      // would be restarted before its wait.
      if (PendingSend != Pre.PendingSend) {
        error(PendingSend >= 0 ? PendingSend : Pc,
              "send started inside the loop body is still outstanding "
              "when the body repeats");
        PendingSend = Pre.PendingSend;
      }
      if (PendingRecv != Pre.PendingRecv) {
        error(PendingRecv >= 0 ? PendingRecv : Pc,
              "receive started inside the loop body is still outstanding "
              "when the body repeats");
        PendingRecv = Pre.PendingRecv;
      }
      stabilizeProtocol(PcU, EndPc, Pre.Model, Trip);
    }
    if (Trip < 0)
      mergeUnknownTrip(Pre);
    return static_cast<size_t>(I.Aux);
  }

  void interpret(size_t PcU, const Inst &I);

  PlanView V;
  VerifyOptions Opts;
  VerifyResult R;
  SlotFacts Facts;
  std::vector<AbsSlot> Slots;
  int32_t CurDma = -1; ///< active dma config (-1 none, -2 loop-dependent)
  int64_t PendingSend = -1, PendingRecv = -1; ///< pc of outstanding start
  bool Aborted = false;
  int QuietDepth = 0;

  ProtocolModel Model;
  bool HaveModel = false;
  std::map<int64_t, AbstractWord> Region; ///< staged input-region content
  bool RegionUnknown = false;
};

void Verifier::interpret(size_t PcU, const Inst &I) {
  int64_t Pc = static_cast<int64_t>(PcU);
  switch (I.Code) {
  case Op::ConstInt:
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, true, I.Imm);
    return;
  case Op::ConstFloat:
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, false, 0);
    return;
  case Op::Binary: {
    checkRead(Pc, I.A, Req::Scalar, "the left operand");
    checkRead(Pc, I.B, Req::Scalar, "the right operand");
    if (!checkWrite(Pc, I.Dst))
      return;
    int64_t Out;
    if (evalConstDst(I, Facts, Out))
      defineScalar(I.Dst, true, Out);
    else
      defineScalar(I.Dst, false, 0);
    return;
  }
  case Op::IndexCast: {
    checkRead(Pc, I.A, Req::Scalar, "its operand");
    if (!checkWrite(Pc, I.Dst))
      return;
    int64_t Out;
    if (evalConstDst(I, Facts, Out))
      defineScalar(I.Dst, true, Out);
    else
      defineScalar(I.Dst, false, 0);
    return;
  }
  case Op::Alloc: {
    if (I.Aux < 0 || static_cast<size_t>(I.Aux) >= V.allocs().size()) {
      error(Pc, "alloc side-table index #" + std::to_string(I.Aux) +
                    " out of bounds (" + std::to_string(V.allocs().size()) +
                    " entries)");
      return;
    }
    if (checkWrite(Pc, I.Dst))
      defineMemRef(I.Dst, staticElementCount(V, I),
                   static_cast<int64_t>(V.allocs()[I.Aux].Shape.size()));
    return;
  }
  case Op::Dealloc:
    return;
  case Op::Load: {
    if (!checkPool(Pc, I.Aux, I.Sub))
      return;
    if (checkRead(Pc, I.A, Req::MemRef, "the loaded memref")) {
      int64_t Rank = memrefRank(I.A);
      if (Rank >= 0 && Rank != I.Sub)
        error(Pc, "indexes a rank-" + std::to_string(Rank) +
                      " memref with " + std::to_string(I.Sub) + " indices");
    }
    for (unsigned K = 0; K < I.Sub; ++K)
      checkRead(Pc, V.slotPool()[static_cast<size_t>(I.Aux) + K],
                Req::Scalar, "a load index");
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, false, 0);
    return;
  }
  case Op::Store: {
    if (!checkPool(Pc, I.Aux, I.Sub))
      return;
    checkRead(Pc, I.A, Req::Scalar, "the stored value");
    if (checkRead(Pc, I.B, Req::MemRef, "the stored-to memref")) {
      int64_t Rank = memrefRank(I.B);
      if (Rank >= 0 && Rank != I.Sub)
        error(Pc, "indexes a rank-" + std::to_string(Rank) +
                      " memref with " + std::to_string(I.Sub) + " indices");
    }
    for (unsigned K = 0; K < I.Sub; ++K)
      checkRead(Pc, V.slotPool()[static_cast<size_t>(I.Aux) + K],
                Req::Scalar, "a store index");
    return;
  }
  case Op::Copy: {
    bool SrcOk = checkRead(Pc, I.A, Req::MemRef, "the copy source");
    bool DstOk = checkRead(Pc, I.B, Req::MemRef, "the copy destination");
    if (SrcOk && DstOk) {
      int64_t CntA = memrefCount(I.A), CntB = memrefCount(I.B);
      if (CntA >= 0 && CntB >= 0 && CntA != CntB)
        error(Pc, "copies between memrefs of different element counts (" +
                      std::to_string(CntA) + " vs " + std::to_string(CntB) +
                      ")");
    }
    return;
  }
  case Op::SubView: {
    if (I.Aux < 0 || static_cast<size_t>(I.Aux) >= V.subViews().size()) {
      error(Pc, "subview side-table index #" + std::to_string(I.Aux) +
                    " out of bounds (" +
                    std::to_string(V.subViews().size()) + " entries)");
      return;
    }
    const PlanView::SubViewPlan &Info = V.subViews()[I.Aux];
    if (!checkPool(Pc, Info.PoolOffset, Info.NumOffsets))
      return;
    checkRead(Pc, I.A, Req::MemRef, "the subview source");
    for (unsigned K = 0; K < Info.NumOffsets; ++K)
      checkRead(Pc,
                V.slotPool()[static_cast<size_t>(Info.PoolOffset) + K],
                Req::Scalar, "a subview offset");
    if (checkWrite(Pc, I.Dst))
      defineMemRef(I.Dst, staticElementCount(V, I),
                   static_cast<int64_t>(Info.StaticSizes.size()));
    return;
  }
  case Op::Generic: {
    if (I.Aux < 0 || static_cast<size_t>(I.Aux) >= V.generics().size()) {
      error(Pc, "generic side-table index #" + std::to_string(I.Aux) +
                    " out of bounds (" +
                    std::to_string(V.generics().size()) + " entries)");
      return;
    }
    const PlanView::GenericPlan &G = V.generics()[I.Aux];
    for (const auto &P : G.Operands)
      checkRead(Pc, P.Slot, Req::MemRef, "a generic operand");
    for (int32_t S : G.BodyArgSlots)
      if (checkWrite(Pc, S))
        defineScalar(S, false, 0);
    for (const Inst &B : G.Body) {
      switch (B.Code) {
      case Op::Binary:
        checkRead(Pc, B.A, Req::Scalar, "a generic body operand");
        checkRead(Pc, B.B, Req::Scalar, "a generic body operand");
        break;
      case Op::IndexCast:
        checkRead(Pc, B.A, Req::Scalar, "a generic body operand");
        break;
      default:
        break;
      }
      int32_t W = writeSlotOf(B);
      if (W >= 0 && checkWrite(Pc, W)) {
        int64_t Out;
        if (evalConstDst(B, Facts, Out))
          defineScalar(W, true, Out);
        else
          defineScalar(W, false, 0);
      }
    }
    for (int32_t Y : G.YieldSlots)
      checkRead(Pc, Y, Req::Scalar, "a generic yield value");
    return;
  }

  case Op::AccelDmaInit:
  case Op::CallDmaInit: {
    if (I.Aux < 0 || static_cast<size_t>(I.Aux) >= V.dmaConfigs().size()) {
      error(Pc, "dma config index #" + std::to_string(I.Aux) +
                    " out of bounds (" +
                    std::to_string(V.dmaConfigs().size()) + " entries)");
      return;
    }
    CurDma = I.Aux;
    Region.clear();
    RegionUnknown = false;
    return;
  }

  case Op::AccelSendLiteral: {
    checkRead(Pc, I.A, Req::Scalar, "the staging offset");
    bool OffKnown = Facts.isConst(I.A);
    int64_t Off = OffKnown ? Facts.Value[I.A] : 0;
    checkRegionRange(Pc, /*Input=*/true, OffKnown, Off, 1,
                     "the staged literal");
    modelWord(Pc, AbstractWord::constant(I.Imm));
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, OffKnown, Off + 1);
    return;
  }
  case Op::AccelSend: {
    checkRead(Pc, I.A, Req::MemRef, "the sent memref");
    checkRead(Pc, I.B, Req::Scalar, "the staging offset");
    int64_t Cnt = memrefCount(I.A);
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    checkRegionRange(Pc, /*Input=*/true, OffKnown, Off, Cnt,
                     "the sent tile");
    modelData(Pc, Cnt);
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, OffKnown && Cnt >= 0, Off + (Cnt >= 0 ? Cnt : 0));
    return;
  }
  case Op::AccelSendDim: {
    checkRead(Pc, I.B, Req::Scalar, "the staging offset");
    if (checkRead(Pc, I.A, Req::MemRef, "the measured memref") && !I.Sub) {
      // The runtime indexes Desc.Sizes[Imm] unchecked; prove it here.
      int64_t Rank = memrefRank(I.A);
      if (I.Imm < 0 || (Rank >= 0 && I.Imm >= Rank))
        error(Pc, "reads dimension " + std::to_string(I.Imm) +
                      " of a rank-" +
                      (Rank >= 0 ? std::to_string(Rank) : "unknown") +
                      " memref (out of range)");
      else if (Rank < 0)
        warn(Pc, "cannot prove dimension index " + std::to_string(I.Imm) +
                     " is within the operand's rank (rank unknown)");
    }
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    checkRegionRange(Pc, /*Input=*/true, OffKnown, Off, 1,
                     "the staged dimension word");
    modelWord(Pc, I.Sub ? AbstractWord::constant(I.Imm)
                        : AbstractWord::unknown());
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, OffKnown, Off + 1);
    return;
  }
  case Op::AccelSendIdx: {
    checkRead(Pc, I.A, Req::Scalar, "the sent index value");
    checkRead(Pc, I.B, Req::Scalar, "the staging offset");
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    checkRegionRange(Pc, /*Input=*/true, OffKnown, Off, 1,
                     "the staged index word");
    modelWord(Pc, Facts.isConst(I.A)
                      ? AbstractWord::constant(Facts.Value[I.A])
                      : AbstractWord::unknown());
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, OffKnown, Off + 1);
    return;
  }
  case Op::AccelRecv: {
    checkRead(Pc, I.A, Req::MemRef, "the receive destination");
    int64_t Cnt = memrefCount(I.A);
    checkRegionRange(Pc, /*Input=*/false, true, 0, Cnt,
                     "the received tile");
    modelRecv(Pc, Cnt);
    if (checkWrite(Pc, I.Dst))
      defineScalar(I.Dst, true, 0);
    return;
  }

  case Op::CallCopyToDma: {
    checkRead(Pc, I.A, Req::MemRef, "the staged memref");
    checkRead(Pc, I.B, Req::Scalar, "the staging offset");
    int64_t Cnt = memrefCount(I.A);
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    checkRegionRange(Pc, /*Input=*/true, OffKnown, Off, Cnt,
                     "the staged copy");
    if (HaveModel) {
      if (OffKnown && Cnt >= 0)
        for (int64_t O = Off; O < Off + Cnt; ++O)
          Region[O] = AbstractWord::data();
      else
        RegionUnknown = true;
    }
    if (!checkWrite(Pc, I.Dst))
      return;
    int64_t Out;
    if (evalConstDst(I, Facts, Out))
      defineScalar(I.Dst, true, Out);
    else
      defineScalar(I.Dst, false, 0);
    return;
  }
  case Op::CallCopyLiteralToDma: {
    checkRead(Pc, I.A, Req::Scalar, "the staged literal");
    checkRead(Pc, I.B, Req::Scalar, "the staging offset");
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    checkRegionRange(Pc, /*Input=*/true, OffKnown, Off, 1,
                     "the staged literal");
    if (HaveModel) {
      if (OffKnown)
        Region[Off] = Facts.isConst(I.A)
                          ? AbstractWord::constant(Facts.Value[I.A])
                          : AbstractWord::unknown();
      else
        RegionUnknown = true;
    }
    if (!checkWrite(Pc, I.Dst))
      return;
    int64_t Out;
    if (evalConstDst(I, Facts, Out))
      defineScalar(I.Dst, true, Out);
    else
      defineScalar(I.Dst, false, 0);
    return;
  }

  case Op::CallStartSend:
  case Op::CallSendFused: {
    checkRead(Pc, I.A, Req::Scalar, "the send end offset");
    checkRead(Pc, I.B, Req::Scalar, "the send begin offset");
    WordRange Rg;
    bool RangeKnown = sendRange(I, Facts, Rg);
    if (RangeKnown && Rg.End < Rg.Begin)
      error(Pc, "sends a negative-length range [" +
                    std::to_string(Rg.Begin) + ", " +
                    std::to_string(Rg.End) + ")");
    else
      checkRegionRange(Pc, /*Input=*/true, RangeKnown, Rg.Begin,
                       RangeKnown ? Rg.size() : -1, "the send");
    if (PendingSend >= 0)
      error(Pc, "starts a send while the send at pc " +
                    std::to_string(PendingSend) +
                    " is still outstanding (its wait was dropped)");
    if (I.Code == Op::CallStartSend)
      PendingSend = Pc;
    if (RangeKnown && Rg.End >= Rg.Begin) {
      streamStagedRange(Pc, Rg.Begin, Rg.End);
    } else if (HaveModel && !Model.gaveUp()) {
      warn(Pc, "send bounds are not compile-time constants; protocol "
               "tracking stops");
      Model.invalidate();
    }
    return;
  }
  case Op::CallWaitSend:
    if (PendingSend < 0)
      error(Pc, "waits for a send that was never started");
    PendingSend = -1;
    return;
  case Op::CallStartRecv:
  case Op::CallRecvFused: {
    checkRead(Pc, I.A, Req::Scalar, "the receive length");
    checkRead(Pc, I.B, Req::Scalar, "the receive offset");
    bool LenKnown = Facts.isConst(I.A);
    int64_t Len = LenKnown ? Facts.Value[I.A] : -1;
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    if (LenKnown && Len < 0)
      error(Pc, "receives a negative word count (" + std::to_string(Len) +
                    ")");
    else
      checkRegionRange(Pc, /*Input=*/false, OffKnown, Off,
                       LenKnown ? Len : -1, "the receive");
    if (PendingRecv >= 0)
      error(Pc, "starts a receive while the receive at pc " +
                    std::to_string(PendingRecv) +
                    " is still outstanding (its wait was dropped)");
    if (I.Code == Op::CallStartRecv)
      PendingRecv = Pc;
    modelRecv(Pc, LenKnown ? Len : -1);
    return;
  }
  case Op::CallWaitRecv:
    if (PendingRecv < 0)
      error(Pc, "waits for a receive that was never started");
    PendingRecv = -1;
    return;
  case Op::CallCopyFromDma: {
    checkRead(Pc, I.A, Req::MemRef, "the read-back destination");
    checkRead(Pc, I.B, Req::Scalar, "the region offset");
    bool OffKnown = Facts.isConst(I.B);
    int64_t Off = OffKnown ? Facts.Value[I.B] : 0;
    checkRegionRange(Pc, /*Input=*/false, OffKnown, Off, memrefCount(I.A),
                     "the staged read-back");
    return;
  }

  case Op::LoopBegin:
  case Op::LoopEnd:
    return; // handled structurally in walkSpan
  }
}

VerifyResult Verifier::run() {
  unsigned N = V.numSlots();
  Slots.assign(N, AbsSlot());
  if (V.numArgs() > N) {
    error(-1, "plan declares " + std::to_string(V.numArgs()) +
                  " arguments but only " + std::to_string(N) + " slots");
    return std::move(R);
  }
  // Arguments are bound by the caller; their kind and geometry are
  // runtime facts, so they verify as defined-but-unknown.
  for (unsigned A = 0; A < V.numArgs(); ++A)
    defineUnknown(static_cast<int32_t>(A));

  walkSpan(0, V.program().size());

  if (!Aborted) {
    if (PendingSend >= 0)
      error(PendingSend, "send started here is never awaited");
    if (PendingRecv >= 0)
      error(PendingRecv, "receive started here is never awaited");
    if (HaveModel && !Model.gaveUp()) {
      if (!Model.atOpcodeBoundary())
        error(-1, "program ends with the accelerator " +
                      Model.stateDescription());
      else if (Model.pendingOutputWords() > 0)
        warn(-1, std::to_string(Model.pendingOutputWords()) +
                     " modeled output words are never received");
    }
  }
  if (R.Errors.size() >= MaxErrors)
    R.Errors.push_back({-1, "(further diagnostics suppressed)"});
  return std::move(R);
}

} // namespace

VerifyResult analysis::verifyPlan(const exec::ExecPlan &Plan,
                                  const VerifyOptions &Options) {
  Verifier Vf(Plan, Options);
  return Vf.run();
}
