//===- ProtocolModel.h - Abstract accelerator FSM models --------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Word-accurate abstract models of the simulated accelerator FSMs
/// (MatMul v1-v4, Conv2D), built on the static introspection hooks the
/// real engines expose (versionSupportsOpcode / burstWordsFor /
/// isSupportedOpcode). The protocol checker streams the words a plan or
/// a config flow would send — each word classified as a compile-time
/// constant, tile data, or unknown — and the model reports, statically,
/// the mistakes that today die mid-simulation: unsupported opcodes, data
/// streamed while the FSM expects an opcode (flow reordered after data),
/// bursts that overrun or underrun the tile dimensions, cfg tiles that
/// do not fit the internal buffers, and receives with no modeled output
/// pending.
///
/// The model is deliberately conservative: the moment a word it cannot
/// classify lands in a position that steers the FSM (an unknown opcode
/// word, an unknown burst length), it gives up rather than guess, and
/// the checker reports the spot only in strict mode.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_ANALYSIS_PROTOCOLMODEL_H
#define AXI4MLIR_ANALYSIS_PROTOCOLMODEL_H

#include "sim/ConvAccelerator.h"
#include "sim/MatMulAccelerator.h"
#include "support/LogicalResult.h"

#include <cstdint>
#include <string>

namespace axi4mlir {
namespace parser {
struct AcceleratorDesc;
} // namespace parser

namespace analysis {

/// One abstract 32-bit word streamed to the accelerator.
struct AbstractWord {
  enum class Kind : uint8_t {
    Const,  ///< compile-time constant (opcode literals, cfg payload)
    Data,   ///< tile payload word with unknown value
    Unknown ///< runtime-dependent word (loop index, dynamic dim)
  };
  Kind K = Kind::Unknown;
  int64_t Value = 0;

  static AbstractWord constant(int64_t V) {
    return {Kind::Const, V};
  }
  static AbstractWord data() { return {Kind::Data, 0}; }
  static AbstractWord unknown() { return {Kind::Unknown, 0}; }
};

/// Abstract FSM over the accelerator's input stream. Feed methods return
/// an error message ("" when the stream is still legal); once the model
/// gives up (`gaveUp()`), further feeds are accepted silently.
class ProtocolModel {
public:
  /// Builds the model matching how the tools build the simulated board:
  /// matmul version from the accelerator name's `_vN` token and engine
  /// size from the largest accel_size tile, conv with the default window
  /// buffer. Fails (with \p Error) for unknown kernels or names.
  static FailureOr<ProtocolModel>
  forAccelerator(const parser::AcceleratorDesc &Accel, std::string &Error);

  static ProtocolModel matmul(sim::MatMulAccelerator::Version Ver,
                              int64_t Size);
  static ProtocolModel conv(
      int64_t MaxWindowWords = sim::ConvAccelerator::DefaultMaxWindowWords);

  /// Streams one word.
  std::string feedWord(const AbstractWord &W);
  /// Streams \p Count consecutive data words (< 0 = unknown count).
  std::string feedData(int64_t Count);
  /// Models a receive of \p Words output words (< 0 = unknown).
  std::string feedRecv(int64_t Words);

  /// True when the FSM sits in Idle with no partial burst: the protocol
  /// is at a clean boundary (loop bodies must return here to be safe to
  /// repeat).
  bool atOpcodeBoundary() const { return St == State::Idle; }
  /// Modeled output words awaiting a receive (-1 = unknown).
  int64_t pendingOutputWords() const { return PendingOut; }
  bool gaveUp() const { return St == State::GaveUp; }
  /// Human-readable state for diagnostics.
  std::string stateDescription() const;

  /// State equality, used to prove loop bodies protocol-invariant.
  bool operator==(const ProtocolModel &O) const;
  bool operator!=(const ProtocolModel &O) const { return !(*this == O); }

  /// True when both models sit at the same FSM position with the same
  /// configuration. The output accumulators (pending words, accumulated
  /// conv values) are deliberately excluded: a loop body that emits
  /// without receiving is protocol-stable even though its accumulators
  /// grow each iteration.
  bool sameFsmPosition(const ProtocolModel &O) const;

  /// Folds the per-iteration accumulator delta into this state. \p
  /// AfterNext is the state one further iteration produced from *this*;
  /// \p TotalIters is the loop's trip count (< 0 = unknown).
  void extrapolateAccumulators(const ProtocolModel &AfterNext,
                               int64_t TotalIters);

  /// Stops tracking. The checker calls this at merge points it cannot
  /// reconcile (protocol-unstable loop bodies, untrackable regions).
  void invalidate() { giveUp(); }

private:
  enum class Engine : uint8_t { MatMul, Conv };
  enum class State : uint8_t { Idle, Burst, Cfg, GaveUp };

  std::string startMatMulOpcode(uint32_t Opcode);
  std::string startConvOpcode(uint32_t Opcode);
  std::string finishBurst();
  void giveUp() { St = State::GaveUp; }

  Engine Eng = Engine::MatMul;
  State St = State::Idle;
  uint32_t CurOpcode = 0;
  int64_t Remaining = 0; ///< payload words left in the current burst

  // MatMul configuration (tiles; -1 = unknown after an untracked cfg).
  sim::MatMulAccelerator::Version Ver = sim::MatMulAccelerator::Version::V1;
  int64_t Capacity = 0;
  int64_t TileM = 0, TileK = 0, TileN = 0;
  int64_t CfgWords[3] = {0, 0, 0};
  int64_t CfgFill = 0;

  // Conv configuration.
  int64_t MaxWindowWords = 0;
  int64_t ConvIC = 1, ConvFS = 1; ///< -1 = unknown
  int64_t ConvAccWords = 0;       ///< accumulated output values (-1 unknown)

  int64_t PendingOut = 0; ///< modeled output FIFO words (-1 unknown)
};

} // namespace analysis
} // namespace axi4mlir

#endif // AXI4MLIR_ANALYSIS_PROTOCOLMODEL_H
