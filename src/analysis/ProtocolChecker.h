//===- ProtocolChecker.h - Config-level protocol checking -------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static protocol checking of a user configuration, before any IR is
/// compiled: the accelerator's init opcodes and selected opcode_flow are
/// expanded action by action (send_literal -> constant word, send ->
/// tile-sized data burst from accel_size, send_dim -> the static tile
/// size, send_idx -> unknown) and streamed through the abstract FSM
/// model (ProtocolModel). Flow scopes stand for loop nests, so each
/// scope is additionally proven repeatable: a scope whose opcode
/// sequence leaves the FSM in a different state each pass is diagnosed.
///
/// This is what `axi4mlir-lint` runs over configs/*.json; the same
/// model also backs the plan-level checks in PlanVerifier.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_ANALYSIS_PROTOCOLCHECKER_H
#define AXI4MLIR_ANALYSIS_PROTOCOLCHECKER_H

#include <string>
#include <vector>

namespace axi4mlir {
namespace parser {
struct AcceleratorDesc;
} // namespace parser

namespace analysis {

/// Findings of a config-level protocol check. Errors are protocol
/// violations the simulated accelerator would reject at run time;
/// warnings are properties the checker could not prove.
struct ProtocolFindings {
  std::vector<std::string> Errors;
  std::vector<std::string> Warnings;

  bool ok(bool Strict = false) const {
    return Errors.empty() && (!Strict || Warnings.empty());
  }
};

/// Checks \p Accel's init opcodes and selected flow against the
/// abstract model of its accelerator FSM.
ProtocolFindings checkConfigProtocol(const parser::AcceleratorDesc &Accel);

} // namespace analysis
} // namespace axi4mlir

#endif // AXI4MLIR_ANALYSIS_PROTOCOLCHECKER_H
