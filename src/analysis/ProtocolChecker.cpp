//===- ProtocolChecker.cpp - Config-level protocol checking ---------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtocolChecker.h"

#include "analysis/ProtocolModel.h"
#include "ir/AccelTraits.h"
#include "parser/AcceleratorConfig.h"

using namespace axi4mlir;
using namespace axi4mlir::analysis;

namespace {

class ConfigChecker {
public:
  explicit ConfigChecker(const parser::AcceleratorDesc &Accel)
      : Accel(Accel) {}

  ProtocolFindings run() {
    std::string Error;
    FailureOr<ProtocolModel> Built =
        ProtocolModel::forAccelerator(Accel, Error);
    if (failed(Built)) {
      warn(Error + "; protocol checking skipped");
      return std::move(F);
    }
    Model = *Built;

    // Init opcodes run once per kernel launch; no repetition to prove.
    if (Accel.InitOpcodes)
      walkScopeOnce(Accel.InitOpcodes->Root, "init_opcodes");

    const accel::OpcodeFlowData *Flow = Accel.selectedFlow();
    if (!Flow) {
      if (!Accel.SelectedFlow.empty())
        error("selected flow '" + Accel.SelectedFlow +
              "' is not in opcode_flow");
      return std::move(F);
    }
    // Every flow scope (including the root) stands for a loop nest and
    // repeats an unknown number of times.
    walkScopeStable(Flow->Root, Accel.SelectedFlow);

    if (!Model.gaveUp()) {
      if (!Model.atOpcodeBoundary())
        error("flow '" + Accel.SelectedFlow +
              "' ends with the accelerator " + Model.stateDescription());
      else if (Model.pendingOutputWords() > 0)
        warn("flow '" + Accel.SelectedFlow + "' leaves " +
             std::to_string(Model.pendingOutputWords()) +
             " modeled output words unreceived (missing a recv opcode)");
    }
    return std::move(F);
  }

private:
  void error(const std::string &Msg) {
    if (!Quiet)
      F.Errors.push_back("accelerator '" + Accel.Name + "': " + Msg);
  }
  void warn(const std::string &Msg) {
    if (!Quiet)
      F.Warnings.push_back("accelerator '" + Accel.Name + "': " + Msg);
  }

  /// The accel_size tile for a named kernel dimension; -1 when the
  /// dimension is unknown or untiled (accel_size 0).
  int64_t dimTile(const std::string &DimName) const {
    for (size_t K = 0; K < Accel.Dims.size(); ++K)
      if (Accel.Dims[K] == DimName)
        return K < Accel.AccelSize.size() && Accel.AccelSize[K] > 0
                   ? Accel.AccelSize[K]
                   : -1;
    return -1;
  }

  /// Words in one tile of operand \p ArgIndex (-1 when not static).
  int64_t tileWords(int64_t ArgIndex) const {
    if (ArgIndex < 0 ||
        static_cast<size_t>(ArgIndex) >= Accel.Data.size())
      return -1;
    int64_t Words = 1;
    for (const std::string &Dim : Accel.Data[ArgIndex].second) {
      int64_t Tile = dimTile(Dim);
      if (Tile <= 0)
        return -1;
      Words *= Tile;
    }
    return Words;
  }

  /// The constant a send_dim action streams for a full tile; -1 unknown.
  int64_t sendDimValue(const accel::OpcodeAction &A) const {
    if (A.ArgIndex >= 0) {
      if (static_cast<size_t>(A.ArgIndex) >= Accel.Data.size())
        return -1;
      const std::vector<std::string> &Dims = Accel.Data[A.ArgIndex].second;
      if (A.DimIndex < 0 || static_cast<size_t>(A.DimIndex) >= Dims.size())
        return -1;
      return dimTile(Dims[A.DimIndex]);
    }
    if (A.DimIndex < 0 ||
        static_cast<size_t>(A.DimIndex) >= Accel.Dims.size())
      return -1;
    return dimTile(Accel.Dims[A.DimIndex]);
  }

  void feedOpcode(const std::string &Token, const std::string &Where) {
    const accel::OpcodeEntry *Entry = Accel.OpcodeMap.lookup(Token);
    if (!Entry) {
      error(Where + ": opcode '" + Token + "' is not in opcode_map");
      return;
    }
    for (const accel::OpcodeAction &A : Entry->Actions) {
      bool WasTracking = !Model.gaveUp();
      std::string Msg;
      switch (A.ActionKind) {
      case accel::OpcodeAction::Kind::SendLiteral:
        Msg = Model.feedWord(AbstractWord::constant(A.Literal));
        break;
      case accel::OpcodeAction::Kind::Send:
        Msg = Model.feedData(tileWords(A.ArgIndex));
        break;
      case accel::OpcodeAction::Kind::SendDim: {
        int64_t Size = sendDimValue(A);
        Msg = Model.feedWord(Size > 0 ? AbstractWord::constant(Size)
                                      : AbstractWord::unknown());
        break;
      }
      case accel::OpcodeAction::Kind::SendIdx:
        // A loop index: runtime-dependent by definition.
        Msg = Model.feedWord(AbstractWord::unknown());
        break;
      case accel::OpcodeAction::Kind::Recv:
        Msg = Model.feedRecv(tileWords(A.ArgIndex));
        break;
      }
      if (!Msg.empty())
        error(Where + ": opcode '" + Token + "': " + Msg);
      if (WasTracking && Model.gaveUp())
        warn(Where + ": opcode '" + Token +
             "' streams a word the checker cannot classify; protocol "
             "tracking stops");
    }
  }

  void walkScopeOnce(const accel::FlowScope &Scope,
                     const std::string &Where) {
    for (const accel::FlowItem &Item : Scope.Items) {
      if (Item.isToken())
        feedOpcode(Item.Token, Where);
      else if (Item.Scope)
        walkScopeStable(*Item.Scope, Where);
    }
  }

  /// Walks a repeating scope to a protocol fixpoint: one diagnosed pass,
  /// then (when the state moved) one suppressed pass that must land on
  /// the same FSM position.
  void walkScopeStable(const accel::FlowScope &Scope,
                       const std::string &Where) {
    if (Model.gaveUp()) {
      walkScopeOnce(Scope, Where); // still surfaces unknown-opcode errors
      return;
    }
    ProtocolModel Entry = Model;
    walkScopeOnce(Scope, Where);
    if (Model.gaveUp() || Model == Entry)
      return;
    ProtocolModel AfterOne = Model;
    Quiet = true;
    walkScopeOnce(Scope, Where);
    Quiet = false;
    ProtocolModel AfterTwo = Model;
    if (!AfterOne.sameFsmPosition(AfterTwo) || AfterTwo.gaveUp()) {
      error(Where + ": the scope's opcode sequence does not leave the "
                    "accelerator in a repeatable state (after one pass: " +
            AfterOne.stateDescription() +
            "; after another: " + AfterTwo.stateDescription() + ")");
      Model.invalidate();
      return;
    }
    Model = AfterOne;
    Model.extrapolateAccumulators(AfterTwo, -1);
  }

  const parser::AcceleratorDesc &Accel;
  ProtocolFindings F;
  ProtocolModel Model;
  bool Quiet = false;
};

} // namespace

ProtocolFindings
analysis::checkConfigProtocol(const parser::AcceleratorDesc &Accel) {
  ConfigChecker Checker(Accel);
  return Checker.run();
}
