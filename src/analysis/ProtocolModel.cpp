//===- ProtocolModel.cpp - Abstract accelerator FSM models ----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtocolModel.h"

#include "parser/AcceleratorConfig.h"
#include "sim/AcceleratorModel.h"

#include <algorithm>

using namespace axi4mlir;
using namespace axi4mlir::analysis;
using namespace axi4mlir::sim::opcodes;

using MM = sim::MatMulAccelerator;

ProtocolModel ProtocolModel::matmul(MM::Version Ver, int64_t Size) {
  ProtocolModel M;
  M.Eng = Engine::MatMul;
  M.Ver = Ver;
  M.Capacity = MM::bufferCapacityWordsFor(Ver, Size);
  M.TileM = M.TileK = M.TileN = Size;
  return M;
}

ProtocolModel ProtocolModel::conv(int64_t MaxWindowWords) {
  ProtocolModel M;
  M.Eng = Engine::Conv;
  M.MaxWindowWords = MaxWindowWords;
  // Matches ConvAccelerator::reset(): one channel, 1x1 filter until the
  // SET_* opcodes configure the real geometry.
  M.ConvIC = 1;
  M.ConvFS = 1;
  return M;
}

FailureOr<ProtocolModel>
ProtocolModel::forAccelerator(const parser::AcceleratorDesc &Accel,
                              std::string &Error) {
  if (Accel.Kernel == "linalg.matmul") {
    FailureOr<MM::Version> Version = MM::versionFromName(Accel.Name, Error);
    if (failed(Version))
      return failure();
    // Engine size from the largest configured tile, like axi4mlir-opt
    // --run sizes the simulated board.
    int64_t Size = 0;
    for (int64_t Tile : Accel.AccelSize)
      Size = std::max(Size, Tile);
    if (Size <= 0)
      Size = 8;
    return matmul(*Version, Size);
  }
  if (Accel.Kernel.find("conv") != std::string::npos)
    return conv();
  Error = "no protocol model for kernel '" + Accel.Kernel + "'";
  return failure();
}

std::string ProtocolModel::stateDescription() const {
  switch (St) {
  case State::Idle:
    return "idle (expecting an opcode word)";
  case State::Burst:
    return "mid-burst (" + std::to_string(Remaining) +
           " payload words outstanding for " + sim::formatOpcode(CurOpcode) +
           ")";
  case State::Cfg:
    return "reading configuration words";
  case State::GaveUp:
    return "untracked";
  }
  return "<invalid>";
}

bool ProtocolModel::operator==(const ProtocolModel &O) const {
  return sameFsmPosition(O) && ConvAccWords == O.ConvAccWords &&
         PendingOut == O.PendingOut;
}

bool ProtocolModel::sameFsmPosition(const ProtocolModel &O) const {
  return Eng == O.Eng && St == O.St && CurOpcode == O.CurOpcode &&
         Remaining == O.Remaining && CfgFill == O.CfgFill &&
         TileM == O.TileM && TileK == O.TileK && TileN == O.TileN &&
         ConvIC == O.ConvIC && ConvFS == O.ConvFS;
}

void ProtocolModel::extrapolateAccumulators(const ProtocolModel &AfterNext,
                                            int64_t TotalIters) {
  auto fold = [TotalIters](int64_t AfterOne, int64_t AfterTwo) -> int64_t {
    if (AfterOne < 0 || AfterTwo < 0)
      return -1;
    int64_t Delta = AfterTwo - AfterOne;
    if (Delta == 0)
      return AfterOne; // steady: every further iteration is a no-op
    if (TotalIters < 0)
      return -1; // grows by an unknown number of iterations
    return AfterOne + (TotalIters - 1) * Delta;
  };
  PendingOut = fold(PendingOut, AfterNext.PendingOut);
  ConvAccWords = fold(ConvAccWords, AfterNext.ConvAccWords);
}

static std::string engineName(const ProtocolModel &M) {
  (void)M;
  return "accelerator";
}

std::string ProtocolModel::startMatMulOpcode(uint32_t Opcode) {
  if (!MM::versionSupportsOpcode(Ver, Opcode))
    return "opcode " + sim::formatOpcode(Opcode) +
           " is not supported by this matmul version";
  if (Opcode == MM_RESET)
    return ""; // clears internal buffers, stays idle
  if (Opcode == MM_CFG) {
    St = State::Cfg;
    CurOpcode = Opcode;
    Remaining = MM::burstWordsFor(Opcode, TileM, TileK, TileN);
    CfgFill = 0;
    return "";
  }
  if (TileM < 0 || TileK < 0 || TileN < 0) {
    // An untracked cfg made every burst length unknown.
    giveUp();
    return "";
  }
  int64_t Words = MM::burstWordsFor(Opcode, TileM, TileK, TileN);
  if (Words > 0) {
    St = State::Burst;
    CurOpcode = Opcode;
    Remaining = Words;
    return "";
  }
  // Immediate opcode: compute and/or emit.
  if (MM::opcodeEmitsOutput(Opcode)) {
    if (PendingOut >= 0)
      PendingOut += TileM * TileN;
  }
  return "";
}

std::string ProtocolModel::startConvOpcode(uint32_t Opcode) {
  if (!sim::ConvAccelerator::isSupportedOpcode(Opcode))
    return "opcode " + sim::formatOpcode(Opcode) +
           " is not supported by the conv2d accelerator";
  switch (Opcode) {
  case CONV_SET_FS:
  case CONV_SET_IC:
    St = State::Cfg;
    CurOpcode = Opcode;
    Remaining = 1;
    CfgFill = 0;
    return "";
  case CONV_SF:
  case CONV_SICO: {
    if (ConvIC < 0 || ConvFS < 0) {
      giveUp();
      return "";
    }
    St = State::Burst;
    CurOpcode = Opcode;
    Remaining = sim::ConvAccelerator::windowWordsFor(ConvIC, ConvFS);
    if (Opcode == CONV_SF)
      ConvAccWords = 0; // a new filter starts a new output slice
    return "";
  }
  case CONV_RO:
    if (PendingOut >= 0 && ConvAccWords >= 0)
      PendingOut += ConvAccWords;
    else
      PendingOut = -1;
    ConvAccWords = 0;
    return "";
  }
  return "";
}

std::string ProtocolModel::finishBurst() {
  State Was = St;
  St = State::Idle;
  Remaining = 0;
  if (Was == State::Cfg) {
    if (Eng == Engine::MatMul) {
      int64_t NewM = CfgWords[0], NewK = CfgWords[1], NewN = CfgWords[2];
      if (NewM < 0 || NewK < 0 || NewN < 0) {
        // Unknown cfg payload: tile dimensions become unknown.
        TileM = TileK = TileN = -1;
        return "";
      }
      if (NewM <= 0 || NewK <= 0 || NewN <= 0 || NewM * NewK > Capacity ||
          NewK * NewN > Capacity || NewM * NewN > Capacity)
        return "cfg tile " + std::to_string(NewM) + "x" +
               std::to_string(NewK) + "x" + std::to_string(NewN) +
               " does not fit the internal buffers (capacity " +
               std::to_string(Capacity) + " words per operand)";
      TileM = NewM;
      TileK = NewK;
      TileN = NewN;
      return "";
    }
    // Conv: single cfg word for SET_FS / SET_IC.
    int64_t V = CfgWords[0];
    if (CurOpcode == CONV_SET_FS)
      ConvFS = V;
    else
      ConvIC = V;
    if (ConvFS >= 0 && ConvIC >= 0) {
      int64_t Window = sim::ConvAccelerator::windowWordsFor(ConvIC, ConvFS);
      if (ConvFS <= 0 || ConvIC <= 0 || Window > MaxWindowWords)
        return "conv2d configuration iC=" + std::to_string(ConvIC) +
               " fS=" + std::to_string(ConvFS) +
               " exceeds the accelerator window buffer (" +
               std::to_string(MaxWindowWords) + " words)";
    }
    return "";
  }
  // Data burst completed.
  if (Eng == Engine::MatMul) {
    if (MM::opcodeEmitsOutput(CurOpcode)) {
      if (PendingOut >= 0 && TileM >= 0 && TileN >= 0)
        PendingOut += TileM * TileN;
      else
        PendingOut = -1;
    }
  } else if (CurOpcode == CONV_SICO) {
    if (ConvAccWords >= 0)
      ConvAccWords += 1;
  }
  return "";
}

std::string ProtocolModel::feedWord(const AbstractWord &W) {
  if (St == State::GaveUp)
    return "";
  if (St == State::Idle) {
    if (W.K != AbstractWord::Kind::Const) {
      if (W.K == AbstractWord::Kind::Data)
        return "data word streamed while the " + engineName(*this) +
               " expects an opcode";
      giveUp(); // unknown word steering the FSM: stop tracking
      return "";
    }
    uint32_t Opcode = static_cast<uint32_t>(W.Value);
    return Eng == Engine::MatMul ? startMatMulOpcode(Opcode)
                                 : startConvOpcode(Opcode);
  }
  // Burst / cfg payload word.
  if (St == State::Cfg && CfgFill < 3)
    CfgWords[CfgFill++] =
        W.K == AbstractWord::Kind::Const ? W.Value : -1;
  if (--Remaining == 0)
    return finishBurst();
  return "";
}

std::string ProtocolModel::feedData(int64_t Count) {
  if (St == State::GaveUp || Count == 0)
    return "";
  if (Count < 0) {
    giveUp();
    return "";
  }
  if (St == State::Idle)
    return "data burst of " + std::to_string(Count) +
           " words streamed while the " + engineName(*this) +
           " expects an opcode";
  if (St == State::Cfg) {
    while (Count > 0 && Remaining > 0) {
      std::string E = feedWord(AbstractWord::data());
      if (!E.empty())
        return E;
      --Count;
    }
    if (Count > 0)
      return feedData(Count);
    return "";
  }
  if (Count > Remaining) {
    int64_t Extra = Count - Remaining;
    // The overrun words land on the FSM in Idle state: a burst-length /
    // tile-dimension mismatch.
    std::string E =
        "burst overruns " + sim::formatOpcode(CurOpcode) + ": expected " +
        std::to_string(Remaining) + " more payload words, got " +
        std::to_string(Extra) + " extra";
    Remaining = 0;
    (void)finishBurst();
    return E;
  }
  Remaining -= Count;
  if (Remaining == 0)
    return finishBurst();
  return "";
}

std::string ProtocolModel::feedRecv(int64_t Words) {
  if (St == State::GaveUp || Words == 0)
    return "";
  if (St != State::Idle)
    return "receive issued while the accelerator is " + stateDescription();
  if (PendingOut < 0 || Words < 0)
    return ""; // unverifiable; the checker notes it in strict mode
  if (PendingOut == 0)
    return "receive expects output but the modeled accelerator has none "
           "pending (unreachable recv)";
  if (Words > PendingOut)
    return "receive of " + std::to_string(Words) +
           " words exceeds the " + std::to_string(PendingOut) +
           " modeled pending output words";
  PendingOut -= Words;
  return "";
}
